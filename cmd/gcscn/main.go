// Command gcscn is the scenario toolchain: it checks, formats,
// explains, compiles, and profiles scenario DSL programs (see
// docs/SCENARIOS.md) without running a simulation.
//
// Modes, selected by flag; files are positional arguments:
//
//	gcscn scenarios/drift.gcs            # check: parse + validate, print a summary
//	gcscn -fmt scenarios/drift.gcs       # print the canonical formatting
//	gcscn -explain                       # print the full combinator reference
//	gcscn -explain scenarios/drift.gcs   # explain the combinators a program uses
//	gcscn -stats scenarios/drift.gcs     # compile + replay, print trace statistics
//	gcscn -out t.gct scenarios/drift.gcs # compile to a binary trace, O(1) memory
//
// Errors carry file:line:col positions; the exit status is nonzero when
// any input fails, so `gcscn scenarios/*.gcs` works as a corpus gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"gccache/internal/cli"
	"gccache/internal/model"
	"gccache/internal/scenario"
	"gccache/internal/trace"
)

func main() {
	var (
		format  = flag.Bool("fmt", false, "print each program in canonical formatting instead of checking")
		explain = flag.Bool("explain", false, "explain the combinators each program uses (no files: the full reference)")
		stats   = flag.Bool("stats", false, "compile and replay each program, printing trace statistics under -B")
		outFile = flag.String("out", "", "compile exactly one program to this gctrace binary file (streaming)")
		seed    = flag.Int64("seed", 1, "compile seed (a program's own seed statement takes precedence)")
		B       = flag.Int("B", 64, "block size for -stats")
	)
	cli.SetUsage("gcscn", "check, format, explain, or compile scenario DSL files (positional arguments; see docs/SCENARIOS.md)")
	flag.Parse()
	files := flag.Args()

	if *explain && len(files) == 0 {
		printReference(os.Stdout)
		return
	}
	if len(files) == 0 {
		cli.Fatalf("gcscn", "no scenario files given (usage: gcscn [flags] file.gcs...)")
	}
	if *outFile != "" && len(files) != 1 {
		cli.Fatalf("gcscn", "-out compiles exactly one scenario, got %d files", len(files))
	}

	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	failed := false
	for _, path := range files {
		prog, info, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		effSeed := scenario.ResolveSeed(info, *seed, seedSet)
		switch {
		case *format:
			fmt.Print(scenario.Format(prog))
		case *explain:
			explainProgram(os.Stdout, path, prog, info)
		case *stats:
			if err := printStats(os.Stdout, path, prog, effSeed, *B); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed = true
			}
		case *outFile != "":
			if err := compileTo(*outFile, prog, effSeed); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed = true
				continue
			}
			fmt.Printf("%s: wrote %d requests to %s (seed %d)\n", path, info.Length, *outFile, effSeed)
		default:
			fmt.Printf("%s: ok: %s\n", path, scenario.Describe(prog, info))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// printReference dumps the full combinator reference from the registry —
// the same source of truth the manual's semantics table is tested
// against, so `gcscn -explain` can never contradict docs/SCENARIOS.md.
func printReference(w *os.File) {
	fmt.Fprintln(w, "scenario DSL combinators (see docs/SCENARIOS.md for the full manual):")
	fmt.Fprintln(w)
	for _, name := range scenario.Combinators() {
		fmt.Fprintf(w, "  %s\n      %s\n", scenario.Signature(name), scenario.Doc(name))
	}
}

// explainProgram prints a program's summary and the reference entry of
// every combinator it uses.
func explainProgram(w *os.File, path string, prog *scenario.Program, info *scenario.Info) {
	fmt.Fprintf(w, "%s: %s\n", path, scenario.Describe(prog, info))
	for _, name := range scenario.CombinatorsUsed(prog) {
		fmt.Fprintf(w, "  %s\n      %s\n", scenario.Signature(name), scenario.Doc(name))
	}
}

// printStats compiles and replays the program once, streaming, and
// prints the same locality statistics gctrace reports for trace files.
func printStats(w *os.File, path string, prog *scenario.Program, seed int64, blockSize int) error {
	s, err := scenario.Compile(prog, seed)
	if err != nil {
		return err
	}
	geo := model.NewFixed(blockSize)
	items := make(map[model.Item]struct{})
	blocks := make(map[model.Block]struct{})
	var n, runs int64
	var prev model.Block
	for s.Next() {
		it := s.Item()
		b := geo.BlockOf(it)
		items[it] = struct{}{}
		blocks[b] = struct{}{}
		if n == 0 || b != prev {
			runs++
		}
		prev = b
		n++
	}
	itemsPerBlock, meanRun := 0.0, 0.0
	if len(blocks) > 0 {
		itemsPerBlock = float64(len(items)) / float64(len(blocks))
	}
	if runs > 0 {
		meanRun = float64(n) / float64(runs)
	}
	fmt.Fprintf(w, "%s: seed %d: %d requests, %d items, %d blocks (B=%d), %.2f items/block, mean run %.2f\n",
		path, seed, n, len(items), len(blocks), blockSize, itemsPerBlock, meanRun)
	return nil
}

// compileTo streams the compiled scenario into a gctrace binary file in
// O(1) memory — the static length goes in the header before the first
// request is generated.
func compileTo(path string, prog *scenario.Program, seed int64) error {
	s, err := scenario.Compile(prog, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteSource(f, s, uint64(s.Len())); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
