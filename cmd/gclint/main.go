// Command gclint is the repo's custom vet suite: four analyzers that
// statically enforce the invariants the test suite otherwise only
// checks at runtime — byte-identical repro output (determinism),
// the zero-allocation dense replay path (hotalloc), pool-safe
// randomized policies (reseed), and race-free sweep callbacks
// (sweepsafe). See DESIGN.md, "Static invariants".
//
// Run it directly over package patterns:
//
//	go run ./cmd/gclint ./...
//
// or as a vet tool (what `make lint` does):
//
//	go vet -vettool=$(which gclint) ./...
package main

import (
	"gccache/internal/analysis/determinism"
	"gccache/internal/analysis/framework"
	"gccache/internal/analysis/hotalloc"
	"gccache/internal/analysis/reseed"
	"gccache/internal/analysis/sweepsafe"
)

func main() {
	framework.Main(
		determinism.Analyzer,
		hotalloc.Analyzer,
		reseed.Analyzer,
		sweepsafe.Analyzer,
	)
}
