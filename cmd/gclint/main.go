// Command gclint is the repo's custom vet suite: eight analyzers that
// statically enforce the invariants the test suite otherwise only
// checks at runtime — byte-identical repro output (determinism), the
// zero-allocation dense replay path (hotalloc, plus hotalloctrans
// closing the helper-call hole with cross-package "allocates" facts),
// pool-safe randomized policies (reseed), race-free sweep callbacks
// (sweepsafe), atomic-field discipline and cache-line padding on the
// lock-free ring (atomicfield), mutex annotations on shared state
// (guardedby), and cancellable blocking entry points (ctxflow). See
// DESIGN.md, "Static invariants".
//
// Run it directly over package patterns:
//
//	go run ./cmd/gclint ./...
//
// or as a vet tool (what `make lint` does):
//
//	go vet -vettool=$(which gclint) ./...
//
// Each analyzer has a boolean flag; naming any subset runs only those
// (what `make lint-one` does):
//
//	go vet -vettool=$(which gclint) -atomicfield ./internal/concurrent
package main

import (
	"gccache/internal/analysis/atomicfield"
	"gccache/internal/analysis/ctxflow"
	"gccache/internal/analysis/determinism"
	"gccache/internal/analysis/framework"
	"gccache/internal/analysis/guardedby"
	"gccache/internal/analysis/hotalloc"
	"gccache/internal/analysis/hotalloctrans"
	"gccache/internal/analysis/reseed"
	"gccache/internal/analysis/sweepsafe"
)

func main() {
	framework.Main(
		atomicfield.Analyzer,
		ctxflow.Analyzer,
		determinism.Analyzer,
		guardedby.Analyzer,
		hotalloc.Analyzer,
		hotalloctrans.Analyzer,
		reseed.Analyzer,
		sweepsafe.Analyzer,
	)
}
