package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestGclintOverModule builds the gclint binary and runs it as a vet
// tool over the entire module: the tree must lint clean (exit 0), and
// the tool must not panic on any real package shape.
func TestGclintOverModule(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping module-wide lint in -short mode")
	}

	moduleRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(moduleRoot, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", moduleRoot, err)
	}

	bin := filepath.Join(t.TempDir(), "gclint")
	build := exec.Command("go", "build", "-o", bin, "gccache/cmd/gclint")
	build.Dir = moduleRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building gclint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = moduleRoot
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("gclint found issues or crashed: %v\n%s", err, out)
	}
}
