// Command gcbounds prints the paper's analytic artifacts: Table 1,
// Table 2, and the Figure 3 / Figure 6 bound curves, as aligned text or
// CSV.
//
// Usage:
//
//	gcbounds -artifact table1 -h 16384 -B 64
//	gcbounds -artifact figure3 -k 1280000 -B 64 -points 60 -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"gccache/internal/bounds"
	"gccache/internal/cli"
	"gccache/internal/experiments"
	"gccache/internal/render"
)

func main() {
	var (
		artifact = flag.String("artifact", "table1", "one of: table1, table2, figure3, figure6, list")
		k        = flag.Float64("k", 1.28e6, "online cache size (figure3/figure6)")
		h        = flag.Float64("h", 16384, "optimal cache size (table1)")
		B        = flag.Float64("B", 64, "block size")
		size     = flag.Float64("size", 65536, "layer size i = b = h (table2)")
		points   = flag.Int("points", 60, "sweep points (figures)")
		csv      = flag.Bool("csv", false, "emit CSV instead of text")
	)
	cli.SetUsage("gcbounds", "print the paper's analytic tables and bound curves as text or CSV")
	flag.Parse()

	if *artifact == "list" {
		t := &render.Table{
			Title: fmt.Sprintf("bound catalog, evaluated at k=%s h=%s B=%s",
				render.FormatFloat(*k), render.FormatFloat(*h), render.FormatFloat(*B)),
			Headers: []string{"name", "source", "statement", "domain", "value"},
		}
		for _, e := range bounds.Catalog() {
			t.AddRow(e.Name, e.Source, e.Statement, e.Domain, e.Eval(*k, *h, *B))
		}
		var err error
		if *csv {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.WriteText(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	var rep *experiments.Report
	switch *artifact {
	case "table1":
		rep = experiments.Table1(*h, *B)
	case "table2":
		rep = experiments.Table2(*B, []float64{2, 3, 4}, *size)
	case "figure3":
		rep = experiments.Figure3(*k, *B, *points)
	case "figure6":
		rep = experiments.Figure6(*k, *B, []float64{*k / 2048, *k / 128, *k / 8}, *points)
	default:
		fmt.Fprintf(os.Stderr, "gcbounds: unknown artifact %q\n", *artifact)
		os.Exit(2)
	}
	if *csv {
		for _, t := range rep.Tables {
			if err := t.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
		}
	} else if err := rep.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	if err := rep.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) { cli.Fatal("gcbounds", err) }
