// Command gcsim runs one or more policies over a synthetic workload (or
// a trace file) and reports hit/miss statistics with the temporal vs
// spatial split, alongside the offline-optimum bracket.
//
// Usage:
//
//	gcsim -k 4096 -B 64 -workload 'blockruns:blocks=512,B=64,run=16,len=200000'
//	gcsim -k 1024 -B 16 -policy iblp -trace requests.gct
//	gcsim -k 1024 -B 16 -scenario scenarios/drift.gcs
//
// With -scenario the compiled program replays through the streaming
// simulator in O(1) memory; -opt, -probe, and checkpointing need the
// materialized trace and are unavailable on that path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"gccache"
	"gccache/internal/cachesim"
	"gccache/internal/checkpoint"
	"gccache/internal/cli"
	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/opt"
	"gccache/internal/render"
	"gccache/internal/scenario"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

// simSnapshotKind tags gcsim checkpoint files: one Stats record per
// completed policy, so a resumed run replays only the remainder.
const simSnapshotKind = "gcsim.policies"

func main() {
	var (
		k        = flag.Int("k", 4096, "cache size in items")
		B        = flag.Int("B", 64, "block size")
		policies = flag.String("policy", "all",
			"comma-separated: item-lru, block-lru, fifo, marking, gcm, iblp, iblp-even, blie, athreshold2, or 'all'")
		spec      = flag.String("workload", "blockruns:blocks=512,B=64,run=16,len=200000", workload.SpecHelp)
		traceFile = flag.String("trace", "", "read a gctrace binary file instead of generating a workload")
		scenFile  = flag.String("scenario", "", scenario.FlagHelp)
		seed      = flag.Int64("seed", 1, "workload / policy seed")
		optimal   = flag.Bool("opt", true, "also compute the offline-optimum bracket")
		probeSpec = flag.String("probe", "", "attach probes and dump their view per policy; "+obs.SpecHelp)
		deadline  = flag.Duration("deadline", 0,
			"time budget for the policy replays; on expiry save -checkpoint (if set) and exit 1 (0 = none)")
		ckptPath = flag.String("checkpoint", "",
			"persist per-policy results to this file after each policy completes")
		resume   = flag.Bool("resume", false, "skip policies already completed in -checkpoint")
		autoMode = flag.Bool("autotune", false,
			"§5.3 closed-loop evaluation: replay through the live autotuner and report regret vs the offline-optimal fixed split")
	)
	cli.SetUsage("gcsim", "replay a workload through GC caching policies and report hit/miss statistics")
	flag.Parse()
	if *probeSpec != "" && (*deadline != 0 || *ckptPath != "" || *resume) {
		fatal(fmt.Errorf("-probe cannot be combined with -deadline/-checkpoint/-resume"))
	}
	if *autoMode && (*probeSpec != "" || *deadline != 0 || *ckptPath != "" || *resume) {
		fatal(fmt.Errorf("-autotune cannot be combined with -probe/-deadline/-checkpoint/-resume"))
	}
	if *resume && *ckptPath == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *scenFile != "" {
		if *traceFile != "" || *probeSpec != "" || *ckptPath != "" || *resume || *deadline != 0 {
			fatal(fmt.Errorf("-scenario streams in O(1) memory and cannot be combined with -trace/-probe/-checkpoint/-resume/-deadline"))
		}
		runScenario(*scenFile, *k, *B, *policies, *seed, *optimal, *autoMode)
		return
	}

	var tr trace.Trace
	var err error
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fatal(ferr)
		}
		tr, err = trace.Read(f)
		f.Close()
	} else {
		tr, err = workload.FromSpec(*spec, *seed)
	}
	if err != nil {
		fatal(err)
	}
	if *autoMode {
		runAutotuneEval(tr, *k, *B)
		return
	}

	geo := model.NewFixed(*B)
	sum := trace.Summarize(tr, geo)
	fmt.Printf("trace: %d requests, %d items, %d blocks, %.2f items/block, mean run %.2f\n",
		sum.Requests, sum.DistinctItems, sum.DistinctBlocks, sum.MeanItemsPerBlock, sum.BlockRunLengthMean)

	builders := policyBuilders(*k, geo, *seed)
	names := policyNames(*policies)

	t := &render.Table{
		Title:   fmt.Sprintf("k=%d, B=%d", *k, *B),
		Headers: []string{"policy", "misses", "miss-ratio", "temporal-hits", "spatial-hits", "items-loaded"},
	}
	// With -probe, each policy runs instrumented and its suite's view is
	// dumped after the summary table.
	type probedRun struct {
		policy string
		suite  *gccache.ProbeSuite
	}
	var dumps []probedRun

	// done maps policy name -> completed Stats, restored from -checkpoint
	// on -resume and persisted after every policy so a killed run loses at
	// most one policy's worth of work. The instance hash pins the snapshot
	// to this exact (trace, k, geometry, seed) so stale files are rejected
	// rather than silently mixed in.
	hash := opt.InstanceHash(tr, geo, *k)
	done := make(map[string]gccache.Stats)
	if *resume {
		if snap, err := checkpoint.Load(*ckptPath); err != nil {
			if !os.IsNotExist(err) {
				fatal(fmt.Errorf("loading checkpoint: %w", err))
			}
		} else {
			if snap.Kind != simSnapshotKind {
				fatal(fmt.Errorf("checkpoint %s has kind %q, not %q", *ckptPath, snap.Kind, simSnapshotKind))
			}
			if snap.MetaInt("hash", 0) != hash || snap.MetaInt("seed", 0) != *seed {
				fatal(fmt.Errorf("checkpoint %s is for a different trace/k/B/seed", *ckptPath))
			}
			for name, body := range snap.Sections {
				st, rest, derr := cachesim.DecodeStats(body)
				if derr != nil || len(rest) != 0 {
					fatal(fmt.Errorf("checkpoint %s: corrupt stats for %q: %v", *ckptPath, name, derr))
				}
				done[name] = st
			}
			fmt.Fprintf(os.Stderr, "gcsim: resumed %d completed policies from %s\n", len(done), *ckptPath)
		}
	}
	saveCkpt := func() {
		if *ckptPath == "" {
			return
		}
		sections := make(map[string][]byte, len(done))
		for name, st := range done {
			sections[name] = cachesim.AppendStats(nil, st)
		}
		snap := &checkpoint.Snapshot{
			Kind:     simSnapshotKind,
			Meta:     map[string]int64{"hash": hash, "seed": *seed},
			Sections: sections,
		}
		if err := checkpoint.Save(*ckptPath, snap); err != nil {
			fatal(fmt.Errorf("saving checkpoint: %w", err))
		}
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		mk, ok := builders[name]
		if !ok {
			fatal(fmt.Errorf("unknown policy %q", name))
		}
		var st gccache.Stats
		switch {
		case *probeSpec != "":
			suite, serr := gccache.NewProbeSuite(*probeSpec, 0)
			if serr != nil {
				fatal(serr)
			}
			st = gccache.RunColdProbed(mk(), tr, suite)
			dumps = append(dumps, probedRun{policy: st.Policy, suite: suite})
		default:
			if prev, ok := done[name]; ok {
				st = prev
				break
			}
			var rerr error
			st, rerr = cachesim.RunColdCtx(ctx, mk(), tr)
			if rerr != nil {
				saveCkpt()
				hint := ""
				if *ckptPath != "" {
					hint = fmt.Sprintf("; rerun with -resume -checkpoint %s to continue", *ckptPath)
				}
				fatal(fmt.Errorf("deadline exceeded after %d/%d policies (%v)%s",
					len(done), len(names), rerr, hint))
			}
			done[name] = st
			saveCkpt()
		}
		t.AddRow(st.Policy, st.Misses, st.MissRatio(), st.TemporalHits, st.SpatialHits, st.ItemsLoaded)
	}
	if *optimal {
		est := opt.EstimateOPT(tr, geo, *k)
		t.AddRow("OPT lower (certified)", est.Lower, float64(est.Lower)/float64(len(tr)), "-", "-", "-")
		t.AddRow("OPT upper ("+est.UpperMethod+")", est.Upper, float64(est.Upper)/float64(len(tr)), "-", "-", "-")
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	for _, d := range dumps {
		fmt.Printf("\n==== probes: %s ====\n", d.policy)
		if _, err := d.suite.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// policyBuilders maps policy names to constructors for the given
// capacity, geometry, and seed — shared by the slice and scenario paths.
func policyBuilders(k int, geo model.Geometry, seed int64) map[string]func() gccache.Cache {
	return map[string]func() gccache.Cache{
		"item-lru":    func() gccache.Cache { return gccache.NewItemLRU(k) },
		"block-lru":   func() gccache.Cache { return gccache.NewBlockLRU(k, geo) },
		"fifo":        func() gccache.Cache { return gccache.NewFIFO(k) },
		"marking":     func() gccache.Cache { return gccache.NewMarking(k, seed) },
		"gcm":         func() gccache.Cache { return gccache.NewGCM(k, geo, seed) },
		"iblp":        func() gccache.Cache { return gccache.NewIBLPEvenSplit(k, geo) },
		"iblp-even":   func() gccache.Cache { return gccache.NewIBLPEvenSplit(k, geo) },
		"blie":        func() gccache.Cache { return gccache.NewBlockLoadItemEvict(k, geo) },
		"athreshold2": func() gccache.Cache { return gccache.NewAThreshold(k, 2, geo) },
		"clock":       func() gccache.Cache { return gccache.NewClock(k) },
		"footprint":   func() gccache.Cache { return gccache.NewFootprint(k, geo) },
		"adaptive":    func() gccache.Cache { return gccache.NewAdaptiveIBLP(k, geo) },
	}
}

// policyNames expands the -policy argument ("all" or a comma list).
func policyNames(arg string) []string {
	if arg == "all" {
		return []string{"item-lru", "clock", "block-lru", "blie", "footprint",
			"athreshold2", "fifo", "marking", "gcm", "iblp", "adaptive"}
	}
	return strings.Split(arg, ",")
}

// runScenario is the -scenario path: compile once, stream every policy
// from the same compiled program via Reset — O(1) memory however long
// the scenario, and byte-identical output across runs at a fixed seed.
func runScenario(path string, k, B int, policies string, flagSeed int64, optWanted, autoMode bool) {
	prog, info, err := scenario.Load(path)
	if err != nil {
		fatal(err)
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	seed := scenario.ResolveSeed(info, flagSeed, seedSet)
	fmt.Printf("scenario: %s: %s; effective seed %d\n", path, scenario.Describe(prog, info), seed)
	if autoMode {
		// The closed-loop evaluation needs the materialized trace (for
		// the offline sweep and the shadows' universe bound), so it gives
		// up the O(1)-memory streaming path.
		tr, terr := scenario.Trace(prog, seed)
		if terr != nil {
			fatal(terr)
		}
		runAutotuneEval(tr, k, B)
		return
	}
	s, err := scenario.Compile(prog, seed)
	if err != nil {
		fatal(err)
	}
	if optWanted {
		fmt.Fprintln(os.Stderr, "gcsim: note: -opt needs a materialized trace and is skipped for scenarios")
	}

	geo := model.NewFixed(B)
	builders := policyBuilders(k, geo, seed)
	t := &render.Table{
		Title:   fmt.Sprintf("k=%d, B=%d", k, B),
		Headers: []string{"policy", "misses", "miss-ratio", "temporal-hits", "spatial-hits", "items-loaded"},
	}
	for _, name := range policyNames(policies) {
		name = strings.TrimSpace(name)
		mk, ok := builders[name]
		if !ok {
			fatal(fmt.Errorf("unknown policy %q", name))
		}
		st, rerr := cachesim.RunColdStream(mk(), s)
		if rerr != nil {
			fatal(rerr)
		}
		s.Reset()
		t.AddRow(st.Policy, st.Misses, st.MissRatio(), st.TemporalHits, st.SpatialHits, st.ItemsLoaded)
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) { cli.Fatal("gcsim", err) }
