// Command gcsim runs one or more policies over a synthetic workload (or
// a trace file) and reports hit/miss statistics with the temporal vs
// spatial split, alongside the offline-optimum bracket.
//
// Usage:
//
//	gcsim -k 4096 -B 64 -workload 'blockruns:blocks=512,B=64,run=16,len=200000'
//	gcsim -k 1024 -B 16 -policy iblp -trace requests.gct
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gccache"
	"gccache/internal/cli"
	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/opt"
	"gccache/internal/render"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

func main() {
	var (
		k        = flag.Int("k", 4096, "cache size in items")
		B        = flag.Int("B", 64, "block size")
		policies = flag.String("policy", "all",
			"comma-separated: item-lru, block-lru, fifo, marking, gcm, iblp, iblp-even, blie, athreshold2, or 'all'")
		spec      = flag.String("workload", "blockruns:blocks=512,B=64,run=16,len=200000", workload.SpecHelp)
		traceFile = flag.String("trace", "", "read a gctrace binary file instead of generating a workload")
		seed      = flag.Int64("seed", 1, "workload / policy seed")
		optimal   = flag.Bool("opt", true, "also compute the offline-optimum bracket")
		probeSpec = flag.String("probe", "", "attach probes and dump their view per policy; "+obs.SpecHelp)
	)
	cli.SetUsage("gcsim", "replay a workload through GC caching policies and report hit/miss statistics")
	flag.Parse()

	var tr trace.Trace
	var err error
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fatal(ferr)
		}
		tr, err = trace.Read(f)
		f.Close()
	} else {
		tr, err = workload.FromSpec(*spec, *seed)
	}
	if err != nil {
		fatal(err)
	}
	geo := model.NewFixed(*B)
	sum := trace.Summarize(tr, geo)
	fmt.Printf("trace: %d requests, %d items, %d blocks, %.2f items/block, mean run %.2f\n",
		sum.Requests, sum.DistinctItems, sum.DistinctBlocks, sum.MeanItemsPerBlock, sum.BlockRunLengthMean)

	builders := map[string]func() gccache.Cache{
		"item-lru":    func() gccache.Cache { return gccache.NewItemLRU(*k) },
		"block-lru":   func() gccache.Cache { return gccache.NewBlockLRU(*k, geo) },
		"fifo":        func() gccache.Cache { return gccache.NewFIFO(*k) },
		"marking":     func() gccache.Cache { return gccache.NewMarking(*k, *seed) },
		"gcm":         func() gccache.Cache { return gccache.NewGCM(*k, geo, *seed) },
		"iblp":        func() gccache.Cache { return gccache.NewIBLPEvenSplit(*k, geo) },
		"iblp-even":   func() gccache.Cache { return gccache.NewIBLPEvenSplit(*k, geo) },
		"blie":        func() gccache.Cache { return gccache.NewBlockLoadItemEvict(*k, geo) },
		"athreshold2": func() gccache.Cache { return gccache.NewAThreshold(*k, 2, geo) },
		"clock":       func() gccache.Cache { return gccache.NewClock(*k) },
		"footprint":   func() gccache.Cache { return gccache.NewFootprint(*k, geo) },
		"adaptive":    func() gccache.Cache { return gccache.NewAdaptiveIBLP(*k, geo) },
	}
	order := []string{"item-lru", "clock", "block-lru", "blie", "footprint",
		"athreshold2", "fifo", "marking", "gcm", "iblp", "adaptive"}
	var names []string
	if *policies == "all" {
		names = order
	} else {
		names = strings.Split(*policies, ",")
	}

	t := &render.Table{
		Title:   fmt.Sprintf("k=%d, B=%d", *k, *B),
		Headers: []string{"policy", "misses", "miss-ratio", "temporal-hits", "spatial-hits", "items-loaded"},
	}
	// With -probe, each policy runs instrumented and its suite's view is
	// dumped after the summary table.
	type probedRun struct {
		policy string
		suite  *gccache.ProbeSuite
	}
	var dumps []probedRun
	for _, name := range names {
		mk, ok := builders[strings.TrimSpace(name)]
		if !ok {
			fatal(fmt.Errorf("unknown policy %q", name))
		}
		var st gccache.Stats
		if *probeSpec != "" {
			suite, serr := gccache.NewProbeSuite(*probeSpec, 0)
			if serr != nil {
				fatal(serr)
			}
			st = gccache.RunColdProbed(mk(), tr, suite)
			dumps = append(dumps, probedRun{policy: st.Policy, suite: suite})
		} else {
			st = gccache.RunCold(mk(), tr)
		}
		t.AddRow(st.Policy, st.Misses, st.MissRatio(), st.TemporalHits, st.SpatialHits, st.ItemsLoaded)
	}
	if *optimal {
		est := opt.EstimateOPT(tr, geo, *k)
		t.AddRow("OPT lower (certified)", est.Lower, float64(est.Lower)/float64(len(tr)), "-", "-", "-")
		t.AddRow("OPT upper ("+est.UpperMethod+")", est.Upper, float64(est.Upper)/float64(len(tr)), "-", "-", "-")
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	for _, d := range dumps {
		fmt.Printf("\n==== probes: %s ====\n", d.policy)
		if _, err := d.suite.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) { cli.Fatal("gcsim", err) }
