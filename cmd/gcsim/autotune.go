package main

import (
	"fmt"
	"os"

	"gccache/internal/autotune"
	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/opt"
	"gccache/internal/render"
	"gccache/internal/trace"
)

// runAutotuneEval is the -autotune path: the §5.3 closed-loop regret
// evaluation the EXPERIMENTS.md table is built from. It replays the
// trace three ways — through the live autotuner starting from the even
// split, through the fixed even split, and through every fixed
// candidate split (the offline sweep) — and reports each run's regret
// against the offline-optimal fixed split.
//
// Unlike the plain -scenario path this materializes the trace: the
// offline baseline needs the whole request sequence, and the autotuner's
// dense shadows need the universe bound.
func runAutotuneEval(tr trace.Trace, k, B int) {
	geo := model.NewFixed(B)
	universe := tr.Universe()

	tn, err := autotune.New(autotune.Config{K: k, B: B, Universe: universe})
	if err != nil {
		fatal(err)
	}
	cands := tn.Candidates()
	offBest, offAll := opt.BestIBLPSplit(tr, geo, k, cands)
	worst := offAll[0]
	var even cachesim.Stats
	evenSplit := k / 2
	for _, ev := range offAll {
		if ev.Misses > worst.Misses {
			worst = ev
		}
	}

	live := core.NewIBLPBounded(evenSplit, k-evenSplit, geo, universe)
	st := autotune.Drive(live, tn, tr, 0)
	s := tn.State()

	// The even split is on the default candidate grid, so its fixed run
	// is already in the sweep; recover it rather than replaying again.
	for _, ev := range offAll {
		if ev.ItemLayer == evenSplit {
			even = cachesim.Stats{Accesses: int64(len(tr)), Misses: ev.Misses}
		}
	}

	regret := func(misses int64) string {
		if offBest.Misses == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.1f%%", 100*(float64(misses)/float64(offBest.Misses)-1))
	}
	t := &render.Table{
		Title:   fmt.Sprintf("§5.3 closed loop: k=%d, B=%d, %d requests, candidate grid %v", k, B, len(tr), cands),
		Headers: []string{"config", "misses", "miss-ratio", "regret vs OPT-split", "resizes", "final split"},
	}
	t.AddRow("autotuned (from even split)", st.Misses, st.MissRatio(), regret(st.Misses),
		s.Resizes, live.ItemLayerTarget())
	t.AddRow(fmt.Sprintf("fixed even split i=%d", evenSplit), even.Misses, even.MissRatio(),
		regret(even.Misses), "-", evenSplit)
	t.AddRow(fmt.Sprintf("offline best split i=%d", offBest.ItemLayer), offBest.Misses,
		offBest.MissRatio, "+0.0%", "-", offBest.ItemLayer)
	t.AddRow(fmt.Sprintf("offline worst split i=%d", worst.ItemLayer), worst.Misses,
		worst.MissRatio, regret(worst.Misses), "-", worst.ItemLayer)
	if err := t.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("controller: %d windows (W=%d), working set %d, formula target %d, winner %d\n",
		s.Windows, s.Window, s.WorkingSet, s.Formula, s.Winner)
}
