// Command gctrace generates synthetic traces to binary files and
// inspects existing ones (summary statistics plus the measured f/g
// working-set profiles of the extended locality model).
//
// Usage:
//
//	gctrace -workload 'zipf:n=4096,s=1.2,len=100000' -out reqs.gct
//	gctrace -in reqs.gct -B 64
package main

import (
	"flag"
	"fmt"
	"os"

	"gccache/internal/cli"
	"gccache/internal/locality"
	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/render"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

func main() {
	var (
		spec   = flag.String("workload", "", workload.SpecHelp)
		out    = flag.String("out", "", "write the generated trace to this file")
		in     = flag.String("in", "", "inspect an existing trace file")
		B      = flag.Int("B", 64, "block size for statistics")
		seed   = flag.Int64("seed", 1, "generator seed")
		format = flag.String("format", "binary", "trace file format: binary or text (one item ID per line)")
		mrc    = flag.Bool("mrc", false, "also print exact LRU miss-ratio curves (item and block granularity)")
		reuse  = flag.Bool("reuse", false, "also print reuse-distance histograms of the raw trace (item and block granularity)")
	)
	cli.SetUsage("gctrace", "generate synthetic traces to binary files and inspect existing ones")
	flag.Parse()

	var tr trace.Trace
	var err error
	switch {
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		if *format == "text" {
			tr, err = trace.ReadText(f)
		} else {
			tr, err = trace.Read(f)
		}
		f.Close()
	case *spec != "":
		tr, err = workload.FromSpec(*spec, *seed)
	default:
		fatal(fmt.Errorf("need -workload or -in"))
	}
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			fatal(ferr)
		}
		if *format == "text" {
			err = tr.WriteText(f)
		} else {
			err = tr.Write(f)
		}
		if err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d requests to %s (%s)\n", len(tr), *out, *format)
	}

	geo := model.NewFixed(*B)
	s := trace.Summarize(tr, geo)
	fmt.Printf("requests=%d distinct-items=%d distinct-blocks=%d items/block=%.2f mean-run=%.2f\n",
		s.Requests, s.DistinctItems, s.DistinctBlocks, s.MeanItemsPerBlock, s.BlockRunLengthMean)

	lengths := locality.GeometricLengths(min(len(tr), 1<<16))
	f := locality.MeasureItems(tr, lengths)
	g := locality.MeasureBlocks(tr, geo, lengths)
	t := &render.Table{
		Title:   "working-set profiles (extended locality model, §2/§7)",
		Headers: []string{"window n", "f(n) items", "g(n) blocks", "f/g spatial ratio"},
	}
	ns, fs := f.Points()
	for idx, n := range ns {
		gv := g.Eval(float64(n))
		ratio := 0.0
		if gv > 0 {
			ratio = fs[idx] / gv
		}
		t.AddRow(n, fs[idx], gv, ratio)
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("aggregate spatial locality f/g: %.3f (1 = none, B = maximal)\n",
		locality.SpatialLocalityRatio(f, g))

	if *reuse {
		// Profile the raw trace's reuse structure directly — no cache
		// involved — at both granularities. Item-level distances explain
		// temporal locality; block-level distances explain what a block
		// cache can exploit.
		items := obs.NewReuseDist(0)
		blocks := obs.NewReuseDist(0)
		for _, it := range tr {
			items.Note(it)
			blocks.Note(model.Item(geo.BlockOf(it)))
		}
		fmt.Println("\n== reuse distances, item granularity ==")
		if _, err := items.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println("\n== reuse distances, block granularity ==")
		if _, err := blocks.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *mrc {
		sizes := locality.GeometricLengths(1 << 20)
		itemCurve := locality.MissRatioCurve(tr, sizes)
		frames := make([]int, len(sizes))
		for i, s := range sizes {
			frames[i] = (s + *B - 1) / *B
		}
		blockCurve := locality.BlockMissRatioCurve(tr, geo, frames)
		mt := &render.Table{
			Title:   "LRU miss-ratio curves (Mattson one-pass; block column uses k/B frames)",
			Headers: []string{"capacity k (items)", "item-LRU misses", "block-LRU misses (k/B frames)"},
		}
		for i, s := range sizes {
			mt.AddRow(s, itemCurve[i], blockCurve[i])
		}
		if err := mt.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) { cli.Fatal("gctrace", err) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
