// Command gcadversary drives one of the paper's lower-bound
// constructions against a chosen live policy and reports the measured
// competitive-ratio lower bound next to the analytic claim.
//
// Usage:
//
//	gcadversary -construction thm2 -policy item-lru -k 1024 -h 129 -B 64
//	gcadversary -construction locality -policy iblp -k 32 -B 4 -p 2
package main

import (
	"flag"
	"fmt"

	"gccache"
	"gccache/internal/adversary"
	"gccache/internal/cli"
	"gccache/internal/model"
)

func main() {
	var (
		construction = flag.String("construction", "thm2", "one of: st, thm2, thm3, thm4, locality")
		policyName   = flag.String("policy", "item-lru",
			"item-lru, block-lru, fifo, marking, gcm, iblp, blie, athreshold2")
		k      = flag.Int("k", 1024, "online cache size")
		h      = flag.Int("h", 129, "offline comparison size")
		B      = flag.Int("B", 64, "block size")
		phases = flag.Int("phases", 25, "construction phases (st: accesses/1000)")
		p      = flag.Float64("p", 2, "locality exponent for -construction locality")
		seed   = flag.Int64("seed", 1, "seed for randomized policies")
	)
	cli.SetUsage("gcadversary", "drive a lower-bound adversary construction against a live policy")
	flag.Parse()

	geo := model.NewFixed(*B)
	var c gccache.Cache
	switch *policyName {
	case "item-lru":
		c = gccache.NewItemLRU(*k)
	case "block-lru":
		c = gccache.NewBlockLRU(*k, geo)
	case "fifo":
		c = gccache.NewFIFO(*k)
	case "marking":
		c = gccache.NewMarking(*k, *seed)
	case "gcm":
		c = gccache.NewGCM(*k, geo, *seed)
	case "iblp":
		c = gccache.NewIBLPEvenSplit(*k, geo)
	case "blie":
		c = gccache.NewBlockLoadItemEvict(*k, geo)
	case "athreshold2":
		c = gccache.NewAThreshold(*k, 2, geo)
	default:
		fatal(fmt.Errorf("unknown policy %q", *policyName))
	}

	cfg := adversary.Config{OptSize: *h, Phases: *phases}
	switch *construction {
	case "st":
		res, err := adversary.SleatorTarjan(c, adversary.SleatorTarjanConfig{
			OptSize: *h, Accesses: *phases * 1000, Spacing: *B,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		fmt.Printf("analytic Sleator–Tarjan bound: %.3f\n",
			gccache.SleatorTarjan(float64(*k), float64(*h)))
	case "thm2":
		report(adversary.ItemCache(c, geo, cfg))
	case "thm3":
		report(adversary.BlockCache(c, geo, cfg))
	case "thm4":
		report(adversary.General(c, geo, cfg))
	case "locality":
		res, err := adversary.Locality(c, geo, adversary.LocalityConfig{P: *p, Phases: *phases})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: fault rate %.5f vs Theorem 8 bound %.5f (phase length %d, %d accesses)\n",
			res.Policy, res.FaultRate, res.Bound, res.PhaseLength, res.Accesses)
	default:
		fatal(fmt.Errorf("unknown construction %q", *construction))
	}
}

func report(res adversary.Result, err error) {
	if err != nil {
		fatal(err)
	}
	fmt.Println(res)
}

func fatal(err error) { cli.Fatal("gcadversary", err) }
