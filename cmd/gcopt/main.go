// Command gcopt computes offline-optimal costs for a trace: the exact GC
// optimum on small instances, and certified lower/upper brackets on
// large ones, alongside the traditional Belady optimum.
//
// Usage:
//
//	gcopt -workload 'blockruns:blocks=64,B=8,run=4,len=2000' -k 32 -B 8
//	gcopt -trace reqs.gct -k 1024 -B 64
package main

import (
	"flag"
	"fmt"
	"os"

	"gccache/internal/cli"
	"gccache/internal/model"
	"gccache/internal/opt"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

func main() {
	var (
		spec      = flag.String("workload", "", workload.SpecHelp)
		traceFile = flag.String("trace", "", "read a gctrace binary file")
		k         = flag.Int("k", 64, "cache size in items")
		B         = flag.Int("B", 8, "block size")
		seed      = flag.Int64("seed", 1, "workload seed")
		exact     = flag.Bool("exact", false,
			"force the exact exponential solver (requires a small distinct-item universe)")
	)
	cli.SetUsage("gcopt", "bracket the offline-optimal miss count for a trace")
	flag.Parse()

	var tr trace.Trace
	var err error
	switch {
	case *traceFile != "":
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fatal(ferr)
		}
		tr, err = trace.Read(f)
		f.Close()
	case *spec != "":
		tr, err = workload.FromSpec(*spec, *seed)
	default:
		fatal(fmt.Errorf("need -workload or -trace"))
	}
	if err != nil {
		fatal(err)
	}
	geo := model.NewFixed(*B)

	fmt.Printf("trace: %d requests, %d distinct items, %d distinct blocks\n",
		len(tr), tr.Distinct(), tr.DistinctBlocks(geo))
	fmt.Printf("traditional Belady optimum (item granularity): %d\n", opt.Belady(tr, *k))
	est := opt.EstimateOPT(tr, geo, *k)
	fmt.Printf("GC optimum bracket: %d ≤ OPT ≤ %d (upper via %s)\n",
		est.Lower, est.Upper, est.UpperMethod)

	if *exact || tr.Distinct() <= opt.MaxExactUniverse {
		val, err := opt.Exact(tr, geo, *k)
		if err != nil {
			fmt.Printf("exact solver: %v\n", err)
			if *exact {
				os.Exit(1)
			}
			return
		}
		fmt.Printf("exact GC optimum: %d\n", val)
		if val < est.Lower || val > est.Upper {
			fatal(fmt.Errorf("bracket violated: exact %d outside [%d, %d]", val, est.Lower, est.Upper))
		}
	} else {
		fmt.Printf("(exact solver skipped: %d distinct items > limit %d; pass -exact to force)\n",
			tr.Distinct(), opt.MaxExactUniverse)
	}
}

func fatal(err error) { cli.Fatal("gcopt", err) }
