// Command gcopt computes offline-optimal costs for a trace: the exact GC
// optimum on small instances, and certified lower/upper brackets on
// large ones, alongside the traditional Belady optimum.
//
// Usage:
//
//	gcopt -workload 'blockruns:blocks=64,B=8,run=4,len=2000' -k 32 -B 8
//	gcopt -trace reqs.gct -k 1024 -B 64
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"gccache/internal/checkpoint"
	"gccache/internal/cli"
	"gccache/internal/model"
	"gccache/internal/opt"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

// ckptEvery bounds how much solver progress a crash can lose when
// -checkpoint is set: the solve is chopped into chunks of this length
// and the DP frontier is persisted after each one.
const ckptEvery = 500 * time.Millisecond

func main() {
	var (
		spec      = flag.String("workload", "", workload.SpecHelp)
		traceFile = flag.String("trace", "", "read a gctrace binary file")
		k         = flag.Int("k", 64, "cache size in items")
		B         = flag.Int("B", 8, "block size")
		seed      = flag.Int64("seed", 1, "workload seed")
		exact     = flag.Bool("exact", false,
			"force the exact exponential solver (requires a small distinct-item universe)")
		deadline = flag.Duration("deadline", 0,
			"time budget for the exact solver; on expiry print the best incumbent and lower bound (0 = none)")
		ckptPath = flag.String("checkpoint", "",
			"persist solver progress to this file so an interrupted solve can continue")
		resume = flag.Bool("resume", false, "resume the exact solve from -checkpoint")
	)
	cli.SetUsage("gcopt", "bracket the offline-optimal miss count for a trace")
	flag.Parse()

	var tr trace.Trace
	var err error
	switch {
	case *traceFile != "":
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fatal(ferr)
		}
		tr, err = trace.Read(f)
		f.Close()
	case *spec != "":
		tr, err = workload.FromSpec(*spec, *seed)
	default:
		fatal(fmt.Errorf("need -workload or -trace"))
	}
	if err != nil {
		fatal(err)
	}
	geo := model.NewFixed(*B)

	fmt.Printf("trace: %d requests, %d distinct items, %d distinct blocks\n",
		len(tr), tr.Distinct(), tr.DistinctBlocks(geo))
	fmt.Printf("traditional Belady optimum (item granularity): %d\n", opt.Belady(tr, *k))
	est := opt.EstimateOPT(tr, geo, *k)
	fmt.Printf("GC optimum bracket: %d ≤ OPT ≤ %d (upper via %s)\n",
		est.Lower, est.Upper, est.UpperMethod)

	if *exact || tr.Distinct() <= opt.MaxExactUniverse {
		res, err := solveExact(tr, geo, *k, *deadline, *ckptPath, *resume)
		switch {
		case err == nil:
			fmt.Printf("exact GC optimum: %d\n", res.Incumbent)
			if res.Incumbent < est.Lower || res.Incumbent > est.Upper {
				fatal(fmt.Errorf("bracket violated: exact %d outside [%d, %d]",
					res.Incumbent, est.Lower, est.Upper))
			}
		case errors.Is(err, opt.ErrDeadline):
			fmt.Printf("exact solver stopped early: %v\n", err)
			fmt.Printf("  incumbent (feasible upper bound): %d\n", res.Incumbent)
			fmt.Printf("  proven lower bound:               %d\n", res.Lower)
			if *ckptPath != "" {
				fmt.Printf("  rerun with -resume -checkpoint %s to continue the proof\n", *ckptPath)
			}
		default:
			fmt.Printf("exact solver: %v\n", err)
			if *exact {
				os.Exit(1)
			}
		}
	} else {
		fmt.Printf("(exact solver skipped: %d distinct items > limit %d; pass -exact to force)\n",
			tr.Distinct(), opt.MaxExactUniverse)
	}
}

// solveExact runs the anytime exact solver under the -deadline budget,
// persisting the DP frontier to ckptPath every ckptEvery (and at the
// end, so a deadline stop leaves a resumable file behind).
func solveExact(tr trace.Trace, geo model.Geometry, k int, deadline time.Duration, ckptPath string, resume bool) (opt.Anytime, error) {
	hash := opt.InstanceHash(tr, geo, k)
	var ck *opt.Checkpoint
	if resume {
		if ckptPath == "" {
			fatal(fmt.Errorf("-resume requires -checkpoint"))
		}
		snap, err := checkpoint.Load(ckptPath)
		if err != nil {
			fatal(fmt.Errorf("loading checkpoint: %w", err))
		}
		ck, err = opt.CheckpointFromSnapshot(snap, hash)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("resuming exact solve from %s at access %d/%d\n", ckptPath, ck.Step, len(tr))
	}
	overall := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		overall, cancel = context.WithTimeout(overall, deadline)
		defer cancel()
	}
	for {
		chunk := overall
		cancel := context.CancelFunc(func() {})
		if ckptPath != "" {
			chunk, cancel = context.WithTimeout(overall, ckptEvery)
		}
		res, next, err := opt.ExactResumeCtx(chunk, tr, geo, k, ck)
		cancel()
		ck = next
		if ckptPath != "" && ck != nil {
			if serr := checkpoint.Save(ckptPath, ck.Snapshot(hash)); serr != nil {
				fatal(fmt.Errorf("saving checkpoint: %w", serr))
			}
		}
		if err == nil || !errors.Is(err, opt.ErrDeadline) || overall.Err() != nil {
			return res, err
		}
		// Only the chunk timer fired: checkpoint written, budget remains.
	}
}

func fatal(err error) { cli.Fatal("gcopt", err) }
