package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gccache/internal/cachesim"
	"gccache/internal/cli"
	"gccache/internal/cluster"
	"gccache/internal/cluster/ring"
	"gccache/internal/concurrent"
	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/policy"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

// clusterLoadConfig carries the flag values the -cluster path needs.
type clusterLoadConfig struct {
	ringPath, spec, traceFile string
	seed                      int64
	streams                   int
	ops                       int64
	batch, rate               int
	duration                  time.Duration
}

// defaultClusterBatch is the wire batch size when -batch is unset: big
// enough to amortize a round trip, small enough that a retry after a
// node kill re-applies little work.
const defaultClusterBatch = 64

// runClusterLoad drives a gcserve cache ring over the wire: the
// workload trace is split across client streams, each stream routes its
// accesses to their owning nodes in batches and issues one request per
// (batch, owner) group. Latency is per-request wall time including any
// retries and failovers. The run fails if the client-side accounting
// identity breaks or any acked batch was not fully served.
func runClusterLoad(c clusterLoadConfig) {
	nodes, err := ring.LoadFile(c.ringPath)
	if err != nil {
		cli.Fatal("gcload", err)
	}
	r, err := ring.New(nodes, cluster.DefaultReplicas, c.seed)
	if err != nil {
		cli.Fatal("gcload", err)
	}
	var tr trace.Trace
	if c.traceFile != "" {
		f, ferr := os.Open(c.traceFile)
		if ferr != nil {
			cli.Fatal("gcload", ferr)
		}
		tr, err = trace.Read(f)
		f.Close()
	} else {
		tr, err = workload.FromSpec(c.spec, c.seed)
	}
	if err != nil {
		cli.Fatal("gcload", err)
	}
	if len(tr) == 0 {
		cli.Fatalf("gcload", "empty trace")
	}
	if c.ops < 1 {
		cli.Fatalf("gcload", "-ops %d < 1", c.ops)
	}
	batch := c.batch
	if batch <= 0 {
		batch = defaultClusterBatch
	}

	client := cluster.NewClient(r, cluster.ClientConfig{
		Timeout: 2 * time.Second,
		Retries: 2,
		Seed:    c.seed,
	})
	defer client.Close()

	ctx := context.Background()
	if c.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.duration)
		defer cancel()
	}

	fmt.Printf("gcload: cluster of %d nodes (ring %s), %d streams, batch %d\n",
		r.Len(), c.ringPath, c.streams, batch)
	issued, hist, elapsed := driveCluster(ctx, client, r, tr, c.streams, c.ops, batch, c.rate)
	printClusterReport(client, issued, hist, elapsed)
	st := client.Stats()
	if !st.Identity() {
		cli.Fatalf("gcload", "accounting identity broken: issued %d != first-try %d + retried %d + rejected %d",
			st.Issued, st.ServedFirstTry, st.RetriedOK, st.Rejected)
	}
	if st.AckMismatches > 0 {
		cli.Fatalf("gcload", "%d acked batches were not fully served", st.AckMismatches)
	}
}

// driveCluster fans tr out over n client streams, each issuing routed
// batches until its share of ops accesses is done (or ctx expires).
// Returned issued counts accesses acked, not batches; hist records one
// sample per wire request (scheduled-arrival latency when rate > 0, so
// queueing under faults is charged to the ring, not absorbed).
func driveCluster(ctx context.Context, client *cluster.Client, r *ring.Ring, tr trace.Trace, n int, ops int64, batch, rate int) (int64, *obs.Histogram, time.Duration) {
	streams := concurrent.SplitStreams(tr, n)
	hist := obs.NewHistogram("request latency", "ns")
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(len(streams)*batch) / float64(rate) * float64(time.Second))
	}
	var issued atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w, st := range streams {
		quota := ops / int64(len(streams))
		if int64(w) < ops%int64(len(streams)) {
			quota++
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(st trace.Trace, quota int64) {
			defer wg.Done()
			items := make([]model.Item, 0, batch)
			groups := make(map[int][]model.Item, r.Len())
			base := time.Now()
			var round int64
			for sent := int64(0); sent < quota; round++ {
				if ctx.Err() != nil {
					return
				}
				items = items[:0]
				for len(items) < batch && sent+int64(len(items)) < quota {
					items = append(items, st[int((sent+int64(len(items)))%int64(len(st)))])
				}
				scheduled := time.Now()
				if interval > 0 {
					scheduled = base.Add(time.Duration(round) * interval)
					if wait := time.Until(scheduled); wait > 0 {
						time.Sleep(wait)
					}
				}
				for k := range groups {
					groups[k] = groups[k][:0]
				}
				client.Route(items, groups)
				for node := 0; node < r.Len(); node++ {
					g := groups[node]
					if len(g) == 0 {
						continue
					}
					if err := client.Do(g); err == nil {
						issued.Add(int64(len(g)))
					}
					hist.Record(int64(time.Since(scheduled)))
				}
				sent += int64(len(items))
			}
		}(st, quota)
	}
	wg.Wait()
	return issued.Load(), hist, time.Since(start)
}

// printClusterReport is the cluster-mode analogue of report.print: wire
// throughput, per-request latency, and the fault-handling counters.
func printClusterReport(client *cluster.Client, issued int64, hist *obs.Histogram, elapsed time.Duration) {
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	fmt.Printf("gcload: %d accesses acked in %v: %.0f ops/sec over the wire\n",
		issued, elapsed.Round(time.Millisecond), float64(issued)/secs)
	if hist.Count() > 0 {
		fmt.Printf("gcload: request latency p50 %v  p95 %v  p99 %v  mean %v\n",
			time.Duration(hist.Percentile(0.50)),
			time.Duration(hist.Percentile(0.95)),
			time.Duration(hist.Percentile(0.99)),
			time.Duration(hist.Mean()))
	}
	st := client.Stats()
	served := st.Hits + st.Misses
	ratio := 0.0
	if served > 0 {
		ratio = float64(st.Misses) / float64(served)
	}
	fmt.Printf("gcload: batches %d issued / %d first-try / %d retried-ok / %d rejected; %d failovers, %d breaker skips; miss ratio %.4f\n",
		st.Issued, st.ServedFirstTry, st.RetriedOK, st.Rejected, st.Failovers, st.BreakerSkips, ratio)
}

// runClusterSelfcheck stands up a three-node loopback ring in-process
// and verifies the fault-tolerance contract end to end: routed batches
// land on their owners and every access is accounted; draining a node
// fails its traffic over with nothing rejected; and a graceful leave
// hands the drained node's state to its ring successor. Run under -race
// by `make cluster-smoke`.
func runClusterSelfcheck() error {
	const (
		kk       = 256
		bb       = 8
		universe = 4096
		batch    = 64
		rounds   = 50
	)
	newNode := func() (*cluster.Node, error) {
		return cluster.NewNode(cluster.NodeConfig{
			Addr: "127.0.0.1:0", K: kk, B: bb, Universe: universe,
			NewCache: func() cachesim.Cache { return policy.NewItemLRUBounded(kk, universe) },
		})
	}
	nodes := make([]*cluster.Node, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		n, err := newNode()
		if err != nil {
			return err
		}
		addr, err := n.Start()
		if err != nil {
			return err
		}
		defer n.Close()
		nodes[i], addrs[i] = n, addr
	}
	r, err := ring.New(addrs, cluster.DefaultReplicas, 1)
	if err != nil {
		return err
	}
	client := cluster.NewClient(r, cluster.ClientConfig{Timeout: 2 * time.Second, Retries: 1, Seed: 1})
	defer client.Close()

	nodeByAddr := func(addr string) *cluster.Node {
		for i, a := range addrs {
			if a == addr {
				return nodes[i]
			}
		}
		return nil
	}
	drive := func(from, to int) error {
		items := make([]model.Item, 0, batch)
		groups := make(map[int][]model.Item, len(nodes))
		for round := from; round < to; round++ {
			items = items[:0]
			for i := 0; i < batch; i++ {
				items = append(items, model.Item((round*batch+i)%universe))
			}
			for k := range groups {
				groups[k] = groups[k][:0]
			}
			client.Route(items, groups)
			for n := 0; n < r.Len(); n++ {
				if len(groups[n]) == 0 {
					continue
				}
				if err := client.Do(groups[n]); err != nil {
					return fmt.Errorf("batch to node %d: %w", n, err)
				}
			}
		}
		return nil
	}
	sumAccesses := func() int64 {
		var total int64
		for _, n := range nodes {
			total += n.Stats().Accesses
		}
		return total
	}

	// Phase 1: a healthy ring. Every access must be applied exactly once
	// (loopback, generous deadlines: no timeouts, so at-least-once
	// degenerates to exactly-once) and acked on the first attempt.
	if err := drive(0, rounds); err != nil {
		return err
	}
	if got := sumAccesses(); got != rounds*batch {
		return fmt.Errorf("selfcheck: ring counted %d accesses, client sent %d", got, rounds*batch)
	}
	st := client.Stats()
	if !st.Identity() || st.RetriedOK != 0 || st.Rejected != 0 {
		return fmt.Errorf("selfcheck: healthy-ring accounting off: %+v", st)
	}

	// Phase 2: drain a node mid-run. Its traffic must fail over to ring
	// successors with nothing rejected and nothing applied on the
	// drained node.
	victim := nodes[0]
	victimBefore := victim.Stats().Accesses
	victim.Drain()
	if err := drive(rounds, 2*rounds); err != nil {
		return err
	}
	st = client.Stats()
	if !st.Identity() {
		return fmt.Errorf("selfcheck: identity broken after drain: %+v", st)
	}
	if st.Rejected != 0 {
		return fmt.Errorf("selfcheck: %d batches rejected during drain (want failover)", st.Rejected)
	}
	if st.RetriedOK == 0 || st.Failovers == 0 {
		return fmt.Errorf("selfcheck: drain produced no failovers: %+v", st)
	}
	if got := victim.Stats().Accesses; got != victimBefore {
		return fmt.Errorf("selfcheck: drained node applied %d accesses", got-victimBefore)
	}
	if st.AckMismatches != 0 {
		return fmt.Errorf("selfcheck: %d acked batches not fully served", st.AckMismatches)
	}

	// Phase 3: graceful leave. The drained node hands its state to its
	// ring successor, which must account the combined history.
	succAddr, ok := r.Successor(addrs[0])
	if !ok {
		return fmt.Errorf("selfcheck: no ring successor for %s", addrs[0])
	}
	succ := nodeByAddr(succAddr)
	succBefore := succ.Stats().Accesses
	if err := victim.HandoffTo(succAddr, 2*time.Second); err != nil {
		return fmt.Errorf("selfcheck: handoff: %w", err)
	}
	if got, want := succ.Stats().Accesses, succBefore+victimBefore; got != want {
		return fmt.Errorf("selfcheck: successor accounts %d accesses after handoff, want %d", got, want)
	}

	fmt.Printf("gcload: cluster selfcheck: %d accesses over 3 nodes, %d failovers during drain, handoff verified\n",
		2*rounds*batch, st.Failovers)
	return nil
}
