// Command gcload is an open-loop load generator for the concurrent
// serving engine: it replays a workload through a sharded cache from
// many client streams and reports throughput (ops/sec) plus
// access-latency percentiles from the obs histogram.
//
// Two modes:
//
//   - open (default): each stream issues requests on its own schedule.
//     With -rate set, arrivals are scheduled open-loop — latency is
//     measured from the *scheduled* arrival, so queueing delay when the
//     cache falls behind is charged to the cache, not silently absorbed
//     (no coordinated omission). With -rate 0 the streams run closed-loop
//     flat out and latency is pure service time.
//   - batch: drives the batched engine (concurrent.ReplayCtx) for a
//     max-throughput measurement with one lock acquisition per batch.
//
// Usage:
//
//	gcload -k 4096 -B 64 -policy iblp -shards 8 -streams 8 -ops 1000000
//	gcload -mode batch -batch 256 -depth 4 -trace requests.gct
//	gcload -scenario scenarios/diurnal.gcs -streams 8 -ops 1000000
//
// With -scenario the program is compiled rather than materialized: in
// open mode every client stream replays its own copy (seeded seed+i, so
// clients decorrelate); in batch mode the compiled stream feeds the
// engine's O(1)-memory ReplayStream path, resetting between rounds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gccache/internal/autotune"
	"gccache/internal/cachesim"
	"gccache/internal/cli"
	"gccache/internal/concurrent"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/policy"
	"gccache/internal/scenario"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

func main() {
	var (
		k         = flag.Int("k", 4096, "cache size in items (split across shards)")
		B         = flag.Int("B", 64, "block size")
		policyArg = flag.String("policy", "iblp", "policy: item-lru, block-lru, iblp, gcm, adaptive")
		spec      = flag.String("workload", "blockruns:blocks=512,B=64,run=16,len=200000", workload.SpecHelp)
		traceFile = flag.String("trace", "", "read a gctrace binary file instead of generating a workload")
		scenFile  = flag.String("scenario", "", scenario.FlagHelp)
		seed      = flag.Int64("seed", 1, "workload / policy seed")
		shards    = flag.Int("shards", 8, "lock-striped shard count (power of two)")
		streams   = flag.Int("streams", 8, "concurrent client streams")
		ops       = flag.Int64("ops", 1_000_000, "total accesses to issue (the trace repeats as needed)")
		rate      = flag.Int("rate", 0, "target total accesses/second, scheduled open-loop (0 = closed-loop, flat out)")
		mode      = flag.String("mode", "open", "load mode: open (per-access latency) or batch (batched engine throughput)")
		batch     = flag.Int("batch", 0, "batch mode: requests per batch (0 = engine default)")
		depth     = flag.Int("depth", 0, "batch mode: queue depth per shard (0 = engine default)")
		pin       = flag.Bool("pin", false, "batch mode: pin each shard worker to an OS thread (BatchConfig.PinWorkers)")
		duration  = flag.Duration("duration", 0, "stop after this long even if -ops remain (0 = run to completion)")
		selfcheck = flag.Bool("selfcheck", false, "run a small fixed load in both modes, verify accounting, and exit")

		autotuneOn = flag.Bool("autotune", false,
			"attach the §5.3 autotune controller to the load run and apply live resizes (requires -shards 1 and a resizable policy)")

		clusterMode = flag.Bool("cluster", false, "drive a gcserve cache ring over the wire instead of an in-process cache (requires -ring; with -selfcheck, runs an in-process 3-node ring)")
		ringArg     = flag.String("ring", "", "cluster mode: static ring file, one node address per line")
	)
	cli.SetUsage("gcload", "generate open-loop or batched load against a sharded cache and report throughput + latency percentiles")
	flag.Parse()

	if *selfcheck {
		check := runSelfcheck
		if *clusterMode {
			check = runClusterSelfcheck
		}
		if err := check(); err != nil {
			cli.Fatal("gcload", err)
		}
		fmt.Println("gcload: selfcheck ok")
		return
	}

	if *clusterMode {
		if *ringArg == "" {
			cli.Fatalf("gcload", "-cluster requires -ring")
		}
		if *autotuneOn {
			cli.Fatalf("gcload", "-autotune drives the in-process engine; in cluster mode the controller lives server-side (gcserve -autotune)")
		}
		if *scenFile != "" {
			cli.Fatalf("gcload", "-cluster and -scenario are mutually exclusive")
		}
		runClusterLoad(clusterLoadConfig{
			ringPath: *ringArg, spec: *spec, traceFile: *traceFile, seed: *seed,
			streams: *streams, ops: *ops, batch: *batch, rate: *rate, duration: *duration,
		})
		return
	}

	if *scenFile != "" {
		if *traceFile != "" {
			cli.Fatalf("gcload", "-scenario and -trace are mutually exclusive")
		}
		runScenarioLoad(scenarioLoadConfig{
			path: *scenFile, k: *k, B: *B, policy: *policyArg, seed: *seed,
			shards: *shards, streams: *streams, ops: *ops, rate: *rate,
			mode: *mode, batch: *batch, depth: *depth, pin: *pin, duration: *duration,
			autotune: *autotuneOn,
		})
		return
	}

	geo := model.NewFixed(*B)
	var tr trace.Trace
	var err error
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			cli.Fatal("gcload", ferr)
		}
		tr, err = trace.Read(f)
		f.Close()
	} else {
		tr, err = workload.FromSpec(*spec, *seed)
	}
	if err != nil {
		cli.Fatal("gcload", err)
	}
	if len(tr) == 0 {
		cli.Fatalf("gcload", "empty trace")
	}
	if *ops < 1 {
		cli.Fatalf("gcload", "-ops %d < 1", *ops)
	}

	// The whole trace is resident, so its item universe is known and the
	// shards can use the dense bounded policies (flat arrays + packed
	// bitsets instead of maps) — behaviourally identical, several times
	// faster under load.
	universe := model.ItemUniverse(geo, tr.Universe())
	build, err := buildPolicy(*policyArg, geo, *seed, universe)
	if err != nil {
		cli.Fatal("gcload", err)
	}
	s, err := concurrent.NewShardedBounded(*shards, *k, geo, universe, build)
	if err != nil {
		cli.Fatal("gcload", err)
	}
	var tn *autotune.Tuner
	if *autotuneOn {
		if tn, err = attachAutotune(s, *shards, *k, *B, geo, universe); err != nil {
			cli.Fatal("gcload", err)
		}
		stop := startAutotuneApply(s, tn)
		defer stop()
	}

	ctx := context.Background()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	fmt.Printf("gcload: policy %s, k %d, B %d, %d shards, %d streams, mode %s\n",
		*policyArg, *k, *B, *shards, *streams, *mode)
	var r report
	switch *mode {
	case "open":
		r = runOpen(ctx, s, tr, *streams, *ops, *rate)
	case "batch":
		cfg := concurrent.BatchConfig{BatchSize: *batch, QueueDepth: *depth, PinWorkers: *pin}
		r, err = runBatch(ctx, s, tr, *streams, *ops, cfg)
		if err != nil && ctx.Err() == nil {
			cli.Fatal("gcload", err)
		}
	default:
		cli.Fatalf("gcload", "unknown -mode %q (want open or batch)", *mode)
	}
	r.print(os.Stdout, s)
	if tn != nil {
		printAutotune(os.Stdout, tn, s)
	}
}

// attachAutotune wires the §5.3 controller into a single-shard load
// run: the tuner rides the shard's probe stream, and startAutotuneApply
// enacts its proposals under the shard's Access mutex.
func attachAutotune(s *concurrent.Sharded, shards, k, B int, geo model.Geometry, universe int) (*autotune.Tuner, error) {
	if shards != 1 {
		// Each shard is an independent cache at k/shards; a single global
		// split target is meaningless across them.
		return nil, fmt.Errorf("-autotune requires -shards 1 (got %d)", shards)
	}
	resizable := false
	s.WithShardCache(0, func(c cachesim.Cache) { _, resizable = c.(cachesim.LayerResizable) })
	if !resizable {
		return nil, fmt.Errorf("policy does not support layer resizing (autotune needs iblp or adaptive)")
	}
	tn, err := autotune.New(autotune.Config{K: k, B: B, Geometry: geo, Universe: universe})
	if err != nil {
		return nil, err
	}
	s.WithShardCache(0, func(c cachesim.Cache) {
		tn.SetLiveTarget(c.(cachesim.LayerResizable).ItemLayerTarget())
	})
	s.SetProbe(tn)
	return tn, nil
}

// startAutotuneApply polls the tuner and applies pending resizes to
// shard 0's cache, returning a stop function that joins the loop.
func startAutotuneApply(s *concurrent.Sharded, tn *autotune.Tuner) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if _, ok := tn.Pending(); !ok {
					continue
				}
				s.WithShardCache(0, func(c cachesim.Cache) {
					if rz, ok := c.(cachesim.LayerResizable); ok {
						tn.Apply(rz)
					}
				})
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// printAutotune reports the controller's end-of-run standing.
func printAutotune(w *os.File, tn *autotune.Tuner, s *concurrent.Sharded) {
	st := tn.State()
	final := -1
	s.WithShardCache(0, func(c cachesim.Cache) {
		if rz, ok := c.(cachesim.LayerResizable); ok {
			final = rz.ItemLayerTarget()
		}
	})
	fmt.Fprintf(w, "gcload: autotune: %d windows (W=%d), %d resizes, final split %d (formula %d, working set %d)\n",
		st.Windows, st.Window, st.Resizes, final, st.Formula, st.WorkingSet)
}

// buildPolicy returns a per-shard cache constructor — the same policy
// names the serving layer accepts, parameterized on the shard's share
// of the capacity. With universe > 0 it selects the bounded dense
// variants (adaptive has none and stays generic).
func buildPolicy(name string, geo model.Geometry, seed int64, universe int) (func(k int) cachesim.Cache, error) {
	switch name {
	case "item-lru":
		return func(k int) cachesim.Cache { return policy.NewItemLRUBounded(k, universe) }, nil
	case "block-lru":
		return func(k int) cachesim.Cache { return policy.NewBlockLRUBounded(k, geo, universe) }, nil
	case "iblp", "iblp-even":
		return func(k int) cachesim.Cache { return core.NewIBLPEvenSplitBounded(k, geo, universe) }, nil
	case "gcm":
		return func(k int) cachesim.Cache { return core.NewGCMBounded(k, geo, seed, universe) }, nil
	case "adaptive":
		return func(k int) cachesim.Cache { return core.NewAdaptiveIBLP(k, geo) }, nil
	}
	return nil, fmt.Errorf("unknown policy %q (want item-lru, block-lru, iblp, gcm, or adaptive)", name)
}

// scenarioLoadConfig carries the flag values the -scenario path needs.
type scenarioLoadConfig struct {
	path, policy, mode          string
	k, B, shards, streams, rate int
	batch, depth                int
	pin                         bool
	autotune                    bool
	seed                        int64
	ops                         int64
	duration                    time.Duration
}

// runScenarioLoad is the -scenario path. The program compiles instead
// of materializing: open mode gives each client stream its own copy
// seeded seed+i (clients decorrelate, like independent users running
// the same workload); batch mode streams one compiled copy through the
// engine's ReplayStream, resetting between rounds. The universe
// pre-pass replays each seed once in O(1) memory so the shards can use
// the dense bounded policies, exactly as the trace path does.
func runScenarioLoad(c scenarioLoadConfig) {
	prog, info, err := scenario.Load(c.path)
	if err != nil {
		cli.Fatal("gcload", err)
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	seed := scenario.ResolveSeed(info, c.seed, seedSet)
	if c.ops < 1 {
		cli.Fatalf("gcload", "-ops %d < 1", c.ops)
	}

	geo := model.NewFixed(c.B)
	nSeeds := 1
	if c.mode == "open" {
		nSeeds = c.streams
	}
	universe := 0
	for i := 0; i < nSeeds; i++ {
		u, uerr := scenario.Universe(prog, seed+int64(i))
		if uerr != nil {
			cli.Fatal("gcload", uerr)
		}
		if u > universe {
			universe = u
		}
	}
	universe = model.ItemUniverse(geo, universe)
	build, err := buildPolicy(c.policy, geo, seed, universe)
	if err != nil {
		cli.Fatal("gcload", err)
	}
	s, err := concurrent.NewShardedBounded(c.shards, c.k, geo, universe, build)
	if err != nil {
		cli.Fatal("gcload", err)
	}
	var tn *autotune.Tuner
	if c.autotune {
		if tn, err = attachAutotune(s, c.shards, c.k, c.B, geo, universe); err != nil {
			cli.Fatal("gcload", err)
		}
		stop := startAutotuneApply(s, tn)
		defer stop()
	}

	ctx := context.Background()
	if c.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.duration)
		defer cancel()
	}

	fmt.Printf("gcload: scenario %s (%d requests/replay, seed %d), policy %s, k %d, B %d, %d shards, %d streams, mode %s\n",
		c.path, info.Length, seed, c.policy, c.k, c.B, c.shards, c.streams, c.mode)
	var r report
	switch c.mode {
	case "open":
		streams := make([]*scenario.Stream, c.streams)
		for i := range streams {
			streams[i], err = scenario.Compile(prog, seed+int64(i))
			if err != nil {
				cli.Fatal("gcload", err)
			}
		}
		r = runOpenScenario(ctx, s, streams, c.ops, c.rate)
	case "batch":
		src, cerr := scenario.Compile(prog, seed)
		if cerr != nil {
			cli.Fatal("gcload", cerr)
		}
		cfg := concurrent.BatchConfig{BatchSize: c.batch, QueueDepth: c.depth, PinWorkers: c.pin}
		r, err = runBatchScenario(ctx, s, src, c.ops, cfg)
		if err != nil && ctx.Err() == nil {
			cli.Fatal("gcload", err)
		}
	default:
		cli.Fatalf("gcload", "unknown -mode %q (want open or batch)", c.mode)
	}
	r.print(os.Stdout, s)
	if tn != nil {
		printAutotune(os.Stdout, tn, s)
	}
}

// runOpenScenario mirrors runOpen but drives each client from its own
// compiled stream, wrapping via Reset when a replay completes — the
// scenario repeats exactly like the trace slices do under -ops.
func runOpenScenario(ctx context.Context, s *concurrent.Sharded, streams []*scenario.Stream, ops int64, rate int) report {
	hist := obs.NewHistogram("access latency", "ns")
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(len(streams)) / float64(rate) * float64(time.Second))
	}
	var issued atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := range streams {
		quota := ops / int64(len(streams))
		if int64(w) < ops%int64(len(streams)) {
			quota++
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(st *scenario.Stream, quota int64) {
			defer wg.Done()
			base := time.Now()
			for i := int64(0); i < quota; i++ {
				if i&1023 == 0 && ctx.Err() != nil {
					return
				}
				scheduled := time.Now()
				if interval > 0 {
					scheduled = base.Add(time.Duration(i) * interval)
					if wait := time.Until(scheduled); wait > 0 {
						time.Sleep(wait)
					}
				}
				if !st.Next() {
					st.Reset()
					if !st.Next() {
						return // zero-length scenario: nothing to replay
					}
				}
				s.Access(st.Item())
				hist.Record(int64(time.Since(scheduled)))
				issued.Add(1)
			}
		}(streams[w], quota)
	}
	wg.Wait()
	return report{mode: "open", issued: issued.Load(), elapsed: time.Since(start), hist: hist}
}

// runBatchScenario mirrors runBatch on the engine's O(1)-memory
// ReplayStream path: one warmup replay outside the timed window, then
// whole-scenario rounds (Reset between them) until ops accesses have
// completed or ctx expires.
func runBatchScenario(ctx context.Context, s *concurrent.Sharded, src *scenario.Stream, ops int64, cfg concurrent.BatchConfig) (report, error) {
	e, err := concurrent.NewEngine(s, 1, cfg)
	if err != nil {
		return report{mode: "batch"}, err
	}
	defer e.Close()
	if _, err := e.ReplayStream(ctx, src); err != nil {
		return report{mode: "batch"}, err
	}
	src.Reset()
	base := s.Stats().Accesses
	start := time.Now()
	var issued int64
	for issued < ops {
		st, err := e.ReplayStream(ctx, src)
		elapsed := time.Since(start)
		src.Reset()
		issued = st.Accesses - base
		if err != nil {
			return report{mode: "batch", issued: issued, elapsed: elapsed}, err
		}
	}
	return report{mode: "batch", issued: issued, elapsed: time.Since(start)}, nil
}

// report is one load run's measurements.
type report struct {
	mode    string
	issued  int64 // accesses actually completed (≤ requested under -duration)
	elapsed time.Duration
	hist    *obs.Histogram // per-access latency; nil in batch mode
}

func (r report) print(w *os.File, s *concurrent.Sharded) {
	secs := r.elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	fmt.Fprintf(w, "gcload: %d ops in %v: %.0f ops/sec\n", r.issued, r.elapsed.Round(time.Millisecond), float64(r.issued)/secs)
	if r.hist != nil {
		fmt.Fprintf(w, "gcload: latency p50 %v  p95 %v  p99 %v  mean %v\n",
			time.Duration(r.hist.Percentile(0.50)),
			time.Duration(r.hist.Percentile(0.95)),
			time.Duration(r.hist.Percentile(0.99)),
			time.Duration(r.hist.Mean()))
	}
	st := s.Stats()
	var acquired, contended int64
	for _, l := range s.ShardLoads() {
		acquired += l.Acquired
		contended += l.Contended
	}
	fmt.Fprintf(w, "gcload: miss ratio %.4f (%d/%d), %d lock acquisitions (%.2f accesses/lock, %.1f%% contended)\n",
		st.MissRatio(), st.Misses, st.Accesses,
		acquired, float64(st.Accesses)/float64(max64(acquired, 1)),
		100*float64(contended)/float64(max64(acquired, 1)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// runOpen drives s from n concurrent streams until ops accesses have
// completed (or ctx expires), recording each access's latency.
func runOpen(ctx context.Context, s *concurrent.Sharded, tr trace.Trace, n int, ops int64, rate int) report {
	streams := concurrent.SplitStreams(tr, n)
	hist := obs.NewHistogram("access latency", "ns")
	// Open-loop schedule: the total arrival rate is divided evenly, so
	// each stream's inter-arrival gap is streams/rate seconds.
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(len(streams)) / float64(rate) * float64(time.Second))
	}
	var issued atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w, st := range streams {
		quota := ops / int64(len(streams))
		if int64(w) < ops%int64(len(streams)) {
			quota++
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(st trace.Trace, quota int64) {
			defer wg.Done()
			base := time.Now()
			for i := int64(0); i < quota; i++ {
				if i&1023 == 0 && ctx.Err() != nil {
					return
				}
				scheduled := time.Now()
				if interval > 0 {
					scheduled = base.Add(time.Duration(i) * interval)
					if wait := time.Until(scheduled); wait > 0 {
						time.Sleep(wait)
					}
				}
				s.Access(st[int(i%int64(len(st)))])
				hist.Record(int64(time.Since(scheduled)))
				issued.Add(1)
			}
		}(st, quota)
	}
	wg.Wait()
	return report{mode: "open", issued: issued.Load(), elapsed: time.Since(start), hist: hist}
}

// runBatch replays the split streams through a persistent batched
// engine in rounds until ops accesses have completed (or ctx expires).
// Engine construction, one warmup round, and teardown all happen
// outside the timed window, so the reported ops/sec is steady-state
// serving throughput — honestly comparable with open mode, which has
// no per-round setup to hide. The warmup round's accesses appear in
// the cache's cumulative statistics (the miss-ratio line) but not in
// issued/elapsed; runSelfcheck pins that accounting identity.
func runBatch(ctx context.Context, s *concurrent.Sharded, tr trace.Trace, n int, ops int64, cfg concurrent.BatchConfig) (report, error) {
	streams := concurrent.SplitStreams(tr, n)
	e, err := concurrent.NewEngine(s, len(streams), cfg)
	if err != nil {
		return report{mode: "batch"}, err
	}
	defer e.Close()
	if _, err := e.Replay(ctx, streams); err != nil {
		return report{mode: "batch"}, err
	}
	base := s.Stats().Accesses
	start := time.Now()
	var issued int64
	for issued < ops {
		st, err := e.Replay(ctx, streams)
		elapsed := time.Since(start)
		issued = st.Accesses - base
		if err != nil {
			return report{mode: "batch", issued: issued, elapsed: elapsed}, err
		}
	}
	return report{mode: "batch", issued: issued, elapsed: time.Since(start)}, nil
}

// runSelfcheck exercises both modes on a small fixed load and verifies
// the accounting end to end: every issued access is counted by the
// cache, every open-mode access produced a latency sample, and the
// percentile summary is monotone. Run under -race by `make load-smoke`.
func runSelfcheck() error {
	const (
		kk      = 256
		bb      = 8
		nShards = 4
		nStream = 4
		nOps    = 40_000
	)
	geo := model.NewFixed(bb)
	tr, err := workload.FromSpec("blockruns:blocks=64,B=8,run=8,len=20000", 1)
	if err != nil {
		return err
	}
	universe := model.ItemUniverse(geo, tr.Universe())
	build, err := buildPolicy("iblp", geo, 1, universe)
	if err != nil {
		return err
	}

	// Open mode: exact accounting, one latency sample per access.
	s, err := concurrent.NewShardedBounded(nShards, kk, geo, universe, build)
	if err != nil {
		return err
	}
	r := runOpen(context.Background(), s, tr, nStream, nOps, 0)
	if r.issued != nOps {
		return fmt.Errorf("selfcheck: open mode issued %d ops, want %d", r.issued, nOps)
	}
	if st := s.Stats(); st.Accesses != nOps {
		return fmt.Errorf("selfcheck: cache counted %d accesses, want %d", st.Accesses, nOps)
	}
	if c := r.hist.Count(); c != nOps {
		return fmt.Errorf("selfcheck: %d latency samples, want %d", c, nOps)
	}
	p50, p95, p99 := r.hist.Percentile(0.50), r.hist.Percentile(0.95), r.hist.Percentile(0.99)
	if p50 > p95 || p95 > p99 {
		return fmt.Errorf("selfcheck: non-monotone percentiles p50=%d p95=%d p99=%d", p50, p95, p99)
	}
	r.print(os.Stdout, s)

	// Batch mode: the timed window must cover exactly the measured
	// rounds — the warmup round appears in the cache's cumulative
	// statistics but not in issued. With ops = 2×len(tr) the engine
	// runs one warmup round plus two timed rounds, so the identity is
	//	issued = 2×len(tr),  cache accesses = issued + len(tr).
	s2, err := concurrent.NewShardedBounded(nShards, kk, geo, universe, build)
	if err != nil {
		return err
	}
	r2, err := runBatch(context.Background(), s2, tr, nStream, int64(2*len(tr)), concurrent.BatchConfig{})
	if err != nil {
		return err
	}
	if r2.issued != int64(2*len(tr)) {
		return fmt.Errorf("selfcheck: batch mode issued %d ops, want %d", r2.issued, 2*len(tr))
	}
	st2 := s2.Stats()
	if st2.Accesses != r2.issued+int64(len(tr)) {
		return fmt.Errorf("selfcheck: batch accounting identity broken: cache counted %d accesses, want issued %d + warmup %d",
			st2.Accesses, r2.issued, len(tr))
	}
	var acquired int64
	for _, l := range s2.ShardLoads() {
		acquired += l.Acquired
	}
	if acquired >= st2.Accesses/2 {
		return fmt.Errorf("selfcheck: batching did not amortize locking (%d acquisitions for %d accesses)", acquired, st2.Accesses)
	}
	r2.print(os.Stdout, s2)
	return nil
}
