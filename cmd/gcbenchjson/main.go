// Command gcbenchjson converts `go test -bench -benchmem` output (stdin)
// into a stable JSON snapshot of benchmark results, keyed by benchmark
// name with the -cpu suffix stripped.
//
// The snapshot has two sections: "current", rewritten on every run, and
// "pre_change", which is preserved verbatim from an existing -out file
// (or seeded from the current results when the file does not exist yet).
// Committing the file therefore records a performance trajectory: the
// numbers before an optimization landed and the numbers now.
//
// Usage:
//
//	go test -run '^$' -bench <pattern> -benchmem . | gcbenchjson -out BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"gccache/internal/cli"
)

// Result holds one benchmark's figures. BytesPerOp/AllocsPerOp are -1
// when the run did not report memory statistics; OpsPerSec is present
// only for benchmarks that b.ReportMetric a throughput (the serving
// engine benchmarks do).
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
}

// Snapshot is the committed file layout.
type Snapshot struct {
	PreChange map[string]Result `json:"pre_change"`
	Current   map[string]Result `json:"current"`
}

// benchHeader matches the name and iteration count of a result line,
// e.g.
//
//	BenchmarkRunTrace-8  20  59616409 ns/op  9741033 B/op  17101 allocs/op
//
// The figures after the count are (value, unit) pairs parsed by unit,
// because custom metrics (b.ReportMetric, e.g. "ops/sec") are printed
// between ns/op and the -benchmem columns.
var benchHeader = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s`)

func parse(r *bufio.Scanner) (map[string]Result, error) {
	out := make(map[string]Result)
	for r.Scan() {
		m := benchHeader.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		res := Result{BytesPerOp: -1, AllocsPerOp: -1}
		fields := strings.Fields(r.Text())
		for i := 2; i+1 < len(fields); i += 2 {
			dst, known := map[string]*float64{
				"ns/op":     &res.NsPerOp,
				"B/op":      &res.BytesPerOp,
				"allocs/op": &res.AllocsPerOp,
				"ops/sec":   &res.OpsPerSec,
			}[fields[i+1]]
			if !known {
				continue // unrecognized metric; skip the pair
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s in %q: %v", fields[i+1], r.Text(), err)
			}
			*dst = v
		}
		out[m[1]] = res
	}
	return out, r.Err()
}

func main() {
	outPath := flag.String("out", "BENCH_baseline.json", "snapshot file to write (pre_change preserved if present)")
	cli.SetUsage("gcbenchjson", "convert go test -bench output on stdin into a stable JSON snapshot")
	flag.Parse()

	cur, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		cli.Fatal("gcbenchjson", err)
	}
	if len(cur) == 0 {
		cli.Fatalf("gcbenchjson", "no benchmark lines on stdin")
	}

	snap := Snapshot{Current: cur}
	if raw, err := os.ReadFile(*outPath); err == nil {
		var old Snapshot
		if err := json.Unmarshal(raw, &old); err != nil {
			cli.Fatalf("gcbenchjson", "existing %s is not a snapshot: %w", *outPath, err)
		}
		snap.PreChange = old.PreChange
	}
	if snap.PreChange == nil {
		snap.PreChange = cur
	}

	buf, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		cli.Fatal("gcbenchjson", err)
	}
	buf = append(buf, '\n')
	cli.CheckWrite("gcbenchjson", *outPath, os.WriteFile(*outPath, buf, 0o644))

	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)
	// The summary goes through one buffered writer so a broken pipe or
	// full disk surfaces as an error instead of a silently short report.
	w := bufio.NewWriter(os.Stdout)
	for _, n := range names {
		r := cur[n]
		line := fmt.Sprintf("%-28s %14.0f ns/op", n, r.NsPerOp)
		if r.AllocsPerOp >= 0 {
			line += fmt.Sprintf(" %10.0f allocs/op", r.AllocsPerOp)
		}
		if r.OpsPerSec > 0 {
			line += fmt.Sprintf(" %12.0f ops/sec", r.OpsPerSec)
		}
		if pre, ok := snap.PreChange[n]; ok && pre.NsPerOp > 0 {
			line += fmt.Sprintf("   (%.2fx vs pre_change)", pre.NsPerOp/r.NsPerOp)
		}
		_, err := fmt.Fprintln(w, line)
		cli.CheckWrite("gcbenchjson", "stdout", err)
	}
	cli.CheckWrite("gcbenchjson", "stdout", w.Flush())
}
