// Command gcbenchjson converts `go test -bench -benchmem` output (stdin)
// into a stable JSON snapshot of benchmark results, keyed by benchmark
// name with the -cpu suffix stripped.
//
// The snapshot has two sections: "current", rewritten on every run, and
// "pre_change", which is preserved verbatim from an existing -out file
// (or seeded from the current results when the file does not exist yet).
// Committing the file therefore records a performance trajectory: the
// numbers before an optimization landed and the numbers now.
//
// Usage:
//
//	go test -run '^$' -bench <pattern> -benchmem . | gcbenchjson -out BENCH_baseline.json
//
// With -floor name:ratio the run also acts as a regression guard: the
// named benchmark's current ops_per_sec must be at least ratio times
// the committed baseline's (the "current" section of the existing -out
// file), or the command exits nonzero. Combine with -write=false to
// check without touching the committed snapshot (the CI bench-guard
// mode).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"gccache/internal/cli"
)

// Result holds one benchmark's figures. BytesPerOp/AllocsPerOp are -1
// when the run did not report memory statistics; OpsPerSec is present
// only for benchmarks that b.ReportMetric a throughput (the serving
// engine benchmarks do).
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
}

// Snapshot is the committed file layout.
type Snapshot struct {
	PreChange map[string]Result `json:"pre_change"`
	Current   map[string]Result `json:"current"`
}

// benchHeader matches the name and iteration count of a result line,
// e.g.
//
//	BenchmarkRunTrace-8  20  59616409 ns/op  9741033 B/op  17101 allocs/op
//
// The figures after the count are (value, unit) pairs parsed by unit,
// because custom metrics (b.ReportMetric, e.g. "ops/sec") are printed
// between ns/op and the -benchmem columns.
var benchHeader = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s`)

func parse(r *bufio.Scanner) (map[string]Result, error) {
	out := make(map[string]Result)
	for r.Scan() {
		m := benchHeader.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		res := Result{BytesPerOp: -1, AllocsPerOp: -1}
		fields := strings.Fields(r.Text())
		for i := 2; i+1 < len(fields); i += 2 {
			dst, known := map[string]*float64{
				"ns/op":     &res.NsPerOp,
				"B/op":      &res.BytesPerOp,
				"allocs/op": &res.AllocsPerOp,
				"ops/sec":   &res.OpsPerSec,
			}[fields[i+1]]
			if !known {
				continue // unrecognized metric; skip the pair
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s in %q: %v", fields[i+1], r.Text(), err)
			}
			*dst = v
		}
		out[m[1]] = res
	}
	return out, r.Err()
}

// checkFloor enforces one "name:ratio" throughput floor: cur[name]'s
// ops_per_sec must be >= ratio × the committed snapshot's figure. A
// missing committed figure is not an error (first run seeds it); a
// missing current figure is (the guarded benchmark did not run).
func checkFloor(spec string, cur, committed map[string]Result) error {
	name, ratioStr, ok := strings.Cut(spec, ":")
	if !ok {
		return fmt.Errorf("bad -floor %q, want name:ratio", spec)
	}
	ratio, err := strconv.ParseFloat(ratioStr, 64)
	if err != nil || ratio <= 0 {
		return fmt.Errorf("bad -floor ratio %q", ratioStr)
	}
	got, ok := cur[name]
	if !ok || got.OpsPerSec <= 0 {
		return fmt.Errorf("-floor %s: benchmark missing from input (or no ops/sec metric)", name)
	}
	base, ok := committed[name]
	if !ok || base.OpsPerSec <= 0 {
		fmt.Fprintf(os.Stderr, "gcbenchjson: -floor %s: no committed ops/sec baseline, skipping check\n", name)
		return nil
	}
	floor := ratio * base.OpsPerSec
	if got.OpsPerSec < floor {
		return fmt.Errorf("-floor %s: %.0f ops/sec below floor %.0f (%.2f x committed %.0f)",
			name, got.OpsPerSec, floor, ratio, base.OpsPerSec)
	}
	fmt.Fprintf(os.Stderr, "gcbenchjson: -floor %s ok: %.0f ops/sec >= %.0f (%.2f x committed %.0f)\n",
		name, got.OpsPerSec, floor, ratio, base.OpsPerSec)
	return nil
}

func main() {
	outPath := flag.String("out", "BENCH_baseline.json", "snapshot file to write (pre_change preserved if present)")
	write := flag.Bool("write", true, "write the snapshot file (false: check-only, for CI floor guards)")
	floor := flag.String("floor", "", "throughput floor 'name:ratio': fail unless name's ops/sec >= ratio x the committed snapshot's")
	cli.SetUsage("gcbenchjson", "convert go test -bench output on stdin into a stable JSON snapshot")
	flag.Parse()

	cur, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		cli.Fatal("gcbenchjson", err)
	}
	if len(cur) == 0 {
		cli.Fatalf("gcbenchjson", "no benchmark lines on stdin")
	}

	snap := Snapshot{Current: cur}
	var committed Snapshot
	if raw, err := os.ReadFile(*outPath); err == nil {
		if err := json.Unmarshal(raw, &committed); err != nil {
			cli.Fatalf("gcbenchjson", "existing %s is not a snapshot: %w", *outPath, err)
		}
		snap.PreChange = committed.PreChange
	}
	if snap.PreChange == nil {
		snap.PreChange = cur
	}

	if *floor != "" {
		if err := checkFloor(*floor, cur, committed.Current); err != nil {
			cli.Fatal("gcbenchjson", err)
		}
	}

	if *write {
		buf, err := json.MarshalIndent(&snap, "", "  ")
		if err != nil {
			cli.Fatal("gcbenchjson", err)
		}
		buf = append(buf, '\n')
		cli.CheckWrite("gcbenchjson", *outPath, os.WriteFile(*outPath, buf, 0o644))
	}

	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)
	// The summary goes through one buffered writer so a broken pipe or
	// full disk surfaces as an error instead of a silently short report.
	w := bufio.NewWriter(os.Stdout)
	for _, n := range names {
		r := cur[n]
		line := fmt.Sprintf("%-28s %14.0f ns/op", n, r.NsPerOp)
		if r.AllocsPerOp >= 0 {
			line += fmt.Sprintf(" %10.0f allocs/op", r.AllocsPerOp)
		}
		if r.OpsPerSec > 0 {
			line += fmt.Sprintf(" %12.0f ops/sec", r.OpsPerSec)
		}
		if pre, ok := snap.PreChange[n]; ok && pre.NsPerOp > 0 {
			line += fmt.Sprintf("   (%.2fx vs pre_change)", pre.NsPerOp/r.NsPerOp)
		}
		_, err := fmt.Fprintln(w, line)
		cli.CheckWrite("gcbenchjson", "stdout", err)
	}
	cli.CheckWrite("gcbenchjson", "stdout", w.Flush())
}
