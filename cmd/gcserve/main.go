// Command gcserve replays a workload or trace with the full probe
// suite attached and serves the live view over HTTP: a plain-text
// dashboard at /, JSON metrics at /metrics, the raw event log at
// /events, an observed parameter sweep at /sweep, and pprof profiles
// under /debug/pprof/.
//
// Usage:
//
//	gcserve -addr :8080 -k 4096 -B 64 -policy iblp -loop
//	gcserve -addr :8080 -policy gcm -trace requests.gct
//
// Then: curl localhost:8080/ for the dashboard.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gccache/internal/cli"
	"gccache/internal/obs"
	"gccache/internal/obs/serve"
	"gccache/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		k         = flag.Int("k", 4096, "cache size in items")
		B         = flag.Int("B", 64, "block size")
		policyArg = flag.String("policy", "iblp", "policy: item-lru, block-lru, iblp, gcm, adaptive")
		spec      = flag.String("workload", "blockruns:blocks=512,B=64,run=16,len=200000", workload.SpecHelp)
		traceFile = flag.String("trace", "", "read a gctrace binary file instead of generating a workload")
		seed      = flag.Int64("seed", 1, "workload / policy seed")
		shards    = flag.Int("shards", 1, "replay through this many lock-striped shards (power of two; 1 = flat)")
		streams   = flag.Int("streams", 4, "concurrent client streams (sharded mode)")
		probeSpec = flag.String("probe", "all", obs.SpecHelp)
		loop      = flag.Bool("loop", false, "replay the trace forever instead of once")
		rate      = flag.Int("rate", 0, "accesses/second per stream (0 = unthrottled)")
		duration  = flag.Duration("duration", 0, "stop after this long (0 = run until interrupted)")
		drain     = flag.Duration("drain", 5*time.Second, "grace period for in-flight responses on shutdown")
		selfcheck = flag.Bool("selfcheck", false, "start on an ephemeral port, probe own endpoints, and exit")

		autotune       = flag.Bool("autotune", false, "close the §5.3 loop: shadow candidate layer splits and apply winning resizes live (iblp/adaptive, shards=1)")
		autotuneWindow = flag.Int("autotune-window", 0, "autotune decision window in requests (0 = default)")

		clusterMode = flag.Bool("cluster", false, "serve as a cache-ring node (requires -ring and -cluster-addr; disables local replay)")
		ringFile    = flag.String("ring", "", "cluster mode: static ring file, one node address per line")
		clusterAddr = flag.String("cluster-addr", "", "cluster mode: this node's wire address (must appear in the ring file)")
	)
	cli.SetUsage("gcserve", "serve live cache-replay metrics, event logs, and pprof over HTTP")
	flag.Parse()

	cfg := serve.Config{
		Addr:      *addr,
		K:         *k,
		B:         *B,
		Policy:    *policyArg,
		Workload:  *spec,
		TraceFile: *traceFile,
		Seed:      *seed,
		Shards:    *shards,
		Streams:   *streams,
		Probe:     *probeSpec,
		Loop:      *loop,
		Rate:      *rate,

		Autotune:       *autotune,
		AutotuneWindow: *autotuneWindow,
	}
	if *clusterMode {
		if *ringFile == "" || *clusterAddr == "" {
			cli.Fatalf("gcserve", "-cluster requires -ring and -cluster-addr")
		}
		cfg.ClusterRing, cfg.ClusterAddr = *ringFile, *clusterAddr
	}
	if *selfcheck {
		cfg.Addr = "127.0.0.1:0"
		cfg.Loop = false
	}
	srv, err := serve.New(cfg)
	if err != nil {
		cli.Fatal("gcserve", err)
	}
	bound, err := srv.Start()
	if err != nil {
		cli.Fatal("gcserve", err)
	}
	fmt.Printf("gcserve: listening on http://%s (policy %s, %s)\n", bound, *policyArg, sourceDesc(cfg))
	if cfg.ClusterRing != "" {
		fmt.Printf("gcserve: cluster node %s in ring %s\n", srv.NodeAddr(), cfg.ClusterRing)
	}

	if *selfcheck {
		if err := runSelfcheck(srv, bound, cfg.ClusterRing != ""); err != nil {
			cli.Fatal("gcserve", err)
		}
		srv.Stop()
		fmt.Println("gcserve: selfcheck ok")
		return
	}

	// First SIGINT/SIGTERM: graceful shutdown — stop the replay, keep
	// serving in-flight responses until -drain expires. A second signal
	// during the drain forces an immediate stop.
	interrupt := make(chan os.Signal, 2)
	signal.Notify(interrupt, os.Interrupt, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case <-interrupt:
		case <-time.After(*duration):
		}
	} else {
		<-interrupt
	}
	fmt.Printf("gcserve: shutting down (draining up to %v; interrupt again to force)\n", *drain)
	if *clusterMode {
		// Graceful leave: stop accepting wire traffic, then hand the
		// node's cache state to its ring successor. A failed handoff is
		// reported but does not block shutdown — the state is lost the
		// same way it would be on a crash, which the ring tolerates.
		if err := srv.DrainAndHandoff(*drain); err != nil {
			fmt.Printf("gcserve: handoff failed: %v\n", err)
		} else {
			fmt.Println("gcserve: drained and handed off to ring successor")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			cli.Fatal("gcserve", fmt.Errorf("shutdown: %w", err))
		}
	case <-interrupt:
		srv.Stop()
	}
}

func sourceDesc(cfg serve.Config) string {
	if cfg.TraceFile != "" {
		return "trace " + cfg.TraceFile
	}
	return "workload " + cfg.Workload
}

// runSelfcheck waits for the replay to produce accesses, then fetches
// every endpoint once — the scripted version of the README quickstart.
// In cluster mode there is no local replay, so it only checks that the
// node is up and every probe endpoint answers.
func runSelfcheck(srv *serve.Server, bound string, clustered bool) error {
	if !clustered {
		srv.Wait() // non-looping replay: finishes quickly
	}
	base := "http://" + bound
	for _, path := range []string{"/healthz", "/readyz", "/", "/metrics", "/events", "/sweep", "/debug/pprof/cmdline"} {
		resp, err := http.Get(base + path)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			return fmt.Errorf("GET %s: empty body", path)
		}
	}
	if clustered {
		return nil // no local replay to account for
	}
	if st := srv.Stats(); st.Accesses == 0 {
		return fmt.Errorf("selfcheck replay produced no accesses")
	}
	return nil
}
