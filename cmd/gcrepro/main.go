// Command gcrepro regenerates every table and figure of the paper plus
// the empirical validation experiments (E1–E10), writing each report to
// an output directory as text and CSV. It exits non-zero if any of the
// paper's claims fails to reproduce.
//
// Usage:
//
//	gcrepro -out results/
//	gcrepro -out results/ -quick     # reduced scales for CI
package main

import (
	"flag"
	"fmt"
	"time"

	"gccache/internal/cli"
	"gccache/internal/experiments"
)

func main() {
	var (
		out   = flag.String("out", "results", "output directory")
		quick = flag.Bool("quick", false, "reduced scales (CI-friendly)")
	)
	cli.SetUsage("gcrepro", "regenerate every paper artifact and validation experiment into an output directory")
	flag.Parse()

	failures := 0
	for _, spec := range experiments.Registry() {
		start := time.Now()
		rep := spec.Run(*quick)
		if err := rep.WriteFiles(*out); err != nil {
			cli.Fatalf("gcrepro", "writing %s: %w", rep.Name, err)
		}
		status := "ok"
		if err := rep.Err(); err != nil {
			status = err.Error()
			failures++
		}
		_, err := fmt.Printf("%-22s -> %s/%s.txt (%.1fs) %s\n",
			spec.Label, *out, rep.Name, time.Since(start).Seconds(), status)
		cli.CheckWrite("gcrepro", "stdout", err)
	}
	if failures > 0 {
		cli.Fatalf("gcrepro", "%d experiment(s) failed to reproduce", failures)
	}
	_, err := fmt.Printf("all artifacts reproduced into %s/\n", *out)
	cli.CheckWrite("gcrepro", "stdout", err)
}
