package gccache_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandSmoke builds and runs every CLI once with representative
// flags, guarding against flag/wiring regressions. Skipped under -short
// (each invocation pays a `go run` compile).
func TestCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test compiles all six binaries")
	}
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.gct")

	cases := []struct {
		name string
		args []string
		want string // substring expected on stdout
	}{
		{"gcbounds-table1", []string{"run", "./cmd/gcbounds", "-artifact", "table1", "-h", "1024", "-B", "16"}, "Sleator-Tarjan"},
		{"gcbounds-fig3-csv", []string{"run", "./cmd/gcbounds", "-artifact", "figure3", "-points", "10", "-csv"}, "iblp-ub"},
		{"gctrace-gen", []string{"run", "./cmd/gctrace", "-workload", "cyclic:n=64,len=2000", "-B", "8", "-out", traceFile}, "wrote 2000 requests"},
		{"gcsim-file", []string{"run", "./cmd/gcsim", "-k", "128", "-B", "8", "-trace", traceFile, "-policy", "iblp,item-lru"}, "iblp"},
		{"gcopt", []string{"run", "./cmd/gcopt", "-workload", "blockruns:blocks=4,B=4,run=2,len=40", "-k", "8", "-B", "4"}, "exact GC optimum"},
		{"gcadversary", []string{"run", "./cmd/gcadversary", "-construction", "thm2", "-policy", "item-lru", "-k", "128", "-h", "33", "-B", "8", "-phases", "5"}, "ratio"},
		{"gcrepro-quick-table1-only", []string{"run", "./cmd/gcbounds", "-artifact", "table2"}, "Fault-rate"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cmd := exec.Command("go", c.args...)
			cmd.Dir = "."
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out)
			}
		})
	}
}
