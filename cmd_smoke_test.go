package gccache_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandSmoke builds and runs every CLI once with representative
// flags, guarding against flag/wiring regressions. Skipped under -short
// (each invocation pays a `go run` compile).
func TestCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test compiles all ten binaries")
	}
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.gct")
	scnTrace := filepath.Join(dir, "s.gct")

	cases := []struct {
		name string
		args []string
		want string // substring expected on stdout
	}{
		{"gcbounds-table1", []string{"run", "./cmd/gcbounds", "-artifact", "table1", "-h", "1024", "-B", "16"}, "Sleator-Tarjan"},
		{"gcbounds-fig3-csv", []string{"run", "./cmd/gcbounds", "-artifact", "figure3", "-points", "10", "-csv"}, "iblp-ub"},
		{"gctrace-gen", []string{"run", "./cmd/gctrace", "-workload", "cyclic:n=64,len=2000", "-B", "8", "-out", traceFile}, "wrote 2000 requests"},
		{"gcsim-file", []string{"run", "./cmd/gcsim", "-k", "128", "-B", "8", "-trace", traceFile, "-policy", "iblp,item-lru"}, "iblp"},
		{"gcopt", []string{"run", "./cmd/gcopt", "-workload", "blockruns:blocks=4,B=4,run=2,len=40", "-k", "8", "-B", "4"}, "exact GC optimum"},
		{"gcadversary", []string{"run", "./cmd/gcadversary", "-construction", "thm2", "-policy", "item-lru", "-k", "128", "-h", "33", "-B", "8", "-phases", "5"}, "ratio"},
		{"gcrepro-quick-table1-only", []string{"run", "./cmd/gcbounds", "-artifact", "table2"}, "Fault-rate"},
		{"gcsim-probe", []string{"run", "./cmd/gcsim", "-k", "128", "-B", "8",
			"-workload", "blockruns:blocks=32,B=8,run=4,len=4000", "-policy", "iblp",
			"-opt=false", "-probe", "counters,reuse"}, "==== probes: iblp("},
		{"gctrace-reuse", []string{"run", "./cmd/gctrace", "-workload", "cyclic:n=64,len=2000",
			"-B", "8", "-reuse"}, "reuse distances, block granularity"},
		{"gcserve-selfcheck", []string{"run", "./cmd/gcserve", "-selfcheck", "-k", "128", "-B", "8",
			"-workload", "blockruns:blocks=32,B=8,run=4,len=4000", "-policy", "iblp"}, "selfcheck ok"},
		{"gcload-selfcheck", []string{"run", "./cmd/gcload", "-selfcheck"}, "gcload: selfcheck ok"},
		{"gcload-cluster-selfcheck", []string{"run", "./cmd/gcload", "-cluster", "-selfcheck"}, "handoff verified"},
		{"gcload-open", []string{"run", "./cmd/gcload", "-k", "128", "-B", "8", "-shards", "2",
			"-streams", "2", "-ops", "20000",
			"-workload", "blockruns:blocks=32,B=8,run=4,len=4000"}, "ops/sec"},
		{"gcload-batch", []string{"run", "./cmd/gcload", "-mode", "batch", "-k", "128", "-B", "8",
			"-shards", "2", "-streams", "2", "-ops", "20000",
			"-workload", "blockruns:blocks=32,B=8,run=4,len=4000"}, "ops/sec"},
		{"gcopt-deadline-anytime", []string{"run", "./cmd/gcopt", "-workload",
			"blockruns:blocks=4,B=4,run=2,len=400", "-k", "8", "-B", "4", "-exact",
			"-deadline", "1ns"}, "incumbent (feasible upper bound)"},
		{"gcscn-check", []string{"run", "./cmd/gcscn", "scenarios/hotcold.gcs"}, "ok"},
		{"gcscn-explain", []string{"run", "./cmd/gcscn", "-explain", "scenarios/drift.gcs"}, "drift("},
		{"gcscn-stats", []string{"run", "./cmd/gcscn", "-stats", "-B", "64", "scenarios/hotcold.gcs"}, "items/block"},
		{"gcscn-compile", []string{"run", "./cmd/gcscn", "-out", scnTrace, "scenarios/hotcold.gcs"}, "wrote"},
		{"gcsim-scenario", []string{"run", "./cmd/gcsim", "-k", "256", "-B", "64",
			"-scenario", "scenarios/hotcold.gcs", "-policy", "item-lru,block-lru"}, "effective seed 17"},
		{"gcload-scenario-open", []string{"run", "./cmd/gcload", "-scenario", "scenarios/hotcold.gcs",
			"-k", "256", "-B", "64", "-shards", "2", "-streams", "2", "-ops", "20000"}, "ops/sec"},
		{"gcload-scenario-batch", []string{"run", "./cmd/gcload", "-scenario", "scenarios/hotcold.gcs",
			"-mode", "batch", "-k", "256", "-B", "64", "-shards", "2", "-ops", "20000"}, "ops/sec"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cmd := exec.Command("go", c.args...)
			cmd.Dir = "."
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", c.args, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out)
			}
		})
	}
}

// TestGcsimKillResumeByteIdentical kills a gcsim run mid-way via
// -deadline, resumes it from the checkpoint, and asserts the resumed
// run's stdout is byte-identical to an uninterrupted run — the
// checkpoint contract of the fault-tolerance layer, end to end at the
// CLI level. Skipped under -short (three `go run` invocations).
func TestGcsimKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("kill/resume test pays three go run compiles")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sim.ckpt")
	args := func(extra ...string) []string {
		base := []string{"run", "./cmd/gcsim", "-k", "256", "-B", "8",
			"-workload", "blockruns:blocks=64,B=8,run=8,len=60000", "-opt=false"}
		return append(base, extra...)
	}
	run := func(args []string) (string, error) {
		cmd := exec.Command("go", args...)
		cmd.Dir = "."
		cmd.Env = os.Environ()
		var stdout strings.Builder
		cmd.Stdout = &stdout
		err := cmd.Run()
		return stdout.String(), err
	}
	plain, err := run(args())
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	// A 1ns budget guarantees the deadline fires before the first policy
	// completes, exercising the save-and-exit path deterministically.
	if _, err := run(args("-deadline", "1ns", "-checkpoint", ckpt)); err == nil {
		t.Fatal("deadline run exited 0, want nonzero")
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("deadline run left no checkpoint: %v", err)
	}
	resumed, err := run(args("-resume", "-checkpoint", ckpt))
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumed != plain {
		t.Errorf("resumed stdout differs from uninterrupted run:\n--- plain ---\n%s\n--- resumed ---\n%s", plain, resumed)
	}
}

// TestGcsimScenarioDeterministic runs gcsim twice on the same scenario
// program with an explicit seed and asserts byte-identical stdout —
// the DSL's headline contract (docs/SCENARIOS.md §3) held end to end
// at the CLI level, not just inside internal/scenario's own tests.
// Skipped under -short (two `go run` invocations).
func TestGcsimScenarioDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism smoke pays two go run compiles")
	}
	args := []string{"run", "./cmd/gcsim", "-k", "1024", "-B", "64",
		"-scenario", "scenarios/drift.gcs", "-seed", "7", "-policy", "item-lru,block-lru,iblp"}
	var outs [2]string
	for i := range outs {
		cmd := exec.Command("go", args...)
		cmd.Dir = "."
		cmd.Env = os.Environ()
		var stdout strings.Builder
		cmd.Stdout = &stdout
		if err := cmd.Run(); err != nil {
			t.Fatalf("run %d: %v", i+1, err)
		}
		outs[i] = stdout.String()
	}
	if outs[0] != outs[1] {
		t.Errorf("two runs of the same scenario+seed differ:\n--- first ---\n%s\n--- second ---\n%s", outs[0], outs[1])
	}
	if !strings.Contains(outs[0], "effective seed 7") {
		t.Errorf("output does not acknowledge the explicit seed:\n%s", outs[0])
	}
}

// TestCommandUsage runs every CLI with -h and asserts the uniform
// usage banner plus a mention of every registered flag. Catches both
// drift in internal/cli.SetUsage wiring and flags added without help
// text. Skipped under -short for the same compile-cost reason.
func TestCommandUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("usage test compiles all ten binaries")
	}
	cmds := map[string][]string{
		"gcadversary": {"construction", "policy", "k", "h", "B", "phases", "p", "seed"},
		"gcbenchjson": {"out", "write", "floor"},
		"gcbounds":    {"artifact", "k", "h", "B", "size", "points", "csv"},
		"gcopt":       {"workload", "trace", "k", "B", "seed", "exact", "deadline", "checkpoint", "resume"},
		"gcrepro":     {"out", "quick"},
		"gcload": {"k", "B", "policy", "workload", "trace", "scenario", "seed", "shards", "streams",
			"ops", "rate", "mode", "batch", "depth", "pin", "duration", "selfcheck", "cluster", "ring"},
		"gcscn": {"fmt", "explain", "stats", "out", "seed", "B"},
		"gcserve": {"addr", "k", "B", "policy", "workload", "trace", "seed",
			"shards", "streams", "probe", "loop", "rate", "duration", "selfcheck", "drain",
			"cluster", "ring", "cluster-addr"},
		"gcsim": {"k", "B", "policy", "workload", "trace", "scenario", "seed", "opt", "probe",
			"deadline", "checkpoint", "resume"},
		"gctrace": {"workload", "out", "in", "B", "seed", "format", "mrc", "reuse"},
	}
	for name, flags := range cmds {
		name, flags := name, flags
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./cmd/"+name, "-h")
			cmd.Dir = "."
			cmd.Env = os.Environ()
			// flag's -h handling may exit 0 or nonzero depending on the
			// command; only the printed usage text matters here.
			out, err := cmd.CombinedOutput()
			if err != nil {
				if _, ok := err.(*exec.ExitError); !ok {
					t.Fatalf("go run ./cmd/%s -h: %v\n%s", name, err, out)
				}
			}
			text := string(out)
			if !strings.Contains(text, "usage: "+name) {
				t.Errorf("missing uniform usage banner %q:\n%s", "usage: "+name, text)
			}
			for _, f := range flags {
				if !strings.Contains(text, "-"+f) {
					t.Errorf("usage output does not mention flag -%s:\n%s", f, text)
				}
			}
		})
	}
}
