package gccache_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocs walks every package under internal/ and cmd/ (plus
// the root facade) and asserts each has a non-empty package comment.
// The doc comment is the contract a reader meets first; an empty one
// is a regression the compiler cannot catch.
func TestPackageDocs(t *testing.T) {
	var dirs []string
	for _, root := range []string{".", "internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if base == "testdata" || strings.HasPrefix(base, ".") {
				return fs.SkipDir
			}
			if root == "." && path != "." {
				return fs.SkipDir // internal/ and cmd/ are walked explicitly
			}
			dirs = append(dirs, path)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		hasGo := false
		for _, e := range entries {
			name := e.Name()
			if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			continue
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			doc := ""
			for _, f := range pkg.Files {
				if f.Doc != nil {
					doc += f.Doc.Text()
				}
			}
			if len(strings.TrimSpace(doc)) < 40 {
				t.Errorf("package %s (%s): package doc missing or too thin (%d chars); document what the package models and how it fits the paper",
					name, dir, len(strings.TrimSpace(doc)))
			}
		}
	}
	if len(dirs) < 10 {
		t.Fatalf("walked only %d package dirs — walker is broken", len(dirs))
	}

	// Packages whose doc comments carry documented contracts other
	// tests rely on (e.g. the scenario DSL's determinism and hot-path
	// guarantees) must be in the walked set — if a restructure moves
	// them out from under the walker, fail loudly instead of silently
	// dropping the doc gate.
	mustCover := []string{
		filepath.Join("internal", "scenario"),
		filepath.Join("cmd", "gcscn"),
		filepath.Join("internal", "trace"),
		filepath.Join("internal", "concurrent"),
	}
	walked := make(map[string]bool, len(dirs))
	for _, d := range dirs {
		walked[d] = true
	}
	for _, want := range mustCover {
		if !walked[want] {
			t.Errorf("package dir %s was not walked — the doc gate no longer covers it", want)
		}
	}
}
