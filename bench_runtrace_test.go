package gccache_test

import (
	"testing"

	"gccache"
	"gccache/internal/model"
	"gccache/internal/workload"
)

func runTraceWorkload(b *testing.B) (*model.Fixed, gccache.Trace) {
	b.Helper()
	g := model.NewFixed(64)
	tr, err := workload.BlockRuns(workload.BlockRunsConfig{
		NumBlocks: 4096, BlockSize: 64, MeanRunLength: 8,
		ZipfS: 1.2, Length: 1 << 16, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g, tr
}

// BenchmarkRunTrace measures the end-to-end trace-replay hot path — policy
// access, recorder classification, and net-change reconciliation — by
// replaying one BlockRuns trace per iteration through the even-split IBLP
// on the dense (bounded-universe) path. BENCH_baseline.json keeps the
// pre-optimization number under "pre_change" for the trajectory.
func BenchmarkRunTrace(b *testing.B) {
	g, tr := runTraceWorkload(b)
	u := model.ItemUniverse(g, tr.Universe())
	c := gccache.NewIBLPEvenSplitBounded(4096, g, u)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := gccache.RunColdBounded(c, tr, u)
		if st.Misses == 0 {
			b.Fatal("implausible: zero misses")
		}
	}
}

// BenchmarkRunTraceGeneric is the same replay on the generic (map-backed)
// representation — the permanent reference point for the dense path's
// speedup, so the comparison stays reproducible on any machine.
func BenchmarkRunTraceGeneric(b *testing.B) {
	g, tr := runTraceWorkload(b)
	c := gccache.NewIBLPEvenSplit(4096, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := gccache.RunCold(c, tr)
		if st.Misses == 0 {
			b.Fatal("implausible: zero misses")
		}
	}
}

// BenchmarkSweep measures the chunked work-stealing sweep engine on a
// 64-point grid, one pooled dense IBLP per worker reused (via the
// RunColdBounded reset) across every point the worker claims.
func BenchmarkSweep(b *testing.B) {
	g, tr := runTraceWorkload(b)
	u := model.ItemUniverse(g, tr.Universe())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gccache.Sweep(64, 0, func() gccache.Cache {
			return gccache.NewIBLPEvenSplitBounded(4096, g, u)
		}, func(pt int, c gccache.Cache) {
			if st := gccache.RunColdBounded(c, tr, u); st.Misses == 0 {
				b.Fatal("implausible: zero misses")
			}
		})
	}
}
