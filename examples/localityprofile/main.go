// Locality-model analysis (§7): measure a workload's item and block
// working-set functions f(n) and g(n), evaluate the paper's fault-rate
// bounds with them, and compare against simulated fault rates — the
// "analysis without a hypothetical comparison point" the paper argues
// for in §5.3/§7.
package main

import (
	"fmt"
	"log"

	"gccache"
	"gccache/internal/locality"
)

func main() {
	const (
		B = 16
		k = 256 // total cache; IBLP splits it i = b = 128
	)
	geo := gccache.NewFixedGeometry(B)

	for _, wl := range []struct {
		name string
		spec string
	}{
		{"high spatial locality", "blockruns:blocks=256,B=16,run=12,zipf=1.1,len=200000"},
		{"no spatial locality", "stride:n=512,s=16,len=200000"},
		{"sequential sweep", "cyclic:n=4096,len=200000"},
	} {
		tr, err := gccache.GenerateWorkload(wl.spec, 3)
		if err != nil {
			log.Fatal(err)
		}
		lengths := locality.GeometricLengths(1 << 14)
		f := gccache.MeasureItemLocality(tr, lengths)
		g := gccache.MeasureBlockLocality(tr, geo, lengths)
		ratio := locality.SpatialLocalityRatio(f, g)

		lb := gccache.FaultRateLowerBound(k, f, g)
		ub := gccache.IBLPFaultRateUpperBound(k/2, k/2, B, f, g)

		iblp := gccache.RunCold(gccache.NewIBLPEvenSplit(k, geo), tr)
		lru := gccache.RunCold(gccache.NewItemLRU(k), tr)
		blk := gccache.RunCold(gccache.NewBlockLRU(k, geo), tr)

		fmt.Printf("== %s ==\n", wl.name)
		fmt.Printf("  measured spatial-locality ratio f/g: %.2f (1 = none, B = %d = max)\n", ratio, B)
		fmt.Printf("  Theorem 8 fault-rate lower bound (any policy, size %d): %.5f\n", k, lb)
		fmt.Printf("  Theorem 11 IBLP fault-rate upper bound (i=b=%d):        %.5f\n", k/2, ub)
		fmt.Printf("  simulated fault rates: iblp %.5f | item-lru %.5f | block-lru %.5f\n\n",
			iblp.MissRatio(), lru.MissRatio(), blk.MissRatio())
	}
	fmt.Println("note: the Theorem 9–11 bounds are worst-case over all traces with")
	fmt.Println("the measured f/g, so simulated rates sit at or below them; the")
	fmt.Println("Theorem 8 bound is a floor for worst-case members of the family,")
	fmt.Println("not for every individual trace.")
}
