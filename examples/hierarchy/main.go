// Multi-level hierarchy: the paper's Figure 1 setting end to end. An L1
// of 64-item "lines" sits above an L2 whose loads come in 512-item
// "rows"; we compare a granularity-oblivious L2 against GC-aware designs
// and report hierarchy-wide traffic cost and AMAT.
package main

import (
	"fmt"
	"log"

	"gccache"
	"gccache/internal/core"
	"gccache/internal/hierarchy"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/workload"
)

func main() {
	const (
		lineSize = 64  // L1 ↔ L2 granularity
		rowSize  = 512 // L2 ↔ memory granularity
		l1Size   = 4 * 1024
		l2Size   = 64 * 1024
	)
	lineGeo := model.NewFixed(lineSize)
	rowGeo := model.NewFixed(rowSize)

	// Application: two passes of a row-major matrix sweep, a scattered
	// pointer chase, and a hot working set.
	matrix := workload.MatrixTraversal(512, 1024, true, 2)
	chase := workload.Scatter(workload.Zipf(50000, 1.05, 200000, 3), rowSize, 3)
	hot, err := workload.HotCold{HotItems: 512, BlockSize: lineSize,
		HotFraction: 0.8, ColdUniverse: 200000, Length: 200000, Seed: 3}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	app := workload.Phased(matrix, chase, hot)
	fmt.Printf("application: %d accesses\n\n", len(app))

	designs := []struct {
		name string
		l2   gccache.Cache
	}{
		{"L2 item-LRU (granularity-oblivious)", policy.NewItemLRU(l2Size)},
		{"L2 row cache (block-LRU)", policy.NewBlockLRU(l2Size, rowGeo)},
		{"L2 footprint (load row, evict lines)", policy.NewBlockLoadItemEvict(l2Size, rowGeo)},
		{"L2 IBLP", core.NewIBLPEvenSplit(l2Size, rowGeo)},
	}
	for _, d := range designs {
		stack, err := hierarchy.New(
			hierarchy.Level{Name: "L1", Cache: policy.NewBlockLoadItemEvict(l1Size, lineGeo), MissCost: 10},
			hierarchy.Level{Name: d.name, Cache: d.l2, MissCost: 200},
		)
		if err != nil {
			log.Fatal(err)
		}
		res := stack.Run(app)
		fmt.Printf("== %s ==\n%s\n\n", d.name, res)
	}
	fmt.Println("reading: designs that operate on whole rows (row cache, footprint)")
	fmt.Println("triple the traffic here — the pointer-chase phase pollutes them,")
	fmt.Println("Theorem 3's effect. The oblivious item cache survives the chase but")
	fmt.Println("pays a row fetch per cold line on the matrix phase. IBLP's layered")
	fmt.Println("design wins on total traffic and AMAT — Figure 1's opportunity,")
	fmt.Println("captured without losing robustness.")
}
