// DRAM-cache scenario: the paper's motivating granularity boundary
// (§1: SRAM lines of 64 B backed by DRAM rows of 2–4 KB; die-stacked
// DRAM caches such as Footprint/Unison take "some or all of the
// larger-granularity block into the smaller-granularity cache").
//
// We model an on-package cache of 64-item rows (B = 64) in front of slow
// memory, and drive it with a composite application: a row-major matrix
// sweep (high spatial locality), a pointer-chasing phase (none), and a
// hot working set of descriptors (temporal locality). The example shows
// why production DRAM caches moved to footprint-style designs — exactly
// the load-some-or-all policy space the paper formalizes.
package main

import (
	"fmt"
	"log"

	"gccache"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

func main() {
	const (
		rowItems  = 64   // items per DRAM row (B)
		cacheSize = 8192 // on-package cache capacity in items
	)
	geo := gccache.NewFixedGeometry(rowItems)

	// Phase 1: row-major sweep over a 256×512 matrix (spatial locality).
	matrix := workload.MatrixTraversal(256, 512, true, 2)
	// Phase 2: pointer chasing — scattered single-item accesses.
	chase := workload.Scatter(workload.Zipf(20000, 1.01, 120000, 7), rowItems, 7)
	// Phase 3: hot descriptors, one per row, hammered repeatedly.
	hot, err := workload.HotCold{
		HotItems: 64, BlockSize: rowItems, HotFraction: 0.9,
		ColdUniverse: 50000, Length: 120000, Seed: 7,
	}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	app := workload.Phased(matrix, chase, hot)

	fmt.Println("composite application:", len(app), "accesses across 3 phases")
	fmt.Printf("%-24s %10s %12s %13s\n", "design", "misses", "miss ratio", "spatial hits")

	designs := []gccache.Cache{
		// Conventional line cache: ignores the row granularity entirely.
		gccache.NewItemLRU(cacheSize),
		// Page-based DRAM cache: allocates whole rows (pollution-prone).
		gccache.NewBlockLRU(cacheSize, geo),
		// Row-fetch with line-grain eviction (the a=1 design of §4.4).
		gccache.NewBlockLoadItemEvict(cacheSize, geo),
		// Footprint cache (Jevdjic et al.): learns which lines of a row
		// were used last residency and fetches exactly those.
		gccache.NewFootprint(cacheSize, geo),
		// The paper's IBLP: a line layer in front of a row layer.
		gccache.NewIBLPEvenSplit(cacheSize, geo),
	}
	perPhase := [][3]float64{}
	for _, c := range designs {
		st := gccache.RunCold(c, app)
		fmt.Printf("%-24s %10d %12.4f %13d\n", st.Policy, st.Misses, st.MissRatio(), st.SpatialHits)
		// Per-phase breakdown for the summary below.
		var ratios [3]float64
		for pi, ph := range []trace.Trace{matrix, chase, hot} {
			ratios[pi] = gccache.RunCold(c, ph).MissRatio()
		}
		perPhase = append(perPhase, ratios)
	}

	fmt.Println("\nper-phase miss ratios (matrix / pointer-chase / hot-set):")
	names := []string{"line cache (item-lru)", "page cache (block-lru)",
		"row-fetch, line-evict (a=1)", "footprint (predicted subset)", "iblp"}
	for i, n := range names {
		fmt.Printf("  %-34s %.4f / %.4f / %.4f\n", n, perPhase[i][0], perPhase[i][1], perPhase[i][2])
	}
	fmt.Println("\ntakeaway: the line cache loses the matrix phase B×; the page cache")
	fmt.Println("loses the pointer chase to row pollution; the footprint cache pays")
	fmt.Println("a full training pass before its predictions kick in; row-fetch with")
	fmt.Println("line-grain eviction and IBLP are robust in all three phases — the")
	fmt.Println("design space Theorems 2–4 delimit.")
}
