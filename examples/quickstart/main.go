// Quickstart: build an IBLP cache, run a mixed-locality workload through
// it and through the two single-granularity baselines, and print the
// paper's headline effect — the layered cache is robust where each
// baseline collapses.
package main

import (
	"fmt"
	"log"

	"gccache"
)

func main() {
	const (
		blockSize = 64   // B: items per block at the level below
		cacheSize = 4096 // k: items the cache can hold
	)
	geo := gccache.NewFixedGeometry(blockSize)

	// A workload with both kinds of locality: skewed block popularity
	// (temporal) and multi-item excursions into each block (spatial).
	tr, err := gccache.GenerateWorkload(
		"blockruns:blocks=1024,B=64,run=16,zipf=1.2,len=300000", 42)
	if err != nil {
		log.Fatal(err)
	}

	caches := []gccache.Cache{
		gccache.NewItemLRU(cacheSize),            // loads only requested items
		gccache.NewBlockLRU(cacheSize, geo),      // loads & evicts whole blocks
		gccache.NewIBLPEvenSplit(cacheSize, geo), // the paper's layered policy
	}
	fmt.Printf("%-22s %10s %12s %14s %13s\n",
		"policy", "misses", "miss ratio", "temporal hits", "spatial hits")
	for _, c := range caches {
		st := gccache.RunCold(c, tr)
		fmt.Printf("%-22s %10d %12.4f %14d %13d\n",
			st.Policy, st.Misses, st.MissRatio(), st.TemporalHits, st.SpatialHits)
	}

	// How close is IBLP to offline optimal? Bracket OPT from both sides.
	est := gccache.EstimateOptimal(tr, geo, cacheSize)
	fmt.Printf("\noffline optimum bracket: %d ≤ OPT ≤ %d (%s)\n",
		est.Lower, est.Upper, est.UpperMethod)

	// And what does the theory promise? The §5.3 bound for IBLP sized
	// against an optimal cache of half our size.
	h := float64(cacheSize) / 2
	fmt.Printf("IBLP competitive-ratio upper bound vs OPT(h=%.0f): %.2f (Theorem 7 + §5.3)\n",
		h, gccache.IBLPKnownSizeRatio(float64(cacheSize), h, blockSize))
}
