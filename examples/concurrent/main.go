// Concurrent serving: a sharded, thread-safe GC cache fed by many client
// streams at once — the deployment shape of the paper's motivating
// systems (shared DRAM caches, storage-server buffer pools). Sharding is
// by block, so the unit-cost block load of the GC model never crosses a
// shard boundary.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"gccache"
)

func main() {
	const (
		blockSize = 64
		cacheSize = 1 << 15
		shards    = 16
		clients   = 8
	)
	geo := gccache.NewFixedGeometry(blockSize)

	s, err := gccache.NewShardedCache(shards, cacheSize, geo,
		func(per int) gccache.Cache { return gccache.NewIBLPEvenSplit(per, geo) })
	if err != nil {
		log.Fatal(err)
	}

	tr, err := gccache.GenerateWorkload(
		"blockruns:blocks=4096,B=64,run=16,zipf=1.2,len=1000000", 11)
	if err != nil {
		log.Fatal(err)
	}
	streams := gccache.SplitStreams(tr, clients)

	start := time.Now()
	st := gccache.ReplayConcurrent(s, streams)
	elapsed := time.Since(start)

	fmt.Printf("served %d requests from %d client streams on %d CPUs in %v\n",
		st.Accesses, clients, runtime.GOMAXPROCS(0), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.1f M requests/s\n",
		float64(st.Accesses)/elapsed.Seconds()/1e6)
	fmt.Printf("miss ratio %.4f — %d temporal hits, %d spatial hits\n",
		st.MissRatio(), st.TemporalHits, st.SpatialHits)

	// The composite is still a legal GC cache: same API, same analysis.
	fmt.Printf("\ncomposite cache: %s, capacity %d across %d shards\n",
		s.Name(), s.Capacity(), s.NumShards())
	fmt.Println("each shard runs its own IBLP; blocks never straddle shards, so")
	fmt.Println("the paper's single-cache bounds apply shard-by-shard.")
}
