// Adversarial lower bounds, live: run the paper's §4 constructions
// against real policy implementations and watch the measured competitive
// ratios land on the analytic bounds — then watch IBLP escape them.
package main

import (
	"fmt"
	"log"

	"gccache"
)

func main() {
	const (
		B      = 16
		k      = 512
		h      = B + 1 + 14*B // 241: h ≥ B with B | (k−h+1) — exact bound
		phases = 40
	)
	geo := gccache.NewFixedGeometry(B)

	fmt.Println("Theorem 2 construction (kills Item Caches):")
	for _, mk := range []func() gccache.Cache{
		func() gccache.Cache { return gccache.NewItemLRU(k) },
		func() gccache.Cache { return gccache.NewFIFO(k) },
		func() gccache.Cache { return gccache.NewIBLPEvenSplit(k, geo) },
	} {
		c := mk()
		res, err := gccache.RunItemCacheAdversary(c, geo, h, phases)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s measured ratio %7.2f   (Theorem 2 bound for item caches: %.2f)\n",
			c.Name(), res.Ratio(), res.BoundClaim)
	}

	fmt.Println("\nTheorem 3 construction (kills Block Caches):")
	hBlock := 8
	res, err := gccache.RunBlockCacheAdversary(gccache.NewBlockLRU(k, geo), geo, hBlock, phases)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-20s measured ratio %7.2f   (Theorem 3 bound: %.2f)\n",
		"block-lru", res.Ratio(), res.BoundClaim)

	fmt.Println("\nTheorem 4 construction (any deterministic policy, measured a):")
	for _, a := range []int{1, 4, 16} {
		c := gccache.NewAThreshold(k, a, geo)
		res, err := gccache.RunGeneralAdversary(c, geo, h, phases)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s measured ratio %7.2f   (Theorem 4 bound at a=%d: %.2f)\n",
			c.Name(), res.Ratio(), a, res.BoundClaim)
	}

	fmt.Println("\nreading: each single-granularity policy realizes its lower bound;")
	fmt.Println("IBLP's block layer turns the Theorem 2 trace's fresh-block sweeps")
	fmt.Println("into spatial hits, so its measured ratio collapses — the gap the")
	fmt.Println("paper proves can be as large as ≈B×.")
}
