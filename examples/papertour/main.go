// A guided tour of the paper, section by section, with every claim
// evaluated live: the model (§2), NP-completeness via the reduction
// (§3), the lower bounds realized by adaptive adversaries (§4), IBLP and
// its upper bound (§5), GCM (§6), and the locality model (§7).
package main

import (
	"fmt"
	"log"

	"gccache"
	"gccache/internal/locality"
)

func section(title string) { fmt.Printf("\n━━ %s ━━\n", title) }

func main() {
	const (
		B = 16
		k = 512
		h = 241 // B | (k−h+1) so the §4 bounds are exact
	)
	geo := gccache.NewFixedGeometry(B)

	section("§2 The model: subset loads at unit cost")
	c := gccache.NewBlockLoadItemEvict(k, geo)
	st := gccache.RunCold(c, gccache.Trace{0, 1, 2, 3})
	fmt.Printf("accessing 4 siblings of one block: %d miss, %d spatial hits — items after the first are free\n",
		st.Misses, st.SpatialHits)

	section("§3 Offline GC caching is NP-complete (Theorem 1)")
	tr := gccache.Trace{0, 1, 0, 1, 16, 32, 33, 34, 0, 1}
	exact, err := gccache.ExactOptimal(tr, geo, 4)
	if err != nil {
		log.Fatal(err)
	}
	est := gccache.EstimateOptimal(tr, geo, 4)
	fmt.Printf("exact solver (exponential, as NP-completeness demands): OPT = %d;\n", exact)
	fmt.Printf("polynomial bracket for large instances: %d ≤ OPT ≤ %d (%s)\n",
		est.Lower, est.Upper, est.UpperMethod)

	section("§4 Lower bounds, realized against live policies")
	res, err := gccache.RunItemCacheAdversary(gccache.NewItemLRU(k), geo, h, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 2 vs item-lru:  measured %.2f, bound %.2f\n", res.Ratio(), res.BoundClaim)
	res, err = gccache.RunBlockCacheAdversary(gccache.NewBlockLRU(k, geo), geo, 8, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 3 vs block-lru: measured %.2f, bound %.2f\n", res.Ratio(), res.BoundClaim)
	res, err = gccache.RunGeneralAdversary(gccache.NewAThreshold(k, 4, geo), geo, h, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 4 vs a=4:       measured %.2f, bound %.2f\n", res.Ratio(), res.BoundClaim)

	section("§5 IBLP and its upper bound")
	iblp := gccache.NewIBLPEvenSplit(k, geo)
	res, err = gccache.RunItemCacheAdversary(iblp, geo, h, 30)
	if err != nil {
		log.Fatal(err)
	}
	ub := gccache.IBLPUpperBound(float64(k/2), float64(k-k/2), float64(h), B)
	fmt.Printf("same Theorem 2 trace vs IBLP: measured %.2f ≤ Theorem 7 bound %.2f\n",
		res.Ratio(), ub)
	fmt.Printf("§5.3 sizing against h=%d: optimal item layer %.0f of %d\n",
		h, gccache.OptimalItemLayer(k, h, B), k)

	section("§6 Randomized: GCM vs granularity-oblivious marking")
	gcmRes, err := gccache.RunItemCacheAdversary(gccache.NewGCM(k, geo, 1), geo, h, 30)
	if err != nil {
		log.Fatal(err)
	}
	markRes, err := gccache.RunItemCacheAdversary(gccache.NewMarking(k, 1), geo, h, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on spatial traces: marking %.2f vs GCM %.2f (the ≈B× gap of §6.1)\n",
		markRes.Ratio(), gcmRes.Ratio())

	section("§7 The locality model: analysis without a comparison point")
	wl, err := gccache.GenerateWorkload("blockruns:blocks=256,B=16,run=8,len=100000", 2)
	if err != nil {
		log.Fatal(err)
	}
	lengths := locality.GeometricLengths(1 << 14)
	f := gccache.MeasureItemLocality(wl, lengths)
	g := gccache.MeasureBlockLocality(wl, geo, lengths)
	fmt.Printf("measured f/g spatial-locality ratio: %.2f (1 = none, B = %d = max)\n",
		locality.SpatialLocalityRatio(f, g), B)
	fmt.Printf("Theorem 8 fault-rate floor at k=%d:  %.5f\n", k, gccache.FaultRateLowerBound(k, f, g))
	fmt.Printf("Theorem 11 IBLP fault-rate ceiling:  %.5f\n",
		gccache.IBLPFaultRateUpperBound(float64(k/2), float64(k/2), B, f, g))
	sim := gccache.RunCold(gccache.NewIBLPEvenSplit(k, geo), wl)
	fmt.Printf("simulated IBLP fault rate:           %.5f\n", sim.MissRatio())

	fmt.Println("\n(regenerate every table and figure with: go run ./cmd/gcrepro -out results)")
}
