// Package gccache is a library for the Granularity-Change (GC) Caching
// Problem of Beckmann, Gibbons & McGuffey (SPAA 2022): caching at a
// granularity boundary, where a cache of unit-size items may load any
// subset of the requested item's block — items after the first are free.
//
// The package re-exports the stable public surface of the repository:
//
//   - the model vocabulary (items, blocks, geometries),
//   - the simulator (Cache interface, statistics, trace runner),
//   - the paper's policies — IBLP (Item-Block Layered Partitioning) and
//     GCM (Granularity-Change Marking) — plus the single-granularity
//     baselines they are analyzed against,
//   - the closed-form competitive-ratio and fault-rate bounds (Theorems
//     2–11) and the §5.3 partition-sizing rules,
//   - offline optimal baselines (Belady, exact GC-OPT for small
//     instances, bracketing heuristics),
//   - synthetic workload generators and the adaptive lower-bound
//     adversaries.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every regenerated table and figure.
package gccache

import (
	"context"
	"io"

	"gccache/internal/adversary"
	"gccache/internal/bounds"
	"gccache/internal/cachesim"
	"gccache/internal/concurrent"
	"gccache/internal/core"
	"gccache/internal/hierarchy"
	"gccache/internal/locality"
	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/opt"
	"gccache/internal/policy"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

// Model vocabulary.
type (
	// Item identifies a unit-size cacheable datum.
	Item = model.Item
	// Block identifies a group of at most B items loadable for unit cost.
	Block = model.Block
	// Geometry partitions the item universe into blocks.
	Geometry = model.Geometry
	// Trace is an ordered sequence of item requests.
	Trace = trace.Trace
)

// NewFixedGeometry returns the aligned geometry where item i belongs to
// block i/B — the geometry of an address space split into B-item lines.
func NewFixedGeometry(B int) *model.Fixed { return model.NewFixed(B) }

// NewTableGeometry builds an explicit geometry from item lists, one block
// per list (used, e.g., by the Theorem 1 reduction's active sets).
func NewTableGeometry(blocks [][]Item) (*model.Table, error) { return model.NewTable(blocks) }

// ItemUniverse expands an upper bound on *requested* item IDs to cover
// every item a block-loading policy may bring in (the whole block of
// each requested item). Pass the result — not the raw Trace.Universe —
// to the *Bounded constructors and RunBounded/RunColdBounded. A zero
// return means no finite bound is derivable; use the generic path.
func ItemUniverse(g Geometry, universe int) int { return model.ItemUniverse(g, universe) }

// Simulation.
type (
	// Cache is an online GC caching policy.
	Cache = cachesim.Cache
	// Access reports the effect of one request.
	Access = cachesim.Access
	// Stats aggregates hits (split into temporal and spatial), misses,
	// loads, and evictions over a run.
	Stats = cachesim.Stats
)

// Run replays tr through c and returns statistics; RunCold resets first.
func Run(c Cache, tr Trace) Stats     { return cachesim.Run(c, tr) }
func RunCold(c Cache, tr Trace) Stats { return cachesim.RunCold(c, tr) }

// RunBounded and RunColdBounded are Run and RunCold with the recorder on
// its allocation-free dense path for item IDs in [0, universe). The bound
// must cover every item the policy may LOAD, not just those requested:
// block-loading policies pull in whole blocks, so expand Trace.Universe
// with model.ItemUniverse(g, tr.Universe()) before passing it here.
func RunBounded(c Cache, tr Trace, universe int) Stats {
	return cachesim.RunBounded(c, tr, universe)
}
func RunColdBounded(c Cache, tr Trace, universe int) Stats {
	return cachesim.RunColdBounded(c, tr, universe)
}

// RunBoundedCtx and RunColdBoundedCtx are the bounded replays with
// cooperative cancellation (see RunCtx for the error contract).
func RunBoundedCtx(ctx context.Context, c Cache, tr Trace, universe int) (Stats, error) {
	return cachesim.RunBoundedCtx(ctx, c, tr, universe)
}
func RunColdBoundedCtx(ctx context.Context, c Cache, tr Trace, universe int) (Stats, error) {
	return cachesim.RunColdBoundedCtx(ctx, c, tr, universe)
}

// Streaming replay (see DESIGN.md, "Serving & streaming"): replaying a
// trace file through TraceScanner and RunStream needs O(1) memory
// regardless of trace length, with statistics byte-identical to the
// in-memory Run path.
type (
	// TraceSource is an incremental stream of item requests — the
	// streaming counterpart of Trace. Next/Item/Err follow the
	// bufio.Scanner iteration shape.
	TraceSource = trace.Source
	// TraceScanner incrementally decodes the gctrace binary format.
	TraceScanner = trace.Scanner
	// TraceTextScanner incrementally parses the one-ID-per-line text
	// format.
	TraceTextScanner = trace.TextScanner
)

// NewTraceScanner validates the gctrace binary header on r and returns
// a scanner positioned at the first request.
func NewTraceScanner(r io.Reader) (*TraceScanner, error) { return trace.NewScanner(r) }

// NewTraceTextScanner returns a scanner over the plain-text format.
func NewTraceTextScanner(r io.Reader) *TraceTextScanner { return trace.NewTextScanner(r) }

// NewSliceSource adapts an in-memory Trace to the TraceSource shape.
func NewSliceSource(tr Trace) TraceSource { return trace.NewSliceSource(tr) }

// RunStream replays src through c and returns the statistics together
// with the source's terminal error; RunColdStream resets c first. The
// bounded variants put the recorder on its dense allocation-free path
// (see RunBounded for the universe contract).
func RunStream(c Cache, src TraceSource) (Stats, error)     { return cachesim.RunStream(c, src) }
func RunColdStream(c Cache, src TraceSource) (Stats, error) { return cachesim.RunColdStream(c, src) }
func RunStreamBounded(c Cache, src TraceSource, universe int) (Stats, error) {
	return cachesim.RunStreamBounded(c, src, universe)
}
func RunColdStreamBounded(c Cache, src TraceSource, universe int) (Stats, error) {
	return cachesim.RunColdStreamBounded(c, src, universe)
}

// RunStreamCtx is RunStream with cooperative cancellation (see RunCtx
// for the err == nil contract); the Cold and Bounded variants follow
// the same naming scheme as the in-memory family.
func RunStreamCtx(ctx context.Context, c Cache, src TraceSource) (Stats, error) {
	return cachesim.RunStreamCtx(ctx, c, src)
}
func RunColdStreamCtx(ctx context.Context, c Cache, src TraceSource) (Stats, error) {
	return cachesim.RunColdStreamCtx(ctx, c, src)
}
func RunStreamBoundedCtx(ctx context.Context, c Cache, src TraceSource, universe int) (Stats, error) {
	return cachesim.RunStreamBoundedCtx(ctx, c, src, universe)
}
func RunColdStreamBoundedCtx(ctx context.Context, c Cache, src TraceSource, universe int) (Stats, error) {
	return cachesim.RunColdStreamBoundedCtx(ctx, c, src, universe)
}

// RunFile opens path, streams the gctrace binary format through c, and
// closes the file — the one-call entry point for replaying traces
// larger than memory. Universe > 0 selects the bounded recorder.
func RunFile(ctx context.Context, c Cache, path string, universe int) (Stats, error) {
	return cachesim.RunFile(ctx, c, path, universe)
}

// Observability (internal/obs; see DESIGN.md, "Observability").
type (
	// Probe consumes per-access observability events. Attaching one costs
	// a nil check per emission site; attaching none costs nothing.
	Probe = obs.Probe
	// ProbeEvent is one observability event (kind, item, block, magnitude).
	ProbeEvent = obs.Event
	// ProbeSuite bundles the ready-made probes — counters, histograms,
	// event log, miss curve — behind one Probe with text/CSV export.
	ProbeSuite = obs.Suite
)

// NewProbeSuite parses a probe spec (see obs.SpecHelp: "counters,
// events=64, reuse, ...") into a bundled probe; universe > 0 puts the
// per-item trackers on flat allocation-free tables.
func NewProbeSuite(spec string, universe int) (*ProbeSuite, error) {
	return obs.NewSuite(spec, universe)
}

// RunProbed and RunColdProbed are Run and RunCold with p attached to
// both the policy (when it implements cachesim.Instrumented — all
// paper policies do) and the recorder, yielding the complete two-view
// event stream. The probe is detached from the cache afterwards.
func RunProbed(c Cache, tr Trace, p Probe) Stats {
	return cachesim.RunProbed(c, tr, p)
}
func RunColdProbed(c Cache, tr Trace, p Probe) Stats {
	return cachesim.RunColdProbed(c, tr, p)
}

// RunProbedCtx and RunColdProbedCtx are the probed replays with
// cooperative cancellation; the probe is detached even when the replay
// is cut short.
func RunProbedCtx(ctx context.Context, c Cache, tr Trace, p Probe) (Stats, error) {
	return cachesim.RunProbedCtx(ctx, c, tr, p)
}
func RunColdProbedCtx(ctx context.Context, c Cache, tr Trace, p Probe) (Stats, error) {
	return cachesim.RunColdProbedCtx(ctx, c, tr, p)
}

// SweepStats collects per-worker chunk/index/timing statistics from
// SweepObserved.
type SweepStats = cachesim.SweepStats

// Sweep runs fn(i) for i in [0, n) on a pool of workers with per-worker
// reusable state (chunked work-stealing; workers ≤ 0 means GOMAXPROCS).
func Sweep[W any](n, workers int, newWorker func() W, fn func(i int, w W)) {
	cachesim.Sweep(n, workers, newWorker, fn)
}

// SweepObserved is Sweep with per-worker engine statistics recorded
// into st (pass nil to observe nothing — then it is exactly Sweep).
func SweepObserved[W any](n, workers int, st *SweepStats, newWorker func() W, fn func(i int, w W)) {
	cachesim.SweepObserved(n, workers, st, newWorker, fn)
}

// SweepObservedCtx is SweepObserved under a context (see SweepCtx for
// the chunk-boundary cancellation contract).
func SweepObservedCtx[W any](ctx context.Context, n, workers int, st *SweepStats, newWorker func() W, fn func(i int, w W)) error {
	return cachesim.SweepObservedCtx(ctx, n, workers, st, newWorker, fn)
}

// SweepCaches is Sweep with one pooled Cache per worker, Reset before
// every grid point.
func SweepCaches(n, workers int, build func() Cache, fn func(i int, c Cache)) {
	cachesim.SweepCaches(n, workers, build, fn)
}

// SweepCachesCtx is SweepCaches under a context.
func SweepCachesCtx(ctx context.Context, n, workers int, build func() Cache, fn func(i int, c Cache)) error {
	return cachesim.SweepCachesCtx(ctx, n, workers, build, fn)
}

// RunSeeds replays tr under one cache per seed in parallel and returns
// the per-seed miss ratios; caches implementing cachesim.Reseeder are
// pooled per worker instead of rebuilt per seed.
func RunSeeds(build func(seed int64) Cache, tr Trace, seeds []int64) []float64 {
	return cachesim.RunSeeds(build, tr, seeds)
}

// RunSeedsCtx is RunSeeds under a context: cancellation abandons the
// remaining seeds and returns ctx's error with the ratios computed so
// far (entries for seeds that never ran are zero).
func RunSeedsCtx(ctx context.Context, build func(seed int64) Cache, tr Trace, seeds []int64) ([]float64, error) {
	return cachesim.RunSeedsCtx(ctx, build, tr, seeds)
}

// Fault-tolerant execution (see DESIGN.md, "Fault tolerance"). The
// context-aware variants poll ctx on a stride that keeps the
// per-access path allocation-free; sweeps check the context before
// claiming a chunk, so a claimed index is always fully processed.
type (
	// Quarantine records one grid point abandoned after exhausting its
	// retries, with the recovered panic value.
	Quarantine = cachesim.Quarantine
	// RetryPolicy bounds retries and backoff for SweepHardened.
	RetryPolicy = cachesim.RetryPolicy
	// SweepCheckpointConfig configures SweepCheckpointed's snapshot
	// file, save cadence, and instance hash.
	SweepCheckpointConfig = cachesim.SweepCheckpointConfig
)

// RunCtx and RunColdCtx are Run and RunCold with cooperative
// cancellation: they return the partial statistics and ctx's error if
// the context ends mid-replay.
func RunCtx(ctx context.Context, c Cache, tr Trace) (Stats, error) {
	return cachesim.RunCtx(ctx, c, tr)
}
func RunColdCtx(ctx context.Context, c Cache, tr Trace) (Stats, error) {
	return cachesim.RunColdCtx(ctx, c, tr)
}

// SweepCtx is Sweep under a context: cancellation stops workers at the
// next chunk boundary and returns ctx's error; a sweep whose every
// chunk was already claimed completes and returns nil.
func SweepCtx[W any](ctx context.Context, n, workers int, newWorker func() W, fn func(i int, w W)) error {
	return cachesim.SweepCtx(ctx, n, workers, newWorker, fn)
}

// SweepHardened is SweepObserved with per-point panic recovery:
// panicking points are retried under retry's backoff and, when retries
// are exhausted, quarantined (recorded in st and returned, sorted by
// index) while the rest of the grid completes.
func SweepHardened[W any](ctx context.Context, n, workers int, retry RetryPolicy, st *SweepStats,
	newWorker func() W, fn func(i int, w W)) ([]Quarantine, error) {
	return cachesim.SweepHardened(ctx, n, workers, retry, st, newWorker, fn)
}

// SweepCheckpointed runs a sweep whose per-index results are
// periodically persisted as atomic snapshots; an interrupted run
// resumes from the file and returns bytes identical to an
// uninterrupted run when fn is deterministic.
func SweepCheckpointed[W any](ctx context.Context, n, workers int, cfg SweepCheckpointConfig,
	newWorker func() W, fn func(i int, w W) []byte) ([][]byte, error) {
	return cachesim.SweepCheckpointed(ctx, n, workers, cfg, newWorker, fn)
}

// The paper's policies (§5, §6).

// NewIBLP returns an Item-Block Layered Partitioning cache with item
// layer i and block layer b (total capacity i+b) under g.
func NewIBLP(i, b int, g Geometry) *core.IBLP { return core.NewIBLP(i, b, g) }

// NewIBLPEvenSplit returns IBLP with i = ⌈k/2⌉, b = ⌊k/2⌋ (§7.3's split).
func NewIBLPEvenSplit(k int, g Geometry) *core.IBLP { return core.NewIBLPEvenSplit(k, g) }

// NewIBLPBounded and NewIBLPEvenSplitBounded are the dense-path variants
// of NewIBLP and NewIBLPEvenSplit for item IDs in [0, universe): flat
// bitsets and array-backed LRU orders make steady-state accesses
// allocation- and hash-free. Behaviour is identical to the generic
// constructors; accessing an item ≥ universe panics.
func NewIBLPBounded(i, b int, g Geometry, universe int) *core.IBLP {
	return core.NewIBLPBounded(i, b, g, universe)
}
func NewIBLPEvenSplitBounded(k int, g Geometry, universe int) *core.IBLP {
	return core.NewIBLPEvenSplitBounded(k, g, universe)
}

// NewIBLPTuned returns IBLP with the §5.3 optimal split for a known
// offline comparison size h.
func NewIBLPTuned(k, h int, g Geometry) *core.IBLP {
	i := int(bounds.OptimalItemLayer(float64(k), float64(h), float64(g.BlockSize())))
	if i < 0 || i > k {
		i = k
	}
	return core.NewIBLP(i, k-i, g)
}

// NewGCM returns a Granularity-Change Marking cache (randomized, §6.1).
func NewGCM(k int, g Geometry, seed int64) *core.GCM { return core.NewGCM(k, g, seed) }

// NewGCMBounded is the dense-path variant of NewGCM for item IDs in
// [0, universe); it makes identical random decisions to NewGCM with the
// same seed.
func NewGCMBounded(k int, g Geometry, seed int64, universe int) *core.GCM {
	return core.NewGCMBounded(k, g, seed, universe)
}

// NewAdaptiveIBLP returns the ghost-list extension of IBLP that learns
// its item/block split online — this repository's answer to the §5.3
// observation that the optimal split depends on the unknown comparison
// size (Figure 6).
func NewAdaptiveIBLP(k int, g Geometry) *core.AdaptiveIBLP { return core.NewAdaptiveIBLP(k, g) }

// Ablation variants of the paper's design choices (§5.1, §6.1) — kept in
// the public API so downstream studies can reproduce the ablations.

// NewIBLPPromoteAll returns the IBLP variant whose item-layer hits also
// refresh the block layer's LRU order (violating §5.1's ordering rule).
func NewIBLPPromoteAll(i, b int, g Geometry) *core.IBLP { return core.NewIBLPPromoteAll(i, b, g) }

// NewIBLPInclusive returns the §5.1 inclusive-layers ablation (the item
// layer contributes nothing to the hit rate).
func NewIBLPInclusive(i, b int, g Geometry) *core.IBLPInclusive {
	return core.NewIBLPInclusive(i, b, g)
}

// NewIBLPExclusive returns the §5.1 exclusive-layers ablation (no
// duplication, but evicted block copies take unexpired siblings along).
func NewIBLPExclusive(i, b int, g Geometry) *core.IBLPExclusive {
	return core.NewIBLPExclusive(i, b, g)
}

// NewGCMMarkAll returns the §6.1 ablation of GCM that marks loaded
// siblings, forfeiting its pollution resistance.
func NewGCMMarkAll(k int, g Geometry, seed int64) *core.GCMMarkAll {
	return core.NewGCMMarkAll(k, g, seed)
}

// NewValidator wraps any cache with the Definition 1 model-conformance
// checker (see internal/cachesim.Validator).
func NewValidator(c Cache, g Geometry) *cachesim.Validator { return cachesim.NewValidator(c, g) }

// Baseline policies (§2).

// NewItemLRU returns the Item Cache baseline: LRU, loads only requested
// items.
func NewItemLRU(k int) *policy.ItemLRU { return policy.NewItemLRU(k) }

// NewItemLRUBounded is the dense-path variant of NewItemLRU for item IDs
// in [0, universe).
func NewItemLRUBounded(k, universe int) *policy.ItemLRU {
	return policy.NewItemLRUBounded(k, universe)
}

// NewBlockLRU returns the Block Cache baseline: loads and evicts whole
// blocks, LRU over blocks.
func NewBlockLRU(k int, g Geometry) *policy.BlockLRU { return policy.NewBlockLRU(k, g) }

// NewBlockLRUBounded is the dense-path variant of NewBlockLRU for item
// IDs in [0, universe).
func NewBlockLRUBounded(k int, g Geometry, universe int) *policy.BlockLRU {
	return policy.NewBlockLRUBounded(k, g, universe)
}

// NewFIFO returns a FIFO Item Cache.
func NewFIFO(k int) *policy.FIFO { return policy.NewFIFO(k) }

// NewMarking returns the classic randomized marking Item Cache.
func NewMarking(k int, seed int64) *policy.Marking { return policy.NewMarking(k, seed) }

// NewAThreshold returns the §4.3 a-parameter policy: loads a whole block
// once a distinct items of it have been touched, evicts items LRU.
func NewAThreshold(k, a int, g Geometry) *policy.AThreshold { return policy.NewAThreshold(k, a, g) }

// NewBlockLoadItemEvict returns the a=1 policy §4.4 recommends for large
// caches: load the full block on every miss, evict items individually.
func NewBlockLoadItemEvict(k int, g Geometry) *policy.AThreshold {
	return policy.NewBlockLoadItemEvict(k, g)
}

// NewClock returns a CLOCK (second-chance) Item Cache.
func NewClock(k int) *policy.Clock { return policy.NewClock(k) }

// NewFootprint returns the history-based predicted-subset policy of the
// DRAM-cache designs the paper cites (Footprint/Unison): it learns which
// block offsets were used during the previous residency and loads exactly
// those on the next miss.
func NewFootprint(k int, g Geometry) *policy.Footprint { return policy.NewFootprint(k, g) }

// Bounds (all sizes as float64; see internal/bounds for domains).

// SleatorTarjan returns the classic k/(k−h+1) lower bound.
func SleatorTarjan(k, h float64) float64 { return bounds.SleatorTarjan(k, h) }

// ItemCacheLowerBound returns Theorem 2's bound for Item Caches.
func ItemCacheLowerBound(k, h, B float64) float64 { return bounds.ItemCacheLB(k, h, B) }

// BlockCacheLowerBound returns Theorem 3's bound for Block Caches.
func BlockCacheLowerBound(k, h, B float64) float64 { return bounds.BlockCacheLB(k, h, B) }

// GeneralLowerBound returns Theorem 4's bound for a-parameter policies.
func GeneralLowerBound(k, h, B, a float64) float64 { return bounds.GeneralLB(k, h, B, a) }

// IBLPUpperBound returns Theorem 7's bound for IBLP with layers (i, b).
func IBLPUpperBound(i, b, h, B float64) float64 { return bounds.IBLPUB(i, b, h, B) }

// IBLPKnownSizeRatio returns the §5.3 ratio for optimally split IBLP.
func IBLPKnownSizeRatio(k, h, B float64) float64 { return bounds.IBLPKnownH(k, h, B) }

// OptimalItemLayer returns the §5.3 optimal item-layer size.
func OptimalItemLayer(k, h, B float64) float64 { return bounds.OptimalItemLayer(k, h, B) }

// Locality model (§2, §7).
type (
	// LocalityFunc is a working-set function f(n) or g(n).
	LocalityFunc = locality.Func
	// LocalityProfile is a working-set function measured from a trace.
	LocalityProfile = locality.Profile
)

// MeasureItemLocality returns the exact item working-set function f of tr
// at the given window lengths.
func MeasureItemLocality(tr Trace, lengths []int) *LocalityProfile {
	return locality.MeasureItems(tr, lengths)
}

// MeasureBlockLocality returns the exact block working-set function g.
func MeasureBlockLocality(tr Trace, g Geometry, lengths []int) *LocalityProfile {
	return locality.MeasureBlocks(tr, g, lengths)
}

// MissRatioCurve returns the exact LRU miss counts of tr at the given
// cache sizes in one Mattson stack-distance pass.
func MissRatioCurve(tr Trace, sizes []int) []int64 { return locality.MissRatioCurve(tr, sizes) }

// BlockMissRatioCurve is MissRatioCurve for a block-granularity LRU with
// the given frame counts.
func BlockMissRatioCurve(tr Trace, g Geometry, frames []int) []int64 {
	return locality.BlockMissRatioCurve(tr, g, frames)
}

// FaultRateLowerBound returns Theorem 8's fault-rate bound.
func FaultRateLowerBound(k float64, f, g LocalityFunc) float64 {
	return bounds.FaultRateLB(k, f, g)
}

// IBLPFaultRateUpperBound returns Theorem 11's bound for IBLP.
func IBLPFaultRateUpperBound(i, b, B float64, f, g LocalityFunc) float64 {
	return bounds.IBLPFaultUB(i, b, B, f, g)
}

// Offline baselines.

// Belady returns the exact item-granularity offline optimum on tr.
func Belady(tr Trace, k int) int64 { return opt.Belady(tr, k) }

// EstimateOptimal brackets the GC offline optimum: Lower ≤ OPT ≤ Upper.
func EstimateOptimal(tr Trace, g Geometry, k int) opt.Estimate {
	return opt.EstimateOPT(tr, g, k)
}

// ExactOptimal returns the exact GC optimum for small instances
// (exponential; the problem is NP-complete per Theorem 1).
func ExactOptimal(tr Trace, g Geometry, k int) (int64, error) { return opt.Exact(tr, g, k) }

// ExactOptimalCtx is ExactOptimal as an anytime solver: when ctx ends
// before the optimum is certified, it returns the best incumbent and
// proven lower bound reached so far (see opt.Anytime).
func ExactOptimalCtx(ctx context.Context, tr Trace, g Geometry, k int) (opt.Anytime, error) {
	return opt.ExactCtx(ctx, tr, g, k)
}

// Workloads and adversaries.

// GenerateWorkload builds a trace from a textual spec such as
// "blockruns:blocks=512,B=64,run=16,len=100000" (see workload.SpecHelp).
func GenerateWorkload(spec string, seed int64) (Trace, error) {
	return workload.FromSpec(spec, seed)
}

// Concurrent serving.

// ShardedCache is a thread-safe lock-striped composite cache; blocks
// never straddle shards, so unit-cost loads stay single-lock.
type ShardedCache = concurrent.Sharded

// NewShardedCache builds a sharded cache of nShards power-of-two shards
// with the given total capacity; build constructs each shard's policy.
func NewShardedCache(nShards, totalCapacity int, g Geometry,
	build func(shardCapacity int) Cache) (*ShardedCache, error) {
	return concurrent.NewSharded(nShards, totalCapacity, g, build)
}

// ReplayConcurrent drives a sharded cache with one goroutine per stream.
//
//gclint:ctxok unbatched differential baseline; ReplayBatched is the cancellable serving path
func ReplayConcurrent(s *ShardedCache, streams []Trace) Stats {
	return concurrent.Replay(s, streams)
}

// SplitStreams deals a trace round-robin into n concurrent streams.
func SplitStreams(tr Trace, n int) []Trace { return concurrent.SplitStreams(tr, n) }

// BatchReplayConfig tunes the batched replay engine (batch size, queue
// depth, deterministic merge mode); the zero value selects defaults.
type BatchReplayConfig = concurrent.BatchConfig

// ReplayBatched drives a sharded cache through the batched engine:
// bounded per-shard queues give backpressure, each batch is served
// under one lock acquisition, and cancellation follows the
// claimed-chunk invariant (a claimed batch completes; queued work is
// abandoned and ctx's error returned).
func ReplayBatched(ctx context.Context, s *ShardedCache, streams []Trace, cfg BatchReplayConfig) (Stats, error) {
	return concurrent.ReplayCtx(ctx, s, streams, cfg)
}

// ReplayStream drives a sharded cache from one incremental TraceSource
// on the batched engine — the O(1)-memory serving path, and
// deterministic for a fixed source (per-shard order is preserved).
func ReplayStream(ctx context.Context, s *ShardedCache, src TraceSource, cfg BatchReplayConfig) (Stats, error) {
	return concurrent.ReplayStreamCtx(ctx, s, src, cfg)
}

// NewShardedCacheBounded is NewShardedCache with every shard's recorder
// on the flat-bitset allocation-free path for item IDs in [0, universe)
// — pair it with the *Bounded policy constructors (and the ItemUniverse
// expansion) for a serving stack with no steady-state allocations.
func NewShardedCacheBounded(nShards, totalCapacity int, g Geometry, universe int,
	build func(shardCapacity int) Cache) (*ShardedCache, error) {
	return concurrent.NewShardedBounded(nShards, totalCapacity, g, universe, build)
}

// ReplayEngine is the persistent batched serving engine: SPSC rings,
// producer and worker goroutines, and batch buffers are built once and
// reused across replays, so a warm engine serves every subsequent
// Replay without touching the allocator. ReplayBatched/ReplayStream
// remain the one-shot conveniences (they build and tear down a
// throwaway engine per call).
type ReplayEngine = concurrent.Engine

// NewReplayEngine builds a persistent engine over s with the given
// producer-slot count (Replay accepts at most that many streams; a
// ReplayStream source always feeds slot 0). Close releases the
// goroutines when the engine is done serving.
func NewReplayEngine(s *ShardedCache, producers int, cfg BatchReplayConfig) (*ReplayEngine, error) {
	return concurrent.NewEngine(s, producers, cfg)
}

// Hierarchy simulation (Figure 1's multi-level setting).
type (
	// HierarchyLevel is one level of a multi-level cache stack.
	HierarchyLevel = hierarchy.Level
	// Hierarchy is a stack of GC caches with per-level granularities.
	Hierarchy = hierarchy.Stack
)

// NewHierarchy builds a multi-level stack, fastest level first.
func NewHierarchy(levels ...HierarchyLevel) (*Hierarchy, error) { return hierarchy.New(levels...) }

// AdversaryResult reports an adaptive lower-bound run.
type AdversaryResult = adversary.Result

// RunItemCacheAdversary drives the Theorem 2 construction against c.
//
//gclint:ctxok adversary games are bounded by phases×OptSize accesses, not trace-length
func RunItemCacheAdversary(c Cache, g Geometry, h, phases int) (AdversaryResult, error) {
	return adversary.ItemCache(c, g, adversary.Config{OptSize: h, Phases: phases})
}

// RunBlockCacheAdversary drives the Theorem 3 construction against c.
//
//gclint:ctxok adversary games are bounded by phases×OptSize accesses, not trace-length
func RunBlockCacheAdversary(c Cache, g Geometry, h, phases int) (AdversaryResult, error) {
	return adversary.BlockCache(c, g, adversary.Config{OptSize: h, Phases: phases})
}

// RunGeneralAdversary drives the Theorem 4 construction against c.
//
//gclint:ctxok adversary games are bounded by phases×OptSize accesses, not trace-length
func RunGeneralAdversary(c Cache, g Geometry, h, phases int) (AdversaryResult, error) {
	return adversary.General(c, g, adversary.Config{OptSize: h, Phases: phases})
}
