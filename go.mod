module gccache

go 1.22
