package gccache_test

import (
	"testing"

	"gccache"
	"gccache/internal/experiments"
	"gccache/internal/model"
	"gccache/internal/opt"
	"gccache/internal/workload"
)

// One benchmark per paper artifact (see DESIGN.md's per-experiment
// index). Each regenerates the table/figure and fails the bench if any
// of the paper's claims is violated, so `go test -bench=.` doubles as the
// reproduction driver.

// BenchmarkFigure1And4 regenerates the executable versions of the
// paper's two illustration figures (subset load; IBLP structure).
func BenchmarkFigure1And4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure1Demo().Err(); err != nil {
			b.Fatal(err)
		}
		if err := experiments.Figure4Demo().Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (salient competitive-ratio bounds)
// at the paper's B = 64.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table1(16384, 64).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (fault-rate bounds under
// polynomial locality, i = b split).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(64, []float64{2, 3, 4}, 65536).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3 (bounds vs optimal cache size)
// at the paper's k = 1.28M, B = 64.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure3(1.28e6, 64, 60).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6 (fixed vs optimal IBLP layer
// sizes) at k = 1.28M, B = 64.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure6(1.28e6, 64, []float64{512, 8192, 131072}, 60).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 runs the Figure 5 worst-case-pattern stress: IBLP on
// the §5.2 adversarial trace family against the offline bracket.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure5Stress(96, 96, 8, 48, 60000).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 reproduces Figure 2: the Theorem 1 reduction on the
// paper's own instance, with the optimal schedule reconstructed and
// verified.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure2Demo().Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReduction runs experiment E1: Theorem 1's VSC→GC reduction
// preserves the exact optimum on random instances.
func BenchmarkReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.ReductionCheck(6, int64(i)+1).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdversaries runs experiments E2–E4: the §4 constructions
// against the policies they target.
func BenchmarkAdversaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.AdversarySweep(64, 12).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPCrossCheck runs experiment E5: Theorem 6/7 closed forms vs
// numeric optimization of the §5.2 programs.
func BenchmarkLPCrossCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.LPCrossCheck(64).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultRate runs experiment E6: the Theorem 8 locality family
// against live policies.
func BenchmarkFaultRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.FaultRateCheck(24, 4, 2, 3).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Empirical runs experiment E7: the laptop-scale
// empirical overlay of Figure 3.
func BenchmarkFigure3Empirical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure3Empirical(256, 16, 10).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs experiment E8: the §5.1/§6.1 design-choice
// ablations.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Ablations(512, 16, int64(i)+1).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Empirical runs the measured split-sensitivity sweep.
func BenchmarkFigure6Empirical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure6Empirical(128, 8, 64, 40000).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomized runs the §6 randomized-policy study (E9).
func BenchmarkRandomized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RandomizedComparison(512, 16, 10, 3).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveStudy runs E10: adaptive vs fixed IBLP splits.
func BenchmarkAdaptiveStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.AdaptiveStudy(512, 16, 3).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMRCStudy runs the Mattson miss-ratio-curve study.
func BenchmarkMRCStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.MRCStudy(16, 4).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyShootout runs the full workload × policy matrix.
func BenchmarkPolicyShootout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.PolicyShootout(512, 16, int64(i)+1).Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Microbenchmarks: per-access policy costs on a shared workload ----
//
// The LRU-family and GCM benchmarks use the bounded (dense-path)
// constructors, which the zero-allocation regression tests hold to
// 0 allocs/op; AThreshold has no dense path and stays generic.

func benchPolicy(b *testing.B, mk func(g *model.Fixed, universe int) gccache.Cache) {
	g := model.NewFixed(64)
	tr, err := workload.BlockRuns(workload.BlockRunsConfig{
		NumBlocks: 4096, BlockSize: 64, MeanRunLength: 8,
		ZipfS: 1.2, Length: 1 << 16, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	c := mk(g, tr.Universe())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(tr[i&(1<<16-1)])
	}
}

func BenchmarkAccessItemLRU(b *testing.B) {
	benchPolicy(b, func(g *model.Fixed, u int) gccache.Cache { return gccache.NewItemLRUBounded(4096, u) })
}

func BenchmarkAccessBlockLRU(b *testing.B) {
	benchPolicy(b, func(g *model.Fixed, u int) gccache.Cache { return gccache.NewBlockLRUBounded(4096, g, u) })
}

func BenchmarkAccessIBLP(b *testing.B) {
	benchPolicy(b, func(g *model.Fixed, u int) gccache.Cache { return gccache.NewIBLPEvenSplitBounded(4096, g, u) })
}

func BenchmarkAccessGCM(b *testing.B) {
	benchPolicy(b, func(g *model.Fixed, u int) gccache.Cache { return gccache.NewGCMBounded(4096, g, 7, u) })
}

func BenchmarkAccessAThreshold(b *testing.B) {
	benchPolicy(b, func(g *model.Fixed, u int) gccache.Cache { return gccache.NewAThreshold(4096, 2, g) })
}

// BenchmarkBelady measures the offline optimum solver on a large trace.
func BenchmarkBelady(b *testing.B) {
	tr, err := workload.BlockRuns(workload.BlockRunsConfig{
		NumBlocks: 4096, BlockSize: 64, MeanRunLength: 8,
		ZipfS: 1.2, Length: 1 << 17, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := opt.Belady(tr, 4096); got <= 0 {
			b.Fatal("implausible Belady cost")
		}
	}
}

// BenchmarkLocalityProfile measures the exact f/g working-set profiler.
func BenchmarkLocalityProfile(b *testing.B) {
	tr, err := workload.BlockRuns(workload.BlockRunsConfig{
		NumBlocks: 1024, BlockSize: 64, MeanRunLength: 16,
		Length: 1 << 16, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	g := model.NewFixed(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := gccache.MeasureItemLocality(tr, []int{64, 1024, 16384})
		gp := gccache.MeasureBlockLocality(tr, g, []int{64, 1024, 16384})
		if f.Eval(1024) < gp.Eval(1024) {
			b.Fatal("f below g")
		}
	}
}
