package gccache_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the markdown documents whose cross-references the repo
// promises to keep live (docs/README.md is the index tying them
// together — see that file for the map).
var docFiles = []string{
	"README.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"ROADMAP.md",
	filepath.Join("docs", "README.md"),
	filepath.Join("docs", "SCENARIOS.md"),
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinksResolve extracts every relative markdown link from the
// documentation set and asserts the target exists on disk, resolved
// against the linking file's directory. External URLs and pure
// in-page anchors are skipped; a `path#anchor` link is checked for
// the path half only. Docs restructures (file moves, renames) break
// links silently otherwise — this is the gate the docs/ index and the
// scenario manual's cross-references rely on.
func TestDocLinksResolve(t *testing.T) {
	for _, doc := range docFiles {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("documentation file %s is missing: %v", doc, err)
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if strings.HasPrefix(target, "#") {
				continue // in-page anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(doc), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%s)", doc, m[1], resolved)
			}
		}
	}
}

// TestDocFileTokensResolve spot-checks that backticked path-like
// tokens naming checked-in files or directories in the documentation
// actually exist. Only tokens that look like repo paths are checked:
// they must contain a path separator or end in a known doc/source
// extension, and templated or flag-like tokens are skipped.
func TestDocFileTokensResolve(t *testing.T) {
	token := regexp.MustCompile("`([^`\n]+)`")
	for _, doc := range docFiles {
		if doc == "ROADMAP.md" {
			continue // forward-looking: names packages that don't exist yet
		}
		raw, err := os.ReadFile(doc)
		if err != nil {
			continue // missing files already reported above
		}
		for _, m := range token.FindAllStringSubmatch(string(raw), -1) {
			tok := m[1]
			if !looksLikeRepoPath(tok) {
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), filepath.FromSlash(tok))
			if _, err := os.Stat(resolved); err != nil {
				// Also try repo-root-relative: prose in docs/ often
				// names paths from the repository root.
				if _, err2 := os.Stat(filepath.FromSlash(tok)); err2 != nil {
					t.Errorf("%s mentions `%s`, which exists neither relative to it nor to the repo root", doc, tok)
				}
			}
		}
	}
}

func looksLikeRepoPath(tok string) bool {
	if strings.ContainsAny(tok, " \t(){}<>*$'\"=,:") || strings.Contains(tok, "…") {
		return false // command lines, templates, flags with values
	}
	if strings.HasPrefix(tok, "-") || strings.HasPrefix(tok, "/") || strings.Contains(tok, "..") {
		return false // flags, absolute paths, relative escapes (checked as links instead)
	}
	if !strings.Contains(tok, "/") {
		return false // bare identifiers (`gcsim`, `trace.Source`, `drift.gcs` in prose)
	}
	// Only claim tokens rooted at a real top-level repo entry; things
	// like `producer/worker` or `f/g` are prose, not paths.
	root := tok[:strings.IndexByte(tok, '/')]
	switch root {
	case "internal", "cmd", "docs", "scenarios", "examples", "results", "bin":
		return true
	}
	return false
}
