package gccache_test

import (
	"bytes"
	"context"
	"testing"

	"gccache"
	"gccache/internal/model"
)

// BenchmarkRunStream measures the streaming replay path end to end —
// binary varint decode, policy access, dense recorder — off an
// in-memory encoding of the BlockRuns trace, so the number is the
// decode+replay cost with no file-system noise. The slice-path
// counterpart is BenchmarkRunTrace; the gap between them is the price
// of O(1)-memory ingestion.
func BenchmarkRunStream(b *testing.B) {
	g, tr := runTraceWorkload(b)
	u := model.ItemUniverse(g, tr.Universe())
	c := gccache.NewIBLPEvenSplitBounded(4096, g, u)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := gccache.NewTraceScanner(bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		st, err := gccache.RunColdStreamBounded(c, sc, u)
		if err != nil {
			b.Fatal(err)
		}
		if st.Misses == 0 {
			b.Fatal("implausible: zero misses")
		}
	}
}

// BenchmarkReplayThroughput measures the batched sharded serving engine
// (gcload's batch mode): the BlockRuns trace split into 8 streams,
// routed into per-shard batch queues, one lock acquisition per batch.
// The ops/sec metric is the throughput figure BENCH_baseline.json
// tracks across PRs.
func BenchmarkReplayThroughput(b *testing.B) {
	g, tr := runTraceWorkload(b)
	streams := gccache.SplitStreams(tr, 8)
	s, err := gccache.NewShardedCache(8, 4096, g, func(k int) gccache.Cache {
		return gccache.NewIBLPEvenSplit(k, g)
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gccache.ReplayBatched(ctx, s, streams, gccache.BatchReplayConfig{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr))*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}
