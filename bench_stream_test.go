package gccache_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"

	"gccache"
	"gccache/internal/model"
)

// BenchmarkRunStream measures the streaming replay path end to end —
// binary varint decode, policy access, dense recorder — off an
// in-memory encoding of the BlockRuns trace, so the number is the
// decode+replay cost with no file-system noise. The slice-path
// counterpart is BenchmarkRunTrace; the gap between them is the price
// of O(1)-memory ingestion.
func BenchmarkRunStream(b *testing.B) {
	g, tr := runTraceWorkload(b)
	u := model.ItemUniverse(g, tr.Universe())
	c := gccache.NewIBLPEvenSplitBounded(4096, g, u)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := gccache.NewTraceScanner(bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		st, err := gccache.RunColdStreamBounded(c, sc, u)
		if err != nil {
			b.Fatal(err)
		}
		if st.Misses == 0 {
			b.Fatal("implausible: zero misses")
		}
	}
}

// replayThroughput measures a warm persistent ReplayEngine over the
// BlockRuns trace split into nStreams streams on an nShards-shard
// bounded (dense, allocation-free) cache. The engine, cache, rings,
// and batch buffers are all built before the timer starts, so the
// steady-state loop is the pure serving cost: SPSC ring hand-off,
// counting-sort routing, one lock acquisition per batch, dense policy
// access.
func replayThroughput(b *testing.B, nShards, nStreams int) {
	g, tr := runTraceWorkload(b)
	u := gccache.ItemUniverse(g, tr.Universe())
	streams := gccache.SplitStreams(tr, nStreams)
	s, err := gccache.NewShardedCacheBounded(nShards, 4096, g, u, func(k int) gccache.Cache {
		return gccache.NewIBLPEvenSplitBounded(k, g, u)
	})
	if err != nil {
		b.Fatal(err)
	}
	e, err := gccache.NewReplayEngine(s, nStreams, gccache.BatchReplayConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	// One warmup replay primes the free rings with recycled batch
	// buffers; everything after it is allocation-free.
	if _, err := e.Replay(ctx, streams); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Replay(ctx, streams); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr))*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkReplayThroughput measures the batched sharded serving engine
// (gcload's batch mode) at its standard operating point — 8 shards, 8
// producer streams. The ops/sec metric is the throughput figure
// BENCH_baseline.json tracks across PRs and the bench-floor CI guard
// enforces.
func BenchmarkReplayThroughput(b *testing.B) {
	replayThroughput(b, 8, 8)
}

// BenchmarkReplayThroughputParallel sweeps the shard count so the
// scaling curve — not just the 8-shard point — is tracked in
// BENCH_baseline.json. {1, 4, 16} bracket the standard point;
// GOMAXPROCS is included (deduplicated) because it is the hardware
// operating point the engine actually runs at in production.
func BenchmarkReplayThroughputParallel(b *testing.B) {
	shardCounts := []int{1, 4, 16}
	gmp := 1
	for gmp < runtime.GOMAXPROCS(0) {
		gmp <<= 1 // shard counts must be powers of two
	}
	seen := map[int]bool{1: true, 4: true, 16: true}
	if !seen[gmp] {
		shardCounts = append(shardCounts, gmp)
	}
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			replayThroughput(b, n, 8)
		})
	}
}
