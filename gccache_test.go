package gccache_test

import (
	"math"
	"testing"

	"gccache"
)

// The facade tests exercise the public API end to end, the way the
// examples and a downstream user would.

func TestQuickstartFlow(t *testing.T) {
	g := gccache.NewFixedGeometry(8)
	c := gccache.NewIBLP(32, 32, g)
	tr, err := gccache.GenerateWorkload("blockruns:blocks=64,B=8,run=4,len=20000", 1)
	if err != nil {
		t.Fatal(err)
	}
	st := gccache.RunCold(c, tr)
	if st.Accesses != 20000 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if st.Hits+st.Misses != st.Accesses || st.SpatialHits+st.TemporalHits != st.Hits {
		t.Fatalf("stats don't add up: %+v", st)
	}
	if st.SpatialHits == 0 {
		t.Error("block-run workload should produce spatial hits")
	}
}

func TestFacadePoliciesShareInterface(t *testing.T) {
	g := gccache.NewFixedGeometry(4)
	caches := []gccache.Cache{
		gccache.NewItemLRU(16),
		gccache.NewBlockLRU(16, g),
		gccache.NewFIFO(16),
		gccache.NewMarking(16, 1),
		gccache.NewGCM(16, g, 1),
		gccache.NewIBLP(8, 8, g),
		gccache.NewIBLPEvenSplit(16, g),
		gccache.NewIBLPTuned(16, 4, g),
		gccache.NewAThreshold(16, 2, g),
		gccache.NewBlockLoadItemEvict(16, g),
	}
	tr, err := gccache.GenerateWorkload("zipf:n=64,s=1.3,len=5000", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range caches {
		st := gccache.RunCold(c, tr)
		if st.Accesses != 5000 {
			t.Errorf("%s: accesses %d", c.Name(), st.Accesses)
		}
		if c.Len() > c.Capacity() {
			t.Errorf("%s: over capacity", c.Name())
		}
	}
}

func TestFacadeBoundsAgree(t *testing.T) {
	k, h, B := 4096.0, 256.0, 64.0
	if gccache.SleatorTarjan(k, h) > gccache.GeneralLowerBound(k, h, B, 1) {
		t.Error("ST above GC bound")
	}
	i := gccache.OptimalItemLayer(k, h, B)
	ub := gccache.IBLPUpperBound(i, k-i, h, B)
	if math.Abs(ub-gccache.IBLPKnownSizeRatio(k, h, B)) > 1e-9*ub {
		t.Error("facade bound wrappers disagree")
	}
	if gccache.ItemCacheLowerBound(k, h, B) <= 1 || gccache.BlockCacheLowerBound(k, h, B) <= 1 {
		t.Error("degenerate lower bounds")
	}
}

func TestFacadeOfflineAndLocality(t *testing.T) {
	g := gccache.NewFixedGeometry(4)
	tr, err := gccache.GenerateWorkload("sequential:len=64", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := gccache.Belady(tr, 8); got != 64 {
		t.Errorf("Belady = %d", got)
	}
	est := gccache.EstimateOptimal(tr, g, 8)
	if est.Lower != 16 || est.Upper != 16 {
		t.Errorf("estimate = %+v, want exactly 16 (one per block)", est)
	}
	exact, err := gccache.ExactOptimal(tr[:16], g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if exact != 4 {
		t.Errorf("exact = %d, want 4", exact)
	}
	f := gccache.MeasureItemLocality(tr, []int{4, 16})
	gp := gccache.MeasureBlockLocality(tr, g, []int{4, 16})
	if f.Eval(16) != 16 || gp.Eval(16) != 5 {
		t.Errorf("profiles: f(16)=%v g(16)=%v", f.Eval(16), gp.Eval(16))
	}
	lb := gccache.FaultRateLowerBound(8, f, gp)
	if math.IsNaN(lb) || lb <= 0 {
		t.Errorf("fault LB = %v", lb)
	}
	ub := gccache.IBLPFaultRateUpperBound(64, 64, 4, f, gp)
	if math.IsNaN(ub) || ub <= 0 {
		t.Errorf("fault UB = %v", ub)
	}
}

func TestFacadeAdversaries(t *testing.T) {
	B := 8
	g := gccache.NewFixedGeometry(B)
	k, h := 128, 33
	res, err := gccache.RunItemCacheAdversary(gccache.NewItemLRU(k), g, h, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio() < 0.8*res.BoundClaim {
		t.Errorf("item adversary ratio %.2f vs claim %.2f", res.Ratio(), res.BoundClaim)
	}
	res, err = gccache.RunBlockCacheAdversary(gccache.NewBlockLRU(256, g), g, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio() < 0.8*res.BoundClaim {
		t.Errorf("block adversary ratio %.2f vs claim %.2f", res.Ratio(), res.BoundClaim)
	}
	res, err = gccache.RunGeneralAdversary(gccache.NewAThreshold(k, 2, g), g, h, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio() < 0.8*res.BoundClaim {
		t.Errorf("general adversary ratio %.2f vs claim %.2f", res.Ratio(), res.BoundClaim)
	}
}

func TestNewTableGeometry(t *testing.T) {
	g, err := gccache.NewTableGeometry([][]gccache.Item{{1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.BlockOf(2) != g.BlockOf(1) || g.BlockOf(3) == g.BlockOf(1) {
		t.Error("table geometry wrong")
	}
	if _, err := gccache.NewTableGeometry([][]gccache.Item{{1}, {1}}); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestIBLPTunedClampsDegenerate(t *testing.T) {
	g := gccache.NewFixedGeometry(64)
	// h close to k: sizing must stay within [0, k].
	c := gccache.NewIBLPTuned(100, 99, g)
	if c.ItemLayerSize()+c.BlockLayerSize() != 100 {
		t.Errorf("layers %d+%d != 100", c.ItemLayerSize(), c.BlockLayerSize())
	}
}
