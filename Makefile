# gccache build/test/reproduction driver.

GO ?= go

.PHONY: all build vet lint lint-one test race cover bench bench-json bench-floor load-smoke scenario-smoke autotune-smoke cluster-smoke cluster-chaos repro repro-quick fuzz stress clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@test -z "$$(gofmt -s -l .)" || (gofmt -s -l . && echo 'gofmt: files need formatting (gofmt -s)' && exit 1)

# Run the repo's custom analyzers (see internal/analysis/): atomicfield,
# ctxflow, determinism, guardedby, hotalloc, hotalloctrans, reseed,
# sweepsafe. Built fresh so lint always reflects the working tree.
GCLINT = bin/gclint
lint:
	@mkdir -p bin
	$(GO) build -o $(GCLINT) ./cmd/gclint
	$(GO) vet -vettool=$(GCLINT) ./...

# Run one analyzer over one package pattern while iterating on it:
#   make lint-one A=atomicfield PKG=./internal/concurrent
# PKG defaults to the whole module. Fact-producing analyzers still see
# dependency facts — go vet analyzes the dependency units first.
A ?=
PKG ?= ./...
lint-one:
	@test -n "$(A)" || (echo 'usage: make lint-one A=<analyzer> [PKG=<pattern>]' && exit 1)
	@mkdir -p bin
	$(GO) build -o $(GCLINT) ./cmd/gclint
	$(GO) vet -vettool=$(GCLINT) -$(A) $(PKG)

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/concurrent/ ./internal/cachesim/ ./internal/experiments/

# Load-generator smoke: gcload's selfcheck (open + batch modes, full
# accounting verification) under the race detector — the fastest way to
# catch a data race in the serving engine's producer/worker plumbing.
load-smoke:
	$(GO) run -race ./cmd/gcload -selfcheck

# Scenario-corpus smoke: validate, compile, and fully replay every
# scenarios/*.gcs under the race detector (universe bounds, exact
# declared lengths, format round-trips — see corpus_test.go), plus the
# docs gate that diffs docs/SCENARIOS.md against the combinator
# registry, and a short parser fuzz pass.
scenario-smoke:
	$(GO) test -race -run 'TestScenarioCorpus|TestManual' ./internal/scenario/
	$(GO) test ./internal/scenario/ -run FuzzScenarioParse -fuzz FuzzScenarioParse -fuzztime 5s

# Autotune smoke: the §5.3 closed-loop acceptance gate under the race
# detector — on the drift scenario the controller must fire at least
# one live resize and land within 10% of the offline-optimal fixed
# split (internal/autotune/smoke_test.go), plus the serve-layer
# differential (autotune off ⇒ byte-identical replay) and the
# cluster-mode accounting check across a live resize.
autotune-smoke:
	$(GO) test -race -run 'TestAutotuneSmokeDrift' -v ./internal/autotune/
	$(GO) test -race -run 'TestAutotune' ./internal/obs/serve/

# Cluster smoke: the full internal/cluster suite (ring, wire codec,
# breaker, node lifecycle, byte-identical handoff) plus gcload's
# in-process three-node loopback ring selfcheck, all under the race
# detector, and a short wire-decoder fuzz pass.
cluster-smoke:
	$(GO) test -race ./internal/cluster/... ./internal/obs/serve/
	$(GO) run -race ./cmd/gcload -cluster -selfcheck
	$(GO) test ./internal/cluster/ -run FuzzFrameDecode -fuzz FuzzFrameDecode -fuzztime 5s

# Chaos gate: the seeded kill/partition/heal/restart schedule against a
# four-node ring behind fault-injecting proxies, under the race
# detector. Asserts no lost acked ops, the accounting identity, bounded
# rejections, and per-event recovery (see internal/cluster/chaos_test.go).
cluster-chaos:
	$(GO) test -race -run TestClusterChaos -v ./internal/cluster/

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh BENCH_baseline.json: re-measure the replay/sweep/per-access
# hot-path benchmarks and record them under "current", preserving the
# committed "pre_change" section so the file tracks the performance
# trajectory (see DESIGN.md, Performance notes).
HOTPATH_BENCH = ^(BenchmarkRunTrace|BenchmarkRunTraceGeneric|BenchmarkRunStream|BenchmarkReplayThroughput(Parallel)?|BenchmarkSweep|BenchmarkAccess(ItemLRU|BlockLRU|IBLP|GCM|AThreshold))$$
bench-json:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' -benchmem . | $(GO) run ./cmd/gcbenchjson -out BENCH_baseline.json

# Ops/sec floor gate: re-measure the end-to-end replay benchmark and
# fail if it regressed more than 20% against the ops/sec recorded in
# the committed BENCH_baseline.json. Does not rewrite the baseline.
bench-floor:
	$(GO) test -run '^$$' -bench '^BenchmarkReplayThroughput$$' -benchmem . \
		| $(GO) run ./cmd/gcbenchjson -out BENCH_baseline.json -write=false -floor 'BenchmarkReplayThroughput:0.8'

# Regenerate every table/figure of the paper plus the validation
# experiments into results/ (exits non-zero if any claim fails).
repro:
	$(GO) run ./cmd/gcrepro -out results

repro-quick:
	$(GO) run ./cmd/gcrepro -out results -quick

# Fault-tolerance stress gate: the fault-injection and cancellation
# sweep tests under the race detector (injected panics + retries on
# pooled workers are exactly where poisoned-state races would hide),
# plus a short fuzz smoke over every binary decoder a resumed run
# trusts (trace files, checkpoint snapshots, workload specs).
stress:
	$(GO) test -race -run 'Sweep|Ctx|Fault|Quarantine|InjectedPanic|Checkpoint' \
		./internal/cachesim/ ./internal/faults/ ./internal/checkpoint/ ./internal/conformance/ ./internal/opt/
	$(GO) test ./internal/trace/ -run FuzzReadArbitraryBytes -fuzz FuzzReadArbitraryBytes -fuzztime 2s
	$(GO) test ./internal/trace/ -run FuzzCheckpointDecode -fuzz FuzzCheckpointDecode -fuzztime 2s
	$(GO) test ./internal/workload/ -run FuzzFromSpec -fuzz FuzzFromSpec -fuzztime 2s

# Short fuzz passes over the parsing/serialization surfaces.
fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzReadArbitraryBytes -fuzztime 30s
	$(GO) test ./internal/trace/ -fuzz FuzzBinaryRoundTrip -fuzztime 30s
	$(GO) test ./internal/trace/ -fuzz FuzzReadText -fuzztime 30s
	$(GO) test ./internal/trace/ -fuzz FuzzCheckpointDecode -fuzztime 30s
	$(GO) test ./internal/workload/ -fuzz FuzzFromSpec -fuzztime 30s

clean:
	rm -rf results bin
	$(GO) clean -testcache
