# gccache build/test/reproduction driver.

GO ?= go

.PHONY: all build vet test race cover bench bench-json repro repro-quick fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@test -z "$$(gofmt -l .)" || (gofmt -l . && echo 'gofmt: files need formatting' && exit 1)

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/concurrent/ ./internal/cachesim/ ./internal/experiments/

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh BENCH_baseline.json: re-measure the replay/sweep/per-access
# hot-path benchmarks and record them under "current", preserving the
# committed "pre_change" section so the file tracks the performance
# trajectory (see DESIGN.md, Performance notes).
HOTPATH_BENCH = ^(BenchmarkRunTrace|BenchmarkRunTraceGeneric|BenchmarkSweep|BenchmarkAccess(ItemLRU|BlockLRU|IBLP|GCM|AThreshold))$$
bench-json:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCH)' -benchmem . | $(GO) run ./cmd/gcbenchjson -out BENCH_baseline.json

# Regenerate every table/figure of the paper plus the validation
# experiments into results/ (exits non-zero if any claim fails).
repro:
	$(GO) run ./cmd/gcrepro -out results

repro-quick:
	$(GO) run ./cmd/gcrepro -out results -quick

# Short fuzz passes over the parsing/serialization surfaces.
fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzReadArbitraryBytes -fuzztime 30s
	$(GO) test ./internal/trace/ -fuzz FuzzBinaryRoundTrip -fuzztime 30s
	$(GO) test ./internal/trace/ -fuzz FuzzReadText -fuzztime 30s
	$(GO) test ./internal/workload/ -fuzz FuzzFromSpec -fuzztime 30s

clean:
	rm -rf results
	$(GO) clean -testcache
