// Package cli holds the small conventions shared by every command in
// cmd/: a uniform usage banner and a uniform fatal-error format
// ("<name>: <error>" on stderr, exit 1), so the tools feel like one
// suite. The cmd smoke test asserts both.
package cli

import (
	"flag"
	"fmt"
	"os"
)

// SetUsage installs a uniform flag.Usage for the named command:
//
//	usage: <name> [flags]
//	  <synopsis>
//	<flag defaults>
func SetUsage(name, synopsis string) {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: %s [flags]\n  %s\n", name, synopsis)
		flag.PrintDefaults()
	}
}

// Fatal prints "<name>: <err>" to stderr and exits 1.
func Fatal(name string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	os.Exit(1)
}

// Fatalf is Fatal with a formatted message.
func Fatalf(name, format string, args ...any) {
	Fatal(name, fmt.Errorf(format, args...))
}

// CheckWrite exits through Fatal when a final output write failed —
// the uniform way commands surface a full disk or closed pipe instead
// of silently truncating their report. what names the output (e.g.
// "stdout", a file path).
func CheckWrite(name, what string, err error) {
	if err != nil {
		Fatalf(name, "writing %s: %w", what, err)
	}
}
