package locality

import (
	"gccache/internal/model"
	"gccache/internal/trace"
)

// StackDistances computes, in one O(T log T) pass (Mattson's algorithm
// with a Fenwick tree), the LRU stack distance of every request: the
// number of distinct keys referenced since the previous reference to the
// same key, or -1 for cold (first) references. An LRU cache of capacity
// k hits a request iff its stack distance is ≤ k, so one pass yields the
// exact miss count for every capacity simultaneously.
func StackDistances(keys []uint64) []int {
	n := len(keys)
	dist := make([]int, n)
	bit := newFenwick(n + 1)
	lastPos := make(map[uint64]int, 256)
	for i, k := range keys {
		if prev, ok := lastPos[k]; ok {
			// Distinct keys touched in (prev, i) = number of "live" marks
			// after prev. Each key keeps a single mark at its most recent
			// position.
			dist[i] = bit.rangeSum(prev+1, i-1)
			bit.add(prev, -1)
		} else {
			dist[i] = -1
		}
		bit.add(i, 1)
		lastPos[k] = i
	}
	return dist
}

// MissRatioCurve returns the exact LRU miss counts at the requested
// cache sizes for the item trace: curve[i] = misses of an LRU cache with
// sizes[i] slots. Sizes need not be sorted; non-positive sizes count
// every request as a miss.
func MissRatioCurve(tr trace.Trace, sizes []int) []int64 {
	keys := make([]uint64, len(tr))
	for i, it := range tr {
		keys[i] = uint64(it)
	}
	return missCurve(keys, sizes)
}

// BlockMissRatioCurve is MissRatioCurve at block granularity: the exact
// miss counts of a block-granularity LRU (one slot = one block frame)
// for each frame count — the Theorem 3 baseline's whole miss-ratio curve
// in one pass.
func BlockMissRatioCurve(tr trace.Trace, geo model.Geometry, frames []int) []int64 {
	keys := make([]uint64, len(tr))
	for i, it := range tr {
		keys[i] = uint64(geo.BlockOf(it))
	}
	return missCurve(keys, frames)
}

func missCurve(keys []uint64, sizes []int) []int64 {
	dists := StackDistances(keys)
	out := make([]int64, len(sizes))
	for si, k := range sizes {
		var misses int64
		for _, d := range dists {
			// An LRU cache of k slots holds the k most recent distinct
			// keys, so a request hits iff fewer than k distinct *other*
			// keys intervened: d < k.
			if d < 0 || d >= k {
				misses++
			}
		}
		out[si] = misses
	}
	return out
}

// fenwick is a binary indexed tree over positions with point updates and
// prefix sums.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(pos, delta int) {
	for i := pos + 1; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum of [0, pos].
func (f *fenwick) prefix(pos int) int {
	s := 0
	for i := pos + 1; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum returns the sum of [lo, hi]; empty ranges yield 0.
func (f *fenwick) rangeSum(lo, hi int) int {
	if hi < lo {
		return 0
	}
	if lo == 0 {
		return f.prefix(hi)
	}
	return f.prefix(hi) - f.prefix(lo-1)
}
