// Package locality implements the extended locality-of-reference model of
// §2 and §7: the Albers–Favrholdt–Giel working-set function f(n) — the
// maximum number of distinct items in any window of n consecutive
// requests — together with the paper's new block-granularity analogue
// g(n), the maximum number of distinct *blocks* in any window of n
// requests. The ratio f(n)/g(n) measures a trace's spatial locality,
// ranging from 1 (none) to B (perfect).
//
// The package provides both analytic locality function families
// (polynomials, the concave shapes the paper analyzes in §7.3) and exact
// measurement of f and g on concrete traces.
package locality

import (
	"fmt"
	"math"
	"sort"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// Func is a locality function: a nondecreasing, concave map from window
// length n to a working-set size. Implementations must satisfy
// Eval(1) ≥ 1 and be defined for all n ≥ 1.
//
// Inverse and InverseLow bracket the true f⁻¹(m) = min{n : f(n) ≥ m}
// from above and below. For analytic families both equal the exact
// inverse; for sparsely measured profiles they differ, and bound
// formulas must pick the conservative side: lower bounds on fault rate
// use Inverse (overstating f⁻¹ only shrinks the claimed floor), upper
// bounds use InverseLow (understating f⁻¹ only inflates the ceiling).
type Func interface {
	// Eval returns f(n).
	Eval(n float64) float64
	// Inverse returns a value ≥ the true f⁻¹(m).
	Inverse(m float64) float64
	// InverseLow returns a value ≤ the true f⁻¹(m) (but ≥ 1 when m ≥ f(1)).
	InverseLow(m float64) float64
}

// Poly is the polynomial family f(n) = C·n^(1/P) analyzed in §7.3. It is
// concave for P ≥ 1. The paper's Table 2 uses C = 1 and P ∈ {2, p}.
type Poly struct {
	C float64 // leading coefficient, > 0
	P float64 // inverse exponent, ≥ 1
}

// Eval returns C·n^(1/P).
func (p Poly) Eval(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return p.C * math.Pow(n, 1/p.P)
}

// Inverse returns (m/C)^P, the exact inverse.
func (p Poly) Inverse(m float64) float64 {
	if m <= 0 {
		return 0
	}
	return math.Pow(m/p.C, p.P)
}

// InverseLow equals Inverse: the family is continuous, so the inverse is
// exact in both directions.
func (p Poly) InverseLow(m float64) float64 { return p.Inverse(m) }

// String renders the family, e.g. "1.0·n^(1/2)".
func (p Poly) String() string { return fmt.Sprintf("%.3g·n^(1/%.3g)", p.C, p.P) }

// Scaled divides a locality function by a constant γ ≥ 1: the natural way
// to derive g from f, as in Table 2's g = f/√B and g = f/B rows.
type Scaled struct {
	F     Func
	Gamma float64
}

// Eval returns F(n)/Gamma.
func (s Scaled) Eval(n float64) float64 { return s.F.Eval(n) / s.Gamma }

// Inverse returns the smallest n with F(n)/Gamma ≥ m.
func (s Scaled) Inverse(m float64) float64 { return s.F.Inverse(m * s.Gamma) }

// InverseLow delegates to the wrapped function's InverseLow.
func (s Scaled) InverseLow(m float64) float64 { return s.F.InverseLow(m * s.Gamma) }

// Profile is a locality function measured from a trace: the exact maximum
// number of distinct keys over every window of each measured length.
// Between measured lengths it interpolates conservatively (step-wise
// constant from below), and beyond the largest measured length it is
// clamped, so Eval never overstates locality.
type Profile struct {
	ns []int     // measured window lengths, ascending
	fs []float64 // f(ns[i]), nondecreasing
}

// Eval returns the measured working-set bound at window length n.
func (p *Profile) Eval(n float64) float64 {
	if len(p.ns) == 0 || n < 1 {
		return 0
	}
	// Largest measured length ≤ n.
	idx := sort.SearchInts(p.ns, int(math.Floor(n))+1) - 1
	if idx < 0 {
		return p.fs[0]
	}
	return p.fs[idx]
}

// Inverse returns the smallest *measured* n with Eval(n) ≥ m, or the
// largest measured length + 1 if none reaches m. Because the profile is
// only sampled, this can overshoot the true f⁻¹(m) by up to one sampling
// gap — the safe direction for fault-rate *lower* bounds.
func (p *Profile) Inverse(m float64) float64 {
	for i, f := range p.fs {
		if f >= m {
			return float64(p.ns[i])
		}
	}
	if len(p.ns) == 0 {
		return 1
	}
	return float64(p.ns[len(p.ns)-1] + 1)
}

// InverseLow returns one past the largest measured n with Eval(n) < m —
// a value ≤ the true f⁻¹(m), the safe direction for fault-rate *upper*
// bounds.
func (p *Profile) InverseLow(m float64) float64 {
	low := 1
	for i, f := range p.fs {
		if f >= m {
			break
		}
		low = p.ns[i] + 1
	}
	if len(p.fs) > 0 && p.fs[len(p.fs)-1] < m {
		// m is beyond the measured range: the true inverse is at least
		// past the last measured point.
		low = p.ns[len(p.ns)-1] + 1
	}
	return float64(low)
}

// Points returns the measured (n, f(n)) pairs.
func (p *Profile) Points() (ns []int, fs []float64) {
	ns = make([]int, len(p.ns))
	copy(ns, p.ns)
	fs = make([]float64, len(p.fs))
	copy(fs, p.fs)
	return ns, fs
}

// IsConcaveish reports whether the measured points are consistent with a
// concave nondecreasing function (increments never grow with n). Real
// traces satisfy this per Albers et al.; adversarially spliced traces may
// not.
func (p *Profile) IsConcaveish() bool {
	for i := 2; i < len(p.ns); i++ {
		d1 := (p.fs[i-1] - p.fs[i-2]) / float64(p.ns[i-1]-p.ns[i-2])
		d2 := (p.fs[i] - p.fs[i-1]) / float64(p.ns[i]-p.ns[i-1])
		if d2 > d1+1e-9 {
			return false
		}
	}
	return true
}

// MeasureItems computes the exact item working-set function f at the
// given window lengths: f(n) = max over all windows of n consecutive
// requests of the number of distinct items. Lengths are deduplicated,
// sorted, and clamped to the trace length.
func MeasureItems(tr trace.Trace, lengths []int) *Profile {
	return measure(len(tr), lengths, func(i int) uint64 { return uint64(tr[i]) })
}

// MeasureBlocks computes the exact block working-set function g at the
// given window lengths under geometry geo.
func MeasureBlocks(tr trace.Trace, geo model.Geometry, lengths []int) *Profile {
	return measure(len(tr), lengths, func(i int) uint64 { return uint64(geo.BlockOf(tr[i])) })
}

// measure runs one exact sliding-window distinct count per requested
// length: O(T) time and O(distinct) space per length.
func measure(total int, lengths []int, key func(i int) uint64) *Profile {
	cleaned := cleanLengths(lengths, total)
	p := &Profile{ns: cleaned, fs: make([]float64, len(cleaned))}
	counts := make(map[uint64]int)
	for li, n := range cleaned {
		clear(counts)
		distinct, best := 0, 0
		for i := 0; i < total; i++ {
			k := key(i)
			if counts[k] == 0 {
				distinct++
			}
			counts[k]++
			if i >= n {
				old := key(i - n)
				counts[old]--
				if counts[old] == 0 {
					delete(counts, old)
					distinct--
				}
			}
			if i >= n-1 && distinct > best {
				best = distinct
			}
		}
		p.fs[li] = float64(best)
	}
	// Enforce monotonicity (exact values are monotone already; guard
	// against degenerate inputs such as repeated lengths on empty traces).
	for i := 1; i < len(p.fs); i++ {
		if p.fs[i] < p.fs[i-1] {
			p.fs[i] = p.fs[i-1]
		}
	}
	return p
}

func cleanLengths(lengths []int, total int) []int {
	seen := make(map[int]struct{}, len(lengths))
	out := make([]int, 0, len(lengths))
	for _, n := range lengths {
		if n < 1 {
			continue
		}
		if n > total {
			n = total
		}
		if n == 0 {
			continue
		}
		if _, dup := seen[n]; !dup {
			seen[n] = struct{}{}
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// GeometricLengths returns window lengths 1, 2, 4, …, ≤ max, plus max —
// a sensible default sampling for profiles.
func GeometricLengths(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// SpatialLocalityRatio returns the mean of f(n)/g(n) over the profiles'
// common measured lengths — a scalar summary of how much spatial locality
// a trace has (1 = none, B = maximal).
func SpatialLocalityRatio(f, g *Profile) float64 {
	common := 0
	sum := 0.0
	for i, n := range f.ns {
		gv := g.Eval(float64(n))
		if gv <= 0 {
			continue
		}
		sum += f.fs[i] / gv
		common++
	}
	if common == 0 {
		return 1
	}
	return sum / float64(common)
}
