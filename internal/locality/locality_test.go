package locality

import (
	"math"
	"testing"
	"testing/quick"

	"gccache/internal/model"
	"gccache/internal/trace"
)

func TestPolyEvalInverse(t *testing.T) {
	p := Poly{C: 2, P: 3}
	if got := p.Eval(8); math.Abs(got-4) > 1e-12 {
		t.Errorf("Eval(8) = %v, want 4", got)
	}
	if got := p.Inverse(4); math.Abs(got-8) > 1e-9 {
		t.Errorf("Inverse(4) = %v, want 8", got)
	}
	if p.Eval(0) != 0 || p.Inverse(0) != 0 {
		t.Error("zero handling")
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestPolyInverseRoundTrip(t *testing.T) {
	prop := func(rawN uint16, rawC, rawP uint8) bool {
		n := float64(rawN%10000) + 1
		c := float64(rawC%9) + 1
		p := float64(rawP%4) + 1
		f := Poly{C: c, P: p}
		m := f.Eval(n)
		back := f.Inverse(m)
		return math.Abs(back-n) < 1e-6*n+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestScaled(t *testing.T) {
	f := Poly{C: 1, P: 2}
	g := Scaled{F: f, Gamma: 8}
	if got := g.Eval(64); math.Abs(got-1) > 1e-12 {
		t.Errorf("Eval(64) = %v, want 1", got)
	}
	// Inverse: smallest n with f(n)/8 ≥ 1 ⇒ f(n) ≥ 8 ⇒ n = 64.
	if got := g.Inverse(1); math.Abs(got-64) > 1e-9 {
		t.Errorf("Inverse(1) = %v, want 64", got)
	}
}

func TestMeasureItemsSimple(t *testing.T) {
	// Trace: 1 2 1 3. Windows: n=1 → 1 distinct; n=2 → 2; n=3 → 2
	// (121 → 2, 213 → 3!). Recompute: windows of 3: [1 2 1]=2, [2 1 3]=3.
	tr := trace.Trace{1, 2, 1, 3}
	p := MeasureItems(tr, []int{1, 2, 3, 4})
	want := map[int]float64{1: 1, 2: 2, 3: 3, 4: 3}
	ns, fs := p.Points()
	for idx, n := range ns {
		if fs[idx] != want[n] {
			t.Errorf("f(%d) = %v, want %v", n, fs[idx], want[n])
		}
	}
}

func TestMeasureBlocks(t *testing.T) {
	g := model.NewFixed(2)
	// Items 0,1 → block 0; 2,3 → block 1; 4 → block 2.
	tr := trace.Trace{0, 1, 2, 3, 4}
	p := MeasureBlocks(tr, g, []int{2, 4, 5})
	// n=2: [0 1]=1 block, [1 2]=2, [2 3]=1, [3 4]=2 → max 2.
	if got := p.Eval(2); got != 2 {
		t.Errorf("g(2) = %v, want 2", got)
	}
	// n=4: [0 1 2 3] = 2 blocks, [1 2 3 4] = 3 → max 3.
	if got := p.Eval(4); got != 3 {
		t.Errorf("g(4) = %v, want 3", got)
	}
	if got := p.Eval(5); got != 3 {
		t.Errorf("g(5) = %v, want 3", got)
	}
}

func TestMeasureItemsMatchesNaive(t *testing.T) {
	// Differential test against an O(T²) brute force.
	tr := trace.Trace{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}
	naive := func(n int) float64 {
		best := 0
		for s := 0; s+n <= len(tr); s++ {
			seen := map[model.Item]bool{}
			for _, it := range tr[s : s+n] {
				seen[it] = true
			}
			if len(seen) > best {
				best = len(seen)
			}
		}
		return float64(best)
	}
	lengths := []int{1, 2, 3, 5, 8, 13, 16}
	p := MeasureItems(tr, lengths)
	for _, n := range lengths {
		if got := p.Eval(float64(n)); got != naive(n) {
			t.Errorf("f(%d) = %v, naive %v", n, got, naive(n))
		}
	}
}

func TestProfileEvalInterpolatesConservatively(t *testing.T) {
	tr := trace.Trace{1, 2, 3, 4, 5, 6, 7, 8}
	p := MeasureItems(tr, []int{2, 4, 8})
	// f(3) is not measured: must return the value at the largest measured
	// length ≤ 3, i.e. f(2) = 2 (conservative: never overstate).
	if got := p.Eval(3); got != 2 {
		t.Errorf("Eval(3) = %v, want 2", got)
	}
	// Below the smallest measured length: clamp to the first value.
	if got := p.Eval(1); got != 2 {
		t.Errorf("Eval(1) = %v, want 2 (clamped)", got)
	}
	// Beyond the largest: clamp.
	if got := p.Eval(100); got != 8 {
		t.Errorf("Eval(100) = %v, want 8", got)
	}
}

func TestProfileInverse(t *testing.T) {
	tr := trace.Trace{1, 2, 3, 4, 5, 6, 7, 8}
	p := MeasureItems(tr, []int{1, 2, 4, 8})
	if got := p.Inverse(4); got != 4 {
		t.Errorf("Inverse(4) = %v, want 4", got)
	}
	if got := p.Inverse(3); got != 4 {
		t.Errorf("Inverse(3) = %v, want 4 (smallest measured n with f ≥ 3)", got)
	}
	// Unreachable value: one past the largest measured length.
	if got := p.Inverse(100); got != 9 {
		t.Errorf("Inverse(100) = %v, want 9", got)
	}
}

func TestProfileConcavity(t *testing.T) {
	// A sequential scan has f(n) = n: linear, which is (weakly) concave.
	tr := make(trace.Trace, 64)
	for i := range tr {
		tr[i] = model.Item(i)
	}
	p := MeasureItems(tr, []int{1, 2, 4, 8, 16, 32, 64})
	if !p.IsConcaveish() {
		t.Error("scan profile should be concave")
	}
}

func TestMeasureEmptyTrace(t *testing.T) {
	p := MeasureItems(nil, []int{1, 2})
	if got := p.Eval(1); got != 0 {
		t.Errorf("empty trace Eval = %v", got)
	}
}

func TestCleanLengths(t *testing.T) {
	got := cleanLengths([]int{5, 1, 5, 0, -3, 100}, 10)
	want := []int{1, 5, 10}
	if len(got) != len(want) {
		t.Fatalf("cleanLengths = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cleanLengths = %v, want %v", got, want)
		}
	}
}

func TestGeometricLengths(t *testing.T) {
	got := GeometricLengths(20)
	want := []int{1, 2, 4, 8, 16, 20}
	if len(got) != len(want) {
		t.Fatalf("GeometricLengths = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GeometricLengths = %v", got)
		}
	}
	if got := GeometricLengths(16); got[len(got)-1] != 16 || len(got) != 5 {
		t.Errorf("GeometricLengths(16) = %v", got)
	}
}

func TestSpatialLocalityRatio(t *testing.T) {
	g := model.NewFixed(4)
	// Fully sequential: every window of n has ≈ n items, ≈ n/4 blocks.
	tr := make(trace.Trace, 256)
	for i := range tr {
		tr[i] = model.Item(i)
	}
	lengths := []int{16, 32, 64, 128}
	f := MeasureItems(tr, lengths)
	gp := MeasureBlocks(tr, g, lengths)
	ratio := SpatialLocalityRatio(f, gp)
	if ratio < 3 || ratio > 4.01 {
		t.Errorf("sequential ratio = %v, want ≈ B = 4", ratio)
	}
	// Strided access (one item per block): no spatial locality.
	tr2 := make(trace.Trace, 256)
	for i := range tr2 {
		tr2[i] = model.Item(i * 4)
	}
	f2 := MeasureItems(tr2, lengths)
	g2 := MeasureBlocks(tr2, g, lengths)
	if r := SpatialLocalityRatio(f2, g2); math.Abs(r-1) > 1e-9 {
		t.Errorf("strided ratio = %v, want 1", r)
	}
}

func TestProfileInverseBracketsTruth(t *testing.T) {
	// Sequential trace: true f(n) = n, so true f⁻¹(m) = m exactly.
	tr := make(trace.Trace, 256)
	for i := range tr {
		tr[i] = model.Item(i)
	}
	p := MeasureItems(tr, []int{1, 4, 16, 64, 256})
	for _, m := range []float64{2, 5, 17, 100, 256} {
		lo, hi := p.InverseLow(m), p.Inverse(m)
		if lo > m || hi < m {
			t.Errorf("m=%v: bracket [%v, %v] misses true inverse %v", m, lo, hi, m)
		}
		if lo > hi {
			t.Errorf("m=%v: InverseLow %v > Inverse %v", m, lo, hi)
		}
	}
	// Beyond the measured range both sides sit past the last point.
	if p.InverseLow(1000) != 257 || p.Inverse(1000) != 257 {
		t.Errorf("beyond range: low=%v hi=%v", p.InverseLow(1000), p.Inverse(1000))
	}
}

func TestPolyInverseLowEqualsInverse(t *testing.T) {
	f := Poly{C: 1, P: 3}
	if f.InverseLow(5) != f.Inverse(5) {
		t.Error("analytic family should have exact inverse both ways")
	}
	s := Scaled{F: f, Gamma: 2}
	if s.InverseLow(5) != s.Inverse(5) {
		t.Error("scaled analytic family should have exact inverse both ways")
	}
}

func TestTumblingBracketsExact(t *testing.T) {
	// f̂(n) ≤ f(n) ≤ 2·f̂(n) on assorted traces.
	traces := []trace.Trace{
		make(trace.Trace, 500), // filled below: sequential
	}
	for i := range traces[0] {
		traces[0][i] = model.Item(i)
	}
	cyc := make(trace.Trace, 500)
	for i := range cyc {
		cyc[i] = model.Item(i % 37)
	}
	traces = append(traces, cyc)
	zig := make(trace.Trace, 500)
	for i := range zig {
		zig[i] = model.Item((i * i) % 101)
	}
	traces = append(traces, zig)
	lengths := []int{1, 3, 10, 50, 200, 500}
	for ti, tr := range traces {
		exact := MeasureItems(tr, lengths)
		approx := MeasureItemsTumbling(tr, lengths)
		for _, n := range lengths {
			fe := exact.Eval(float64(n))
			fa := approx.Eval(float64(n))
			if fa > fe {
				t.Errorf("trace %d n=%d: estimate %v above exact %v", ti, n, fa, fe)
			}
			if fe > 2*fa {
				t.Errorf("trace %d n=%d: exact %v above 2× estimate %v", ti, n, fe, fa)
			}
		}
	}
}

func TestTumblingBlocks(t *testing.T) {
	g := model.NewFixed(4)
	tr := make(trace.Trace, 256)
	for i := range tr {
		tr[i] = model.Item(i)
	}
	exact := MeasureBlocks(tr, g, []int{16, 64})
	approx := MeasureBlocksTumbling(tr, g, []int{16, 64})
	for _, n := range []float64{16, 64} {
		if approx.Eval(n) > exact.Eval(n) || exact.Eval(n) > 2*approx.Eval(n) {
			t.Errorf("n=%v: bracket violated (%v vs %v)", n, approx.Eval(n), exact.Eval(n))
		}
	}
}
