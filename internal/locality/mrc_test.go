package locality

import (
	"math/rand"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/trace"
)

func TestStackDistancesKnown(t *testing.T) {
	// Trace: a b c a b b.
	keys := []uint64{1, 2, 3, 1, 2, 2}
	want := []int{-1, -1, -1, 2, 2, 0}
	got := StackDistances(keys)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestMissRatioCurveMatchesSimulation(t *testing.T) {
	// The gold standard: the one-pass curve equals a direct LRU
	// simulation at every size.
	rng := rand.New(rand.NewSource(21))
	tr := make(trace.Trace, 6000)
	for i := range tr {
		tr[i] = model.Item(rng.Intn(120))
	}
	sizes := []int{1, 2, 5, 16, 64, 119, 120, 200}
	curve := MissRatioCurve(tr, sizes)
	for si, k := range sizes {
		sim := cachesim.RunCold(policy.NewItemLRU(k), tr).Misses
		if curve[si] != sim {
			t.Errorf("k=%d: curve %d != simulated LRU %d", k, curve[si], sim)
		}
	}
}

func TestMissRatioCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := make(trace.Trace, 4000)
	for i := range tr {
		tr[i] = model.Item(rng.Intn(300))
	}
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	curve := MissRatioCurve(tr, sizes)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("miss curve not monotone: %v", curve)
		}
	}
	// At capacity ≥ distinct items, only cold misses remain.
	if curve[len(curve)-1] != int64(tr.Distinct()) {
		t.Errorf("full-capacity misses %d != distinct %d", curve[len(curve)-1], tr.Distinct())
	}
}

func TestBlockMissRatioCurveMatchesBlockSimulation(t *testing.T) {
	// The block-granularity curve equals the BlockLRU simulator when
	// every block fits exactly (full-block loads, k = frames × B).
	B := 4
	g := model.NewFixed(B)
	rng := rand.New(rand.NewSource(9))
	tr := make(trace.Trace, 5000)
	for i := range tr {
		tr[i] = model.Item(rng.Intn(160))
	}
	for _, frames := range []int{2, 5, 10, 39} {
		curve := BlockMissRatioCurve(tr, g, []int{frames})
		sim := cachesim.RunCold(policy.NewBlockLRU(frames*B, g), tr).Misses
		if curve[0] != sim {
			t.Errorf("frames=%d: curve %d != simulated BlockLRU %d", frames, curve[0], sim)
		}
	}
}

func TestMissRatioCurveZeroSize(t *testing.T) {
	tr := trace.Trace{1, 1, 1}
	curve := MissRatioCurve(tr, []int{0})
	if curve[0] != 3 {
		t.Errorf("k=0 misses = %d, want 3", curve[0])
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(10)
	f.add(3, 5)
	f.add(7, 2)
	if got := f.prefix(2); got != 0 {
		t.Errorf("prefix(2) = %d", got)
	}
	if got := f.prefix(9); got != 7 {
		t.Errorf("prefix(9) = %d", got)
	}
	if got := f.rangeSum(4, 7); got != 2 {
		t.Errorf("rangeSum(4,7) = %d", got)
	}
	if got := f.rangeSum(5, 4); got != 0 {
		t.Errorf("empty range = %d", got)
	}
	f.add(3, -5)
	if got := f.prefix(9); got != 2 {
		t.Errorf("after removal prefix = %d", got)
	}
}
