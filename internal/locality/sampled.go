package locality

import (
	"gccache/internal/model"
	"gccache/internal/trace"
)

// MeasureItemsTumbling estimates the item working-set function f using
// tumbling (non-overlapping) windows instead of all sliding windows: one
// pass and one counter reset per window, O(T) per length regardless of
// window size — the profiler to reach for on very long traces.
//
// Guarantee: the estimate brackets the truth within a factor of two,
//
//	f̂(n) ≤ f(n) ≤ 2·f̂(n),
//
// because every sliding window of length n is covered by at most two
// consecutive tumbling windows, and some tumbling window *is* a sliding
// window. The estimate is therefore safe wherever an under-approximation
// of f is safe (e.g. the Theorem 8 lower bound via Inverse); use the
// exact MeasureItems for the Theorem 9–11 upper bounds.
func MeasureItemsTumbling(tr trace.Trace, lengths []int) *Profile {
	return measureTumbling(len(tr), lengths, func(i int) uint64 { return uint64(tr[i]) })
}

// MeasureBlocksTumbling is MeasureItemsTumbling for the block function g.
func MeasureBlocksTumbling(tr trace.Trace, geo model.Geometry, lengths []int) *Profile {
	return measureTumbling(len(tr), lengths, func(i int) uint64 { return uint64(geo.BlockOf(tr[i])) })
}

func measureTumbling(total int, lengths []int, key func(i int) uint64) *Profile {
	cleaned := cleanLengths(lengths, total)
	p := &Profile{ns: cleaned, fs: make([]float64, len(cleaned))}
	counts := make(map[uint64]struct{})
	for li, n := range cleaned {
		best := 0
		for start := 0; start < total; start += n {
			end := start + n
			if end > total {
				end = total
			}
			clear(counts)
			for i := start; i < end; i++ {
				counts[key(i)] = struct{}{}
			}
			if len(counts) > best {
				best = len(counts)
			}
		}
		p.fs[li] = float64(best)
	}
	for i := 1; i < len(p.fs); i++ {
		if p.fs[i] < p.fs[i-1] {
			p.fs[i] = p.fs[i-1]
		}
	}
	return p
}
