package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(5.0/3)) > 1e-12 {
		t.Errorf("StdDev = %v", s.StdDev)
	}
}

func TestSummarizeSkipsNaN(t *testing.T) {
	s := Summarize([]float64{math.NaN(), 2, math.NaN()})
	if s.N != 1 || s.Mean != 2 || s.StdDev != 0 {
		t.Errorf("Summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty Summary = %+v", z)
	}
	if z := Summarize([]float64{math.NaN()}); z.N != 0 {
		t.Errorf("all-NaN Summary = %+v", z)
	}
}

func TestSummarizeBounds(t *testing.T) {
	prop := func(raw []float64) bool {
		// Clamp magnitudes so the sum cannot overflow: the property is
		// about ordering, not extreme-value arithmetic.
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = math.NaN()
				continue
			}
			xs[i] = math.Mod(x, 1e6)
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 0, -1, math.NaN(), math.Inf(1)}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean with junk = %v, want 2", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) should be NaN")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Errorf("RelErr = %v", RelErr(11, 10))
	}
	if RelErr(3, 0) != 3 {
		t.Errorf("RelErr vs 0 = %v", RelErr(3, 0))
	}
}
