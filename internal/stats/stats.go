// Package stats provides the small numeric summaries the experiment
// harness reports: means, extrema, standard deviation, and geometric
// means of ratios.
package stats

import "math"

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary; NaNs are skipped, an empty (or all-NaN)
// sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		s.N++
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	if s.N == 0 {
		return Summary{}
	}
	s.Mean = sum / float64(s.N)
	varsum := 0.0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		d := x - s.Mean
		varsum += d * d
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(varsum / float64(s.N-1))
	}
	return s
}

// GeoMean returns the geometric mean of strictly positive values; zero,
// negative, and NaN entries are skipped. Empty input yields NaN.
func GeoMean(xs []float64) float64 {
	logs := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 && !math.IsNaN(x) && !math.IsInf(x, 0) {
			logs += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(logs / float64(n))
}

// RelErr returns |got−want|/|want|, or |got| when want == 0.
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
