// Package faults is a deterministic, seeded fault-injection framework
// for hardening the repository's long-running execution paths: parallel
// sweeps, solver runs, and replay servers.
//
// An Injector is built from a Plan — a seed plus per-fault-kind
// fractions — and decides purely from (seed, index, attempt) which grid
// indices panic, stall, or corrupt their result, and (in the network
// wiring, see Proxy) which connections are dropped, blackholed, or
// slowed. The decisions are
// stable hash functions, not draws from a shared rng, so an injected
// failure reproduces exactly regardless of how many workers run the
// sweep, which worker claims the index, or how many indices run in
// between. Tests assert against the Injector's own schedule
// (PanicIndices, CorruptIndices) instead of hard-coding index lists.
//
// The intended wiring is one Injector per sweep, with Step(i) called
// inside the worker callback at the point the fault should strike
// (typically mid-trace, so a panic leaves genuinely poisoned policy
// state behind for the retry machinery to deal with).
package faults

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Forever marks a fault as permanent: every attempt at the index fails.
const Forever = -1

// Plan configures an Injector. The zero value injects nothing.
type Plan struct {
	// Seed selects the fault schedule; two Injectors with equal Plans
	// fail at exactly the same indices.
	Seed int64
	// PanicFrac is the fraction of indices (hash-selected) whose
	// executions panic with an Injected value.
	PanicFrac float64
	// PanicAttempts is how many consecutive attempts at a selected
	// index panic before it succeeds: 1 means the first attempt fails
	// and the first retry succeeds; Forever (-1) means every attempt
	// fails. 0 defaults to 1.
	PanicAttempts int
	// DelayFrac is the fraction of indices that sleep for Delay before
	// doing their work — a widener for race windows in -race runs.
	DelayFrac float64
	// Delay is the injected sleep duration.
	Delay time.Duration
	// CorruptFrac is the fraction of indices whose results Corrupt
	// perturbs — for testing that downstream verification catches
	// silently wrong per-index results.
	CorruptFrac float64
	// DropFrac is the fraction of indices (connections, in the network
	// wiring) that are dropped outright: the netfaults proxy closes a
	// drop-scheduled connection before forwarding a byte, modelling a
	// crashed peer or a RST-happy middlebox.
	DropFrac float64
	// PartitionFrac is the fraction of indices that are partitioned:
	// the proxy accepts the connection but never forwards traffic in
	// either direction, modelling a network partition (packets
	// blackholed, no RST) — the failure mode that distinguishes a
	// timeout-aware client from one that hangs forever.
	PartitionFrac float64
	// ConnDelayFrac is the fraction of indices whose connections are
	// slowed: the proxy sleeps ConnDelay before starting to forward,
	// modelling a slow link or an overloaded peer.
	ConnDelayFrac float64
	// ConnDelay is the injected connection-level delay duration.
	ConnDelay time.Duration
}

// Injected is the panic value of an injected worker panic. It carries
// the index and attempt so quarantine reports can be asserted exactly.
type Injected struct {
	Index   int
	Attempt int
}

// Error implements error so recovered values print cleanly.
func (p Injected) Error() string {
	return fmt.Sprintf("faults: injected panic at index %d (attempt %d)", p.Index, p.Attempt)
}

// Injector injects the faults scheduled by a Plan. Safe for concurrent
// use by sweep workers; attempt counts are tracked per index.
type Injector struct {
	plan Plan

	mu       sync.Mutex
	attempts map[int]int
}

// New returns an Injector for the plan.
func New(plan Plan) *Injector {
	if plan.PanicAttempts == 0 {
		plan.PanicAttempts = 1
	}
	return &Injector{plan: plan, attempts: make(map[int]int)}
}

// splitmix64 is the avalanche mix of the SplitMix64 generator — a
// stateless, high-quality 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chosen reports whether index i falls in the selected fraction for the
// fault kind tagged by salt.
func (in *Injector) chosen(i int, salt uint64, frac float64) bool {
	if frac <= 0 {
		return false
	}
	if frac >= 1 {
		return true
	}
	h := splitmix64(uint64(in.plan.Seed) ^ salt ^ uint64(i)*0x9e3779b97f4a7c15)
	// Top 53 bits as a uniform float in [0, 1).
	return float64(h>>11)/float64(1<<53) < frac
}

const (
	saltPanic     = 0xfa017c_0001
	saltDelay     = 0xfa017c_0002
	saltCorrupt   = 0xfa017c_0003
	saltDrop      = 0xfa017c_0004
	saltPartition = 0xfa017c_0005
	saltConnDelay = 0xfa017c_0006
)

// ShouldPanic reports whether the given attempt (0-based) at index i is
// scheduled to panic.
func (in *Injector) ShouldPanic(i, attempt int) bool {
	if !in.chosen(i, saltPanic, in.plan.PanicFrac) {
		return false
	}
	return in.plan.PanicAttempts == Forever || attempt < in.plan.PanicAttempts
}

// ShouldDelay reports whether index i is scheduled to stall.
func (in *Injector) ShouldDelay(i int) bool {
	return in.chosen(i, saltDelay, in.plan.DelayFrac)
}

// ShouldCorrupt reports whether index i's result is scheduled to be
// perturbed.
func (in *Injector) ShouldCorrupt(i int) bool {
	return in.chosen(i, saltCorrupt, in.plan.CorruptFrac)
}

// ShouldDrop reports whether connection (or generic index) i is
// scheduled to be dropped outright. Like every other decision it is a
// pure function of (seed, i), so a proxy replaying the same connection
// sequence drops exactly the same connections on every run.
func (in *Injector) ShouldDrop(i int) bool {
	return in.chosen(i, saltDrop, in.plan.DropFrac)
}

// ShouldPartition reports whether connection i is scheduled to be
// blackholed: accepted, never served, never reset.
func (in *Injector) ShouldPartition(i int) bool {
	return in.chosen(i, saltPartition, in.plan.PartitionFrac)
}

// ConnDelay returns the connection-level delay scheduled for index i:
// Plan.ConnDelay when i is delay-scheduled, 0 otherwise.
func (in *Injector) ConnDelay(i int) time.Duration {
	if in.chosen(i, saltConnDelay, in.plan.ConnDelayFrac) {
		return in.plan.ConnDelay
	}
	return 0
}

// DropIndices returns the sorted indices in [0, n) scheduled to drop —
// the oracle the chaos tests compare proxy behaviour against.
func (in *Injector) DropIndices(n int) []int {
	return in.schedule(n, in.ShouldDrop)
}

// PartitionIndices returns the sorted indices in [0, n) scheduled to be
// blackholed.
func (in *Injector) PartitionIndices(n int) []int {
	return in.schedule(n, in.ShouldPartition)
}

// Step records one execution attempt at index i and injects that
// attempt's scheduled faults: it sleeps when the index is
// delay-scheduled, then panics with an Injected value when the attempt
// is panic-scheduled. Call it from the sweep worker callback at the
// point the fault should strike.
func (in *Injector) Step(i int) {
	in.mu.Lock()
	attempt := in.attempts[i]
	in.attempts[i] = attempt + 1
	in.mu.Unlock()
	if in.ShouldDelay(i) {
		time.Sleep(in.plan.Delay)
	}
	if in.ShouldPanic(i, attempt) {
		panic(Injected{Index: i, Attempt: attempt})
	}
}

// Attempts returns how many times Step has been called for index i.
func (in *Injector) Attempts(i int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.attempts[i]
}

// Corrupt deterministically perturbs a result byte slice for a
// corrupt-scheduled index (flipping one hash-selected bit) and returns
// it unchanged otherwise. The input is modified in place when owned by
// the caller; zero-length slices pass through.
func (in *Injector) Corrupt(i int, b []byte) []byte {
	if len(b) == 0 || !in.ShouldCorrupt(i) {
		return b
	}
	h := splitmix64(uint64(in.plan.Seed) ^ saltCorrupt ^ uint64(i))
	b[h%uint64(len(b))] ^= 1 << (h >> 32 % 8)
	return b
}

// PanicIndices returns the sorted indices in [0, n) scheduled to panic
// on their first attempt — the oracle tests compare quarantine reports
// against.
func (in *Injector) PanicIndices(n int) []int {
	return in.schedule(n, func(i int) bool { return in.ShouldPanic(i, 0) })
}

// CorruptIndices returns the sorted indices in [0, n) scheduled for
// result corruption.
func (in *Injector) CorruptIndices(n int) []int {
	return in.schedule(n, in.ShouldCorrupt)
}

func (in *Injector) schedule(n int, pred func(int) bool) []int {
	var out []int
	for i := 0; i < n; i++ {
		if pred(i) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
