package faults

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back until the
// listener closes. Returns the address and a stop function.
func echoServer(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn) //nolint:errcheck // test echo
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); <-done }
}

// roundTrip dials addr through d, writes a ping, and reads the echo
// under the deadline.
func roundTrip(addr string, deadline time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, deadline)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(deadline))
	if _, err := conn.Write([]byte("ping")); err != nil {
		return err
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return err
	}
	if string(buf) != "ping" {
		return fmt.Errorf("echoed %q, want %q", buf, "ping")
	}
	return nil
}

// TestProxyForwardsCleanly pipes traffic through a fault-free proxy.
func TestProxyForwardsCleanly(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	p, err := NewProxy("127.0.0.1:0", backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 5; i++ {
		if err := roundTrip(p.Addr(), 2*time.Second); err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
	}
	if got := p.Accepted(); got != 5 {
		t.Errorf("Accepted = %d, want 5", got)
	}
	if p.Dropped() != 0 || p.Blackholed() != 0 {
		t.Errorf("fault-free proxy injected faults: dropped=%d blackholed=%d", p.Dropped(), p.Blackholed())
	}
}

// TestProxyDropsScheduledConnections drives connections through a
// proxy whose injector drops everything and asserts no round trip
// succeeds — and that the drop count matches the schedule oracle.
func TestProxyDropsScheduledConnections(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	inj := New(Plan{Seed: 4, DropFrac: 1})
	p, err := NewProxy("127.0.0.1:0", backend, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const n = 4
	for i := 0; i < n; i++ {
		if err := roundTrip(p.Addr(), 500*time.Millisecond); err == nil {
			t.Fatalf("round trip %d succeeded through a DropFrac=1 proxy", i)
		}
	}
	if got := len(inj.DropIndices(n)); got != n {
		t.Fatalf("oracle says %d drops for DropFrac=1, want %d", got, n)
	}
	// The proxy may observe fewer accepts than dials (a dial can fail
	// before accept during teardown), but every accepted one dropped.
	if p.Dropped() != p.Accepted() {
		t.Errorf("dropped %d of %d accepted connections, want all", p.Dropped(), p.Accepted())
	}
}

// TestProxyPartitionBlackholes verifies both partition paths — the
// seeded schedule and the runtime SetPartitioned switch — hang the
// client until its own deadline instead of resetting the connection.
func TestProxyPartitionBlackholes(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	p, err := NewProxy("127.0.0.1:0", backend, New(Plan{Seed: 4, PartitionFrac: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	err = roundTrip(p.Addr(), 300*time.Millisecond)
	if err == nil {
		t.Fatal("round trip succeeded through a PartitionFrac=1 proxy")
	}
	if d := time.Since(start); d < 250*time.Millisecond {
		t.Errorf("partitioned round trip failed fast (%v) — got a reset, want a deadline hang", d)
	}

	// Runtime switch on an otherwise clean proxy.
	p2, err := NewProxy("127.0.0.1:0", backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if err := roundTrip(p2.Addr(), 2*time.Second); err != nil {
		t.Fatalf("pre-partition round trip: %v", err)
	}
	p2.SetPartitioned(true)
	if err := roundTrip(p2.Addr(), 300*time.Millisecond); err == nil {
		t.Fatal("round trip succeeded through a partitioned link")
	}
	p2.SetPartitioned(false)
	if err := roundTrip(p2.Addr(), 2*time.Second); err != nil {
		t.Fatalf("post-heal round trip: %v", err)
	}
	if got := p2.Blackholed(); got != 1 {
		t.Errorf("Blackholed = %d, want 1", got)
	}
}

// TestProxyCloseUnblocksParkedConnections asserts Close resets
// blackholed connections so nothing leaks or hangs at teardown.
func TestProxyCloseUnblocksParkedConnections(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	p, err := NewProxy("127.0.0.1:0", backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.SetPartitioned(true)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := conn.Read(buf)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the proxy park the conn
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("read on a parked connection returned data after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the parked connection")
	}
}
