package faults

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestScheduleIsDeterministic(t *testing.T) {
	a := New(Plan{Seed: 42, PanicFrac: 0.05, CorruptFrac: 0.1})
	b := New(Plan{Seed: 42, PanicFrac: 0.05, CorruptFrac: 0.1})
	const n = 2000
	pa, pb := a.PanicIndices(n), b.PanicIndices(n)
	if len(pa) == 0 {
		t.Fatal("5% panic fraction selected no indices out of 2000")
	}
	if len(pa) != len(pb) {
		t.Fatalf("schedules diverged: %d vs %d panic indices", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("schedules diverged at %d: %d vs %d", i, pa[i], pb[i])
		}
	}
	ca, cb := a.CorruptIndices(n), b.CorruptIndices(n)
	if len(ca) == 0 || len(ca) != len(cb) {
		t.Fatalf("corrupt schedules diverged: %d vs %d", len(ca), len(cb))
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := New(Plan{Seed: 1, PanicFrac: 0.1})
	b := New(Plan{Seed: 2, PanicFrac: 0.1})
	const n = 4000
	pa, pb := a.PanicIndices(n), b.PanicIndices(n)
	same := len(pa) == len(pb)
	if same {
		for i := range pa {
			if pa[i] != pb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical panic schedules")
	}
}

func TestFractionRoughlyHolds(t *testing.T) {
	in := New(Plan{Seed: 7, PanicFrac: 0.05})
	const n = 20000
	got := len(in.PanicIndices(n))
	want := int(0.05 * n)
	if got < want/2 || got > want*2 {
		t.Errorf("PanicFrac 0.05 over %d indices selected %d, want ≈%d", n, got, want)
	}
}

func TestStepPanicsThenSucceeds(t *testing.T) {
	in := New(Plan{Seed: 3, PanicFrac: 1, PanicAttempts: 2})
	for attempt := 0; attempt < 2; attempt++ {
		func() {
			defer func() {
				p := recover()
				inj, ok := p.(Injected)
				if !ok {
					t.Fatalf("attempt %d: recovered %v, want Injected", attempt, p)
				}
				if inj.Index != 9 || inj.Attempt != attempt {
					t.Errorf("attempt %d: got %+v", attempt, inj)
				}
			}()
			in.Step(9)
			t.Fatalf("attempt %d: Step returned instead of panicking", attempt)
		}()
	}
	in.Step(9) // third attempt must succeed
	if got := in.Attempts(9); got != 3 {
		t.Errorf("Attempts(9) = %d, want 3", got)
	}
}

func TestForeverNeverSucceeds(t *testing.T) {
	in := New(Plan{Seed: 3, PanicFrac: 1, PanicAttempts: Forever})
	for attempt := 0; attempt < 5; attempt++ {
		if !in.ShouldPanic(0, attempt) {
			t.Fatalf("Forever plan stopped panicking at attempt %d", attempt)
		}
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := New(Plan{})
	for i := 0; i < 100; i++ {
		in.Step(i) // must not panic
	}
	if got := in.PanicIndices(100); len(got) != 0 {
		t.Errorf("zero plan scheduled panics at %v", got)
	}
	b := []byte{1, 2, 3}
	if got := in.Corrupt(0, b); &got[0] != &b[0] || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Error("zero plan corrupted a result")
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	in := New(Plan{Seed: 5, CorruptFrac: 1})
	orig := []byte{0xAA, 0x55, 0x00, 0xFF}
	got := in.Corrupt(3, append([]byte(nil), orig...))
	diffBits := 0
	for i := range orig {
		d := orig[i] ^ got[i]
		for ; d != 0; d &= d - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Errorf("Corrupt flipped %d bits, want exactly 1", diffBits)
	}
	// Deterministic: same index, same flip.
	again := in.Corrupt(3, append([]byte(nil), orig...))
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("Corrupt is not deterministic per index")
		}
	}
}

// TestStepAttemptsConcurrent hammers Step and Attempts from many
// goroutines — some sharing an index, some alone — and asserts the
// per-index attempt counts come out exact. The sweep engines call Step
// from pooled workers, so a lost update here would desynchronize the
// retry machinery from the injection schedule.
func TestStepAttemptsConcurrent(t *testing.T) {
	in := New(Plan{}) // no faults: pure attempt accounting
	const (
		goroutines = 16
		perG       = 500
		shared     = 7 // index hit by every goroutine
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				in.Step(shared)
				in.Step(1000 + g) // private index
				_ = in.Attempts(shared)
			}
		}(g)
	}
	wg.Wait()
	if got := in.Attempts(shared); got != goroutines*perG {
		t.Errorf("shared index: Attempts = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		if got := in.Attempts(1000 + g); got != perG {
			t.Errorf("private index %d: Attempts = %d, want %d", 1000+g, got, perG)
		}
	}
}

// TestStepPanicAttemptInterleaving runs Step concurrently against a
// panic-scheduled index and asserts exactly PanicAttempts of the
// callers panicked: attempt numbers are claimed atomically under the
// injector's lock, so two concurrent callers can never both observe
// attempt 0.
func TestStepPanicAttemptInterleaving(t *testing.T) {
	in := New(Plan{Seed: 11, PanicFrac: 1, PanicAttempts: 3})
	const callers = 24
	var panicked atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(Injected); !ok {
						t.Errorf("recovered %v, want Injected", p)
					}
					panicked.Add(1)
				}
			}()
			in.Step(5)
		}()
	}
	wg.Wait()
	if got := panicked.Load(); got != 3 {
		t.Errorf("%d callers panicked, want exactly PanicAttempts=3", got)
	}
	if got := in.Attempts(5); got != callers {
		t.Errorf("Attempts = %d, want %d", got, callers)
	}
}

// TestDifferentialScheduleAcrossRuns pins the SplitMix64 contract the
// chaos harness depends on: the same seed+plan yields the identical
// injection schedule across independently constructed injectors, for
// every fault kind, regardless of query order — so a rerun of a chaos
// scenario kills and partitions exactly the same connections.
func TestDifferentialScheduleAcrossRuns(t *testing.T) {
	plan := Plan{
		Seed: 97, PanicFrac: 0.03, CorruptFrac: 0.05,
		DropFrac: 0.04, PartitionFrac: 0.02,
		ConnDelayFrac: 0.06, ConnDelay: time.Millisecond,
	}
	const n = 5000
	a, b := New(plan), New(plan)

	// Query b backwards first to prove decisions are order-independent.
	for i := n - 1; i >= 0; i-- {
		b.ShouldDrop(i)
		b.ShouldPartition(i)
	}
	type sched struct {
		name string
		fn   func(*Injector, int) []int
	}
	for _, s := range []sched{
		{"panic", func(in *Injector, n int) []int { return in.PanicIndices(n) }},
		{"corrupt", func(in *Injector, n int) []int { return in.CorruptIndices(n) }},
		{"drop", func(in *Injector, n int) []int { return in.DropIndices(n) }},
		{"partition", func(in *Injector, n int) []int { return in.PartitionIndices(n) }},
	} {
		sa, sb := s.fn(a, n), s.fn(b, n)
		if len(sa) == 0 {
			t.Errorf("%s: schedule selected no indices out of %d", s.name, n)
		}
		if len(sa) != len(sb) {
			t.Fatalf("%s: schedules diverged: %d vs %d indices", s.name, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("%s: schedules diverged at %d: %d vs %d", s.name, i, sa[i], sb[i])
			}
		}
	}
	// The kinds must not alias: a drop schedule is not the partition
	// schedule under a different name.
	da, pa := a.DropIndices(n), a.PartitionIndices(n)
	if len(da) == len(pa) {
		same := true
		for i := range da {
			if da[i] != pa[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("drop and partition schedules are identical — salts alias")
		}
	}
	// ConnDelay is all-or-nothing per index and consistent across runs.
	for i := 0; i < n; i++ {
		da, db := a.ConnDelay(i), b.ConnDelay(i)
		if da != db {
			t.Fatalf("ConnDelay(%d) diverged across runs: %v vs %v", i, da, db)
		}
		if da != 0 && da != time.Millisecond {
			t.Fatalf("ConnDelay(%d) = %v, want 0 or the plan delay", i, da)
		}
	}
}

func TestDelayActuallySleeps(t *testing.T) {
	in := New(Plan{Seed: 1, DelayFrac: 1, Delay: 10 * time.Millisecond})
	start := time.Now()
	in.Step(0)
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("Step with DelayFrac=1 returned after %v, want ≥ 10ms", d)
	}
}
