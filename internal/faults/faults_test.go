package faults

import (
	"testing"
	"time"
)

func TestScheduleIsDeterministic(t *testing.T) {
	a := New(Plan{Seed: 42, PanicFrac: 0.05, CorruptFrac: 0.1})
	b := New(Plan{Seed: 42, PanicFrac: 0.05, CorruptFrac: 0.1})
	const n = 2000
	pa, pb := a.PanicIndices(n), b.PanicIndices(n)
	if len(pa) == 0 {
		t.Fatal("5% panic fraction selected no indices out of 2000")
	}
	if len(pa) != len(pb) {
		t.Fatalf("schedules diverged: %d vs %d panic indices", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("schedules diverged at %d: %d vs %d", i, pa[i], pb[i])
		}
	}
	ca, cb := a.CorruptIndices(n), b.CorruptIndices(n)
	if len(ca) == 0 || len(ca) != len(cb) {
		t.Fatalf("corrupt schedules diverged: %d vs %d", len(ca), len(cb))
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := New(Plan{Seed: 1, PanicFrac: 0.1})
	b := New(Plan{Seed: 2, PanicFrac: 0.1})
	const n = 4000
	pa, pb := a.PanicIndices(n), b.PanicIndices(n)
	same := len(pa) == len(pb)
	if same {
		for i := range pa {
			if pa[i] != pb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical panic schedules")
	}
}

func TestFractionRoughlyHolds(t *testing.T) {
	in := New(Plan{Seed: 7, PanicFrac: 0.05})
	const n = 20000
	got := len(in.PanicIndices(n))
	want := int(0.05 * n)
	if got < want/2 || got > want*2 {
		t.Errorf("PanicFrac 0.05 over %d indices selected %d, want ≈%d", n, got, want)
	}
}

func TestStepPanicsThenSucceeds(t *testing.T) {
	in := New(Plan{Seed: 3, PanicFrac: 1, PanicAttempts: 2})
	for attempt := 0; attempt < 2; attempt++ {
		func() {
			defer func() {
				p := recover()
				inj, ok := p.(Injected)
				if !ok {
					t.Fatalf("attempt %d: recovered %v, want Injected", attempt, p)
				}
				if inj.Index != 9 || inj.Attempt != attempt {
					t.Errorf("attempt %d: got %+v", attempt, inj)
				}
			}()
			in.Step(9)
			t.Fatalf("attempt %d: Step returned instead of panicking", attempt)
		}()
	}
	in.Step(9) // third attempt must succeed
	if got := in.Attempts(9); got != 3 {
		t.Errorf("Attempts(9) = %d, want 3", got)
	}
}

func TestForeverNeverSucceeds(t *testing.T) {
	in := New(Plan{Seed: 3, PanicFrac: 1, PanicAttempts: Forever})
	for attempt := 0; attempt < 5; attempt++ {
		if !in.ShouldPanic(0, attempt) {
			t.Fatalf("Forever plan stopped panicking at attempt %d", attempt)
		}
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := New(Plan{})
	for i := 0; i < 100; i++ {
		in.Step(i) // must not panic
	}
	if got := in.PanicIndices(100); len(got) != 0 {
		t.Errorf("zero plan scheduled panics at %v", got)
	}
	b := []byte{1, 2, 3}
	if got := in.Corrupt(0, b); &got[0] != &b[0] || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Error("zero plan corrupted a result")
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	in := New(Plan{Seed: 5, CorruptFrac: 1})
	orig := []byte{0xAA, 0x55, 0x00, 0xFF}
	got := in.Corrupt(3, append([]byte(nil), orig...))
	diffBits := 0
	for i := range orig {
		d := orig[i] ^ got[i]
		for ; d != 0; d &= d - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Errorf("Corrupt flipped %d bits, want exactly 1", diffBits)
	}
	// Deterministic: same index, same flip.
	again := in.Corrupt(3, append([]byte(nil), orig...))
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("Corrupt is not deterministic per index")
		}
	}
}

func TestDelayActuallySleeps(t *testing.T) {
	in := New(Plan{Seed: 1, DelayFrac: 1, Delay: 10 * time.Millisecond})
	start := time.Now()
	in.Step(0)
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("Step with DelayFrac=1 returned after %v, want ≥ 10ms", d)
	}
}
