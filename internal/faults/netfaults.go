package faults

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a fault-injecting TCP forwarder: it listens on its own
// address and pipes every accepted connection to a backend, consulting
// an Injector (indexed by accept order) to decide per connection
// whether to drop it (close immediately), blackhole it (accept, never
// forward, never reset — a partition), or delay it before forwarding.
//
// The chaos harness puts one Proxy in front of every cluster node so a
// seeded Plan turns into a deterministic schedule of network faults on
// an otherwise healthy loopback ring. On top of the scheduled faults,
// SetPartitioned flips a whole-link partition on and off at runtime —
// the knob the harness uses to partition a specific node at a specific
// point in the script, independent of the per-connection hash schedule.
//
// Connections admitted before a partition began keep flowing (a real
// partition severs new flows first; in-flight TCP lingers until
// timeout); the harness kills them implicitly when the client's
// per-request deadline fires and it reconnects through the proxy.
type Proxy struct {
	backend string
	inj     *Injector
	ln      net.Listener

	partitioned atomic.Bool
	accepted    atomic.Int64 // connection index source
	dropped     atomic.Int64
	blackholed  atomic.Int64

	mu sync.Mutex
	//gclint:guardedby mu
	closed bool
	//gclint:guardedby mu
	parked []net.Conn // blackholed conns, held open until Close
	//gclint:guardedby mu
	live map[net.Conn]struct{} // forwarding conns, torn down on Close
	wg   sync.WaitGroup
}

// NewProxy starts a proxy on addr (use "127.0.0.1:0" for an ephemeral
// port) forwarding to backend. inj may be nil, which injects nothing
// until SetPartitioned is used.
func NewProxy(addr, backend string, inj *Injector) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{backend: backend, inj: inj, ln: ln, live: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what clients should dial
// instead of the backend.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetPartitioned severs (or heals) the whole link: while set, every new
// connection is blackholed regardless of the injector schedule.
func (p *Proxy) SetPartitioned(v bool) { p.partitioned.Store(v) }

// Partitioned reports whether the whole-link partition is active.
func (p *Proxy) Partitioned() bool { return p.partitioned.Load() }

// Dropped returns how many connections were closed on arrival.
func (p *Proxy) Dropped() int64 { return p.dropped.Load() }

// Blackholed returns how many connections were accepted and parked.
func (p *Proxy) Blackholed() int64 { return p.blackholed.Load() }

// Accepted returns how many connections have arrived.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// Close stops accepting, resets parked connections, and waits for the
// forwarding goroutines to finish.
func (p *Proxy) Close() error {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	parked := p.parked
	p.parked = nil
	live := make([]net.Conn, 0, len(p.live))
	for c := range p.live {
		live = append(live, c)
	}
	p.mu.Unlock()
	if already {
		return nil
	}
	err := p.ln.Close()
	for _, c := range parked {
		c.Close()
	}
	for _, c := range live {
		c.Close()
	}
	p.wg.Wait()
	return err
}

// track registers a forwarding connection for teardown on Close; it
// reports false when the proxy is already closed.
func (p *Proxy) track(conn net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.live[conn] = struct{}{}
	return true
}

// untrack removes a finished forwarding connection.
func (p *Proxy) untrack(conn net.Conn) {
	p.mu.Lock()
	delete(p.live, conn)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		i := int(p.accepted.Add(1) - 1)
		switch {
		case p.inj != nil && p.inj.ShouldDrop(i):
			p.dropped.Add(1)
			conn.Close()
		case p.partitioned.Load() || (p.inj != nil && p.inj.ShouldPartition(i)):
			p.blackholed.Add(1)
			if !p.park(conn) {
				conn.Close() // proxy already closed
			}
		default:
			p.wg.Add(1)
			go p.forward(conn, i)
		}
	}
}

// park holds a blackholed connection open until Close; it reports false
// when the proxy is already closed.
func (p *Proxy) park(conn net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.parked = append(p.parked, conn)
	return true
}

// forward pipes conn to a fresh backend connection, applying the
// scheduled connection delay first. Either side closing tears down
// both.
func (p *Proxy) forward(conn net.Conn, i int) {
	defer p.wg.Done()
	defer conn.Close()
	if !p.track(conn) {
		return
	}
	defer p.untrack(conn)
	if p.inj != nil {
		if d := p.inj.ConnDelay(i); d > 0 {
			time.Sleep(d)
		}
	}
	back, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer back.Close()
	if !p.track(back) {
		return
	}
	defer p.untrack(back)
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(back, conn) //nolint:errcheck // teardown path
		if tc, ok := back.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		io.Copy(conn, back) //nolint:errcheck // teardown path
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}
