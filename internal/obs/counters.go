package obs

import (
	"sync"
	"sync/atomic"
)

// Counters tallies events per kind with atomic counters — the cheapest
// attachable probe (one atomic add per event, no locks, no allocation),
// safe to share across shards and goroutines.
type Counters struct {
	n [numKinds]atomic.Int64
	// itemsLoaded accumulates EvBlockLoad.N: total items brought in by
	// unit-cost loads (≥ block loads; the surplus is free siblings).
	itemsLoaded atomic.Int64
}

var _ Probe = (*Counters)(nil)

// Observe implements Probe.
func (c *Counters) Observe(e Event) {
	c.n[e.Kind].Add(1)
	if e.Kind == EvBlockLoad {
		c.itemsLoaded.Add(int64(e.N))
	}
}

// Get returns the count of events of kind k.
func (c *Counters) Get(k Kind) int64 { return c.n[k].Load() }

// ItemsLoaded returns the total items brought in by block loads.
func (c *Counters) ItemsLoaded() int64 { return c.itemsLoaded.Load() }

// PolicyHits returns hits in the policy view (all layers).
func (c *Counters) PolicyHits() int64 {
	return c.n[EvHit].Load() + c.n[EvHitItemLayer].Load() + c.n[EvHitBlockLayer].Load()
}

// PolicyMisses returns misses in the policy view: every miss costs
// exactly one block load (Definition 1), so EvBlockLoad counts misses.
func (c *Counters) PolicyMisses() int64 { return c.n[EvBlockLoad].Load() }

// PolicyAccesses returns requests served in the policy view.
func (c *Counters) PolicyAccesses() int64 { return c.PolicyHits() + c.PolicyMisses() }

// RecorderAccesses returns requests served in the recorder view.
func (c *Counters) RecorderAccesses() int64 {
	return c.n[EvHitTemporal].Load() + c.n[EvHitSpatial].Load() + c.n[EvMiss].Load()
}

// Snapshot returns a consistent-enough copy of all per-kind counts
// (each counter is read atomically; the vector is not a global
// snapshot, which is fine for monitoring).
func (c *Counters) Snapshot() [NumKinds]int64 {
	var out [NumKinds]int64
	for i := range out {
		out[i] = c.n[i].Load()
	}
	return out
}

// Windowed tracks per-kind event counts per window of W policy-view (or
// recorder-view, whichever arrives) request events, retaining the last R
// completed windows in a ring — the "what happened recently" complement
// to the monotone Counters. Memory is bounded by R windows.
type Windowed struct {
	mu     sync.Mutex
	window int64 // immutable after construction
	//gclint:guardedby mu
	current [NumKinds]int64
	//gclint:guardedby mu
	width int64
	//gclint:guardedby mu
	ring [][NumKinds]int64
	//gclint:guardedby mu
	next int
	//gclint:guardedby mu
	filled int
	// seenRecorder: once any recorder-view event arrives, only the
	// recorder clock advances windows, so a fully probed run (policy and
	// recorder views both attached) counts each access once.
	//gclint:guardedby mu
	seenRecorder bool
	//gclint:guardedby mu
	total int64
}

var _ Probe = (*Windowed)(nil)

// NewWindowed returns a Windowed probe with the given window width (in
// requests) retaining the last rings completed windows. Width and rings
// are clamped to ≥ 1 and ≤ 1<<20.
func NewWindowed(window, rings int) *Windowed {
	window = clamp(window, 1, 1<<20)
	rings = clamp(rings, 1, 1<<20)
	return &Windowed{window: int64(window), ring: make([][NumKinds]int64, rings)}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Observe implements Probe.
func (w *Windowed) Observe(e Event) {
	w.mu.Lock()
	w.current[e.Kind]++
	advance := false
	if e.Kind.IsRecorderRequest() {
		w.seenRecorder = true
		advance = true
	} else if e.Kind.IsPolicyRequest() && !w.seenRecorder {
		advance = true
	}
	if advance {
		w.width++
		w.total++
		if w.width >= w.window {
			w.ring[w.next] = w.current
			w.next = (w.next + 1) % len(w.ring)
			if w.filled < len(w.ring) {
				w.filled++
			}
			w.current = [NumKinds]int64{}
			w.width = 0
		}
	}
	w.mu.Unlock()
}

// Window returns the window width in requests.
func (w *Windowed) Window() int { return int(w.window) }

// Last returns the per-kind counts of the most recently completed
// window, and false if no window has completed yet.
func (w *Windowed) Last() ([NumKinds]int64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.filled == 0 {
		return [NumKinds]int64{}, false
	}
	idx := (w.next - 1 + len(w.ring)) % len(w.ring)
	return w.ring[idx], true
}

// History returns the completed windows, oldest first.
func (w *Windowed) History() [][NumKinds]int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([][NumKinds]int64, 0, w.filled)
	start := (w.next - w.filled + len(w.ring)) % len(w.ring)
	for i := 0; i < w.filled; i++ {
		out = append(out, w.ring[(start+i)%len(w.ring)])
	}
	return out
}
