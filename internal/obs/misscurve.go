package obs

import (
	"fmt"
	"io"
	"sync"

	"gccache/internal/render"
)

// MissCurvePoint is one sample of the running miss curve: the miss
// ratio over one window of requests ending at request Seq. Partial
// marks the trailing in-progress window flushed by Snapshot — its
// ratio is over Width requests, not the full window.
type MissCurvePoint struct {
	Seq    int64
	Misses int64
	Ratio  float64
	// Width is the number of requests the point covers: the window
	// width for completed points, fewer for the trailing partial one.
	Width int64
	// Partial is set on the trailing in-progress window (Snapshot
	// only); completed ring points always have it false.
	Partial bool
}

// MissCurve is a probe that samples the miss ratio per window of W
// requests into a bounded ring — the time-resolved miss curve that
// makes phase changes (e.g. a working set outgrowing the item layer)
// visible while a replay is still running. Recorder view. Memory is
// bounded by the ring size; steady-state observation does not allocate.
type MissCurve struct {
	mu     sync.Mutex
	window int64 // immutable after construction
	//gclint:guardedby mu
	width int64
	//gclint:guardedby mu
	misses int64
	//gclint:guardedby mu
	ring []MissCurvePoint
	//gclint:guardedby mu
	next int
	//gclint:guardedby mu
	filled int
	//gclint:guardedby mu
	seq int64
}

var _ Probe = (*MissCurve)(nil)

// NewMissCurve returns a miss-curve sampler with the given window width
// in requests, retaining the last points samples (both clamped to
// [1, 1<<20]).
func NewMissCurve(window, points int) *MissCurve {
	return &MissCurve{
		window: int64(clamp(window, 1, 1<<20)),
		ring:   make([]MissCurvePoint, clamp(points, 1, 1<<20)),
	}
}

// Observe implements Probe.
func (m *MissCurve) Observe(e Event) {
	if !e.Kind.IsRecorderRequest() {
		return
	}
	m.mu.Lock()
	m.seq++
	m.width++
	if e.Kind == EvMiss {
		m.misses++
	}
	if m.width >= m.window {
		m.ring[m.next] = MissCurvePoint{
			Seq:    m.seq,
			Misses: m.misses,
			Ratio:  float64(m.misses) / float64(m.width),
			Width:  m.width,
		}
		m.next = (m.next + 1) % len(m.ring)
		if m.filled < len(m.ring) {
			m.filled++
		}
		m.width, m.misses = 0, 0
	}
	m.mu.Unlock()
}

// Reset clears the sampled ring and the in-progress window, returning
// the curve to its initial state.
func (m *MissCurve) Reset() {
	m.mu.Lock()
	m.width, m.misses, m.seq = 0, 0, 0
	m.next, m.filled = 0, 0
	m.mu.Unlock()
}

// Window returns the window width in requests.
func (m *MissCurve) Window() int { return int(m.window) }

// Points returns the completed-window samples, oldest first. The
// in-progress window is excluded; use Snapshot to include it.
func (m *MissCurve) Points() []MissCurvePoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.appendCompleted(make([]MissCurvePoint, 0, m.filled))
}

// Snapshot returns the completed-window samples followed by the
// trailing in-progress window flushed as a final point with Partial
// set. A run shorter than one window therefore still reports what it
// saw instead of an empty curve, and the tail of any run is never
// silently dropped.
func (m *MissCurve) Snapshot() []MissCurvePoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.appendCompleted(make([]MissCurvePoint, 0, m.filled+1))
	if m.width > 0 {
		out = append(out, MissCurvePoint{
			Seq:     m.seq,
			Misses:  m.misses,
			Ratio:   float64(m.misses) / float64(m.width),
			Width:   m.width,
			Partial: true,
		})
	}
	return out
}

// appendCompleted appends the ring's points oldest-first. Callers hold mu.
func (m *MissCurve) appendCompleted(out []MissCurvePoint) []MissCurvePoint {
	start := (m.next - m.filled + len(m.ring)) % len(m.ring) //gclint:guardok caller holds mu; documented on the method
	for i := 0; i < m.filled; i++ {                          //gclint:guardok caller holds mu
		out = append(out, m.ring[(start+i)%len(m.ring)]) //gclint:guardok caller holds mu
	}
	return out
}

// Table renders the sampled points, including the trailing partial
// window when one is in progress.
func (m *MissCurve) Table() *render.Table {
	t := &render.Table{
		Title:   "miss curve (per-window miss ratio)",
		Headers: []string{"request", "window misses", "miss ratio", "window"},
	}
	for _, p := range m.Snapshot() {
		width := fmt.Sprintf("%d", p.Width)
		if p.Partial {
			width += " (partial)"
		}
		t.AddRow(p.Seq, p.Misses, p.Ratio, width)
	}
	return t
}

// WriteTo renders the sampled points as aligned text.
func (m *MissCurve) WriteTo(w io.Writer) (int64, error) { return 0, m.Table().WriteText(w) }

// WriteCSV renders the sampled points as CSV.
func (m *MissCurve) WriteCSV(w io.Writer) error { return m.Table().WriteCSV(w) }
