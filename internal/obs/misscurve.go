package obs

import (
	"io"
	"sync"

	"gccache/internal/render"
)

// MissCurvePoint is one sample of the running miss curve: the miss
// ratio over one window of requests ending at request Seq.
type MissCurvePoint struct {
	Seq    int64
	Misses int64
	Ratio  float64
}

// MissCurve is a probe that samples the miss ratio per window of W
// requests into a bounded ring — the time-resolved miss curve that
// makes phase changes (e.g. a working set outgrowing the item layer)
// visible while a replay is still running. Recorder view. Memory is
// bounded by the ring size; steady-state observation does not allocate.
type MissCurve struct {
	mu     sync.Mutex
	window int64 // immutable after construction
	//gclint:guardedby mu
	width int64
	//gclint:guardedby mu
	misses int64
	//gclint:guardedby mu
	ring []MissCurvePoint
	//gclint:guardedby mu
	next int
	//gclint:guardedby mu
	filled int
	//gclint:guardedby mu
	seq int64
}

var _ Probe = (*MissCurve)(nil)

// NewMissCurve returns a miss-curve sampler with the given window width
// in requests, retaining the last points samples (both clamped to
// [1, 1<<20]).
func NewMissCurve(window, points int) *MissCurve {
	return &MissCurve{
		window: int64(clamp(window, 1, 1<<20)),
		ring:   make([]MissCurvePoint, clamp(points, 1, 1<<20)),
	}
}

// Observe implements Probe.
func (m *MissCurve) Observe(e Event) {
	if !e.Kind.IsRecorderRequest() {
		return
	}
	m.mu.Lock()
	m.seq++
	m.width++
	if e.Kind == EvMiss {
		m.misses++
	}
	if m.width >= m.window {
		m.ring[m.next] = MissCurvePoint{
			Seq:    m.seq,
			Misses: m.misses,
			Ratio:  float64(m.misses) / float64(m.width),
		}
		m.next = (m.next + 1) % len(m.ring)
		if m.filled < len(m.ring) {
			m.filled++
		}
		m.width, m.misses = 0, 0
	}
	m.mu.Unlock()
}

// Window returns the window width in requests.
func (m *MissCurve) Window() int { return int(m.window) }

// Points returns the sampled points, oldest first.
func (m *MissCurve) Points() []MissCurvePoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MissCurvePoint, 0, m.filled)
	start := (m.next - m.filled + len(m.ring)) % len(m.ring)
	for i := 0; i < m.filled; i++ {
		out = append(out, m.ring[(start+i)%len(m.ring)])
	}
	return out
}

// Table renders the sampled points.
func (m *MissCurve) Table() *render.Table {
	t := &render.Table{
		Title:   "miss curve (per-window miss ratio)",
		Headers: []string{"request", "window misses", "miss ratio"},
	}
	for _, p := range m.Points() {
		t.AddRow(p.Seq, p.Misses, p.Ratio)
	}
	return t
}

// WriteTo renders the sampled points as aligned text.
func (m *MissCurve) WriteTo(w io.Writer) (int64, error) { return 0, m.Table().WriteText(w) }

// WriteCSV renders the sampled points as CSV.
func (m *MissCurve) WriteCSV(w io.Writer) error { return m.Table().WriteCSV(w) }
