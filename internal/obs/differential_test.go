package obs_test

// Differential tests for the no-interference rule: attaching any probe
// must leave policy decisions byte-identical. Each dense policy is run
// twice over the same randomized trace — once bare, once with the full
// probe suite plus a probed recorder — and every per-access decision
// and the final recorder totals are compared.

import (
	"math/rand"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/policy"
)

const diffOps = 20000

// diffTrace mixes sequential block scans with random point accesses so
// every event kind fires: spatial hits, evictions, phase resets.
func diffTrace(rng *rand.Rand, universe, n, blockSize int) []model.Item {
	tr := make([]model.Item, 0, n)
	for len(tr) < n {
		if rng.Intn(3) == 0 {
			blk := rng.Intn(universe / blockSize)
			for j := 0; j < blockSize && len(tr) < n; j++ {
				tr = append(tr, model.Item(blk*blockSize+j))
			}
		} else {
			tr = append(tr, model.Item(rng.Intn(universe)))
		}
	}
	return tr
}

func sameItems(a, b []model.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runDifferential drives bare and probed through tr in lockstep,
// failing on the first diverging Access and on any recorder-total
// mismatch at the end.
func runDifferential(t *testing.T, bare, probed cachesim.Cache, tr []model.Item, universe int) {
	t.Helper()
	suite, err := obs.NewSuite("all", universe)
	if err != nil {
		t.Fatal(err)
	}
	in, ok := probed.(cachesim.Instrumented)
	if !ok {
		t.Fatalf("%s does not implement cachesim.Instrumented", probed.Name())
	}
	in.SetProbe(suite)

	recBare := cachesim.NewRecorderBounded(bare.Name(), universe)
	recProbed := cachesim.NewRecorderBounded(probed.Name(), universe)
	recProbed.SetProbe(suite)

	for i, it := range tr {
		a := bare.Access(it)
		b := probed.Access(it)
		if a.Hit != b.Hit || !sameItems(a.Loaded, b.Loaded) || !sameItems(a.Evicted, b.Evicted) {
			t.Fatalf("access %d (item %d) diverged: bare %+v probed %+v", i, it, a, b)
		}
		recBare.Observe(it, a)
		recProbed.Observe(it, b)
	}
	sb, sp := recBare.Stats(), recProbed.Stats()
	sb.Policy, sp.Policy = "", ""
	if sb != sp {
		t.Fatalf("recorder totals diverged:\nbare   %+v\nprobed %+v", sb, sp)
	}

	// Cross-check the event stream against the ground-truth recorder:
	// both views must have counted every access exactly once, and the
	// unit-cost rule (one block load per miss) must hold.
	if got := suite.Counters.RecorderAccesses(); got != int64(len(tr)) {
		t.Errorf("recorder view counted %d accesses, want %d", got, len(tr))
	}
	if got := suite.Counters.PolicyAccesses(); got != int64(len(tr)) {
		t.Errorf("policy view counted %d accesses, want %d", got, len(tr))
	}
	if loads, misses := suite.Counters.Get(obs.EvBlockLoad), int64(sp.Misses); loads != misses {
		t.Errorf("block loads %d != recorder misses %d (Definition 1)", loads, misses)
	}
}

func TestProbeDifferentialItemLRU(t *testing.T) {
	const universe = 1 << 10
	rng := rand.New(rand.NewSource(41))
	tr := diffTrace(rng, universe, diffOps, 8)
	runDifferential(t, policy.NewItemLRUBounded(128, universe),
		policy.NewItemLRUBounded(128, universe), tr, universe)
}

func TestProbeDifferentialBlockLRU(t *testing.T) {
	const universe = 1 << 10
	g := model.NewFixed(8)
	rng := rand.New(rand.NewSource(42))
	tr := diffTrace(rng, universe, diffOps, 8)
	runDifferential(t, policy.NewBlockLRUBounded(128, g, universe),
		policy.NewBlockLRUBounded(128, g, universe), tr, universe)
}

func TestProbeDifferentialIBLP(t *testing.T) {
	const universe = 1 << 10
	g := model.NewFixed(8)
	rng := rand.New(rand.NewSource(43))
	tr := diffTrace(rng, universe, diffOps, 8)
	runDifferential(t, core.NewIBLPEvenSplitBounded(128, g, universe),
		core.NewIBLPEvenSplitBounded(128, g, universe), tr, universe)
}

func TestProbeDifferentialGCM(t *testing.T) {
	const universe = 1 << 10
	g := model.NewFixed(8)
	rng := rand.New(rand.NewSource(44))
	tr := diffTrace(rng, universe, diffOps, 8)
	runDifferential(t, core.NewGCMBounded(128, g, 7, universe),
		core.NewGCMBounded(128, g, 7, universe), tr, universe)
}

func TestProbeDifferentialAdaptiveIBLP(t *testing.T) {
	const universe = 1 << 10
	g := model.NewFixed(8)
	rng := rand.New(rand.NewSource(45))
	tr := diffTrace(rng, universe, diffOps, 8)
	runDifferential(t, core.NewAdaptiveIBLP(128, g),
		core.NewAdaptiveIBLP(128, g), tr, universe)
}
