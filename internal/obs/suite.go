package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"gccache/internal/render"
)

// Suite bundles the ready-made probes behind one Probe, built from the
// comma-separated spec the cmd tools expose as -probe:
//
//	counters              per-kind atomic event counters (always on)
//	window=W              per-kind counts over the last windows of W requests
//	events=N              ring-buffer log of the last N events
//	reuse                 reuse-distance histogram
//	gaps                  inter-miss-gap histogram
//	residency             residency-time histogram
//	misscurve=W           per-window miss-ratio samples
//	all                   everything, with default sizes
//
// Counters are always enabled; the other sections only when named.
// A Suite is safe for concurrent use (each member probe synchronizes
// internally), so one Suite can be attached across every shard of a
// concurrent.Sharded.
type Suite struct {
	Counters  *Counters
	Windowed  *Windowed
	Events    *EventLog
	Reuse     *ReuseDist
	Gaps      *InterMissGap
	Residency *Residency
	Curve     *MissCurve

	probes []Probe
}

var _ Probe = (*Suite)(nil)

// Default sizes for spec entries given without a value.
const (
	defaultEventLog  = 64
	defaultWindow    = 1 << 12
	defaultCurvePts  = 256
	defaultRingCount = 16
)

// NewSuite parses spec (see Suite) and returns the bundled probe.
// universe > 0 puts the reuse/residency trackers on their flat
// allocation-free tables for item IDs in [0, universe). An empty spec
// yields a counters-only suite.
func NewSuite(spec string, universe int) (*Suite, error) {
	s := &Suite{Counters: &Counters{}}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, hasVal := strings.Cut(field, "=")
		key = strings.TrimSpace(strings.ToLower(key))
		n := 0
		if hasVal {
			var err error
			n, err = strconv.Atoi(strings.TrimSpace(val))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("obs: bad probe spec value %q (want positive integer)", field)
			}
		}
		switch key {
		case "counters":
			// always on
		case "window":
			if !hasVal {
				n = defaultWindow
			}
			s.Windowed = NewWindowed(n, defaultRingCount)
		case "events":
			if !hasVal {
				n = defaultEventLog
			}
			s.Events = NewEventLog(n)
		case "reuse":
			s.Reuse = NewReuseDist(universe)
		case "gaps":
			s.Gaps = NewInterMissGap()
		case "residency":
			s.Residency = NewResidency(universe)
		case "misscurve":
			if !hasVal {
				n = defaultWindow
			}
			s.Curve = NewMissCurve(n, defaultCurvePts)
		case "all":
			s.Windowed = NewWindowed(defaultWindow, defaultRingCount)
			s.Events = NewEventLog(defaultEventLog)
			s.Reuse = NewReuseDist(universe)
			s.Gaps = NewInterMissGap()
			s.Residency = NewResidency(universe)
			s.Curve = NewMissCurve(defaultWindow, defaultCurvePts)
		default:
			return nil, fmt.Errorf("obs: unknown probe %q (want counters, window=W, events=N, reuse, gaps, residency, misscurve=W, or all)", key)
		}
	}
	s.probes = append(s.probes, s.Counters)
	if s.Windowed != nil {
		s.probes = append(s.probes, s.Windowed)
	}
	if s.Events != nil {
		s.probes = append(s.probes, s.Events)
	}
	if s.Reuse != nil {
		s.probes = append(s.probes, s.Reuse)
	}
	if s.Gaps != nil {
		s.probes = append(s.probes, s.Gaps)
	}
	if s.Residency != nil {
		s.probes = append(s.probes, s.Residency)
	}
	if s.Curve != nil {
		s.probes = append(s.probes, s.Curve)
	}
	return s, nil
}

// SpecHelp describes the -probe grammar for command --help output.
const SpecHelp = `probe spec (comma separated): counters, window=W, events=N, reuse, gaps, residency, misscurve=W, all`

// Observe implements Probe, fanning the event to every enabled member.
func (s *Suite) Observe(e Event) {
	for _, p := range s.probes {
		p.Observe(e)
	}
}

// CountersTable renders the per-kind totals (and, if a window probe is
// enabled, the counts of the last completed window).
func (s *Suite) CountersTable() *render.Table {
	t := &render.Table{Title: "event counters", Headers: []string{"event", "total"}}
	var last [NumKinds]int64
	haveLast := false
	if s.Windowed != nil {
		if l, ok := s.Windowed.Last(); ok {
			last, haveLast = l, true
			t.Headers = append(t.Headers, fmt.Sprintf("last %d-request window", s.Windowed.Window()))
		}
	}
	snap := s.Counters.Snapshot()
	for k := 0; k < NumKinds; k++ {
		if snap[k] == 0 && (!haveLast || last[k] == 0) {
			continue
		}
		if haveLast {
			t.AddRow(Kind(k).String(), snap[k], last[k])
		} else {
			t.AddRow(Kind(k).String(), snap[k])
		}
	}
	if haveLast {
		t.AddRow("items-loaded", s.Counters.ItemsLoaded(), "-")
	} else {
		t.AddRow("items-loaded", s.Counters.ItemsLoaded())
	}
	return t
}

// WriteTo renders every enabled section as aligned text — the dump
// behind gcsim -probe and the gcserve dashboard.
func (s *Suite) WriteTo(w io.Writer) (int64, error) {
	if err := s.CountersTable().WriteText(w); err != nil {
		return 0, err
	}
	for _, h := range []*Histogram{s.histOrNil(s.Reuse), s.gapsOrNil(), s.resOrNil()} {
		if h == nil {
			continue
		}
		fmt.Fprintln(w)
		if _, err := h.WriteTo(w); err != nil {
			return 0, err
		}
	}
	if s.Curve != nil {
		fmt.Fprintln(w)
		if _, err := s.Curve.WriteTo(w); err != nil {
			return 0, err
		}
	}
	if s.Events != nil {
		fmt.Fprintf(w, "\n== recent events (last %d of %d) ==\n", len(s.Events.Snapshot()), s.Events.Seq())
		if _, err := s.Events.WriteTo(w); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

func (s *Suite) histOrNil(r *ReuseDist) *Histogram {
	if r == nil {
		return nil
	}
	return r.Hist()
}

func (s *Suite) gapsOrNil() *Histogram {
	if s.Gaps == nil {
		return nil
	}
	return s.Gaps.Hist()
}

func (s *Suite) resOrNil() *Histogram {
	if s.Residency == nil {
		return nil
	}
	return s.Residency.Hist()
}
