package obs

import (
	"fmt"
	"io"
	"sync"
)

// LoggedEvent is an Event stamped with its global sequence number.
type LoggedEvent struct {
	Seq int64
	Event
}

// EventLog is a probe that retains the most recent events in a
// fixed-size ring — bounded memory no matter how long the run, and no
// allocation per event once constructed. Safe for concurrent use.
type EventLog struct {
	mu sync.Mutex
	//gclint:guardedby mu
	ring []LoggedEvent
	//gclint:guardedby mu
	next int
	//gclint:guardedby mu
	filled int
	//gclint:guardedby mu
	seq int64
}

var _ Probe = (*EventLog)(nil)

// NewEventLog returns an event log retaining the last n events
// (clamped to [1, 1<<20]).
func NewEventLog(n int) *EventLog {
	return &EventLog{ring: make([]LoggedEvent, clamp(n, 1, 1<<20))}
}

// Observe implements Probe.
func (l *EventLog) Observe(e Event) {
	l.mu.Lock()
	l.seq++
	l.ring[l.next] = LoggedEvent{Seq: l.seq, Event: e}
	l.next = (l.next + 1) % len(l.ring)
	if l.filled < len(l.ring) {
		l.filled++
	}
	l.mu.Unlock()
}

// Seq returns the total number of events observed.
func (l *EventLog) Seq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Snapshot returns the retained events, oldest first.
func (l *EventLog) Snapshot() []LoggedEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LoggedEvent, 0, l.filled)
	start := (l.next - l.filled + len(l.ring)) % len(l.ring)
	for i := 0; i < l.filled; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// WriteTo dumps the retained events as one line each:
//
//	seq=1042 kind=block-load item=513 block=64 n=8
//
// Fields that are zero for the kind are still printed; the format is
// stable for tooling (EXPERIMENTS.md's event-log appendix parses it).
func (l *EventLog) WriteTo(w io.Writer) (int64, error) {
	var written int64
	for _, e := range l.Snapshot() {
		n, err := fmt.Fprintf(w, "seq=%d kind=%s item=%d block=%d n=%d\n",
			e.Seq, e.Kind, e.Item, e.Block, e.N)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
