package obs

import (
	"strings"
	"testing"

	"gccache/internal/model"
)

func TestProbeKindStrings(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
	policy, recorder := 0, 0
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.IsPolicyRequest() {
			policy++
		}
		if k.IsRecorderRequest() {
			recorder++
		}
		if k.IsPolicyRequest() && k.IsRecorderRequest() {
			t.Errorf("kind %v is in both request views", k)
		}
	}
	if policy != 4 || recorder != 3 {
		t.Errorf("request-view kinds: policy %d (want 4), recorder %d (want 3)", policy, recorder)
	}
}

func TestProbeCounters(t *testing.T) {
	var c Counters
	c.Observe(Event{Kind: EvHit})
	c.Observe(Event{Kind: EvHitItemLayer})
	c.Observe(Event{Kind: EvHitBlockLayer})
	c.Observe(Event{Kind: EvBlockLoad, N: 8})
	c.Observe(Event{Kind: EvBlockLoad, N: 3})
	if got := c.PolicyHits(); got != 3 {
		t.Errorf("PolicyHits = %d, want 3", got)
	}
	if got := c.PolicyMisses(); got != 2 {
		t.Errorf("PolicyMisses = %d, want 2", got)
	}
	if got := c.PolicyAccesses(); got != 5 {
		t.Errorf("PolicyAccesses = %d, want 5", got)
	}
	if got := c.ItemsLoaded(); got != 11 {
		t.Errorf("ItemsLoaded = %d, want 11", got)
	}
	snap := c.Snapshot()
	if snap[EvHit] != 1 || snap[EvBlockLoad] != 2 {
		t.Errorf("snapshot mismatch: %v", snap)
	}
}

func TestProbeWindowedAdvance(t *testing.T) {
	w := NewWindowed(4, 2)
	for i := 0; i < 8; i++ {
		w.Observe(Event{Kind: EvHit})
	}
	last, ok := w.Last()
	if !ok || last[EvHit] != 4 {
		t.Fatalf("Last = %v, %v; want 4 hits", last[EvHit], ok)
	}
	if got := len(w.History()); got != 2 {
		t.Errorf("History has %d windows, want 2", got)
	}
}

// TestProbeWindowedBothViews proves the double-count fix: with policy
// and recorder views both attached, windows advance on the recorder
// clock only, so each access is counted once per window.
func TestProbeWindowedBothViews(t *testing.T) {
	w := NewWindowed(4, 4)
	// One access = one policy-view hit + one recorder-view hit.
	// First access arrives policy-first (advances once, before the
	// recorder view is detected), after which only EvHitTemporal ticks.
	for i := 0; i < 9; i++ {
		w.Observe(Event{Kind: EvHit})
		w.Observe(Event{Kind: EvHitTemporal})
	}
	last, ok := w.Last()
	if !ok {
		t.Fatal("no completed window")
	}
	// A full window spans 4 accesses, so it holds 4 events of each view.
	if last[EvHit] != 4 || last[EvHitTemporal] != 4 {
		t.Errorf("window counts hit=%d temporal=%d, want 4 and 4", last[EvHit], last[EvHitTemporal])
	}
}

func TestProbeHistogramPercentiles(t *testing.T) {
	h := NewHistogram("test", "requests")
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if got := h.Mean(); got != 50.5 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
	// p50 of 1..100 is 50, whose bucket [32,64) reports its lower bound:
	// an under-estimate by at most 2× (the documented resolution).
	if got := h.Percentile(0.5); got != 32 {
		t.Errorf("p50 = %d, want bucket lower bound 32", got)
	}
	if got := h.Percentile(1); got != 64 {
		t.Errorf("p100 = %d, want bucket lower bound 64", got)
	}
	h.Record(-5) // clamps to 0
	if got := h.Percentile(0); got != 0 {
		t.Errorf("p0 after zero sample = %d, want 0", got)
	}
}

func TestProbeEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	for i := 1; i <= 6; i++ {
		l.Observe(Event{Kind: EvLoad, Item: model.Item(100 + i)})
	}
	if got := l.Seq(); got != 6 {
		t.Fatalf("Seq = %d, want 6", got)
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot has %d events, want 4", len(snap))
	}
	if snap[0].Seq != 3 || snap[3].Seq != 6 {
		t.Errorf("ring kept seq %d..%d, want 3..6", snap[0].Seq, snap[3].Seq)
	}
	var sb strings.Builder
	if _, err := l.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "seq=6 kind=load item=106 block=0 n=0") {
		t.Errorf("WriteTo output unexpected:\n%s", sb.String())
	}
}

func TestProbeMissCurve(t *testing.T) {
	m := NewMissCurve(10, 8)
	for i := 0; i < 100; i++ {
		k := EvHitTemporal
		if i%4 == 0 {
			k = EvMiss
		}
		m.Observe(Event{Kind: k})
		m.Observe(Event{Kind: EvLoad}) // non-request events must not tick
	}
	pts := m.Points()
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	for _, p := range pts {
		if p.Ratio < 0.2 || p.Ratio > 0.3 {
			t.Errorf("window at seq %d has ratio %v, want ~0.25", p.Seq, p.Ratio)
		}
	}
}

func TestProbeReuseDistDenseMatchesMap(t *testing.T) {
	seqs := []model.Item{1, 2, 1, 3, 2, 1, 1, 9, 3}
	dense := NewReuseDist(16)
	generic := NewReuseDist(0)
	for _, it := range seqs {
		dense.Observe(Event{Kind: EvMiss, Item: it})
		generic.Note(it)
	}
	if d, g := dense.ColdCount(), generic.ColdCount(); d != g || d != 4 {
		t.Errorf("cold counts dense=%d generic=%d, want 4", d, g)
	}
	if d, g := dense.Hist().Count(), generic.Hist().Count(); d != g || d != 5 {
		t.Errorf("sample counts dense=%d generic=%d, want 5", d, g)
	}
	if d, g := dense.Hist().Mean(), generic.Hist().Mean(); d != g {
		t.Errorf("means diverge: dense=%v generic=%v", d, g)
	}
}

func TestProbeResidency(t *testing.T) {
	r := NewResidency(16)
	r.Observe(Event{Kind: EvBlockLoad, Item: 1}) // request 1
	r.Observe(Event{Kind: EvLoad, Item: 1})
	r.Observe(Event{Kind: EvHit, Item: 1}) // request 2
	r.Observe(Event{Kind: EvHit, Item: 1}) // request 3
	r.Observe(Event{Kind: EvEvict, Item: 1})
	if got := r.Hist().Count(); got != 1 {
		t.Fatalf("got %d residency samples, want 1", got)
	}
	// Loaded at request 1, evicted after request 3: resident 2 requests.
	if got := r.Hist().Mean(); got != 2 {
		t.Errorf("residency = %v requests, want 2", got)
	}
	// Evicting a never-loaded item must not record.
	r.Observe(Event{Kind: EvEvict, Item: 9})
	if got := r.Hist().Count(); got != 1 {
		t.Errorf("phantom eviction recorded a sample")
	}
}

func TestProbeSuiteSpec(t *testing.T) {
	s, err := NewSuite("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters == nil || s.Events != nil || s.Reuse != nil {
		t.Error("empty spec should be counters-only")
	}
	s, err = NewSuite("all", 64)
	if err != nil {
		t.Fatal(err)
	}
	if s.Windowed == nil || s.Events == nil || s.Reuse == nil ||
		s.Gaps == nil || s.Residency == nil || s.Curve == nil {
		t.Error("spec 'all' should enable every probe")
	}
	s, err = NewSuite("events=8, misscurve=100", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Events == nil || s.Curve == nil || s.Curve.Window() != 100 {
		t.Error("valued spec entries not honored")
	}
	for _, bad := range []string{"bogus", "events=x", "window=-1"} {
		if _, err := NewSuite(bad, 0); err == nil {
			t.Errorf("spec %q should be rejected", bad)
		}
	}
}

func TestProbeSuiteWriteTo(t *testing.T) {
	s, err := NewSuite("all", 64)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(Event{Kind: EvMiss, Item: 3})
	s.Observe(Event{Kind: EvBlockLoad, Item: 3, N: 8})
	s.Observe(Event{Kind: EvHitSpatial, Item: 4})
	var sb strings.Builder
	if _, err := s.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"event counters", "block-load", "reuse distance", "inter-miss gap", "recent events"} {
		if !strings.Contains(out, want) {
			t.Errorf("suite dump missing %q:\n%s", want, out)
		}
	}
}
