// Package obs is the observability layer of the simulator: a typed
// event stream (Probe) emitted by every instrumented policy and by the
// cachesim.Recorder, plus ready-made consumers — atomic counters,
// windowed rates, log-bucketed histograms, a bounded event log, and a
// miss-curve sampler — that turn per-access events into the quantities
// the paper reasons about (block loads, item faults, marks, evictions,
// layer rebalances).
//
// Invariant (the zero-cost-when-nil rule): every emission site in a
// `//gclint:hotpath` function is guarded by a single `probe != nil`
// check, events are plain value structs, and Probe methods take only
// concrete types — so an unattached policy pays one predictable branch
// and zero allocations per access. This is enforced statically by the
// hotalloc analyzer and dynamically by the AllocsPerRun regression
// tests in this package. See DESIGN.md, "Observability".
//
// Probes may allocate and may synchronize; they are on the paid path.
// All probes in this package are safe for concurrent use, so one probe
// instance can be shared across the shards of a concurrent.Sharded.
package obs

import "gccache/internal/model"

// Kind classifies an observability event.
type Kind uint8

// Event kinds. Two complementary views share the stream: *policy view*
// events are emitted by the cache implementation itself (it knows
// layers, marks, and what a block load brought in), while *recorder
// view* events are emitted by cachesim.Recorder, which classifies hits
// into temporal vs spatial exactly as §2 of the paper defines them.
// Attaching a probe to both (cachesim.RunColdProbed does) yields the
// complete stream; the views never double-count the same kind.
const (
	// EvHit is a policy-view hit in a policy without internal layers
	// (ItemLRU, BlockLRU, GCM, ...).
	EvHit Kind = iota
	// EvHitItemLayer is an IBLP/adaptive hit served by the item layer.
	EvHitItemLayer
	// EvHitBlockLayer is an IBLP/adaptive hit served by the block layer.
	EvHitBlockLayer
	// EvHitTemporal is a recorder-view hit on an item that was requested
	// before (temporal locality).
	EvHitTemporal
	// EvHitSpatial is a recorder-view hit on a pristine item: loaded as a
	// free sibling of an earlier miss and not requested since (spatial
	// locality — the hits the GC model exists to price).
	EvHitSpatial
	// EvMiss is a recorder-view miss (one unit of cost, Definition 1).
	EvMiss
	// EvBlockLoad is the policy-view unit-cost block load serving a miss;
	// Item is the requested item, Block its block (zero for geometry-free
	// policies), N the number of items actually brought in.
	EvBlockLoad
	// EvLoad is one item insertion (policy view, after net-change
	// reconciliation); emitted once per element of Access.Loaded.
	EvLoad
	// EvEvict is one item eviction (policy view, after net-change
	// reconciliation); emitted once per element of Access.Evicted.
	EvEvict
	// EvMark is a GCM/marking item transitioning unmarked→marked.
	EvMark
	// EvPhaseReset is a GCM/marking phase boundary (all marks cleared);
	// N is the number of resident items at the boundary.
	EvPhaseReset
	// EvLayerResize is an AdaptiveIBLP partition move; N is the new
	// item-layer target.
	EvLayerResize

	numKinds
)

// NumKinds is the number of distinct event kinds.
const NumKinds = int(numKinds)

var kindNames = [numKinds]string{
	EvHit:           "hit",
	EvHitItemLayer:  "hit-item-layer",
	EvHitBlockLayer: "hit-block-layer",
	EvHitTemporal:   "hit-temporal",
	EvHitSpatial:    "hit-spatial",
	EvMiss:          "miss",
	EvBlockLoad:     "block-load",
	EvLoad:          "load",
	EvEvict:         "evict",
	EvMark:          "mark",
	EvPhaseReset:    "phase-reset",
	EvLayerResize:   "layer-resize",
}

// String returns the stable lowercase name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// IsPolicyRequest reports whether k marks the service of one request in
// the policy view (a hit of any layer, or the block load of a miss).
// Exactly one such event is emitted per access by an instrumented
// policy, so these kinds are the per-access clock for policy-view
// probes.
func (k Kind) IsPolicyRequest() bool {
	switch k {
	case EvHit, EvHitItemLayer, EvHitBlockLayer, EvBlockLoad:
		return true
	}
	return false
}

// IsRecorderRequest reports whether k marks the service of one request
// in the recorder view (temporal hit, spatial hit, or miss). Exactly one
// such event is emitted per access by a probed cachesim.Recorder.
func (k Kind) IsRecorderRequest() bool {
	switch k {
	case EvHitTemporal, EvHitSpatial, EvMiss:
		return true
	}
	return false
}

// Event is one observability event. It is a small value struct so
// emitting one costs no allocation; fields not meaningful for a kind are
// zero.
type Event struct {
	// Kind classifies the event.
	Kind Kind
	// Item is the item concerned (requested, loaded, evicted, marked).
	Item model.Item
	// Block is the block concerned, when the emitter knows a geometry.
	Block model.Block
	// N is the kind-specific magnitude: items brought in (EvBlockLoad),
	// residents at a phase boundary (EvPhaseReset), or the new item-layer
	// target (EvLayerResize).
	N int32
}

// Probe consumes observability events. Implementations must be safe for
// the concurrency of their attachment point: probes attached to a
// concurrent.Sharded see concurrent Observe calls.
//
// Observe must not call back into the cache that emitted the event; the
// differential tests assert that attaching any probe in this package
// leaves policy decisions byte-identical.
type Probe interface {
	Observe(e Event)
}

// Multi fans events out to several probes in order.
type Multi []Probe

// Observe implements Probe.
func (m Multi) Observe(e Event) {
	for _, p := range m {
		p.Observe(e)
	}
}
