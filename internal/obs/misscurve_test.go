package obs

import (
	"strings"
	"testing"
)

// feedCurve drives n recorder-view requests into m, every missEvery-th
// one a miss (missEvery = 1 makes every request miss), and returns the
// number of misses fed.
func feedCurve(m *MissCurve, n, missEvery int) int64 {
	var misses int64
	for i := 0; i < n; i++ {
		k := EvHitTemporal
		if missEvery > 0 && i%missEvery == 0 {
			k = EvMiss
			misses++
		}
		m.Observe(Event{Kind: k})
	}
	return misses
}

// TestMissCurveSnapshotBoundaries pins the trailing-window flush at the
// window boundaries: a run shorter than one window must still report a
// (partial) point, an exact multiple must report only completed points,
// and one request past the boundary must add a width-1 partial tail.
func TestMissCurveSnapshotBoundaries(t *testing.T) {
	const W = 8
	cases := []struct {
		name        string
		requests    int
		wantPoints  int // Snapshot length
		wantPartial bool
		wantTailW   int64 // Width of the last point, if any
	}{
		{name: "empty", requests: 0, wantPoints: 0},
		{name: "W-1", requests: W - 1, wantPoints: 1, wantPartial: true, wantTailW: W - 1},
		{name: "W", requests: W, wantPoints: 1, wantPartial: false, wantTailW: W},
		{name: "W+1", requests: W + 1, wantPoints: 2, wantPartial: true, wantTailW: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMissCurve(W, 16)
			feedCurve(m, tc.requests, 2)
			snap := m.Snapshot()
			if len(snap) != tc.wantPoints {
				t.Fatalf("Snapshot() has %d points, want %d", len(snap), tc.wantPoints)
			}
			if tc.wantPoints == 0 {
				return
			}
			tail := snap[len(snap)-1]
			if tail.Partial != tc.wantPartial {
				t.Errorf("tail.Partial = %v, want %v", tail.Partial, tc.wantPartial)
			}
			if tail.Width != tc.wantTailW {
				t.Errorf("tail.Width = %d, want %d", tail.Width, tc.wantTailW)
			}
			if tail.Seq != int64(tc.requests) {
				t.Errorf("tail.Seq = %d, want %d", tail.Seq, tc.requests)
			}
			// Completed points never carry the partial flag, and Points()
			// keeps excluding the in-progress window.
			for _, p := range snap[:len(snap)-1] {
				if p.Partial {
					t.Errorf("completed point at seq %d marked partial", p.Seq)
				}
			}
			wantCompleted := tc.requests / W
			if got := len(m.Points()); got != wantCompleted {
				t.Errorf("Points() has %d points, want %d completed", got, wantCompleted)
			}
		})
	}
}

// TestMissCurveSnapshotAccountsEveryRequest checks that completed plus
// partial points cover exactly the requests and misses fed, for widths
// around the boundary — the accounting the pre-fix curve lost.
func TestMissCurveSnapshotAccountsEveryRequest(t *testing.T) {
	const W = 10
	for _, n := range []int{0, 1, W - 1, W, W + 1, 3*W - 1, 3 * W, 3*W + 7} {
		m := NewMissCurve(W, 64)
		fed := feedCurve(m, n, 3)
		var gotReq, gotMiss int64
		for _, p := range m.Snapshot() {
			gotReq += p.Width
			gotMiss += p.Misses
		}
		if gotReq != int64(n) || gotMiss != fed {
			t.Errorf("n=%d: snapshot covers %d requests / %d misses, want %d / %d",
				n, gotReq, gotMiss, n, fed)
		}
	}
}

func TestMissCurveReset(t *testing.T) {
	const W = 8
	m := NewMissCurve(W, 4)
	feedCurve(m, 3*W+W/2, 1)
	if len(m.Snapshot()) == 0 {
		t.Fatal("sanity: snapshot empty before reset")
	}
	m.Reset()
	if got := m.Snapshot(); len(got) != 0 {
		t.Fatalf("after Reset, Snapshot() = %v, want empty", got)
	}
	if got := m.Points(); len(got) != 0 {
		t.Fatalf("after Reset, Points() = %v, want empty", got)
	}
	// The curve is reusable after Reset: sequence numbers restart and a
	// fresh partial window accumulates from zero.
	feedCurve(m, W/2, 1)
	snap := m.Snapshot()
	if len(snap) != 1 || !snap[0].Partial || snap[0].Seq != int64(W/2) || snap[0].Misses != int64(W/2) {
		t.Fatalf("after Reset+refeed, Snapshot() = %+v, want one partial point at seq %d", snap, W/2)
	}
}

func TestMissCurveTableShowsPartial(t *testing.T) {
	m := NewMissCurve(8, 4)
	feedCurve(m, 11, 1)
	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(partial)") {
		t.Errorf("rendered table misses the partial tail:\n%s", sb.String())
	}
}
