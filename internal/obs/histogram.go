package obs

import (
	"io"
	"math"
	"math/bits"
	"sync"

	"gccache/internal/model"
	"gccache/internal/render"
)

// Histogram is a log₂-bucketed histogram of non-negative int64 samples:
// value v lands in bucket bits.Len64(v), so bucket i covers
// [2^(i−1), 2^i). Memory is a fixed 65-slot array regardless of sample
// count, updates are O(1), and quantiles are answered from the bucket
// prefix sums (resolution: one power of two — exactly the granularity
// the paper's asymptotic bounds speak in). Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	name    string
	unit    string
	buckets [65]int64
	count   int64
	sum     int64
	max     int64
}

// NewHistogram returns an empty histogram labeled name, with sample
// values measured in unit (used by the rendered tables).
func NewHistogram(name, unit string) *Histogram {
	return &Histogram{name: name, unit: unit}
}

// Record adds one sample; negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.buckets[bits.Len64(uint64(v))]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Name returns the histogram's label.
func (h *Histogram) Name() string { return h.name }

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the exact mean of the samples (sums are kept exactly;
// only the distribution is bucketed), or 0 with no samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Percentile returns the q-quantile (q in [0,1]) as the lower bound of
// the bucket holding the ceil(q·count)-th smallest sample (1-based) —
// an under-estimate by at most a factor of two. The ceil-rank
// convention is the standard nearest-rank definition: p50 of three
// samples inspects the 2nd smallest, p99 of 100 samples the 99th.
// Returns 0 with no samples.
func (h *Histogram) Percentile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.percentileLocked(q)
}

func (h *Histogram) percentileLocked(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Ceil rank, not floor: int64(q*count) under-reported the quantile
	// by one rank whenever q·count was fractional (p50 of 3 samples
	// inspected rank 1 instead of rank 2).
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			return bucketLow(i)
		}
	}
	return h.max
}

// bucketLow returns the smallest value that lands in bucket i.
func bucketLow(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

// Table renders the non-empty buckets plus summary quantiles.
func (h *Histogram) Table() *render.Table {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := &render.Table{
		Title:   h.name,
		Headers: []string{"bucket (" + h.unit + ")", "count", "cumulative %"},
	}
	var cum int64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		cum += n
		lo := bucketLow(i)
		hi := int64(1)<<i - 1
		if i == 0 {
			hi = 0
		}
		t.AddRow(render.FormatFloat(float64(lo))+"–"+render.FormatFloat(float64(hi)),
			n, 100*float64(cum)/float64(h.count))
	}
	t.AddRow("p50", h.percentileLocked(0.50), "-")
	t.AddRow("p90", h.percentileLocked(0.90), "-")
	t.AddRow("p99", h.percentileLocked(0.99), "-")
	t.AddRow("samples", h.count, "-")
	return t
}

// WriteTo writes the rendered table as aligned text, implementing the
// io.WriterTo shape shared by every exportable probe.
func (h *Histogram) WriteTo(w io.Writer) (int64, error) {
	return 0, h.Table().WriteText(w)
}

// WriteCSV writes the rendered table as CSV.
func (h *Histogram) WriteCSV(w io.Writer) error { return h.Table().WriteCSV(w) }

// ReuseDist is a probe that histograms reuse distances: the number of
// requests between successive references to the same item (an upper
// bound on stack distance; cold first references are tracked separately
// as ColdCount). It listens to the recorder view — attach a probed
// cachesim.Recorder (cachesim.RunColdProbed does).
//
// With a positive universe the last-seen table is a flat array and
// Observe never allocates; otherwise a map is used and accepts any item.
type ReuseDist struct {
	mu   sync.Mutex
	hist *Histogram
	seq  int64
	cold int64
	// lastDense[it] is 1+sequence of it's previous reference (0 = never);
	// nil on the map path.
	lastDense []int64
	last      map[model.Item]int64
}

var _ Probe = (*ReuseDist)(nil)

// NewReuseDist returns a ReuseDist probe; universe > 0 selects the flat
// allocation-free last-seen table for item IDs in [0, universe).
func NewReuseDist(universe int) *ReuseDist {
	r := &ReuseDist{hist: NewHistogram("reuse distance", "requests")}
	if universe > 0 {
		r.lastDense = make([]int64, universe)
	} else {
		r.last = make(map[model.Item]int64)
	}
	return r
}

// Observe implements Probe.
func (r *ReuseDist) Observe(e Event) {
	if !e.Kind.IsRecorderRequest() {
		return
	}
	r.mu.Lock()
	r.seq++
	if r.lastDense != nil {
		if int(e.Item) < len(r.lastDense) {
			if prev := r.lastDense[e.Item]; prev != 0 {
				r.hist.Record(r.seq - prev)
			} else {
				r.cold++
			}
			r.lastDense[e.Item] = r.seq
		}
		r.mu.Unlock()
		return
	}
	if prev, ok := r.last[e.Item]; ok {
		r.hist.Record(r.seq - prev)
	} else {
		r.cold++
	}
	r.last[e.Item] = r.seq
	r.mu.Unlock()
}

// Hist returns the underlying histogram.
func (r *ReuseDist) Hist() *Histogram { return r.hist }

// ColdCount returns the number of first references (no reuse distance).
func (r *ReuseDist) ColdCount() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cold
}

// Note records a raw reference outside any cache run — the entry point
// gctrace uses to profile a trace's reuse structure directly.
func (r *ReuseDist) Note(it model.Item) {
	r.Observe(Event{Kind: EvMiss, Item: it})
}

// WriteTo renders the histogram plus the cold-reference count.
func (r *ReuseDist) WriteTo(w io.Writer) (int64, error) {
	t := r.hist.Table()
	t.AddRow("cold (first reference)", r.ColdCount(), "-")
	return 0, t.WriteText(w)
}

// InterMissGap is a probe that histograms the number of requests between
// successive misses — the paper's fault rate, seen as a distribution
// instead of a mean. Recorder view.
type InterMissGap struct {
	mu       sync.Mutex
	hist     *Histogram
	sinceMis int64
}

var _ Probe = (*InterMissGap)(nil)

// NewInterMissGap returns an empty inter-miss-gap probe.
func NewInterMissGap() *InterMissGap {
	return &InterMissGap{hist: NewHistogram("inter-miss gap", "requests")}
}

// Observe implements Probe.
func (g *InterMissGap) Observe(e Event) {
	if !e.Kind.IsRecorderRequest() {
		return
	}
	g.mu.Lock()
	g.sinceMis++
	if e.Kind == EvMiss {
		g.hist.Record(g.sinceMis)
		g.sinceMis = 0
	}
	g.mu.Unlock()
}

// Hist returns the underlying histogram.
func (g *InterMissGap) Hist() *Histogram { return g.hist }

// WriteTo renders the histogram.
func (g *InterMissGap) WriteTo(w io.Writer) (int64, error) { return g.hist.WriteTo(w) }

// Residency is a probe that histograms how long items stay resident:
// the number of requests between an item's load and its eviction.
// Policy view (EvLoad/EvEvict), so it works attached directly to a
// policy, with or without a recorder.
type Residency struct {
	mu   sync.Mutex
	hist *Histogram
	seq  int64
	// loadedDense[it] is 1+sequence of it's load (0 = not resident);
	// nil on the map path.
	loadedDense []int64
	loaded      map[model.Item]int64
}

var _ Probe = (*Residency)(nil)

// NewResidency returns a Residency probe; universe > 0 selects the flat
// allocation-free residency table for item IDs in [0, universe).
func NewResidency(universe int) *Residency {
	r := &Residency{hist: NewHistogram("residency", "requests")}
	if universe > 0 {
		r.loadedDense = make([]int64, universe)
	} else {
		r.loaded = make(map[model.Item]int64)
	}
	return r
}

// Observe implements Probe.
func (r *Residency) Observe(e Event) {
	switch {
	case e.Kind.IsPolicyRequest():
		r.mu.Lock()
		r.seq++
		r.mu.Unlock()
	case e.Kind == EvLoad:
		r.mu.Lock()
		if r.loadedDense != nil {
			if int(e.Item) < len(r.loadedDense) {
				r.loadedDense[e.Item] = r.seq + 1
			}
		} else {
			r.loaded[e.Item] = r.seq + 1
		}
		r.mu.Unlock()
	case e.Kind == EvEvict:
		r.mu.Lock()
		if r.loadedDense != nil {
			if int(e.Item) < len(r.loadedDense) {
				if at := r.loadedDense[e.Item]; at != 0 {
					r.hist.Record(r.seq - (at - 1))
					r.loadedDense[e.Item] = 0
				}
			}
		} else if at, ok := r.loaded[e.Item]; ok {
			r.hist.Record(r.seq - (at - 1))
			delete(r.loaded, e.Item)
		}
		r.mu.Unlock()
	}
}

// Hist returns the underlying histogram.
func (r *Residency) Hist() *Histogram { return r.hist }

// WriteTo renders the histogram.
func (r *Residency) WriteTo(w io.Writer) (int64, error) { return r.hist.WriteTo(w) }
