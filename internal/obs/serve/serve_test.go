package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.K == 0 {
		cfg.K = 256
	}
	if cfg.B == 0 {
		cfg.B = 8
	}
	if cfg.Workload == "" {
		cfg.Workload = "blockruns:blocks=128,B=8,run=4,len=20000"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestProbeServeEndpoints is the acceptance smoke test: gcserve must
// serve live metrics and pprof over HTTP during a replay.
func TestProbeServeEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Policy: "iblp", Loop: true, Rate: 200000})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	addr, err := s.Start() // also spins up its own listener; we use ts for requests
	if err != nil {
		t.Fatal(err)
	}
	_ = addr
	defer s.Stop()

	// Poll until the looping replay has produced accesses — the metrics
	// below must be observed *live*, mid-replay.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Accesses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replay produced no accesses within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body = get(t, ts.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("/: status %d", code)
	}
	for _, want := range []string{"gcserve —", "event counters", "miss-ratio", "endpoints:"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	if acc, ok := m["accesses"].(float64); !ok || acc <= 0 {
		t.Errorf("metrics accesses = %v, want > 0", m["accesses"])
	}
	if _, ok := m["events.block-load"]; !ok {
		t.Error("metrics missing per-kind event counters")
	}

	code, body = get(t, ts.URL+"/events")
	if code != http.StatusOK || !strings.Contains(body, "seq=") {
		t.Errorf("/events: %d, want seq= lines, got:\n%.200s", code, body)
	}

	code, _ = get(t, ts.URL+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", code)
	}

	code, body = get(t, ts.URL+"/404-nothing-here")
	if code != http.StatusNotFound {
		t.Errorf("unknown path: status %d body %q", code, body)
	}
}

// TestProbeServeSharded covers the lock-striped mode: shard lock
// traffic must appear on the dashboard and in the metrics.
func TestProbeServeSharded(t *testing.T) {
	s := newTestServer(t, Config{Policy: "gcm", Shards: 4, Streams: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.Wait() // one full pass
	defer s.Stop()

	if st := s.Stats(); st.Accesses != 20000 {
		t.Fatalf("replayed %d accesses, want 20000", st.Accesses)
	}
	_, body := get(t, ts.URL+"/")
	if !strings.Contains(body, "shard lock traffic") {
		t.Error("dashboard missing shard lock traffic section")
	}
	_, body = get(t, ts.URL+"/metrics")
	if !strings.Contains(body, "shard.0.acquired") {
		t.Error("metrics missing per-shard counters")
	}
}

// TestProbeServeSweep exercises the on-demand observed sweep page.
func TestProbeServeSweep(t *testing.T) {
	s := newTestServer(t, Config{Policy: "item-lru"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, body := get(t, ts.URL+"/sweep")
	for _, want := range []string{"on-demand sweep", "miss-ratio=", "workers", "imbalance="} {
		if !strings.Contains(body, want) {
			t.Errorf("/sweep missing %q:\n%s", want, body)
		}
	}
}

func TestProbeServeConfigErrors(t *testing.T) {
	if _, err := New(Config{K: 0, B: 8, Workload: "sequential:len=10"}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(Config{K: 64, B: 8, Policy: "bogus", Workload: "sequential:len=10"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(Config{K: 64, B: 8, Workload: "bogus:x=1"}); err == nil {
		t.Error("bad workload accepted")
	}
	if _, err := New(Config{K: 64, B: 8, Workload: "sequential:len=0"}); err == nil {
		t.Error("empty trace accepted")
	}
}
