package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gccache/internal/obs"
)

func TestEventFanDeliversInOrder(t *testing.T) {
	f := newEventFan()
	sub, cancel := f.Subscribe(16)
	defer cancel()
	for i := 0; i < 10; i++ {
		f.Observe(obs.Event{Kind: obs.EvHit, Item: 1})
	}
	for i := 0; i < 10; i++ {
		e := <-sub.ch
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if f.Dropped() != 0 {
		t.Errorf("fast consumer shed %d events", f.Dropped())
	}
}

func TestEventFanShedsSlowConsumerWithoutBlocking(t *testing.T) {
	f := newEventFan()
	sub, cancel := f.Subscribe(4)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ { // never read: must not block
			f.Observe(obs.Event{Kind: obs.EvHit})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Observe blocked on a slow consumer")
	}
	if got := f.Dropped(); got != 96 {
		t.Errorf("dropped %d events, want 96 (100 sent, buffer 4)", got)
	}
	if got := sub.dropped.Load(); got != 96 {
		t.Errorf("per-subscriber drop count %d, want 96", got)
	}
	// The buffered prefix is still delivered, with the original seqs.
	if e := <-sub.ch; e.Seq != 1 {
		t.Errorf("first delivered seq %d, want 1", e.Seq)
	}
}

// TestEventFanNeverShedsControlPlane pins the satellite fix: a data
// flood that saturates the subscriber buffer must shed only data —
// every layer-resize event is still delivered, via the dedicated
// control ring, in order.
func TestEventFanNeverShedsControlPlane(t *testing.T) {
	f := newEventFan()
	sub, cancel := f.Subscribe(1)
	defer cancel()
	const resizes = 10
	for i := 0; i < resizes; i++ {
		for j := 0; j < 100; j++ { // unread: data floods and sheds
			f.Observe(obs.Event{Kind: obs.EvHit})
		}
		f.Observe(obs.Event{Kind: obs.EvLayerResize, N: int32(i)})
	}
	if f.Dropped() == 0 {
		t.Fatal("setup failed to shed data events")
	}
	var got []int32
	for {
		e, ok := sub.popCtrl()
		if !ok {
			break
		}
		if e.Kind != obs.EvLayerResize {
			t.Fatalf("control ring held a %s event", e.Kind)
		}
		got = append(got, e.N)
	}
	if len(got) != resizes {
		t.Fatalf("delivered %d control events, want all %d", len(got), resizes)
	}
	for i, n := range got {
		if n != int32(i) {
			t.Fatalf("control events out of order: position %d has N=%d", i, n)
		}
	}
	if f.CtrlOverwrites() != 0 {
		t.Errorf("control ring overwrote %d events with only %d pending", f.CtrlOverwrites(), resizes)
	}
}

// TestEventFanControlRingOverwritesOldest checks the bounded-ring
// degradation mode: past ctrlRingSize pending control events the oldest
// are overwritten — counted, never silent, and the newest always kept.
func TestEventFanControlRingOverwritesOldest(t *testing.T) {
	f := newEventFan()
	sub, cancel := f.Subscribe(1)
	defer cancel()
	total := ctrlRingSize + 7
	for i := 0; i < total; i++ {
		f.Observe(obs.Event{Kind: obs.EvLayerResize, N: int32(i)})
	}
	if got := f.CtrlOverwrites(); got != 7 {
		t.Fatalf("CtrlOverwrites = %d, want 7", got)
	}
	first, ok := sub.popCtrl()
	if !ok || first.N != 7 {
		t.Fatalf("oldest surviving control event N=%d ok=%v, want N=7", first.N, ok)
	}
	n := 1
	last := first
	for {
		e, ok := sub.popCtrl()
		if !ok {
			break
		}
		last = e
		n++
	}
	if n != ctrlRingSize || last.N != int32(total-1) {
		t.Fatalf("ring drained %d events ending N=%d, want %d ending N=%d", n, last.N, ctrlRingSize, total-1)
	}
}

// TestEventStreamDeliversResizesUnderFlood is the end-to-end version:
// an /events/stream reader that connects while the fan is flooding
// still sees every layer-resize line.
func TestEventStreamDeliversResizesUnderFlood(t *testing.T) {
	s := newTestServer(t, Config{Policy: "iblp"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Wait for the subscription to land, then flood: bursts far beyond
	// the channel buffer with one resize in each.
	deadline := time.Now().Add(2 * time.Second)
	for s.fan.Subscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	const resizes = 5
	go func() {
		for i := 0; i < resizes; i++ {
			for j := 0; j < 5000; j++ {
				s.fan.Observe(obs.Event{Kind: obs.EvHit})
			}
			s.fan.Observe(obs.Event{Kind: obs.EvLayerResize, N: int32(100 + i)})
		}
	}()

	seen := make(map[string]bool)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "kind=layer-resize") {
			seen[line[strings.Index(line, "n="):]] = true
			if len(seen) == resizes {
				break
			}
		}
	}
	if len(seen) != resizes {
		t.Fatalf("stream delivered %d/%d layer-resize events: %v (scan err %v)",
			len(seen), resizes, seen, sc.Err())
	}
}

func TestEventFanUnsubscribeAndCloseAll(t *testing.T) {
	f := newEventFan()
	_, cancel1 := f.Subscribe(1)
	sub2, _ := f.Subscribe(1)
	if f.Subscribers() != 2 {
		t.Fatalf("subscribers = %d", f.Subscribers())
	}
	cancel1()
	cancel1() // idempotent
	if f.Subscribers() != 1 {
		t.Fatalf("after cancel: subscribers = %d", f.Subscribers())
	}
	f.CloseAll()
	if _, open := <-sub2.ch; open {
		t.Error("CloseAll left a subscriber channel open")
	}
	f.Observe(obs.Event{}) // no subscribers: must be a no-op
}

func TestHealthzDegradesOnShedding(t *testing.T) {
	s := newTestServer(t, Config{Policy: "iblp"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("fresh server /healthz: %d %q", code, body)
	}

	// Saturate a tiny subscriber to force shedding.
	_, cancel := s.fan.Subscribe(1)
	defer cancel()
	for i := 0; i < 10; i++ {
		s.fan.Observe(obs.Event{Kind: obs.EvHit})
	}
	if s.fan.Dropped() == 0 {
		t.Fatal("setup failed to shed events")
	}
	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("degraded /healthz status %d", code)
	}
	if !strings.Contains(body, "degraded") || !strings.Contains(body, "shed") {
		t.Errorf("degraded /healthz body %q, want shedding reason", body)
	}

	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	if dropped, ok := m["stream.dropped"].(float64); !ok || dropped <= 0 {
		t.Errorf("metrics stream.dropped = %v, want > 0", m["stream.dropped"])
	}
	if healthy, ok := m["healthy"].(bool); !ok || healthy {
		t.Errorf("metrics healthy = %v, want false", m["healthy"])
	}
}

func TestEventStreamDeliversLiveEvents(t *testing.T) {
	s := newTestServer(t, Config{Policy: "iblp", Loop: true, Rate: 200000})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() && lines < 5 {
		if !strings.Contains(sc.Text(), "kind=") {
			t.Fatalf("stream line %q", sc.Text())
		}
		lines++
	}
	if lines < 5 {
		t.Fatalf("stream delivered only %d lines: %v", lines, sc.Err())
	}
}

func TestShutdownDrainsAndReportsUnavailable(t *testing.T) {
	s := newTestServer(t, Config{Policy: "iblp", Loop: true, Rate: 200000})
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	// Open a stream (an in-flight response) before shutting down.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", base+"/events/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The stream must have ended cleanly (fan closed), not been cut.
	buf := make([]byte, 4096)
	for {
		if _, rerr := resp.Body.Read(buf); rerr != nil {
			break
		}
	}
	// After shutdown the listener is closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

// TestLivenessReadinessSplitDuringShutdown pins the probe contract: a
// draining server is still alive (/healthz 200 — killing it would cut
// in-flight work) but no longer ready (/readyz 503 — routing anything
// new to it would be lost).
func TestLivenessReadinessSplitDuringShutdown(t *testing.T) {
	s := newTestServer(t, Config{Policy: "iblp"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/readyz")
	if code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("fresh server /readyz: %d %q", code, body)
	}

	s.shuttingDown.Store(true)
	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "shutting down") {
		t.Errorf("/healthz during shutdown: %d %q, want 200 with the reason listed", code, body)
	}
	code, body = get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "shutting down") {
		t.Errorf("/readyz during shutdown: %d %q, want 503", code, body)
	}
	code, _ = get(t, ts.URL+"/events/stream")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/events/stream during shutdown: %d", code)
	}
}
