package serve

import (
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gccache/internal/cluster"
	"gccache/internal/cluster/ring"
	"gccache/internal/model"
)

// freeLoopbackAddr reserves an ephemeral port and releases it, so a
// test can hand a concrete address to components that must agree on it
// (ring file entries) before anything listens there.
func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func writeRingFile(t *testing.T, addrs ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ring.txt")
	if err := os.WriteFile(path, []byte("# test ring\n"+strings.Join(addrs, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func newClusterServer(t *testing.T, ringPath, nodeAddr string) *Server {
	t.Helper()
	s, err := New(Config{
		Addr: "127.0.0.1:0", K: 128, B: 8, Policy: "item-lru",
		ClusterRing: ringPath, ClusterAddr: nodeAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

// TestClusterModeServesWireTraffic runs a two-node gcserve ring and
// drives it with a cluster client: batches land on their owners, the
// dashboard and stats reflect wire traffic, and readiness flips when a
// node drains.
func TestClusterModeServesWireTraffic(t *testing.T) {
	a1, a2 := freeLoopbackAddr(t), freeLoopbackAddr(t)
	rp := writeRingFile(t, a1, a2)
	s1 := newClusterServer(t, rp, a1)
	s2 := newClusterServer(t, rp, a2)

	r, err := ring.New([]string{a1, a2}, 64, s1.cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.NewClient(r, cluster.ClientConfig{Timeout: 2 * time.Second})
	defer c.Close()
	groups := map[int][]model.Item{}
	batch := make([]model.Item, 64)
	for round := 0; round < 30; round++ {
		for i := range batch {
			batch[i] = model.Item(round*len(batch) + i)
		}
		for k := range groups {
			groups[k] = groups[k][:0]
		}
		c.Route(batch, groups)
		for n := 0; n < r.Len(); n++ {
			if len(groups[n]) == 0 {
				continue
			}
			if err := c.Do(groups[n]); err != nil {
				t.Fatalf("Do: %v", err)
			}
		}
	}
	if !c.Stats().Identity() {
		t.Fatalf("accounting identity broken: %+v", c.Stats())
	}
	if got := s1.Stats().Accesses + s2.Stats().Accesses; got != 30*64 {
		t.Fatalf("nodes served %d accesses, client sent %d", got, 30*64)
	}

	ts := httptest.NewServer(s1.Handler())
	defer ts.Close()
	code, body := get(t, ts.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "cluster: node "+a1) {
		t.Errorf("cluster dashboard: %d %q", code, body)
	}
	code, body = get(t, ts.URL+"/readyz")
	if code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz on a serving node: %d %q", code, body)
	}
	// /metrics must not assume a local replay recorder exists (it does
	// not in cluster mode) and reports the node's ring membership.
	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, `"cluster.node"`) {
		t.Errorf("/metrics on a cluster node: %d %q", code, body)
	}

	// Draining flips readiness but not liveness, and the wire rejects.
	s1.node.Drain()
	code, body = get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("/readyz on a draining node: %d %q", code, body)
	}
	code, _ = get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Errorf("/healthz on a draining node: %d, want 200 (liveness)", code)
	}
}

// TestDrainAndHandoffMovesState drains node 1 into node 2 and asserts
// the successor carries the combined accounting afterwards.
func TestDrainAndHandoffMovesState(t *testing.T) {
	a1, a2 := freeLoopbackAddr(t), freeLoopbackAddr(t)
	rp := writeRingFile(t, a1, a2)
	s1 := newClusterServer(t, rp, a1)
	s2 := newClusterServer(t, rp, a2)

	r, err := ring.New([]string{a1, a2}, 64, s1.cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.NewClient(r, cluster.ClientConfig{Timeout: 2 * time.Second})
	defer c.Close()
	items := make([]model.Item, 500)
	for i := range items {
		items[i] = model.Item(i)
	}
	groups := map[int][]model.Item{}
	c.Route(items, groups)
	for n := 0; n < r.Len(); n++ {
		if len(groups[n]) > 0 {
			if err := c.Do(groups[n]); err != nil {
				t.Fatalf("Do: %v", err)
			}
		}
	}
	before := s1.Stats().Accesses + s2.Stats().Accesses

	if err := s1.DrainAndHandoff(2 * time.Second); err != nil {
		t.Fatalf("DrainAndHandoff: %v", err)
	}
	if ok, _ := s1.Ready(); ok {
		t.Error("node still ready after DrainAndHandoff")
	}
	if got := s2.Stats().Accesses; got != before {
		t.Errorf("successor accounts %d accesses after handoff, want %d", got, before)
	}
}

// TestFailedStartReleasesPort is the regression test for the
// startup-error listener leak: when a later startup step fails (the
// cluster listener cannot bind), the already-bound HTTP listener must
// be closed so the port is immediately reusable.
func TestFailedStartReleasesPort(t *testing.T) {
	// Occupy the cluster address so node startup fails.
	blocker, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Close()
	nodeAddr := blocker.Addr().String()

	httpAddr := freeLoopbackAddr(t)
	s, err := New(Config{
		Addr: httpAddr, K: 128, B: 8, Policy: "item-lru",
		ClusterRing: writeRingFile(t, nodeAddr), ClusterAddr: nodeAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(); err == nil {
		s.Stop()
		t.Fatal("Start succeeded with the cluster port occupied")
	}
	// The HTTP port must be free again right away — no leaked listener.
	l, err := net.Listen("tcp", httpAddr)
	if err != nil {
		t.Fatalf("failed Start leaked the HTTP listener: %v", err)
	}
	l.Close()
}

// TestClusterConfigValidation covers the ring-file error paths.
func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{Addr: ":0", K: 8, B: 8, ClusterRing: "/no/such/ring", ClusterAddr: "x:1"}); err == nil {
		t.Error("missing ring file accepted")
	}
	rp := writeRingFile(t, "127.0.0.1:9101")
	if _, err := New(Config{Addr: ":0", K: 8, B: 8, ClusterRing: rp, ClusterAddr: "127.0.0.1:9999"}); err == nil {
		t.Error("cluster addr outside the ring file accepted")
	}
	if _, err := New(Config{Addr: ":0", K: 8, B: 8, Policy: "bogus", ClusterRing: rp, ClusterAddr: "127.0.0.1:9101"}); err == nil {
		t.Error("unknown policy accepted in cluster mode")
	}
}
