// Package serve is the live-observation harness behind cmd/gcserve: it
// replays a workload (optionally forever, optionally sharded across
// concurrent streams) with the full probe suite attached, and exposes
// what the probes see over HTTP — a plain-text dashboard, expvar-style
// JSON metrics, the raw event log, a sweep-engine demo, and the
// standard pprof profiles.
//
// The package sits at the top of the observability import DAG (it may
// import policies, the simulator, and probes; nothing imports it), so
// the hot paths it observes never know it exists.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gccache/internal/autotune"
	"gccache/internal/cachesim"
	"gccache/internal/cluster"
	"gccache/internal/cluster/ring"
	"gccache/internal/concurrent"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/policy"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

// Config describes one gcserve replay.
type Config struct {
	Addr      string // listen address, e.g. ":8080" or "127.0.0.1:0"
	K         int    // cache size in items
	B         int    // block size
	Policy    string // item-lru, block-lru, iblp, gcm, adaptive
	Workload  string // workload spec (ignored when TraceFile is set)
	TraceFile string // gctrace binary file to replay instead
	Seed      int64
	Shards    int    // >1 replays through a lock-striped concurrent.Sharded
	Streams   int    // concurrent client streams (sharded mode); default 4
	Probe     string // probe suite spec (obs.NewSuite); default "all"
	Loop      bool   // replay the trace forever instead of once
	Rate      int    // accesses/second per stream; 0 = unthrottled

	// Autotune attaches the §5.3 shadow-cache controller: candidate
	// layer splits are shadowed off the live probe stream and winning
	// splits are applied to the live policy as layer-resize moves. It
	// requires a resizable policy (iblp, adaptive) and Shards == 1.
	// Disabled (the default), the replay path is byte-identical to a
	// server built without it — serve_test.go holds it to that.
	Autotune bool
	// AutotuneWindow overrides the controller's decision window in
	// requests (0 = the autotune package default).
	AutotuneWindow int
	// AutotuneUniverse bounds the dense shadows' item universe in
	// cluster mode, where no local trace exists to derive it from
	// (0 = 1<<20). Out-of-universe items are counted and skipped.
	AutotuneUniverse int

	// ClusterRing switches the server into cluster-node mode: instead
	// of replaying a local workload, it serves cache traffic from
	// gcload -cluster clients as one member of the ring file at this
	// path. ClusterAddr is this node's wire address and must appear in
	// the ring file (it is how the node finds its handoff successor).
	ClusterRing string
	ClusterAddr string
}

// Server replays the configured workload and serves the probe suite's
// view of it.
type Server struct {
	cfg   Config
	geo   model.Geometry
	tr    trace.Trace
	suite *obs.Suite
	fan   *eventFan
	start time.Time

	sharded *concurrent.Sharded // nil in flat mode

	mu sync.Mutex // flat mode: guards cache+rec
	//gclint:guardedby mu
	cache cachesim.Cache
	//gclint:guardedby mu
	rec *cachesim.Recorder

	node      *cluster.Node // cluster mode: the wire-serving ring member
	ringNodes []string      // cluster mode: the static ring membership

	// tuner is the §5.3 closed-loop controller (nil unless
	// cfg.Autotune). It rides the probe Multi; proposals are pulled —
	// flat mode polls at replay batch boundaries under s.mu, cluster
	// mode from a ticker goroutine under the node's apply mutex.
	tuner *autotune.Tuner
	//gclint:guardedby mu
	resizable cachesim.LayerResizable // flat mode: s.cache, pre-asserted

	httpSrv      *http.Server
	listener     net.Listener
	cancel       context.CancelFunc
	wg           sync.WaitGroup
	shuttingDown atomic.Bool
}

// buildPolicy constructs one policy instance of capacity k.
func buildPolicy(name string, k int, geo model.Geometry, seed int64) (cachesim.Cache, error) {
	switch name {
	case "item-lru":
		return policy.NewItemLRU(k), nil
	case "block-lru":
		return policy.NewBlockLRU(k, geo), nil
	case "iblp", "iblp-even":
		return core.NewIBLPEvenSplit(k, geo), nil
	case "gcm":
		return core.NewGCM(k, geo, seed), nil
	case "adaptive":
		return core.NewAdaptiveIBLP(k, geo), nil
	}
	return nil, fmt.Errorf("serve: unknown policy %q (want item-lru, block-lru, iblp, gcm, or adaptive)", name)
}

// New builds a Server from cfg: loads or generates the trace, builds
// the (possibly sharded) cache, and attaches the probe suite. Nothing
// runs until Start.
func New(cfg Config) (*Server, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("serve: cache size %d < 1", cfg.K)
	}
	if cfg.B < 1 {
		return nil, fmt.Errorf("serve: block size %d < 1", cfg.B)
	}
	if cfg.Policy == "" {
		cfg.Policy = "iblp"
	}
	if cfg.Probe == "" {
		cfg.Probe = "all"
	}
	if cfg.Streams < 1 {
		cfg.Streams = 4
	}
	s := &Server{cfg: cfg, geo: model.NewFixed(cfg.B)}

	var err error
	if s.suite, err = obs.NewSuite(cfg.Probe, 0); err != nil {
		return nil, err
	}
	s.fan = newEventFan()
	probe := obs.Multi{s.suite, s.fan}

	if cfg.ClusterRing != "" {
		// Cluster-node mode: no local replay — the traffic arrives over
		// the wire. The node's cache carries the same probe suite, so
		// the dashboard and event stream observe ring traffic live.
		if s.ringNodes, err = ring.LoadFile(cfg.ClusterRing); err != nil {
			return nil, err
		}
		listed := false
		for _, n := range s.ringNodes {
			listed = listed || n == cfg.ClusterAddr
		}
		if !listed {
			return nil, fmt.Errorf("serve: cluster addr %q is not in ring file %s (nodes: %v)",
				cfg.ClusterAddr, cfg.ClusterRing, s.ringNodes)
		}
		// The throwaway build both validates the policy name and, with
		// autotune on, proves the policy is resizable before any node
		// cache exists.
		throwaway, err := buildPolicy(cfg.Policy, cfg.K, s.geo, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if cfg.Autotune {
			rz, ok := throwaway.(cachesim.LayerResizable)
			if !ok {
				return nil, fmt.Errorf("serve: policy %q does not support layer resizing (autotune needs iblp or adaptive)", cfg.Policy)
			}
			universe := cfg.AutotuneUniverse
			if universe <= 0 {
				universe = 1 << 20 // wire traffic has no trace to bound it
			}
			if s.tuner, err = autotune.New(autotune.Config{
				K: cfg.K, B: cfg.B, Geometry: s.geo,
				Universe: universe, Window: cfg.AutotuneWindow,
			}); err != nil {
				return nil, err
			}
			s.tuner.SetLiveTarget(rz.ItemLayerTarget())
			probe = append(probe, s.tuner)
		}
		s.node, err = cluster.NewNode(cluster.NodeConfig{
			Addr: cfg.ClusterAddr, K: cfg.K, B: cfg.B,
			NewCache: func() cachesim.Cache {
				c, cerr := buildPolicy(cfg.Policy, cfg.K, s.geo, cfg.Seed)
				if cerr != nil {
					return nil
				}
				if in, ok := c.(cachesim.Instrumented); ok {
					in.SetProbe(probe)
				}
				return c
			},
		})
		if err != nil {
			return nil, err
		}
		return s, nil
	}

	if cfg.TraceFile != "" {
		f, ferr := os.Open(cfg.TraceFile)
		if ferr != nil {
			return nil, ferr
		}
		s.tr, err = trace.Read(f)
		f.Close()
	} else {
		s.tr, err = workload.FromSpec(cfg.Workload, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}
	if len(s.tr) == 0 {
		return nil, fmt.Errorf("serve: empty trace")
	}

	if cfg.Shards > 1 {
		if cfg.Autotune {
			// Each shard is an independent cache at k/shards; one global
			// split controller has no meaningful target there.
			return nil, fmt.Errorf("serve: -autotune requires shards=1 (got %d)", cfg.Shards)
		}
		s.sharded, err = concurrent.NewSharded(cfg.Shards, cfg.K, s.geo,
			func(per int) cachesim.Cache {
				c, cerr := buildPolicy(cfg.Policy, per, s.geo, cfg.Seed)
				if cerr != nil {
					return nil // NewSharded reports nil builds
				}
				return c
			})
		if err != nil {
			return nil, err
		}
		s.sharded.SetProbe(probe)
		return s, nil
	}

	if s.cache, err = buildPolicy(cfg.Policy, cfg.K, s.geo, cfg.Seed); err != nil {
		return nil, err
	}
	if cfg.Autotune {
		rz, ok := s.cache.(cachesim.LayerResizable)
		if !ok {
			return nil, fmt.Errorf("serve: policy %q does not support layer resizing (autotune needs iblp or adaptive)", cfg.Policy)
		}
		s.resizable = rz
		if s.tuner, err = autotune.New(autotune.Config{
			K: cfg.K, B: cfg.B, Geometry: s.geo,
			Universe: s.tr.Universe(), Window: cfg.AutotuneWindow,
		}); err != nil {
			return nil, err
		}
		s.tuner.SetLiveTarget(rz.ItemLayerTarget())
		probe = append(probe, s.tuner)
	}
	if in, ok := s.cache.(cachesim.Instrumented); ok {
		in.SetProbe(probe)
	}
	s.rec = cachesim.NewRecorder(s.cache.Name())
	s.rec.SetProbe(probe)
	return s, nil
}

// Start begins listening on cfg.Addr, starts the cluster node when
// configured, and launches the replay goroutines. It returns the bound
// HTTP address (useful with port 0). Every error return closes any
// listener already bound, so a failed Start never strands a port — the
// regression test in serve_cluster_test.go holds it to that.
func (s *Server) Start() (string, error) {
	l, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", err
	}
	if s.node != nil {
		if _, err := s.node.Start(); err != nil {
			l.Close()
			return "", err
		}
	}
	s.listener = l
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go s.httpSrv.Serve(l) //nolint:errcheck // Serve always returns on Close

	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.startReplay(ctx)
	if s.node != nil && s.tuner != nil {
		s.startClusterApply(ctx)
	}
	s.start = time.Now()
	return l.Addr().String(), nil
}

// startClusterApply polls the tuner for pending resize proposals and
// enacts them on the cluster node's cache. Node.WithCache holds the
// mutex that serializes wire batches, satisfying LayerResizable's
// locking contract; the cheap Pending peek keeps the ticker from
// touching that mutex when there is nothing to do.
func (s *Server) startClusterApply(ctx context.Context) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if _, ok := s.tuner.Pending(); !ok {
					continue
				}
				s.node.WithCache(func(c cachesim.Cache) {
					if rz, ok := c.(cachesim.LayerResizable); ok {
						s.tuner.Apply(rz)
					}
				})
			}
		}
	}()
}

// NodeAddr returns the cluster node's wire address, or "" outside
// cluster mode.
func (s *Server) NodeAddr() string {
	if s.node == nil {
		return ""
	}
	return s.node.Addr()
}

// DrainAndHandoff takes the cluster node out of the ring gracefully:
// it stops accepting new batches (clients fail over immediately), then
// streams its cache state to the ring successor so the warm set and
// accounting survive the departure. Outside cluster mode it is a no-op.
func (s *Server) DrainAndHandoff(timeout time.Duration) error {
	if s.node == nil {
		return nil
	}
	s.node.Drain()
	r, err := ring.New(s.ringNodes, cluster.DefaultReplicas, s.cfg.Seed)
	if err != nil {
		return err
	}
	succ, ok := r.Successor(s.cfg.ClusterAddr)
	if !ok {
		return nil // single-node ring: nowhere to hand off, state retires
	}
	return s.node.HandoffTo(succ, timeout)
}

// Stop halts the replay and the HTTP server immediately, abandoning
// in-flight responses. Prefer Shutdown for interactive use.
func (s *Server) Stop() {
	s.shuttingDown.Store(true)
	if s.cancel != nil {
		s.cancel()
	}
	s.wg.Wait()
	s.fan.CloseAll()
	if s.node != nil {
		s.node.Close()
	}
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
}

// Shutdown halts the replay, disconnects event-stream subscribers, and
// drains in-flight HTTP responses until ctx ends, at which point the
// remaining connections are forcibly closed. While draining, /healthz
// reports the server as shutting down so probes stop routing to it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shuttingDown.Store(true)
	if s.cancel != nil {
		s.cancel()
	}
	s.wg.Wait()
	s.fan.CloseAll()
	if s.node != nil {
		s.node.Close()
	}
	if s.httpSrv == nil {
		return nil
	}
	if err := s.httpSrv.Shutdown(ctx); err != nil {
		s.httpSrv.Close()
		return err
	}
	return nil
}

// Health reports whether the server is fully healthy, plus the reasons
// it is degraded when not: shutting down, or shedding events to slow
// stream consumers.
func (s *Server) Health() (bool, []string) {
	var reasons []string
	if s.shuttingDown.Load() {
		reasons = append(reasons, "shutting down")
	}
	if n := s.fan.Dropped(); n > 0 {
		reasons = append(reasons, fmt.Sprintf("event stream shed %d events to slow consumers", n))
	}
	sort.Strings(reasons)
	return len(reasons) == 0, reasons
}

// Ready reports whether the server should receive new traffic: alive,
// not shutting down, not degraded, and — in cluster mode — with the
// node accepting batches. Liveness (Health) and readiness differ
// exactly while draining: the process is healthy enough to finish
// in-flight work but must not be routed anything new.
func (s *Server) Ready() (bool, []string) {
	ok, reasons := s.Health()
	if s.node != nil && !s.node.Ready() {
		ok = false
		reasons = append(reasons, "cluster node draining")
		sort.Strings(reasons)
	}
	return ok, reasons
}

// Wait blocks until the replay goroutines finish (immediately useful
// only for non-looping replays).
func (s *Server) Wait() { s.wg.Wait() }

// startReplay launches the replay goroutines: one per stream in
// sharded mode, a single batched one in flat mode, none in cluster
// mode (the traffic comes over the wire).
func (s *Server) startReplay(ctx context.Context) {
	if len(s.tr) == 0 {
		return
	}
	if s.sharded != nil {
		streams := concurrent.SplitStreams(s.tr, s.cfg.Streams)
		for _, st := range streams {
			s.wg.Add(1)
			go func(tr trace.Trace) {
				defer s.wg.Done()
				s.replayStream(ctx, tr, func(it model.Item) { s.sharded.Access(it) }, nil)
			}(st)
		}
		return
	}
	// Flat mode: with autotune on, pending resize proposals are applied
	// at batch boundaries — under s.mu, the lock that serializes Access,
	// as cachesim.LayerResizable requires.
	var onBatch func()
	if s.tuner != nil {
		onBatch = func() {
			s.mu.Lock()
			s.tuner.Apply(s.resizable)
			s.mu.Unlock()
		}
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.replayStream(ctx, s.tr, func(it model.Item) {
			s.mu.Lock()
			s.rec.Observe(it, s.cache.Access(it))
			s.mu.Unlock()
		}, onBatch)
	}()
}

// replayStream drives access over tr, looping when configured,
// checking ctx, throttling, and running onBatch (when non-nil) once
// per batch.
func (s *Server) replayStream(ctx context.Context, tr trace.Trace, access func(model.Item), onBatch func()) {
	const batch = 256
	var pause time.Duration
	if s.cfg.Rate > 0 {
		pause = time.Duration(batch) * time.Second / time.Duration(s.cfg.Rate)
	}
	for {
		for i, it := range tr {
			access(it)
			if i%batch != batch-1 {
				continue
			}
			if onBatch != nil {
				onBatch()
			}
			if ctx.Err() != nil {
				return
			}
			if pause > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(pause):
				}
			}
		}
		if !s.cfg.Loop || ctx.Err() != nil {
			return
		}
	}
}

// Stats returns the merged recorder statistics so far.
func (s *Server) Stats() cachesim.Stats {
	if s.node != nil {
		return s.node.Stats()
	}
	if s.sharded != nil {
		return s.sharded.Stats()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Stats()
}

// Suite exposes the attached probe suite.
func (s *Server) Suite() *obs.Suite { return s.suite }

// Tuner exposes the autotune controller, or nil when Autotune is off.
func (s *Server) Tuner() *autotune.Tuner { return s.tuner }

// Handler returns the HTTP surface: the dashboard at /, JSON metrics
// at /metrics, the event log at /events, a live sweep-engine demo at
// /sweep, a health check at /healthz, and pprof under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleDashboard)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/events/stream", s.handleEventStream)
	mux.HandleFunc("/sweep", s.handleSweep)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	st := s.Stats()
	fmt.Fprintf(w, "gcserve — %s  k=%d B=%d shards=%d\n", st.Policy, s.cfg.K, s.cfg.B, maxInt(1, s.cfg.Shards))
	if s.node != nil {
		fmt.Fprintf(w, "cluster: node %s in ring %s (%d nodes)\n", s.node.Addr(), s.cfg.ClusterRing, len(s.ringNodes))
	} else if s.cfg.TraceFile != "" {
		fmt.Fprintf(w, "trace: %s (%d requests%s)\n", s.cfg.TraceFile, len(s.tr), loopSuffix(s.cfg.Loop))
	} else {
		fmt.Fprintf(w, "workload: %s (%d requests%s, seed %d)\n", s.cfg.Workload, len(s.tr), loopSuffix(s.cfg.Loop), s.cfg.Seed)
	}
	fmt.Fprintf(w, "uptime: %v\n\n", time.Since(s.start).Round(time.Millisecond))
	fmt.Fprintf(w, "accesses=%d hits=%d misses=%d miss-ratio=%.4f temporal=%d spatial=%d\n\n",
		st.Accesses, st.Hits, st.Misses, st.MissRatio(), st.TemporalHits, st.SpatialHits)
	if _, err := s.suite.WriteTo(w); err != nil {
		return
	}
	if s.tuner != nil {
		fmt.Fprintf(w, "\n")
		if _, err := s.tuner.WriteTo(w); err != nil {
			return
		}
	}
	if s.sharded != nil {
		fmt.Fprintf(w, "\n== shard lock traffic ==\n")
		for i, l := range s.sharded.ShardLoads() {
			ratio := 0.0
			if l.Acquired > 0 {
				ratio = float64(l.Contended) / float64(l.Acquired)
			}
			fmt.Fprintf(w, "shard %d: acquired=%d contended=%d (%.2f%%)\n", i, l.Acquired, l.Contended, 100*ratio)
		}
	}
	fmt.Fprintf(w, "\nendpoints: /metrics /events /events/stream /sweep /healthz /readyz /debug/pprof/\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	m := map[string]any{
		"policy":         st.Policy,
		"accesses":       st.Accesses,
		"hits":           st.Hits,
		"misses":         st.Misses,
		"miss_ratio":     st.MissRatio(),
		"temporal_hits":  st.TemporalHits,
		"spatial_hits":   st.SpatialHits,
		"items_loaded":   st.ItemsLoaded,
		"evictions":      st.Evictions,
		"uptime_seconds": time.Since(s.start).Seconds(),
	}
	snap := s.suite.Counters.Snapshot()
	for k := 0; k < obs.NumKinds; k++ {
		m["events."+obs.Kind(k).String()] = snap[k]
	}
	m["stream.subscribers"] = s.fan.Subscribers()
	m["stream.dropped"] = s.fan.Dropped()
	if s.tuner != nil {
		ts := s.tuner.State()
		m["autotune.windows"] = ts.Windows
		m["autotune.requests"] = ts.Requests
		m["autotune.skipped"] = ts.Skipped
		m["autotune.resizes"] = ts.Resizes
		m["autotune.live_target"] = ts.Live
		m["autotune.formula_target"] = ts.Formula
		m["autotune.working_set"] = ts.WorkingSet
		m["autotune.winner"] = ts.Winner
		m["autotune.pending"] = ts.Pending
	}
	healthy, reasons := s.Health()
	m["healthy"] = healthy
	if len(reasons) > 0 {
		m["degraded_reasons"] = reasons
	}
	if s.node != nil {
		m["cluster.node"] = s.node.Addr()
		m["cluster.ring_nodes"] = len(s.ringNodes)
		m["cluster.draining"] = s.node.Draining()
	} else if s.sharded != nil {
		for i, l := range s.sharded.ShardLoads() {
			m[fmt.Sprintf("shard.%d.acquired", i)] = l.Acquired
			m[fmt.Sprintf("shard.%d.contended", i)] = l.Contended
		}
	} else {
		s.mu.Lock()
		m["miss_gap_p50"] = s.rec.MissGapPercentile(0.50)
		m["miss_gap_p99"] = s.rec.MissGapPercentile(0.99)
		m["miss_gap_mean"] = s.rec.MissGapMean()
		m["load_burst_mean"] = s.rec.LoadBurstMean()
		s.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m) //nolint:errcheck // client gone
}

// handleHealthz is the liveness probe: it answers 200 whenever the
// process is up and serving HTTP — including while draining, when
// in-flight work must be allowed to finish. Degradation reasons are
// listed informationally; the routing decision lives in /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	ok, reasons := s.Health()
	if ok {
		fmt.Fprintln(w, "ok")
		return
	}
	fmt.Fprintln(w, "degraded")
	for _, r := range reasons {
		fmt.Fprintf(w, "- %s\n", r)
	}
}

// handleReadyz is the readiness probe: 200 only while the server
// should receive new traffic. Shutting down, degraded, or (cluster
// mode) draining all answer 503 with one reason per line, so
// orchestration stops routing before the drain deadline cuts
// connections.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	ok, reasons := s.Ready()
	if ok {
		fmt.Fprintln(w, "ready")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "not ready")
	for _, r := range reasons {
		fmt.Fprintf(w, "- %s\n", r)
	}
}

// handleEventStream streams live probe events, one line per event, in
// the same format as /events. Each subscriber gets a bounded buffer;
// when the client reads too slowly events are shed (never blocking the
// replay) and the gap shows up as a jump in seq plus a drop count in
// /metrics and /healthz.
func (s *Server) handleEventStream(w http.ResponseWriter, r *http.Request) {
	if s.shuttingDown.Load() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	sub, cancel := s.fan.Subscribe(1024)
	defer cancel()
	writeEvent := func(e fanEvent) bool {
		_, err := fmt.Fprintf(w, "seq=%d kind=%s item=%d block=%d n=%d\n",
			e.Seq, e.Kind, e.Item, e.Block, e.N)
		return err == nil
	}
	for {
		// Control-plane events (the non-sheddable ring) drain ahead of
		// buffered data, so a resize is on the wire before the data
		// events that follow it — even mid-flood.
		for {
			e, ok := sub.popCtrl()
			if !ok {
				break
			}
			if !writeEvent(e) {
				return
			}
		}
		if flusher != nil && len(sub.ch) == 0 {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.notify:
			// Loop back to drain the control ring.
		case e, open := <-sub.ch:
			if !open {
				return // shutdown disconnected us
			}
			if !writeEvent(e) {
				return
			}
		}
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.suite.Events == nil {
		fmt.Fprintln(w, "event log disabled (enable with -probe events=N or all)")
		return
	}
	s.suite.Events.WriteTo(w) //nolint:errcheck // client gone
}

// handleSweep runs a small observed parameter sweep on demand — a live
// demonstration of the chunked sweep engine's per-worker steal counts
// and timing, on real per-policy miss-ratio work.
func (s *Server) handleSweep(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	tr := s.tr
	if len(tr) > 1<<14 {
		tr = tr[:1<<14]
	}
	sizes := make([]int, 24)
	for i := range sizes {
		sizes[i] = (i + 1) * maxInt(1, s.cfg.K/len(sizes))
	}
	results := make([]float64, len(sizes))
	var st cachesim.SweepStats
	cachesim.SweepObserved(len(sizes), runtime.GOMAXPROCS(0), &st,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) {
			c, err := buildPolicy(s.cfg.Policy, sizes[i], s.geo, s.cfg.Seed)
			if err != nil {
				return
			}
			results[i] = cachesim.RunCold(c, tr).MissRatio()
		})
	fmt.Fprintf(w, "on-demand sweep: %s miss ratio over %d cache sizes, %d requests each\n\n",
		s.cfg.Policy, len(sizes), len(tr))
	for i, k := range sizes {
		fmt.Fprintf(w, "k=%-8d miss-ratio=%.4f\n", k, results[i])
	}
	fmt.Fprintf(w, "\n%s", st.String())
}

func loopSuffix(loop bool) string {
	if loop {
		return ", looping"
	}
	return ""
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
