package serve

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gccache/internal/cachesim"
	"gccache/internal/cluster"
	"gccache/internal/cluster/ring"
	"gccache/internal/model"
	"gccache/internal/workload"
)

// TestAutotuneOffIsByteIdentical is the differential gate from the
// issue: with Autotune off (the default), a server replay must produce
// exactly the statistics of a bare cachesim replay of the same trace —
// the autotune wiring compiled in but disabled changes nothing.
func TestAutotuneOffIsByteIdentical(t *testing.T) {
	cfg := Config{
		Addr: "127.0.0.1:0", K: 64, B: 8, Policy: "iblp",
		Workload: "cyclic:n=96,len=20000", Seed: 11,
	}
	s := newTestServer(t, cfg)
	if s.tuner != nil {
		t.Fatal("tuner built with Autotune off")
	}
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.Wait() // non-looping replay runs to completion
	got := s.Stats()
	s.Stop()

	tr, err := workload.FromSpec(cfg.Workload, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	c, err := buildPolicy(cfg.Policy, cfg.K, model.NewFixed(cfg.B), cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	rec := cachesim.NewRecorder(c.Name())
	for _, it := range tr {
		rec.Observe(it, c.Access(it))
	}
	if want := rec.Stats(); got != want {
		t.Fatalf("autotune-off server stats diverge from bare replay:\n got %+v\nwant %+v", got, want)
	}
}

// TestAutotuneFlatModeResizes drives the full flat-mode loop: a cyclic
// scan of 48 items over a k=64 even split (B=1, so the block layer can
// never pay) must push the controller to i=k, applied live at a replay
// batch boundary and visible on the dashboard and /metrics.
func TestAutotuneFlatModeResizes(t *testing.T) {
	s := newTestServer(t, Config{
		Addr: "127.0.0.1:0", K: 64, B: 1, Policy: "iblp",
		Workload: "cyclic:n=48,len=50000", Loop: true,
		Autotune: true, AutotuneWindow: 96,
	})
	if s.tuner == nil {
		t.Fatal("no tuner with Autotune on")
	}
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for s.Tuner().Resizes() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no resize applied within 10s: %+v", s.Tuner().State())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := s.Tuner().State(); st.Live != 64 {
		t.Fatalf("resized to i=%d, want the pure item layer 64: %+v", st.Live, st)
	}
	s.mu.Lock()
	liveTarget := s.resizable.ItemLayerTarget()
	s.mu.Unlock()
	if liveTarget != 64 {
		t.Fatalf("live cache target %d after apply, want 64", liveTarget)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, body := get(t, ts.URL+"/"); !strings.Contains(body, "autotune:") {
		t.Errorf("dashboard missing the autotune section:\n%s", body)
	}
	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{`"autotune.resizes"`, `"autotune.live_target": 64`, `"autotune.windows"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s:\n%s", want, body)
		}
	}
}

// TestAutotuneConfigRejections pins the wiring's error paths: sharded
// replay and non-resizable policies cannot be autotuned.
func TestAutotuneConfigRejections(t *testing.T) {
	base := Config{Addr: ":0", K: 64, B: 8, Workload: "cyclic:n=48,len=1000", Autotune: true}

	sharded := base
	sharded.Shards = 4
	if _, err := New(sharded); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Errorf("sharded autotune accepted (err=%v)", err)
	}

	for _, p := range []string{"item-lru", "block-lru", "gcm"} {
		c := base
		c.Policy = p
		if _, err := New(c); err == nil || !strings.Contains(err.Error(), "resizing") {
			t.Errorf("policy %s accepted for autotune (err=%v)", p, err)
		}
	}

	cluster := base
	cluster.Policy = "item-lru"
	cluster.ClusterRing = writeRingFile(t, "127.0.0.1:9101")
	cluster.ClusterAddr = "127.0.0.1:9101"
	if _, err := New(cluster); err == nil || !strings.Contains(err.Error(), "resizing") {
		t.Errorf("non-resizable policy accepted for cluster autotune (err=%v)", err)
	}
}

// TestAutotuneClusterKeepsAccountingDuringResize is the satellite-4
// chaos-adjacent check: wire traffic keeps flowing while the controller
// applies a live resize under the node's batch mutex, and afterwards the
// client accounting identity holds with zero AckMismatches — no
// acknowledged batch was lost or double-counted across the resize.
func TestAutotuneClusterKeepsAccountingDuringResize(t *testing.T) {
	a1, a2 := freeLoopbackAddr(t), freeLoopbackAddr(t)
	rp := writeRingFile(t, a1, a2)
	newNode := func(addr string) *Server {
		t.Helper()
		s, err := New(Config{
			Addr: "127.0.0.1:0", K: 64, B: 1, Policy: "iblp",
			ClusterRing: rp, ClusterAddr: addr,
			Autotune: true, AutotuneWindow: 128, AutotuneUniverse: 1 << 12,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Stop)
		return s
	}
	s1, s2 := newNode(a1), newNode(a2)

	r, err := ring.New([]string{a1, a2}, cluster.DefaultReplicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.NewClient(r, cluster.ClientConfig{Timeout: 2 * time.Second})
	defer c.Close()

	// A cyclic scan of 96 items splits ~half per node: with B=1 and an
	// even k=64 split, each node's 48-ish residents thrash the 32-slot
	// item layer but fit i=64 — the controller must move.
	items := make([]model.Item, 96)
	for i := range items {
		items[i] = model.Item(i)
	}
	groups := map[int][]model.Item{}
	sent := int64(0)
	send := func() {
		for k := range groups {
			groups[k] = groups[k][:0]
		}
		c.Route(items, groups)
		for n := 0; n < r.Len(); n++ {
			if len(groups[n]) == 0 {
				continue
			}
			if err := c.Do(groups[n]); err != nil {
				t.Fatalf("Do: %v", err)
			}
			sent += int64(len(groups[n]))
		}
	}

	resized := func() bool { return s1.Tuner().Resizes()+s2.Tuner().Resizes() >= 1 }
	deadline := time.Now().Add(15 * time.Second)
	for !resized() {
		if time.Now().After(deadline) {
			t.Fatalf("no node resized within 15s: s1=%+v s2=%+v", s1.Tuner().State(), s2.Tuner().State())
		}
		send()
	}
	// Keep traffic flowing across and after the resize.
	for i := 0; i < 20; i++ {
		send()
	}

	st := c.Stats()
	if !st.Identity() {
		t.Fatalf("accounting identity broken after live resize: %+v", st)
	}
	if st.AckMismatches != 0 {
		t.Fatalf("%d acked batches not fully served across the resize", st.AckMismatches)
	}
	n1, n2 := s1.Stats(), s2.Stats()
	if got := n1.Accesses + n2.Accesses; got != sent {
		t.Fatalf("nodes account %d accesses, client sent %d", got, sent)
	}
	for _, ns := range []cachesim.Stats{n1, n2} {
		if ns.Hits+ns.Misses != ns.Accesses {
			t.Fatalf("node accounting identity broken: %+v", ns)
		}
	}
}
