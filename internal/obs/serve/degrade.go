package serve

import (
	"sync"
	"sync/atomic"

	"gccache/internal/obs"
)

// fanEvent is one event as delivered to a stream subscriber, stamped
// with the fan's global sequence number so consumers can detect gaps
// left by shedding.
type fanEvent struct {
	Seq int64
	obs.Event
}

// subscriber is one /events/stream consumer: a bounded channel plus its
// personal shed count.
type subscriber struct {
	ch      chan fanEvent
	dropped atomic.Int64
}

// eventFan fans live probe events to HTTP stream subscribers over
// bounded channels. Delivery never blocks: when a subscriber's buffer
// is full the event is shed for that subscriber and counted, so a slow
// or stalled consumer degrades its own stream instead of stalling the
// replay. With no subscribers Observe is a single atomic load.
type eventFan struct {
	nsubs   atomic.Int64
	seq     atomic.Int64
	dropped atomic.Int64 // total shed events across all subscribers

	mu sync.Mutex
	//gclint:guardedby mu
	subs map[int]*subscriber
	//gclint:guardedby mu
	next int
}

var _ obs.Probe = (*eventFan)(nil)

func newEventFan() *eventFan {
	return &eventFan{subs: make(map[int]*subscriber)}
}

// Observe implements obs.Probe: non-blocking best-effort delivery.
func (f *eventFan) Observe(e obs.Event) {
	if f.nsubs.Load() == 0 {
		return
	}
	fe := fanEvent{Seq: f.seq.Add(1), Event: e}
	f.mu.Lock()
	for _, s := range f.subs {
		select {
		case s.ch <- fe:
		default:
			s.dropped.Add(1)
			f.dropped.Add(1)
		}
	}
	f.mu.Unlock()
}

// Subscribe registers a consumer with the given buffer size and returns
// it with a cancel function. After cancel the channel is closed and no
// further events arrive.
func (f *eventFan) Subscribe(buf int) (*subscriber, func()) {
	if buf < 1 {
		buf = 1
	}
	s := &subscriber{ch: make(chan fanEvent, buf)}
	f.mu.Lock()
	id := f.next
	f.next++
	f.subs[id] = s
	f.mu.Unlock()
	f.nsubs.Add(1)
	var once sync.Once
	return s, func() {
		once.Do(func() {
			f.mu.Lock()
			delete(f.subs, id)
			f.mu.Unlock()
			f.nsubs.Add(-1)
			close(s.ch)
		})
	}
}

// CloseAll disconnects every subscriber — used at shutdown so stream
// handlers drain and return instead of holding connections open.
func (f *eventFan) CloseAll() {
	f.mu.Lock()
	subs := make([]*subscriber, 0, len(f.subs))
	for _, s := range f.subs {
		subs = append(subs, s)
	}
	f.subs = make(map[int]*subscriber)
	f.nsubs.Store(0)
	f.mu.Unlock()
	for _, s := range subs {
		close(s.ch)
	}
}

// Dropped returns the total events shed across all subscribers.
func (f *eventFan) Dropped() int64 { return f.dropped.Load() }

// Subscribers returns the current consumer count.
func (f *eventFan) Subscribers() int64 { return f.nsubs.Load() }
