package serve

import (
	"sync"
	"sync/atomic"

	"gccache/internal/obs"
)

// fanEvent is one event as delivered to a stream subscriber, stamped
// with the fan's global sequence number so consumers can detect gaps
// left by shedding.
type fanEvent struct {
	Seq int64
	obs.Event
}

// ctrlRingSize bounds the per-subscriber control-plane ring. Control
// actions are rate-capped at the source (the autotune controller fires
// at most one resize per window interval), so 64 slots cover minutes of
// history; overwrites are counted, never silent.
const ctrlRingSize = 64

// isControlPlane reports whether k is a control-plane event: one that
// records a management action on the cache rather than per-request data
// traffic. These must reach the dashboard even under shedding — a
// missed layer-resize makes the following miss-ratio shift look
// spontaneous.
func isControlPlane(k obs.Kind) bool { return k == obs.EvLayerResize }

// subscriber is one /events/stream consumer: a bounded channel for data
// events plus its personal shed count, and a tiny dedicated ring for
// control-plane events so they are never displaced by data floods.
type subscriber struct {
	ch      chan fanEvent
	dropped atomic.Int64

	// notify wakes the stream handler (capacity 1, non-blocking send)
	// when a control event lands while the data channel is quiet.
	notify chan struct{}

	ctrlMu sync.Mutex
	//gclint:guardedby ctrlMu
	ctrl [ctrlRingSize]fanEvent
	//gclint:guardedby ctrlMu
	ctrlStart int
	//gclint:guardedby ctrlMu
	ctrlLen int
}

// pushCtrl appends a control event to the ring, overwriting the oldest
// entry when full, and reports whether an overwrite happened.
func (s *subscriber) pushCtrl(fe fanEvent) (overwrote bool) {
	s.ctrlMu.Lock()
	if s.ctrlLen == ctrlRingSize {
		s.ctrlStart = (s.ctrlStart + 1) % ctrlRingSize
		s.ctrlLen--
		overwrote = true
	}
	s.ctrl[(s.ctrlStart+s.ctrlLen)%ctrlRingSize] = fe
	s.ctrlLen++
	s.ctrlMu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return overwrote
}

// popCtrl removes and returns the oldest pending control event.
func (s *subscriber) popCtrl() (fanEvent, bool) {
	s.ctrlMu.Lock()
	defer s.ctrlMu.Unlock()
	if s.ctrlLen == 0 {
		return fanEvent{}, false
	}
	fe := s.ctrl[s.ctrlStart]
	s.ctrlStart = (s.ctrlStart + 1) % ctrlRingSize
	s.ctrlLen--
	return fe, true
}

// eventFan fans live probe events to HTTP stream subscribers over
// bounded channels. Delivery never blocks: when a subscriber's buffer
// is full the event is shed for that subscriber and counted, so a slow
// or stalled consumer degrades its own stream instead of stalling the
// replay. Control-plane events (layer-resize) are exempt from shedding:
// they route through a tiny dedicated per-subscriber ring, so a data
// flood can never hide the control actions that explain it. With no
// subscribers Observe is a single atomic load.
type eventFan struct {
	nsubs          atomic.Int64
	seq            atomic.Int64
	dropped        atomic.Int64 // total shed data events across all subscribers
	ctrlOverwrites atomic.Int64 // control events overwritten in full rings

	mu sync.Mutex
	//gclint:guardedby mu
	subs map[int]*subscriber
	//gclint:guardedby mu
	next int
}

var _ obs.Probe = (*eventFan)(nil)

func newEventFan() *eventFan {
	return &eventFan{subs: make(map[int]*subscriber)}
}

// Observe implements obs.Probe: non-blocking best-effort delivery.
func (f *eventFan) Observe(e obs.Event) {
	if f.nsubs.Load() == 0 {
		return
	}
	fe := fanEvent{Seq: f.seq.Add(1), Event: e}
	ctrl := isControlPlane(e.Kind)
	f.mu.Lock()
	for _, s := range f.subs {
		if ctrl {
			if s.pushCtrl(fe) {
				f.ctrlOverwrites.Add(1)
			}
			continue
		}
		select {
		case s.ch <- fe:
		default:
			s.dropped.Add(1)
			f.dropped.Add(1)
		}
	}
	f.mu.Unlock()
}

// Subscribe registers a consumer with the given buffer size and returns
// it with a cancel function. After cancel the channel is closed and no
// further events arrive.
func (f *eventFan) Subscribe(buf int) (*subscriber, func()) {
	if buf < 1 {
		buf = 1
	}
	s := &subscriber{ch: make(chan fanEvent, buf), notify: make(chan struct{}, 1)}
	f.mu.Lock()
	id := f.next
	f.next++
	f.subs[id] = s
	f.mu.Unlock()
	f.nsubs.Add(1)
	var once sync.Once
	return s, func() {
		once.Do(func() {
			f.mu.Lock()
			delete(f.subs, id)
			f.mu.Unlock()
			f.nsubs.Add(-1)
			close(s.ch)
		})
	}
}

// CloseAll disconnects every subscriber — used at shutdown so stream
// handlers drain and return instead of holding connections open.
func (f *eventFan) CloseAll() {
	f.mu.Lock()
	subs := make([]*subscriber, 0, len(f.subs))
	for _, s := range f.subs {
		subs = append(subs, s)
	}
	f.subs = make(map[int]*subscriber)
	f.nsubs.Store(0)
	f.mu.Unlock()
	for _, s := range subs {
		close(s.ch)
	}
}

// Dropped returns the total data events shed across all subscribers.
func (f *eventFan) Dropped() int64 { return f.dropped.Load() }

// CtrlOverwrites returns the control-plane events lost to full control
// rings — nonzero only when a subscriber ignores its stream across more
// than ctrlRingSize control actions.
func (f *eventFan) CtrlOverwrites() int64 { return f.ctrlOverwrites.Load() }

// Subscribers returns the current consumer count.
func (f *eventFan) Subscribers() int64 { return f.nsubs.Load() }
