package obs_test

// Zero-allocation regression tests for the zero-cost-when-nil rule
// (see the package doc of internal/obs): every dense Access path must
// stay at 0 allocs/op with no probe attached, and the always-available
// probes (Counters, EventLog) must not push it above 0 either.

import (
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/policy"
)

const zaUniverse = 1 << 12

// densePolicies builds every dense-path policy at steady state.
func densePolicies() map[string]cachesim.Cache {
	g := model.NewFixed(16)
	caches := map[string]cachesim.Cache{
		"item-lru":  policy.NewItemLRUBounded(256, zaUniverse),
		"block-lru": policy.NewBlockLRUBounded(512, g, zaUniverse),
		"iblp":      core.NewIBLPEvenSplitBounded(512, g, zaUniverse),
		"gcm":       core.NewGCMBounded(512, g, 1, zaUniverse),
	}
	for _, c := range caches {
		for i := 0; i < zaUniverse*2; i++ {
			c.Access(model.Item(i % zaUniverse))
		}
	}
	return caches
}

func assertZeroAlloc(t *testing.T, name string, c cachesim.Cache) {
	t.Helper()
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		c.Access(model.Item(i % zaUniverse))
		i += 37
	}); avg != 0 {
		t.Errorf("%s: %.2f allocs/access, want 0", name, avg)
	}
}

// TestProbeZeroAllocNilProbe is the regression guard for the
// unattached case: the probe field alone must not cost an allocation.
func TestProbeZeroAllocNilProbe(t *testing.T) {
	for name, c := range densePolicies() {
		assertZeroAlloc(t, name+" (nil probe)", c)
	}
}

// TestProbeZeroAllocCountersAttached proves the cheapest probes stay
// allocation-free on the paid path too: per-kind atomic counters and
// the ring-buffer event log never allocate per event.
func TestProbeZeroAllocCountersAttached(t *testing.T) {
	for name, c := range densePolicies() {
		in, ok := c.(cachesim.Instrumented)
		if !ok {
			t.Fatalf("%s does not implement cachesim.Instrumented", name)
		}
		in.SetProbe(obs.Multi{&obs.Counters{}, obs.NewEventLog(128)})
		assertZeroAlloc(t, name+" (counters+events)", c)
	}
}

// TestProbeZeroAllocRecorder covers the recorder view: a bounded
// Recorder with a Counters probe attached must observe dense accesses
// without allocating (the miss-gap/load-burst histograms are flat
// arrays).
func TestProbeZeroAllocRecorder(t *testing.T) {
	g := model.NewFixed(16)
	c := core.NewIBLPEvenSplitBounded(512, g, zaUniverse)
	rec := cachesim.NewRecorderBounded(c.Name(), zaUniverse)
	rec.SetProbe(&obs.Counters{})
	for i := 0; i < zaUniverse*2; i++ {
		rec.Observe(model.Item(i%zaUniverse), c.Access(model.Item(i%zaUniverse)))
	}
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		it := model.Item(i % zaUniverse)
		rec.Observe(it, c.Access(it))
		i += 37
	}); avg != 0 {
		t.Errorf("probed recorder: %.2f allocs/access, want 0", avg)
	}
}
