package obs

import "testing"

// TestPercentileCeilRankRegression pins the fix for the floor-rank bug:
// Percentile used to compute the rank as int64(q·count), under-reporting
// the quantile by one rank whenever q·count was fractional — p50 of 3
// samples inspected rank 1 instead of the nearest-rank ceil(1.5) = 2.
// Samples are powers of two, so every sample owns its own bucket and the
// bucket lower bound IS the sample: any off-by-one rank is visible
// exactly.
func TestPercentileCeilRankRegression(t *testing.T) {
	// pow2 returns the n distinct samples 1, 2, 4, ..., 2^(n-1).
	fill := func(n int) *Histogram {
		h := NewHistogram("t", "u")
		for i := 0; i < n; i++ {
			h.Record(int64(1) << i)
		}
		return h
	}
	rank := func(n int, r int) int64 { _ = n; return int64(1) << (r - 1) } // value of the r-th smallest

	cases := []struct {
		count int
		q     float64
		rank  int // expected 1-based ceil rank: ceil(q·count), min 1
	}{
		{1, 0, 1}, {1, 0.5, 1}, {1, 1, 1},
		{2, 0.5, 1}, {2, 0.51, 2}, {2, 0.75, 2}, {2, 1, 2},
		// The foregrounded bug: p50 of 3 samples is rank ceil(1.5) = 2.
		{3, 0.5, 2},
		{3, 0.34, 2}, {3, 0.33, 1}, {3, 0.99, 3}, {3, 1, 3},
		// q outside [0,1] clamps.
		{3, -1, 1}, {3, 2, 3},
	}
	for _, c := range cases {
		h := fill(c.count)
		want := rank(c.count, c.rank)
		if got := h.Percentile(c.q); got != want {
			t.Errorf("count=%d q=%v: got %d, want rank %d (value %d)", c.count, c.q, got, c.rank, want)
		}
	}

	// count = 100: fifty samples of 2 and fifty of 8, so ranks 1–50 sit
	// in bucket [2,4) and ranks 51–100 in [8,16). The q=0.501 row is the
	// discriminator: ceil(50.1) = rank 51 → 8, where the floor bug read
	// rank 50 → 2.
	h := NewHistogram("t", "u")
	for i := 0; i < 50; i++ {
		h.Record(2)
		h.Record(8)
	}
	for _, c := range []struct {
		q    float64
		want int64
	}{{0.25, 2}, {0.499, 2}, {0.5, 2}, {0.501, 8}, {0.95, 8}, {0.99, 8}, {1, 8}} {
		if got := h.Percentile(c.q); got != c.want {
			t.Errorf("count=100 q=%v: got %d, want %d", c.q, got, c.want)
		}
	}
}

func TestPercentileEmptyHistogram(t *testing.T) {
	h := NewHistogram("t", "u")
	if got := h.Percentile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %d, want 0", got)
	}
}
