package policy

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/lrulist"
	"gccache/internal/model"
)

// AThreshold is the a-parameter policy family of §4.3: it caches at item
// granularity with LRU eviction, but once a distinct items of a block
// have been accessed (since the block was last fully loaded), the next
// miss on that block loads the *entire* block. Loads only ever happen on
// misses, as Definition 1 requires. Theorem 4 lower-bounds the
// competitive ratio of any deterministic policy in terms of its a.
//
//   - a = 1 loads the whole block on every miss while still evicting items
//     individually — the "load all, evict individually" design §4.4
//     recommends for k ≫ h (see NewBlockLoadItemEvict).
//   - a ≥ B never amplifies loads and behaves exactly like ItemLRU.
type AThreshold struct {
	capacity int
	a        int
	geo      model.Geometry
	order    *lrulist.List[model.Item]
	// touched tracks, per block, the distinct items accessed since the
	// block was last fully loaded. Entries are cleared on full load and
	// when a block's last resident item is evicted.
	touched   map[model.Block]map[model.Item]struct{}
	residents map[model.Block]int // resident item count per block
	rec       cachesim.Reconciler
	loaded    []model.Item
	evicted   []model.Item
	sibBuf    []model.Item // scratch: block enumeration
}

var _ cachesim.Cache = (*AThreshold)(nil)

// NewAThreshold returns an a-threshold cache of capacity k under g.
// It panics if k < 1, a < 1, or g is nil.
func NewAThreshold(k, a int, g model.Geometry) *AThreshold {
	if k < 1 {
		panic(fmt.Sprintf("policy: AThreshold capacity %d < 1", k))
	}
	if a < 1 {
		panic(fmt.Sprintf("policy: AThreshold a=%d < 1", a))
	}
	if g == nil {
		panic("policy: AThreshold nil geometry")
	}
	return &AThreshold{
		capacity:  k,
		a:         a,
		geo:       g,
		order:     lrulist.New[model.Item](k),
		touched:   make(map[model.Block]map[model.Item]struct{}),
		residents: make(map[model.Block]int),
	}
}

// NewBlockLoadItemEvict returns the a=1 member of the family: load the
// whole block on any miss, evict LRU items individually. §4.4 concludes
// this is the right design when the online cache is much larger than the
// comparison point.
func NewBlockLoadItemEvict(k int, g model.Geometry) *AThreshold {
	return NewAThreshold(k, 1, g)
}

// A returns the policy's distinct-access threshold.
func (c *AThreshold) A() int { return c.a }

// Name implements cachesim.Cache.
func (c *AThreshold) Name() string {
	if c.a == 1 {
		return "block-load-item-evict"
	}
	return fmt.Sprintf("a-threshold(a=%d)", c.a)
}

// Access implements cachesim.Cache.
func (c *AThreshold) Access(it model.Item) cachesim.Access {
	blk := c.geo.BlockOf(it)
	set := c.touched[blk]
	if set == nil {
		set = make(map[model.Item]struct{}, c.a)
		c.touched[blk] = set
	}
	set[it] = struct{}{}

	if c.order.MoveToFront(it) {
		// Hit: no load is permitted on a hit (Definition 1), so the
		// threshold, even if reached, waits for the next miss.
		return cachesim.Access{Hit: true}
	}

	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	if len(set) >= c.a {
		// Full-block load: siblings enter at load recency (just below
		// the requested item), displacing older items first.
		delete(c.touched, blk)
		c.sibBuf = model.AppendItemsOf(c.geo, c.sibBuf[:0], blk)
		for _, sib := range c.sibBuf {
			if sib != it {
				c.insert(sib, blk)
			}
		}
	}
	c.insert(it, blk) // requested item is MRU
	c.evictOverflow(it)
	// Under capacity pressure a full-block load can transiently insert
	// siblings that are evicted in the same step; report net changes.
	c.loaded, c.evicted = c.rec.NetChanges(c.loaded, c.evicted)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

// insert puts it at the MRU position if absent and records the load.
func (c *AThreshold) insert(it model.Item, blk model.Block) {
	if c.order.PushFront(it) {
		c.residents[blk]++
		c.loaded = append(c.loaded, it)
	} else {
		c.order.MoveToFront(it)
	}
}

func (c *AThreshold) evictOverflow(protect model.Item) {
	for c.order.Len() > c.capacity {
		victim, _ := c.order.Back()
		if victim == protect {
			// Only reachable if the cache holds a single over-large
			// block's worth of nothing but the protected item.
			break
		}
		c.order.Remove(victim)
		blk := c.geo.BlockOf(victim)
		c.residents[blk]--
		if c.residents[blk] == 0 {
			delete(c.residents, blk)
			delete(c.touched, blk)
		}
		c.evicted = append(c.evicted, victim)
	}
}

// Contains implements cachesim.Cache.
func (c *AThreshold) Contains(it model.Item) bool { return c.order.Contains(it) }

// Len implements cachesim.Cache.
func (c *AThreshold) Len() int { return c.order.Len() }

// Capacity implements cachesim.Cache.
func (c *AThreshold) Capacity() int { return c.capacity }

// Reset implements cachesim.Cache.
func (c *AThreshold) Reset() {
	c.order.Clear()
	clear(c.touched)
	clear(c.residents)
}
