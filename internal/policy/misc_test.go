package policy

import (
	"math/rand"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/trace"
)

func TestFIFOEvictsInsertionOrder(t *testing.T) {
	c := NewFIFO(2)
	mustMiss(t, c, 1)
	mustMiss(t, c, 2)
	mustHit(t, c, 1) // does NOT promote
	a := mustMiss(t, c, 3)
	if len(a.Evicted) != 1 || a.Evicted[0] != 1 {
		t.Fatalf("Evicted = %v, want [1] (FIFO ignores recency)", a.Evicted)
	}
}

func TestFIFOCapacityAndReset(t *testing.T) {
	c := NewFIFO(3)
	for i := 0; i < 10; i++ {
		c.Access(model.Item(i))
		checkInvariants(t, c)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset")
	}
	assertPanics(t, func() { NewFIFO(0) })
}

func TestRandomEvictStaysWithinCapacity(t *testing.T) {
	c := NewRandomEvict(5, 42)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		c.Access(model.Item(rng.Intn(40)))
		checkInvariants(t, c)
	}
}

func TestRandomEvictDeterministicWithSeed(t *testing.T) {
	tr := make(trace.Trace, 2000)
	rng := rand.New(rand.NewSource(9))
	for i := range tr {
		tr[i] = model.Item(rng.Intn(30))
	}
	a := cachesim.RunCold(NewRandomEvict(8, 7), tr)
	b := cachesim.RunCold(NewRandomEvict(8, 7), tr)
	if a.Misses != b.Misses {
		t.Errorf("same seed, different misses: %d vs %d", a.Misses, b.Misses)
	}
}

func TestRandomEvictHitDoesNotEvict(t *testing.T) {
	c := NewRandomEvict(2, 1)
	mustMiss(t, c, 1)
	mustHit(t, c, 1)
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	assertPanics(t, func() { NewRandomEvict(0, 1) })
}

func TestMarkingPhaseBehaviour(t *testing.T) {
	c := NewMarking(2, 3)
	mustMiss(t, c, 1)
	mustMiss(t, c, 2)
	// Both marked. Next miss starts a new phase then evicts one of them.
	mustMiss(t, c, 3)
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if !c.Contains(3) {
		t.Error("newly requested item absent")
	}
}

func TestMarkingNeverEvictsMarkedMidPhase(t *testing.T) {
	// Capacity 3; mark 1 and 2, leave 3 unmarked by phase structure:
	// access 1,2,3 (all marked on load). New phase on 4th distinct miss;
	// then 1 is re-marked by a hit, so the next eviction must not pick 1.
	for seed := int64(0); seed < 20; seed++ {
		c := NewMarking(3, seed)
		c.Access(1)
		c.Access(2)
		c.Access(3)
		c.Access(4) // phase reset, random victim, 4 marked
		if !c.Contains(4) {
			t.Fatal("4 absent")
		}
		// Whichever two of {1,2,3} remain, hit one to mark it.
		var markedSurvivor model.Item
		for _, it := range []model.Item{1, 2, 3} {
			if c.Contains(it) {
				markedSurvivor = it
				c.Access(it)
				break
			}
		}
		c.Access(5) // must evict the unmarked survivor, not markedSurvivor or 4
		if !c.Contains(markedSurvivor) {
			t.Fatalf("seed %d: marked item %d evicted mid-phase", seed, markedSurvivor)
		}
		if !c.Contains(4) {
			t.Fatalf("seed %d: marked item 4 evicted mid-phase", seed)
		}
	}
}

func TestMarkingCapacityInvariant(t *testing.T) {
	c := NewMarking(6, 5)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4000; i++ {
		c.Access(model.Item(rng.Intn(50)))
		checkInvariants(t, c)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset")
	}
	assertPanics(t, func() { NewMarking(0, 1) })
}

func TestAllPoliciesAgreeOnTrivialHit(t *testing.T) {
	g := model.NewFixed(4)
	caches := []cachesim.Cache{
		NewItemLRU(8),
		NewBlockLRU(8, g),
		NewFIFO(8),
		NewRandomEvict(8, 1),
		NewMarking(8, 1),
		NewAThreshold(8, 2, g),
		NewBlockLoadItemEvict(8, g),
	}
	for _, c := range caches {
		mustMiss(t, c, 1)
		mustHit(t, c, 1)
		if !c.Contains(1) {
			t.Errorf("%s: Contains(1) false", c.Name())
		}
		if c.Name() == "" {
			t.Errorf("unnamed policy %T", c)
		}
	}
}

func TestClockSecondChance(t *testing.T) {
	c := NewClock(2)
	mustMiss(t, c, 1)
	mustMiss(t, c, 2)
	mustHit(t, c, 1) // sets 1's reference bit
	// Miss on 3: hand at 0 (item 1, ref=1) → clear, advance; item 2
	// (ref=0) → evict 2.
	a := mustMiss(t, c, 3)
	if len(a.Evicted) != 1 || a.Evicted[0] != 2 {
		t.Fatalf("Evicted = %v, want [2] (second chance for 1)", a.Evicted)
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Error("contents wrong after sweep")
	}
}

func TestClockApproximatesLRU(t *testing.T) {
	// On a Zipf workload CLOCK should land within a modest factor of LRU.
	tr := make(trace.Trace, 30000)
	rng := rand.New(rand.NewSource(4))
	for i := range tr {
		tr[i] = model.Item(rng.Intn(200))
	}
	clock := cachesim.RunCold(NewClock(64), tr)
	lru := cachesim.RunCold(NewItemLRU(64), tr)
	if float64(clock.Misses) > 1.3*float64(lru.Misses) {
		t.Errorf("CLOCK misses %d vs LRU %d", clock.Misses, lru.Misses)
	}
}

func TestClockCapacityResetPanics(t *testing.T) {
	c := NewClock(4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		c.Access(model.Item(rng.Intn(30)))
		checkInvariants(t, c)
	}
	c.Reset()
	if c.Len() != 0 || c.Contains(1) {
		t.Error("Reset")
	}
	if c.Name() != "item-clock" {
		t.Error("Name")
	}
	assertPanics(t, func() { NewClock(0) })
}

func TestClockAllReferencedSweepsFullCircle(t *testing.T) {
	c := NewClock(3)
	for _, it := range []model.Item{1, 2, 3} {
		mustMiss(t, c, it)
	}
	for _, it := range []model.Item{1, 2, 3} {
		mustHit(t, c, it) // everything referenced
	}
	a := mustMiss(t, c, 4) // full sweep clears all bits, evicts slot 0
	if len(a.Evicted) != 1 || a.Evicted[0] != 1 {
		t.Fatalf("Evicted = %v, want [1]", a.Evicted)
	}
}
