package policy

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/lrulist"
	"gccache/internal/model"
)

// BlockLRU is the paper's Block Cache baseline: it raises the cache's own
// granularity to blocks — on a miss it loads *all* items of the requested
// block, and it evicts whole blocks in LRU order. It performs well on
// spatial locality but suffers the pollution penalty of Theorem 3: when
// only one item per block is live, the effective capacity shrinks by B×.
type BlockLRU struct {
	capacity int
	geo      model.Geometry
	order    *lrulist.List[model.Block]
	resident map[model.Block][]model.Item // items actually held per block
	present  map[model.Item]struct{}
	size     int // total items held
	loaded   []model.Item
	evicted  []model.Item
}

var _ cachesim.Cache = (*BlockLRU)(nil)

// NewBlockLRU returns a Block Cache holding at most k items under g.
// It panics if k < 1 or g is nil.
func NewBlockLRU(k int, g model.Geometry) *BlockLRU {
	if k < 1 {
		panic(fmt.Sprintf("policy: BlockLRU capacity %d < 1", k))
	}
	if g == nil {
		panic("policy: BlockLRU nil geometry")
	}
	return &BlockLRU{
		capacity: k,
		geo:      g,
		order:    lrulist.New[model.Block](k / g.BlockSize()),
		resident: make(map[model.Block][]model.Item),
		present:  make(map[model.Item]struct{}),
	}
}

// Name implements cachesim.Cache.
func (c *BlockLRU) Name() string { return "block-lru" }

// Access implements cachesim.Cache.
func (c *BlockLRU) Access(it model.Item) cachesim.Access {
	if _, ok := c.present[it]; ok {
		c.order.MoveToFront(c.geo.BlockOf(it))
		return cachesim.Access{Hit: true}
	}
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	blk := c.geo.BlockOf(it)

	// If a truncated copy of the block is resident (possible only when a
	// block exceeded capacity earlier), discard it before reloading.
	if old, ok := c.resident[blk]; ok {
		c.dropBlock(blk, old)
	}

	all := c.geo.ItemsOf(blk)
	// Degenerate case: a block larger than the whole cache. Load the
	// requested item plus as many siblings as fit.
	want := all
	if len(all) > c.capacity {
		want = truncateAround(all, it, c.capacity)
	}

	// Evict whole LRU blocks until the new block fits.
	for c.size+len(want) > c.capacity {
		victim, ok := c.order.Back()
		if !ok {
			break
		}
		c.dropBlock(victim, c.resident[victim])
	}

	hold := make([]model.Item, len(want))
	copy(hold, want)
	c.resident[blk] = hold
	c.order.PushFront(blk)
	c.size += len(hold)
	for _, x := range hold {
		c.present[x] = struct{}{}
		c.loaded = append(c.loaded, x)
	}
	// A truncated copy replaced in the same step would otherwise report
	// its surviving items as both evicted and loaded.
	c.loaded, c.evicted = cachesim.NetChanges(c.loaded, c.evicted)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

func (c *BlockLRU) dropBlock(blk model.Block, items []model.Item) {
	for _, x := range items {
		delete(c.present, x)
		c.evicted = append(c.evicted, x)
	}
	c.size -= len(items)
	delete(c.resident, blk)
	c.order.Remove(blk)
}

// truncateAround returns up to n items of all, guaranteed to include must.
func truncateAround(all []model.Item, must model.Item, n int) []model.Item {
	out := make([]model.Item, 0, n)
	out = append(out, must)
	for _, x := range all {
		if len(out) >= n {
			break
		}
		if x != must {
			out = append(out, x)
		}
	}
	return out
}

// Contains implements cachesim.Cache.
func (c *BlockLRU) Contains(it model.Item) bool {
	_, ok := c.present[it]
	return ok
}

// Len implements cachesim.Cache.
func (c *BlockLRU) Len() int { return c.size }

// Capacity implements cachesim.Cache.
func (c *BlockLRU) Capacity() int { return c.capacity }

// Reset implements cachesim.Cache.
func (c *BlockLRU) Reset() {
	c.order.Clear()
	clear(c.resident)
	clear(c.present)
	c.size = 0
}
