package policy

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/lrulist"
	"gccache/internal/model"
	"gccache/internal/obs"
)

// BlockLRU is the paper's Block Cache baseline: it raises the cache's own
// granularity to blocks — on a miss it loads *all* items of the requested
// block, and it evicts whole blocks in LRU order. It performs well on
// spatial locality but suffers the pollution penalty of Theorem 3: when
// only one item per block is live, the effective capacity shrinks by B×.
//
// Two interchangeable representations back the policy. The generic path
// tracks per-block resident slices and an item-membership map and accepts
// any item ID. The bounded (dense) path — NewBlockLRUBounded — replaces
// both maps with flat bitsets over a declared item universe and keys the
// LRU order with lrulist.Dense, so steady-state accesses neither hash nor
// allocate. Eviction decisions are identical on both paths.
type BlockLRU struct {
	capacity int
	geo      model.Geometry
	order    lrulist.Order[model.Block]
	size     int // total items held

	// Generic path (nil on the dense path):
	resident map[model.Block][]model.Item // items actually held per block
	present  map[model.Item]struct{}

	// Dense path (nil on the generic path): presentBits[it] is item
	// membership; a block's resident set is re-derived from the geometry
	// filtered by presentBits (blocks are disjoint, so the bits of a
	// resident block belong to it alone).
	presentBits []bool

	rec     cachesim.Reconciler
	loaded  []model.Item
	evicted []model.Item
	want    []model.Item // scratch: the item set being admitted
	trunc   []model.Item // scratch: truncated admission set (oversized blocks)
	scratch []model.Item // scratch: victim-block enumeration
	probe   obs.Probe
}

var (
	_ cachesim.Cache        = (*BlockLRU)(nil)
	_ cachesim.Instrumented = (*BlockLRU)(nil)
)

// NewBlockLRU returns a Block Cache holding at most k items under g.
// It panics if k < 1 or g is nil.
func NewBlockLRU(k int, g model.Geometry) *BlockLRU {
	if k < 1 {
		panic(fmt.Sprintf("policy: BlockLRU capacity %d < 1", k))
	}
	if g == nil {
		panic("policy: BlockLRU nil geometry")
	}
	return &BlockLRU{
		capacity: k,
		geo:      g,
		order:    lrulist.New[model.Block](k / g.BlockSize()),
		resident: make(map[model.Block][]model.Item),
		present:  make(map[model.Item]struct{}),
	}
}

// NewBlockLRUBounded returns a Block Cache on the dense path for item IDs
// [0, universe): flat bitset membership, a Dense block-LRU order, and an
// array-backed net-change reconciler — no map operations and no steady-
// state allocation. The bound is expanded to cover whole blocks (see
// model.ItemUniverse); accessing an item beyond the expanded bound
// panics. It falls back to the generic representation when universe is
// out of the bounded range or no block-ID bound is derivable from g.
func NewBlockLRUBounded(k int, g model.Geometry, universe int) *BlockLRU {
	c := NewBlockLRU(k, g)
	universe = model.ItemUniverse(g, universe)
	blockUniverse := model.BlockUniverse(g, universe)
	if universe <= 0 || universe > cachesim.MaxBoundedUniverse ||
		blockUniverse <= 0 || blockUniverse > cachesim.MaxBoundedUniverse {
		return c
	}
	c.resident = nil
	c.present = nil
	c.presentBits = make([]bool, universe)
	c.order = lrulist.NewDense[model.Block](blockUniverse)
	c.rec = *cachesim.NewReconciler(universe)
	return c
}

// Name implements cachesim.Cache.
func (c *BlockLRU) Name() string { return "block-lru" }

// Access implements cachesim.Cache.
func (c *BlockLRU) Access(it model.Item) cachesim.Access {
	if c.presentBits != nil {
		return c.accessDense(it)
	}
	if _, ok := c.present[it]; ok {
		c.order.MoveToFront(c.geo.BlockOf(it))
		if c.probe != nil {
			c.probe.Observe(obs.Event{Kind: obs.EvHit, Item: it, Block: c.geo.BlockOf(it)})
		}
		return cachesim.Access{Hit: true}
	}
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	blk := c.geo.BlockOf(it)

	// If a truncated copy of the block is resident (possible only when a
	// block exceeded capacity earlier), discard it before reloading.
	if old, ok := c.resident[blk]; ok {
		c.dropBlock(blk, old)
	}

	c.want = model.AppendItemsOf(c.geo, c.want[:0], blk)
	// Degenerate case: a block larger than the whole cache. Load the
	// requested item plus as many siblings as fit.
	want := c.want
	if len(want) > c.capacity {
		c.trunc = truncateAround(c.trunc, want, it, c.capacity)
		want = c.trunc
	}

	// Evict whole LRU blocks until the new block fits.
	for c.size+len(want) > c.capacity {
		victim, ok := c.order.Back()
		if !ok {
			break
		}
		c.dropBlock(victim, c.resident[victim])
	}

	hold := make([]model.Item, len(want))
	copy(hold, want)
	c.resident[blk] = hold
	c.order.PushFront(blk)
	c.size += len(hold)
	for _, x := range hold {
		c.present[x] = struct{}{}
		c.loaded = append(c.loaded, x)
	}
	// A truncated copy replaced in the same step would otherwise report
	// its surviving items as both evicted and loaded.
	c.loaded, c.evicted = c.rec.NetChanges(c.loaded, c.evicted)
	c.emitMiss(it, blk)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

// emitMiss reports one miss's net changes to the probe: the unit-cost
// block load plus per-item load/evict events.
//
//gclint:hotpath
func (c *BlockLRU) emitMiss(it model.Item, blk model.Block) {
	if c.probe == nil {
		return
	}
	c.probe.Observe(obs.Event{Kind: obs.EvBlockLoad, Item: it, Block: blk, N: int32(len(c.loaded))})
	for _, x := range c.loaded {
		c.probe.Observe(obs.Event{Kind: obs.EvLoad, Item: x, Block: blk})
	}
	for _, x := range c.evicted {
		c.probe.Observe(obs.Event{Kind: obs.EvEvict, Item: x, Block: c.geo.BlockOf(x)})
	}
}

// SetProbe implements cachesim.Instrumented. A nil probe restores the
// unobserved fast path.
func (c *BlockLRU) SetProbe(p obs.Probe) { c.probe = p }

// accessDense is Access on the bitset representation; decisions and
// reported net changes are identical to the generic path.
//
//gclint:hotpath
func (c *BlockLRU) accessDense(it model.Item) cachesim.Access {
	if c.presentBits[it] {
		c.order.MoveToFront(c.geo.BlockOf(it))
		if c.probe != nil {
			c.probe.Observe(obs.Event{Kind: obs.EvHit, Item: it, Block: c.geo.BlockOf(it)})
		}
		return cachesim.Access{Hit: true}
	}
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	blk := c.geo.BlockOf(it)

	if c.order.Contains(blk) {
		c.dropBlockDense(blk)
	}

	c.want = model.AppendItemsOf(c.geo, c.want[:0], blk)
	want := c.want
	if len(want) > c.capacity {
		c.trunc = truncateAround(c.trunc, want, it, c.capacity)
		want = c.trunc
	}

	for c.size+len(want) > c.capacity {
		victim, ok := c.order.Back()
		if !ok {
			break
		}
		c.dropBlockDense(victim)
	}

	c.order.PushFront(blk)
	c.size += len(want)
	for _, x := range want {
		c.presentBits[x] = true
		c.loaded = append(c.loaded, x)
	}
	c.loaded, c.evicted = c.rec.NetChanges(c.loaded, c.evicted)
	c.emitMiss(it, blk)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

func (c *BlockLRU) dropBlock(blk model.Block, items []model.Item) {
	for _, x := range items {
		delete(c.present, x)
		c.evicted = append(c.evicted, x)
	}
	c.size -= len(items)
	delete(c.resident, blk)
	c.order.Remove(blk)
}

// dropBlockDense evicts blk, deriving its resident set from the bitset:
// blocks are disjoint, so exactly the set items of blk belong to it.
//
//gclint:hotpath
func (c *BlockLRU) dropBlockDense(blk model.Block) {
	c.scratch = model.AppendItemsOf(c.geo, c.scratch[:0], blk)
	for _, x := range c.scratch {
		if c.presentBits[x] {
			c.presentBits[x] = false
			c.evicted = append(c.evicted, x)
			c.size--
		}
	}
	c.order.Remove(blk)
}

// truncateAround fills dst with up to n items of all, guaranteed to
// include must, and returns the filled slice. dst is a reusable
// scratch: it grows to n once, after which truncation is
// allocation-free (blocks wider than the layer truncate on every
// admission, so this runs in the replay steady state).
func truncateAround(dst, all []model.Item, must model.Item, n int) []model.Item {
	dst = append(dst[:0], must)
	for _, x := range all {
		if len(dst) >= n {
			break
		}
		if x != must {
			dst = append(dst, x)
		}
	}
	return dst
}

// Contains implements cachesim.Cache.
func (c *BlockLRU) Contains(it model.Item) bool {
	if c.presentBits != nil {
		return c.presentBits[it]
	}
	_, ok := c.present[it]
	return ok
}

// Len implements cachesim.Cache.
func (c *BlockLRU) Len() int { return c.size }

// Capacity implements cachesim.Cache.
func (c *BlockLRU) Capacity() int { return c.capacity }

// Reset implements cachesim.Cache.
func (c *BlockLRU) Reset() {
	c.order.Clear()
	if c.presentBits != nil {
		clear(c.presentBits)
	} else {
		clear(c.resident)
		clear(c.present)
	}
	c.size = 0
}
