package policy

import (
	"fmt"
	"math/rand"

	"gccache/internal/cachesim"
	"gccache/internal/model"
)

// RandomEvict is an Item Cache that evicts a uniformly random resident
// item on a miss. It is the simplest randomized reference point; note
// that the paper's lower bounds (§4) are for deterministic policies, and
// §6 discusses why randomization does not remove the comparison-size
// dependence.
type RandomEvict struct {
	capacity int
	rng      *rand.Rand
	items    []model.Item       // indexable set for O(1) random choice
	index    map[model.Item]int // item -> position in items
	loaded   []model.Item
	evicted  []model.Item
}

var _ cachesim.Cache = (*RandomEvict)(nil)

// NewRandomEvict returns a random-eviction Item Cache of capacity k with
// the given seed. It panics if k < 1.
func NewRandomEvict(k int, seed int64) *RandomEvict {
	if k < 1 {
		panic(fmt.Sprintf("policy: RandomEvict capacity %d < 1", k))
	}
	return &RandomEvict{
		capacity: k,
		rng:      rand.New(rand.NewSource(seed)),
		index:    make(map[model.Item]int, k),
	}
}

// Name implements cachesim.Cache.
func (c *RandomEvict) Name() string { return "item-random" }

// Access implements cachesim.Cache.
func (c *RandomEvict) Access(it model.Item) cachesim.Access {
	if _, ok := c.index[it]; ok {
		return cachesim.Access{Hit: true}
	}
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	if len(c.items) >= c.capacity {
		pos := c.rng.Intn(len(c.items))
		victim := c.items[pos]
		c.removeAt(pos)
		c.evicted = append(c.evicted, victim)
	}
	c.index[it] = len(c.items)
	c.items = append(c.items, it)
	c.loaded = append(c.loaded, it)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

func (c *RandomEvict) removeAt(pos int) {
	last := len(c.items) - 1
	victim := c.items[pos]
	c.items[pos] = c.items[last]
	c.index[c.items[pos]] = pos
	c.items = c.items[:last]
	delete(c.index, victim)
}

// Contains implements cachesim.Cache.
func (c *RandomEvict) Contains(it model.Item) bool {
	_, ok := c.index[it]
	return ok
}

// Len implements cachesim.Cache.
func (c *RandomEvict) Len() int { return len(c.items) }

// Capacity implements cachesim.Cache.
func (c *RandomEvict) Capacity() int { return c.capacity }

// Reset implements cachesim.Cache.
func (c *RandomEvict) Reset() {
	c.items = c.items[:0]
	clear(c.index)
}

// Reseed implements cachesim.Reseeder: it restores the rng to the state
// of a fresh NewRandomEvict with the given seed, so Reseed+Reset on a
// pooled instance reproduces a newly constructed cache exactly.
func (c *RandomEvict) Reseed(seed int64) { c.rng = rand.New(rand.NewSource(seed)) }

var _ cachesim.Reseeder = (*RandomEvict)(nil)
