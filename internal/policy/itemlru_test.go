package policy

import (
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/trace"
)

func TestItemLRUBasicEviction(t *testing.T) {
	c := NewItemLRU(2)
	mustMiss(t, c, 1)
	mustMiss(t, c, 2)
	mustHit(t, c, 1) // promote 1; LRU is 2
	a := c.Access(3) // evicts 2
	if a.Hit {
		t.Fatal("unexpected hit on 3")
	}
	if len(a.Evicted) != 1 || a.Evicted[0] != 2 {
		t.Fatalf("Evicted = %v, want [2]", a.Evicted)
	}
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Error("wrong contents after eviction")
	}
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Errorf("Len=%d Cap=%d", c.Len(), c.Capacity())
	}
}

func TestItemLRUSequentialScanMissesAll(t *testing.T) {
	c := NewItemLRU(8)
	tr := make(trace.Trace, 0, 100)
	for i := 0; i < 100; i++ {
		tr = append(tr, model.Item(i))
	}
	s := cachesim.Run(c, tr)
	if s.Misses != 100 || s.Hits != 0 {
		t.Errorf("scan: %+v", s)
	}
}

func TestItemLRUWorkingSetFits(t *testing.T) {
	c := NewItemLRU(4)
	tr := trace.Trace{0, 1, 2, 3}.Repeat(25)
	s := cachesim.Run(c, tr)
	if s.Misses != 4 {
		t.Errorf("misses = %d, want 4 (cold only)", s.Misses)
	}
	if s.TemporalHits != 96 || s.SpatialHits != 0 {
		t.Errorf("hits split = %d/%d", s.TemporalHits, s.SpatialHits)
	}
}

func TestItemLRUReset(t *testing.T) {
	c := NewItemLRU(2)
	c.Access(1)
	c.Reset()
	if c.Len() != 0 || c.Contains(1) {
		t.Error("Reset did not clear")
	}
}

func TestItemLRUPanicsOnBadCapacity(t *testing.T) {
	assertPanics(t, func() { NewItemLRU(0) })
}

func TestItemLRUNeverLoadsSiblings(t *testing.T) {
	c := NewItemLRU(10)
	a := c.Access(5)
	if len(a.Loaded) != 1 || a.Loaded[0] != 5 {
		t.Errorf("Loaded = %v, want [5]", a.Loaded)
	}
}

// Helpers shared by the policy tests.

func mustHit(t *testing.T, c cachesim.Cache, it model.Item) cachesim.Access {
	t.Helper()
	a := c.Access(it)
	if !a.Hit {
		t.Fatalf("%s: access %d: want hit", c.Name(), it)
	}
	return a
}

func mustMiss(t *testing.T, c cachesim.Cache, it model.Item) cachesim.Access {
	t.Helper()
	a := c.Access(it)
	if a.Hit {
		t.Fatalf("%s: access %d: want miss", c.Name(), it)
	}
	return a
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// checkInvariants verifies the universal cache invariants after a run.
func checkInvariants(t *testing.T, c cachesim.Cache) {
	t.Helper()
	if c.Len() > c.Capacity() {
		t.Fatalf("%s: Len %d > Capacity %d", c.Name(), c.Len(), c.Capacity())
	}
}
