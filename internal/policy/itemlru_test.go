package policy

import (
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/trace"
)

func TestItemLRUBasicEviction(t *testing.T) {
	c := NewItemLRU(2)
	mustMiss(t, c, 1)
	mustMiss(t, c, 2)
	mustHit(t, c, 1) // promote 1; LRU is 2
	a := c.Access(3) // evicts 2
	if a.Hit {
		t.Fatal("unexpected hit on 3")
	}
	if len(a.Evicted) != 1 || a.Evicted[0] != 2 {
		t.Fatalf("Evicted = %v, want [2]", a.Evicted)
	}
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Error("wrong contents after eviction")
	}
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Errorf("Len=%d Cap=%d", c.Len(), c.Capacity())
	}
}

func TestItemLRUSequentialScanMissesAll(t *testing.T) {
	c := NewItemLRU(8)
	tr := make(trace.Trace, 0, 100)
	for i := 0; i < 100; i++ {
		tr = append(tr, model.Item(i))
	}
	s := cachesim.Run(c, tr)
	if s.Misses != 100 || s.Hits != 0 {
		t.Errorf("scan: %+v", s)
	}
}

func TestItemLRUWorkingSetFits(t *testing.T) {
	c := NewItemLRU(4)
	tr := trace.Trace{0, 1, 2, 3}.Repeat(25)
	s := cachesim.Run(c, tr)
	if s.Misses != 4 {
		t.Errorf("misses = %d, want 4 (cold only)", s.Misses)
	}
	if s.TemporalHits != 96 || s.SpatialHits != 0 {
		t.Errorf("hits split = %d/%d", s.TemporalHits, s.SpatialHits)
	}
}

func TestItemLRUReset(t *testing.T) {
	c := NewItemLRU(2)
	c.Access(1)
	c.Reset()
	if c.Len() != 0 || c.Contains(1) {
		t.Error("Reset did not clear")
	}
}

func TestItemLRUPanicsOnBadCapacity(t *testing.T) {
	assertPanics(t, func() { NewItemLRU(0) })
}

func TestItemLRUNeverLoadsSiblings(t *testing.T) {
	c := NewItemLRU(10)
	a := c.Access(5)
	if len(a.Loaded) != 1 || a.Loaded[0] != 5 {
		t.Errorf("Loaded = %v, want [5]", a.Loaded)
	}
}

// Helpers shared by the policy tests.

func mustHit(t *testing.T, c cachesim.Cache, it model.Item) cachesim.Access {
	t.Helper()
	a := c.Access(it)
	if !a.Hit {
		t.Fatalf("%s: access %d: want hit", c.Name(), it)
	}
	return a
}

func mustMiss(t *testing.T, c cachesim.Cache, it model.Item) cachesim.Access {
	t.Helper()
	a := c.Access(it)
	if a.Hit {
		t.Fatalf("%s: access %d: want miss", c.Name(), it)
	}
	return a
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// checkInvariants verifies the universal cache invariants after a run.
func checkInvariants(t *testing.T, c cachesim.Cache) {
	t.Helper()
	if c.Len() > c.Capacity() {
		t.Fatalf("%s: Len %d > Capacity %d", c.Name(), c.Len(), c.Capacity())
	}
}

// TestItemLRUAppendRecency pins the MRU-first dump order cluster
// handoff replays: the dump after a known access pattern lists items
// from most to least recently used, for both list and dense backings.
func TestItemLRUAppendRecency(t *testing.T) {
	for _, c := range []*ItemLRU{NewItemLRU(4), NewItemLRUBounded(4, 64)} {
		for _, it := range []model.Item{1, 2, 3, 4, 2, 1} {
			c.Access(it)
		}
		got := c.AppendRecency(nil)
		want := []model.Item{1, 2, 4, 3}
		if len(got) != len(want) {
			t.Fatalf("dumped %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dumped %v, want %v", got, want)
			}
		}
		// Append semantics: an existing prefix is preserved.
		pre := c.AppendRecency([]model.Item{99})
		if pre[0] != 99 || len(pre) != 5 {
			t.Fatalf("AppendRecency clobbered the prefix: %v", pre)
		}
	}
}
