package policy

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/lrulist"
	"gccache/internal/model"
)

// FIFO is a first-in-first-out Item Cache: hits do not refresh an item's
// position, so eviction order is pure insertion order. Like every Item
// Cache it is subject to the Theorem 2 lower bound.
type FIFO struct {
	capacity int
	order    *lrulist.List[model.Item]
	loaded   []model.Item
	evicted  []model.Item
}

var _ cachesim.Cache = (*FIFO)(nil)

// NewFIFO returns a FIFO Item Cache of capacity k items. It panics if
// k < 1.
func NewFIFO(k int) *FIFO {
	if k < 1 {
		panic(fmt.Sprintf("policy: FIFO capacity %d < 1", k))
	}
	return &FIFO{capacity: k, order: lrulist.New[model.Item](k)}
}

// Name implements cachesim.Cache.
func (c *FIFO) Name() string { return "item-fifo" }

// Access implements cachesim.Cache.
func (c *FIFO) Access(it model.Item) cachesim.Access {
	if c.order.Contains(it) {
		return cachesim.Access{Hit: true} // no promotion: FIFO
	}
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	c.order.PushFront(it)
	c.loaded = append(c.loaded, it)
	for c.order.Len() > c.capacity {
		victim, _ := c.order.PopBack()
		c.evicted = append(c.evicted, victim)
	}
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

// Contains implements cachesim.Cache.
func (c *FIFO) Contains(it model.Item) bool { return c.order.Contains(it) }

// Len implements cachesim.Cache.
func (c *FIFO) Len() int { return c.order.Len() }

// Capacity implements cachesim.Cache.
func (c *FIFO) Capacity() int { return c.capacity }

// Reset implements cachesim.Cache.
func (c *FIFO) Reset() { c.order.Clear() }
