package policy

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/model"
)

// Clock is the classic second-chance Item Cache: resident items sit on a
// circular buffer with a reference bit; the hand sweeps, clearing bits,
// and evicts the first unreferenced item. It approximates LRU with O(1)
// state updates and is the eviction engine of many real systems — a
// useful Item Cache reference point that, like all Item Caches, is
// subject to the Theorem 2 lower bound.
type Clock struct {
	capacity int
	ring     []model.Item
	refbit   []bool
	index    map[model.Item]int // item -> ring slot
	hand     int
	loaded   []model.Item
	evicted  []model.Item
}

var _ cachesim.Cache = (*Clock)(nil)

// NewClock returns a CLOCK Item Cache of capacity k. It panics if k < 1.
func NewClock(k int) *Clock {
	if k < 1 {
		panic(fmt.Sprintf("policy: Clock capacity %d < 1", k))
	}
	return &Clock{
		capacity: k,
		ring:     make([]model.Item, 0, k),
		refbit:   make([]bool, 0, k),
		index:    make(map[model.Item]int, k),
	}
}

// Name implements cachesim.Cache.
func (c *Clock) Name() string { return "item-clock" }

// Access implements cachesim.Cache.
func (c *Clock) Access(it model.Item) cachesim.Access {
	if slot, ok := c.index[it]; ok {
		c.refbit[slot] = true
		return cachesim.Access{Hit: true}
	}
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	if len(c.ring) < c.capacity {
		c.index[it] = len(c.ring)
		c.ring = append(c.ring, it)
		c.refbit = append(c.refbit, false)
		c.loaded = append(c.loaded, it)
		return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
	}
	// Sweep: clear reference bits until an unreferenced victim appears.
	for c.refbit[c.hand] {
		c.refbit[c.hand] = false
		c.hand = (c.hand + 1) % c.capacity
	}
	victim := c.ring[c.hand]
	delete(c.index, victim)
	c.evicted = append(c.evicted, victim)
	c.ring[c.hand] = it
	c.refbit[c.hand] = false
	c.index[it] = c.hand
	c.hand = (c.hand + 1) % c.capacity
	c.loaded = append(c.loaded, it)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

// Contains implements cachesim.Cache.
func (c *Clock) Contains(it model.Item) bool {
	_, ok := c.index[it]
	return ok
}

// Len implements cachesim.Cache.
func (c *Clock) Len() int { return len(c.ring) }

// Capacity implements cachesim.Cache.
func (c *Clock) Capacity() int { return c.capacity }

// Reset implements cachesim.Cache.
func (c *Clock) Reset() {
	c.ring = c.ring[:0]
	c.refbit = c.refbit[:0]
	clear(c.index)
	c.hand = 0
}
