package policy

import (
	"math/rand"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

func TestFootprintFirstTouchLoadsOnlyItem(t *testing.T) {
	g := model.NewFixed(8)
	c := NewFootprint(32, g)
	a := mustMiss(t, c, 3)
	if len(a.Loaded) != 1 || a.Loaded[0] != 3 {
		t.Fatalf("first touch loaded %v, want just the item", a.Loaded)
	}
}

func TestFootprintLearnsUsedOffsets(t *testing.T) {
	g := model.NewFixed(8)
	c := NewFootprint(4, g) // small: residencies end quickly
	// First residency of block 0: touch items 0 and 2.
	mustMiss(t, c, 0)
	mustMiss(t, c, 2)
	// Evict them by filling with other blocks.
	mustMiss(t, c, 100)
	mustMiss(t, c, 200)
	mustMiss(t, c, 300)
	mustMiss(t, c, 400)
	if c.Contains(0) || c.Contains(2) {
		t.Fatal("block 0 items still resident")
	}
	if fp := c.PredictedFootprint(0); fp != 0b101 {
		t.Fatalf("learned footprint %b, want 101", fp)
	}
	// Second residency: the miss on 0 prefetches 2 as well.
	a := mustMiss(t, c, 0)
	if len(a.Loaded) != 2 {
		t.Fatalf("predicted load = %v, want {0, 2}", a.Loaded)
	}
	mustHit(t, c, 2)
}

func TestFootprintBeatsExtremesOnPartialBlockReuse(t *testing.T) {
	// Workload: each block has exactly half its items live, revisited in
	// cycles. The item cache pays per item; the block cache wastes half
	// its space on dead items; footprint learns the live halves.
	B := 8
	g := model.NewFixed(B)
	k := 64
	nBlocks := 12 // live footprint = 12×4 = 48 ≤ k; full blocks = 96 > k
	var cycle trace.Trace
	for blk := 0; blk < nBlocks; blk++ {
		for off := 0; off < B; off += 2 { // even offsets only
			cycle = append(cycle, model.Item(blk*B+off))
		}
	}
	tr := cycle.Repeat(200)
	fp := cachesim.RunCold(NewFootprint(k, g), tr)
	item := cachesim.RunCold(NewItemLRU(k), tr)
	blkc := cachesim.RunCold(NewBlockLRU(k, g), tr)
	// Everything fits for footprint and item-lru (48 live ≤ 64): both
	// converge to cold misses only; block-lru (96 > 64) thrashes.
	if fp.MissRatio() > 0.02 {
		t.Errorf("footprint miss ratio %.4f, want ≈ cold only", fp.MissRatio())
	}
	if blkc.Misses < 10*fp.Misses {
		t.Errorf("block-lru %d misses vs footprint %d: pollution expected", blkc.Misses, fp.Misses)
	}
	if fp.Misses > item.Misses {
		t.Errorf("footprint %d misses should not exceed item-lru %d", fp.Misses, item.Misses)
	}
	// And under capacity pressure (k half the live set), footprint's
	// prefetch of live halves beats the item cache's one-at-a-time loads.
	k2 := 24
	fp2 := cachesim.RunCold(NewFootprint(k2, g), tr)
	item2 := cachesim.RunCold(NewItemLRU(k2), tr)
	if fp2.Misses*2 > item2.Misses {
		t.Errorf("under pressure: footprint %d vs item-lru %d — expected ≈¼ the misses",
			fp2.Misses, item2.Misses)
	}
}

func TestFootprintCapacityAndConformance(t *testing.T) {
	g := model.NewFixed(8)
	v := cachesim.NewValidator(NewFootprint(24, g), g)
	tr, err := workload.BlockRuns(workload.BlockRunsConfig{
		NumBlocks: 32, BlockSize: 8, MeanRunLength: 4, Length: 15000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cachesim.Run(v, tr)
	if err := v.Err(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	c := NewFootprint(10, g)
	for i := 0; i < 5000; i++ {
		c.Access(model.Item(rng.Intn(200)))
		checkInvariants(t, c)
	}
	c.Reset()
	if c.Len() != 0 || c.PredictedFootprint(0) != 0 {
		t.Error("Reset")
	}
}

func TestFootprintPanics(t *testing.T) {
	g := model.NewFixed(8)
	assertPanics(t, func() { NewFootprint(0, g) })
	assertPanics(t, func() { NewFootprint(8, nil) })
	assertPanics(t, func() { NewFootprint(8, model.NewFixed(128)) })
	if NewFootprint(8, g).Name() != "footprint" {
		t.Error("Name")
	}
}
