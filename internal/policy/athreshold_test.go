package policy

import (
	"math/rand"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/trace"
)

func TestBlockLoadItemEvictLoadsFullBlockOnMiss(t *testing.T) {
	g := model.NewFixed(4)
	c := NewBlockLoadItemEvict(8, g)
	a := mustMiss(t, c, 1)
	if len(a.Loaded) != 4 {
		t.Fatalf("Loaded = %v, want full block", a.Loaded)
	}
	mustHit(t, c, 0)
	mustHit(t, c, 2)
	mustHit(t, c, 3)
}

func TestBlockLoadItemEvictEvictsIndividually(t *testing.T) {
	g := model.NewFixed(4)
	c := NewBlockLoadItemEvict(6, g)
	mustMiss(t, c, 0) // loads 0..3; 0 is MRU
	mustMiss(t, c, 4) // loads 4..7, capacity 6: evicts two items, not a block
	// 0 and 4 were the requested (MRU) items; they must survive.
	if !c.Contains(0) || !c.Contains(4) {
		t.Error("requested items evicted")
	}
	if c.Len() != 6 {
		t.Errorf("Len = %d, want 6", c.Len())
	}
}

func TestAThresholdWaitsForADistinctAccesses(t *testing.T) {
	g := model.NewFixed(4)
	c := NewAThreshold(16, 3, g)
	a := mustMiss(t, c, 0) // 1 distinct
	if len(a.Loaded) != 1 {
		t.Fatalf("first miss loaded %v", a.Loaded)
	}
	a = mustMiss(t, c, 1) // 2 distinct
	if len(a.Loaded) != 1 {
		t.Fatalf("second miss loaded %v", a.Loaded)
	}
	a = mustMiss(t, c, 2) // 3rd distinct: whole block
	if len(a.Loaded) != 2 {
		t.Fatalf("third miss loaded %v, want remaining 2 items", a.Loaded)
	}
	mustHit(t, c, 3)
}

func TestAThresholdCounterIncludesHits(t *testing.T) {
	g := model.NewFixed(4)
	c := NewAThreshold(16, 2, g)
	mustMiss(t, c, 0)
	mustHit(t, c, 0) // same item: still 1 distinct
	a := mustMiss(t, c, 1)
	if len(a.Loaded) != 3 {
		t.Fatalf("expected full-block load on 2nd distinct access, got %v", a.Loaded)
	}
}

func TestAThresholdNoLoadOnHit(t *testing.T) {
	g := model.NewFixed(4)
	c := NewAThreshold(16, 2, g)
	mustMiss(t, c, 0)
	mustMiss(t, c, 4) // other block; block 0 counter stays at 1
	// Hit on 0 is the 1st... access 1 of block 0 reaches threshold via
	// a hit? No: hit on 0 keeps distinct=1. Access 1 (miss, distinct=2)
	// triggers the load.
	mustHit(t, c, 0)
	a := mustMiss(t, c, 1)
	if len(a.Loaded) != 3 {
		t.Fatalf("Loaded = %v", a.Loaded)
	}
}

func TestAThresholdLargeABehavesLikeItemLRU(t *testing.T) {
	g := model.NewFixed(4)
	rng := rand.New(rand.NewSource(3))
	tr := make(trace.Trace, 4000)
	for i := range tr {
		tr[i] = model.Item(rng.Intn(40))
	}
	at := cachesim.RunCold(NewAThreshold(10, 64, g), tr)
	lru := cachesim.RunCold(NewItemLRU(10), tr)
	if at.Misses != lru.Misses {
		t.Errorf("a≥B misses %d != ItemLRU %d", at.Misses, lru.Misses)
	}
	if at.ItemsLoaded != lru.ItemsLoaded {
		t.Errorf("a≥B loads %d != ItemLRU %d", at.ItemsLoaded, lru.ItemsLoaded)
	}
}

func TestAThresholdResetClearsCounters(t *testing.T) {
	g := model.NewFixed(4)
	c := NewAThreshold(16, 2, g)
	mustMiss(t, c, 0)
	c.Reset()
	a := mustMiss(t, c, 1)
	if len(a.Loaded) != 1 {
		t.Fatalf("counter survived Reset: %v", a.Loaded)
	}
}

func TestAThresholdCounterClearsWhenBlockFullyEvicted(t *testing.T) {
	g := model.NewFixed(2)
	c := NewAThreshold(2, 2, g)
	mustMiss(t, c, 0) // block 0: 1 distinct
	// Fill with other blocks so 0 is evicted.
	mustMiss(t, c, 10)
	mustMiss(t, c, 12) // 0 evicted now
	if c.Contains(0) {
		t.Fatal("0 still cached")
	}
	// Re-access 0: its counter must have restarted at 0, so this is the
	// 1st distinct access and loads only the item.
	a := mustMiss(t, c, 0)
	if len(a.Loaded) != 1 {
		t.Fatalf("Loaded = %v, want just the item", a.Loaded)
	}
}

func TestAThresholdCapacityRespected(t *testing.T) {
	g := model.NewFixed(8)
	c := NewAThreshold(12, 2, g)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		c.Access(model.Item(rng.Intn(128)))
		checkInvariants(t, c)
	}
}

func TestAThresholdNameAndA(t *testing.T) {
	g := model.NewFixed(4)
	if NewAThreshold(4, 1, g).Name() != "block-load-item-evict" {
		t.Error("a=1 name")
	}
	c := NewAThreshold(4, 3, g)
	if c.A() != 3 {
		t.Errorf("A() = %d", c.A())
	}
	if c.Name() == "" {
		t.Error("empty name")
	}
}

func TestAThresholdPanics(t *testing.T) {
	g := model.NewFixed(2)
	assertPanics(t, func() { NewAThreshold(0, 1, g) })
	assertPanics(t, func() { NewAThreshold(4, 0, g) })
	assertPanics(t, func() { NewAThreshold(4, 1, nil) })
}
