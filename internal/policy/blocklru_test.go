package policy

import (
	"math/rand"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/trace"
)

func TestBlockLRULoadsWholeBlock(t *testing.T) {
	g := model.NewFixed(4)
	c := NewBlockLRU(8, g)
	a := mustMiss(t, c, 1)
	if len(a.Loaded) != 4 {
		t.Fatalf("Loaded = %v, want 4 items", a.Loaded)
	}
	for it := model.Item(0); it < 4; it++ {
		if !c.Contains(it) {
			t.Errorf("missing sibling %d", it)
		}
	}
	mustHit(t, c, 0)
	mustHit(t, c, 3)
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}

func TestBlockLRUEvictsWholeBlocks(t *testing.T) {
	g := model.NewFixed(4)
	c := NewBlockLRU(8, g) // two block frames
	mustMiss(t, c, 0)      // block 0
	mustMiss(t, c, 4)      // block 1
	mustHit(t, c, 1)       // promote block 0
	a := mustMiss(t, c, 8) // block 2 evicts block 1 (LRU)
	if len(a.Evicted) != 4 {
		t.Fatalf("Evicted = %v, want 4 items", a.Evicted)
	}
	for it := model.Item(4); it < 8; it++ {
		if c.Contains(it) {
			t.Errorf("item %d of evicted block still present", it)
		}
	}
	if !c.Contains(0) || !c.Contains(8) {
		t.Error("wrong surviving blocks")
	}
}

func TestBlockLRUSpatialHits(t *testing.T) {
	g := model.NewFixed(4)
	c := NewBlockLRU(16, g)
	// Touch each item of two blocks in sequence: 1 miss + 3 spatial hits
	// per block.
	tr := trace.Trace{0, 1, 2, 3, 4, 5, 6, 7}
	s := cachesim.Run(c, tr)
	if s.Misses != 2 {
		t.Errorf("Misses = %d, want 2", s.Misses)
	}
	if s.SpatialHits != 6 {
		t.Errorf("SpatialHits = %d, want 6", s.SpatialHits)
	}
}

func TestBlockLRUPollution(t *testing.T) {
	// One live item per block: a BlockLRU of k items behaves like an
	// item cache of k/B items (Theorem 3's pollution effect).
	g := model.NewFixed(4)
	c := NewBlockLRU(8, g) // effectively 2 item slots
	// Cycle through 3 single items of distinct blocks: always misses.
	tr := trace.Trace{0, 4, 8}.Repeat(10)
	s := cachesim.Run(c, tr)
	if s.Hits != 0 {
		t.Errorf("Hits = %d, want 0 (pollution)", s.Hits)
	}
	// ItemLRU with the same capacity holds all three.
	s2 := cachesim.Run(NewItemLRU(8), tr)
	if s2.Misses != 3 {
		t.Errorf("ItemLRU misses = %d, want 3", s2.Misses)
	}
}

func TestBlockLRUOversizedBlockTruncates(t *testing.T) {
	g := model.NewFixed(8)
	c := NewBlockLRU(4, g)
	a := mustMiss(t, c, 3)
	if len(a.Loaded) != 4 {
		t.Fatalf("Loaded = %d items, want 4 (truncated)", len(a.Loaded))
	}
	if !c.Contains(3) {
		t.Fatal("requested item not retained")
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
	// Re-accessing a truncated-away sibling reloads the block.
	missing := model.Item(0)
	found := false
	for it := model.Item(0); it < 8; it++ {
		if !c.Contains(it) {
			missing = it
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no truncated sibling?")
	}
	mustMiss(t, c, missing)
	if !c.Contains(missing) || c.Len() > 4 {
		t.Errorf("after reload: Contains=%v Len=%d", c.Contains(missing), c.Len())
	}
}

func TestBlockLRUTableGeometry(t *testing.T) {
	g := model.MustTable([][]Item{{1, 2}, {3, 4, 5}})
	c := NewBlockLRU(5, g)
	mustMiss(t, c, 3)
	if !c.Contains(4) || !c.Contains(5) {
		t.Error("active set not fully loaded")
	}
	mustMiss(t, c, 1) // needs 2 slots, has 2 free
	if !c.Contains(2) {
		t.Error("second block not loaded")
	}
	if c.Len() != 5 {
		t.Errorf("Len = %d, want 5", c.Len())
	}
}

// Item alias keeps the table literal terse.
type Item = model.Item

func TestBlockLRUReset(t *testing.T) {
	g := model.NewFixed(2)
	c := NewBlockLRU(4, g)
	c.Access(0)
	c.Reset()
	if c.Len() != 0 || c.Contains(0) || c.Contains(1) {
		t.Error("Reset did not clear")
	}
}

func TestBlockLRUCapacityNeverExceeded(t *testing.T) {
	g := model.NewFixed(4)
	c := NewBlockLRU(10, g)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		c.Access(model.Item(rng.Intn(64)))
		checkInvariants(t, c)
	}
}

func TestBlockLRUPanics(t *testing.T) {
	assertPanics(t, func() { NewBlockLRU(0, model.NewFixed(2)) })
	assertPanics(t, func() { NewBlockLRU(4, nil) })
}
