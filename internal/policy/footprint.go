package policy

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/lrulist"
	"gccache/internal/model"
)

// Footprint is the history-based predicted-subset policy of the DRAM
// caches the paper cites (Footprint/Unison cache: Jevdjic et al.): on a
// miss it loads the requested item plus the block offsets that were
// *used during the block's previous residency* — a learned point between
// the Item Cache (load one) and Block Cache (load all) extremes whose
// trade-off Theorem 4 formalizes. Eviction is item-granularity LRU; when
// a block's last resident item leaves, the offsets it was touched at are
// recorded as its next footprint.
type Footprint struct {
	capacity int
	geo      model.Geometry
	order    *lrulist.List[model.Item]

	// footprint maps a block to the offset bitmap observed during its
	// last completed residency (nil bitmap = never seen before).
	footprint map[model.Block]uint64
	// touched accumulates the offsets accessed during the current
	// residency of each (partially) resident block.
	touched map[model.Block]uint64
	// residents counts resident items per block so residency end is
	// detectable.
	residents map[model.Block]int

	rec     cachesim.Reconciler
	loaded  []model.Item
	evicted []model.Item
	items   []model.Item // scratch: block enumeration
}

var _ cachesim.Cache = (*Footprint)(nil)

// NewFootprint returns a footprint-predicting cache of capacity k under
// g. Block size must be ≤ 64 (offset bitmaps are one word, matching the
// row/line ratios of the hardware designs). It panics on bad arguments.
func NewFootprint(k int, g model.Geometry) *Footprint {
	if k < 1 {
		panic(fmt.Sprintf("policy: Footprint capacity %d < 1", k))
	}
	if g == nil {
		panic("policy: Footprint nil geometry")
	}
	if g.BlockSize() > 64 {
		panic(fmt.Sprintf("policy: Footprint block size %d > 64", g.BlockSize()))
	}
	return &Footprint{
		capacity:  k,
		geo:       g,
		order:     lrulist.New[model.Item](k),
		footprint: make(map[model.Block]uint64),
		touched:   make(map[model.Block]uint64),
		residents: make(map[model.Block]int),
	}
}

// Name implements cachesim.Cache.
func (c *Footprint) Name() string { return "footprint" }

// offsetOf returns it's offset bit within its block, refreshing the
// block-enumeration scratch.
func (c *Footprint) offsetOf(it model.Item, blk model.Block) uint64 {
	c.items = model.AppendItemsOf(c.geo, c.items[:0], blk)
	for i, x := range c.items {
		if x == it {
			return 1 << uint(i)
		}
	}
	return 1 // defensive: treat as offset 0
}

// Access implements cachesim.Cache.
func (c *Footprint) Access(it model.Item) cachesim.Access {
	blk := c.geo.BlockOf(it)
	if c.order.MoveToFront(it) {
		c.touched[blk] |= c.offsetOf(it, blk)
		return cachesim.Access{Hit: true}
	}
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]

	// Predicted subset: last residency's footprint, always including the
	// requested item. Unknown blocks load conservatively: just the item
	// (first-touch training, as the hardware designs do).
	predicted := c.footprint[blk] | c.offsetOf(it, blk)
	items := c.items // offsetOf just refreshed the scratch for blk
	for i, x := range items {
		if predicted&(1<<uint(i)) == 0 {
			continue
		}
		if x == it {
			continue // inserted last, at MRU
		}
		if c.order.PushFront(x) {
			c.residents[blk]++
			c.loaded = append(c.loaded, x)
		}
	}
	if c.order.PushFront(it) {
		c.residents[blk]++
		c.loaded = append(c.loaded, it)
	}
	c.touched[blk] |= c.offsetOf(it, blk)
	c.evictOverflow(it)
	c.loaded, c.evicted = c.rec.NetChanges(c.loaded, c.evicted)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

func (c *Footprint) evictOverflow(protect model.Item) {
	for c.order.Len() > c.capacity {
		victim, _ := c.order.Back()
		if victim == protect {
			break
		}
		c.order.Remove(victim)
		blk := c.geo.BlockOf(victim)
		c.residents[blk]--
		c.evicted = append(c.evicted, victim)
		if c.residents[blk] == 0 {
			// Residency over: commit the observed footprint for next time.
			delete(c.residents, blk)
			c.footprint[blk] = c.touched[blk]
			delete(c.touched, blk)
		}
	}
}

// PredictedFootprint exposes the learned offset bitmap for tests.
func (c *Footprint) PredictedFootprint(blk model.Block) uint64 { return c.footprint[blk] }

// Contains implements cachesim.Cache.
func (c *Footprint) Contains(it model.Item) bool { return c.order.Contains(it) }

// Len implements cachesim.Cache.
func (c *Footprint) Len() int { return c.order.Len() }

// Capacity implements cachesim.Cache.
func (c *Footprint) Capacity() int { return c.capacity }

// Reset implements cachesim.Cache.
func (c *Footprint) Reset() {
	c.order.Clear()
	clear(c.footprint)
	clear(c.touched)
	clear(c.residents)
}
