package policy

import (
	"fmt"
	"math/rand"

	"gccache/internal/cachesim"
	"gccache/internal/model"
)

// Marking is the classic randomized marking algorithm at item granularity
// (it ignores granularity change entirely). Items are marked when
// requested; evictions pick a uniformly random *unmarked* item, and when
// everything is marked a new phase begins by clearing all marks.
//
// §6.1 of the paper notes this policy has competitive ratio ≥ B in the GC
// model regardless of its size — the gap that GCM (internal/core) closes
// by loading, but not marking, block siblings.
type Marking struct {
	capacity int
	rng      *rand.Rand
	items    []model.Item       // indexable set of resident items
	index    map[model.Item]int // item -> position in items
	marked   map[model.Item]struct{}
	loaded   []model.Item
	evicted  []model.Item
}

var _ cachesim.Cache = (*Marking)(nil)

// NewMarking returns a classic marking Item Cache of capacity k with the
// given seed. It panics if k < 1.
func NewMarking(k int, seed int64) *Marking {
	if k < 1 {
		panic(fmt.Sprintf("policy: Marking capacity %d < 1", k))
	}
	return &Marking{
		capacity: k,
		rng:      rand.New(rand.NewSource(seed)),
		index:    make(map[model.Item]int, k),
		marked:   make(map[model.Item]struct{}, k),
	}
}

// Name implements cachesim.Cache.
func (c *Marking) Name() string { return "item-marking" }

// Access implements cachesim.Cache.
func (c *Marking) Access(it model.Item) cachesim.Access {
	if _, ok := c.index[it]; ok {
		c.marked[it] = struct{}{}
		return cachesim.Access{Hit: true}
	}
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	if len(c.items) >= c.capacity {
		if len(c.marked) == len(c.items) {
			// Phase boundary: unmark everything.
			clear(c.marked)
		}
		victim, ok := c.randomUnmarked()
		if !ok {
			// Unreachable after the phase reset, but stay safe.
			victim = c.items[c.rng.Intn(len(c.items))]
		}
		c.remove(victim)
		c.evicted = append(c.evicted, victim)
	}
	c.insert(it)
	c.marked[it] = struct{}{}
	c.loaded = append(c.loaded, it)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

// randomUnmarked samples a uniformly random unmarked resident item by
// rejection; with u unmarked of n items the expected probes are n/u, and
// the phase reset guarantees u ≥ 1 at every call from Access.
func (c *Marking) randomUnmarked() (model.Item, bool) {
	if len(c.marked) >= len(c.items) {
		return 0, false
	}
	for {
		cand := c.items[c.rng.Intn(len(c.items))]
		if _, m := c.marked[cand]; !m {
			return cand, true
		}
	}
}

func (c *Marking) insert(it model.Item) {
	c.index[it] = len(c.items)
	c.items = append(c.items, it)
}

func (c *Marking) remove(it model.Item) {
	pos := c.index[it]
	last := len(c.items) - 1
	c.items[pos] = c.items[last]
	c.index[c.items[pos]] = pos
	c.items = c.items[:last]
	delete(c.index, it)
	delete(c.marked, it)
}

// Contains implements cachesim.Cache.
func (c *Marking) Contains(it model.Item) bool {
	_, ok := c.index[it]
	return ok
}

// Len implements cachesim.Cache.
func (c *Marking) Len() int { return len(c.items) }

// Capacity implements cachesim.Cache.
func (c *Marking) Capacity() int { return c.capacity }

// Reset implements cachesim.Cache.
func (c *Marking) Reset() {
	c.items = c.items[:0]
	clear(c.index)
	clear(c.marked)
}

// Reseed implements cachesim.Reseeder: it restores the rng to the state
// of a fresh NewMarking with the given seed, so Reseed+Reset on a pooled
// instance reproduces a newly constructed cache exactly.
func (c *Marking) Reseed(seed int64) { c.rng = rand.New(rand.NewSource(seed)) }

var _ cachesim.Reseeder = (*Marking)(nil)
