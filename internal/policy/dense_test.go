package policy

import (
	"math/rand"
	"sort"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
)

// genTrace builds a trace with mixed spatial/temporal locality over item
// IDs [0, universe): runs within a block, revisits, and random jumps.
func genTrace(rng *rand.Rand, universe, length, blockSize int) []model.Item {
	tr := make([]model.Item, 0, length)
	cur := model.Item(rng.Intn(universe))
	for len(tr) < length {
		switch rng.Intn(4) {
		case 0: // random jump
			cur = model.Item(rng.Intn(universe))
			tr = append(tr, cur)
		case 1: // revisit something recent
			if len(tr) > 0 {
				cur = tr[len(tr)-1-rng.Intn(minLen(len(tr), 32))]
			}
			tr = append(tr, cur)
		default: // run within the current block
			base := uint64(cur) / uint64(blockSize) * uint64(blockSize)
			for n := rng.Intn(blockSize) + 1; n > 0 && len(tr) < length; n-- {
				cur = model.Item(base + uint64(rng.Intn(blockSize)))
				if int(cur) >= universe {
					cur = model.Item(universe - 1)
				}
				tr = append(tr, cur)
			}
		}
	}
	return tr
}

func minLen(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortedCopy(items []model.Item) []model.Item {
	out := append([]model.Item(nil), items...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// diffCaches feeds tr to both caches and requires identical per-access
// outcomes: Hit flags and loaded/evicted *sets* (order may legitimately
// differ between representations; no consumer is order-sensitive).
func diffCaches(t *testing.T, generic, dense cachesim.Cache, tr []model.Item) {
	t.Helper()
	for i, it := range tr {
		ag := generic.Access(it)
		ad := dense.Access(it)
		if ag.Hit != ad.Hit {
			t.Fatalf("access %d (item %d): generic hit=%v dense hit=%v", i, it, ag.Hit, ad.Hit)
		}
		gl, dl := sortedCopy(ag.Loaded), sortedCopy(ad.Loaded)
		ge, de := sortedCopy(ag.Evicted), sortedCopy(ad.Evicted)
		if !equalItems(gl, dl) {
			t.Fatalf("access %d (item %d): loaded sets diverge\n generic %v\n dense   %v", i, it, gl, dl)
		}
		if !equalItems(ge, de) {
			t.Fatalf("access %d (item %d): evicted sets diverge\n generic %v\n dense   %v", i, it, ge, de)
		}
		if generic.Len() != dense.Len() {
			t.Fatalf("access %d: Len diverged generic=%d dense=%d", i, generic.Len(), dense.Len())
		}
	}
	for probe := 0; probe < 256; probe++ {
		it := tr[probe*len(tr)/256]
		if generic.Contains(it) != dense.Contains(it) {
			t.Fatalf("Contains(%d) diverged", it)
		}
	}
}

func equalItems(a, b []model.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestItemLRUDenseMatchesGeneric(t *testing.T) {
	const universe = 2048
	rng := rand.New(rand.NewSource(1))
	tr := genTrace(rng, universe, 50000, 16)
	generic := NewItemLRU(128)
	dense := NewItemLRUBounded(128, universe)
	diffCaches(t, generic, dense, tr)
}

func TestItemLRUBoundedFallback(t *testing.T) {
	c := NewItemLRUBounded(4, cachesim.MaxBoundedUniverse+1)
	// Out-of-range universe must fall back to the generic list and keep
	// accepting arbitrary IDs.
	if a := c.Access(model.Item(1 << 40)); a.Hit {
		t.Fatal("fresh cache reported a hit")
	}
}

func TestBlockLRUDenseMatchesGeneric(t *testing.T) {
	const universe = 4096
	for _, blockSize := range []int{1, 8, 64} {
		g := model.NewFixed(blockSize)
		rng := rand.New(rand.NewSource(int64(blockSize)))
		tr := genTrace(rng, universe, 50000, blockSize)
		generic := NewBlockLRU(256, g)
		dense := NewBlockLRUBounded(256, g, universe)
		if dense.presentBits == nil {
			t.Fatalf("B=%d: bounded constructor fell back unexpectedly", blockSize)
		}
		diffCaches(t, generic, dense, tr)
	}
}

// TestBlockLRUDenseDegenerate covers blocks larger than the whole cache
// (the truncateAround path) on both representations.
func TestBlockLRUDenseDegenerate(t *testing.T) {
	const universe = 512
	g := model.NewFixed(64)
	rng := rand.New(rand.NewSource(9))
	tr := genTrace(rng, universe, 20000, 64)
	diffCaches(t, NewBlockLRU(16, g), NewBlockLRUBounded(16, g, universe), tr)
}

func TestBlockLRUBoundedFallback(t *testing.T) {
	g := model.NewFixed(8)
	c := NewBlockLRUBounded(64, g, 0)
	if c.presentBits != nil {
		t.Fatal("universe 0 should fall back to the generic representation")
	}
	if a := c.Access(model.Item(1 << 40)); a.Hit {
		t.Fatal("fresh cache reported a hit")
	}
}

// TestBlockLRUDenseReset proves pooled reuse: Reset must restore a dense
// cache to a state indistinguishable from a fresh one.
func TestBlockLRUDenseReset(t *testing.T) {
	const universe = 1024
	g := model.NewFixed(8)
	rng := rand.New(rand.NewSource(3))
	tr := genTrace(rng, universe, 20000, 8)
	pooled := NewBlockLRUBounded(128, g, universe)
	for _, it := range tr[:5000] {
		pooled.Access(it)
	}
	pooled.Reset()
	diffCaches(t, NewBlockLRU(128, g), pooled, tr)
}

func TestItemLRUDenseZeroAllocSteadyState(t *testing.T) {
	const universe = 1 << 12
	c := NewItemLRUBounded(256, universe)
	for i := 0; i < universe*2; i++ {
		c.Access(model.Item(i % universe))
	}
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		c.Access(model.Item(i % universe))
		i += 37
	}); avg != 0 {
		t.Errorf("ItemLRU dense path allocates %.2f allocs/access, want 0", avg)
	}
}

func TestBlockLRUDenseZeroAllocSteadyState(t *testing.T) {
	const universe = 1 << 12
	g := model.NewFixed(16)
	c := NewBlockLRUBounded(512, g, universe)
	for i := 0; i < universe*2; i++ {
		c.Access(model.Item(i % universe))
	}
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		c.Access(model.Item(i % universe))
		i += 37
	}); avg != 0 {
		t.Errorf("BlockLRU dense path allocates %.2f allocs/access, want 0", avg)
	}
}
