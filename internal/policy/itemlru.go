// Package policy implements the baseline online replacement policies of
// the GC caching model: the single-granularity Item Cache and Block Cache
// of §2 ("Baseline policies"), classic FIFO/Random/Marking references,
// and the a-threshold family of §4.3 that loads a whole block only after
// a distinct items of it have been touched.
//
// The paper's own contributions (IBLP and GCM) live in internal/core.
package policy

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/lrulist"
	"gccache/internal/model"
	"gccache/internal/obs"
)

// ItemLRU is the paper's Item Cache baseline: a traditional LRU cache
// that loads only the requested item on a miss and evicts the
// least-recently-used item. It performs well on temporal locality and
// poorly on spatial locality (Theorem 2).
type ItemLRU struct {
	capacity int
	order    lrulist.Order[model.Item]
	loaded   []model.Item
	evicted  []model.Item
	probe    obs.Probe
}

var (
	_ cachesim.Cache        = (*ItemLRU)(nil)
	_ cachesim.Instrumented = (*ItemLRU)(nil)
)

// NewItemLRU returns an Item Cache of capacity k items. It panics if
// k < 1.
func NewItemLRU(k int) *ItemLRU {
	if k < 1 {
		panic(fmt.Sprintf("policy: ItemLRU capacity %d < 1", k))
	}
	return &ItemLRU{capacity: k, order: lrulist.New[model.Item](k)}
}

// NewItemLRUBounded returns an Item Cache whose recency order is the
// map-free lrulist.Dense over item IDs [0, universe) — the
// allocation-free hot path. Accessing an item ≥ universe panics. It
// falls back to the generic list when universe is out of the bounded
// range (see cachesim.MaxBoundedUniverse); behaviour is identical
// either way.
func NewItemLRUBounded(k, universe int) *ItemLRU {
	c := NewItemLRU(k)
	if universe > 0 && universe <= cachesim.MaxBoundedUniverse {
		c.order = lrulist.NewDense[model.Item](universe)
	}
	return c
}

// Name implements cachesim.Cache.
func (c *ItemLRU) Name() string { return "item-lru" }

// Access implements cachesim.Cache.
//
//gclint:hotpath
func (c *ItemLRU) Access(it model.Item) cachesim.Access {
	if c.order.MoveToFront(it) {
		if c.probe != nil {
			c.probe.Observe(obs.Event{Kind: obs.EvHit, Item: it})
		}
		return cachesim.Access{Hit: true}
	}
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	c.order.PushFront(it)
	c.loaded = append(c.loaded, it)
	for c.order.Len() > c.capacity {
		victim, _ := c.order.PopBack()
		c.evicted = append(c.evicted, victim)
	}
	if c.probe != nil {
		c.probe.Observe(obs.Event{Kind: obs.EvBlockLoad, Item: it, N: int32(len(c.loaded))})
		for _, x := range c.loaded {
			c.probe.Observe(obs.Event{Kind: obs.EvLoad, Item: x})
		}
		for _, x := range c.evicted {
			c.probe.Observe(obs.Event{Kind: obs.EvEvict, Item: x})
		}
	}
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

// SetProbe implements cachesim.Instrumented. A nil probe restores the
// unobserved fast path.
func (c *ItemLRU) SetProbe(p obs.Probe) { c.probe = p }

// AppendRecency appends the cached items to dst in recency order, most
// recently used first, and returns the extended slice. Cluster handoff
// ships this ordering so the receiving node can rebuild the identical
// LRU state by replaying it back-to-front.
func (c *ItemLRU) AppendRecency(dst []model.Item) []model.Item {
	c.order.Each(func(it model.Item) bool {
		dst = append(dst, it)
		return true
	})
	return dst
}

// Contains implements cachesim.Cache.
func (c *ItemLRU) Contains(it model.Item) bool { return c.order.Contains(it) }

// Len implements cachesim.Cache.
func (c *ItemLRU) Len() int { return c.order.Len() }

// Capacity implements cachesim.Cache.
func (c *ItemLRU) Capacity() int { return c.capacity }

// Reset implements cachesim.Cache.
func (c *ItemLRU) Reset() { c.order.Clear() }
