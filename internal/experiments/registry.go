package experiments

// Spec names one reproduction artifact and how to generate it at full or
// quick (CI) scale. The registry is the single source of truth for the
// gcrepro driver, the end-to-end test, and the benchmark harness.
type Spec struct {
	// Label is the human name shown by the driver ("Table 1").
	Label string
	// Full regenerates the artifact at paper scale.
	Full func() *Report
	// Quick regenerates it at a reduced, CI-friendly scale. Nil means
	// Full is already cheap.
	Quick func() *Report
}

// Registry returns every reproduction artifact in presentation order.
func Registry() []Spec {
	return []Spec{
		{Label: "Figure 1 demo", Full: Figure1Demo},
		{Label: "Figure 4 demo", Full: Figure4Demo},
		{Label: "Table 1", Full: func() *Report { return Table1(16384, 64) }},
		{Label: "Table 2", Full: func() *Report { return Table2(64, []float64{2, 3, 4}, 65536) }},
		{
			Label: "Figure 3",
			Full:  func() *Report { return Figure3(1.28e6, 64, 80) },
			Quick: func() *Report { return Figure3(1.28e6, 64, 30) },
		},
		{
			Label: "Figure 6",
			Full:  func() *Report { return Figure6(1.28e6, 64, []float64{512, 8192, 131072}, 80) },
			Quick: func() *Report { return Figure6(1.28e6, 64, []float64{512, 8192, 131072}, 30) },
		},
		{
			Label: "Figure 5 stress",
			Full:  func() *Report { return Figure5Stress(256, 256, 16, 128, 150000) },
			Quick: func() *Report { return Figure5Stress(96, 96, 8, 48, 60000) },
		},
		{Label: "Figure 2 demo", Full: Figure2Demo},
		{
			Label: "E1 reduction",
			Full:  func() *Report { return ReductionCheck(20, 2022) },
			Quick: func() *Report { return ReductionCheck(6, 2022) },
		},
		{
			Label: "E2-E4 adversaries",
			Full:  func() *Report { return AdversarySweep(64, 25) },
			Quick: func() *Report { return AdversarySweep(64, 8) },
		},
		{Label: "E5 LP cross-check", Full: func() *Report { return LPCrossCheck(64) }},
		{Label: "E6 fault rates", Full: func() *Report { return FaultRateCheck(24, 4, 2, 4) }},
		{
			Label: "E7 Figure 3 empirical",
			Full:  func() *Report { return Figure3Empirical(256, 16, 25) },
			Quick: func() *Report { return Figure3Empirical(256, 16, 8) },
		},
		{
			Label: "E8 ablations",
			Full:  func() *Report { return Ablations(2048, 64, 7) },
			Quick: func() *Report { return Ablations(512, 16, 7) },
		},
		{
			Label: "Figure 6 empirical",
			Full:  func() *Report { return Figure6Empirical(256, 16, 128, 100000) },
			Quick: func() *Report { return Figure6Empirical(128, 8, 64, 40000) },
		},
		{
			Label: "E9 randomized (§6)",
			Full:  func() *Report { return RandomizedComparison(512, 16, 25, 3) },
			Quick: func() *Report { return RandomizedComparison(512, 16, 8, 3) },
		},
		{Label: "E10 adaptive split", Full: func() *Report { return AdaptiveStudy(512, 16, 3) }},
		{Label: "MRC study", Full: func() *Report { return MRCStudy(16, 4) }},
		{
			Label: "policy shootout",
			Full:  func() *Report { return PolicyShootout(2048, 64, 7) },
			Quick: func() *Report { return PolicyShootout(512, 16, 7) },
		},
	}
}

// Run executes a spec at the requested scale.
//
//gclint:ctxok experiment thunks are presized by the registry; gcrepro is a one-shot batch process
func (s Spec) Run(quick bool) *Report {
	if quick && s.Quick != nil {
		return s.Quick()
	}
	return s.Full()
}
