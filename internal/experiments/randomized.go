package experiments

import (
	"fmt"

	"gccache/internal/adversary"
	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/render"
	"gccache/internal/stats"
	"gccache/internal/workload"
)

// RandomizedComparison runs the §6 study: how GCM relates to classic
// marking (which ignores granularity change) and to the mark-everything
// ablation, and how the *relative* standing of load-few vs load-many
// policies flips with the workload — the §6.2 observation that
// randomization does not remove the comparison-size dependence.
//
// Part 1 drives the Theorem 2 construction (spatial-locality-rich) at
// several comparison sizes h: classic marking pays the ≈B× penalty of
// §6.1 while GCM escapes it. Part 2 runs a no-spatial-locality stride
// sized near the cache capacity: now loading block siblings is pure
// pollution, and the ordering reverses.
func RandomizedComparison(k, B, phases int, seed int64) *Report {
	r := &Report{Name: "randomized-comparison"}
	geo := model.NewFixed(B)

	adversarial := &render.Table{
		Title: fmt.Sprintf("§6.1 on the Theorem 2 construction (k=%d, B=%d): measured ratio", k, B),
		Headers: []string{"h", "item-marking", "gcm", "gcm-mark-all",
			"marking/gcm"},
	}
	var rels []float64
	for _, h := range []int{B + 1, k / 4, k / 2} {
		if h < B {
			continue
		}
		ratio := func(c cachesim.Cache) float64 {
			res, err := adversary.ItemCache(c, geo, adversary.Config{OptSize: h, Phases: phases})
			if err != nil {
				r.Failf("h=%d %s: %v", h, c.Name(), err)
				return 0
			}
			return res.Ratio()
		}
		mark := ratio(policy.NewMarking(k, seed))
		gcm := ratio(core.NewGCM(k, geo, seed))
		all := ratio(core.NewGCMMarkAll(k, geo, seed))
		rel := mark / gcm
		rels = append(rels, rel)
		adversarial.AddRow(h, mark, gcm, all, rel)
	}
	r.Tables = append(r.Tables, adversarial)
	// §6.1: against a small comparison cache, marking pays the ≈B×
	// granularity-change penalty that GCM's sibling loads avoid...
	if len(rels) > 0 && rels[0] < 4 {
		r.Failf("smallest h: marking/GCM = %.2f — expected a large §6.1 gap", rels[0])
	}
	// ...and §6.2: the advantage *shrinks monotonically* as the
	// comparison size h grows toward k, because cache space spent on
	// spatial locality gets costlier relative to a similar-size optimum.
	// This h-dependence is exactly what randomization fails to remove.
	for i := 1; i < len(rels); i++ {
		if rels[i] >= rels[i-1] {
			r.Failf("marking/GCM did not shrink with h: %.2f → %.2f", rels[i-1], rels[i])
		}
		if rels[i] < 0.95 {
			r.Failf("GCM fell behind marking on its own best-case traces (rel %.2f)", rels[i])
		}
	}

	pollution := &render.Table{
		Title:   "§6.1/§6.2 reversal on a no-spatial-locality stride (universe ≈ 0.9k)",
		Headers: []string{"policy", "miss-ratio"},
	}
	stride := workload.Stride(k*9/10, B, 200000)
	markSt := cachesim.RunCold(policy.NewMarking(k, seed), stride)
	gcmSt := cachesim.RunCold(core.NewGCM(k, geo, seed), stride)
	allSt := cachesim.RunCold(core.NewGCMMarkAll(k, geo, seed), stride)
	pollution.AddRow("item-marking", markSt.MissRatio())
	pollution.AddRow("gcm", gcmSt.MissRatio())
	pollution.AddRow("gcm-mark-all", allSt.MissRatio())
	r.Tables = append(r.Tables, pollution)
	// Mark-all pins dead siblings: it must be the worst here, and
	// markedly worse than plain marking (the §6.1 effective-size
	// argument).
	if allSt.MissRatio() < 2*markSt.MissRatio() && markSt.MissRatio() > 0.005 {
		r.Failf("stride: mark-all (%.4f) not clearly worse than marking (%.4f)",
			allSt.MissRatio(), markSt.MissRatio())
	}
	// GCM's unmarked siblings are evictable, so it stays within a modest
	// factor of plain marking even with zero spatial locality.
	if gcmSt.MissRatio() > 10*markSt.MissRatio()+0.02 {
		r.Failf("stride: GCM (%.4f) collapsed vs marking (%.4f)",
			gcmSt.MissRatio(), markSt.MissRatio())
	}
	// Seed sensitivity: randomized policies should be stable across
	// coins — report mean ± sd miss ratios over independent seeds on a
	// mixed workload.
	mixed, err := workload.BlockRuns(workload.BlockRunsConfig{
		NumBlocks: 256, BlockSize: B, MeanRunLength: float64(B) / 2,
		ZipfS: 1.2, Length: 100000, Seed: seed,
	})
	if err != nil {
		r.Failf("workload: %v", err)
		return r
	}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	variance := &render.Table{
		Title:   "Seed sensitivity on a mixed workload (8 seeds)",
		Headers: []string{"policy", "mean miss-ratio", "sd", "min", "max"},
	}
	for _, rp := range []struct {
		name  string
		build func(seed int64) cachesim.Cache
	}{
		{"item-marking", func(s int64) cachesim.Cache { return policy.NewMarking(k, s) }},
		{"gcm", func(s int64) cachesim.Cache { return core.NewGCM(k, geo, s) }},
		{"item-random", func(s int64) cachesim.Cache { return policy.NewRandomEvict(k, s) }},
	} {
		ratios := cachesim.RunSeeds(rp.build, mixed, seeds)
		sum := stats.Summarize(ratios)
		variance.AddRow(rp.name, sum.Mean, sum.StdDev, sum.Min, sum.Max)
		if sum.Mean > 0 && sum.StdDev > 0.25*sum.Mean {
			r.Failf("%s: seed variance %.4f vs mean %.4f — implausibly unstable", rp.name, sum.StdDev, sum.Mean)
		}
	}
	r.Tables = append(r.Tables, variance)

	r.Notef("no single loading aggressiveness wins at every comparison size/workload — randomization does not resolve the §6.2 relative-competitiveness dependence")
	return r
}
