package experiments

import (
	"fmt"

	"gccache/internal/bounds"
	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/opt"
	"gccache/internal/render"
	"gccache/internal/workload"
)

// Figure5Stress reproduces the paper's Figure 5 reasoning executably: it
// generates the worst-case access pattern the §5.2 LP analysis is built
// on (adversarial temporal cycling against the item layer, staggered
// block cycling against the block layer), runs IBLP on it, brackets the
// offline optimum, and verifies the measured competitive ratio respects —
// and approaches — the Theorem 7 upper bound. The SpatialShare sweep maps
// the r/s·t trade-off of the linear program.
func Figure5Stress(i, b, B, h, length int) *Report {
	r := &Report{Name: "figure5-stress"}
	geo := model.NewFixed(B)
	t := &render.Table{
		Title: fmt.Sprintf("Figure 5 worst-case pattern vs IBLP(i=%d,b=%d), B=%d, h=%d", i, b, B, h),
		Headers: []string{"spatial-share", "iblp-misses", "opt≤", "opt≥",
			"ratio≥ (vs opt≤)", "thm7-ub"},
	}
	ub := bounds.IBLPUB(float64(i), float64(b), float64(h), float64(B))
	worstObserved := 0.0
	for _, share := range []float64{0, 0.25, 0.5, 0.75, 1} {
		tr, err := workload.LPWorstCase(workload.LPWorstConfig{
			ItemLayer: i, BlockLayer: b, BlockSize: B,
			SpatialShare: share, Length: length,
		})
		if err != nil {
			r.Failf("generate share=%v: %v", share, err)
			continue
		}
		st := cachesim.RunCold(core.NewIBLP(i, b, geo), tr)
		est := opt.EstimateOPT(tr, geo, h)
		ratioLow := float64(st.Misses) / float64(est.Upper)
		t.AddRow(share, st.Misses, est.Upper, est.Lower, ratioLow, ub)
		if ratioLow > ub*1.000001 {
			r.Failf("share=%v: measured ratio ≥ %.3f exceeds Theorem 7 bound %.3f — contradiction",
				share, ratioLow, ub)
		}
		if ratioLow > worstObserved {
			worstObserved = ratioLow
		}
		// The pattern must actually hurt IBLP: on the pure components it
		// misses (nearly) every access by construction.
		if (share == 0 || share == 1) && st.MissRatio() < 0.95 {
			r.Failf("share=%v: miss ratio %.3f — the adversarial component is not adversarial",
				share, st.MissRatio())
		}
	}
	r.Tables = append(r.Tables, t)
	if worstObserved < 1.5 {
		r.Failf("no mixture produced a meaningful gap (max ratio %.3f): pattern too weak", worstObserved)
	}
	r.Notef("the Figure 5 pattern drives IBLP to a 100%% miss rate while the offline bracket certifies a large gap, all within the Theorem 7 ceiling of %.2f", ub)
	return r
}
