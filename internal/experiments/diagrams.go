package experiments

import (
	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/render"
)

// Figure1Demo makes the paper's Figure 1 executable: a request to A1
// misses, and the cache loads the subset {A1, A2} of the
// larger-granularity block {A1, A2, A3} below it for one unit of cost.
// We realize it with the exact offline schedule on a 3-item block and
// show that the subset load (not the single item, not the whole block)
// is what the optimum chooses for the continuation A1 A2 A1 A2 …,
// when cache space is too tight to keep A3.
func Figure1Demo() *Report {
	r := &Report{Name: "figure1-demo"}
	geo := model.NewFixed(3) // block {A1, A2, A3} = items {0, 1, 2}
	names := map[model.Item]string{0: "A1", 1: "A2", 2: "A3"}

	// k = 2: the optimum wants A1 and A2 (both re-referenced) but has no
	// room for A3 — exactly Figure 1's subset load.
	tr := []model.Item{0, 1, 0, 1, 0, 1}
	t := &render.Table{
		Title:   "Figure 1: miss on A1 loads the subset {A1 A2} of block {A1 A2 A3} (k=2)",
		Headers: []string{"t", "request", "action", "cache after"},
	}
	_, sched, err := scheduleFor(tr, geo, 2)
	if err != nil {
		r.Failf("schedule: %v", err)
		return r
	}
	for i, st := range sched {
		action := "hit"
		if !st.Hit {
			action = "miss, load {"
			for j, l := range st.Load {
				if j > 0 {
					action += " "
				}
				action += names[l]
			}
			action += "}"
		}
		contents := ""
		for j, c := range st.Contents {
			if j > 0 {
				contents += " "
			}
			contents += names[c]
		}
		t.AddRow(i+1, names[tr[i]], action, contents)
	}
	r.Tables = append(r.Tables, t)
	// The headline check: the optimum pays exactly one miss and its first
	// load is the two-item subset.
	if len(sched) == 0 || sched[0].Hit || len(sched[0].Load) != 2 {
		r.Failf("first access should miss and load exactly the {A1, A2} subset, got %+v", sched[0])
	}
	for i := 1; i < len(sched); i++ {
		if !sched[i].Hit {
			r.Failf("access %d should hit after the subset load", i+1)
		}
	}
	r.Notef("items after the first are free (unit block cost), so the optimum loads exactly the subset it has room to exploit — the opportunity Figure 1 illustrates")
	return r
}

// scheduleFor adapts opt.ExactSchedule to the []model.Item convenience
// used by the demos.
func scheduleFor(items []model.Item, geo model.Geometry, k int) (int64, []optStep, error) {
	tr := make([]model.Item, len(items))
	copy(tr, items)
	cost, steps, err := exactSchedule(tr, geo, k)
	return cost, steps, err
}

// Figure4Demo makes Figure 4 executable: the logical structure of IBLP —
// an item layer in front of a block layer — traced access by access on
// the figure's scenario (a request to A1 populating both layers, with
// the block layer holding the whole block {A1 A2 A3}).
func Figure4Demo() *Report {
	r := &Report{Name: "figure4-demo"}
	geo := model.NewFixed(3)
	names := map[model.Item]string{0: "A1", 1: "A2", 2: "A3", 3: "B1", 4: "B2", 5: "B3"}
	c := core.NewIBLP(2, 3, geo) // i = 2 item slots, b = 3 (one block frame)

	t := &render.Table{
		Title:   "Figure 4: IBLP(i=2, b=3) — item layer over block layer",
		Headers: []string{"t", "request", "outcome", "notes"},
	}
	step := 0
	access := func(it model.Item, note string) cachesim.Access {
		step++
		a := c.Access(it)
		outcome := "miss"
		if a.Hit {
			outcome = "hit"
		}
		t.AddRow(step, names[it], outcome, note)
		return a
	}
	a := access(0, "A1 → item layer; whole block {A1 A2 A3} → block layer")
	if a.Hit || len(a.Loaded) != 3 {
		r.Failf("first access: want miss loading 3 items, got %+v", a)
	}
	a = access(1, "A2 served by the block layer (spatial hit), copied to item layer")
	if !a.Hit {
		r.Failf("A2 should hit in the block layer")
	}
	a = access(0, "A1 still in the item layer (temporal hit)")
	if !a.Hit {
		r.Failf("A1 should hit in the item layer")
	}
	a = access(3, "B1 misses: block {B1 B2 B3} replaces block A in the 1-frame block layer")
	if a.Hit {
		r.Failf("B1 should miss")
	}
	a = access(2, "A3 was only in the evicted block frame → miss")
	if a.Hit {
		r.Failf("A3 should miss after block A's eviction")
	}
	a = access(1, "A2 survives in the item layer despite block A's eviction")
	if !a.Hit {
		r.Failf("A2 should still hit via the item layer")
	}
	r.Tables = append(r.Tables, t)
	r.Notef("the two layers serve the two locality types independently: the item layer retains accessed items across block-layer evictions, the block layer turns sibling accesses into hits")
	return r
}
