package experiments

import (
	"fmt"
	"strings"

	"gccache/internal/opt"
	"gccache/internal/render"
	"gccache/internal/vsc"
)

// Figure2Demo reproduces the paper's Figure 2: the Theorem 1 reduction
// applied to the figure's variable-size caching instance — items A (size
// 2), B (size 1), C (size 3), cache size 3, trace A B A C A — showing the
// generated GC trace, the exact optimal costs on both sides, and the
// optimal cache's contents over time (the figure's "Optimal Cache" rows).
func Figure2Demo() *Report {
	r := &Report{Name: "figure2-demo"}
	in := vsc.Instance{
		Sizes:     []int{2, 1, 3}, // A, B, C
		CacheSize: 3,
		Trace:     []int{0, 1, 0, 2, 0}, // A B A C A
	}
	names := []string{"A", "B", "C"}

	vOPT, err := vsc.Exact(in)
	if err != nil {
		r.Failf("vsc exact: %v", err)
		return r
	}
	red, err := vsc.Reduce(in)
	if err != nil {
		r.Failf("reduce: %v", err)
		return r
	}
	gOPT, sched, err := opt.ExactSchedule(red.Trace, red.Geometry, red.CacheSize)
	if err != nil {
		r.Failf("gc exact: %v", err)
		return r
	}
	if gOPT != vOPT {
		r.Failf("reduction broke on the Figure 2 instance: VSC %d vs GC %d", vOPT, gOPT)
	}
	if verified, err := opt.VerifySchedule(red.Trace, red.Geometry, red.CacheSize, sched); err != nil {
		r.Failf("optimal schedule is not a legal execution: %v", err)
	} else if verified != gOPT {
		r.Failf("schedule cost %d != optimum %d", verified, gOPT)
	}

	summary := &render.Table{
		Title:   "Figure 2 instance: A(size 2), B(1), C(3); cache 3; trace A B A C A",
		Headers: []string{"quantity", "value"},
	}
	summary.AddRow("VSC optimal misses", vOPT)
	summary.AddRow("GC optimal misses (reduced instance)", gOPT)
	summary.AddRow("GC trace length (Σ z²)", len(red.Trace))
	r.Tables = append(r.Tables, summary)

	// Render the optimal execution as the figure draws it: one column per
	// access, rows showing contents (as active-set member names).
	label := func(it interface{ String() string }) string { return it.String() }
	_ = label
	itemName := func(raw uint64) string {
		for j, set := range red.ActiveSets {
			for pos, member := range set {
				if uint64(member) == raw {
					return fmt.Sprintf("%s%d", names[j], pos+1)
				}
			}
		}
		return fmt.Sprintf("?%d", raw)
	}
	exec := &render.Table{
		Title:   "optimal GC execution (hits ·, misses with loads/evicts)",
		Headers: []string{"t", "request", "action", "contents after"},
	}
	for i, st := range sched {
		req := itemName(uint64(red.Trace[i]))
		action := "hit"
		if !st.Hit {
			var loads []string
			for _, l := range st.Load {
				loads = append(loads, itemName(uint64(l)))
			}
			action = "miss, load {" + strings.Join(loads, " ") + "}"
			if len(st.Evict) > 0 {
				var evs []string
				for _, e := range st.Evict {
					evs = append(evs, itemName(uint64(e)))
				}
				action += ", evict {" + strings.Join(evs, " ") + "}"
			}
		}
		var contents []string
		for _, c := range st.Contents {
			contents = append(contents, itemName(uint64(c)))
		}
		exec.AddRow(i+1, req, action, strings.Join(contents, " "))
	}
	r.Tables = append(r.Tables, exec)

	// The proof's structural claim: the optimum loads and evicts whole
	// active sets. Verify on this schedule: after every step, each
	// block's resident count is 0 or the full active set...
	for i, st := range sched {
		counts := make(map[int]int)
		for _, c := range st.Contents {
			for j, set := range red.ActiveSets {
				for _, member := range set {
					if member == c {
						counts[j]++
					}
				}
			}
		}
		for j, cnt := range counts {
			if cnt != 0 && cnt != in.Sizes[j] {
				// Partial residency mid-burst is fine (the set is being
				// streamed in); only flag it if it persists at a burst
				// boundary, i.e. when the next access goes to a different
				// block.
				if i+1 < len(red.Trace) &&
					red.Geometry.BlockOf(red.Trace[i+1]) != red.Geometry.BlockOf(red.Trace[i]) {
					r.Notef("partial active set %s (%d/%d) at burst boundary t=%d — allowed but the proof shows full sets are always optimal too",
						names[j], cnt, in.Sizes[j], i+1)
				}
			}
		}
	}
	r.Notef("the reduced instance's optimum equals the VSC optimum (%d), certified by the exact solvers and a verified schedule", vOPT)
	return r
}
