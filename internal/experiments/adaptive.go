package experiments

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/render"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

// AdaptiveStudy runs experiment E10: the ghost-list AdaptiveIBLP against
// fixed splits across workloads whose ideal split differs — the
// repository's constructive response to §5.3's "unknown optimal size"
// problem (Figure 6). The adaptive policy must track the best fixed
// split within a modest factor on *every* workload, while each fixed
// split loses badly somewhere.
func AdaptiveStudy(k, B int, seed int64) *Report {
	r := &Report{Name: "adaptive-study"}
	geo := model.NewFixed(B)

	runs := func(mean float64, blocks int) trace.Trace {
		tr, err := workload.BlockRuns(workload.BlockRunsConfig{
			NumBlocks: blocks, BlockSize: B, MeanRunLength: mean,
			ZipfS: 1.2, Length: 150000, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		return tr
	}
	wls := []shootoutWorkload{
		// Wants a big item layer: single-block items, working set ≈ 0.8k.
		{"temporal (stride 0.8k)", workload.Stride(k*4/5, B, 150000)},
		// Wants block frames: full-block sweeps.
		{"spatial (runs ≈ B)", runs(float64(B), 512)},
		// Mixed.
		{"mixed (runs ≈ B/4, zipf)", runs(float64(B)/4, 512)},
		{"scan", workload.CyclicScan(8*k, 150000)},
	}
	universe := 0
	for _, wl := range wls {
		if u := wl.tr.Universe(); u > universe {
			universe = u
		}
	}
	universe = model.ItemUniverse(geo, universe)
	splits := []struct {
		name  string
		build func() cachesim.Cache
	}{
		{"item-only", func() cachesim.Cache { return core.NewIBLPBounded(k, 0, geo, universe) }},
		{"even", func() cachesim.Cache { return core.NewIBLPEvenSplitBounded(k, geo, universe) }},
		{"block-heavy", func() cachesim.Cache { return core.NewIBLPBounded(k/8, k-k/8, geo, universe) }},
		{"adaptive", func() cachesim.Cache { return core.NewAdaptiveIBLP(k, geo) }},
	}

	t := &render.Table{
		Title:   fmt.Sprintf("Adaptive vs fixed splits, miss ratios (k=%d, B=%d)", k, B),
		Headers: []string{"workload", "item-only", "even", "block-heavy", "adaptive", "adaptive/best-fixed"},
	}
	type cellKey struct{ wi, si int }
	jobs := make([]cellKey, 0, len(wls)*len(splits))
	for wi := range wls {
		for si := range splits {
			jobs = append(jobs, cellKey{wi, si})
		}
	}
	// Per-index result slots (no shared map, no lock): job j writes only
	// results[j], which is the sweep engine's sanctioned sharing shape.
	results := make([]float64, len(jobs))
	cell := func(wi, si int) float64 { return results[wi*len(splits)+si] }
	// Per-worker pooled caches, one per split, built lazily and reused
	// (RunColdBounded resets before replay) across the worker's cells.
	cachesim.Sweep(len(jobs), 0, func() []cachesim.Cache {
		return make([]cachesim.Cache, len(splits))
	}, func(j int, pool []cachesim.Cache) {
		key := jobs[j]
		cache := pool[key.si]
		if cache == nil {
			cache = splits[key.si].build()
			pool[key.si] = cache
		}
		results[j] = cachesim.RunColdBounded(cache, wls[key.wi].tr, universe).MissRatio()
	})
	for wi, wl := range wls {
		bestFixed := 1.0
		for si := 0; si < 3; si++ {
			if v := cell(wi, si); v < bestFixed {
				bestFixed = v
			}
		}
		adaptiveMR := cell(wi, 3)
		rel := 0.0
		if bestFixed > 0 {
			rel = adaptiveMR / bestFixed
		}
		t.AddRow(wl.name,
			cell(wi, 0), cell(wi, 1), cell(wi, 2), adaptiveMR, rel)
		if adaptiveMR > 2.0*bestFixed+0.02 {
			r.Failf("%s: adaptive %.4f vs best fixed %.4f", wl.name, adaptiveMR, bestFixed)
		}
	}
	r.Tables = append(r.Tables, t)

	// Each fixed split must be beaten badly somewhere (otherwise the
	// study proves nothing about the need for adaptation).
	for si := 0; si < 3; si++ {
		worstRel := 0.0
		for wi := range wls {
			bestFixed := 1.0
			for sj := 0; sj < 3; sj++ {
				if v := cell(wi, sj); v < bestFixed {
					bestFixed = v
				}
			}
			if bestFixed > 0 {
				if rel := cell(wi, si) / bestFixed; rel > worstRel {
					worstRel = rel
				}
			}
		}
		if worstRel < 2 {
			r.Failf("fixed split %q never loses badly — workloads not differentiating", splits[si].name)
		}
	}
	r.Notef("no fixed split is safe across workloads (Figure 6's dilemma); the ghost-list adaptive split tracks the best fixed choice everywhere")
	return r
}
