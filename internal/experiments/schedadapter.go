package experiments

import (
	"gccache/internal/model"
	"gccache/internal/opt"
	"gccache/internal/trace"
)

// optStep aliases opt.Step for the diagram demos.
type optStep = opt.Step

// exactSchedule adapts opt.ExactSchedule to a plain item slice.
func exactSchedule(items []model.Item, geo model.Geometry, k int) (int64, []optStep, error) {
	return opt.ExactSchedule(trace.Trace(items), geo, k)
}
