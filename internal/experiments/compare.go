package experiments

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/opt"
	"gccache/internal/policy"
	"gccache/internal/render"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

// shootoutWorkload names a workload used by the policy comparison.
type shootoutWorkload struct {
	name string
	tr   trace.Trace
}

func shootoutWorkloads(k, B int, seed int64) ([]shootoutWorkload, error) {
	runs := func(mean float64) trace.Trace {
		tr, err := workload.BlockRuns(workload.BlockRunsConfig{
			NumBlocks: 512, BlockSize: B, MeanRunLength: mean,
			ZipfS: 1.2, Length: 120000, Seed: seed,
		})
		if err != nil {
			panic(err) // config is static and valid
		}
		return tr
	}
	hot := workload.HotCold{HotItems: 24, BlockSize: B, HotFraction: 0.6,
		ColdUniverse: 8192, Length: 120000, Seed: seed}
	hotTr, err := hot.Generate()
	if err != nil {
		return nil, err
	}
	storage, err := workload.StorageServer{
		BlockSize: B, Streams: 4, RandomUniverse: 16384, MetaBlocks: 64,
		RandomFrac: 0.3, MetaFrac: 0.2, Length: 120000, Seed: seed,
	}.Generate()
	if err != nil {
		return nil, err
	}
	return []shootoutWorkload{
		{"scan (pure spatial)", workload.CyclicScan(8192, 120000)},
		// The stride universe fits an Item Cache of size k but holds more
		// blocks than a Block Cache's k/B frames — Theorem 3's pollution.
		{"stride (no spatial)", workload.Stride(k/2, B, 120000)},
		{"zipf (temporal)", workload.Scatter(workload.Zipf(4096, 1.2, 120000, seed), B, seed)},
		{"blockruns run≈2", runs(2)},
		{"blockruns run≈B/2", runs(float64(B) / 2)},
		{"blockruns run≈B", runs(float64(B))},
		{"hot+cold mix", hotTr},
		{"matrix row-major", workload.MatrixTraversal(128, 512, true, 2)},
		{"matrix col-major", workload.MatrixTraversal(128, 512, false, 2)},
		{"storage server", storage},
	}, nil
}

// PolicyShootout runs experiment E7/E8's workload matrix: every policy on
// every synthetic workload at cache size k, reporting miss ratios and the
// offline bracket, and checking the paper's qualitative claims (Item
// Caches lose on spatial locality, Block Caches lose under pollution,
// IBLP and GCM stay near the best baseline everywhere).
func PolicyShootout(k, B int, seed int64) *Report {
	r := &Report{Name: "policy-shootout"}
	geo := model.NewFixed(B)
	wls, err := shootoutWorkloads(k, B, seed)
	if err != nil {
		r.Failf("workloads: %v", err)
		return r
	}
	// One item-ID bound covering every workload lets each pooled cache be
	// built once per worker on the dense (allocation-free) path and reused
	// across all of its grid cells.
	universe := 0
	for _, wl := range wls {
		if u := wl.tr.Universe(); u > universe {
			universe = u
		}
	}
	universe = model.ItemUniverse(geo, universe)
	builders := []func() cachesim.Cache{
		func() cachesim.Cache { return policy.NewItemLRUBounded(k, universe) },
		func() cachesim.Cache { return policy.NewClock(k) },
		func() cachesim.Cache { return policy.NewFIFO(k) },
		func() cachesim.Cache { return policy.NewBlockLRUBounded(k, geo, universe) },
		func() cachesim.Cache { return policy.NewBlockLoadItemEvict(k, geo) },
		func() cachesim.Cache { return policy.NewAThreshold(k, 2, geo) },
		func() cachesim.Cache { return policy.NewFootprint(k, geo) },
		func() cachesim.Cache { return policy.NewMarking(k, seed) },
		func() cachesim.Cache { return core.NewGCMBounded(k, geo, seed, universe) },
		func() cachesim.Cache { return core.NewIBLPEvenSplitBounded(k, geo, universe) },
		func() cachesim.Cache { return core.NewAdaptiveIBLP(k, geo) },
	}
	names := make([]string, len(builders))
	for i, b := range builders {
		names[i] = b().Name()
	}
	t := &render.Table{
		Title:   fmt.Sprintf("Miss ratios, k=%d, B=%d (lower is better)", k, B),
		Headers: append(append([]string{"workload"}, names...), "opt-lower/acc"),
	}

	type cell struct {
		wi, pi int
		stats  cachesim.Stats
	}
	cells := make([]cell, 0, len(wls)*len(builders))
	for wi := range wls {
		for pi := range builders {
			cells = append(cells, cell{wi: wi, pi: pi})
		}
	}
	// Per-worker pooled caches, lazily built per policy and reset (and
	// reseeded, for randomized policies) before each reuse, so a worker
	// replays all its cells without reconstructing a single policy.
	cachesim.Sweep(len(cells), 0, func() []cachesim.Cache {
		return make([]cachesim.Cache, len(builders))
	}, func(ci int, pool []cachesim.Cache) {
		c := cells[ci]
		cache := pool[c.pi]
		if cache == nil {
			cache = builders[c.pi]()
			pool[c.pi] = cache
		} else if rs, ok := cache.(cachesim.Reseeder); ok {
			rs.Reseed(seed)
		}
		st := cachesim.RunColdBounded(cache, wls[c.wi].tr, universe)
		cells[ci].stats = st // distinct slot per cell: no lock needed
	})
	missRatio := make([][]float64, len(wls))
	for i := range missRatio {
		missRatio[i] = make([]float64, len(builders))
	}
	for _, c := range cells {
		missRatio[c.wi][c.pi] = c.stats.MissRatio()
	}
	lowerPerAccess := make([]float64, len(wls))
	cachesim.ParallelFor(len(wls), 0, func(wi int) {
		lb := opt.BlockLowerBound(wls[wi].tr, geo, k)
		lowerPerAccess[wi] = float64(lb) / float64(len(wls[wi].tr))
	})
	for wi, wl := range wls {
		row := []any{wl.name}
		for pi := range builders {
			row = append(row, missRatio[wi][pi])
		}
		row = append(row, lowerPerAccess[wi])
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)

	idx := func(name string) int {
		for i, n := range names {
			if n == name {
				return i
			}
		}
		return -1
	}
	lru := idx("item-lru")
	blk := idx("block-lru")
	iblp, adaptive := -1, -1
	for i, n := range names {
		if len(n) >= 4 && n[:4] == "iblp" {
			iblp = i
		}
		if len(n) >= 8 && n[:8] == "adaptive" {
			adaptive = i
		}
	}
	gcm := idx("gcm")
	// Claim 1: on the pure-spatial scan, Item-LRU misses everything while
	// block-loading policies approach 1/B.
	if missRatio[0][lru] < 0.99 {
		r.Failf("scan: item-lru miss ratio %.3f, expected ≈1", missRatio[0][lru])
	}
	if missRatio[0][blk] > 2.5/float64(B) {
		r.Failf("scan: block-lru miss ratio %.3f, expected ≈1/B", missRatio[0][blk])
	}
	// Claim 2: under pollution (stride), block-lru is far worse than
	// item-lru.
	if missRatio[1][blk] < 2*missRatio[1][lru] && missRatio[1][lru] > 0.01 {
		r.Failf("stride: block-lru %.3f not clearly worse than item-lru %.3f",
			missRatio[1][blk], missRatio[1][lru])
	}
	// Claim 3: IBLP and GCM stay within a small factor of the best
	// baseline on every workload (the paper's robustness claim).
	for wi, wl := range wls {
		best := missRatio[wi][lru]
		if missRatio[wi][blk] < best {
			best = missRatio[wi][blk]
		}
		for _, pi := range []int{iblp, gcm, adaptive} {
			if pi < 0 {
				continue
			}
			if missRatio[wi][pi] > 2.5*best+0.02 {
				r.Failf("%s: %s miss ratio %.4f vs best single-granularity %.4f",
					wl.name, names[pi], missRatio[wi][pi], best)
			}
		}
	}
	r.Notef("Item Caches excel at temporal and fail at spatial locality; Block Caches are the opposite; IBLP/GCM are robust across the spectrum (paper §2, §4.4)")
	return r
}

// Ablations runs experiment E8: the §5.1 design-choice ablations.
//
//  1. Layer ordering: IBLP vs the promote-on-item-hit variant on a trace
//     where hot items would reorder the block layer.
//  2. Partitioning: optimal split vs even split vs single-layer extremes
//     on a mixed workload.
//  3. GCM's unmarked sibling loads vs classic marking on a spatial scan.
func Ablations(k, B int, seed int64) *Report {
	r := &Report{Name: "ablations"}
	geo := model.NewFixed(B)

	// (1) §5.1 layer ordering. The adversarial pattern: a few hot items
	// (served by the item layer) interleaved 1:1 with a cyclic cold scan
	// whose block working set exactly fills the block layer. With the
	// §5.1 rule, item-layer hits on the hot items never touch the block
	// layer, so the cold blocks cycle through it hit-free... cycle
	// through it and hit every time. In the promote-all ablation the hot
	// items' blocks are refreshed on every hot hit, pinning them in the
	// block layer; the cold cycle then exceeds the remaining frames and,
	// being cyclic LRU, degenerates to thrashing.
	i, b := k/2, k/2
	hotItems := 4
	coldItems := (b / B) * B // cold block working set == block layer frames
	var orderingTr trace.Trace
	coldPos := 0
	for len(orderingTr) < 150000 {
		hot := model.Item(uint64(len(orderingTr)/2%hotItems) * uint64(B))
		orderingTr = append(orderingTr, hot)
		coldBase := uint64(hotItems+1) * uint64(B)
		orderingTr = append(orderingTr, model.Item(coldBase+uint64(coldPos)))
		coldPos = (coldPos + 1) % coldItems
	}
	ordering := &render.Table{
		Title:   "Ablation 1 — §5.1 layer ordering (hot items + cyclic cold blocks)",
		Headers: []string{"variant", "miss-ratio", "spatial-hits", "temporal-hits"},
	}
	orderingU := model.ItemUniverse(geo, orderingTr.Universe())
	real := cachesim.RunColdBounded(core.NewIBLPBounded(i, b, geo, orderingU), orderingTr, orderingU)
	abl := cachesim.RunCold(core.NewIBLPPromoteAll(i, b, geo), orderingTr)
	ordering.AddRow("iblp (item hits do not touch block layer)", real.MissRatio(),
		real.SpatialHits, real.TemporalHits)
	ordering.AddRow("promote-all (violates §5.1)", abl.MissRatio(),
		abl.SpatialHits, abl.TemporalHits)
	if real.MissRatio()*1.5 > abl.MissRatio() {
		r.Failf("ablation 1: proper ordering (%.4f) not clearly better than promote-all (%.4f)",
			real.MissRatio(), abl.MissRatio())
	}
	r.Tables = append(r.Tables, ordering)

	// (1b) §5.1 inclusion policy: neither-inclusive-nor-exclusive IBLP vs
	// the inclusive ablation (item layer contributes nothing) on the same
	// ordering workload, and vs the exclusive ablation whose migrated
	// items punch holes in block copies.
	inclusion := &render.Table{
		Title:   "Ablation 1b — §5.1 inclusion policy (same workload)",
		Headers: []string{"variant", "miss-ratio"},
	}
	inclStats := cachesim.RunCold(core.NewIBLPInclusive(i, b, geo), orderingTr)
	exclStats := cachesim.RunCold(core.NewIBLPExclusive(i, b, geo), orderingTr)
	inclusion.AddRow("iblp (neither inclusive nor exclusive)", real.MissRatio())
	inclusion.AddRow("inclusive (item layer wasted)", inclStats.MissRatio())
	inclusion.AddRow("exclusive (lifetime holes)", exclStats.MissRatio())
	if real.MissRatio() > inclStats.MissRatio()*1.02 {
		r.Failf("ablation 1b: iblp (%.4f) worse than inclusive ablation (%.4f)",
			real.MissRatio(), inclStats.MissRatio())
	}
	r.Tables = append(r.Tables, inclusion)

	// (2) Partition split sweep on a mixed workload.
	mixTr, err := workload.BlockRuns(workload.BlockRunsConfig{
		NumBlocks: 1024, BlockSize: B, MeanRunLength: float64(B) / 2,
		ZipfS: 1.3, Length: 150000, Seed: seed,
	})
	if err != nil {
		r.Failf("workload: %v", err)
		return r
	}
	split := &render.Table{
		Title:   "Ablation 2 — partition split on mixed temporal+spatial workload",
		Headers: []string{"item-layer", "block-layer", "miss-ratio"},
	}
	type splitRes struct {
		i, b int
		mr   float64
	}
	var results []splitRes
	fracs := []float64{0, 0.25, 0.5, 0.75, 1}
	mixU := model.ItemUniverse(geo, mixTr.Universe())
	resCh := make([]splitRes, len(fracs))
	cachesim.ParallelFor(len(fracs), 0, func(fi int) {
		ii := int(float64(k) * fracs[fi])
		st := cachesim.RunColdBounded(core.NewIBLPBounded(ii, k-ii, geo, mixU), mixTr, mixU)
		resCh[fi] = splitRes{i: ii, b: k - ii, mr: st.MissRatio()}
	})
	results = resCh
	for _, res := range results {
		split.AddRow(res.i, res.b, res.mr)
	}
	r.Tables = append(r.Tables, split)
	bestMid, worstEnd := 1.0, 0.0
	for _, res := range results {
		if res.i != 0 && res.b != 0 && res.mr < bestMid {
			bestMid = res.mr
		}
		if (res.i == 0 || res.b == 0) && res.mr > worstEnd {
			worstEnd = res.mr
		}
	}
	if bestMid > worstEnd {
		r.Failf("ablation 2: no mixed split beats the worst single-layer extreme (%.4f vs %.4f)", bestMid, worstEnd)
	}

	// (3) GCM vs classic marking on fresh-block scans (§6.1's B× gap),
	// plus the mark-everything ablation on a no-spatial-locality stride
	// (its marked dead siblings shrink the effective cache).
	scan := workload.Sequential(0, 100000)
	scanU := model.ItemUniverse(geo, scan.Universe())
	gcm := cachesim.RunColdBounded(core.NewGCMBounded(k, geo, seed, scanU), scan, scanU)
	mark := cachesim.RunCold(policy.NewMarking(k, seed), scan)
	marking := &render.Table{
		Title:   "Ablation 3 — GCM's unmarked sibling loads vs classic marking (fresh-block scan)",
		Headers: []string{"policy", "misses", "miss-ratio"},
	}
	marking.AddRow("gcm", gcm.Misses, gcm.MissRatio())
	marking.AddRow("item-marking", mark.Misses, mark.MissRatio())
	r.Tables = append(r.Tables, marking)
	// GCM's ideal gap is B× (one miss per fresh block); phase-reset churn
	// costs a small constant factor, so require at least B/4×.
	if gcm.Misses*int64(B)/4 > mark.Misses {
		r.Failf("ablation 3: GCM %d misses vs marking %d — expected ≳B/4× gap", gcm.Misses, mark.Misses)
	}

	stride := workload.Stride(k*3/4, B, 100000)
	strideU := model.ItemUniverse(geo, stride.Universe())
	gcmStride := cachesim.RunColdBounded(core.NewGCMBounded(k, geo, seed, strideU), stride, strideU)
	markAllStride := cachesim.RunCold(core.NewGCMMarkAll(k, geo, seed), stride)
	markAll := &render.Table{
		Title:   "Ablation 3b — marking loaded siblings (§6.1) on a stride with no spatial locality",
		Headers: []string{"policy", "misses", "miss-ratio"},
	}
	markAll.AddRow("gcm (siblings unmarked)", gcmStride.Misses, gcmStride.MissRatio())
	markAll.AddRow("gcm-mark-all", markAllStride.Misses, markAllStride.MissRatio())
	r.Tables = append(r.Tables, markAll)
	if gcmStride.Misses*3/2 > markAllStride.Misses {
		r.Failf("ablation 3b: mark-all %d misses vs gcm %d — expected pollution penalty",
			markAllStride.Misses, gcmStride.Misses)
	}
	r.Notef("every §5.1/§6.1 design choice is load-bearing: reverting any one measurably hurts")
	return r
}
