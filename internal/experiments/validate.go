package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"gccache/internal/adversary"
	"gccache/internal/bounds"
	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/opt"
	"gccache/internal/policy"
	"gccache/internal/render"
	"gccache/internal/stats"
	"gccache/internal/vsc"
)

// ReductionCheck runs experiment E1: for `rounds` random small
// variable-size caching instances, the exact VSC optimum must equal the
// exact GC optimum of the Theorem 1 reduction (Figure 2).
func ReductionCheck(rounds int, seed int64) *Report {
	r := &Report{Name: "reduction-check"}
	t := &render.Table{
		Title:   "Theorem 1 reduction: VSC OPT vs GC OPT on the reduced instance",
		Headers: []string{"instance", "items", "cache", "trace-len", "gc-trace-len", "vsc-opt", "gc-opt", "equal"},
	}
	rng := rand.New(rand.NewSource(seed))
	done := 0
	for done < rounds {
		n := 2 + rng.Intn(3)
		in := vsc.Instance{Sizes: make([]int, n), Trace: make([]int, 4+rng.Intn(5))}
		total, biggest := 0, 0
		for j := range in.Sizes {
			in.Sizes[j] = 1 + rng.Intn(3)
			total += in.Sizes[j]
			if in.Sizes[j] > biggest {
				biggest = in.Sizes[j]
			}
		}
		if total > 14 {
			continue
		}
		in.CacheSize = biggest + rng.Intn(total-biggest+1)
		for i := range in.Trace {
			in.Trace[i] = rng.Intn(n)
		}
		done++
		vOPT, err := vsc.Exact(in)
		if err != nil {
			r.Failf("vsc exact: %v", err)
			continue
		}
		red, err := vsc.Reduce(in)
		if err != nil {
			r.Failf("reduce: %v", err)
			continue
		}
		gOPT, err := opt.Exact(red.Trace, red.Geometry, red.CacheSize)
		if err != nil {
			r.Failf("gc exact: %v", err)
			continue
		}
		equal := "yes"
		if vOPT != gOPT {
			equal = "NO"
			r.Failf("instance %d: VSC OPT %d != GC OPT %d", done, vOPT, gOPT)
		}
		t.AddRow(done, n, in.CacheSize, len(in.Trace), len(red.Trace), vOPT, gOPT, equal)
	}
	r.Tables = append(r.Tables, t)
	r.Notef("offline GC caching inherits NP-completeness from variable-size caching via this cost-preserving reduction (Theorem 1)")
	return r
}

// LPCrossCheck runs experiment E5: the Theorem 6 and Theorem 7 closed
// forms against direct numeric maximization of the §5.2 programs.
func LPCrossCheck(B float64) *Report {
	r := &Report{Name: "lp-crosscheck"}
	t6 := &render.Table{
		Title:   "Theorem 6 closed form vs numeric LP (block layer)",
		Headers: []string{"b", "h", "B", "closed", "numeric", "rel-err"},
	}
	for _, p := range []struct{ b, h float64 }{
		{256, 16}, {1024, 64}, {4096, 64}, {65536, 256}, {16384, 512},
	} {
		closed := bounds.BlockLayerUB(p.b, p.h, B)
		lp := bounds.Theorem6LP(p.b, p.h, B, 64)
		re := stats.RelErr(lp, closed)
		t6.AddRow(p.b, p.h, B, closed, lp, re)
		if lp > closed*(1+1e-6) {
			r.Failf("Theorem 6: numeric optimum %v exceeds closed form %v at b=%v h=%v", lp, closed, p.b, p.h)
		}
		if re > 0.02 {
			r.Failf("Theorem 6: closed form and LP differ by %v at b=%v h=%v", re, p.b, p.h)
		}
	}
	t7 := &render.Table{
		Title:   "Theorem 7 closed form vs numeric LP (combined)",
		Headers: []string{"k/h", "i", "b", "h", "closed", "numeric", "rel-err"},
	}
	h := 4096.0
	for _, mult := range []float64{2, 3, 8, 32, 64} {
		k := mult * h
		i := bounds.OptimalItemLayer(k, h, B)
		b := k - i
		closed := bounds.IBLPUB(i, b, h, B)
		lp := bounds.Theorem7LP(i, b, h, B, 64)
		re := stats.RelErr(lp, closed)
		t7.AddRow(mult, i, b, h, closed, lp, re)
		if lp > closed*(1+1e-6) {
			r.Failf("Theorem 7: numeric optimum %v exceeds closed form %v at k=%vh", lp, closed, mult)
		}
		if re > 0.02 {
			r.Failf("Theorem 7: closed form and LP differ by %v at k=%vh", re, mult)
		}
	}
	r.Tables = append(r.Tables, t6, t7)
	r.Notef("transcribed closed forms maximize the same programs the paper solved in Mathematica (§5.2)")
	return r
}

// AdversarySweep runs experiments E2–E4: each §4 construction against the
// policy it targets across several (k, h) points, comparing the measured
// competitive-ratio lower bound to the analytic claim — plus IBLP under
// the same adversaries to show it escapes them.
func AdversarySweep(B int, phases int) *Report {
	r := &Report{Name: "adversary-sweep"}
	geo := model.NewFixed(B)
	t := &render.Table{
		Title: fmt.Sprintf("§4 constructions, measured vs claimed (B=%d, %d phases)", B, phases),
		Headers: []string{"construction", "policy", "k", "h", "measured", "claimed",
			"measured/claimed"},
	}
	type job struct {
		construction string
		policyName   string
		k, h         int
		run          func() (adversary.Result, error)
	}
	var jobs []job
	add := func(construction string, k, h int, mk func() cachesim.Cache,
		run func(c cachesim.Cache) (adversary.Result, error)) {
		c := mk()
		jobs = append(jobs, job{
			construction: construction,
			policyName:   c.Name(),
			k:            k, h: h,
			run: func() (adversary.Result, error) { return run(c) },
		})
	}
	cfg := func(h int) adversary.Config { return adversary.Config{OptSize: h, Phases: phases} }

	for _, p := range []struct{ k, h int }{{256, 64 + 1}, {512, 65}, {1024, 129}} {
		k, h := p.k, p.h
		add("thm2-item", k, h,
			func() cachesim.Cache { return policy.NewItemLRU(k) },
			func(c cachesim.Cache) (adversary.Result, error) { return adversary.ItemCache(c, geo, cfg(h)) })
		add("thm2-item", k, h,
			func() cachesim.Cache { return core.NewIBLPEvenSplit(k, geo) },
			func(c cachesim.Cache) (adversary.Result, error) { return adversary.ItemCache(c, geo, cfg(h)) })
		add("thm4-general", k, h,
			func() cachesim.Cache { return policy.NewAThreshold(k, 2, geo) },
			func(c cachesim.Cache) (adversary.Result, error) { return adversary.General(c, geo, cfg(h)) })
		add("thm4-general", k, h,
			func() cachesim.Cache { return policy.NewBlockLoadItemEvict(k, geo) },
			func(c cachesim.Cache) (adversary.Result, error) { return adversary.General(c, geo, cfg(h)) })
	}
	for _, p := range []struct{ k, h int }{{512, 8}, {1024, 16}} {
		k, h := p.k, p.h
		add("thm3-block", k, h,
			func() cachesim.Cache { return policy.NewBlockLRU(k, geo) },
			func(c cachesim.Cache) (adversary.Result, error) { return adversary.BlockCache(c, geo, cfg(h)) })
	}

	results := make([]adversary.Result, len(jobs))
	errs := make([]error, len(jobs))
	var mu sync.Mutex
	cachesim.ParallelFor(len(jobs), 0, func(i int) {
		res, err := jobs[i].run()
		mu.Lock()
		results[i], errs[i] = res, err
		mu.Unlock()
	})
	for i, jb := range jobs {
		if errs[i] != nil {
			r.Failf("%s vs %s: %v", jb.construction, jb.policyName, errs[i])
			continue
		}
		res := results[i]
		rel := res.Ratio() / res.BoundClaim
		t.AddRow(jb.construction, jb.policyName, jb.k, jb.h, res.Ratio(), res.BoundClaim, rel)
		targeted := (jb.construction == "thm2-item" && jb.policyName == "item-lru") ||
			jb.construction == "thm3-block" ||
			(jb.construction == "thm4-general" && jb.policyName != "iblp")
		if targeted && rel < 0.85 {
			r.Failf("%s vs %s at k=%d h=%d: measured %.3f well below claim %.3f",
				jb.construction, jb.policyName, jb.k, jb.h, res.Ratio(), res.BoundClaim)
		}
		if jb.construction == "thm2-item" && jb.policyName[:4] == "iblp" && rel > 0.6 {
			r.Failf("IBLP did not escape the item-cache adversary (rel %.3f)", rel)
		}
	}
	r.Tables = append(r.Tables, t)
	r.Notef("targeted policies realize their §4 lower bounds; IBLP's block layer absorbs the Theorem 2 trace")
	return r
}

// FaultRateCheck runs experiment E6: the Theorem 8 family against several
// policies, comparing measured fault rates to the measured-f/g bound, and
// the Theorem 9–11 upper bounds for IBLP on the same traces.
func FaultRateCheck(k, B int, p float64, phases int) *Report {
	r := &Report{Name: "fault-rate"}
	geo := model.NewFixed(B)
	t := &render.Table{
		Title:   fmt.Sprintf("Theorem 8 family (k=%d, B=%d, f=n^(1/%g))", k, B, p),
		Headers: []string{"policy", "fault-rate", "thm8-bound", "rate/bound"},
	}
	mk := []func() cachesim.Cache{
		func() cachesim.Cache { return policy.NewItemLRU(k) },
		func() cachesim.Cache { return policy.NewFIFO(k) },
		func() cachesim.Cache { return policy.NewBlockLRU(k, geo) },
		func() cachesim.Cache { return policy.NewBlockLoadItemEvict(k, geo) },
		func() cachesim.Cache { return core.NewIBLPEvenSplit(k, geo) },
	}
	for _, build := range mk {
		c := build()
		res, err := adversary.Locality(c, geo, adversary.LocalityConfig{P: p, Phases: phases})
		if err != nil {
			r.Failf("%s: %v", c.Name(), err)
			continue
		}
		t.AddRow(c.Name(), res.FaultRate, res.Bound, res.FaultRate/res.Bound)
		if res.FaultRate < res.Bound*(1-1e-9) {
			r.Failf("%s beats the Theorem 8 bound: %.5f < %.5f", c.Name(), res.FaultRate, res.Bound)
		}
	}
	r.Tables = append(r.Tables, t)
	if math.IsNaN(p) {
		r.Failf("bad exponent")
	}
	r.Notef("every deterministic policy's fault rate on the family trace respects the Theorem 8 lower bound computed from the trace's measured f and g")
	return r
}
