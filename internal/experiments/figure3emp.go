package experiments

import (
	"fmt"
	"sync"

	"gccache/internal/adversary"
	"gccache/internal/bounds"
	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/render"
)

// Figure3Empirical runs experiment E7: a laptop-scale overlay of
// Figure 3. For a sweep of optimal sizes h at fixed (k, B), it measures
// the adversarial competitive-ratio lower bound realized by actual policy
// implementations — Item-LRU under the Theorem 2 construction, Block-LRU
// under Theorem 3 where it applies, and IBLP under the Theorem 2
// construction (which it escapes) — next to the analytic curves.
func Figure3Empirical(k, B, phases int) *Report {
	r := &Report{Name: "figure3-empirical"}
	geo := model.NewFixed(B)
	t := &render.Table{
		Title: fmt.Sprintf("Figure 3 empirical overlay (k=%d, B=%d, %d phases)", k, B, phases),
		Headers: []string{"h", "item-lru measured", "thm2 bound", "iblp measured (same trace)",
			"iblp-ub(thm7)", "block-lru measured", "thm3 bound"},
	}
	var hs []int
	for h := B + 1; h <= k/2; h *= 2 {
		hs = append(hs, h)
	}
	type rowData struct {
		h                               int
		lruRatio, iblpRatio, blockRatio float64
		thm2, thm7, thm3                float64
		lruErr, iblpErr, blockErr       error
	}
	rows := make([]rowData, len(hs))
	var mu sync.Mutex
	cachesim.ParallelFor(len(hs), 0, func(i int) {
		h := hs[i]
		rd := rowData{h: h}
		cfg := adversary.Config{OptSize: h, Phases: phases}
		if res, err := adversary.ItemCache(policy.NewItemLRU(k), geo, cfg); err == nil {
			rd.lruRatio, rd.thm2 = res.Ratio(), res.BoundClaim
		} else {
			rd.lruErr = err
		}
		if res, err := adversary.ItemCache(core.NewIBLPEvenSplit(k, geo), geo, cfg); err == nil {
			rd.iblpRatio = res.Ratio()
		} else {
			rd.iblpErr = err
		}
		rd.thm7 = bounds.IBLPUB(float64(k/2), float64(k-k/2), float64(h), float64(B))
		if k/B >= h {
			if res, err := adversary.BlockCache(policy.NewBlockLRU(k, geo), geo, cfg); err == nil {
				rd.blockRatio, rd.thm3 = res.Ratio(), res.BoundClaim
			} else {
				rd.blockErr = err
			}
		}
		mu.Lock()
		rows[i] = rd
		mu.Unlock()
	})
	for _, rd := range rows {
		blockCell, thm3Cell := "-", "-"
		if rd.thm3 != 0 {
			blockCell = render.FormatFloat(rd.blockRatio)
			thm3Cell = render.FormatFloat(rd.thm3)
		}
		t.AddRow(rd.h, rd.lruRatio, rd.thm2, rd.iblpRatio, rd.thm7, blockCell, thm3Cell)
		for _, err := range []error{rd.lruErr, rd.iblpErr, rd.blockErr} {
			if err != nil {
				r.Failf("h=%d: %v", rd.h, err)
			}
		}
		if rd.thm2 > 0 && rd.lruRatio < 0.85*rd.thm2 {
			r.Failf("h=%d: item-lru measured %.3f below Theorem 2 claim %.3f", rd.h, rd.lruRatio, rd.thm2)
		}
		if rd.thm7 > 0 && rd.iblpRatio > rd.thm7*1.000001 {
			r.Failf("h=%d: IBLP measured %.3f exceeds its Theorem 7 upper bound %.3f — contradiction",
				rd.h, rd.iblpRatio, rd.thm7)
		}
		if rd.thm3 > 0 && rd.blockRatio < 0.85*rd.thm3 {
			r.Failf("h=%d: block-lru measured %.3f below Theorem 3 claim %.3f", rd.h, rd.blockRatio, rd.thm3)
		}
	}
	r.Tables = append(r.Tables, t)
	r.Notef("measured adversarial ratios straddle the analytic curves: baselines hit their lower bounds, IBLP stays under its upper bound")
	return r
}
