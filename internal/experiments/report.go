// Package experiments regenerates every table and figure of the paper
// and runs the empirical validation studies listed in DESIGN.md
// (experiments T1, T2, F3, F6, E1–E8). Each entry point returns a Report
// of rendered tables/charts plus machine-checkable notes; the cmd/gcrepro
// binary writes them to disk and the root bench harness times them.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gccache/internal/render"
)

// Report is the output of one experiment.
type Report struct {
	// Name identifies the experiment (e.g. "table1", "figure3").
	Name string
	// Tables and Charts hold the rendered artifacts in display order.
	Tables []*render.Table
	Charts []*render.Chart
	// Notes carries free-form findings ("IBLP beats ItemLRU for k ≥ 3h").
	Notes []string
	// Failures lists violated expectations; a faithful reproduction run
	// has none.
	Failures []string
}

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Failf appends a formatted failure.
func (r *Report) Failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// Err returns an error summarizing failures, or nil.
func (r *Report) Err() error {
	if len(r.Failures) == 0 {
		return nil
	}
	return fmt.Errorf("experiment %s: %d expectation(s) violated: %s",
		r.Name, len(r.Failures), strings.Join(r.Failures, "; "))
}

// WriteText renders the whole report to w.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "#### experiment %s ####\n", r.Name); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.WriteText(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, c := range r.Charts {
		if err := c.WriteText(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	for _, f := range r.Failures {
		if _, err := fmt.Fprintf(w, "FAIL: %s\n", f); err != nil {
			return err
		}
	}
	return nil
}

// WriteFiles writes the report as <dir>/<name>.txt plus one CSV per
// table (<dir>/<name>_<i>.csv).
func (r *Report) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	txt, err := os.Create(filepath.Join(dir, r.Name+".txt"))
	if err != nil {
		return err
	}
	// Close errors matter here: a full disk can surface only at Close,
	// and a silently truncated report would read as a reproduction pass.
	if err := r.WriteText(txt); err != nil {
		txt.Close()
		return err
	}
	if err := txt.Close(); err != nil {
		return err
	}
	for i, t := range r.Tables {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s_%d.csv", r.Name, i)))
		if err != nil {
			return err
		}
		werr := t.WriteCSV(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}
