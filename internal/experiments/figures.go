package experiments

import (
	"math"

	"gccache/internal/bounds"
	"gccache/internal/render"
)

// logSpace returns n log-spaced values in [lo, hi].
func logSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// Figure3 regenerates the paper's Figure 3: competitive-ratio bounds as a
// function of the optimal cache size h, at fixed online size k and block
// size B (the paper uses k = 1.28M, B = 64). The series are the
// Sleator–Tarjan bound, the general GC lower bound (Theorem 4, best a),
// the Item Cache (Theorem 2) and Block Cache (Theorem 3) lower bounds,
// and the IBLP upper bound with §5.3 optimal layer sizes.
func Figure3(k, B float64, points int) *Report {
	r := &Report{Name: "figure3"}
	if points < 2 {
		points = 2
	}
	hs := logSpace(math.Max(B, 2), k/2, points)

	t := &render.Table{
		Title: "Figure 3: bounds vs optimal cache size h (k=" +
			render.FormatFloat(k) + ", B=" + render.FormatFloat(B) + ")",
		Headers: []string{"h", "sleator-tarjan", "gc-lower", "item-lru(ub)",
			"block-lru(ub)", "iblp-ub(thm7)"},
	}
	var st, gc, item, block, iblp []float64
	for _, h := range hs {
		stv := bounds.SleatorTarjan(k, h)
		gcv := bounds.GeneralLBBest(k, h, B)
		itv := bounds.ItemLRUUB(k, h, B)
		blv := bounds.BlockLRUUB(k, h, B)
		ubv := bounds.IBLPKnownH(k, h, B)
		t.AddRow(h, stv, gcv, itv, blv, ubv)
		st = append(st, stv)
		gc = append(gc, gcv)
		item = append(item, itv)
		block = append(block, blv)
		iblp = append(iblp, ubv)
	}
	r.Tables = append(r.Tables, t)
	r.Charts = append(r.Charts, &render.Chart{
		Title: "Figure 3 (log y): competitive ratio vs h",
		XName: "h",
		X:     hs,
		Series: []render.Series{
			{Name: "sleator-tarjan", Y: st},
			{Name: "gc-lower", Y: gc},
			{Name: "item-lru-ub", Y: item},
			{Name: "block-lru-ub", Y: block},
			{Name: "iblp-ub", Y: iblp},
		},
		LogY: true,
	})

	// Shape checks from the paper's discussion of the figure.
	for idx, h := range hs {
		if gc[idx] > iblp[idx]*(1+1e-9) {
			r.Failf("lower bound exceeds IBLP UB at h=%v", h)
		}
		if st[idx] > gc[idx]*(1+1e-9) {
			r.Failf("ST exceeds GC lower bound at h=%v", h)
		}
		// "IBLP performs close to optimal for all values of k": within
		// the ≈3× of Table 1 at every h.
		if iblp[idx] > 3.2*gc[idx] {
			r.Failf("IBLP UB more than ≈3× the lower bound at h=%v (%.2f vs %.2f)",
				h, iblp[idx], gc[idx])
		}
	}
	// Crossovers: IBLP beats Item-LRU for k ≳ 3h ("IBLP outperforms the
	// small-granularity Item Cache for k ≈ 3h and larger") and beats
	// Block-LRU for k ≲ 2Bh, with Block-LRU's bound diverging long before
	// k/B ≈ h ("the performance of the baselines degrades severely
	// outside of their ideal performance conditions").
	for idx, h := range hs {
		if k >= 4*h && iblp[idx] > item[idx]*(1+1e-9) {
			r.Failf("IBLP UB above Item-LRU UB at k=%.1fh", k/h)
		}
		if k <= 1.5*B*h && !math.IsInf(block[idx], 1) && iblp[idx] > block[idx]*(1+1e-9) {
			r.Failf("IBLP UB above Block-LRU UB at k=%.1fh", k/h)
		}
	}
	r.Notef("gap between online and offline grows to ≈B× as h → k, tapering to 2× at k ≈ Bh (paper §4.4)")
	r.Notef("IBLP tracks the lower bound within ≈3× everywhere; each single-granularity baseline degrades severely outside its ideal regime (paper §5.3)")
	return r
}

// Figure6 regenerates the paper's Figure 6: IBLP's upper bound with fixed
// layer sizes (tuned for particular optimal sizes h*) against the
// per-h optimal envelope, at fixed k and B. It exhibits the paper's §5.3
// observation that fixed sizings degrade sharply for h larger than their
// tuning point but only mildly for smaller h.
func Figure6(k, B float64, hStars []float64, points int) *Report {
	r := &Report{Name: "figure6"}
	if points < 2 {
		points = 2
	}
	hs := logSpace(math.Max(B, 2), k/2, points)

	headers := []string{"h", "optimal-sizing"}
	type fixedCurve struct {
		label string
		i, b  float64
		ys    []float64
	}
	var curves []fixedCurve
	for _, hStar := range hStars {
		i := bounds.OptimalItemLayer(k, hStar, B)
		curves = append(curves, fixedCurve{
			label: "fixed(i tuned@h=" + render.FormatFloat(hStar) + ")",
			i:     i,
			b:     k - i,
		})
		headers = append(headers, "fixed@h="+render.FormatFloat(hStar))
	}
	t := &render.Table{
		Title: "Figure 6: fixed vs optimal IBLP layer sizes (k=" +
			render.FormatFloat(k) + ", B=" + render.FormatFloat(B) + ")",
		Headers: headers,
	}
	var envelope []float64
	for _, h := range hs {
		row := []any{h}
		env := bounds.IBLPKnownH(k, h, B)
		envelope = append(envelope, env)
		row = append(row, env)
		for ci := range curves {
			v := bounds.IBLPUB(curves[ci].i, curves[ci].b, h, B)
			curves[ci].ys = append(curves[ci].ys, v)
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)
	series := []render.Series{{Name: "optimal-sizing", Y: envelope}}
	for _, c := range curves {
		series = append(series, render.Series{Name: c.label, Y: c.ys})
	}
	r.Charts = append(r.Charts, &render.Chart{
		Title:  "Figure 6: competitive ratio vs h (lower is better)",
		XName:  "h",
		X:      hs,
		Series: series,
		LogY:   true,
	})

	// Checks: the envelope lower-bounds every fixed curve; each fixed
	// curve touches the envelope near its tuning point; and degradation
	// is severe above the tuning point, limited below it.
	for ci, c := range curves {
		hStar := hStars[ci]
		atStar := bounds.IBLPUB(c.i, c.b, hStar, B)
		envStar := bounds.IBLPKnownH(k, hStar, B)
		if atStar < envStar*(1-1e-9) {
			r.Failf("fixed curve %d below envelope at its own tuning point", ci)
		}
		if atStar > envStar*1.0001 {
			r.Failf("fixed curve %d does not touch the envelope at h*=%v (%.4f vs %.4f)",
				ci, hStar, atStar, envStar)
		}
		for idx, h := range hs {
			if c.ys[idx] < envelope[idx]*(1-1e-9) {
				r.Failf("fixed sizing beats the optimal envelope at h=%v — impossible", h)
			}
		}
	}
	r.Notef("fixed layer sizes are near-optimal only around their tuning h and degrade for larger h (paper §5.3, 'Unknown optimal size')")
	return r
}
