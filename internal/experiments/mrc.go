package experiments

import (
	"fmt"

	"gccache/internal/locality"
	"gccache/internal/model"
	"gccache/internal/render"
	"gccache/internal/workload"
)

// MRCStudy computes exact LRU miss-ratio curves at item and block
// granularity (Mattson one-pass stack distances) for workloads across
// the spatial-locality spectrum — a practitioner's view of the same
// trade-off Figure 3 proves adversarially: with spatial locality, block
// frames dominate at every budget; without it, whole-block frames waste
// B× capacity.
func MRCStudy(B int, seed int64) *Report {
	r := &Report{Name: "mrc-study"}
	geo := model.NewFixed(B)
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}

	wls := []shootoutWorkload{}
	runs, err := workload.BlockRuns(workload.BlockRunsConfig{
		NumBlocks: 512, BlockSize: B, MeanRunLength: float64(B) / 2,
		ZipfS: 1.2, Length: 200000, Seed: seed,
	})
	if err != nil {
		r.Failf("workload: %v", err)
		return r
	}
	wls = append(wls,
		shootoutWorkload{"spatial (runs ≈ B/2)", runs},
		shootoutWorkload{"no spatial (stride)", workload.Stride(3000, B, 200000)},
		shootoutWorkload{"sequential sweep", workload.CyclicScan(6000, 200000)},
	)

	for _, wl := range wls {
		t := &render.Table{
			Title: fmt.Sprintf("Miss counts vs capacity — %s (B=%d, %d accesses)",
				wl.name, B, len(wl.tr)),
			Headers: []string{"capacity k (items)", "item-LRU misses", "block-LRU misses (k/B frames)"},
		}
		itemCurve := locality.MissRatioCurve(wl.tr, sizes)
		frames := make([]int, len(sizes))
		for i, s := range sizes {
			frames[i] = s / B
		}
		blockCurve := locality.BlockMissRatioCurve(wl.tr, geo, frames)
		var itemY, blockY []float64
		for i, s := range sizes {
			t.AddRow(s, itemCurve[i], blockCurve[i])
			itemY = append(itemY, float64(itemCurve[i]))
			blockY = append(blockY, float64(blockCurve[i]))
		}
		r.Tables = append(r.Tables, t)
		xs := make([]float64, len(sizes))
		for i, s := range sizes {
			xs[i] = float64(s)
		}
		r.Charts = append(r.Charts, &render.Chart{
			Title: "MRC — " + wl.name,
			XName: "capacity (items)",
			X:     xs,
			Series: []render.Series{
				{Name: "item-lru", Y: itemY},
				{Name: "block-lru", Y: blockY},
			},
			LogY: true, Height: 12,
		})
		// Direction checks at the largest common capacity.
		last := len(sizes) - 1
		switch wl.name {
		case "sequential sweep":
			if blockCurve[last] > itemCurve[last] {
				r.Failf("sweep: block curve above item curve at k=%d", sizes[last])
			}
		case "no spatial (stride)":
			// One live item per block: frames are B× less effective.
			mid := 5 // k=2048: item holds 2048 of 3000; 32 frames hold 32.
			if blockCurve[mid] < itemCurve[mid] {
				r.Failf("stride: block curve below item curve at k=%d", sizes[mid])
			}
		}
	}
	r.Notef("the miss-ratio curves cross with the workload's spatial locality, the practitioner-facing face of the Theorem 2/3 dichotomy")
	return r
}
