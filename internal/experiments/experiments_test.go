package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The experiment entry points are self-checking: each records violated
// expectations in Report.Failures. The tests assert clean runs at reduced
// (fast) parameter scales, plus presentation-layer behavior.

func TestTable1Reproduces(t *testing.T) {
	r := Table1(16384, 64)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 3 {
		t.Fatalf("unexpected shape: %+v", r.Tables)
	}
}

func TestTable2Reproduces(t *testing.T) {
	r := Table2(64, []float64{2, 3, 4}, 65536)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(r.Tables[0].Rows) != 9 {
		t.Fatalf("want 9 rows (3 p × 3 g), got %d", len(r.Tables[0].Rows))
	}
}

func TestFigure3Reproduces(t *testing.T) {
	r := Figure3(1.28e6, 64, 40)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(r.Charts) != 1 {
		t.Fatal("missing chart")
	}
}

func TestFigure6Reproduces(t *testing.T) {
	r := Figure6(1.28e6, 64, []float64{512, 8192, 131072}, 40)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReductionCheckClean(t *testing.T) {
	r := ReductionCheck(8, 7)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(r.Tables[0].Rows) != 8 {
		t.Fatalf("want 8 rows, got %d", len(r.Tables[0].Rows))
	}
}

func TestLPCrossCheckClean(t *testing.T) {
	r := LPCrossCheck(64)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestAdversarySweepClean(t *testing.T) {
	r := AdversarySweep(64, 8)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultRateCheckClean(t *testing.T) {
	r := FaultRateCheck(24, 4, 2, 3)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyShootoutClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shootout is the slowest experiment")
	}
	r := PolicyShootout(512, 16, 11)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationsClean(t *testing.T) {
	r := Ablations(512, 16, 5)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 5 {
		t.Fatalf("want 5 ablation tables, got %d", len(r.Tables))
	}
}

func TestFigure3EmpiricalClean(t *testing.T) {
	r := Figure3Empirical(256, 16, 10)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReportWriteTextIncludesEverything(t *testing.T) {
	r := Table1(1024, 16)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"experiment table1", "Sleator-Tarjan", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q", want)
		}
	}
}

func TestReportWriteFiles(t *testing.T) {
	dir := t.TempDir()
	r := Table1(1024, 16)
	if err := r.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1.txt")); err != nil {
		t.Errorf("txt missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1_0.csv")); err != nil {
		t.Errorf("csv missing: %v", err)
	}
}

func TestReportErrAggregates(t *testing.T) {
	r := &Report{Name: "x"}
	if r.Err() != nil {
		t.Error("clean report errored")
	}
	r.Failf("boom %d", 1)
	r.Failf("boom %d", 2)
	err := r.Err()
	if err == nil || !strings.Contains(err.Error(), "2 expectation(s)") {
		t.Errorf("Err = %v", err)
	}
}

func TestFigure5StressClean(t *testing.T) {
	r := Figure5Stress(96, 96, 8, 48, 60000)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedComparisonClean(t *testing.T) {
	r := RandomizedComparison(512, 16, 10, 3)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 3 {
		t.Fatalf("want 3 tables (adversarial, stride, seed variance), got %d", len(r.Tables))
	}
}

func TestFigure2DemoClean(t *testing.T) {
	r := Figure2Demo()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(r.Tables))
	}
	// The Figure 2 instance's optimum is 4 misses (loads of A, B, C and
	// the A reload).
	found := false
	for _, row := range r.Tables[0].Rows {
		if row[0] == "GC optimal misses (reduced instance)" && row[1] == "4" {
			found = true
		}
	}
	if !found {
		t.Error("expected GC optimum 4 in summary table")
	}
}

func TestFigure6EmpiricalClean(t *testing.T) {
	r := Figure6Empirical(128, 8, 64, 40000)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveStudyClean(t *testing.T) {
	r := AdaptiveStudy(512, 16, 3)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1DemoClean(t *testing.T) {
	r := Figure1Demo()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure4DemoClean(t *testing.T) {
	r := Figure4Demo()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryEndToEnd runs every registered artifact at quick scale:
// the single test that certifies the whole reproduction.
func TestRegistryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick-scale reproduction")
	}
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.Label, func(t *testing.T) {
			rep := spec.Run(true)
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
			if rep.Name == "" || (len(rep.Tables) == 0 && len(rep.Charts) == 0) {
				t.Fatalf("artifact %q produced no content", spec.Label)
			}
		})
	}
}

func TestMRCStudyClean(t *testing.T) {
	r := MRCStudy(16, 4)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 3 || len(r.Charts) != 3 {
		t.Fatalf("want 3 tables + 3 charts, got %d/%d", len(r.Tables), len(r.Charts))
	}
}
