package experiments

import (
	"math"

	"gccache/internal/bounds"
	"gccache/internal/locality"
	"gccache/internal/render"
	"gccache/internal/stats"
)

// Table1 regenerates the paper's Table 1 ("Salient bounds for online
// cache size k and optimal cache size h") at the given h and B: for the
// Sleator–Tarjan baseline, the GC lower bound (Theorem 4, best a), and
// the GC upper bound (IBLP with §5.3 sizing), it reports the competitive
// ratio at constant augmentation (k = 2h), the ratio=augmentation meeting
// point, and the augmentation needed for the asymptotic constant ratio —
// alongside the paper's closed-form approximations.
func Table1(h, B float64) *Report {
	r := &Report{Name: "table1"}
	st, lower, upper := bounds.Table1(h, B)

	t := &render.Table{
		Title: render.FormatFloat(B) + "=B, h=" + render.FormatFloat(h) +
			": Augmentation ⇒ Competitive Ratio",
		Headers: []string{"Setting", "Sleator-Tarjan", "GC Lower (paper ≈)", "GC Lower (exact)",
			"GC Upper (paper ≈)", "GC Upper (exact)"},
	}
	t.AddRow("Constant Augmentation (k=2h)",
		"2 ⇒ "+render.FormatFloat(st.ConstantAugmentation.Ratio),
		"2 ⇒ B = "+render.FormatFloat(B),
		"2 ⇒ "+render.FormatFloat(lower.ConstantAugmentation.Ratio),
		"2 ⇒ 2B = "+render.FormatFloat(2*B),
		"2 ⇒ "+render.FormatFloat(upper.ConstantAugmentation.Ratio))
	t.AddRow("Ratio = Augmentation",
		render.FormatFloat(st.Meeting.Augmentation)+" ⇒ "+render.FormatFloat(st.Meeting.Ratio),
		"√B = "+render.FormatFloat(math.Sqrt(B))+" ⇒ √B",
		render.FormatFloat(lower.Meeting.Augmentation)+" ⇒ "+render.FormatFloat(lower.Meeting.Ratio),
		"√(2B) = "+render.FormatFloat(math.Sqrt(2*B))+" ⇒ √(2B)",
		render.FormatFloat(upper.Meeting.Augmentation)+" ⇒ "+render.FormatFloat(upper.Meeting.Ratio))
	t.AddRow("Constant Ratio (k=Bh)",
		"B ⇒ "+render.FormatFloat(bounds.SleatorTarjan(B*h, h)),
		"B ⇒ 2",
		"B ⇒ "+render.FormatFloat(lower.ConstantRatio.Ratio),
		"B ⇒ 3",
		"B ⇒ "+render.FormatFloat(upper.ConstantRatio.Ratio))
	r.Tables = append(r.Tables, t)

	// Machine checks of the paper's approximations. The paper's entries
	// are leading-order in B (e.g. the exact lower-bound meeting point is
	// 1 + √B, printed as √B), so the agreement checks require B ≥ 32;
	// for smaller B the exact values are still printed, with a note.
	if B >= 32 {
		check := func(name string, got, want, tol float64) {
			if stats.RelErr(got, want) > tol {
				r.Failf("%s: %v, paper claims ≈ %v", name, got, want)
			}
		}
		check("GC lower @2h ≈ B", lower.ConstantAugmentation.Ratio, B, 0.05)
		check("GC upper @2h ≈ 2B", upper.ConstantAugmentation.Ratio, 2*B, 0.05)
		check("GC lower meet ≈ √B", lower.Meeting.Augmentation, math.Sqrt(B), 0.2)
		check("GC upper meet ≈ √(2B)", upper.Meeting.Augmentation, math.Sqrt(2*B), 0.2)
		check("GC lower @Bh ≈ 2", lower.ConstantRatio.Ratio, 2, 0.05)
		check("GC upper @Bh ≈ 3", upper.ConstantRatio.Ratio, 3, 0.05)
	} else {
		r.Notef("B = %v < 32: the paper's leading-order entries are loose at small B; exact values shown, approximation checks skipped", B)
	}
	r.Notef("GC caching adds a ≈B× penalty to ratio × augmentation relative to Sleator–Tarjan (paper Table 1)")
	return r
}

// Table2 regenerates the paper's Table 2: fault-rate bounds in the
// extended locality model for f(n) = n^(1/p) and three spatial-locality
// levels g ∈ {f, f/√B, f/B}, comparing an equally split IBLP cache
// (i = b = size) against the lower bound for a cache of half the total
// (h = size, i.e. augmentation 2). Both the paper's asymptotic forms and
// the exact bound values are shown.
func Table2(B float64, ps []float64, size float64) *Report {
	r := &Report{Name: "table2"}
	t := &render.Table{
		Title: "Fault-rate bounds, i = b = " + render.FormatFloat(size) +
			", h = " + render.FormatFloat(size) + ", B = " + render.FormatFloat(B),
		Headers: []string{"f(n)", "g(n)", "LB (paper)", "LB (exact)",
			"item UB (paper)", "item UB (exact)", "block UB (paper)", "block UB (exact)"},
	}
	h := size
	i, b := size, size
	type gCase struct {
		label string
		gamma float64
		// paper's asymptotic entries as functions of (p, h/i/b, B)
		lbPaper, itemPaper, blockPaper func(p float64) float64
	}
	cases := []gCase{
		{
			label: "f", gamma: 1,
			lbPaper:    func(p float64) float64 { return 1 / math.Pow(h, p-1) },
			itemPaper:  func(p float64) float64 { return 1 / math.Pow(i, p-1) },
			blockPaper: func(p float64) float64 { return math.Pow(B, p-1) / math.Pow(b, p-1) },
		},
		{
			label: "f/√B", gamma: math.Sqrt(B),
			lbPaper:    func(p float64) float64 { return 1 / (math.Sqrt(B) * math.Pow(h, p-1)) },
			itemPaper:  func(p float64) float64 { return 1 / math.Pow(i, p-1) },
			blockPaper: func(p float64) float64 { return math.Pow(B, p-1) / (math.Pow(B, p/2) * math.Pow(b, p-1)) },
		},
		{
			label: "f/B", gamma: B,
			lbPaper:    func(p float64) float64 { return 1 / (B * math.Pow(h, p-1)) },
			itemPaper:  func(p float64) float64 { return 1 / math.Pow(i, p-1) },
			blockPaper: func(p float64) float64 { return 1 / (B * math.Pow(b, p-1)) },
		},
	}
	for _, p := range ps {
		f := locality.Poly{C: 1, P: p}
		for _, c := range cases {
			g := locality.Func(f)
			if c.gamma != 1 {
				g = locality.Scaled{F: f, Gamma: c.gamma}
			}
			lb := bounds.FaultRateLB(h, f, g)
			iu := bounds.ItemLayerFaultUB(i, f)
			bu := bounds.BlockLayerFaultUB(b, B, g)
			fLabel := "n^(1/" + render.FormatFloat(p) + ")"
			t.AddRow(fLabel, c.label,
				c.lbPaper(p), lb, c.itemPaper(p), iu, c.blockPaper(p), bu)
			// The exact values must agree with the paper's leading-order
			// forms to within the dropped lower-order terms.
			if stats.RelErr(lb, c.lbPaper(p)) > 0.1 {
				r.Failf("LB mismatch at p=%v g=%s: exact %v vs paper %v", p, c.label, lb, c.lbPaper(p))
			}
			if stats.RelErr(iu, c.itemPaper(p)) > 0.1 {
				r.Failf("item UB mismatch at p=%v: exact %v vs paper %v", p, iu, c.itemPaper(p))
			}
			// The paper's block-UB entry for g=f/√B keeps only the p=2
			// leading term; compare against the general exact form instead
			// of failing for p > 2 (documented in EXPERIMENTS.md).
			if c.gamma == 1 || c.gamma == B {
				if stats.RelErr(bu, c.blockPaper(p)) > 0.1 {
					r.Failf("block UB mismatch at p=%v g=%s: exact %v vs paper %v", p, c.label, bu, c.blockPaper(p))
				}
			}
		}
	}
	r.Tables = append(r.Tables, t)
	r.Notef("IBLP's worst gap vs the half-size lower bound occurs at f/g = B^(1-1/p) (§7.3); with max spatial locality the block layer matches the baseline")
	return r
}
