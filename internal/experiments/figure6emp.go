package experiments

import (
	"fmt"
	"sync"

	"gccache/internal/bounds"
	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/opt"
	"gccache/internal/render"
	"gccache/internal/workload"
)

// Figure6Empirical is the measured counterpart of Figure 6: for a fixed
// total budget k, it sweeps the item/block split of IBLP and, for each
// split, measures the competitive ratio on the worst-case trace family
// *tailored to that split* (the Figure 5 pattern), against the certified
// offline bracket. The measured curve must sit below the Theorem 7 curve
// at every split, mirroring the theory's shape: both extremes suffer,
// the middle is robust.
func Figure6Empirical(k, B, h, length int) *Report {
	r := &Report{Name: "figure6-empirical"}
	geo := model.NewFixed(B)
	t := &render.Table{
		Title: fmt.Sprintf("Empirical split sweep (k=%d, B=%d, h=%d): worst measured ratio per split", k, B, h),
		Headers: []string{"item-layer i", "block-layer b", "measured ratio ≥",
			"thm7-ub", "headroom"},
	}
	type row struct {
		i, b     int
		measured float64
		ub       float64
	}
	fracs := []float64{0.125, 0.25, 0.5, 0.75, 1}
	rows := make([]row, len(fracs))
	var mu sync.Mutex
	cachesim.ParallelFor(len(fracs), 0, func(fi int) {
		i := int(float64(k) * fracs[fi])
		b := k - i
		worst := 0.0
		for _, share := range []float64{0, 0.5, 1} {
			tr, err := workload.LPWorstCase(workload.LPWorstConfig{
				ItemLayer: maxIntE(i, 1), BlockLayer: b, BlockSize: B,
				SpatialShare: share, Length: length,
			})
			if err != nil {
				mu.Lock()
				r.Failf("split %d/%d share %v: %v", i, b, share, err)
				mu.Unlock()
				return
			}
			u := model.ItemUniverse(geo, tr.Universe())
			st := cachesim.RunColdBounded(core.NewIBLPBounded(i, b, geo, u), tr, u)
			est := opt.EstimateOPT(tr, geo, h)
			if est.Upper == 0 {
				continue
			}
			ratio := float64(st.Misses) / float64(est.Upper)
			if ratio > worst {
				worst = ratio
			}
		}
		ub := bounds.IBLPUB(float64(i), float64(b), float64(h), float64(B))
		mu.Lock()
		rows[fi] = row{i: i, b: b, measured: worst, ub: ub}
		mu.Unlock()
	})
	for _, rw := range rows {
		headroom := rw.ub / rw.measured
		t.AddRow(rw.i, rw.b, rw.measured, rw.ub, headroom)
		if rw.measured > rw.ub*1.000001 {
			r.Failf("split i=%d: measured ratio %.3f exceeds Theorem 7 bound %.3f",
				rw.i, rw.measured, rw.ub)
		}
	}
	r.Tables = append(r.Tables, t)
	r.Notef("measured worst-case ratios respect the per-split Theorem 7 curve; the i=k extreme forfeits spatial locality exactly as §5.3 predicts")
	return r
}

func maxIntE(a, b int) int {
	if a > b {
		return a
	}
	return b
}
