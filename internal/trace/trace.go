// Package trace provides request-trace containers, binary serialization,
// and trace statistics for the GC caching simulator.
//
// A trace is simply an ordered sequence of item requests. The block
// structure lives in the geometry (see internal/model), not in the trace,
// mirroring the paper's Definition 1 where the partition into blocks is
// given separately from the request sequence σ.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"gccache/internal/model"
)

// Trace is an ordered sequence of item requests.
type Trace []model.Item

// Append adds requests to the trace and returns the extended trace.
func (t Trace) Append(items ...model.Item) Trace { return append(t, items...) }

// Len returns the number of requests.
func (t Trace) Len() int { return len(t) }

// Distinct returns the number of distinct items referenced.
func (t Trace) Distinct() int {
	seen := make(map[model.Item]struct{}, len(t))
	for _, it := range t {
		seen[it] = struct{}{}
	}
	return len(seen)
}

// DistinctBlocks returns the number of distinct blocks referenced under g.
func (t Trace) DistinctBlocks(g model.Geometry) int {
	seen := make(map[model.Block]struct{}, len(t))
	for _, it := range t {
		seen[g.BlockOf(it)] = struct{}{}
	}
	return len(seen)
}

// Universe returns an exclusive upper bound on the item IDs referenced —
// max(t)+1, or 0 for an empty trace. It is the natural universe argument
// for the bounded (dense-path) constructors: every trace item is a valid
// index in [0, Universe()).
func (t Trace) Universe() int {
	max := uint64(0)
	seen := false
	for _, it := range t {
		if uint64(it) >= max {
			max = uint64(it)
			seen = true
		}
	}
	if !seen {
		return 0
	}
	return int(max + 1)
}

// Clone returns a deep copy.
func (t Trace) Clone() Trace {
	out := make(Trace, len(t))
	copy(out, t)
	return out
}

// Concat returns the concatenation of traces.
func Concat(ts ...Trace) Trace {
	n := 0
	for _, t := range ts {
		n += len(t)
	}
	out := make(Trace, 0, n)
	for _, t := range ts {
		out = append(out, t...)
	}
	return out
}

// Repeat returns t repeated n times.
func (t Trace) Repeat(n int) Trace {
	out := make(Trace, 0, len(t)*n)
	for i := 0; i < n; i++ {
		out = append(out, t...)
	}
	return out
}

// magic identifies the gccache binary trace format, version 1.
var magic = [8]byte{'g', 'c', 't', 'r', 'a', 'c', 'e', 1}

// Write serializes the trace to w in the gccache binary format: an 8-byte
// magic header, a uvarint length, then uvarint delta-encoded item IDs
// (zig-zag deltas, since traces frequently move both up and down the
// address space).
func (t Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(t)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return fmt.Errorf("trace: write length: %w", err)
	}
	prev := uint64(0)
	for _, it := range t {
		delta := int64(uint64(it)) - int64(prev)
		n = binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("trace: write request: %w", err)
		}
		prev = uint64(it)
	}
	return bw.Flush()
}

// WriteSource serializes a Source to w in the same binary format as
// Write, in O(1) memory — the streaming encoder that lets a compiled
// scenario or an adapter emit traces far larger than RAM. declared is
// the request count written to the header; the source must deliver
// exactly that many items or WriteSource reports the mismatch (the
// format's length field is load-bearing for the streaming decoder).
func WriteSource(w io.Writer, src Source, declared uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], declared)
	if _, err := bw.Write(buf[:n]); err != nil {
		return fmt.Errorf("trace: write length: %w", err)
	}
	prev := uint64(0)
	written := uint64(0)
	for src.Next() {
		it := src.Item()
		delta := int64(uint64(it)) - int64(prev)
		n = binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("trace: write request: %w", err)
		}
		prev = uint64(it)
		written++
	}
	if err := src.Err(); err != nil {
		return fmt.Errorf("trace: source failed after %d requests: %w", written, err)
	}
	if written != declared {
		return fmt.Errorf("trace: source emitted %d requests, header declared %d", written, declared)
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write. The declared length is
// trusted only up to maxPrealloc items of preallocation: a corrupt or
// adversarial header cannot reserve gigabytes before the first request
// byte is decoded (the slice simply grows by append past the cap).
func Read(r io.Reader) (Trace, error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, err
	}
	pre := sc.Declared()
	if pre > maxPrealloc {
		pre = maxPrealloc
	}
	out := make(Trace, 0, pre)
	for sc.Next() {
		out = append(out, sc.Item())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats summarizes a trace under a geometry.
type Stats struct {
	Requests       int
	DistinctItems  int
	DistinctBlocks int
	// MeanItemsPerBlock is DistinctItems / DistinctBlocks: the average
	// number of distinct items touched per touched block. Values near the
	// block size indicate high spatial locality; near 1, none.
	MeanItemsPerBlock float64
	// BlockRunLengthMean is the mean length of maximal runs of requests
	// that stay within one block — a direct spatial-locality signal.
	BlockRunLengthMean float64
}

// Summarize computes Stats for t under g. An empty trace yields zeros.
func Summarize(t Trace, g model.Geometry) Stats {
	s := Stats{Requests: len(t)}
	if len(t) == 0 {
		return s
	}
	s.DistinctItems = t.Distinct()
	s.DistinctBlocks = t.DistinctBlocks(g)
	if s.DistinctBlocks > 0 {
		s.MeanItemsPerBlock = float64(s.DistinctItems) / float64(s.DistinctBlocks)
	}
	runs := 1
	for i := 1; i < len(t); i++ {
		if g.BlockOf(t[i]) != g.BlockOf(t[i-1]) {
			runs++
		}
	}
	s.BlockRunLengthMean = float64(len(t)) / float64(runs)
	return s
}

// FromByteAddresses converts a byte-address stream (the native format of
// most public memory traces) into an item trace: each item is one
// aligned itemBytes-sized chunk of the address space. Combine with a
// Fixed(B) geometry to model lines of itemBytes grouped into
// B·itemBytes-sized blocks.
func FromByteAddresses(addrs []uint64, itemBytes int) (Trace, error) {
	if itemBytes < 1 {
		return nil, fmt.Errorf("trace: item size %d < 1 byte", itemBytes)
	}
	out := make(Trace, len(addrs))
	for i, a := range addrs {
		out[i] = model.Item(a / uint64(itemBytes))
	}
	return out, nil
}
