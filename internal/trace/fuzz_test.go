package trace

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"gccache/internal/checkpoint"
	"gccache/internal/model"
)

// FuzzReadArbitraryBytes asserts the binary decoder never panics or
// over-allocates on adversarial input, and that valid round trips are
// exact.
func FuzzReadArbitraryBytes(f *testing.F) {
	var seed bytes.Buffer
	if err := (Trace{1, 2, 3}).Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("gctrace\x01garbage"))
	f.Add([]byte{})
	// Valid magic + huge declared length + no payload: the header that
	// used to demand a 32 GiB preallocation (see the regression test).
	f.Add(hugeLengthHeader(1 << 31))
	f.Add(hugeLengthHeader(1 << 33))
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, err := Read(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same trace.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round trip changed length")
		}
		for i := range tr {
			if back[i] != tr[i] {
				t.Fatalf("round trip changed content")
			}
		}
	})
}

// FuzzBinaryRoundTrip drives the encoder with arbitrary item sequences.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr := make(Trace, len(raw)/2)
		for i := range tr {
			// Mix small and large magnitudes to stress delta encoding.
			tr[i] = model.Item(uint64(raw[2*i]) | uint64(raw[2*i+1])<<40)
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(tr) {
			t.Fatal("length changed")
		}
		for i := range tr {
			if back[i] != tr[i] {
				t.Fatal("content changed")
			}
		}
	})
}

// FuzzCheckpointDecode asserts the checkpoint snapshot decoder — the
// file format every resumable run trusts after a crash — never panics
// on corrupted or truncated input, and never silently accepts a
// mangled snapshot as something other than what was written: whatever
// decodes must re-encode canonically to a fixed point. It lives in
// this package's fuzz suite alongside the other binary decoders
// (package checkpoint deliberately imports nothing from the repo, so
// there is no cycle).
func FuzzCheckpointDecode(f *testing.F) {
	seed := &checkpoint.Snapshot{
		Kind: "fuzz.kind",
		Meta: map[string]int64{"step": 42, "hash": -7},
		Sections: map[string][]byte{
			"frontier": {1, 2, 3, 4},
			"empty":    {},
		},
	}
	raw := seed.Encode()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:8])
	f.Add([]byte{})
	f.Add([]byte("gcckpt\x00\x01garbage"))
	// Oversized-declaration seeds (valid CRC, implausible lengths): the
	// decoder must reject each on the declaration itself — same failure
	// class as the trace-header prealloc DoS. ckptSeal/ckptCraft build
	// raw bodies the public API cannot produce.
	f.Add(ckptSeal(ckptCraft(ckptUv(1 << 20))))                                                 // kind length 2^20
	f.Add(ckptSeal(ckptCraft(ckptStr("k"), ckptUv(1<<21))))                                     // meta count 2^21
	f.Add(ckptSeal(ckptCraft(ckptStr("k"), ckptUv(0), ckptUv(1<<20))))                          // section count 2^20
	f.Add(ckptSeal(ckptCraft(ckptStr("k"), ckptUv(0), ckptUv(1), ckptUv(1<<16))))               // section name 2^16
	f.Add(ckptSeal(ckptCraft(ckptStr("k"), ckptUv(0), ckptUv(1), ckptStr("s"), ckptUv(1<<40)))) // section body 2^40
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := checkpoint.Decode(data)
		if err != nil {
			return // clean rejection is the expected outcome
		}
		enc1 := s.Encode()
		s2, err := checkpoint.Decode(enc1)
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v", err)
		}
		enc2 := s2.Encode()
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n%x\n%x", enc1, enc2)
		}
		if s2.Kind != s.Kind || len(s2.Meta) != len(s.Meta) || len(s2.Sections) != len(s.Sections) {
			t.Fatal("round trip changed snapshot shape")
		}
	})
}

// ckptCraft, ckptSeal, ckptUv, and ckptStr hand-assemble checkpoint
// encodings (magic + fields + CRC-32 footer) so the fuzz seeds above
// can declare counts and lengths the real encoder never would.
func ckptCraft(parts ...[]byte) []byte {
	body := []byte("gcckpt\x00\x01")
	for _, p := range parts {
		body = append(body, p...)
	}
	return body
}

func ckptSeal(body []byte) []byte {
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(body, crc[:]...)
}

func ckptUv(v uint64) []byte { return binary.AppendUvarint(nil, v) }

func ckptStr(s string) []byte { return append(ckptUv(uint64(len(s))), s...) }

// FuzzReadText asserts the text decoder never panics.
func FuzzReadText(f *testing.F) {
	f.Add("1\n2\n# c\n3\n")
	f.Add("-1\n")
	f.Add("999999999999999999999999\n")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ReadText(bytes.NewReader([]byte(s)))
		if err == nil && tr != nil {
			_ = tr.Distinct()
		}
	})
}
