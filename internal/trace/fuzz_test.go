package trace

import (
	"bytes"
	"testing"

	"gccache/internal/model"
)

// FuzzReadArbitraryBytes asserts the binary decoder never panics or
// over-allocates on adversarial input, and that valid round trips are
// exact.
func FuzzReadArbitraryBytes(f *testing.F) {
	var seed bytes.Buffer
	if err := (Trace{1, 2, 3}).Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("gctrace\x01garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, err := Read(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same trace.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round trip changed length")
		}
		for i := range tr {
			if back[i] != tr[i] {
				t.Fatalf("round trip changed content")
			}
		}
	})
}

// FuzzBinaryRoundTrip drives the encoder with arbitrary item sequences.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr := make(Trace, len(raw)/2)
		for i := range tr {
			// Mix small and large magnitudes to stress delta encoding.
			tr[i] = model.Item(uint64(raw[2*i]) | uint64(raw[2*i+1])<<40)
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(tr) {
			t.Fatal("length changed")
		}
		for i := range tr {
			if back[i] != tr[i] {
				t.Fatal("content changed")
			}
		}
	})
}

// FuzzReadText asserts the text decoder never panics.
func FuzzReadText(f *testing.F) {
	f.Add("1\n2\n# c\n3\n")
	f.Add("-1\n")
	f.Add("999999999999999999999999\n")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ReadText(bytes.NewReader([]byte(s)))
		if err == nil && tr != nil {
			_ = tr.Distinct()
		}
	})
}
