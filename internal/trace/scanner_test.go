package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"gccache/internal/model"
)

func randomTrace(n int, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := make(Trace, n)
	for i := range tr {
		// Mix small and huge IDs to stress the zig-zag delta encoding.
		tr[i] = model.Item(rng.Uint64() >> uint(rng.Intn(64)))
	}
	return tr
}

func TestScannerMatchesRead(t *testing.T) {
	tr := randomTrace(5000, 1)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	sc, err := NewScanner(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Declared() != uint64(len(tr)) {
		t.Fatalf("Declared = %d, want %d", sc.Declared(), len(tr))
	}
	var got Trace
	for sc.Next() {
		got = append(got, sc.Item())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if sc.Scanned() != uint64(len(tr)) {
		t.Fatalf("Scanned = %d, want %d", sc.Scanned(), len(tr))
	}
	want, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanner decoded %d items, Read decoded %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: scanner %d != Read %d", i, got[i], want[i])
		}
	}
}

func TestScannerTruncatedStream(t *testing.T) {
	tr := randomTrace(1000, 2)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-3]
	sc, err := NewScanner(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for sc.Next() {
		n++
	}
	if sc.Err() == nil {
		t.Fatal("truncated stream scanned cleanly")
	}
	if !strings.Contains(sc.Err().Error(), "read request") {
		t.Errorf("error %q does not locate the failing request", sc.Err())
	}
	if n >= len(tr) {
		t.Errorf("decoded %d items from a truncated stream of %d", n, len(tr))
	}
	// Next stays false and the error stays put after the failure.
	if sc.Next() {
		t.Error("Next returned true after a decode error")
	}
}

func TestScannerBadHeader(t *testing.T) {
	if _, err := NewScanner(bytes.NewReader([]byte("notatrace..."))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewScanner(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

// hugeLengthHeader builds a syntactically valid gctrace header declaring
// `declared` requests with no payload behind it.
func hugeLengthHeader(declared uint64) []byte {
	raw := append([]byte{}, magic[:]...)
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], declared)
	return append(raw, buf[:n]...)
}

// TestReadHugeLengthHeaderRegression pins the fix for the preallocation
// bug: Read used to `make(Trace, 0, length)` with the header's length
// trusted up to 1<<32, so a corrupt or adversarial 9-byte file could
// demand a 32 GiB allocation before reading a single request. The
// decoder must now reject such a file quickly and cheaply.
func TestReadHugeLengthHeaderRegression(t *testing.T) {
	raw := hugeLengthHeader(1 << 31)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	tr, err := Read(bytes.NewReader(raw))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatalf("9-byte file with declared length 2^31 decoded to %d items", len(tr))
	}
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 64<<20 {
		t.Errorf("decoding a corrupt header allocated %d bytes, want well under 64 MiB", alloc)
	}
	// Past the 1<<32 plausibility cap the header is rejected outright.
	if _, err := Read(bytes.NewReader(hugeLengthHeader(1 << 33))); err == nil {
		t.Error("implausible length accepted")
	}
	// A genuine trace longer than the prealloc cap still round-trips:
	// append growth takes over where the capped preallocation ends.
	long := make(Trace, maxPrealloc+100)
	for i := range long {
		long[i] = model.Item(i & 1023)
	}
	var buf bytes.Buffer
	if err := long.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(long) {
		t.Fatalf("round trip of %d-item trace returned %d items", len(long), len(back))
	}
}

func TestTextScannerMatchesReadText(t *testing.T) {
	const text = "# header comment\n1\n2\n\n  3  \n# mid comment\n4\n18446744073709551615\n"
	want, err := ReadText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewTextScanner(strings.NewReader(text))
	var got Trace
	for sc.Next() {
		got = append(got, sc.Item())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || len(want) != 5 {
		t.Fatalf("got %v, want %v (5 items)", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: %d != %d", i, got[i], want[i])
		}
	}
	if got[4] != model.Item(^uint64(0)) {
		t.Errorf("max uint64 mangled: %d", got[4])
	}
}

func TestTextScannerParseErrors(t *testing.T) {
	for _, bad := range []string{"12x\n", "-1\n", "18446744073709551616\n", "99999999999999999999999\n"} {
		sc := NewTextScanner(strings.NewReader("1\n" + bad))
		for sc.Next() {
		}
		if sc.Err() == nil {
			t.Errorf("input %q scanned cleanly", bad)
			continue
		}
		if !strings.Contains(sc.Err().Error(), "line 2") {
			t.Errorf("error %q does not name line 2", sc.Err())
		}
	}
}

// TestReadTextLongLineRegression pins the fix for the scanner-token bug:
// ReadText used to cap lines at 64 KiB, so a long comment (or junk) line
// failed with a bare bufio.ErrTooLong carrying no position. Long-but-sane
// lines must now parse, and over-long ones must fail with a line number.
func TestReadTextLongLineRegression(t *testing.T) {
	// A 256 KiB comment — over the old 64 KiB cap — is fine now.
	longComment := "# " + strings.Repeat("x", 256<<10)
	tr, err := ReadText(strings.NewReader(longComment + "\n7\n8\n"))
	if err != nil {
		t.Fatalf("256 KiB comment rejected: %v", err)
	}
	if len(tr) != 2 || tr[0] != 7 || tr[1] != 8 {
		t.Fatalf("parsed %v, want [7 8]", tr)
	}

	// A line beyond maxTextLine still fails — but with a position.
	monster := "5\n6\n# " + strings.Repeat("y", maxTextLine+10) + "\n"
	_, err = ReadText(strings.NewReader(monster))
	if err == nil {
		t.Fatal("monster line accepted")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("error %q does not wrap bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
}

// TestScannerZeroAllocPerAccess pins the streaming hot path's memory
// behaviour: decoding a 100k-request trace must cost a small constant
// number of allocations (scanner + buffered reader), not O(requests).
func TestScannerZeroAllocPerAccess(t *testing.T) {
	tr := randomTrace(100_000, 3)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	rd := bytes.NewReader(raw)
	avg := testing.AllocsPerRun(5, func() {
		rd.Reset(raw)
		sc, err := NewScanner(rd)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for sc.Next() {
			n++
		}
		if sc.Err() != nil || n != len(tr) {
			t.Fatalf("n=%d err=%v", n, sc.Err())
		}
	})
	if avg > 8 {
		t.Errorf("full streaming decode costs %.1f allocs, want a small constant (≤8)", avg)
	}
}

// TestTextScannerZeroAllocSteadyState pins the text hot path: after the
// scanner's buffer is warm, parsing well-formed lines must not allocate
// per line.
func TestTextScannerZeroAllocSteadyState(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 50_000; i++ {
		sb.Write([]byte{'0' + byte(i%10), '\n'})
	}
	text := sb.String()
	rd := strings.NewReader(text)
	avg := testing.AllocsPerRun(5, func() {
		rd.Reset(text)
		sc := NewTextScanner(rd)
		n := 0
		for sc.Next() {
			n++
		}
		if sc.Err() != nil || n != 50_000 {
			t.Fatalf("n=%d err=%v", n, sc.Err())
		}
	})
	if avg > 8 {
		t.Errorf("50k-line text decode costs %.1f allocs, want a small constant (≤8)", avg)
	}
}
