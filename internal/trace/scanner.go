package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"gccache/internal/model"
)

// Source is an incremental stream of item requests — the streaming
// counterpart of a materialized Trace. The iteration protocol is the
// bufio.Scanner shape:
//
//	for src.Next() {
//		use src.Item()
//	}
//	if err := src.Err(); err != nil { ... }
//
// Next reports whether an item is available; Item returns it (valid
// until the next call to Next); Err returns the first error that
// terminated the stream, or nil after clean exhaustion. Sources are
// single-pass and not safe for concurrent use.
type Source interface {
	Next() bool
	Item() model.Item
	Err() error
}

// maxPrealloc caps how many items any trace decoder preallocates from a
// length field it has not yet verified against real data: a corrupt or
// adversarial header must not be able to reserve gigabytes before the
// first request byte is read. Longer traces simply grow by append.
const maxPrealloc = 1 << 20

// maxTextLine is the longest line (in bytes) the text decoders accept —
// far beyond any plausible item ID, so in practice it only bounds junk
// and comment lines.
const maxTextLine = 1 << 20

// Scanner incrementally decodes the gctrace binary format (see Write):
// replaying a trace through it needs O(1) memory regardless of trace
// length. The header is validated by NewScanner; each Next decodes one
// delta-encoded request without allocating.
type Scanner struct {
	br       *bufio.Reader
	declared uint64 // length from the header
	read     uint64 // requests decoded so far
	prev     uint64
	cur      model.Item
	err      error
}

var _ Source = (*Scanner)(nil)

// NewScanner reads and validates the binary header on r and returns a
// Scanner positioned at the first request. If r is already a
// *bufio.Reader it is used directly; otherwise it is wrapped.
func NewScanner(r io.Reader) (*Scanner, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:])
	}
	length, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read length: %w", err)
	}
	const maxLen = 1 << 32
	if length > maxLen {
		return nil, fmt.Errorf("trace: implausible length %d", length)
	}
	return &Scanner{br: br, declared: length}, nil
}

// errVarintOverflow mirrors encoding/binary's overflow error for the
// inlined decoder below.
var errVarintOverflow = errors.New("varint overflows a 64-bit integer")

// Next decodes the next request. It returns false at the end of the
// declared length or on the first decode error (see Err).
//
//gclint:hotpath
func (s *Scanner) Next() bool {
	if s.err != nil || s.read >= s.declared {
		return false
	}
	delta, err := s.readVarint()
	if err != nil {
		s.fail(err) //gclint:allowalloc terminal error path; Next returns false forever after
		return false
	}
	cur := uint64(int64(s.prev) + delta)
	s.cur = model.Item(cur)
	s.prev = cur
	s.read++
	return true
}

// readVarint is binary.ReadVarint specialized to the concrete
// *bufio.Reader: same wire format and error behaviour, but no
// io.ByteReader boxing on the per-request path.
//
//gclint:hotpath
func (s *Scanner) readVarint() (int64, error) {
	var ux uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := s.br.ReadByte()
		if err != nil {
			if i > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, errVarintOverflow
			}
			ux |= uint64(b) << shift
			// Zig-zag decode (the inverse of Write's PutVarint).
			x := int64(ux >> 1)
			if ux&1 != 0 {
				x = ^x
			}
			return x, nil
		}
		ux |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, errVarintOverflow
}

// fail records the first decode error, positioned at the request that
// could not be read (cold path, kept out of Next for the hot-path
// allocation rule).
func (s *Scanner) fail(err error) {
	s.err = fmt.Errorf("trace: read request %d: %w", s.read, err)
}

// Item returns the most recently decoded request.
func (s *Scanner) Item() model.Item { return s.cur }

// Err returns the first error encountered, or nil after clean
// exhaustion of the declared length.
func (s *Scanner) Err() error { return s.err }

// Declared returns the request count from the header. It is untrusted
// until the stream has been fully consumed: a truncated file declares
// more than it delivers.
func (s *Scanner) Declared() uint64 { return s.declared }

// Scanned returns the number of requests decoded so far.
func (s *Scanner) Scanned() uint64 { return s.read }

// TextScanner incrementally parses the plain-text trace format (one
// decimal item ID per line, blank lines and '#' comments skipped) in
// O(1) memory. Lines up to maxTextLine bytes are accepted; parse and
// scan errors carry the 1-based line number.
type TextScanner struct {
	sc   *bufio.Scanner
	line int
	cur  model.Item
	err  error
}

var _ Source = (*TextScanner)(nil)

// NewTextScanner returns a TextScanner over r.
func NewTextScanner(r io.Reader) *TextScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxTextLine)
	return &TextScanner{sc: sc}
}

// Next advances to the next item line. It returns false at EOF or on
// the first malformed line (see Err).
//
//gclint:hotpath
func (s *TextScanner) Next() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.line++
		b := trimSpace(s.sc.Bytes())
		if len(b) == 0 || b[0] == '#' {
			continue
		}
		v, ok := parseUint(b)
		if !ok {
			s.failParse(b) //gclint:allowalloc terminal error path; Next returns false forever after
			return false
		}
		s.cur = model.Item(v)
		return true
	}
	s.failScan(s.sc.Err()) //gclint:allowalloc end-of-stream path; runs once per scan
	return false
}

// failParse records a malformed-line error (cold path).
func (s *TextScanner) failParse(b []byte) {
	s.err = fmt.Errorf("trace: line %d: %q is not an item ID", s.line, b)
}

// failScan records a scanner error, pointing at the line where the scan
// stopped — bufio.ErrTooLong on a monster line would otherwise surface
// bare, with no way to find the offending input (cold path).
func (s *TextScanner) failScan(err error) {
	if err == nil {
		return
	}
	s.err = fmt.Errorf("trace: line %d: %w", s.line+1, err)
}

// Item returns the most recently parsed request.
func (s *TextScanner) Item() model.Item { return s.cur }

// Err returns the first error encountered, or nil at clean EOF.
func (s *TextScanner) Err() error { return s.err }

// Line returns the 1-based number of the last line consumed.
func (s *TextScanner) Line() int { return s.line }

// trimSpace is bytes.TrimSpace restricted to ASCII whitespace — all the
// text format ever emits — without the unicode table lookups.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && asciiSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && asciiSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'
}

// parseUint is strconv.ParseUint(b, 10, 64) over bytes, allocation-free
// so TextScanner.Next stays off the garbage path on well-formed input.
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false // overflow
		}
		v = v*10 + d
	}
	return v, true
}

// SliceSource adapts an in-memory Trace to the Source interface — the
// reference source the stream-vs-slice differential tests compare file
// scanners against.
type SliceSource struct {
	t   Trace
	i   int
	cur model.Item
}

var _ Source = (*SliceSource)(nil)

// NewSliceSource returns a Source yielding t in order.
func NewSliceSource(t Trace) *SliceSource { return &SliceSource{t: t} }

// Next implements Source.
//
//gclint:hotpath
func (s *SliceSource) Next() bool {
	if s.i >= len(s.t) {
		return false
	}
	s.cur = s.t[s.i]
	s.i++
	return true
}

// Item implements Source.
func (s *SliceSource) Item() model.Item { return s.cur }

// Err implements Source; a slice never fails.
func (s *SliceSource) Err() error { return nil }
