package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"gccache/internal/model"
)

func TestDistinct(t *testing.T) {
	tr := Trace{1, 2, 1, 3, 2, 1}
	if got := tr.Distinct(); got != 3 {
		t.Errorf("Distinct = %d, want 3", got)
	}
	if got := (Trace{}).Distinct(); got != 0 {
		t.Errorf("Distinct empty = %d", got)
	}
}

func TestDistinctBlocks(t *testing.T) {
	g := model.NewFixed(4)
	tr := Trace{0, 1, 2, 3, 4, 8, 9}
	if got := tr.DistinctBlocks(g); got != 3 {
		t.Errorf("DistinctBlocks = %d, want 3", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := Trace{1, 2, 3}
	c := tr.Clone()
	c[0] = 99
	if tr[0] != 1 {
		t.Error("Clone aliases original")
	}
}

func TestConcatRepeat(t *testing.T) {
	a := Trace{1, 2}
	b := Trace{3}
	got := Concat(a, b, nil, a)
	want := Trace{1, 2, 3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Concat = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Concat = %v, want %v", got, want)
		}
	}
	r := b.Repeat(3)
	if len(r) != 3 || r[0] != 3 || r[2] != 3 {
		t.Errorf("Repeat = %v", r)
	}
}

func TestRoundTripIO(t *testing.T) {
	cases := []Trace{
		{},
		{0},
		{5, 4, 3, 2, 1, 1000000, 0, 1 << 40},
	}
	for _, tr := range cases {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if len(got) != len(tr) {
			t.Fatalf("round trip len %d vs %d", len(got), len(tr))
		}
		for i := range tr {
			if got[i] != tr[i] {
				t.Fatalf("round trip [%d] = %d, want %d", i, got[i], tr[i])
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(raw []uint64) bool {
		tr := make(Trace, len(raw))
		for i, v := range raw {
			tr[i] = model.Item(v)
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i] != tr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("notatrace!!!"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadTruncated(t *testing.T) {
	tr := Trace{1, 2, 3, 4, 5}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestSummarize(t *testing.T) {
	g := model.NewFixed(4)
	// Blocks: [0..3], [4..7]. Runs: (0,1,2) (4) (3) → 3 runs of total 5.
	tr := Trace{0, 1, 2, 4, 3}
	s := Summarize(tr, g)
	if s.Requests != 5 || s.DistinctItems != 5 || s.DistinctBlocks != 2 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.MeanItemsPerBlock != 2.5 {
		t.Errorf("MeanItemsPerBlock = %v, want 2.5", s.MeanItemsPerBlock)
	}
	if want := 5.0 / 3.0; s.BlockRunLengthMean != want {
		t.Errorf("BlockRunLengthMean = %v, want %v", s.BlockRunLengthMean, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, model.NewFixed(2))
	if s.Requests != 0 || s.DistinctItems != 0 || s.BlockRunLengthMean != 0 {
		t.Errorf("Stats on empty = %+v", s)
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := Trace{5, 0, 1 << 40, 7}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("round trip len %d", len(got))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("[%d] = %d, want %d", i, got[i], tr[i])
		}
	}
}

func TestReadTextCommentsAndErrors(t *testing.T) {
	in := "# header\n5\n\n  7 \n"
	got, err := ReadText(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("got %v", got)
	}
	if _, err := ReadText(bytes.NewReader([]byte("5\nxyz\n"))); err == nil {
		t.Fatal("bad line accepted")
	}
	if _, err := ReadText(bytes.NewReader([]byte("-3\n"))); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestFromByteAddresses(t *testing.T) {
	tr, err := FromByteAddresses([]uint64{0, 63, 64, 4096}, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := Trace{0, 0, 1, 64}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("FromByteAddresses = %v, want %v", tr, want)
		}
	}
	if _, err := FromByteAddresses(nil, 0); err == nil {
		t.Fatal("item size 0 accepted")
	}
}
