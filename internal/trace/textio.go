package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gccache/internal/model"
)

// WriteText serializes the trace as plain text, one decimal item ID per
// line — the interchange format for external tools and hand-written
// fixtures. Lines beginning with '#' are comments on read.
func (t Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, it := range t {
		if _, err := fmt.Fprintln(bw, uint64(it)); err != nil {
			return fmt.Errorf("trace: write text: %w", err)
		}
	}
	return bw.Flush()
}

// ReadText parses the plain-text trace format: one decimal item ID per
// line, blank lines and '#' comments ignored.
func ReadText(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	var out Trace
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %q is not an item ID", lineNo, line)
		}
		out = append(out, model.Item(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read text: %w", err)
	}
	return out, nil
}
