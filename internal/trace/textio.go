package trace

import (
	"bufio"
	"fmt"
	"io"
)

// WriteText serializes the trace as plain text, one decimal item ID per
// line — the interchange format for external tools and hand-written
// fixtures. Lines beginning with '#' are comments on read.
func (t Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, it := range t {
		if _, err := fmt.Fprintln(bw, uint64(it)); err != nil {
			return fmt.Errorf("trace: write text: %w", err)
		}
	}
	return bw.Flush()
}

// ReadText parses the plain-text trace format: one decimal item ID per
// line, blank lines and '#' comments ignored. Lines up to maxTextLine
// bytes are accepted; errors (including over-long lines) carry the
// 1-based line number.
func ReadText(r io.Reader) (Trace, error) {
	sc := NewTextScanner(r)
	var out Trace
	for sc.Next() {
		out = append(out, sc.Item())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
