package opt

import (
	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/trace"
)

// SplitEval is one fixed IBLP split's offline score on a trace.
type SplitEval struct {
	ItemLayer int
	Misses    int64
	MissRatio float64
}

// BestIBLPSplit replays tr cold through a fixed-split IBLP of total
// size k for every candidate item-layer size and returns the best
// (fewest misses; ties go to the smaller item layer) plus every
// evaluation in candidate order. It is the offline answer the autotune
// controller chases: the controller only ever sees a window at a time,
// so its regret is measured against this full-trace sweep. Candidates
// are clamped to [0, k]; duplicates are evaluated once and reported
// once.
func BestIBLPSplit(tr trace.Trace, geo model.Geometry, k int, candidates []int) (SplitEval, []SplitEval) {
	universe := tr.Universe()
	seen := make(map[int]bool)
	var all []SplitEval
	best := SplitEval{ItemLayer: -1}
	for _, i := range candidates {
		if i < 0 {
			i = 0
		}
		if i > k {
			i = k
		}
		if seen[i] {
			continue
		}
		seen[i] = true
		st := cachesim.RunCold(core.NewIBLPBounded(i, k-i, geo, universe), tr)
		ev := SplitEval{ItemLayer: i, Misses: st.Misses, MissRatio: st.MissRatio()}
		all = append(all, ev)
		if best.ItemLayer < 0 || ev.Misses < best.Misses ||
			(ev.Misses == best.Misses && ev.ItemLayer < best.ItemLayer) {
			best = ev
		}
	}
	return best, all
}
