package opt

import (
	"container/heap"
	"math"
	"sort"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// BlockBelady returns the miss count of the offline *block-granularity*
// policy: every miss loads the whole block, evictions remove the resident
// block whose next (block-level) use is farthest, and blocks are
// whole-block accounted against the k-item budget. It is a valid GC
// execution, hence an upper bound on the GC optimum — tight on spatially
// local traces, poor under pollution.
func BlockBelady(tr trace.Trace, geo model.Geometry, k int) int64 {
	if len(tr) == 0 {
		return 0
	}
	blockKeys := make([]uint64, len(tr))
	for i, it := range tr {
		blockKeys[i] = uint64(geo.BlockOf(it))
	}
	next := nextUse(blockKeys)

	resident := make(map[model.Block]int) // block -> item count held
	held := make(map[model.Item]struct{})
	latest := make(map[uint64]int)
	pq := &farthestHeap{}
	size := 0
	misses := int64(0)
	// items and victimBuf are owned copies: the eviction loop enumerates
	// victim blocks while the loaded block's item set is still needed, so
	// neither may alias the geometry's ItemsOf scratch.
	var items, victimBuf []model.Item
	for i, it := range tr {
		blk := geo.BlockOf(it)
		if _, ok := held[it]; ok {
			latest[uint64(blk)] = next[i]
			heap.Push(pq, useEntry{key: uint64(blk), next: next[i]})
			continue
		}
		misses++
		// Load the whole block (or as much as fits the budget k).
		items = model.AppendItemsOf(geo, items[:0], blk)
		want := len(items)
		if want > k {
			want = k
		}
		// Drop a stale partial copy if present.
		if cnt, ok := resident[blk]; ok && cnt > 0 {
			for _, x := range items {
				delete(held, x)
			}
			size -= cnt
			delete(resident, blk)
		}
		for size+want > k {
			top := heap.Pop(pq).(useEntry)
			vb := model.Block(top.key)
			if _, ok := resident[vb]; !ok {
				continue
			}
			if top.next != latest[top.key] {
				continue
			}
			victimBuf = model.AppendItemsOf(geo, victimBuf[:0], vb)
			for _, x := range victimBuf {
				delete(held, x)
			}
			size -= resident[vb]
			delete(resident, vb)
		}
		loaded := 0
		held[it] = struct{}{}
		loaded++
		for _, x := range items {
			if loaded >= want {
				break
			}
			if x == it {
				continue
			}
			held[x] = struct{}{}
			loaded++
		}
		resident[blk] = loaded
		size += loaded
		latest[uint64(blk)] = next[i]
		heap.Push(pq, useEntry{key: uint64(blk), next: next[i]})
	}
	return misses
}

// GreedySibling returns the miss count of an offline item-granularity
// Belady variant that additionally prefetches free siblings when doing so
// displaces only items with strictly farther next uses. It is a valid GC
// execution (siblings ride the miss's unit-cost load), hence an upper
// bound on the GC optimum, and it is the strongest of the package's
// heuristics on mixed-locality traces.
func GreedySibling(tr trace.Trace, geo model.Geometry, k int) int64 {
	if len(tr) == 0 {
		return 0
	}
	// Per-item next-use chains.
	itemKeys := make([]uint64, len(tr))
	for i, it := range tr {
		itemKeys[i] = uint64(it)
	}
	next := nextUse(itemKeys)

	cached := make(map[model.Item]struct{}, k)
	latest := make(map[uint64]int, k)
	pq := &farthestHeap{}
	misses := int64(0)
	occ := occurrences(tr)

	const noProtect = model.Item(math.MaxUint64)
	// evictFarthest removes the resident item with the farthest next use,
	// skipping protect (a just-requested item must stay resident through
	// its access — Definition 1's load subset contains it).
	evictFarthest := func(protect model.Item) (farNext int, ok bool) {
		var held []useEntry
		defer func() {
			for _, e := range held {
				heap.Push(pq, e)
			}
		}()
		for pq.Len() > 0 {
			top := heap.Pop(pq).(useEntry)
			it := model.Item(top.key)
			if _, resident := cached[it]; !resident {
				continue
			}
			if top.next != latest[top.key] {
				continue
			}
			if it == protect {
				held = append(held, top)
				continue
			}
			delete(cached, it)
			return top.next, true
		}
		return 0, false
	}
	peekFarthest := func(protect model.Item) (int, bool) {
		var held []useEntry
		defer func() {
			for _, e := range held {
				heap.Push(pq, e)
			}
		}()
		for pq.Len() > 0 {
			top := (*pq)[0]
			it := model.Item(top.key)
			_, resident := cached[it]
			if !resident || top.next != latest[top.key] {
				heap.Pop(pq)
				continue
			}
			if it == protect {
				held = append(held, heap.Pop(pq).(useEntry))
				continue
			}
			return top.next, true
		}
		return 0, false
	}
	insert := func(it model.Item, nu int) {
		cached[it] = struct{}{}
		latest[uint64(it)] = nu
		heap.Push(pq, useEntry{key: uint64(it), next: nu})
	}

	for i, it := range tr {
		if _, ok := cached[it]; ok {
			latest[uint64(it)] = next[i]
			heap.Push(pq, useEntry{key: uint64(it), next: next[i]})
			continue
		}
		misses++
		if len(cached) >= k {
			evictFarthest(noProtect)
		}
		insert(it, next[i])

		// Prefetch siblings in order of soonest next use, while they beat
		// the farthest resident item. The requested item itself is
		// protected: it must remain resident through this access.
		sibs := occ.siblingUses(geo, it, i)
		for _, s := range sibs {
			if _, resident := cached[s.item]; resident {
				continue
			}
			if len(cached) < k {
				insert(s.item, s.next)
				continue
			}
			far, ok := peekFarthest(it)
			if !ok || far <= s.next {
				break
			}
			evictFarthest(it)
			insert(s.item, s.next)
		}
	}
	return misses
}

// siblingUse pairs a block sibling with its next use at-or-after
// position pos.
type siblingUse struct {
	item model.Item
	next int
}

// occurrenceIndex maps each item to the sorted positions at which it is
// requested, enabling O(log T) next-use queries.
type occurrenceIndex map[model.Item][]int

func occurrences(tr trace.Trace) occurrenceIndex {
	occ := make(occurrenceIndex, 64)
	for i, it := range tr {
		occ[it] = append(occ[it], i)
	}
	return occ
}

// nextAfter returns the first position > pos at which it is requested,
// and whether one exists.
func (occ occurrenceIndex) nextAfter(it model.Item, pos int) (int, bool) {
	ps := occ[it]
	idx := sort.SearchInts(ps, pos+1)
	if idx >= len(ps) {
		return 0, false
	}
	return ps[idx], true
}

// siblingUses returns it's block siblings that are used again strictly
// after pos, soonest first.
func (occ occurrenceIndex) siblingUses(geo model.Geometry, it model.Item, pos int) []siblingUse {
	blk := geo.BlockOf(it)
	var out []siblingUse
	// Owned copy: heuristics may run concurrently over a shared geometry.
	for _, sib := range model.AppendItemsOf(geo, nil, blk) {
		if sib == it {
			continue
		}
		if nu, ok := occ.nextAfter(sib, pos); ok {
			out = append(out, siblingUse{item: sib, next: nu})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].next < out[b].next })
	return out
}

// Estimate brackets the GC optimum on tr: Lower ≤ OPT ≤ Upper.
// Lower is the certified block-level Belady bound; Upper is the best of
// the valid offline executions (item Belady, block Belady, greedy
// sibling prefetch).
type Estimate struct {
	Lower int64
	Upper int64
	// UpperMethod names the heuristic that achieved Upper.
	UpperMethod string
}

// EstimateOPT computes the bracket.
func EstimateOPT(tr trace.Trace, geo model.Geometry, k int) Estimate {
	e := Estimate{Lower: BlockLowerBound(tr, geo, k)}
	candidates := []struct {
		name string
		cost int64
	}{
		{"item-belady", Belady(tr, k)},
		{"block-belady", BlockBelady(tr, geo, k)},
		{"greedy-sibling", GreedySibling(tr, geo, k)},
	}
	e.Upper = candidates[0].cost
	e.UpperMethod = candidates[0].name
	for _, c := range candidates[1:] {
		if c.cost < e.Upper {
			e.Upper = c.cost
			e.UpperMethod = c.name
		}
	}
	return e
}
