package opt

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"sort"

	"gccache/internal/checkpoint"
	"gccache/internal/model"
	"gccache/internal/trace"
)

// ErrDeadline is returned (wrapped) by the anytime solvers when their
// context ends before optimality is proven. The accompanying Anytime
// still carries the best incumbent and lower bound found so far.
var ErrDeadline = errors.New("opt: deadline exceeded before optimality proven")

// Anytime is the result of an anytime exact solve: a feasible incumbent
// cost, a proven lower bound, and how far the dynamic program got.
// Incumbent == Lower (with Exact true) means the optimum is certified.
type Anytime struct {
	// Incumbent is the cost of the best feasible schedule known — the
	// exact optimum when Exact, otherwise a DP prefix completed greedily
	// with furthest-next-use eviction. Always an upper bound on OPT.
	Incumbent int64
	// Lower is a proven lower bound on OPT: the cheapest frontier state
	// after Steps accesses (the remaining accesses cannot reduce cost).
	Lower int64
	// Exact reports that Incumbent is the certified optimum.
	Exact bool
	// Steps is how many trace positions the DP fully processed.
	Steps int
}

// instance is a trace indexed for the bitmask solvers: the distinct-item
// universe and each item's block restricted to that universe.
type instance struct {
	index     map[model.Item]int
	items     []model.Item
	blockMask []uint32
}

// newInstance indexes tr's universe, enforcing MaxExactUniverse.
func newInstance(tr trace.Trace, geo model.Geometry) (*instance, error) {
	ins := &instance{index: make(map[model.Item]int)}
	for _, it := range tr {
		if _, ok := ins.index[it]; !ok {
			ins.index[it] = len(ins.index)
			ins.items = append(ins.items, it)
		}
	}
	n := len(ins.index)
	if n > MaxExactUniverse {
		return nil, fmt.Errorf("opt: %d distinct items exceeds exact-solver limit %d", n, MaxExactUniverse)
	}
	ins.blockMask = make([]uint32, n)
	var sibBuf []model.Item // owned copy; solvers may share a geometry
	for it, idx := range ins.index {
		var m uint32
		sibBuf = model.AppendItemsOf(geo, sibBuf[:0], geo.BlockOf(it))
		for _, sib := range sibBuf {
			if j, ok := ins.index[sib]; ok {
				m |= 1 << uint(j)
			}
		}
		ins.blockMask[idx] = m
	}
	return ins, nil
}

// itemsOf expands a mask to items in universe-index order.
func (ins *instance) itemsOf(mask uint32) []model.Item {
	var out []model.Item
	for m := mask; m != 0; m &= m - 1 {
		out = append(out, ins.items[bits.TrailingZeros32(m)])
	}
	return out
}

// maskStep translates one mask transition into a schedule Step for the
// access it (requested item listed first among the loads).
func (ins *instance) maskStep(it model.Item, prev, cur uint32) Step {
	x := uint32(1) << uint(ins.index[it])
	st := Step{Hit: prev&x != 0, Contents: ins.itemsOf(cur)}
	if loadMask := cur &^ prev; loadMask != 0 {
		if loadMask&x != 0 {
			st.Load = append(st.Load, it)
			loadMask &^= x
		}
		st.Load = append(st.Load, ins.itemsOf(loadMask)...)
	}
	st.Evict = ins.itemsOf(prev &^ cur)
	return st
}

// bestState picks the deterministic representative of a frontier: the
// minimum cost, ties broken toward the smallest mask.
func bestState(frontier map[uint32]int64) (uint32, int64) {
	best := int64(math.MaxInt64)
	var bestMask uint32
	for m, cost := range frontier {
		if cost < best || (cost == best && m < bestMask) {
			best, bestMask = cost, m
		}
	}
	return bestMask, best
}

// nextUseAfter returns the position of the first access to universe
// index j strictly after position i, or len(tr) when none.
func (ins *instance) nextUseAfter(tr trace.Trace, i, j int) int {
	for p := i + 1; p < len(tr); p++ {
		if ins.index[tr[p]] == j {
			return p
		}
	}
	return len(tr)
}

// greedyComplete plays tr[from:] starting from cache contents mask with
// a deterministic policy — load every free sibling that fits, keep the
// k−1 items reused soonest (furthest-next-use eviction, ties toward the
// smaller item index) — and returns the added cost. When emit is
// non-nil it receives one Step per access, making the completed prefix
// plus these steps a full feasible schedule.
func (ins *instance) greedyComplete(tr trace.Trace, from int, mask uint32, k int, emit func(Step)) int64 {
	cost := int64(0)
	for i := from; i < len(tr); i++ {
		it := tr[i]
		x := ins.index[it]
		xbit := uint32(1) << uint(x)
		prev := mask
		if mask&xbit == 0 {
			cost++
			avail := mask | ins.blockMask[x]
			if bits.OnesCount32(avail) <= k {
				mask = avail
			} else {
				// Keep x plus the k−1 other available items with the
				// soonest next use.
				type cand struct{ next, idx int }
				var cands []cand
				for m := avail &^ xbit; m != 0; m &= m - 1 {
					j := bits.TrailingZeros32(m)
					cands = append(cands, cand{next: ins.nextUseAfter(tr, i, j), idx: j})
				}
				sort.Slice(cands, func(a, b int) bool {
					if cands[a].next != cands[b].next {
						return cands[a].next < cands[b].next
					}
					return cands[a].idx < cands[b].idx
				})
				mask = xbit
				for _, c := range cands[:k-1] {
					mask |= 1 << uint(c.idx)
				}
			}
		}
		if emit != nil {
			emit(ins.maskStep(it, prev, mask))
		}
	}
	return cost
}

// Checkpoint is a paused exact solve: the DP frontier after Step trace
// positions. Resuming from it is byte-identical to never having paused,
// because the frontier is the DP's entire state.
type Checkpoint struct {
	Step     int
	Frontier map[uint32]int64
}

const solverSnapshotKind = "opt.exact"

// InstanceHash fingerprints a solver instance (trace, block structure,
// cache size) with FNV-1a so a checkpoint is never resumed against a
// different problem.
func InstanceHash(tr trace.Trace, geo model.Geometry, k int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w(uint64(k))
	w(uint64(len(tr)))
	for _, it := range tr {
		w(uint64(it))
		w(uint64(geo.BlockOf(it)))
	}
	return int64(h.Sum64())
}

// Snapshot renders the checkpoint for atomic persistence, stamping the
// instance hash.
func (c *Checkpoint) Snapshot(hash int64) *checkpoint.Snapshot {
	masks := make([]uint32, 0, len(c.Frontier))
	for m := range c.Frontier {
		masks = append(masks, m) //gclint:orderok sorted below before use
	}
	sort.Slice(masks, func(a, b int) bool { return masks[a] < masks[b] })
	var body []byte
	for _, m := range masks {
		body = binary.AppendUvarint(body, uint64(m))
		body = binary.AppendVarint(body, c.Frontier[m])
	}
	return &checkpoint.Snapshot{
		Kind: solverSnapshotKind,
		Meta: map[string]int64{
			"step": int64(c.Step), "hash": hash, "states": int64(len(masks)),
		},
		Sections: map[string][]byte{"frontier": body},
	}
}

// CheckpointFromSnapshot reverses Snapshot, rejecting snapshots of the
// wrong kind or for a different instance hash.
func CheckpointFromSnapshot(s *checkpoint.Snapshot, hash int64) (*Checkpoint, error) {
	if s.Kind != solverSnapshotKind {
		return nil, fmt.Errorf("opt: snapshot kind %q is not a solver checkpoint", s.Kind)
	}
	if got := s.MetaInt("hash", 0); got != hash {
		return nil, fmt.Errorf("opt: snapshot instance hash %#x does not match %#x", got, hash)
	}
	c := &Checkpoint{
		Step:     int(s.MetaInt("step", 0)),
		Frontier: make(map[uint32]int64),
	}
	body := s.Get("frontier")
	for len(body) > 0 {
		m, k := binary.Uvarint(body)
		if k <= 0 || m > math.MaxUint32 {
			return nil, fmt.Errorf("opt: corrupt frontier mask in snapshot")
		}
		body = body[k:]
		cost, k := binary.Varint(body)
		if k <= 0 {
			return nil, fmt.Errorf("opt: corrupt frontier cost in snapshot")
		}
		body = body[k:]
		c.Frontier[uint32(m)] = cost
	}
	if int64(len(c.Frontier)) != s.MetaInt("states", -1) {
		return nil, fmt.Errorf("opt: snapshot frontier has %d states, header says %d",
			len(c.Frontier), s.MetaInt("states", -1))
	}
	if c.Step < 0 {
		return nil, fmt.Errorf("opt: negative snapshot step %d", c.Step)
	}
	return c, nil
}

// ExactCtx is Exact as an anytime solver: it runs the frontier DP under
// ctx and, when ctx ends first, returns the best incumbent (DP prefix +
// greedy completion), the proven lower bound, and an error wrapping
// ErrDeadline. With a background context it certifies the optimum,
// matching Exact exactly.
func ExactCtx(ctx context.Context, tr trace.Trace, geo model.Geometry, k int) (Anytime, error) {
	res, _, err := ExactResumeCtx(ctx, tr, geo, k, nil)
	return res, err
}

// ExactResumeCtx is ExactCtx with checkpointing: it starts from ck (nil
// means a fresh solve) and always returns the checkpoint reached, which
// a later call can resume to continue the proof where it stopped.
// Resumed solves visit exactly the states an uninterrupted solve would.
func ExactResumeCtx(ctx context.Context, tr trace.Trace, geo model.Geometry, k int, ck *Checkpoint) (Anytime, *Checkpoint, error) {
	if k < 1 {
		return Anytime{}, nil, fmt.Errorf("opt: cache size %d < 1", k)
	}
	if len(tr) == 0 {
		return Anytime{Exact: true}, &Checkpoint{Frontier: map[uint32]int64{0: 0}}, nil
	}
	ins, err := newInstance(tr, geo)
	if err != nil {
		return Anytime{}, nil, err
	}
	start := 0
	frontier := map[uint32]int64{0: 0}
	if ck != nil {
		if ck.Step < 0 || ck.Step > len(tr) || len(ck.Frontier) == 0 {
			return Anytime{}, nil, fmt.Errorf("opt: checkpoint step %d invalid for a %d-access trace", ck.Step, len(tr))
		}
		start = ck.Step
		frontier = make(map[uint32]int64, len(ck.Frontier))
		for m, c := range ck.Frontier {
			frontier[m] = c
		}
	}
	for step := start; step < len(tr); step++ {
		if ctx.Err() != nil {
			mask, lower := bestState(frontier)
			inc := lower + ins.greedyComplete(tr, step, mask, k, nil)
			return Anytime{Incumbent: inc, Lower: lower, Steps: step},
				&Checkpoint{Step: step, Frontier: frontier},
				fmt.Errorf("%w after %d/%d accesses: %v", ErrDeadline, step, len(tr), ctx.Err())
		}
		frontier = exactStep(ins, frontier, tr[step], k)
		if len(frontier) == 0 {
			return Anytime{}, nil, fmt.Errorf("opt: state space exhausted (internal error)")
		}
	}
	_, best := bestState(frontier)
	return Anytime{Incumbent: best, Lower: best, Exact: true, Steps: len(tr)},
		&Checkpoint{Step: len(tr), Frontier: frontier}, nil
}

// exactStep folds one access into the frontier: relax every reachable
// maximal next state, then prune dominated states.
func exactStep(ins *instance, frontier map[uint32]int64, it model.Item, k int) map[uint32]int64 {
	x := ins.index[it]
	xbit := uint32(1) << uint(x)
	next := make(map[uint32]int64, len(frontier))
	relax := func(mask uint32, cost int64) {
		if old, ok := next[mask]; !ok || cost < old {
			next[mask] = cost
		}
	}
	for mask, cost := range frontier {
		if mask&xbit != 0 {
			relax(mask, cost)
			continue
		}
		avail := mask | ins.blockMask[x]
		// Enumerate maximal next states: keep x plus any
		// min(k, |avail|) − 1 of the other available items.
		others := avail &^ xbit
		keep := k - 1
		if cnt := bits.OnesCount32(others); cnt <= keep {
			relax(avail, cost+1)
			continue
		}
		forEachSubsetOfSize(others, keep, func(sub uint32) {
			relax(sub|xbit, cost+1)
		})
	}
	return pruneDominated(next)
}
