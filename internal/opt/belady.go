// Package opt provides offline baselines for the GC caching problem:
// Belady's exact optimum for traditional (item-granularity) caching, an
// exact exponential solver for small GC instances (the problem is
// NP-complete, Theorem 1), and polynomial heuristics that bracket the GC
// optimum from both sides on large instances.
package opt

import (
	"container/heap"
	"math"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// BeladyKeys returns the exact minimum number of misses for a traditional
// cache of k slots serving the key sequence (Belady/MIN: on a miss with a
// full cache, evict the resident key whose next use is farthest in the
// future). Keys are opaque; callers map items or blocks onto them.
func BeladyKeys(keys []uint64, k int) int64 {
	if k < 1 || len(keys) == 0 {
		return int64(len(keys))
	}
	next := nextUse(keys)
	// latest[k] is the next-use value of k's most recent access: the only
	// non-stale heap entry for that key (lazy deletion).
	latest := make(map[uint64]int, k)
	cached := make(map[uint64]struct{}, k)
	pq := &farthestHeap{}
	misses := int64(0)
	for i, key := range keys {
		if _, ok := cached[key]; ok {
			latest[key] = next[i]
			heap.Push(pq, useEntry{key: key, next: next[i]})
			continue
		}
		misses++
		if len(cached) >= k {
			for {
				top := heap.Pop(pq).(useEntry)
				if _, resident := cached[top.key]; !resident {
					continue // key already evicted: stale entry
				}
				if top.next != latest[top.key] {
					continue // superseded by a fresher access: stale
				}
				delete(cached, top.key)
				break
			}
		}
		cached[key] = struct{}{}
		latest[key] = next[i]
		heap.Push(pq, useEntry{key: key, next: next[i]})
	}
	return misses
}

// useEntry is a heap element: a key and the position of its next use.
type useEntry struct {
	key  uint64
	next int
}

// farthestHeap is a max-heap on next-use position.
type farthestHeap []useEntry

func (h farthestHeap) Len() int           { return len(h) }
func (h farthestHeap) Less(i, j int) bool { return h[i].next > h[j].next }
func (h farthestHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *farthestHeap) Push(x any)        { *h = append(*h, x.(useEntry)) }
func (h *farthestHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// nextUse returns, for each position i, the index of the next occurrence
// of keys[i]; positions with no future occurrence get distinct values
// beyond any real index so "farthest" stays strictly ordered.
func nextUse(keys []uint64) []int {
	const inf = math.MaxInt / 2
	next := make([]int, len(keys))
	last := make(map[uint64]int, 64)
	for i := len(keys) - 1; i >= 0; i-- {
		if j, ok := last[keys[i]]; ok {
			next[i] = j
		} else {
			next[i] = inf - i
		}
		last[keys[i]] = i
	}
	return next
}

// Belady returns the exact optimal miss count of a traditional item cache
// of size k on tr. It is a valid GC execution (one that never exploits
// free siblings), hence an upper bound on the GC optimum.
func Belady(tr trace.Trace, k int) int64 {
	keys := make([]uint64, len(tr))
	for i, it := range tr {
		keys[i] = uint64(it)
	}
	return BeladyKeys(keys, k)
}

// BlockLowerBound returns a certified lower bound on the GC optimum: the
// Belady-optimal miss count of a block-level cache with k block slots on
// the block-mapped trace. Any GC execution with k items holds at most k
// distinct blocks at once and pays one block load per miss, and its hits
// occur only when the block is (partially) resident — so the induced
// block-level schedule is feasible for a k-slot block cache and the
// block-level optimum cannot exceed the GC optimum.
func BlockLowerBound(tr trace.Trace, geo model.Geometry, k int) int64 {
	keys := make([]uint64, len(tr))
	for i, it := range tr {
		keys[i] = uint64(geo.BlockOf(it))
	}
	return BeladyKeys(keys, k)
}
