package opt

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"gccache/internal/model"
	"gccache/internal/trace"
)

func randInstance(rng *rand.Rand) (trace.Trace, model.Geometry, int) {
	B := 2 + rng.Intn(2)
	nBlocks := 3 + rng.Intn(2)
	g := model.NewFixed(B)
	universe := B * nBlocks
	n := 12 + rng.Intn(10)
	k := 2 + rng.Intn(4)
	tr := make(trace.Trace, n)
	for i := range tr {
		tr[i] = model.Item(rng.Intn(universe))
	}
	return tr, g, k
}

func TestExactCtxNoDeadlineMatchesExact(t *testing.T) {
	// The differential criterion: with no deadline the anytime solver is
	// the exact solver — same value, certified.
	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 40; round++ {
		tr, g, k := randInstance(rng)
		want, err := Exact(tr, g, k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ExactCtx(context.Background(), tr, g, k)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || res.Incumbent != want || res.Lower != want || res.Steps != len(tr) {
			t.Fatalf("round %d: ExactCtx = %+v, Exact = %d", round, res, want)
		}
	}
}

func TestExactCtxDeadlineReturnsIncumbentAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dead, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	for round := 0; round < 20; round++ {
		tr, g, k := randInstance(rng)
		opt, err := Exact(tr, g, k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ExactCtx(dead, tr, g, k)
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("round %d: err = %v, want ErrDeadline", round, err)
		}
		if res.Exact {
			t.Fatalf("round %d: deadline run claims exactness", round)
		}
		if res.Lower > opt || res.Incumbent < opt {
			t.Fatalf("round %d: incumbent %d / lower %d do not bracket optimum %d",
				round, res.Incumbent, res.Lower, opt)
		}
		// The incumbent must be achievable: verify via the schedule variant.
		sres, steps, serr := ExactScheduleCtx(dead, tr, g, k)
		if !errors.Is(serr, ErrDeadline) {
			t.Fatalf("round %d: schedule err = %v", round, serr)
		}
		cost, verr := VerifySchedule(tr, g, k, steps)
		if verr != nil {
			t.Fatalf("round %d: anytime schedule illegal: %v", round, verr)
		}
		if cost != sres.Incumbent {
			t.Fatalf("round %d: schedule cost %d != incumbent %d", round, cost, sres.Incumbent)
		}
	}
}

func TestExactScheduleCtxNoDeadlineMatchesExactSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for round := 0; round < 20; round++ {
		tr, g, k := randInstance(rng)
		want, wantSteps, err := ExactSchedule(tr, g, k)
		if err != nil {
			t.Fatal(err)
		}
		res, steps, err := ExactScheduleCtx(context.Background(), tr, g, k)
		if err != nil || !res.Exact || res.Incumbent != want {
			t.Fatalf("round %d: res=%+v err=%v want %d", round, res, err, want)
		}
		if len(steps) != len(wantSteps) {
			t.Fatalf("round %d: %d steps, want %d", round, len(steps), len(wantSteps))
		}
		cost, err := VerifySchedule(tr, g, k, steps)
		if err != nil || cost != want {
			t.Fatalf("round %d: verify cost=%d err=%v", round, cost, err)
		}
	}
}

// stepsCtx cancels itself after a given number of Err calls — a
// deterministic way to stop the solver mid-trace.
type stepsCtx struct {
	context.Context
	remaining int
}

func (c *stepsCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

func TestExactResumeCtxMatchesUninterrupted(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 20; round++ {
		tr, g, k := randInstance(rng)
		want, err := Exact(tr, g, k)
		if err != nil {
			t.Fatal(err)
		}
		// Chop the solve into single-step slices via checkpoints; the
		// final certified value must match, proving resume loses nothing.
		var ck *Checkpoint
		var res Anytime
		for hops := 0; ; hops++ {
			if hops > len(tr)+2 {
				t.Fatalf("round %d: resume loop did not converge", round)
			}
			res, ck, err = ExactResumeCtx(&stepsCtx{Context: context.Background(), remaining: 1}, tr, g, k, ck)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("round %d: %v", round, err)
			}
			// Round-trip every intermediate checkpoint through its
			// snapshot encoding, as a killed process would.
			hash := InstanceHash(tr, g, k)
			ck2, cerr := CheckpointFromSnapshot(ck.Snapshot(hash), hash)
			if cerr != nil {
				t.Fatalf("round %d: snapshot round-trip: %v", round, cerr)
			}
			ck = ck2
		}
		if !res.Exact || res.Incumbent != want {
			t.Fatalf("round %d: resumed solve = %+v, want exact %d", round, res, want)
		}
	}
}

func TestCheckpointSnapshotRejectsWrongInstance(t *testing.T) {
	tr := trace.Trace{0, 1, 2, 3}
	g := model.NewFixed(2)
	hash := InstanceHash(tr, g, 2)
	ck := &Checkpoint{Step: 2, Frontier: map[uint32]int64{3: 1, 5: 2}}
	snap := ck.Snapshot(hash)
	if _, err := CheckpointFromSnapshot(snap, hash+1); err == nil {
		t.Error("mismatched instance hash accepted")
	}
	got, err := CheckpointFromSnapshot(snap, hash)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 2 || len(got.Frontier) != 2 || got.Frontier[3] != 1 || got.Frontier[5] != 2 {
		t.Errorf("round trip lost state: %+v", got)
	}
	snap.Kind = "other"
	if _, err := CheckpointFromSnapshot(snap, hash); err == nil {
		t.Error("wrong snapshot kind accepted")
	}
}

func TestInstanceHashDistinguishesInstances(t *testing.T) {
	g := model.NewFixed(2)
	base := InstanceHash(trace.Trace{0, 1, 2}, g, 2)
	if InstanceHash(trace.Trace{0, 1, 2}, g, 2) != base {
		t.Error("hash not deterministic")
	}
	for _, h := range []int64{
		InstanceHash(trace.Trace{0, 1, 3}, g, 2),
		InstanceHash(trace.Trace{0, 1, 2}, g, 3),
		InstanceHash(trace.Trace{0, 1, 2}, model.NewFixed(3), 2),
		InstanceHash(trace.Trace{0, 1}, g, 2),
	} {
		if h == base {
			t.Error("distinct instance hashed equal")
		}
	}
}

func TestExactResumeCtxRejectsBadCheckpoint(t *testing.T) {
	tr := trace.Trace{0, 1, 2}
	g := model.NewFixed(2)
	for _, ck := range []*Checkpoint{
		{Step: -1, Frontier: map[uint32]int64{0: 0}},
		{Step: 4, Frontier: map[uint32]int64{0: 0}},
		{Step: 1, Frontier: nil},
	} {
		if _, _, err := ExactResumeCtx(context.Background(), tr, g, 2, ck); err == nil {
			t.Errorf("checkpoint %+v accepted", ck)
		}
	}
}
