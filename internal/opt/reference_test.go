package opt

import (
	"math/bits"
	"math/rand"
	"testing"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// referenceExact is an unoptimized exponential solver used only to cross
// check Exact: it enumerates *every* reachable state (all subsets, not
// just maximal ones) with no dominance pruning.
func referenceExact(tr trace.Trace, geo model.Geometry, k int) int64 {
	index := make(map[model.Item]int)
	for _, it := range tr {
		if _, ok := index[it]; !ok {
			index[it] = len(index)
		}
	}
	blockMask := make([]uint32, len(index))
	for it, idx := range index {
		var m uint32
		for _, sib := range geo.ItemsOf(geo.BlockOf(it)) {
			if j, ok := index[sib]; ok {
				m |= 1 << uint(j)
			}
		}
		blockMask[idx] = m
	}
	frontier := map[uint32]int64{0: 0}
	for _, it := range tr {
		x := index[it]
		xbit := uint32(1) << uint(x)
		next := make(map[uint32]int64)
		relax := func(m uint32, c int64) {
			if old, ok := next[m]; !ok || c < old {
				next[m] = c
			}
		}
		for mask, cost := range frontier {
			if mask&xbit != 0 {
				relax(mask, cost)
				continue
			}
			avail := mask | blockMask[x]
			// All submasks of avail containing x with ≤ k bits.
			for sub := avail; ; sub = (sub - 1) & avail {
				if sub&xbit != 0 && bits.OnesCount32(sub) <= k {
					relax(sub, cost+1)
				}
				if sub == 0 {
					break
				}
			}
		}
		frontier = next
	}
	best := int64(1) << 60
	for _, c := range frontier {
		if c < best {
			best = c
		}
	}
	return best
}

func TestExactMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 30; round++ {
		B := 2 + rng.Intn(2)
		g := model.NewFixed(B)
		universe := B * (2 + rng.Intn(2))
		n := 8 + rng.Intn(8)
		k := 2 + rng.Intn(3)
		tr := make(trace.Trace, n)
		for i := range tr {
			tr[i] = model.Item(rng.Intn(universe))
		}
		got, err := Exact(tr, g, k)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceExact(tr, g, k)
		if got != want {
			t.Fatalf("round %d: Exact %d != reference %d (tr=%v k=%d B=%d)", round, got, want, tr, k, B)
		}
	}
}

func TestFailingInstanceFromBracketTest(t *testing.T) {
	tr := trace.Trace{1, 2, 2, 0, 2, 3, 6, 7, 5, 0, 0, 4, 4, 4, 5, 6, 0}
	g := model.NewFixed(2)
	got, err := Exact(tr, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceExact(tr, g, 2)
	gs := GreedySibling(tr, g, 2)
	t.Logf("exact=%d reference=%d greedy=%d", got, want, gs)
	if got != want {
		t.Fatalf("Exact %d != reference %d", got, want)
	}
	if gs < want {
		t.Fatalf("GreedySibling %d beats true optimum %d: invalid execution", gs, want)
	}
}
