package opt

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// Step describes the optimal cache's action on one access.
type Step struct {
	// Hit reports whether the access was served from cache.
	Hit bool
	// Load lists the items brought in (requested item first). Empty on
	// hits.
	Load []model.Item
	// Evict lists the items removed.
	Evict []model.Item
	// Contents is the cache contents after the step, in item order.
	Contents []model.Item
}

// ExactSchedule computes the exact GC optimum like Exact and additionally
// reconstructs one optimal schedule: which items each miss loads and
// evicts. Subject to the same MaxExactUniverse limit.
func ExactSchedule(tr trace.Trace, geo model.Geometry, k int) (int64, []Step, error) {
	res, steps, err := ExactScheduleCtx(context.Background(), tr, geo, k)
	return res.Incumbent, steps, err
}

// ExactScheduleCtx is ExactSchedule as an anytime solver. With a live
// context it returns the certified optimum and an optimal schedule.
// When ctx ends mid-solve it still returns a complete feasible schedule
// — the DP prefix reconstructed through parents, completed greedily
// with furthest-next-use eviction — whose cost is the Anytime
// incumbent, alongside the proven lower bound and a wrapped
// ErrDeadline.
func ExactScheduleCtx(ctx context.Context, tr trace.Trace, geo model.Geometry, k int) (Anytime, []Step, error) {
	if k < 1 {
		return Anytime{}, nil, fmt.Errorf("opt: cache size %d < 1", k)
	}
	if len(tr) == 0 {
		return Anytime{Exact: true}, nil, nil
	}
	ins, err := newInstance(tr, geo)
	if err != nil {
		return Anytime{}, nil, err
	}

	type entry struct {
		cost   int64
		parent uint32
	}
	frontiers := make([]map[uint32]entry, len(tr)+1)
	frontiers[0] = map[uint32]entry{0: {cost: 0}}
	solved := len(tr)
	for step, it := range tr {
		if ctx.Err() != nil {
			solved = step
			break
		}
		x := ins.index[it]
		xbit := uint32(1) << uint(x)
		next := make(map[uint32]entry)
		// Ties (same mask, same cost, different parents) break toward the
		// smallest parent mask so the reconstructed schedule does not
		// depend on map iteration order: repro output must be stable
		// across runs.
		relax := func(mask uint32, cost int64, parent uint32) {
			if old, ok := next[mask]; !ok || cost < old.cost ||
				(cost == old.cost && parent < old.parent) {
				next[mask] = entry{cost: cost, parent: parent}
			}
		}
		for mask, e := range frontiers[step] {
			if mask&xbit != 0 {
				relax(mask, e.cost, mask)
				continue
			}
			avail := mask | ins.blockMask[x]
			others := avail &^ xbit
			keep := k - 1
			if cnt := bits.OnesCount32(others); cnt <= keep {
				relax(avail, e.cost+1, mask)
				continue
			}
			forEachSubsetOfSize(others, keep, func(sub uint32) {
				relax(sub|xbit, e.cost+1, mask)
			})
		}
		// Dominance pruning must preserve parents; prune on (mask, cost)
		// only.
		costs := make(map[uint32]int64, len(next))
		for m, e := range next {
			costs[m] = e.cost
		}
		pruned := pruneDominated(costs)
		keep := make(map[uint32]entry, len(pruned))
		for m := range pruned {
			keep[m] = next[m]
		}
		frontiers[step+1] = keep
	}

	best := int64(math.MaxInt64)
	var bestMask uint32
	for m, e := range frontiers[solved] {
		if e.cost < best || (e.cost == best && m < bestMask) {
			best, bestMask = e.cost, m
		}
	}
	// Walk parents backwards to recover the mask sequence of the solved
	// prefix.
	masks := make([]uint32, solved+1)
	masks[solved] = bestMask
	for step := solved; step >= 1; step-- {
		masks[step-1] = frontiers[step][masks[step]].parent
	}
	steps := make([]Step, 0, len(tr))
	for i := 0; i < solved; i++ {
		steps = append(steps, ins.maskStep(tr[i], masks[i], masks[i+1]))
	}
	if solved == len(tr) {
		return Anytime{Incumbent: best, Lower: best, Exact: true, Steps: solved}, steps, nil
	}
	inc := best + ins.greedyComplete(tr, solved, bestMask, k, func(st Step) {
		steps = append(steps, st)
	})
	return Anytime{Incumbent: inc, Lower: best, Steps: solved}, steps,
		fmt.Errorf("%w after %d/%d accesses: %v", ErrDeadline, solved, len(tr), ctx.Err())
}

// VerifySchedule replays a schedule against the model and returns its
// cost, erroring on any illegal step (wrong hit flag, load outside the
// requested block, eviction of an absent item, capacity overflow, or a
// missed demand load).
func VerifySchedule(tr trace.Trace, geo model.Geometry, k int, steps []Step) (int64, error) {
	if len(steps) != len(tr) {
		return 0, fmt.Errorf("opt: schedule length %d != trace length %d", len(steps), len(tr))
	}
	contents := make(map[model.Item]struct{}, k)
	cost := int64(0)
	for i, it := range tr {
		st := steps[i]
		_, present := contents[it]
		if st.Hit != present {
			return 0, fmt.Errorf("opt: step %d: hit=%v but present=%v", i, st.Hit, present)
		}
		if st.Hit && len(st.Load) > 0 {
			return 0, fmt.Errorf("opt: step %d: load on a hit", i)
		}
		if !st.Hit {
			cost++
			blk := geo.BlockOf(it)
			self := false
			for _, l := range st.Load {
				if geo.BlockOf(l) != blk {
					return 0, fmt.Errorf("opt: step %d: load %d outside block %d", i, l, blk)
				}
				if _, dup := contents[l]; dup {
					return 0, fmt.Errorf("opt: step %d: load %d already present", i, l)
				}
				if l == it {
					self = true
				}
			}
			if !self {
				return 0, fmt.Errorf("opt: step %d: requested item %d not loaded", i, it)
			}
		}
		for _, e := range st.Evict {
			if _, ok := contents[e]; !ok {
				return 0, fmt.Errorf("opt: step %d: evict %d not present", i, e)
			}
			if e == it {
				return 0, fmt.Errorf("opt: step %d: evicted the requested item", i)
			}
			delete(contents, e)
		}
		for _, l := range st.Load {
			contents[l] = struct{}{}
		}
		if len(contents) > k {
			return 0, fmt.Errorf("opt: step %d: %d items exceed capacity %d", i, len(contents), k)
		}
	}
	return cost, nil
}
