package opt

import (
	"math/rand"
	"testing"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// TestBestIBLPSplitPrefersBlocksOnScans: on a pure cyclic scan wider
// than the cache, the block layer is the only source of hits (each
// block load serves B−1 follow-up requests), so the sweep must put the
// whole budget there.
func TestBestIBLPSplitPrefersBlocksOnScans(t *testing.T) {
	const B = 16
	g := model.NewFixed(B)
	var tr trace.Trace
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 4096; i++ {
			tr = append(tr, model.Item(i))
		}
	}
	best, all := BestIBLPSplit(tr, g, 256, []int{0, 64, 128, 192, 256})
	if len(all) != 5 {
		t.Fatalf("evaluated %d candidates, want 5", len(all))
	}
	if best.ItemLayer != 0 {
		t.Fatalf("best split i=%d on a scan, want 0 (all block layer): %+v", best.ItemLayer, all)
	}
	if best.MissRatio >= all[len(all)-1].MissRatio {
		t.Fatalf("best ratio %.4f not better than pure item cache %.4f",
			best.MissRatio, all[len(all)-1].MissRatio)
	}
}

// TestBestIBLPSplitPrefersItemsOnReuse: a small hot set hammered in
// random order has pure temporal locality; the item layer should take
// everything.
func TestBestIBLPSplitPrefersItemsOnReuse(t *testing.T) {
	g := model.NewFixed(16)
	rng := rand.New(rand.NewSource(3))
	var tr trace.Trace
	for i := 0; i < 40000; i++ {
		// 200 hot items scattered one per block: no spatial payoff.
		tr = append(tr, model.Item(rng.Intn(200)*16))
	}
	best, _ := BestIBLPSplit(tr, g, 256, []int{0, 64, 128, 192, 256})
	if best.ItemLayer != 256 {
		t.Fatalf("best split i=%d on scattered reuse, want 256 (all item layer)", best.ItemLayer)
	}
}

// TestBestIBLPSplitClampsAndDedups: out-of-range and duplicate
// candidates collapse to one evaluation each.
func TestBestIBLPSplitClampsAndDedups(t *testing.T) {
	g := model.NewFixed(4)
	tr := trace.Trace{0, 1, 2, 3, 0, 1, 2, 3}
	_, all := BestIBLPSplit(tr, g, 16, []int{-5, 0, 0, 99, 16, 8})
	if len(all) != 3 { // {0, 16, 8}
		t.Fatalf("evaluated %d candidates, want 3: %+v", len(all), all)
	}
}
