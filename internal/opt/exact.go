package opt

import (
	"fmt"
	"math"
	"math/bits"
	"slices"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// MaxExactUniverse bounds the distinct-item count the exact solver
// accepts. Offline GC caching is NP-complete (Theorem 1); the solver is
// a frontier dynamic program over cache-content bitmasks and is meant for
// certifying heuristics and the reduction on small instances.
const MaxExactUniverse = 20

// Exact returns the exact GC-caching optimum (minimum miss count) for tr
// under geo with cache size k.
//
// States are bitmasks of cached items over the trace's distinct-item
// universe. On a miss to x the cache may load any L ⊆ block(x)\cache with
// x ∈ L and evict anything, so the reachable next states are exactly the
// S ⊆ (cache ∪ block(x)) with x ∈ S and |S| ≤ k. Because extra cached
// items never hurt (evictions are free and capacity binds only on load),
// only maximal states matter; the frontier is additionally pruned by
// dominance (drop S if a superset with no larger cost survives).
func Exact(tr trace.Trace, geo model.Geometry, k int) (int64, error) {
	if k < 1 {
		return 0, fmt.Errorf("opt: cache size %d < 1", k)
	}
	if len(tr) == 0 {
		return 0, nil
	}
	// Index the universe.
	index := make(map[model.Item]int)
	for _, it := range tr {
		if _, ok := index[it]; !ok {
			index[it] = len(index)
		}
	}
	n := len(index)
	if n > MaxExactUniverse {
		return 0, fmt.Errorf("opt: %d distinct items exceeds exact-solver limit %d", n, MaxExactUniverse)
	}
	// Per-item: bitmask of its block restricted to the universe.
	blockMask := make([]uint32, n)
	var sibBuf []model.Item // owned copy; solvers may share a geometry
	for it, idx := range index {
		var m uint32
		sibBuf = model.AppendItemsOf(geo, sibBuf[:0], geo.BlockOf(it))
		for _, sib := range sibBuf {
			if j, ok := index[sib]; ok {
				m |= 1 << uint(j)
			}
		}
		blockMask[idx] = m
	}

	frontier := map[uint32]int64{0: 0}
	for _, it := range tr {
		x := index[it]
		xbit := uint32(1) << uint(x)
		next := make(map[uint32]int64, len(frontier))
		relax := func(mask uint32, cost int64) {
			if old, ok := next[mask]; !ok || cost < old {
				next[mask] = cost
			}
		}
		for mask, cost := range frontier {
			if mask&xbit != 0 {
				relax(mask, cost)
				continue
			}
			avail := mask | blockMask[x]
			// Enumerate maximal next states: keep x plus any
			// min(k, |avail|) − 1 of the other available items.
			others := avail &^ xbit
			keep := k - 1
			if cnt := bits.OnesCount32(others); cnt <= keep {
				relax(avail, cost+1)
				continue
			}
			forEachSubsetOfSize(others, keep, func(sub uint32) {
				relax(sub|xbit, cost+1)
			})
		}
		frontier = pruneDominated(next)
		if len(frontier) == 0 {
			return 0, fmt.Errorf("opt: state space exhausted (internal error)")
		}
	}
	best := int64(math.MaxInt64)
	for _, cost := range frontier {
		if cost < best {
			best = cost
		}
	}
	return best, nil
}

// forEachSubsetOfSize calls fn for every subset of set with exactly size
// bits (size ≤ popcount(set); size ≥ 0).
func forEachSubsetOfSize(set uint32, size int, fn func(uint32)) {
	// Collect bit positions.
	var positions []uint
	for s := set; s != 0; s &= s - 1 {
		positions = append(positions, uint(bits.TrailingZeros32(s)))
	}
	if size < 0 {
		return
	}
	if size == 0 {
		fn(0)
		return
	}
	var rec func(start int, remaining int, acc uint32)
	rec = func(start, remaining int, acc uint32) {
		if remaining == 0 {
			fn(acc)
			return
		}
		for idx := start; idx <= len(positions)-remaining; idx++ {
			rec(idx+1, remaining-1, acc|1<<positions[idx])
		}
	}
	rec(0, size, 0)
}

// pruneDominated removes states dominated by a superset with cost no
// larger. Quadratic in frontier size; frontiers stay small thanks to the
// maximal-state generation.
func pruneDominated(states map[uint32]int64) map[uint32]int64 {
	type st struct {
		mask uint32
		cost int64
	}
	// Materialize in sorted mask order: the equal-cost superset tie-break
	// below compares list positions, so list order must not depend on map
	// iteration order for the surviving set to be deterministic.
	masks := make([]uint32, 0, len(states))
	for m := range states {
		masks = append(masks, m) //gclint:orderok collected set is sorted below before use
	}
	slices.Sort(masks)
	list := make([]st, 0, len(masks))
	for _, m := range masks {
		list = append(list, st{m, states[m]})
	}
	out := make(map[uint32]int64, len(list))
	for i, a := range list {
		dominated := false
		for j, b := range list {
			if i == j {
				continue
			}
			if b.mask&a.mask == a.mask && b.cost <= a.cost {
				// b is a superset with cost ≤ a's. Strict domination, or
				// tie-break equal masks by index to keep exactly one.
				if b.mask != a.mask || b.cost != a.cost || j < i {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			out[a.mask] = a.cost
		}
	}
	return out
}
