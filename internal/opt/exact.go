package opt

import (
	"context"
	"math/bits"
	"slices"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// MaxExactUniverse bounds the distinct-item count the exact solver
// accepts. Offline GC caching is NP-complete (Theorem 1); the solver is
// a frontier dynamic program over cache-content bitmasks and is meant for
// certifying heuristics and the reduction on small instances.
const MaxExactUniverse = 20

// Exact returns the exact GC-caching optimum (minimum miss count) for tr
// under geo with cache size k.
//
// States are bitmasks of cached items over the trace's distinct-item
// universe. On a miss to x the cache may load any L ⊆ block(x)\cache with
// x ∈ L and evict anything, so the reachable next states are exactly the
// S ⊆ (cache ∪ block(x)) with x ∈ S and |S| ≤ k. Because extra cached
// items never hurt (evictions are free and capacity binds only on load),
// only maximal states matter; the frontier is additionally pruned by
// dominance (drop S if a superset with no larger cost survives).
//
// Exact runs to completion; ExactCtx is the anytime variant that
// respects a deadline and reports incumbent + lower bound instead.
func Exact(tr trace.Trace, geo model.Geometry, k int) (int64, error) {
	res, err := ExactCtx(context.Background(), tr, geo, k)
	return res.Incumbent, err
}

// forEachSubsetOfSize calls fn for every subset of set with exactly size
// bits (size ≤ popcount(set); size ≥ 0).
func forEachSubsetOfSize(set uint32, size int, fn func(uint32)) {
	// Collect bit positions.
	var positions []uint
	for s := set; s != 0; s &= s - 1 {
		positions = append(positions, uint(bits.TrailingZeros32(s)))
	}
	if size < 0 {
		return
	}
	if size == 0 {
		fn(0)
		return
	}
	var rec func(start int, remaining int, acc uint32)
	rec = func(start, remaining int, acc uint32) {
		if remaining == 0 {
			fn(acc)
			return
		}
		for idx := start; idx <= len(positions)-remaining; idx++ {
			rec(idx+1, remaining-1, acc|1<<positions[idx])
		}
	}
	rec(0, size, 0)
}

// pruneDominated removes states dominated by a superset with cost no
// larger. Quadratic in frontier size; frontiers stay small thanks to the
// maximal-state generation.
func pruneDominated(states map[uint32]int64) map[uint32]int64 {
	type st struct {
		mask uint32
		cost int64
	}
	// Materialize in sorted mask order: the equal-cost superset tie-break
	// below compares list positions, so list order must not depend on map
	// iteration order for the surviving set to be deterministic.
	masks := make([]uint32, 0, len(states))
	for m := range states {
		masks = append(masks, m) //gclint:orderok collected set is sorted below before use
	}
	slices.Sort(masks)
	list := make([]st, 0, len(masks))
	for _, m := range masks {
		list = append(list, st{m, states[m]})
	}
	out := make(map[uint32]int64, len(list))
	for i, a := range list {
		dominated := false
		for j, b := range list {
			if i == j {
				continue
			}
			if b.mask&a.mask == a.mask && b.cost <= a.cost {
				// b is a superset with cost ≤ a's. Strict domination, or
				// tie-break equal masks by index to keep exactly one.
				if b.mask != a.mask || b.cost != a.cost || j < i {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			out[a.mask] = a.cost
		}
	}
	return out
}
