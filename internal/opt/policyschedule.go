package opt

import (
	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/trace"
)

// RecordSchedule replays tr through a live policy and records its
// actions as a Step schedule (without Contents, which VerifySchedule
// does not need). Passing the result to VerifySchedule gives an
// independent certification that the policy's execution is legal under
// the model — the same property cachesim.Validator checks online, proved
// here through a disjoint code path.
func RecordSchedule(c cachesim.Cache, tr trace.Trace) []Step {
	steps := make([]Step, len(tr))
	for i, it := range tr {
		a := c.Access(it)
		st := Step{Hit: a.Hit}
		if len(a.Loaded) > 0 {
			st.Load = append([]model.Item(nil), a.Loaded...)
		}
		if len(a.Evicted) > 0 {
			st.Evict = append([]model.Item(nil), a.Evicted...)
		}
		steps[i] = st
	}
	return steps
}

// PolicyCost replays tr through c and certifies the execution, returning
// the verified miss count. It errors if the policy's observable behavior
// is not a legal GC execution.
func PolicyCost(c cachesim.Cache, geo model.Geometry, tr trace.Trace) (int64, error) {
	c.Reset()
	steps := RecordSchedule(c, tr)
	return VerifySchedule(tr, geo, c.Capacity(), steps)
}
