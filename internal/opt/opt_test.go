package opt

import (
	"math/rand"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

func TestBeladyKnownSequences(t *testing.T) {
	cases := []struct {
		tr   trace.Trace
		k    int
		want int64
	}{
		// All distinct: every access misses.
		{trace.Trace{1, 2, 3, 4}, 2, 4},
		// Fits in cache: cold misses only.
		{trace.Trace{1, 2, 1, 2, 1}, 2, 2},
		// Classic: 1 2 3 1 2 3 with k=2. OPT: misses 1,2,3 (keep 1),
		// hit 1, miss 2 (keep 2... ) → textbook answer 4.
		{trace.Trace{1, 2, 3, 1, 2, 3}, 2, 4},
		{nil, 2, 0},
		// k=0 degenerates to all misses.
		{trace.Trace{1, 1, 1}, 0, 3},
	}
	for _, c := range cases {
		if got := Belady(c.tr, c.k); got != c.want {
			t.Errorf("Belady(%v, %d) = %d, want %d", c.tr, c.k, got, c.want)
		}
	}
}

func TestBeladyNeverWorseThanLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 30; round++ {
		n := 200 + rng.Intn(200)
		u := 5 + rng.Intn(20)
		k := 2 + rng.Intn(6)
		tr := make(trace.Trace, n)
		for i := range tr {
			tr[i] = model.Item(rng.Intn(u))
		}
		lru := cachesim.RunCold(policy.NewItemLRU(k), tr).Misses
		opt := Belady(tr, k)
		if opt > lru {
			t.Fatalf("round %d: Belady %d > LRU %d", round, opt, lru)
		}
		if opt < int64(tr.Distinct()) && u > k {
			// Cold misses alone are ≥ distinct items when nothing fits...
			// only check OPT ≥ distinct when universe exceeds cache.
			_ = opt
		}
		if opt < 0 {
			t.Fatal("negative cost")
		}
	}
}

// bruteForceItemOPT exhaustively searches the item-caching optimum for
// tiny instances (reference for Belady).
func bruteForceItemOPT(tr trace.Trace, k int) int64 {
	g := model.NewFixed(1)
	v, err := Exact(tr, g, k)
	if err != nil {
		panic(err)
	}
	return v
}

func TestBeladyMatchesExactB1(t *testing.T) {
	// With B = 1 the GC problem *is* traditional caching, so the exact GC
	// solver must agree with Belady exactly.
	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 25; round++ {
		n := 10 + rng.Intn(15)
		u := 3 + rng.Intn(5)
		k := 1 + rng.Intn(3)
		tr := make(trace.Trace, n)
		for i := range tr {
			tr[i] = model.Item(rng.Intn(u))
		}
		if got, want := bruteForceItemOPT(tr, k), Belady(tr, k); got != want {
			t.Fatalf("round %d: Exact(B=1) %d != Belady %d on %v k=%d", round, got, want, tr, k)
		}
	}
}

func TestExactKnownGCInstances(t *testing.T) {
	g := model.NewFixed(2) // blocks {0,1}, {2,3}, {4,5}, ...
	cases := []struct {
		name string
		tr   trace.Trace
		k    int
		want int64
	}{
		{"free sibling", trace.Trace{0, 1}, 2, 1},
		{"sibling after eviction pressure", trace.Trace{0, 1, 0, 1}, 2, 1},
		{"two blocks fit", trace.Trace{0, 1, 2, 3, 0, 1, 2, 3}, 4, 2},
		{"two blocks, cache 2: OPT keeps pairs", trace.Trace{0, 1, 2, 3, 0, 1, 2, 3}, 2, 4},
		{"item cache forced", trace.Trace{0, 2, 0, 2}, 2, 2},
		{"empty", nil, 2, 0},
	}
	for _, c := range cases {
		got, err := Exact(c.tr, g, c.k)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: Exact = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestExactRejectsLargeUniverse(t *testing.T) {
	tr := make(trace.Trace, MaxExactUniverse+1)
	for i := range tr {
		tr[i] = model.Item(i)
	}
	if _, err := Exact(tr, model.NewFixed(2), 2); err == nil {
		t.Fatal("oversized universe accepted")
	}
	if _, err := Exact(trace.Trace{1}, model.NewFixed(2), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestHeuristicsBracketExact(t *testing.T) {
	// The central soundness property: BlockLowerBound ≤ Exact ≤ every
	// heuristic upper bound, on random small GC instances.
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 40; round++ {
		B := 2 + rng.Intn(2) // 2 or 3
		nBlocks := 3 + rng.Intn(2)
		g := model.NewFixed(B)
		universe := B * nBlocks
		n := 12 + rng.Intn(10)
		k := 2 + rng.Intn(4)
		tr := make(trace.Trace, n)
		for i := range tr {
			tr[i] = model.Item(rng.Intn(universe))
		}
		exact, err := Exact(tr, g, k)
		if err != nil {
			t.Fatal(err)
		}
		est := EstimateOPT(tr, g, k)
		if est.Lower > exact {
			t.Fatalf("round %d: lower bound %d > exact %d (tr=%v k=%d B=%d)",
				round, est.Lower, exact, tr, k, B)
		}
		if est.Upper < exact {
			t.Fatalf("round %d: heuristic %s gives %d < exact %d — not a valid execution? (tr=%v k=%d B=%d)",
				round, est.UpperMethod, est.Upper, exact, tr, k, B)
		}
	}
}

func TestGreedySiblingExploitsSpatialLocality(t *testing.T) {
	// Sequential scan over blocks: greedy-sibling and block-Belady pay one
	// miss per block; item Belady pays one per item.
	g := model.NewFixed(4)
	tr := workload.Sequential(0, 64)
	if got := GreedySibling(tr, g, 8); got != 16 {
		t.Errorf("GreedySibling = %d, want 16 (one per block)", got)
	}
	if got := BlockBelady(tr, g, 8); got != 16 {
		t.Errorf("BlockBelady = %d, want 16", got)
	}
	if got := Belady(tr, 8); got != 64 {
		t.Errorf("Belady = %d, want 64", got)
	}
}

func TestBlockBeladyPollution(t *testing.T) {
	// One hot item per block, 3 hot blocks, k=4 with B=4: block-Belady
	// can hold only one block; item-level Belady holds all 3 items.
	g := model.NewFixed(4)
	tr := trace.Trace{0, 4, 8}.Repeat(20)
	blockCost := BlockBelady(tr, g, 4)
	itemCost := Belady(tr, 4)
	if itemCost != 3 {
		t.Errorf("item Belady = %d, want 3", itemCost)
	}
	if blockCost <= itemCost {
		t.Errorf("block Belady = %d should suffer pollution vs %d", blockCost, itemCost)
	}
}

func TestBlockLowerBoundProperties(t *testing.T) {
	g := model.NewFixed(4)
	tr := workload.Sequential(0, 64) // 16 blocks
	// Every first touch of a block must miss: LB = 16 here.
	if got := BlockLowerBound(tr, g, 8); got != 16 {
		t.Errorf("BlockLowerBound = %d, want 16", got)
	}
	// LB never exceeds the trace's block-level distinct count on a
	// single-pass trace... and never exceeds the upper estimates.
	est := EstimateOPT(tr, g, 8)
	if est.Lower > est.Upper {
		t.Errorf("bracket inverted: %+v", est)
	}
}

func TestEstimateOPTPicksBestUpper(t *testing.T) {
	g := model.NewFixed(4)
	// Spatial trace: block methods win.
	est := EstimateOPT(workload.Sequential(0, 64), g, 8)
	if est.Upper != 16 {
		t.Errorf("Upper = %d, want 16", est.Upper)
	}
	// Pollution trace: item Belady wins.
	est = EstimateOPT(trace.Trace{0, 4, 8}.Repeat(20), g, 4)
	if est.Upper != 3 || est.UpperMethod != "item-belady" {
		t.Errorf("est = %+v, want item-belady 3", est)
	}
}

func TestBeladyKeysStaleEntryStress(t *testing.T) {
	// Heavy re-access pattern stresses the lazy-deletion heap.
	rng := rand.New(rand.NewSource(123))
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(rng.Intn(12))
	}
	got := BeladyKeys(keys, 4)
	if got < 12 || got > 5000 {
		t.Errorf("implausible Belady cost %d", got)
	}
	// Differential against the exact solver on a truncated prefix.
	tr := make(trace.Trace, 24)
	for i := range tr {
		tr[i] = model.Item(keys[i])
	}
	want, err := Exact(tr, model.NewFixed(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	prefix := make([]uint64, 24)
	for i := range prefix {
		prefix[i] = keys[i]
	}
	if got := BeladyKeys(prefix, 4); got != want {
		t.Errorf("Belady prefix = %d, exact = %d", got, want)
	}
}

func TestExactScheduleMatchesExactAndVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for round := 0; round < 25; round++ {
		B := 2 + rng.Intn(2)
		g := model.NewFixed(B)
		universe := B * (2 + rng.Intn(2))
		n := 10 + rng.Intn(10)
		k := 2 + rng.Intn(4)
		tr := make(trace.Trace, n)
		for i := range tr {
			tr[i] = model.Item(rng.Intn(universe))
		}
		want, err := Exact(tr, g, k)
		if err != nil {
			t.Fatal(err)
		}
		got, sched, err := ExactSchedule(tr, g, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round %d: schedule cost %d != exact %d", round, got, want)
		}
		verified, err := VerifySchedule(tr, g, k, sched)
		if err != nil {
			t.Fatalf("round %d: schedule invalid: %v (tr=%v k=%d B=%d)", round, err, tr, k, B)
		}
		if verified != want {
			t.Fatalf("round %d: verified cost %d != %d", round, verified, want)
		}
	}
}

func TestExactScheduleEdgeCases(t *testing.T) {
	g := model.NewFixed(2)
	if _, _, err := ExactSchedule(nil, g, 2); err != nil {
		t.Errorf("empty trace: %v", err)
	}
	if _, _, err := ExactSchedule(trace.Trace{1}, g, 0); err == nil {
		t.Error("k=0 accepted")
	}
	big := make(trace.Trace, MaxExactUniverse+1)
	for i := range big {
		big[i] = model.Item(i)
	}
	if _, _, err := ExactSchedule(big, g, 2); err == nil {
		t.Error("oversized universe accepted")
	}
}

func TestVerifyScheduleRejectsIllegal(t *testing.T) {
	g := model.NewFixed(2)
	tr := trace.Trace{0, 1}
	// Legal schedule: load {0,1}, then hit.
	good := []Step{
		{Load: []model.Item{0, 1}},
		{Hit: true},
	}
	if cost, err := VerifySchedule(tr, g, 2, good); err != nil || cost != 1 {
		t.Fatalf("good schedule rejected: %v cost=%d", err, cost)
	}
	bad := [][]Step{
		// Wrong hit flag.
		{{Hit: true}, {Hit: true}},
		// Load outside the block.
		{{Load: []model.Item{0, 5}}, {Hit: true}},
		// Missing demand load.
		{{Load: []model.Item{1}}, {Hit: true}},
		// Capacity overflow.
		{{Load: []model.Item{0, 1}}, {Hit: true}},
	}
	caps := []int{2, 2, 2, 1}
	for i, sched := range bad {
		if _, err := VerifySchedule(tr, g, caps[i], sched); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
	if _, err := VerifySchedule(tr, g, 2, good[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPolicyCostCertifiesRealPolicies(t *testing.T) {
	// Independent cross-check of the online Validator: replaying each
	// policy's recorded schedule through VerifySchedule must succeed and
	// agree with the simulator's miss count — and OPT never exceeds any
	// of them.
	B := 8
	g := model.NewFixed(B)
	tr, err := workload.BlockRuns(workload.BlockRunsConfig{
		NumBlocks: 32, BlockSize: B, MeanRunLength: 4, Length: 8000, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := 48
	caches := []cachesim.Cache{
		policy.NewItemLRU(k),
		policy.NewBlockLRU(k, g),
		policy.NewBlockLoadItemEvict(k, g),
		policy.NewFootprint(k, g),
		policy.NewClock(k),
	}
	lower := BlockLowerBound(tr, g, k)
	for _, c := range caches {
		cost, err := PolicyCost(c, g, tr)
		if err != nil {
			t.Fatalf("%s: illegal execution: %v", c.Name(), err)
		}
		simCost := cachesim.RunCold(c, tr).Misses
		if cost != simCost {
			t.Errorf("%s: verified cost %d != simulated %d", c.Name(), cost, simCost)
		}
		if cost < lower {
			t.Errorf("%s: cost %d below the certified OPT lower bound %d", c.Name(), cost, lower)
		}
	}
}
