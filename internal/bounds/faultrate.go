package bounds

import (
	"math"

	"gccache/internal/locality"
)

// FaultRateLB returns Theorem 8: in the extended locality model with item
// working-set function f and block working-set function g, any
// deterministic policy with cache size k has fault rate at least
//
//	g(f⁻¹(k+1) − 2) / (f⁻¹(k+1) − 2).
//
// Domain: k ≥ 1 and f⁻¹(k+1) > 2 (windows long enough to exercise k+1
// distinct items). Returns NaN outside the domain.
func FaultRateLB(k float64, f, g locality.Func) float64 {
	if k < 1 {
		return math.NaN()
	}
	n := f.Inverse(k+1) - 2
	if n <= 0 {
		return math.NaN()
	}
	return g.Eval(n) / n
}

// ItemLayerFaultUB returns Theorem 9: the fault rate of IBLP's item layer
// (an LRU cache of size i in the traditional model, which granularity
// change can only improve) is at most (i−1)/(f⁻¹(i+1) − 2).
// The conservative InverseLow is used so that sparsely measured profiles
// can only inflate, never deflate, the upper bound.
func ItemLayerFaultUB(i float64, f locality.Func) float64 {
	if i < 1 {
		return math.NaN()
	}
	n := f.InverseLow(i+1) - 2
	if n <= 0 {
		return math.NaN()
	}
	return (i - 1) / n
}

// BlockLayerFaultUB returns Theorem 10: the block layer is an LRU cache
// of effective size b/B serving the *block* request stream, so its fault
// rate is at most (b/B − 1)/(g⁻¹(b/B + 1) − 2), with g as the
// items-per-window function.
//
// Note: the theorem statement in the paper prints f⁻¹ here, but its proof
// ("using the number of blocks in a window g(n) as the items per window
// function") and every Table 2 row require g⁻¹; we implement the proof.
func BlockLayerFaultUB(b, B float64, g locality.Func) float64 {
	if B < 1 || b < B {
		return math.NaN()
	}
	eff := b / B
	n := g.InverseLow(eff+1) - 2
	if n <= 0 {
		return math.NaN()
	}
	return (eff - 1) / n
}

// IBLPFaultUB returns Theorem 11: IBLP misses only when both layers miss,
// so its fault rate is at most the minimum of the two layer bounds.
func IBLPFaultUB(i, b, B float64, f, g locality.Func) float64 {
	iu := ItemLayerFaultUB(i, f)
	bu := BlockLayerFaultUB(b, B, g)
	switch {
	case math.IsNaN(iu):
		return bu
	case math.IsNaN(bu):
		return iu
	default:
		return math.Min(iu, bu)
	}
}
