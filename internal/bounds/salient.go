package bounds

import (
	"math"

	"gccache/internal/numopt"
)

// RatioFunc is a competitive-ratio bound as a function of the online
// cache size k, with all other parameters (h, B, …) already bound.
type RatioFunc func(k float64) float64

// MeetingPoint finds the online size k at which bound(k) equals the
// augmentation factor k/h — Table 1's "Ratio = Augmentation" column.
// Bounds in this paper decrease in k while k/h increases, so the crossing
// is unique; it is located by bisection on [kLo, kHi]. ok is false if the
// bracket does not straddle the crossing.
func MeetingPoint(bound RatioFunc, h, kLo, kHi float64) (k float64, ok bool) {
	f := func(k float64) float64 {
		v := bound(k)
		if math.IsInf(v, 1) {
			return math.MaxFloat64
		}
		if math.IsNaN(v) {
			return math.MaxFloat64
		}
		return v - k/h
	}
	return numopt.Bisect(f, kLo, kHi, 200)
}

// AugmentationForRatio finds the online size k at which bound(k) drops to
// the target ratio — Table 1's "Constant Ratio" column. The bound must be
// decreasing in k on [kLo, kHi]. ok is false if the target is not
// bracketed.
func AugmentationForRatio(bound RatioFunc, target, kLo, kHi float64) (k float64, ok bool) {
	f := func(k float64) float64 {
		v := bound(k)
		if math.IsInf(v, 1) || math.IsNaN(v) {
			return math.MaxFloat64
		}
		return v - target
	}
	return numopt.Bisect(f, kLo, kHi, 200)
}

// SalientPoint is one cell of Table 1: an augmentation factor k/h and the
// competitive ratio at that augmentation.
type SalientPoint struct {
	Augmentation float64 // k/h
	Ratio        float64
}

// Table1Column holds the three salient points of one Table 1 column for
// a given bound.
type Table1Column struct {
	// ConstantAugmentation is the ratio at k = 2h.
	ConstantAugmentation SalientPoint
	// Meeting is the point where ratio = augmentation.
	Meeting SalientPoint
	// ConstantRatio is the augmentation at which the ratio reaches the
	// column's asymptotic floor (2 for ST and the GC lower bound, 3 for
	// the GC upper bound), probed at k = Bh as in the paper.
	ConstantRatio SalientPoint
}

// Table1ColumnFor computes the salient points of Table 1 for an arbitrary
// ratio bound at optimal size h and block size B.
func Table1ColumnFor(bound RatioFunc, h, B float64) Table1Column {
	var col Table1Column
	col.ConstantAugmentation = SalientPoint{Augmentation: 2, Ratio: bound(2 * h)}
	if k, ok := MeetingPoint(bound, h, h+1, 4*B*B*h); ok {
		col.Meeting = SalientPoint{Augmentation: k / h, Ratio: bound(k)}
	} else {
		col.Meeting = SalientPoint{Augmentation: math.NaN(), Ratio: math.NaN()}
	}
	col.ConstantRatio = SalientPoint{Augmentation: B, Ratio: bound(B * h)}
	return col
}

// Table1 computes all three Table 1 columns at optimal size h and block
// size B: the Sleator–Tarjan baseline, the GC lower bound (Theorem 4
// minimized over a), and the GC upper bound (IBLP, §5.3 sizing).
func Table1(h, B float64) (st, lower, upper Table1Column) {
	st = Table1ColumnFor(func(k float64) float64 { return SleatorTarjan(k, h) }, h, B)
	lower = Table1ColumnFor(func(k float64) float64 { return GeneralLBBest(k, h, B) }, h, B)
	upper = Table1ColumnFor(func(k float64) float64 { return IBLPKnownH(k, h, B) }, h, B)
	return st, lower, upper
}
