package bounds

import (
	"math"
	"testing"

	"gccache/internal/locality"
)

func TestFaultRateLBTable2Row1(t *testing.T) {
	// f = g = √n (no spatial locality): lower bound ≈ 1/h for a cache of
	// size h (Table 2 row 1, h = cache size).
	f := locality.Poly{C: 1, P: 2}
	h := 10000.0
	got := FaultRateLB(h, f, f)
	relApprox(t, "LB √n", got, 1/h, 0.01)
}

func TestFaultRateLBTable2SpatialRows(t *testing.T) {
	f := locality.Poly{C: 1, P: 2}
	B := 64.0
	h := 10000.0
	// g = f/√B: LB ≈ 1/(√B·h).
	g2 := locality.Scaled{F: f, Gamma: math.Sqrt(B)}
	relApprox(t, "LB f/√B", FaultRateLB(h, f, g2), 1/(math.Sqrt(B)*h), 0.01)
	// g = f/B: LB ≈ 1/(B·h).
	g3 := locality.Scaled{F: f, Gamma: B}
	relApprox(t, "LB f/B", FaultRateLB(h, f, g3), 1/(B*h), 0.01)
}

func TestFaultRateLBGeneralP(t *testing.T) {
	// f = n^{1/p}: LB ≈ 1/h^{p−1} (rows 4–6 of Table 2, g = f).
	for _, p := range []float64{2, 3, 4} {
		f := locality.Poly{C: 1, P: p}
		h := 500.0
		relApprox(t, "LB n^{1/p}", FaultRateLB(h, f, f), 1/math.Pow(h, p-1), 0.05)
	}
}

func TestItemLayerFaultUBTable2(t *testing.T) {
	// (i−1)/(f⁻¹(i+1)−2) ≈ 1/i^{p−1} for f = n^{1/p}.
	for _, p := range []float64{2, 3} {
		f := locality.Poly{C: 1, P: p}
		i := 4096.0
		relApprox(t, "item UB", ItemLayerFaultUB(i, f), 1/math.Pow(i, p-1), 0.01)
	}
}

func TestBlockLayerFaultUBTable2(t *testing.T) {
	B := 64.0
	b := 65536.0
	f := locality.Poly{C: 1, P: 2}
	// g = f (no spatial locality): block UB ≈ B^{p−1}/b^{p−1} = B/b.
	relApprox(t, "block UB g=f", BlockLayerFaultUB(b, B, f), B/b, 0.01)
	// g = f/√B: block UB ≈ 1/b (Table 2 row 2, p=2).
	g2 := locality.Scaled{F: f, Gamma: math.Sqrt(B)}
	relApprox(t, "block UB g=f/√B", BlockLayerFaultUB(b, B, g2), 1/b, 0.01)
	// g = f/B: block UB ≈ 1/(B·b) (Table 2 row 3, p=2).
	g3 := locality.Scaled{F: f, Gamma: B}
	relApprox(t, "block UB g=f/B", BlockLayerFaultUB(b, B, g3), 1/(B*b), 0.01)
}

func TestIBLPFaultUBTakesMin(t *testing.T) {
	f := locality.Poly{C: 1, P: 2}
	B := 64.0
	i, b := 4096.0, 4096.0
	// With g = f/B, block layer is far better; the min must pick it.
	g := locality.Scaled{F: f, Gamma: B}
	iu := ItemLayerFaultUB(i, f)
	bu := BlockLayerFaultUB(b, B, g)
	got := IBLPFaultUB(i, b, B, f, g)
	approx(t, "min", got, math.Min(iu, bu), 1e-15)
	if got != bu {
		t.Errorf("expected block layer to win: item %v block %v", iu, bu)
	}
}

func TestFaultRateMeetingPoint(t *testing.T) {
	// §7.3: with ratio f/g = B^{1−1/p}, the two layer bounds meet at
	// ≈ 1/i^{p−1} for i = b.
	for _, p := range []float64{2, 3} {
		B := 64.0
		f := locality.Poly{C: 1, P: p}
		g := locality.Scaled{F: f, Gamma: math.Pow(B, 1-1/p)}
		i := 32768.0
		iu := ItemLayerFaultUB(i, f)
		bu := BlockLayerFaultUB(i, B, g)
		relApprox(t, "meeting UBs", iu, bu, 0.05)
		relApprox(t, "meeting value", iu, 1/math.Pow(i, p-1), 0.05)
	}
}

func TestFaultBoundsDomains(t *testing.T) {
	f := locality.Poly{C: 1, P: 2}
	if !math.IsNaN(FaultRateLB(0.5, f, f)) {
		t.Error("k<1 should be NaN")
	}
	if !math.IsNaN(ItemLayerFaultUB(0.5, f)) {
		t.Error("i<1 should be NaN")
	}
	if !math.IsNaN(BlockLayerFaultUB(10, 64, f)) {
		t.Error("b<B should be NaN")
	}
	// Tiny cache where f⁻¹(k+1) ≤ 2 is out of the model's domain.
	if !math.IsNaN(FaultRateLB(1, locality.Poly{C: 10, P: 1}, f)) {
		t.Error("degenerate window should be NaN")
	}
}

func TestIBLPFaultUBHandlesPartialDomains(t *testing.T) {
	f := locality.Poly{C: 1, P: 2}
	// Block layer out of domain (b < B): fall back to the item bound.
	got := IBLPFaultUB(4096, 10, 64, f, f)
	approx(t, "fallback item", got, ItemLayerFaultUB(4096, f), 1e-15)
	// Item layer out of domain: fall back to the block bound.
	got = IBLPFaultUB(0.5, 65536, 64, f, f)
	approx(t, "fallback block", got, BlockLayerFaultUB(65536, 64, f), 1e-15)
}
