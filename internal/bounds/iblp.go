package bounds

import "math"

// ItemLayerUB returns Theorem 5: considering only temporal-locality hits,
// the IBLP item layer of size i has competitive ratio at most i/(i−h)
// against an optimal cache of size h. Domain: i > h ≥ 1. +Inf at i ≤ h.
func ItemLayerUB(i, h float64) float64 {
	if h < 1 || i < h {
		return math.NaN()
	}
	if i == h {
		return math.Inf(1)
	}
	return i / (i - h)
}

// BlockLayerUB returns Theorem 6: considering only spatial-locality hits,
// the IBLP block layer of size b has competitive ratio at most
// min(B, (b+2Bh−B)/(b+B)). Domain: b ≥ 0, h ≥ 1, B ≥ 1.
func BlockLayerUB(b, h, B float64) float64 {
	if B < 1 || h < 1 || b < 0 {
		return math.NaN()
	}
	return math.Min(B, (b+2*B*h-B)/(b+B))
}

// Theorem7RegionBoundary returns the item-layer size at which Theorem 7
// switches expressions: i* = (2Bb − b + 2B² + B)/(2B). Below it the block
// layer's load count t is interior (< B); above it t saturates at B.
func Theorem7RegionBoundary(b, B float64) float64 {
	return (2*B*b - b + 2*B*B + B) / (2 * B)
}

// IBLPUB returns Theorem 7: the competitive ratio of IBLP with item layer
// i and block layer b against an optimal cache of size h is at most
//
//	(b+B(2i−1))² / (8B(B+b)(i−h))        if i ≤ (2Bb−b+2B²+B)/(2B)
//	(2Bi−Bb+b−B²−B) / (2i−2h)            otherwise.
//
// Domain: i > h ≥ 1, b ≥ 0, B ≥ 1. +Inf at i ≤ h (the item layer alone
// must out-size the optimal cache for the analysis to bound anything).
func IBLPUB(i, b, h, B float64) float64 {
	if B < 1 || h < 1 || b < 0 || i < 0 {
		return math.NaN()
	}
	if i <= h {
		return math.Inf(1)
	}
	if i <= Theorem7RegionBoundary(b, B) {
		num := b + B*(2*i-1)
		return num * num / (8 * B * (B + b) * (i - h))
	}
	return (2*B*i - B*b + b - B*B - B) / (2*i - 2*h)
}

// OptimalSplitThreshold returns the §5.3 threshold on k below which IBLP
// should devote everything to the item layer (i = k, b = 0):
// k ≥ (3Bh − h − B² − B)/(B − 1) is required for a nonzero block layer to
// pay off. For B = 1 (no granularity change) the threshold is −∞: the
// block layer never helps.
func OptimalSplitThreshold(h, B float64) float64 {
	if B <= 1 {
		return math.Inf(-1)
	}
	return (3*B*h - h - B*B - B) / (B - 1)
}

// OptimalItemLayer returns the §5.3 optimal item-layer size i for total
// cache size k against a known optimal cache size h:
//
//	i = (k² + 4Bhk − hk + 4B²h − 3Bh − B²) / (2Bk + k + 2Bh − h + 2B² − 3B)
//
// when k is above OptimalSplitThreshold, and i = k otherwise. The result
// is clamped to [h+1, k] so that the Theorem 7 domain holds (IBLP needs
// i > h) and the block layer is b = k − i ≥ 0.
func OptimalItemLayer(k, h, B float64) float64 {
	if k < h || h < 1 || B < 1 {
		return math.NaN()
	}
	i := k
	if B > 1 && k >= OptimalSplitThreshold(h, B) {
		num := k*k + 4*B*h*k - h*k + 4*B*B*h - 3*B*h - B*B
		den := 2*B*k + k + 2*B*h - h + 2*B*B - 3*B
		if den > 0 {
			i = num / den
		}
	}
	return math.Min(k, math.Max(h+1, i))
}

// IBLPKnownH returns the §5.3 closed-form competitive ratio of IBLP when
// the optimal cache size h is known and the layers are sized optimally:
//
//	(k+B−1)(k−h+B(2h−1)) / (k−h+B)²          if k ≥ threshold
//	(2Bk−B²−B) / (2(k−h))                    otherwise (i = k, Item Cache)
//
// Domain: k > h ≥ 1. +Inf at k ≤ h.
func IBLPKnownH(k, h, B float64) float64 {
	if h < 1 || B < 1 || k < h {
		return math.NaN()
	}
	if k == h {
		return math.Inf(1)
	}
	if B > 1 && k >= OptimalSplitThreshold(h, B) {
		return (k + B - 1) * (k - h + B*(2*h-1)) / ((k - h + B) * (k - h + B))
	}
	return (2*B*k - B*B - B) / (2 * (k - h))
}

// IBLPApproxRatio returns the §5.3 large-cache approximation
// (k > h ≫ B ≫ 1): k(k+2Bh)/(k−h)² if k ≥ 3h, else Bk/(k−h).
func IBLPApproxRatio(k, h, B float64) float64 {
	if k <= h {
		return math.Inf(1)
	}
	if k >= 3*h {
		return k * (k + 2*B*h) / ((k - h) * (k - h))
	}
	return B * k / (k - h)
}

// Theorem7LP numerically maximizes the §5.2 combined linear program —
//
//	maximize 1/(1 − r − s(t−1))
//	s.t.     h ≥ r·i + s·U(t),  1 ≥ r + s·t,  0 ≤ r, 0 ≤ s, 1 ≤ t ≤ B
//
// where U(t) = Σ_{j=0}^{t−1} (1 + j(b/B+1)) is the triangle-shaped cache
// usage of a t-item spatial load — and returns the maximized ratio. It is
// the machine check (experiment E5) that the Theorem 7 closed form
// dominates the program's true optimum. For fixed (r, t), the optimal s
// saturates the tighter constraint, so the search is two-dimensional.
func Theorem7LP(i, b, h, B float64, grid int) float64 {
	if grid < 8 {
		grid = 8
	}
	usage := func(t float64) float64 {
		// Triangle sum with the continuous analogue of Σ j = t(t−1)/2.
		return t + (b/B+1)*t*(t-1)/2
	}
	best := 1.0
	eval := func(r, t float64) float64 {
		if r < 0 || r > 1 || t < 1 || t > B {
			return math.Inf(-1)
		}
		s := math.Inf(1)
		if u := usage(t); u > 0 {
			if rem := h - r*i; rem >= 0 {
				s = rem / u
			} else {
				return math.Inf(-1)
			}
		}
		if cap := (1 - r) / t; cap < s {
			s = cap
		}
		if s < 0 {
			return math.Inf(-1)
		}
		hits := r + s*(t-1)
		if hits >= 1 {
			return math.Inf(1)
		}
		return 1 / (1 - hits)
	}
	for ri := 0; ri <= grid; ri++ {
		r := float64(ri) / float64(grid)
		for ti := 0; ti <= grid; ti++ {
			t := 1 + (B-1)*float64(ti)/float64(grid)
			if v := eval(r, t); v > best {
				best = v
			}
		}
	}
	// Local refinement around the coarse optimum.
	refine := func(rc, tc, span float64) {
		for ri := -grid; ri <= grid; ri++ {
			r := rc + span*float64(ri)/float64(grid)
			for ti := -grid; ti <= grid; ti++ {
				t := tc + span*(B-1)*float64(ti)/float64(grid)
				if v := eval(r, t); v > best {
					best = v
				}
			}
		}
	}
	// Re-scan to find where the best was, then refine twice.
	bestR, bestT := 0.0, 1.0
	for ri := 0; ri <= grid; ri++ {
		r := float64(ri) / float64(grid)
		for ti := 0; ti <= grid; ti++ {
			t := 1 + (B-1)*float64(ti)/float64(grid)
			if eval(r, t) == best {
				bestR, bestT = r, t
			}
		}
	}
	refine(bestR, bestT, 1/float64(grid))
	refine(bestR, bestT, 1/float64(grid*grid))
	return best
}

// Theorem6LP numerically maximizes the block-layer-only program of §5.2
// (r fixed to 0): used to cross-check the Theorem 6 closed form.
func Theorem6LP(b, h, B float64, grid int) float64 {
	return theorem6LPAtR(0, math.Inf(1), b, h, B, grid)
}

func theorem6LPAtR(r, i, b, h, B float64, grid int) float64 {
	if grid < 8 {
		grid = 8
	}
	usage := func(t float64) float64 { return t + (b/B+1)*t*(t-1)/2 }
	best := 1.0
	for ti := 0; ti <= grid*grid; ti++ {
		t := 1 + (B-1)*float64(ti)/float64(grid*grid)
		rem := h
		if !math.IsInf(i, 1) {
			rem = h - r*i
		}
		if rem < 0 {
			continue
		}
		s := math.Min(rem/usage(t), (1-r)/t)
		if s < 0 {
			continue
		}
		hits := r + s*(t-1)
		if hits >= 1 {
			return math.Inf(1)
		}
		if v := 1 / (1 - hits); v > best {
			best = v
		}
	}
	return best
}
