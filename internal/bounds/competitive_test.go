package bounds

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v ± %v", name, got, want, tol)
	}
}

func relApprox(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > relTol*math.Abs(want) {
		t.Errorf("%s = %v, want %v (rel tol %v)", name, got, want, relTol)
	}
}

func TestSleatorTarjan(t *testing.T) {
	// k = h: ratio k (LRU with equal sizes is k-competitive... k/(k−h+1)=k).
	approx(t, "ST(8,8)", SleatorTarjan(8, 8), 8, 1e-12)
	// k = 2h − 1: exactly 2... k/(k−h+1) = (2h−1)/h.
	approx(t, "ST(15,8)", SleatorTarjan(15, 8), 15.0/8, 1e-12)
	if !math.IsNaN(SleatorTarjan(4, 8)) {
		t.Error("ST with k < h should be NaN")
	}
	if !math.IsNaN(SleatorTarjan(4, 0)) {
		t.Error("ST with h < 1 should be NaN")
	}
}

func TestItemCacheLBMatchesTheorem2(t *testing.T) {
	// B(k−B+1)/(k−h+1) at k=100, h=10, B=4: 4·97/91.
	approx(t, "Thm2", ItemCacheLB(100, 10, 4), 4.0*97/91, 1e-12)
	// With B=1 and h=1 reduces to Sleator–Tarjan: 1·k/(k−h+1).
	approx(t, "Thm2 B=1", ItemCacheLB(100, 10, 1), SleatorTarjan(100, 10), 1e-12)
	if !math.IsNaN(ItemCacheLB(100, 2, 4)) {
		t.Error("h < B should be NaN")
	}
}

func TestBlockCacheLBMatchesTheorem3(t *testing.T) {
	// k/(k−B(h−1)) at k=100, h=10, B=4: 100/64.
	approx(t, "Thm3", BlockCacheLB(100, 10, 4), 100.0/64, 1e-12)
	// Infinite when k ≤ B(h−1).
	if !math.IsInf(BlockCacheLB(36, 10, 4), 1) {
		t.Error("k = B(h−1) should be +Inf")
	}
	if !math.IsInf(BlockCacheLB(20, 10, 4), 1) {
		t.Error("k < B(h−1) should be +Inf")
	}
	// With B=1 reduces to k/(k−h+1) = Sleator–Tarjan.
	approx(t, "Thm3 B=1", BlockCacheLB(100, 10, 1), SleatorTarjan(100, 10), 1e-12)
}

func TestGeneralLBEndpoints(t *testing.T) {
	k, h, B := 1000.0, 100.0, 8.0
	// a = B reduces to the Item Cache bound.
	approx(t, "Thm4 a=B", GeneralLB(k, h, B, B), ItemCacheLB(k, h, B), 1e-9)
	// a = 1: (k−h+1+B(h−1))/(k−h+1).
	approx(t, "Thm4 a=1", GeneralLB(k, h, B, 1), (k-h+1+B*(h-1))/(k-h+1), 1e-12)
	if !math.IsNaN(GeneralLB(k, h, B, 0)) || !math.IsNaN(GeneralLB(k, h, B, B+1)) {
		t.Error("a outside [1,B] should be NaN")
	}
}

func TestGeneralLBBestIsMinOverAllA(t *testing.T) {
	for _, p := range []struct{ k, h, B float64 }{
		{1000, 100, 8}, {120, 100, 64}, {50000, 200, 64}, {300, 299, 16},
	} {
		best := GeneralLBBest(p.k, p.h, p.B)
		scan := math.Inf(1)
		for a := 1.0; a <= p.B; a++ {
			if v := GeneralLB(p.k, p.h, p.B, a); !math.IsNaN(v) && v < scan {
				scan = v
			}
		}
		relApprox(t, "GeneralLBBest vs scan", best, scan, 1e-12)
		// §4.4: the argmin is at an endpoint.
		am := GeneralLBArgmin(p.k, p.h, p.B)
		relApprox(t, "argmin value", GeneralLB(p.k, p.h, p.B, am), scan, 1e-12)
	}
}

func TestGCBoundsDominateSleatorTarjan(t *testing.T) {
	// Spatial locality can only widen the online/offline gap: the GC
	// lower bound exceeds Sleator–Tarjan everywhere in its domain (B ≥ 2).
	for _, kMult := range []float64{1.5, 2, 4, 16, 64, 100} {
		h := 1024.0
		k := kMult * h
		B := 64.0
		if GeneralLBBest(k, h, B) < SleatorTarjan(k, h)-1e-9 {
			t.Errorf("GC LB < ST at k=%v", k)
		}
	}
}

func TestTable1SalientPoints(t *testing.T) {
	// Table 1 at B=64 with a large h; the paper's entries are the
	// leading-order approximations of these numbers.
	h, B := 16384.0, 64.0
	st, lower, upper := Table1(h, B)

	// Sleator–Tarjan column: k=2h ⇒ 2, meet at 2, ratio 2 at any large k.
	approx(t, "ST @2h", st.ConstantAugmentation.Ratio, 2, 1e-3)
	approx(t, "ST meet aug", st.Meeting.Augmentation, 2, 1e-3)

	// GC lower bound column: k≈2h ⇒ ≈B; meet ≈ 1+√B; k≈Bh ⇒ ≈2.
	approx(t, "LB @2h", lower.ConstantAugmentation.Ratio, B, 1.5)
	approx(t, "LB meet", lower.Meeting.Augmentation, 1+math.Sqrt(B), 0.2)
	approx(t, "LB @Bh", lower.ConstantRatio.Ratio, 2, 0.1)

	// GC upper bound column: k≈2h ⇒ ≈2B; meet ≈ √(2B); k≈Bh ⇒ ≈3.
	approx(t, "UB @2h", upper.ConstantAugmentation.Ratio, 2*B, 1)
	if upper.Meeting.Augmentation < math.Sqrt(2*B) || upper.Meeting.Augmentation > 1.3*math.Sqrt(2*B) {
		t.Errorf("UB meet = %v, want ≈ √(2B) = %v", upper.Meeting.Augmentation, math.Sqrt(2*B))
	}
	approx(t, "UB @Bh", upper.ConstantRatio.Ratio, 3, 0.2)

	// Table 1's headline: the GC model adds a Θ(B) penalty to the product
	// ratio × augmentation relative to ST at every salient point.
	prodST := st.ConstantAugmentation.Ratio * st.ConstantAugmentation.Augmentation
	prodLB := lower.ConstantAugmentation.Ratio * lower.ConstantAugmentation.Augmentation
	if prodLB < 0.5*B*prodST/2 {
		t.Errorf("LB product %v should be ≈ B/2 × ST product %v", prodLB, prodST)
	}
}

func TestMeetingPointMonotoneBound(t *testing.T) {
	h := 100.0
	k, ok := MeetingPoint(func(k float64) float64 { return SleatorTarjan(k, h) }, h, h+1, 100*h)
	if !ok {
		t.Fatal("no meeting point for ST")
	}
	// Exact solution of k/(k−h+1) = k/h is k−h+1 = h ⇒ k = 2h−1.
	approx(t, "ST meet k", k, 2*h-1, 1e-6)
}

func TestAugmentationForRatio(t *testing.T) {
	h := 100.0
	bound := func(k float64) float64 { return SleatorTarjan(k, h) }
	k, ok := AugmentationForRatio(bound, 1.25, h+1, 100*h)
	if !ok {
		t.Fatal("no crossing")
	}
	// k/(k−h+1) = 1.25 ⇒ k = 5(h−1) ⇒ 495.
	approx(t, "k for ratio 1.25", k, 495, 1e-6)
	if _, ok := AugmentationForRatio(bound, 0.5, h+1, 100*h); ok {
		t.Error("impossible target should not bracket")
	}
}

func TestCatalogEntriesEvaluate(t *testing.T) {
	k, h, B := 4096.0, 256.0, 64.0
	for _, e := range Catalog() {
		if e.Name == "" || e.Source == "" || e.Statement == "" || e.Domain == "" {
			t.Errorf("catalog entry %+v missing documentation", e)
		}
		v := e.Eval(k, h, B)
		if math.IsNaN(v) {
			t.Errorf("%s: NaN inside its domain", e.Name)
		}
		if !math.IsInf(v, 1) && v < 1-1e-9 {
			t.Errorf("%s: competitive bound %v below 1", e.Name, v)
		}
	}
	// Catalog agreement with the direct functions.
	for _, e := range Catalog() {
		switch e.Name {
		case "sleator-tarjan":
			if e.Eval(k, h, B) != SleatorTarjan(k, h) {
				t.Error("catalog ST disagrees")
			}
		case "thm7-iblp-ub":
			if e.Eval(k, h, B) != IBLPKnownH(k, h, B) {
				t.Error("catalog Thm7 disagrees")
			}
		}
	}
}
