package bounds

import (
	"math"
	"testing"
	"testing/quick"
)

// Property-based invariants over random parameter draws: the structural
// facts every bound in the paper must satisfy regardless of parameters.

// drawParams maps raw fuzz input to a valid (k, h, B) triple with
// k ≥ h ≥ B ≥ 2.
func drawParams(rawK, rawH, rawB uint16) (k, h, B float64) {
	B = float64(2 + rawB%128)
	h = B + float64(rawH%4096)
	k = h + float64(uint32(rawK)*2%100000)
	return k, h, B
}

func TestPropBoundsAtLeastOne(t *testing.T) {
	prop := func(rawK, rawH, rawB uint16) bool {
		k, h, B := drawParams(rawK, rawH, rawB)
		for _, v := range []float64{
			SleatorTarjan(k, h),
			ItemCacheLB(k, h, B),
			GeneralLBBest(k, h, B),
			IBLPKnownH(k+1, h, B),
		} {
			if math.IsNaN(v) || v < 1-1e-9 {
				return false
			}
		}
		// BlockCacheLB may be +Inf, but never below 1.
		if v := BlockCacheLB(k, h, B); !math.IsInf(v, 1) && v < 1-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropOrderingSTBelowGCBelowIBLP(t *testing.T) {
	prop := func(rawK, rawH, rawB uint16) bool {
		k, h, B := drawParams(rawK, rawH, rawB)
		k++ // ensure k > h so the upper bound is finite
		st := SleatorTarjan(k, h)
		gc := GeneralLBBest(k, h, B)
		ub := IBLPKnownH(k, h, B)
		return st <= gc*(1+1e-9) && gc <= ub*(1+1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropBoundsDecreaseInK(t *testing.T) {
	prop := func(rawK, rawH, rawB uint16, rawStep uint8) bool {
		k, h, B := drawParams(rawK, rawH, rawB)
		k++
		step := 1 + float64(rawStep)
		for _, f := range []func(k float64) float64{
			func(k float64) float64 { return SleatorTarjan(k, h) },
			func(k float64) float64 { return GeneralLBBest(k, h, B) },
			func(k float64) float64 { return IBLPKnownH(k, h, B) },
		} {
			if f(k+step) > f(k)*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropGeneralLBBestNeverAboveAnyA(t *testing.T) {
	prop := func(rawK, rawH, rawB uint16, rawA uint8) bool {
		k, h, B := drawParams(rawK, rawH, rawB)
		a := 1 + math.Mod(float64(rawA), B)
		if a > h {
			return true
		}
		return GeneralLBBest(k, h, B) <= GeneralLB(k, h, B, a)*(1+1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropOptimalItemLayerInRange(t *testing.T) {
	prop := func(rawK, rawH, rawB uint16) bool {
		k, h, B := drawParams(rawK, rawH, rawB)
		k++
		i := OptimalItemLayer(k, h, B)
		if math.IsNaN(i) {
			return false
		}
		return i >= h && i <= k
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropIBLPUBNeverBelowItsBlockLayerFloor(t *testing.T) {
	// The combined bound can never beat 1, and the optimally split cache
	// is never worse than devoting everything to the item layer.
	prop := func(rawK, rawH, rawB uint16) bool {
		k, h, B := drawParams(rawK, rawH, rawB)
		k++
		opt := IBLPKnownH(k, h, B)
		itemOnly := IBLPUB(k, 0, h, B)
		return opt <= itemOnly*(1+1e-9) && opt >= 1-1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
