package bounds

import "math"

// ItemLRUUB returns an upper bound on Item-LRU's competitive ratio in the
// GC model: B·k/(k−h+1). Derivation: LRU is k/(k−h+1)-competitive
// against the item-granularity offline optimum (Sleator–Tarjan), and the
// item-granularity optimum pays at most B× the GC optimum (it can
// simulate any GC execution by loading the ≤ B items of each unit-cost
// block load individually). Together with Theorem 2's B(k−B+1)/(k−h+1)
// lower bound this pins Item-LRU's GC competitiveness to Θ(B·k/(k−h+1)).
func ItemLRUUB(k, h, B float64) float64 {
	st := SleatorTarjan(k, h)
	if math.IsNaN(st) || B < 1 {
		return math.NaN()
	}
	return B * st
}

// BlockLRUUB returns an upper bound on Block-LRU's competitive ratio in
// the GC model: (k/B)/((k/B)−h+1), i.e. the Sleator–Tarjan bound for an
// LRU cache of k/B block frames compared against an optimal cache of h
// *blocks*. Derivation: a GC-optimal execution with h items holds at most
// h distinct blocks and pays one block load per miss, so it induces a
// feasible block-granularity schedule with h frames whose cost equals the
// GC optimum; Block-LRU is classic LRU over that block request stream
// with ⌊k/B⌋ frames. The bound is +Inf when k/B ≤ h−1, matching
// Theorem 3's pollution penalty.
func BlockLRUUB(k, h, B float64) float64 {
	if B < 1 || h < 1 || k < 1 {
		return math.NaN()
	}
	frames := math.Floor(k / B)
	if frames-h+1 <= 0 {
		return math.Inf(1)
	}
	return frames / (frames - h + 1)
}
