// Package bounds transcribes every closed-form bound in the paper:
// the Sleator–Tarjan baseline, the GC lower bounds of Theorems 2–4, the
// IBLP upper bounds of Theorems 5–7 with the §5.3 partition-sizing rules,
// and the fault-rate bounds of Theorems 8–11 in the extended locality
// model. All bounds take the cache sizes as float64 so sweeps and root
// finding compose cleanly; callers pass integral sizes when they have
// them.
//
// Conventions: k is the online cache size, h the offline (optimal) cache
// size, B the block size, i and b the IBLP layer sizes. A returned +Inf
// means the bound is vacuous (no finite competitive ratio) for those
// parameters; NaN means the parameters are outside the bound's domain.
package bounds

import "math"

// SleatorTarjan returns the classic lower bound k/(k−h+1) on the
// competitive ratio of any deterministic policy in *traditional* caching
// (no spatial locality), which LRU matches. Domain: k ≥ h ≥ 1.
func SleatorTarjan(k, h float64) float64 {
	if h < 1 || k < h {
		return math.NaN()
	}
	return k / (k - h + 1)
}

// ItemCacheLB returns Theorem 2: any Item Cache (a policy that loads only
// the requested item) has competitive ratio at least B(k−B+1)/(k−h+1) in
// the GC model. Domain: k ≥ h ≥ B ≥ 1.
func ItemCacheLB(k, h, B float64) float64 {
	if B < 1 || h < B || k < h {
		return math.NaN()
	}
	return B * (k - B + 1) / (k - h + 1)
}

// BlockCacheLB returns Theorem 3: any Block Cache (loads and evicts whole
// blocks) has competitive ratio at least k/(k−B(h−1)). The bound is +Inf
// when k ≤ B(h−1): a Block Cache needs nearly B× augmentation before any
// finite ratio is possible. Domain: k ≥ h ≥ 1, B ≥ 1.
func BlockCacheLB(k, h, B float64) float64 {
	if B < 1 || h < 1 || k < h {
		return math.NaN()
	}
	den := k - B*(h-1)
	if den <= 0 {
		return math.Inf(1)
	}
	return k / den
}

// GeneralLB returns Theorem 4: a deterministic policy that needs a
// consecutive distinct accesses to a block before loading all of it has
// competitive ratio at least (a(k−h+1)+B(h−a))/(k−h+1).
// Domain: k ≥ h ≥ a ≥ 1, 1 ≤ a ≤ B.
func GeneralLB(k, h, B, a float64) float64 {
	if a < 1 || a > B || h < a || k < h {
		return math.NaN()
	}
	return (a*(k-h+1) + B*(h-a)) / (k - h + 1)
}

// GeneralLBBest returns the Theorem 4 bound minimized over the policy's
// choice of a — the strongest lower bound that applies to *every*
// deterministic policy. Per §4.4 the expression is linear in a, so the
// minimum is at a=1 or a=B (a=B reduces to the Item Cache bound).
func GeneralLBBest(k, h, B float64) float64 {
	lo := GeneralLB(k, h, B, 1)
	hi := GeneralLB(k, h, B, B)
	if math.IsNaN(lo) {
		return hi
	}
	if math.IsNaN(hi) {
		return lo
	}
	return math.Min(lo, hi)
}

// GeneralLBArgmin returns the a ∈ {1, B} minimizing Theorem 4's bound:
// 1 when k−h+1 > B (temporal term dominates), B otherwise, matching the
// §4.4 design discussion.
func GeneralLBArgmin(k, h, B float64) float64 {
	if k-h+1 > B {
		return 1
	}
	return B
}
