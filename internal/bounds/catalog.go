package bounds

// CatalogEntry documents one bound of the paper as implemented here:
// which result it is, its closed form, its domain, and a callable
// evaluator over the standard (k, h, B) parameters (i and b derived via
// the §5.3 optimal split where needed).
type CatalogEntry struct {
	// Name is the short identifier used by the tools ("thm2-item-lb").
	Name string
	// Source cites the paper result ("Theorem 2").
	Source string
	// Statement is the closed form, in ASCII math.
	Statement string
	// Domain states the parameter constraints.
	Domain string
	// Eval computes the bound at (k, h, B).
	Eval func(k, h, B float64) float64
}

// Catalog returns every competitive-ratio bound in the repository, in
// paper order. Fault-rate bounds (Theorems 8–11) take locality functions
// rather than sizes and are documented on their functions instead.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{
			Name:      "sleator-tarjan",
			Source:    "Sleator & Tarjan 1985 (paper §4.1)",
			Statement: "k / (k - h + 1)",
			Domain:    "k >= h >= 1",
			Eval:      func(k, h, B float64) float64 { return SleatorTarjan(k, h) },
		},
		{
			Name:      "thm2-item-lb",
			Source:    "Theorem 2",
			Statement: "B(k - B + 1) / (k - h + 1)",
			Domain:    "k >= h >= B >= 1",
			Eval:      ItemCacheLB,
		},
		{
			Name:      "thm3-block-lb",
			Source:    "Theorem 3",
			Statement: "k / (k - B(h - 1)); +Inf when k <= B(h-1)",
			Domain:    "k >= h >= 1, B >= 1",
			Eval:      BlockCacheLB,
		},
		{
			Name:      "thm4-general-lb",
			Source:    "Theorem 4 (best a)",
			Statement: "min over a in {1, B} of (a(k-h+1) + B(h-a)) / (k-h+1)",
			Domain:    "k >= h >= 1, B >= 1",
			Eval:      GeneralLBBest,
		},
		{
			Name:      "thm5-item-layer-ub",
			Source:    "Theorem 5",
			Statement: "i / (i - h) with i = optimal item layer",
			Domain:    "i > h >= 1",
			Eval: func(k, h, B float64) float64 {
				return ItemLayerUB(OptimalItemLayer(k, h, B), h)
			},
		},
		{
			Name:      "thm6-block-layer-ub",
			Source:    "Theorem 6",
			Statement: "min(B, (b + 2Bh - B) / (b + B)) with b = k - optimal item layer",
			Domain:    "b >= 0, h >= 1, B >= 1",
			Eval: func(k, h, B float64) float64 {
				return BlockLayerUB(k-OptimalItemLayer(k, h, B), h, B)
			},
		},
		{
			Name:      "thm7-iblp-ub",
			Source:    "Theorem 7 + §5.3 sizing",
			Statement: "(k+B-1)(k-h+B(2h-1))/(k-h+B)^2 above the §5.3 threshold; (2Bk-B^2-B)/(2(k-h)) below",
			Domain:    "k > h >= 1, B >= 1",
			Eval:      IBLPKnownH,
		},
		{
			Name:      "item-lru-ub",
			Source:    "derived (§2 baseline; see bounds.ItemLRUUB)",
			Statement: "B * k / (k - h + 1)",
			Domain:    "k >= h >= 1, B >= 1",
			Eval:      ItemLRUUB,
		},
		{
			Name:      "block-lru-ub",
			Source:    "derived (§2 baseline; see bounds.BlockLRUUB)",
			Statement: "floor(k/B) / (floor(k/B) - h + 1); +Inf when k/B <= h-1",
			Domain:    "k, h, B >= 1",
			Eval:      BlockLRUUB,
		},
	}
}
