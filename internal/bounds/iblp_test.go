package bounds

import (
	"math"
	"testing"
)

func TestItemLayerUBMatchesSleatorTarjanShape(t *testing.T) {
	// Theorem 5 is i/(i−h): the ST upper bound for LRU without the −1
	// (the paper drops the miss slot).
	approx(t, "Thm5", ItemLayerUB(200, 100), 2, 1e-12)
	if !math.IsInf(ItemLayerUB(100, 100), 1) {
		t.Error("i=h should be +Inf")
	}
	if !math.IsNaN(ItemLayerUB(50, 100)) {
		t.Error("i<h should be NaN")
	}
}

func TestBlockLayerUBMatchesTheorem6(t *testing.T) {
	b, h, B := 1024.0, 100.0, 64.0
	want := (b + 2*B*h - B) / (b + B)
	approx(t, "Thm6", BlockLayerUB(b, h, B), want, 1e-12)
	// The bound saturates at B for tiny block layers.
	approx(t, "Thm6 cap", BlockLayerUB(0, 100, 64), 64, 1e-12)
	// And approaches 1 for enormous block layers: b → ∞ ⇒ ratio → 1.
	if v := BlockLayerUB(1e12, 100, 64); v > 1.001 {
		t.Errorf("huge b: ratio = %v, want → 1", v)
	}
}

func TestTheorem6ClosedFormMatchesLP(t *testing.T) {
	// Experiment E5 (block layer): the transcribed closed form equals the
	// numeric optimum of the §5.2 spatial-locality program.
	for _, p := range []struct{ b, h, B float64 }{
		{1024, 100, 64}, {4096, 50, 64}, {256, 40, 16}, {65536, 100, 64},
	} {
		closed := BlockLayerUB(p.b, p.h, p.B)
		lp := Theorem6LP(p.b, p.h, p.B, 64)
		// The grid under-approximates the max slightly; it must never
		// exceed the closed form by more than numeric noise.
		if lp > closed*(1+1e-6) {
			t.Errorf("LP %v exceeds closed form %v at %+v", lp, closed, p)
		}
		relApprox(t, "Thm6 LP vs closed", lp, closed, 0.01)
	}
}

func TestTheorem7ClosedFormMatchesLP(t *testing.T) {
	// Experiment E5 (combined): Theorem 7's piecewise closed form equals
	// the numeric optimum of the combined program.
	h, B := 16384.0, 64.0
	for _, mult := range []float64{2, 3, 8, 64} {
		k := mult * h
		i := OptimalItemLayer(k, h, B)
		b := k - i
		closed := IBLPUB(i, b, h, B)
		lp := Theorem7LP(i, b, h, B, 64)
		if lp > closed*(1+1e-6) {
			t.Errorf("k=%vh: LP %v exceeds closed form %v", mult, lp, closed)
		}
		relApprox(t, "Thm7 LP vs closed", lp, closed, 0.01)
	}
}

func TestTheorem7RegionsAgreeAtBoundary(t *testing.T) {
	b, B := 2048.0, 64.0
	h := 10.0
	iStar := Theorem7RegionBoundary(b, B)
	lo := IBLPUB(iStar*(1-1e-9), b, h, B)
	hi := IBLPUB(iStar*(1+1e-9), b, h, B)
	relApprox(t, "Thm7 continuity", lo, hi, 1e-6)
}

func TestIBLPKnownHEqualsTheorem7AtOptimalSplit(t *testing.T) {
	h, B := 16384.0, 64.0
	for _, mult := range []float64{1.5, 2, 3, 8, 64, 200} {
		k := mult * h
		i := OptimalItemLayer(k, h, B)
		relApprox(t, "§5.3 vs Thm7", IBLPKnownH(k, h, B), IBLPUB(i, k-i, h, B), 1e-9)
	}
}

func TestOptimalItemLayerIsArgmin(t *testing.T) {
	h, B := 4096.0, 64.0
	for _, mult := range []float64{2, 4, 16, 64} {
		k := mult * h
		iOpt := OptimalItemLayer(k, h, B)
		rOpt := IBLPUB(iOpt, k-iOpt, h, B)
		// Scan i over its domain; no choice may beat the formula by more
		// than discretization noise.
		steps := 4000
		for s := 0; s <= steps; s++ {
			i := h + 1 + (k-h-1)*float64(s)/float64(steps)
			if v := IBLPUB(i, k-i, h, B); v < rOpt*(1-1e-6) {
				t.Fatalf("k=%vh: i=%v gives %v < formula %v at i=%v", mult, i, v, rOpt, iOpt)
			}
		}
	}
}

func TestIBLPBelowThresholdIsItemCache(t *testing.T) {
	h, B := 1000.0, 64.0
	thr := OptimalSplitThreshold(h, B)
	k := thr * 0.9
	if OptimalItemLayer(k, h, B) != k {
		t.Errorf("below threshold, i should be k; got %v (k=%v)", OptimalItemLayer(k, h, B), k)
	}
	// §5.3 small-k form: (2Bk−B²−B)/(2(k−h)).
	want := (2*B*k - B*B - B) / (2 * (k - h))
	approx(t, "small-k ratio", IBLPKnownH(k, h, B), want, 1e-9)
}

func TestIBLPUpperBoundAboveLowerBound(t *testing.T) {
	// Soundness: the achievable upper bound can never sit below the
	// universal lower bound.
	h, B := 16384.0, 64.0
	for mult := 1.25; mult <= 128; mult *= 2 {
		k := mult * h
		lb := GeneralLBBest(k, h, B)
		ub := IBLPKnownH(k, h, B)
		if ub < lb-1e-9 {
			t.Errorf("k=%vh: UB %v < LB %v", mult, ub, lb)
		}
		// Table 1: they differ by at most ≈3×.
		if ub > 3.2*lb {
			t.Errorf("k=%vh: UB %v > 3.2 × LB %v", mult, ub, lb)
		}
	}
}

func TestIBLPApproxRatioTracksExact(t *testing.T) {
	h, B := 65536.0, 64.0
	for _, mult := range []float64{2, 3, 8, 64} {
		k := mult * h
		exact := IBLPKnownH(k, h, B)
		appr := IBLPApproxRatio(k, h, B)
		relApprox(t, "§5.3 approximation", appr, exact, 0.25)
	}
	if !math.IsInf(IBLPApproxRatio(10, 10, 4), 1) {
		t.Error("k=h should be +Inf")
	}
}

func TestIBLPUBDomain(t *testing.T) {
	if !math.IsInf(IBLPUB(100, 50, 100, 8), 1) {
		t.Error("i=h should be +Inf")
	}
	if !math.IsNaN(IBLPUB(-1, 50, 10, 8)) {
		t.Error("negative i should be NaN")
	}
	if !math.IsNaN(IBLPKnownH(50, 100, 8)) {
		t.Error("k<h should be NaN")
	}
	if !math.IsInf(IBLPKnownH(100, 100, 8), 1) {
		t.Error("k=h should be +Inf")
	}
}

func TestOptimalSplitThresholdB1(t *testing.T) {
	if !math.IsInf(OptimalSplitThreshold(100, 1), -1) {
		t.Error("B=1: block layer never helps, threshold −∞")
	}
	// B=1, so i=k and the ratio reduces to (2k−2)/(2(k−h)) = (k−1)/(k−h).
	approx(t, "B=1 ratio", IBLPKnownH(200, 100, 1), 199.0/100, 1e-12)
}
