package hotalloctrans_test

import (
	"testing"

	"gccache/internal/analysis/framework/analysistest"
	"gccache/internal/analysis/hotalloctrans"
)

func TestHotAllocTrans(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloctrans.Analyzer,
		"transfixture", "transdep", "transuse")
}
