// Package transuse calls transdep helpers from a hot path; the
// "allocates" verdicts arrive as imported facts.
package transuse

import "transdep"

//gclint:hotpath
func Fill(out []int) int {
	buf := transdep.Chain(len(out)) // want `hot path calls transdep\.Chain, which allocates \(Scratch: make\)`
	return copy(out, buf)
}

//gclint:hotpath
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += transdep.Clean(x)
	}
	return s
}
