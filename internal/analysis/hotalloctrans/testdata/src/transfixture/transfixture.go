// Package transfixture exercises the hotalloctrans analyzer's
// package-local call-graph propagation.
package transfixture

type ring struct {
	buf []int
}

// grow allocates directly.
func (r *ring) grow() {
	r.buf = make([]int, 2*len(r.buf)+1)
}

// wraps allocates transitively through grow.
func (r *ring) wraps() {
	r.grow()
}

// step is clean.
func step(x int) int { return x + 1 }

//gclint:hotpath
func (r *ring) push(v int) {
	_ = step(v)
	r.wraps() // want `hot path calls ring\.wraps, which allocates \(ring\.grow: make\)`
}

//gclint:hotpath
func (r *ring) pop() int {
	return step(0)
}

//gclint:hotpath
func (r *ring) lazyInit() {
	r.grow() //gclint:allowalloc one-time lazy init; guarded by sync.Once in the caller
}
