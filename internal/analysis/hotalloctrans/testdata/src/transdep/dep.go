// Package transdep provides helpers that allocate; hotalloctrans
// exports that as "allocates" facts for dependent packages.
package transdep

// Scratch returns a fresh buffer.
func Scratch(n int) []int {
	return make([]int, n)
}

// Chain allocates transitively through Scratch.
func Chain(n int) []int {
	return Scratch(n)
}

// Clean does not allocate.
func Clean(x int) int {
	return x * 2
}
