// Package hotalloctrans implements the interprocedural companion to the
// hotalloc analyzer. hotalloc inspects only the body of a
// `//gclint:hotpath` function, so wrapping an allocation in a helper
// one call away used to defeat it. This analyzer closes that hole with
// modular "allocates" facts over the call graph:
//
//   - Every function of the analyzed package is scanned with
//     hotalloc.ForEachAlloc. Functions that allocate directly, or that
//     call (transitively, across package boundaries via imported facts)
//     a function that allocates, carry an AllocFact whose Reason spells
//     the call chain down to the allocating construct.
//   - A //gclint:hotpath function is then flagged at each call site
//     whose callee carries an AllocFact — including callees in
//     dependency packages analyzed in an earlier unit.
//
// Interface and function-value calls cannot carry facts (the concrete
// callee is unknown statically) and are skipped; the hot path avoids
// dynamic dispatch anyway. The standard library is not analyzed, so
// calls into it are not flagged here — hotalloc's direct checks cover
// the known allocating std entry points (fmt) inside hot bodies, and a
// module helper wrapping fmt gets its fact from the fmt call being a
// direct allocation in that helper.
//
// Suppression shares hotalloc's `//gclint:allowalloc`: on an allocation
// line inside a helper it both silences hotalloc (if the helper is hot)
// and keeps the helper from carrying a fact; on a hot call site it
// vouches for that specific call (e.g. a provably cold error branch).
package hotalloctrans

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"gccache/internal/analysis/framework"
	"gccache/internal/analysis/hotalloc"
	"gccache/internal/analysis/lintutil"
)

// AllocFact marks a function as allocating, directly or transitively.
// Reason is a human-readable chain, e.g. "make" for a direct allocation
// or "grow: make" for a call to an allocating helper named grow.
type AllocFact struct {
	Reason string
}

// AFact marks AllocFact as a framework fact type.
func (*AllocFact) AFact() {}

// Analyzer is the hotalloctrans analyzer.
var Analyzer = &framework.Analyzer{
	Name:         "hotalloctrans",
	Doc:          "flags //gclint:hotpath functions that call (transitively) allocating functions, via exported \"allocates\" facts",
	Run:          run,
	FactTypes:    []framework.Fact{new(AllocFact)},
	Suppressions: []string{"allowalloc"},
}

// callSite is one statically-resolved call edge out of a function.
type callSite struct {
	pos    token.Pos
	callee *types.Func
	name   string
}

type fnInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	callees []callSite
	reason  string // "" while not known to allocate
}

func run(pass *framework.Pass) error {
	dirs := pass.Directives()

	// Index every declared function of the package, in source order (the
	// fixpoint below picks the first-discovered reason, so iteration
	// order must be deterministic).
	var fns []*fnInfo
	index := make(map[*types.Func]*fnInfo)
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{decl: fd, obj: obj}
			fns = append(fns, fi)
			index[obj] = fi
		}
	}

	// Direct allocations, honoring //gclint:allowalloc lines. Boxing is
	// excluded: whether an interface argument escapes depends on the
	// callee, so propagating it transitively would drown the module in
	// maybes; hotalloc still flags boxing inside hot bodies directly.
	for _, fi := range fns {
		hotalloc.ForEachAlloc(pass, dirs, fi.decl, false, func(a hotalloc.Alloc) {
			if fi.reason == "" {
				fi.reason = a.Short
			}
		})
	}

	// Call edges, in source order.
	for _, fi := range fns {
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := lintutil.Callee(pass.TypesInfo, call).(*types.Func)
			if !ok {
				return true
			}
			fi.callees = append(fi.callees, callSite{pos: call.Pos(), callee: fn, name: calleeName(pass.Pkg, fn)})
			return true
		})
		sort.SliceStable(fi.callees, func(i, j int) bool { return fi.callees[i].pos < fi.callees[j].pos })
	}

	importedReason := func(fn *types.Func) (string, bool) {
		var fact AllocFact
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Reason, true
		}
		return "", false
	}
	reasonFor := func(fn *types.Func) (string, bool) {
		if fi := index[fn]; fi != nil {
			return fi.reason, fi.reason != ""
		}
		return importedReason(fn)
	}

	// Fixpoint over the package-local call graph. Cycles settle to
	// "unknown" unless some member allocates directly, which then
	// propagates around the cycle.
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if fi.reason != "" {
				continue
			}
			for _, cs := range fi.callees {
				if r, ok := reasonFor(cs.callee); ok {
					fi.reason = cs.name + ": " + r
					changed = true
					break
				}
			}
		}
	}

	for _, fi := range fns {
		if fi.reason != "" {
			pass.ExportObjectFact(fi.obj, &AllocFact{Reason: fi.reason})
		}
	}

	// Report allocating call sites inside hot functions.
	for _, fi := range fns {
		if !lintutil.HasFuncDirective(fi.decl, "hotpath") {
			continue
		}
		for _, cs := range fi.callees {
			r, ok := reasonFor(cs.callee)
			if !ok {
				continue
			}
			if dirs.At(cs.pos, "allowalloc") {
				continue
			}
			pass.Reportf(cs.pos, "hot path calls %s, which allocates (%s); hoist the allocation out of the hot loop or restructure the helper", cs.name, r)
		}
	}
	return nil
}

// calleeName renders fn for diagnostics: Method on its type, qualified
// with the package name when imported.
func calleeName(from *types.Package, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != from {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// namedOf unwraps pointers to reach a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
