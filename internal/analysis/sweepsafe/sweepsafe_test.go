package sweepsafe_test

import (
	"testing"

	"gccache/internal/analysis/framework/analysistest"
	"gccache/internal/analysis/sweepsafe"
)

func TestSweepsafe(t *testing.T) {
	analysistest.Run(t, "testdata", sweepsafe.Analyzer, "sweepfixture", "sweepoutofscope")
}
