// Package sweepoutofscope has no //gclint:sweep directive and is not a
// cachesim/experiments package, so the analyzer must stay silent even
// on shapes it would flag in scope.
package sweepoutofscope

import "sync"

func goroutineLoopVar(jobs []int) {
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(i)
		}()
	}
	wg.Wait()
}

func sharedScalar(n int) int {
	total := 0
	ParallelFor(n, 0, func(i int) {
		total += i
	})
	return total
}

func ParallelFor(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func process(int) {}
