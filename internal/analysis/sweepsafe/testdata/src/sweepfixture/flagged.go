package sweepfixture

import "sync"

// goroutineLoopVar spawns goroutines that read the loop variable from
// the enclosing scope instead of receiving it as an argument.
func goroutineLoopVar(jobs []int) {
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(i) // want `goroutine captures loop variable i`
		}()
	}
	wg.Wait()
}

// goroutineRangeValue captures a range value variable.
func goroutineRangeValue(jobs []int) {
	done := make(chan struct{}, len(jobs))
	for _, j := range jobs {
		go func() {
			process(j) // want `goroutine captures loop variable j`
			done <- struct{}{}
		}()
	}
	for range jobs {
		<-done
	}
}

// sharedScalar folds into a captured accumulator from worker callbacks:
// a data race, and even if synchronized the fold order would vary run to
// run.
func sharedScalar(n int) int {
	total := 0
	ParallelFor(n, 0, func(i int) {
		total += i // want `ParallelFor worker writes captured variable total`
	})
	return total
}

// sharedMap writes a captured map from workers: concurrent map writes
// race even on distinct keys.
func sharedMap(n int) map[int]int {
	out := make(map[int]int, n)
	Sweep(n, 0, func() int { return 0 }, func(i int, w int) {
		out[i] = i * i // want `Sweep worker writes captured variable out`
	})
	return out
}

// wrongSlot writes an element slot not derived from the callback's
// point-index parameter: workers can collide on the same slot.
func wrongSlot(n int) []int {
	out := make([]int, n)
	next := 0
	Sweep(n, 0, func() int { return 0 }, func(i int, w int) {
		out[next] = i // want `Sweep worker writes out\[...\] at an index not derived from its point-index parameter`
		next++        // want `Sweep worker writes captured variable next`
	})
	return out
}

// hardenedShared writes captured state from a hardened-sweep worker:
// the retry machinery makes this worse, not better — a retried callback
// re-applies the racy write.
func hardenedShared(n int) int {
	retried := 0
	SweepHardened(n, 0, func() int { return 0 }, func(i int, w int) {
		retried++ // want `SweepHardened worker writes captured variable retried`
	})
	return retried
}

// checkpointedShared appends to a captured slice from a resumable-sweep
// worker instead of returning the result as its per-index value.
func checkpointedShared(n int) [][]byte {
	var all [][]byte
	SweepCheckpointed(n, 0, func() int { return 0 }, func(i int, w int) []byte {
		all = append(all, nil) // want `SweepCheckpointed worker writes captured variable all`
		return nil
	})
	return all
}

func process(int) {}
