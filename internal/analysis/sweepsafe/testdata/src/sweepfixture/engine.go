// Package sweepfixture exercises the sweepsafe analyzer. The directive
// below opts the package into sweep scope; Sweep and ParallelFor are
// local stand-ins for the cachesim engine (the analyzer matches worker
// entry points by name within the package under analysis).
//
//gclint:sweep
package sweepfixture

// Sweep mimics cachesim.Sweep: fn(i, w) with a per-worker state value.
func Sweep[W any](n, workers int, newWorker func() W, fn func(i int, w W)) {
	w := newWorker()
	for i := 0; i < n; i++ {
		fn(i, w)
	}
}

// ParallelFor mimics cachesim.ParallelFor.
func ParallelFor(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
