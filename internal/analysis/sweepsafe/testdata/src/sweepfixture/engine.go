// Package sweepfixture exercises the sweepsafe analyzer. The directive
// below opts the package into sweep scope; Sweep and ParallelFor are
// local stand-ins for the cachesim engine (the analyzer matches worker
// entry points by name within the package under analysis).
//
//gclint:sweep
package sweepfixture

// Sweep mimics cachesim.Sweep: fn(i, w) with a per-worker state value.
func Sweep[W any](n, workers int, newWorker func() W, fn func(i int, w W)) {
	w := newWorker()
	for i := 0; i < n; i++ {
		fn(i, w)
	}
}

// ParallelFor mimics cachesim.ParallelFor.
func ParallelFor(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// SweepHardened mimics the fault-tolerant engine variant: same worker
// callback contract, so the same shared-state rules apply.
func SweepHardened[W any](n, workers int, newWorker func() W, fn func(i int, w W)) []int {
	w := newWorker()
	for i := 0; i < n; i++ {
		fn(i, w)
	}
	return nil
}

// SweepCheckpointed mimics the resumable engine variant.
func SweepCheckpointed[W any](n, workers int, newWorker func() W, fn func(i int, w W) []byte) [][]byte {
	out := make([][]byte, n)
	w := newWorker()
	for i := 0; i < n; i++ {
		out[i] = fn(i, w)
	}
	return out
}
