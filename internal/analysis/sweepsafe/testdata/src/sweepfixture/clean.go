package sweepfixture

import (
	"sync"
	"sync/atomic"
)

// goroutineArg passes the loop variable as an argument — the sanctioned
// shape.
func goroutineArg(jobs []int) {
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			process(i)
		}(i)
	}
	wg.Wait()
}

// perIndexSlot writes only the slot owned by the callback's point
// index.
func perIndexSlot(n int) []int {
	out := make([]int, n)
	Sweep(n, 0, func() int { return 0 }, func(i int, w int) {
		out[i] = i * i
	})
	return out
}

// perIndexStructField writes through a selector rooted at the per-index
// slot (cells[i].field), also sanctioned.
func perIndexStructField(n int) int {
	type cell struct{ value int }
	cells := make([]cell, n)
	Sweep(n, 0, func() int { return 0 }, func(i int, w int) {
		cells[i].value = i
	})
	return len(cells)
}

// perWorkerState mutates only the worker's own pooled state.
func perWorkerState(n int) {
	type worker struct{ scratch []int }
	Sweep(n, 0, func() *worker { return &worker{} }, func(i int, w *worker) {
		w.scratch = append(w.scratch, i)
	})
}

// localOnly writes callback-local variables freely.
func localOnly(n int) {
	ParallelFor(n, 0, func(i int) {
		sum := 0
		for j := 0; j < i; j++ {
			sum += j
		}
		process(sum)
	})
}

// suppressed vouches for an externally synchronized write (here an
// atomic counter read-modify-write done under a mutex would be typical;
// the directive is the analyzer's escape hatch).
func suppressed(n int) int {
	var mu sync.Mutex
	worst := 0
	ParallelFor(n, 0, func(i int) {
		mu.Lock()
		if i > worst {
			worst = i //gclint:sharedok mutex-guarded running maximum
		}
		mu.Unlock()
	})
	return worst
}

// atomicCounter uses atomic operations (method calls, not assignments)
// — nothing to flag.
func atomicCounter(n int) int64 {
	var count atomic.Int64
	ParallelFor(n, 0, func(i int) {
		count.Add(1)
	})
	return count.Load()
}
