// Package sweepsafe implements the gclint analyzer that polices
// concurrency shapes around the Sweep engine (internal/cachesim) and the
// experiment harness (internal/experiments). Parallel sweeps must
// communicate only through per-worker state and per-index output slots;
// anything else is a data race or — worse for this repo — a silent
// source of run-to-run nondeterminism. It flags:
//
//   - goroutine bodies (`go func() {...}`) that capture an enclosing
//     loop variable instead of receiving it as an argument;
//   - worker-callback bodies passed to Sweep / SweepCaches / ParallelFor
//     / RunSeeds that write state captured from outside the callback,
//     unless the write lands in a per-index slot (an element indexed by
//     the callback's point-index parameter).
//
// A `//gclint:sharedok` comment on the offending line vouches for writes
// that are externally synchronized (e.g. under a sync.Once or mutex).
// Packages outside the default scope opt in with a file-level
// `//gclint:sweep` comment.
package sweepsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"gccache/internal/analysis/framework"
	"gccache/internal/analysis/lintutil"
)

// Analyzer is the sweepsafe analyzer.
var Analyzer = &framework.Analyzer{
	Name:         "sweepsafe",
	Doc:          "flags loop-variable capture in goroutines and shared-state writes in sweep worker callbacks",
	Run:          run,
	Suppressions: []string{"sharedok"},
}

var sweepPackages = []string{
	"gccache/internal/cachesim",
	"gccache/internal/experiments",
}

// sweepEntryPoints are the engine functions whose final func argument is
// a worker callback with signature fn(i int, ...) — index first.
var sweepEntryPoints = map[string]bool{
	"Sweep":             true,
	"SweepCaches":       true,
	"ParallelFor":       true,
	"RunSeeds":          true,
	"SweepCtx":          true,
	"SweepObservedCtx":  true,
	"SweepCachesCtx":    true,
	"RunSeedsCtx":       true,
	"SweepHardened":     true,
	"SweepCheckpointed": true,
}

func run(pass *framework.Pass) error {
	if !lintutil.PkgInScope(pass, "sweep", sweepPackages...) {
		return nil
	}
	dirs := pass.Directives()
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		var loopVars []types.Object
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			if n == nil {
				return
			}
			switch n := n.(type) {
			case *ast.RangeStmt:
				mark := len(loopVars)
				loopVars = append(loopVars, defObjects(pass.TypesInfo, n.Key, n.Value)...)
				walk(n.X)
				walk(n.Body)
				loopVars = loopVars[:mark]
				return
			case *ast.ForStmt:
				mark := len(loopVars)
				if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					loopVars = append(loopVars, defObjects(pass.TypesInfo, init.Lhs...)...)
				}
				walk(n.Init)
				walk(n.Cond)
				walk(n.Post)
				walk(n.Body)
				loopVars = loopVars[:mark]
				return
			case *ast.GoStmt:
				if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutine(pass, dirs, fl, loopVars)
				}
			case *ast.CallExpr:
				checkSweepCall(pass, dirs, n)
			}
			for _, c := range directChildren(n) {
				walk(c)
			}
		}
		walk(file)
	}
	return nil
}

// defObjects resolves := defined identifiers to their objects.
func defObjects(info *types.Info, exprs ...ast.Expr) []types.Object {
	var out []types.Object
	for _, e := range exprs {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkGoroutine flags uses of enclosing loop variables inside a `go
// func(){...}` body.
func checkGoroutine(pass *framework.Pass, dirs *lintutil.Directives, fl *ast.FuncLit, loopVars []types.Object) {
	if len(loopVars) == 0 {
		return
	}
	reported := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || reported[obj] {
			return true
		}
		for _, lv := range loopVars {
			if obj == lv && !dirs.At(id.Pos(), "sharedok") {
				reported[obj] = true
				pass.Reportf(id.Pos(), "goroutine captures loop variable %s; pass it to the func literal as an argument", obj.Name())
			}
		}
		return true
	})
}

// checkSweepCall inspects worker callbacks handed to the sweep engine.
func checkSweepCall(pass *framework.Pass, dirs *lintutil.Directives, call *ast.CallExpr) {
	fn, ok := lintutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || !sweepEntryPoints[fn.Name()] {
		return
	}
	if pkg := fn.Pkg(); pkg == nil ||
		(pkg.Path() != "gccache/internal/cachesim" && pkg != pass.Pkg) {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	// The worker callback is the final argument; its first parameter is
	// the point index.
	fl, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	if !ok {
		return
	}
	var indexParam types.Object
	if fields := fl.Type.Params; fields != nil && len(fields.List) > 0 && len(fields.List[0].Names) > 0 {
		indexParam = pass.TypesInfo.Defs[fields.List[0].Names[0]]
	}
	checkWorkerBody(pass, dirs, fn.Name(), fl, indexParam)
}

// checkWorkerBody flags writes to captured state inside a worker
// callback, excepting per-index slots out[i] keyed by the callback's
// index parameter.
func checkWorkerBody(pass *framework.Pass, dirs *lintutil.Directives, engine string, fl *ast.FuncLit, indexParam types.Object) {
	check := func(lhs ast.Expr, pos token.Pos) {
		if dirs.At(pos, "sharedok") {
			return
		}
		root := rootObject(pass.TypesInfo, lhs)
		if root == nil || !lintutil.DeclaredOutside(root, fl.Pos(), fl.End()) {
			return
		}
		// out[i] = ... (or a selector chain through it, like
		// cells[i].stats = ...) with the index derived from the
		// point-index parameter is the engine's sanctioned result slot.
		// Note slices only: concurrent map writes race even on distinct
		// keys, so a map index is never a sanctioned slot.
		if ix := chainIndexExpr(pass.TypesInfo, lhs); ix != nil {
			if indexParam != nil && usesObject(pass.TypesInfo, ix.Index, indexParam) {
				return
			}
			pass.Reportf(pos, "%s worker writes %s at an index not derived from its point-index parameter; workers may race on the same slot",
				engine, exprName(lhs))
			return
		}
		pass.Reportf(pos, "%s worker writes captured variable %s; route results through a per-index slot or per-worker state",
			engine, exprName(lhs))
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			check(n.X, n.Pos())
		}
		return true
	})
}

// chainIndexExpr walks an assignment-target chain (x[i], x[i].f,
// *x[i].f, ...) and returns the outermost slice/array index expression,
// or nil if the chain contains none (or only map indexing, which is
// never safe to write concurrently).
func chainIndexExpr(info *types.Info, e ast.Expr) *ast.IndexExpr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			if t := info.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return nil
				}
			}
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rootObject resolves the outermost identifier of an assignment target
// chain (x, x.f, x[i], *x) to its object, skipping blank identifiers.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// usesObject reports whether expr references obj.
func usesObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// directChildren returns n's immediate AST children.
func directChildren(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// exprName renders a compact source form of an assignment target.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprName(e.X)
	default:
		return "variable"
	}
}
