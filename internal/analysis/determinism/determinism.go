// Package determinism implements the gclint analyzer that guards the
// repo's byte-identical reproduction outputs against iteration-order and
// ambient-state nondeterminism.
//
// In repro-bearing packages (internal/opt, internal/experiments,
// internal/bounds, internal/render — or any package opting in with a
// file-level //gclint:repro comment) it flags:
//
//   - `range` over a map whose body accumulates order-dependent state:
//     appending to a slice declared outside the loop, writing output
//     (fmt.Print*/Fprint* or Write* methods), or folding a float
//     accumulator with an op-assign — the exact shape of the
//     ExactSchedule map-iteration bug that once shipped;
//   - calls to math/rand's global-source functions (rand.Intn etc.) —
//     repro code must thread an explicitly seeded *rand.Rand;
//   - time.Now — repro output must not embed wall-clock state;
//   - maps.Keys / maps.Values escaping without an ordering wrapper
//     (slices.Sorted / slices.SortedFunc / slices.SortedStableFunc).
//
// A `//gclint:orderok` comment on the offending line suppresses the
// report for loops whose accumulation is genuinely order-independent.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gccache/internal/analysis/framework"
	"gccache/internal/analysis/lintutil"
)

// Analyzer is the determinism analyzer.
var Analyzer = &framework.Analyzer{
	Name:         "determinism",
	Doc:          "flags map-iteration-order and ambient-state nondeterminism in repro-bearing packages",
	Run:          run,
	Suppressions: []string{"orderok"},
}

// reproPackages are the packages whose output feeds the byte-identical
// reproduction artifacts (results/, figure and table files).
var reproPackages = []string{
	"gccache/internal/opt",
	"gccache/internal/experiments",
	"gccache/internal/bounds",
	"gccache/internal/render",
}

func run(pass *framework.Pass) error {
	if !lintutil.PkgInScope(pass, "repro", reproPackages...) {
		return nil
	}
	dirs := pass.Directives()
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, dirs, n)
			case *ast.CallExpr:
				checkGlobalRand(pass, dirs, n)
				checkTimeNow(pass, dirs, n)
			}
			return true
		})
		checkUnsortedMapsKeys(pass, dirs, file)
	}
	return nil
}

// checkMapRange flags `for k := range m` loops whose body folds state in
// map iteration order.
func checkMapRange(pass *framework.Pass, dirs *lintutil.Directives, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if dirs.At(rng.Pos(), "orderok") {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkOrderedAssign(pass, dirs, rng, n)
		case *ast.CallExpr:
			if dirs.At(n.Pos(), "orderok") {
				return true
			}
			if why := writesOutput(pass.TypesInfo, n); why != "" {
				pass.Reportf(n.Pos(), "%s inside range over map %s emits output in map iteration order; iterate sorted keys instead",
					why, exprString(rng.X))
			}
		}
		return true
	})
}

// checkOrderedAssign flags the two order-dependent accumulation shapes
// inside a map-range body: append into a slice that outlives the loop,
// and float op-assign folds.
func checkOrderedAssign(pass *framework.Pass, dirs *lintutil.Directives, rng *ast.RangeStmt, as *ast.AssignStmt) {
	if dirs.At(as.Pos(), "orderok") {
		return
	}
	// x = append(x, ...) where x is declared outside the range statement.
	if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !lintutil.IsBuiltin(pass.TypesInfo, call, "append") || i >= len(as.Lhs) {
				continue
			}
			if obj := lhsRootObject(pass.TypesInfo, as.Lhs[i]); lintutil.DeclaredOutside(obj, rng.Pos(), rng.End()) {
				pass.Reportf(as.Pos(), "append to %s inside range over map %s accumulates in map iteration order; iterate sorted keys (e.g. slices.Sorted(maps.Keys(...)))",
					obj.Name(), exprString(rng.X))
			}
		}
		return
	}
	// acc += v (or -=, *=, /=) where acc is a float declared outside the
	// loop: float addition is not associative, so the fold depends on
	// iteration order even though the set of terms is fixed.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) != 1 {
			return
		}
		lhs := as.Lhs[0]
		t := pass.TypesInfo.TypeOf(lhs)
		if t == nil {
			return
		}
		if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
			return
		}
		if obj := lhsRootObject(pass.TypesInfo, lhs); lintutil.DeclaredOutside(obj, rng.Pos(), rng.End()) {
			pass.Reportf(as.Pos(), "float accumulation into %s inside range over map %s depends on map iteration order; iterate sorted keys",
				obj.Name(), exprString(rng.X))
		}
	}
}

// lhsRootObject resolves an assignment target to the variable object at
// its root: the ident itself, or the receiver-most identifier of a
// selector/index chain (c.field, out[i]).
func lhsRootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// writesOutput reports (as a short description) whether call emits
// output: fmt printing to a writer or stdout, or a Write*/print method
// on any receiver (strings.Builder, io.Writer, bufio.Writer, ...).
func writesOutput(info *types.Info, call *ast.CallExpr) string {
	fn, ok := lintutil.Callee(info, call).(*types.Func)
	if !ok {
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print") ||
			strings.HasPrefix(fn.Name(), "Append") {
			return "fmt." + fn.Name()
		}
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name := fn.Name(); {
		case strings.HasPrefix(name, "Write"),
			name == "Print", name == "Printf", name == "Println":
			return "call to (" + types.TypeString(sig.Recv().Type(), nil) + ")." + name
		}
	}
	return ""
}

// checkGlobalRand flags package-level math/rand functions that draw from
// the shared global source. Constructors (New, NewSource, ...) are fine.
func checkGlobalRand(pass *framework.Pass, dirs *lintutil.Directives, call *ast.CallExpr) {
	fn, ok := lintutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods on *rand.Rand are explicitly seeded — fine
	}
	if strings.HasPrefix(fn.Name(), "New") {
		return
	}
	if dirs.At(call.Pos(), "orderok") {
		return
	}
	pass.Reportf(call.Pos(), "call to global rand.%s is nondeterministic across runs; use an explicitly seeded *rand.Rand", fn.Name())
}

// checkTimeNow flags time.Now in repro code.
func checkTimeNow(pass *framework.Pass, dirs *lintutil.Directives, call *ast.CallExpr) {
	if !lintutil.IsPkgFunc(pass.TypesInfo, call, "time", "Now") {
		return
	}
	if dirs.At(call.Pos(), "orderok") {
		return
	}
	pass.Reportf(call.Pos(), "time.Now in repro-bearing code embeds wall-clock state in output; inject timestamps from the caller if needed")
}

// checkUnsortedMapsKeys flags maps.Keys / maps.Values calls whose result
// is not immediately passed through a sorting collector, since the
// iterator yields keys in map order.
func checkUnsortedMapsKeys(pass *framework.Pass, dirs *lintutil.Directives, file *ast.File) {
	// Walk with an explicit parent so the "directly wrapped by
	// slices.Sorted*" exemption can look one call outward.
	var walk func(parent, n ast.Node)
	walk = func(parent, n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if lintutil.IsPkgFunc(pass.TypesInfo, call, "maps", "Keys", "Values") &&
				!sortedWrapper(pass.TypesInfo, parent) &&
				!dirs.At(call.Pos(), "orderok") {
				fn, _ := lintutil.Callee(pass.TypesInfo, call).(*types.Func)
				pass.Reportf(call.Pos(), "maps.%s yields map iteration order; wrap in slices.Sorted (or slices.SortedFunc) before use", fn.Name())
			}
		}
		for _, child := range children(n) {
			walk(n, child)
		}
	}
	walk(nil, file)
}

// sortedWrapper reports whether parent is a call to one of the slices
// sorting collectors.
func sortedWrapper(info *types.Info, parent ast.Node) bool {
	call, ok := parent.(*ast.CallExpr)
	if !ok {
		return false
	}
	return lintutil.IsPkgFunc(info, call, "slices", "Sorted", "SortedFunc", "SortedStableFunc")
}

// children returns the direct AST children of n in source order.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// exprString renders a short source-ish form of e for diagnostics.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "expression"
	}
}
