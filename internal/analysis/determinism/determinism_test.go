package determinism_test

import (
	"testing"

	"gccache/internal/analysis/determinism"
	"gccache/internal/analysis/framework/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "reprofixture", "outofscope")
}
