package reprofixture

import (
	"maps"
	"math/rand"
	"slices"
)

// intSumInMapOrder is order-independent: integer addition is
// associative, so folding in map order is fine and not flagged.
func intSumInMapOrder(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// sortedIteration is the recommended fix: range over sorted keys.
func sortedIteration(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for _, k := range slices.Sorted(maps.Keys(m)) {
		out = append(out, k)
	}
	return out
}

// seededRand threads an explicitly seeded generator — deterministic.
func seededRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// perIterationAppend appends to a slice scoped inside the loop body; no
// state escapes in map order.
func perIterationAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// suppressed shows the escape hatch for a genuinely order-independent
// accumulation the analyzer cannot prove (the slice is sorted after).
func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m { //gclint:orderok keys are sorted below
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// maxInMapOrder computes an order-independent max; assignments that are
// not append or float op-assign are not flagged.
func maxInMapOrder(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
