// Package reprofixture exercises the determinism analyzer's flagged
// shapes. The file-level directive below opts the package into repro
// scope, standing in for internal/opt, internal/experiments, etc.
//
//gclint:repro
package reprofixture

import (
	"fmt"
	"io"
	"maps"
	"math/rand"
	"strings"
	"time"
)

// appendInMapOrder is the exact ExactSchedule bug class: the slice ends
// up in map iteration order.
func appendInMapOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map m accumulates in map iteration order`
	}
	return keys
}

// printInMapOrder writes output while ranging a map.
func printInMapOrder(w io.Writer, m map[int]float64) {
	for k, v := range m {
		fmt.Fprintf(w, "%d=%g\n", k, v) // want `fmt.Fprintf inside range over map m emits output in map iteration order`
	}
}

// builderInMapOrder covers Write* methods on a captured builder.
func builderInMapOrder(m map[int]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(fmt.Sprint(k)) // want `WriteString inside range over map m emits output`
	}
	return b.String()
}

// floatFoldInMapOrder folds a float accumulator in map order: float
// addition is not associative, so the total depends on iteration order.
func floatFoldInMapOrder(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `float accumulation into sum inside range over map m depends on map iteration order`
	}
	return sum
}

// globalRand draws from the process-global source.
func globalRand(n int) int {
	return rand.Intn(n) // want `call to global rand.Intn is nondeterministic across runs`
}

// wallClock embeds wall-clock state.
func wallClock() int64 {
	return time.Now().Unix() // want `time.Now in repro-bearing code embeds wall-clock state`
}

// unsortedKeys lets maps.Keys escape without an ordering wrapper.
func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) { // want `maps.Keys yields map iteration order`
		out = append(out, k)
	}
	return out
}
