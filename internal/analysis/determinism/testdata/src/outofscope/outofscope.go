// Package outofscope contains the same shapes the determinism analyzer
// flags in repro packages — but carries no //gclint:repro directive and
// is not a repro package path, so nothing here is reported.
package outofscope

import (
	"math/rand"
	"time"
)

func appendInMapOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func globalRand(n int) int { return rand.Intn(n) }

func wallClock() int64 { return time.Now().Unix() }
