// Package ctxfixture exercises the ctxflow analyzer.
package ctxfixture

import "context"

func RunAll(n int) { // want `exported RunAll looks like a blocking entry point`
	for i := 0; i < n; i++ {
		step(i)
	}
}

func RunTwinned(n int) { // clean: RunTwinnedCtx exists below
	_ = n
}

func RunTwinnedCtx(ctx context.Context, n int) {
	_ = ctx
	_ = n
}

func SweepGrid(ctx context.Context, n int) { // clean: takes ctx itself
	_ = ctx
	_ = n
}

func Runtime() int { // clean: "Run" ends at a word boundary, this is not an entry point
	return 0
}

// RunCount merely reads a counter and returns.
//
//gclint:ctxok accessor; returns immediately
func RunCount() int {
	return 0
}

func RunDetached(ctx context.Context, n int) {
	step(n)
	helper(context.Background()) // want `RunDetached already receives a context\.Context; pass it down instead of context\.Background`
	helper(ctx)
}

func helper(ctx context.Context) {
	_ = ctx
}

func step(i int) { _ = i }

type job struct {
	ctx context.Context // want `struct job stores a context\.Context`
	n   int
}

type scoped struct {
	ctx context.Context //gclint:ctxok request-scoped; value dies with the request
	n   int
}

type engine struct{ n int }

func (e *engine) Replay() { // clean: ReplayCtx twin below
	_ = e.n
}

func (e *engine) ReplayCtx(ctx context.Context) {
	_ = ctx
	_ = e.n
}

func (e *engine) ReplayFrom(pos int) { // want `exported ReplayFrom looks like a blocking entry point`
	_ = pos
}
