package ctxflow_test

import (
	"testing"

	"gccache/internal/analysis/ctxflow"
	"gccache/internal/analysis/framework/analysistest"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxfixture")
}
