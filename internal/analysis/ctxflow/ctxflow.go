// Package ctxflow implements the gclint analyzer for context plumbing
// on blocking entry points. The repo's convention is twin APIs: Run and
// RunCtx, Sweep and SweepCtx — the bare form for scripts, the Ctx form
// for anything long-running that must be cancellable (the fault-tolerant
// execution layer depends on it). This analyzer keeps the convention
// from eroding as entry points are added:
//
//   - an exported function or method whose name starts with a blocking
//     prefix (Run, Sweep, Replay, Exact) must either take a
//     context.Context itself or have a sibling <Name>Ctx twin that does;
//   - a function that already receives a context.Context must not
//     manufacture a fresh one with context.Background or context.TODO —
//     that silently detaches the callee from the caller's cancellation;
//   - context.Context must not be stored in a struct field: a stored
//     context outlives the call it scoped and hides the data flow the
//     twin convention exists to make explicit.
//
// A `//gclint:ctxok` comment suppresses a report: on the `func` line for
// entry points that provably return quickly (accessors that merely
// start with Run), on the call line for deliberate detachment (e.g.
// cleanup that must outlive cancellation), on the field line for the
// rare sanctioned stored context.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"gccache/internal/analysis/framework"
	"gccache/internal/analysis/lintutil"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &framework.Analyzer{
	Name:         "ctxflow",
	Doc:          "checks that blocking entry points take (or have a twin taking) a context.Context, that received contexts are passed down, and that contexts are not stored in structs",
	Run:          run,
	Suppressions: []string{"ctxok"},
}

// blockingPrefixes name the API families that replay traces, sweep
// parameter grids, or solve offline OPT instances — all long-running.
var blockingPrefixes = []string{"Run", "Sweep", "Replay", "Exact"}

func run(pass *framework.Pass) error {
	dirs := pass.Directives()
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				checkEntryPoint(pass, dirs, decl)
				checkDetachedContext(pass, dirs, decl)
			case *ast.GenDecl:
				if decl.Tok == token.TYPE {
					checkStoredContext(pass, dirs, decl)
				}
			}
		}
	}
	return nil
}

// checkEntryPoint enforces the Ctx-twin convention on exported blocking
// entry points.
func checkEntryPoint(pass *framework.Pass, dirs *lintutil.Directives, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !ast.IsExported(name) || strings.HasSuffix(name, "Ctx") || fd.Body == nil {
		return
	}
	if !hasBlockingPrefix(name) {
		return
	}
	if funcTypeTakesCtx(pass.TypesInfo, fd.Type) {
		return
	}
	if twinTakesCtx(pass, fd, name+"Ctx") {
		return
	}
	if dirs.At(fd.Pos(), "ctxok") {
		return
	}
	if c := lintutil.CommentDirective(fd.Doc, "ctxok"); c != nil {
		dirs.MarkUsed(c.Pos(), "ctxok")
		return
	}
	pass.Reportf(fd.Name.Pos(), "exported %s looks like a blocking entry point but neither takes a context.Context nor has a %sCtx twin; add one so callers can cancel",
		name, name)
}

// checkDetachedContext flags context.Background/TODO calls inside
// functions that already receive a context.
func checkDetachedContext(pass *framework.Pass, dirs *lintutil.Directives, fd *ast.FuncDecl) {
	if fd.Body == nil || !funcTypeTakesCtx(pass.TypesInfo, fd.Type) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !lintutil.IsPkgFunc(pass.TypesInfo, call, "context", "Background", "TODO") {
			return true
		}
		if dirs.At(call.Pos(), "ctxok") {
			return true
		}
		fn, _ := lintutil.Callee(pass.TypesInfo, call).(*types.Func)
		pass.Reportf(call.Pos(), "%s already receives a context.Context; pass it down instead of context.%s, which detaches the callee from cancellation",
			fd.Name.Name, fn.Name())
		return true
	})
}

// checkStoredContext flags struct fields of type context.Context.
func checkStoredContext(pass *framework.Pass, dirs *lintutil.Directives, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		stAst, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, fld := range stAst.Fields.List {
			if !isCtxType(pass.TypesInfo.TypeOf(fld.Type)) {
				continue
			}
			if dirs.At(fld.Pos(), "ctxok") {
				continue
			}
			pass.Reportf(fld.Pos(), "struct %s stores a context.Context; pass the context as a parameter through the call chain instead",
				ts.Name.Name)
		}
	}
}

// hasBlockingPrefix reports whether name starts with one of the blocking
// API prefixes at a word boundary: "RunStream" matches, "Runtime" does
// not.
func hasBlockingPrefix(name string) bool {
	for _, p := range blockingPrefixes {
		if !strings.HasPrefix(name, p) {
			continue
		}
		rest := name[len(p):]
		if rest == "" {
			return true
		}
		r := rune(rest[0])
		if unicode.IsUpper(r) || unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

// funcTypeTakesCtx reports whether the declared parameter list includes
// a context.Context.
func funcTypeTakesCtx(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, fld := range ft.Params.List {
		if isCtxType(info.TypeOf(fld.Type)) {
			return true
		}
	}
	return false
}

// twinTakesCtx reports whether a sibling function or method named twin
// exists and takes a context.Context.
func twinTakesCtx(pass *framework.Pass, fd *ast.FuncDecl, twin string) bool {
	if fd.Recv == nil {
		fn, ok := pass.Pkg.Scope().Lookup(twin).(*types.Func)
		return ok && sigTakesCtx(fn)
	}
	// Method: look the twin up on the receiver's named type.
	if len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == twin {
			return sigTakesCtx(m)
		}
	}
	return false
}

func sigTakesCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
