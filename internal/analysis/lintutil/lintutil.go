// Package lintutil holds the small AST/type helpers shared by the
// gclint analyzers: callee resolution, gclint directive-comment lookup,
// selector-chain root resolution, and package-scope tests.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gccache/internal/analysis/framework"
)

// ModulePath is the module all gclint invariants describe. Analyzers
// that export facts restrict themselves to packages under it.
const ModulePath = "gccache"

// InModule reports whether pkg belongs to this module.
func InModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// Callee resolves the object a call expression invokes: a *types.Func
// for functions and methods, a *types.Builtin for builtins, nil when the
// callee is dynamic (a called function value) or a type conversion.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Qualified identifier (pkg.Func).
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsPkgFunc reports whether call invokes a package-level function of the
// package with the given import path, with one of the given names (any
// name if none are listed).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn, ok := Callee(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsBuiltin reports whether call invokes the named builtin.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// Directives indexes `//gclint:name` comments by file and line. It now
// lives in the framework (one instance is shared per run so stale
// suppressions can be audited); use Pass.Directives() inside analyzers.
type Directives = framework.Directives

// ParseDirective extracts the directive name from a `//gclint:name ...`
// comment (trailing explanation after whitespace is allowed).
func ParseDirective(comment string) (string, bool) {
	return framework.ParseDirective(comment)
}

// ParseDirectiveArg extracts the directive name and first argument from
// a `//gclint:name arg ...` comment.
func ParseDirectiveArg(comment string) (name, arg string, ok bool) {
	return framework.ParseDirectiveArg(comment)
}

// HasFuncDirective reports whether the function's doc comment carries
// the named gclint directive (e.g. //gclint:hotpath).
func HasFuncDirective(decl *ast.FuncDecl, name string) bool {
	return CommentDirective(decl.Doc, name) != nil
}

// GenDeclDirective returns the comment carrying the named directive in
// decl's doc comment, or nil (e.g. //gclint:padded on a type decl).
func GenDeclDirective(decl *ast.GenDecl, name string) *ast.Comment {
	return CommentDirective(decl.Doc, name)
}

// FieldDirectiveArg looks for the named directive attached to a struct
// field — in its doc comment or its same-line trailing comment — and
// returns the directive's argument (e.g. the mutex name of
// `//gclint:guardedby mu`).
func FieldDirectiveArg(field *ast.Field, name string) (arg string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if c := CommentDirective(cg, name); c != nil {
			_, arg, _ := framework.ParseDirectiveArg(c.Text)
			return arg, true
		}
	}
	return "", false
}

// CommentDirective returns the comment in cg carrying the named gclint
// directive, or nil. cg may be nil.
func CommentDirective(cg *ast.CommentGroup, name string) *ast.Comment {
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		if n, ok := framework.ParseDirective(c.Text); ok && n == name {
			return c
		}
	}
	return nil
}

// PkgInScope reports whether the pass's package is one of the given
// import paths (or a subpackage of one), or opts in via a file-level
// `//gclint:<directive>` comment — the mechanism analyzer fixtures and
// future packages use to enter scope.
func PkgInScope(pass *framework.Pass, directive string, paths ...string) bool {
	// The go command's vet configs identify test variants with suffixes
	// like "pkg [pkg.test]" or "pkg_test"; normalize those away so the
	// in-package test build of a repro package stays in scope.
	path := pass.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, "_test")
	path = strings.TrimSuffix(path, ".test")
	for _, p := range paths {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if n, ok := framework.ParseDirective(c.Text); ok && n == directive {
					return true
				}
			}
		}
	}
	return false
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// gclint's invariants target shipped code; test files deliberately build
// adversarial shapes and are skipped by every analyzer.
func IsTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Package).Filename, "_test.go")
}

// DeclaredOutside reports whether obj is a variable declared outside the
// source range [from, to) — i.e. state that outlives or is shared across
// the node spanning that range.
func DeclaredOutside(obj types.Object, from, to token.Pos) bool {
	if obj == nil {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pos() < from || obj.Pos() >= to
}

// RootObject resolves the outermost identifier of an expression chain
// (x, x.f, x[i], *x, (&x).f) to its object, or nil for chains that do
// not start at an identifier (calls, literals) or start at a blank one.
func RootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// FieldObject resolves a selector expression to the struct field it
// selects, or nil when sel selects a method, a package member, or an
// unresolvable name.
func FieldObject(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	return nil
}

// LocalTo reports whether obj is a variable declared inside the source
// range [from, to) and is not a parameter-like object — the "still
// under construction, not yet shared" test used to exempt constructor
// bodies from concurrency-annotation checks.
func LocalTo(obj types.Object, from, to token.Pos) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return obj.Pos() >= from && obj.Pos() < to
}
