// Package lintutil holds the small AST/type helpers shared by the
// gclint analyzers: callee resolution, gclint directive-comment lookup,
// and package-scope tests.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gccache/internal/analysis/framework"
)

// Callee resolves the object a call expression invokes: a *types.Func
// for functions and methods, a *types.Builtin for builtins, nil when the
// callee is dynamic (a called function value) or a type conversion.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Qualified identifier (pkg.Func).
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsPkgFunc reports whether call invokes a package-level function of the
// package with the given import path, with one of the given names (any
// name if none are listed).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn, ok := Callee(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsBuiltin reports whether call invokes the named builtin.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// Directives indexes `//gclint:name` comments by file and line so
// analyzers can honor same-line suppressions like //gclint:orderok.
type Directives struct {
	fset   *token.FileSet
	byLine map[string]map[int][]string
}

// NewDirectives scans all comments in files for gclint directives.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := ParseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
	return d
}

// ParseDirective extracts the directive name from a `//gclint:name ...`
// comment (trailing explanation after whitespace is allowed).
func ParseDirective(comment string) (string, bool) {
	rest, ok := strings.CutPrefix(comment, "//gclint:")
	if !ok {
		return "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

// At reports whether the named directive appears on the same line as pos.
func (d *Directives) At(pos token.Pos, name string) bool {
	p := d.fset.Position(pos)
	for _, n := range d.byLine[p.Filename][p.Line] {
		if n == name {
			return true
		}
	}
	return false
}

// HasFuncDirective reports whether the function's doc comment carries
// the named gclint directive (e.g. //gclint:hotpath).
func HasFuncDirective(decl *ast.FuncDecl, name string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if n, ok := ParseDirective(c.Text); ok && n == name {
			return true
		}
	}
	return false
}

// PkgInScope reports whether the pass's package is one of the given
// import paths (or a subpackage of one), or opts in via a file-level
// `//gclint:<directive>` comment — the mechanism analyzer fixtures and
// future packages use to enter scope.
func PkgInScope(pass *framework.Pass, directive string, paths ...string) bool {
	// The go command's vet configs identify test variants with suffixes
	// like "pkg [pkg.test]" or "pkg_test"; normalize those away so the
	// in-package test build of a repro package stays in scope.
	path := pass.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, "_test")
	path = strings.TrimSuffix(path, ".test")
	for _, p := range paths {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if n, ok := ParseDirective(c.Text); ok && n == directive {
					return true
				}
			}
		}
	}
	return false
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// gclint's invariants target shipped code; test files deliberately build
// adversarial shapes and are skipped by every analyzer.
func IsTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Package).Filename, "_test.go")
}

// DeclaredOutside reports whether obj is a variable declared outside the
// source range [from, to) — i.e. state that outlives or is shared across
// the node spanning that range.
func DeclaredOutside(obj types.Object, from, to token.Pos) bool {
	if obj == nil {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pos() < from || obj.Pos() >= to
}
