package lintutil_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"gccache/internal/analysis/framework"
	"gccache/internal/analysis/lintutil"
)

func TestParseDirectiveArg(t *testing.T) {
	tests := []struct {
		comment   string
		name, arg string
		ok        bool
	}{
		{"//gclint:hotpath", "hotpath", "", true},
		{"//gclint:guardedby mu", "guardedby", "mu", true},
		{"//gclint:guardedby mu — shard mutex", "guardedby", "mu", true},
		{"//gclint:orderok map copy; encoder sorts keys", "orderok", "map", true},
		{"//gclint:sharedok\tunder mu", "sharedok", "under", true},
		{"// gclint:hotpath", "", "", false}, // space defeats the directive, like //go: pragmas
		{"//gclint:", "", "", false},
		{"//lint:ignore", "", "", false},
		{"//gclint:a b c", "a", "b", true},
	}
	for _, tt := range tests {
		name, arg, ok := lintutil.ParseDirectiveArg(tt.comment)
		if name != tt.name || arg != tt.arg || ok != tt.ok {
			t.Errorf("ParseDirectiveArg(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tt.comment, name, arg, ok, tt.name, tt.arg, tt.ok)
		}
	}
}

func TestInModule(t *testing.T) {
	tests := []struct {
		path string
		want bool
	}{
		{"gccache", true},
		{"gccache/internal/concurrent", true},
		{"gccache/internal/cachesim [gccache/internal/cachesim.test]", true},
		{"gccachex", false},
		{"fmt", false},
		{"example.com/gccache", false},
		{"", false},
	}
	for _, tt := range tests {
		var pkg *types.Package
		if tt.path != "" {
			pkg = types.NewPackage(tt.path, "p")
		}
		if got := lintutil.InModule(pkg); got != tt.want {
			t.Errorf("InModule(%q) = %v, want %v", tt.path, got, tt.want)
		}
	}
}

// checkSrc type-checks one dependency-free source file.
func checkSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := framework.NewInfo()
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	return fset, file, info
}

func TestRootObject(t *testing.T) {
	const src = `package p

type inner struct{ n int }
type outer struct {
	rows []inner
	ptr  *inner
}

func f(o *outer, idx int) int {
	sum := 0
	sum += o.rows[idx].n
	sum += (*o.ptr).n
	sum += (&o.rows[0]).n
	return sum
}
`
	_, file, info := checkSrc(t, src)
	fd := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)

	var roots []string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "n" {
			return true
		}
		if obj := lintutil.RootObject(info, sel); obj != nil {
			roots = append(roots, obj.Name())
		} else {
			roots = append(roots, "<nil>")
		}
		return true
	})
	want := []string{"o", "o", "o"}
	if len(roots) != len(want) {
		t.Fatalf("found %d .n selections, want %d (%v)", len(roots), len(want), roots)
	}
	for i, w := range want {
		if roots[i] != w {
			t.Errorf("root of selection %d = %q, want %q", i, roots[i], w)
		}
	}
}

func TestFieldObject(t *testing.T) {
	const src = `package p

type s struct{ count int }

func (v *s) bump() int {
	v.count++
	return v.helper()
}

func (v *s) helper() int { return v.count }
`
	_, file, info := checkSrc(t, src)
	var fields, methods int
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if f := lintutil.FieldObject(info, sel); f != nil {
			if f.Name() != "count" {
				t.Errorf("FieldObject resolved %q, want count", f.Name())
			}
			fields++
		} else {
			methods++
		}
		return true
	})
	if fields != 2 || methods != 1 {
		t.Errorf("fields=%d methods=%d, want 2 field selections and 1 method selection", fields, methods)
	}
}

func TestLocalToAndDeclaredOutside(t *testing.T) {
	const src = `package p

var global int

func f(param int) int {
	local := param + global
	return local
}
`
	_, file, info := checkSrc(t, src)
	fd := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	from, to := fd.Body.Pos(), fd.Body.End()

	objs := make(map[string]types.Object)
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				objs[id.Name] = obj
			} else if obj := info.Uses[id]; obj != nil && objs[id.Name] == nil {
				objs[id.Name] = obj
			}
		}
		return true
	})

	tests := []struct {
		name                   string
		local, declaredOutside bool
	}{
		{"local", true, false},
		// Params precede the body, so they are "outside" positionally;
		// callers that care (hotalloc's append check) filter params first.
		{"param", false, true},
		{"global", false, true},
	}
	for _, tt := range tests {
		obj := objs[tt.name]
		if obj == nil {
			t.Fatalf("object %s not found", tt.name)
		}
		if got := lintutil.LocalTo(obj, from, to); got != tt.local {
			t.Errorf("LocalTo(%s) = %v, want %v", tt.name, got, tt.local)
		}
		if got := lintutil.DeclaredOutside(obj, from, to); got != tt.declaredOutside {
			t.Errorf("DeclaredOutside(%s) = %v, want %v", tt.name, got, tt.declaredOutside)
		}
	}
}

func TestFieldDirectiveArg(t *testing.T) {
	const src = `package p

import "sync"

type s struct {
	mu sync.Mutex
	// cache of recent results
	//gclint:guardedby mu
	docAnnotated int
	trailing     int //gclint:guardedby mu
	plain        int
}

var _ sync.Mutex
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	st := file.Decls[1].(*ast.GenDecl).Specs[0].(*ast.TypeSpec).Type.(*ast.StructType)
	tests := []struct {
		field string
		arg   string
		ok    bool
	}{
		{"mu", "", false},
		{"docAnnotated", "mu", true},
		{"trailing", "mu", true},
		{"plain", "", false},
	}
	for _, tt := range tests {
		var fld *ast.Field
		for _, f := range st.Fields.List {
			if len(f.Names) > 0 && f.Names[0].Name == tt.field {
				fld = f
			}
		}
		if fld == nil {
			t.Fatalf("field %s not found", tt.field)
		}
		arg, ok := lintutil.FieldDirectiveArg(fld, "guardedby")
		if arg != tt.arg || ok != tt.ok {
			t.Errorf("FieldDirectiveArg(%s) = (%q, %v), want (%q, %v)", tt.field, arg, ok, tt.arg, tt.ok)
		}
	}
}
