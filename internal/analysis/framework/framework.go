// Package framework is a self-contained miniature of
// golang.org/x/tools/go/analysis: just enough Analyzer/Pass machinery to
// write the repo's custom vet checks (cmd/gclint) against the standard
// library alone. The build environment vendors no third-party modules,
// so instead of depending on x/tools this package re-implements the two
// integration surfaces gclint needs:
//
//   - the `go vet -vettool` unit-checker protocol (unitchecker.go), so
//     `make lint` gets package loading, export data, and caching from
//     the go command for free; and
//   - an analysistest-style fixture harness (sibling package
//     analysistest), so each analyzer is tested against `// want`
//     annotated sources under testdata/src.
//
// The API mirrors x/tools deliberately — if a vendored x/tools ever
// becomes available, the analyzers port by changing imports only.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Unlike x/tools there are no
// Requires/Facts: gclint's analyzers are all single-package syntactic +
// type checks, which keeps the unit-checker protocol trivial (no fact
// serialization between packages).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation, shown by `gclint help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is a single report from an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Package bundles a loaded, type-checked package ready for analysis.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// populated, for use by both the unit checker and the test harness.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run applies each analyzer to pkg and returns all diagnostics in
// source-position order of emission.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		all = append(all, pass.diagnostics...)
	}
	return all, nil
}
