// Package framework is a self-contained miniature of
// golang.org/x/tools/go/analysis: just enough Analyzer/Pass machinery to
// write the repo's custom vet checks (cmd/gclint) against the standard
// library alone. The build environment vendors no third-party modules,
// so instead of depending on x/tools this package re-implements the
// integration surfaces gclint needs:
//
//   - the `go vet -vettool` unit-checker protocol (unitchecker.go), so
//     `make lint` gets package loading, export data, and caching from
//     the go command for free;
//   - modular facts (facts.go), so analyzers can attach typed data to
//     functions and fields and read it back when analyzing downstream
//     packages — serialized into the go command's vetx files, which is
//     how "this function allocates" and "this field is accessed
//     atomically" cross package boundaries; and
//   - an analysistest-style fixture harness (sibling package
//     analysistest), so each analyzer is tested against `// want`
//     annotated sources under testdata/src, including multi-package
//     fixtures that exercise fact propagation.
//
// The API mirrors x/tools deliberately — if a vendored x/tools ever
// becomes available, the analyzers port by changing imports only.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation, shown by `gclint help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// FactTypes lists the fact types the analyzer exports and imports
	// (each a pointer to a gob-encodable struct). Analyzers with fact
	// types also run on dependency packages (vetx-only units) so their
	// facts exist before dependents are analyzed.
	FactTypes []Fact
	// Suppressions names the same-line `//gclint:<name>` directives this
	// analyzer consults to silence a diagnostic. The framework audits
	// them after a run: a suppression no analyzer matched suppresses
	// nothing and is reported as stale (analyzer name "suppress").
	Suppressions []string
}

// SuppressAnalyzerName attributes stale-suppression audit diagnostics.
const SuppressAnalyzerName = "suppress"

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Sizes gives target-specific type layouts for analyzers that check
	// memory layout (e.g. cache-line placement). Never nil.
	Sizes types.Sizes

	directives  *Directives
	facts       *FactSet
	diagnostics []Diagnostic
}

// Diagnostic is a single report from an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Directives returns the run-wide gclint directive index for the
// package. All analyzers of a run share one instance, which is what
// lets the framework audit unmatched suppressions afterwards.
func (p *Pass) Directives() *Directives {
	return p.directives
}

// ExportObjectFact attaches fact to obj for downstream packages (and
// later analyzers of this run) to import. obj must belong to a package
// (not be a local), and fact's type must appear in the analyzer's
// FactTypes.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || p.facts == nil {
		return
	}
	p.facts.putObject(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact copies the fact of the analyzer's type attached to
// obj into *fact and reports whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || p.facts == nil {
		return false
	}
	return p.facts.getObject(p.Analyzer.Name, obj, fact)
}

// ExportPackageFact attaches fact to the package being analyzed.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		return
	}
	p.facts.putPackage(p.Analyzer.Name, p.Pkg.Path(), fact)
}

// ImportPackageFact copies the fact of the analyzer's type attached to
// pkg into *fact and reports whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil || p.facts == nil {
		return false
	}
	return p.facts.getPackage(p.Analyzer.Name, pkg.Path(), fact)
}

// Package bundles a loaded, type-checked package ready for analysis.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Sizes defaults to the host gc layout when nil.
	Sizes types.Sizes
}

// NewInfo returns a types.Info with every map the analyzers consult
// populated, for use by both the unit checker and the test harness.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run applies each analyzer to pkg, audits suppression directives, and
// returns all diagnostics sorted by (file, line, column, analyzer,
// message) — a total order independent of analyzer registration order
// and map iteration, so lint output is byte-stable across runs.
//
// facts carries object/package facts imported from dependency packages
// in, and accumulates the facts analyzers export while running; pass
// NewFactSet() (or nil) when there are no upstream facts.
//
//gclint:ctxok per-package analysis driver; bounded by package size, callers cancel between units
func Run(pkg *Package, analyzers []*Analyzer, facts *FactSet) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFactSet()
	}
	sizes := pkg.Sizes
	if sizes == nil {
		sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	dirs := NewDirectives(pkg.Fset, pkg.Files)
	var all []Diagnostic
	suppressions := make(map[string]bool)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Pkg,
			TypesInfo:  pkg.TypesInfo,
			Sizes:      sizes,
			directives: dirs,
			facts:      facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		all = append(all, pass.diagnostics...)
		for _, s := range a.Suppressions {
			suppressions[s] = true
		}
	}
	for _, dir := range dirs.stale(suppressions) {
		all = append(all, Diagnostic{
			Pos:      dir.pos,
			Message:  fmt.Sprintf("stale suppression //gclint:%s: no diagnostic here to suppress; remove it or fix the drifted code", dir.name),
			Analyzer: SuppressAnalyzerName,
		})
	}
	sortDiagnostics(pkg.Fset, all)
	return all, nil
}

// sortDiagnostics orders diags by (file, line, column, analyzer,
// message).
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}
