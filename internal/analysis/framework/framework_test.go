package framework_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"gccache/internal/analysis/framework"
)

// checkSrc parses and type-checks one source file as package path.
func checkSrc(t *testing.T, path, src string) *framework.Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{file}
	info := framework.NewInfo()
	conf := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatal(err)
	}
	return &framework.Package{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
}

// TestDiagnosticOrder locks in the framework's output contract: reports
// are sorted by (file, line, column, analyzer, message) regardless of
// analyzer registration order or emit order, so `make lint` output is
// byte-stable across runs.
func TestDiagnosticOrder(t *testing.T) {
	pkg := checkSrc(t, "order", "package order\n\nfunc A() {}\n\nfunc B() {}\n")
	early := pkg.Files[0].Decls[0].Pos()
	late := pkg.Files[0].Decls[1].Pos()

	zzz := &framework.Analyzer{
		Name: "zzz",
		Run: func(pass *framework.Pass) error {
			pass.Reportf(late, "late-z")
			pass.Reportf(early, "early-z")
			return nil
		},
	}
	aaa := &framework.Analyzer{
		Name: "aaa",
		Run: func(pass *framework.Pass) error {
			pass.Reportf(early, "early-a")
			return nil
		},
	}

	diags, err := framework.Run(pkg, []*framework.Analyzer{zzz, aaa}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+"/"+d.Message)
	}
	want := []string{"aaa/early-a", "zzz/early-z", "zzz/late-z"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("diagnostic order = %v, want %v", got, want)
	}
}

// factMsg is a test fact type.
type factMsg struct{ Msg string }

func (*factMsg) AFact() {}

// TestFactsRoundTrip exports facts about a package-level function, a
// method, a struct field, and the package itself, serializes the set to
// the vetx payload format, decodes it into a fresh set, and verifies a
// second analysis run can import every fact — the in-process version of
// what happens across two `go vet` unit invocations.
func TestFactsRoundTrip(t *testing.T) {
	const src = `package dep

func F() {}

type T struct{ X int }

func (T) M() {}
`
	pkg := checkSrc(t, "dep", src)

	lookupObj := func(name string) types.Object {
		scope := pkg.Pkg.Scope()
		switch name {
		case "F":
			return scope.Lookup("F")
		case "M":
			named := scope.Lookup("T").Type().(*types.Named)
			return named.Method(0)
		case "X":
			st := scope.Lookup("T").Type().Underlying().(*types.Struct)
			return st.Field(0)
		}
		return nil
	}

	export := &framework.Analyzer{
		Name:      "facttest",
		FactTypes: []framework.Fact{new(factMsg)},
		Run: func(pass *framework.Pass) error {
			for _, name := range []string{"F", "M", "X"} {
				pass.ExportObjectFact(lookupObj(name), &factMsg{Msg: "obj-" + name})
			}
			pass.ExportPackageFact(&factMsg{Msg: "pkg-dep"})
			return nil
		},
	}
	framework.RegisterFactTypes(export)

	exported := framework.NewFactSet()
	if _, err := framework.Run(pkg, []*framework.Analyzer{export}, exported); err != nil {
		t.Fatal(err)
	}
	data, err := exported.Encode()
	if err != nil {
		t.Fatal(err)
	}

	decoded := framework.NewFactSet()
	if err := decoded.Decode(data, map[string]*types.Package{"dep": pkg.Pkg}); err != nil {
		t.Fatal(err)
	}

	got := make(map[string]string)
	verify := &framework.Analyzer{
		Name:      "facttest",
		FactTypes: []framework.Fact{new(factMsg)},
		Run: func(pass *framework.Pass) error {
			for _, name := range []string{"F", "M", "X"} {
				var f factMsg
				if pass.ImportObjectFact(lookupObj(name), &f) {
					got[name] = f.Msg
				}
			}
			var f factMsg
			if pass.ImportPackageFact(pass.Pkg, &f) {
				got["pkg"] = f.Msg
			}
			return nil
		},
	}
	if _, err := framework.Run(pkg, []*framework.Analyzer{verify}, decoded); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"F": "obj-F", "M": "obj-M", "X": "obj-X", "pkg": "pkg-dep"}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("fact %s = %q after round trip, want %q", k, got[k], w)
		}
	}
}

// TestStaleSuppressionAudit verifies the framework reports suppression
// directives that no analyzer matched, and stays quiet about ones that
// were consulted.
func TestStaleSuppressionAudit(t *testing.T) {
	const src = `package sup

func f() int {
	return 1 //gclint:orderok genuinely order-independent
}
`
	match := &framework.Analyzer{
		Name:         "matcher",
		Suppressions: []string{"orderok"},
		Run: func(pass *framework.Pass) error {
			pos := pass.Files[0].Comments[0].Pos()
			if !pass.Directives().At(pos, "orderok") {
				t.Error("directive not found at its own position")
			}
			return nil
		},
	}
	ignore := &framework.Analyzer{
		Name:         "ignorer",
		Suppressions: []string{"orderok"},
		Run:          func(pass *framework.Pass) error { return nil },
	}

	diags, err := framework.Run(checkSrc(t, "sup", src), []*framework.Analyzer{match}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("matched suppression reported as stale: %v", diags)
	}

	diags, err = framework.Run(checkSrc(t, "sup", src), []*framework.Analyzer{ignore}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != framework.SuppressAnalyzerName ||
		!strings.Contains(diags[0].Message, "stale suppression //gclint:orderok") {
		t.Errorf("unmatched suppression: got %v, want one stale report", diags)
	}
}
