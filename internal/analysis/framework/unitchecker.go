package framework

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// vetConfig is the JSON configuration the go command writes for each
// package when driving a vet tool (see cmd/go/internal/work's
// buildVetConfig and x/tools/go/analysis/unitchecker.Config). Only the
// fields gclint consumes are declared; unknown fields are ignored by
// encoding/json.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vet-tool binary built on this framework.
// It speaks the protocol the go command expects of a -vettool:
//
//	tool -V=full            print a version fingerprint and exit
//	tool -flags             print the supported flags as JSON and exit
//	tool <file>.cfg         analyze one package described by the config
//
// As a convenience for humans, any other arguments are treated as
// package patterns and re-executed through `go vet -vettool=<self>`, so
// `gclint ./...` works directly.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// `go vet` probes the tool before use: -V=full must print a
	// reproducible version line, and -flags must dump the flag schema so
	// the go command can route command-line flags. gclint defines no
	// tool flags, so the schema is empty.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
			return
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return
		case args[0] == "help" || args[0] == "-help" || args[0] == "--help":
			printHelp(progname, analyzers)
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, exit := runUnit(args[0], analyzers)
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(exit)
	}

	// Standalone mode: delegate package loading to the go command by
	// re-invoking ourselves as its vettool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: cannot locate own binary: %v\n", progname, err)
		os.Exit(2)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}
}

func printHelp(progname string, analyzers []*Analyzer) {
	fmt.Printf("%s is a vet tool; run it as `%s ./...` or `go vet -vettool=%s ./...`.\n\n",
		progname, progname, progname)
	fmt.Println("Registered analyzers:")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Printf("  %-12s %s\n", a.Name, doc)
	}
}

// selfHash fingerprints the tool binary so the go command's build cache
// invalidates vet results when the tool changes.
func selfHash() string {
	f, err := os.Open(os.Args[0])
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// runUnit analyzes the single package described by cfgPath and returns
// the rendered diagnostics plus the process exit code (0 clean, 2 on
// findings, matching cmd/vet's convention).
func runUnit(cfgPath string, analyzers []*Analyzer) ([]string, int) {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		return []string{fmt.Sprintf("gclint: %v", err)}, 1
	}

	// The go command runs its vettool over every dependency of the
	// requested packages to collect "vetx" facts, and expects the output
	// file to exist afterward. gclint's analyzers are strictly
	// package-local, so dependencies need no analysis at all — write the
	// (empty) facts file and stop.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("gclint-facts-v1\n"), 0o666); err != nil {
			return []string{fmt.Sprintf("gclint: writing vetx output: %v", err)}, 1
		}
	}
	if cfg.VetxOnly {
		return nil, 0
	}

	pkg, err := typecheckUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, 0
		}
		return []string{fmt.Sprintf("gclint: %v", err)}, 1
	}

	diags, err := Run(pkg, analyzers)
	if err != nil {
		return []string{fmt.Sprintf("gclint: %v", err)}, 1
	}
	if len(diags) == 0 {
		return nil, 0
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%s: %s [%s]", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return out, 2
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	if len(cfg.GoFiles) == 0 && !cfg.VetxOnly {
		return nil, fmt.Errorf("vet config %s lists no Go files", path)
	}
	return cfg, nil
}

// typecheckUnit parses and type-checks the package in cfg, resolving
// imports through the compiler export data files the go command listed
// in cfg.PackageFile.
func typecheckUnit(cfg *vetConfig) (*Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// Resolve a source-level import path to canonical form, then to
		// the export data file the go command prepared for it.
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
