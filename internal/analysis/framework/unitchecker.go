package framework

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// vetConfig is the JSON configuration the go command writes for each
// package when driving a vet tool (see cmd/go/internal/work's
// buildVetConfig and x/tools/go/analysis/unitchecker.Config). Only the
// fields gclint consumes are declared; unknown fields are ignored by
// encoding/json.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// vetxHeader begins every gclint vetx file; the serialized fact payload
// (facts.go) follows. v1 files (empty facts) are still accepted.
const vetxHeader = "gclint-facts-v2\n"

// Main is the entry point for a vet-tool binary built on this framework.
// It speaks the protocol the go command expects of a -vettool:
//
//	tool -V=full            print a version fingerprint and exit
//	tool -flags             print the supported flags as JSON and exit
//	tool [-analyzer]... <file>.cfg
//	                        analyze one package described by the config,
//	                        restricted to the named analyzers when any
//	                        analyzer flag is set
//
// Each analyzer is exposed as a boolean flag of its own name, so
// `go vet -vettool=gclint -atomicfield ./pkg` runs one analyzer — the
// fast iteration loop behind `make lint-one`.
//
// As a convenience for humans, any other arguments are forwarded
// verbatim through `go vet -vettool=<self>`, so `gclint ./...` and
// `gclint -ctxflow ./...` work directly.
func Main(analyzers ...*Analyzer) {
	RegisterFactTypes(analyzers...)
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// `go vet` probes the tool before use: -V=full must print a
	// reproducible version line, and -flags must dump the flag schema so
	// the go command can route command-line flags to the tool.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
			return
		case args[0] == "-flags" || args[0] == "--flags":
			printFlagSchema(analyzers)
			return
		case args[0] == "help" || args[0] == "-help" || args[0] == "--help":
			printHelp(progname, analyzers)
			return
		}
	}

	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		selected, cfgPath, err := parseUnitArgs(progname, args, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(2)
		}
		diags, exit := runUnit(cfgPath, selected)
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(exit)
	}

	// Standalone mode: delegate package loading to the go command by
	// re-invoking ourselves as its vettool. Analyzer flags pass through
	// unchanged — go vet validates them against our -flags schema and
	// hands them back at each unit invocation.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: cannot locate own binary: %v\n", progname, err)
		os.Exit(2)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}
}

// parseUnitArgs parses a unit invocation (`tool [-analyzer]... x.cfg`)
// and returns the analyzers to run: the flagged subset when any
// analyzer flag is set, all of them otherwise.
func parseUnitArgs(progname string, args []string, analyzers []*Analyzer) ([]*Analyzer, string, error) {
	fs := flag.NewFlagSet(progname, flag.ContinueOnError)
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, false, firstLine(a.Doc))
	}
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}
	if fs.NArg() != 1 {
		return nil, "", fmt.Errorf("expected exactly one .cfg argument, got %d", fs.NArg())
	}
	any := false
	for _, on := range enabled {
		any = any || *on
	}
	if !any {
		return analyzers, fs.Arg(0), nil
	}
	var selected []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	return selected, fs.Arg(0), nil
}

// printFlagSchema emits the tool's flags as the JSON the go command
// expects from `vettool -flags` (one boolean flag per analyzer).
func printFlagSchema(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(analyzers))
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gclint: marshalling flag schema: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
}

func printHelp(progname string, analyzers []*Analyzer) {
	fmt.Printf("%s is a vet tool; run it as `%s ./...` or `go vet -vettool=%s ./...`.\n",
		progname, progname, progname)
	fmt.Printf("Select single analyzers with their flags, e.g. `%s -%s ./...`.\n\n",
		progname, analyzers[0].Name)
	fmt.Println("Registered analyzers:")
	for _, a := range analyzers {
		fmt.Printf("  %-14s %s\n", a.Name, firstLine(a.Doc))
	}
}

func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		doc = doc[:i]
	}
	return doc
}

// selfHash fingerprints the tool binary so the go command's build cache
// invalidates vet results when the tool changes.
func selfHash() string {
	f, err := os.Open(os.Args[0])
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// runUnit analyzes the single package described by cfgPath and returns
// the rendered diagnostics plus the process exit code (0 clean, 2 on
// findings, matching cmd/vet's convention).
func runUnit(cfgPath string, analyzers []*Analyzer) ([]string, int) {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		return []string{fmt.Sprintf("gclint: %v", err)}, 1
	}

	// The go command runs its vettool over every dependency of the
	// requested packages before the packages themselves, and expects each
	// unit to leave a vetx (facts) file behind. Dependency units are
	// VetxOnly: they exist purely to produce facts, so only the analyzers
	// that export facts need to run — and only over packages of this
	// module, since gclint's facts describe gccache code alone.
	factProducers := make([]*Analyzer, 0, len(analyzers))
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			factProducers = append(factProducers, a)
		}
	}
	toRun := analyzers
	if cfg.VetxOnly {
		toRun = factProducers
		if len(toRun) == 0 || cfg.Standard[cfg.ImportPath] || !inModule(cfg.ImportPath) {
			if err := writeVetx(cfg.VetxOutput, nil); err != nil {
				return []string{fmt.Sprintf("gclint: %v", err)}, 1
			}
			return nil, 0
		}
	}

	pkg, imported, err := typecheckUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, 0
		}
		return []string{fmt.Sprintf("gclint: %v", err)}, 1
	}

	facts := NewFactSet()
	if err := importFacts(cfg, pkg, imported, facts); err != nil {
		return []string{fmt.Sprintf("gclint: %v", err)}, 1
	}

	diags, err := Run(pkg, toRun, facts)
	if err != nil {
		return []string{fmt.Sprintf("gclint: %v", err)}, 1
	}
	if err := exportFacts(cfg, facts); err != nil {
		return []string{fmt.Sprintf("gclint: %v", err)}, 1
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return nil, 0
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%s: %s [%s]", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return out, 2
}

// inModule reports whether path is a package of this module (test
// variants like "pkg [pkg.test]" normalize to their base path).
func inModule(path string) bool {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path == "gccache" || strings.HasPrefix(path, "gccache/")
}

// importFacts loads the fact payloads of every dependency vetx file the
// go command listed and resolves them against the imported packages.
func importFacts(cfg *vetConfig, pkg *Package, imported map[string]*types.Package, facts *FactSet) error {
	if len(cfg.PackageVetx) == 0 {
		return nil
	}
	// Facts name objects in any package of the import closure, not just
	// direct imports (re-exported facts keep attribution).
	lookup := PackageClosure(pkg.Pkg)
	for path, p := range imported {
		if lookup[path] == nil {
			lookup[path] = p
		}
	}
	for path, file := range cfg.PackageVetx {
		if !inModule(path) {
			continue
		}
		data, err := os.ReadFile(file)
		if err != nil {
			// A missing dependency facts file is not fatal: the dep may
			// have been analyzed by an older tool build.
			continue
		}
		payload, ok := strings.CutPrefix(string(data), vetxHeader)
		if !ok {
			continue // v1 or foreign file: no facts
		}
		if err := facts.Decode([]byte(payload), lookup); err != nil {
			return fmt.Errorf("reading facts of %s: %w", path, err)
		}
	}
	return nil
}

// exportFacts writes the unit's vetx output: the header plus every fact
// now in the set (own and re-exported imported ones, so downstream
// units see facts from transitive dependencies).
func exportFacts(cfg *vetConfig, facts *FactSet) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	payload, err := facts.Encode()
	if err != nil {
		return err
	}
	return writeVetx(cfg.VetxOutput, payload)
}

func writeVetx(path string, payload []byte) error {
	if path == "" {
		return nil
	}
	data := append([]byte(vetxHeader), payload...)
	if err := os.WriteFile(path, data, 0o666); err != nil {
		return fmt.Errorf("writing vetx output: %w", err)
	}
	return nil
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	if len(cfg.GoFiles) == 0 && !cfg.VetxOnly {
		return nil, fmt.Errorf("vet config %s lists no Go files", path)
	}
	return cfg, nil
}

// typecheckUnit parses and type-checks the package in cfg, resolving
// imports through the compiler export data files the go command listed
// in cfg.PackageFile. It also returns every package the importer
// loaded, keyed by import path, for fact-path resolution.
func typecheckUnit(cfg *vetConfig) (*Package, map[string]*types.Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// Resolve a source-level import path to canonical form, then to
		// the export data file the go command prepared for it.
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imported := make(map[string]*types.Package)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		p, err := compilerImporter.Import(path)
		if err == nil && p != nil {
			imported[p.Path()] = p
		}
		return p, err
	})

	sizes := types.SizesFor(cfg.Compiler, build.Default.GOARCH)
	tc := &types.Config{
		Importer:  imp,
		Sizes:     sizes,
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Sizes: sizes}, imported, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
