// Package analysistest is a miniature of
// golang.org/x/tools/go/analysis/analysistest for the in-repo framework
// package: it runs one analyzer over GOPATH-style fixture packages under
// testdata/src/<pkg> and checks the reported diagnostics against
// `// want` comments in the fixture sources.
//
// Expectation syntax (a strict subset of x/tools'):
//
//	code() // want "regexp"
//	code() // want "first" `second`
//
// Each string is an anchored-nowhere regular expression that must match
// the message of a diagnostic reported on that line; every diagnostic
// must be matched by exactly one expectation and vice versa. Lines
// without a want comment must produce no diagnostics.
//
// Fixture packages may import sibling fixture packages (any import path
// with a directory under the same testdata/src). Dependencies are
// loaded, type-checked, and analyzed first, and the facts their
// analysis exports flow into dependent packages — the in-process mirror
// of the unitchecker's vetx fact propagation, used to test
// cross-package analyzers. Diagnostics of a dependency are checked
// against its own want comments when (and only when) it is named in the
// Run call.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gccache/internal/analysis/framework"
)

// Run loads each fixture package dir testdata/src/<pkg>, applies the
// analyzer, and reports mismatches between actual diagnostics and the
// fixtures' want comments as test errors. All packages of one Run call
// share a fact set, so facts exported while analyzing an earlier (or
// imported) package are visible to later ones.
//
//gclint:ctxok test harness; go test's -timeout is the cancellation mechanism
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	framework.RegisterFactTypes(a)
	l := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		analyzer: a,
		facts:    framework.NewFactSet(),
		loaded:   make(map[string]*loadedPackage),
	}
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			lp, err := l.load(pkg)
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, l.fset, lp.files)
			checkDiagnostics(t, l.fset, lp.diags, wants)
		})
	}
}

// loader loads fixture packages recursively, running the analyzer over
// each exactly once and accumulating exported facts.
type loader struct {
	testdata string
	fset     *token.FileSet
	analyzer *framework.Analyzer
	facts    *framework.FactSet
	loaded   map[string]*loadedPackage
	std      types.Importer
	loading  []string // active load chain, for import-cycle reporting
}

type loadedPackage struct {
	pkg   *types.Package
	files []*ast.File
	diags []framework.Diagnostic
}

// Import implements types.Importer: sibling fixture dirs are loaded
// (and analyzed) recursively; everything else resolves from GOROOT
// source.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.testdata, "src", path); dirExists(dir) {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	if l.std == nil {
		// Fixtures otherwise import only the standard library, which the
		// source importer type-checks straight from GOROOT — no export
		// data or network needed.
		l.std = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.std.Import(path)
}

func (l *loader) load(importPath string) (*loadedPackage, error) {
	if lp, ok := l.loaded[importPath]; ok {
		return lp, nil
	}
	for _, active := range l.loading {
		if active == importPath {
			return nil, fmt.Errorf("fixture import cycle: %s", strings.Join(append(l.loading, importPath), " -> "))
		}
	}
	l.loading = append(l.loading, importPath)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	dir := filepath.Join(l.testdata, "src", importPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading fixture dir: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing fixture: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files under %s", dir)
	}

	// Fixed amd64 layouts keep fixtures with memory-layout expectations
	// (cache-line placement) deterministic across host architectures.
	sizes := types.SizesFor("gc", "amd64")
	tc := &types.Config{Importer: l, Sizes: sizes}
	info := framework.NewInfo()
	pkg, err := tc.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", importPath, err)
	}

	diags, err := framework.Run(
		&framework.Package{Fset: l.fset, Files: files, Pkg: pkg, TypesInfo: info, Sizes: sizes},
		[]*framework.Analyzer{l.analyzer},
		l.facts,
	)
	if err != nil {
		return nil, fmt.Errorf("running analyzer on %s: %w", importPath, err)
	}
	lp := &loadedPackage{pkg: pkg, files: files, diags: diags}
	l.loaded[importPath] = lp
	return lp, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// want is one expectation: a diagnostic matching rx on (file, line).
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\b(.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitWantPatterns(t, pos, m[1]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

// splitWantPatterns extracts the quoted or backquoted expectation
// strings following a want marker.
func splitWantPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want comment near %q (expect quoted regexps)", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		raw := s[:end+2]
		if quote == '"' {
			unq, err := strconv.Unquote(raw)
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, raw, err)
			}
			pats = append(pats, unq)
		} else {
			pats = append(pats, raw[1:len(raw)-1])
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return pats
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, diags []framework.Diagnostic, wants []*want) {
	t.Helper()
	var surplus []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if w := matchWant(wants, pos, d.Message); w == nil {
			surplus = append(surplus, fmt.Sprintf("%s: unexpected diagnostic: %s", pos, d.Message))
		}
	}
	sort.Strings(surplus)
	for _, s := range surplus {
		t.Error(s)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

func matchWant(wants []*want, pos token.Position, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}
