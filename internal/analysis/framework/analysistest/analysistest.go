// Package analysistest is a miniature of
// golang.org/x/tools/go/analysis/analysistest for the in-repo framework
// package: it runs one analyzer over GOPATH-style fixture packages under
// testdata/src/<pkg> and checks the reported diagnostics against
// `// want` comments in the fixture sources.
//
// Expectation syntax (a strict subset of x/tools'):
//
//	code() // want "regexp"
//	code() // want "first" `second`
//
// Each string is an anchored-nowhere regular expression that must match
// the message of a diagnostic reported on that line; every diagnostic
// must be matched by exactly one expectation and vice versa. Lines
// without a want comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gccache/internal/analysis/framework"
)

// Run loads each fixture package dir testdata/src/<pkg>, applies the
// analyzer, and reports mismatches between actual diagnostics and the
// fixtures' want comments as test errors.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runPackage(t, dir, pkg, a)
		})
	}
}

func runPackage(t *testing.T, dir, importPath string, a *framework.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files under %s", dir)
	}

	// Fixtures import only the standard library, which the source
	// importer type-checks straight from GOROOT — no export data or
	// network needed.
	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := framework.NewInfo()
	pkg, err := tc.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	diags, err := framework.Run(
		&framework.Package{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info},
		[]*framework.Analyzer{a},
	)
	if err != nil {
		t.Fatalf("running analyzer: %v", err)
	}

	wants := collectWants(t, fset, files)
	checkDiagnostics(t, fset, diags, wants)
}

// want is one expectation: a diagnostic matching rx on (file, line).
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\b(.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitWantPatterns(t, pos, m[1]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

// splitWantPatterns extracts the quoted or backquoted expectation
// strings following a want marker.
func splitWantPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want comment near %q (expect quoted regexps)", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		raw := s[:end+2]
		if quote == '"' {
			unq, err := strconv.Unquote(raw)
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, raw, err)
			}
			pats = append(pats, unq)
		} else {
			pats = append(pats, raw[1:len(raw)-1])
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return pats
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, diags []framework.Diagnostic, wants []*want) {
	t.Helper()
	var surplus []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if w := matchWant(wants, pos, d.Message); w == nil {
			surplus = append(surplus, fmt.Sprintf("%s: unexpected diagnostic: %s", pos, d.Message))
		}
	}
	sort.Strings(surplus)
	for _, s := range surplus {
		t.Error(s)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

func matchWant(wants []*want, pos token.Position, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}
