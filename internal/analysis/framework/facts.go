package framework

// Modular facts, mirroring golang.org/x/tools/go/analysis but stdlib
// only. A fact is a typed datum an analyzer attaches to a types.Object
// (a function, a struct field, ...) while analyzing the package that
// declares it; when a downstream package is analyzed later, the fact is
// imported back so the analyzer can reason across package boundaries
// without whole-program analysis. Facts cross processes through the
// go command's vetx files (see unitchecker.go) serialized with
// encoding/gob, and cross fixture packages in-process through a shared
// FactSet (see analysistest).
//
// Object naming: x/tools uses go/types/objectpath; this framework
// implements the small subset gclint needs — package-level objects,
// methods of named types, and fields of named struct types — in
// objectPath/resolvePath below. Objects outside that subset simply
// cannot carry facts, which is fine: they are not addressable from
// other packages either.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Fact is the interface of all fact types. The AFact marker method
// guards against accidentally passing arbitrary values where a fact is
// expected. A fact type must be a pointer to a gob-encodable struct and
// must be listed in its analyzer's FactTypes.
type Fact interface {
	AFact()
}

// factKey identifies one fact: which analyzer produced it, about which
// object (nil object = a package-level fact).
type factKey struct {
	analyzer string
	obj      types.Object
}

// FactSet holds the facts visible to one analysis run: facts imported
// from dependency packages plus facts exported while analyzing the
// current package. It is shared by all analyzers of a run (keys are
// namespaced by analyzer name) and is not safe for concurrent use.
type FactSet struct {
	objects  map[factKey]Fact
	packages map[string]map[string]Fact // analyzer -> package path -> fact
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{
		objects:  make(map[factKey]Fact),
		packages: make(map[string]map[string]Fact),
	}
}

func (s *FactSet) putObject(analyzer string, obj types.Object, f Fact) {
	s.objects[factKey{analyzer, obj}] = f
}

func (s *FactSet) getObject(analyzer string, obj types.Object, into Fact) bool {
	f, ok := s.objects[factKey{analyzer, obj}]
	if !ok {
		return false
	}
	return copyFact(f, into)
}

func (s *FactSet) putPackage(analyzer, pkgPath string, f Fact) {
	m := s.packages[analyzer]
	if m == nil {
		m = make(map[string]Fact)
		s.packages[analyzer] = m
	}
	m[pkgPath] = f
}

func (s *FactSet) getPackage(analyzer, pkgPath string, into Fact) bool {
	f, ok := s.packages[analyzer][pkgPath]
	if !ok {
		return false
	}
	return copyFact(f, into)
}

// copyFact copies the stored fact into the caller-supplied pointer when
// the concrete types match (the x/tools ImportObjectFact contract).
func copyFact(from, into Fact) bool {
	fv, iv := reflect.ValueOf(from), reflect.ValueOf(into)
	if fv.Type() != iv.Type() || iv.Kind() != reflect.Pointer || iv.IsNil() {
		return false
	}
	iv.Elem().Set(fv.Elem())
	return true
}

// RegisterFactTypes registers every fact type of the given analyzers
// with encoding/gob, so fact values round-trip through vetx files. Safe
// to call repeatedly with the same analyzers.
func RegisterFactTypes(analyzers ...*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// gobFact is the serialized form of one fact in a vetx payload.
type gobFact struct {
	Analyzer string
	PkgPath  string // package declaring the object ("" defers to Path semantics)
	Path     string // objectPath of the object; "" for a package fact
	Fact     Fact
}

// Encode serializes the fact set (for embedding in a vetx file). Facts
// about objects that cannot be named by objectPath are dropped — they
// are unreachable from other packages. Output is deterministic.
func (s *FactSet) Encode() ([]byte, error) {
	var facts []gobFact
	for k, f := range s.objects {
		path, ok := objectPath(k.obj)
		if !ok || k.obj.Pkg() == nil {
			continue
		}
		facts = append(facts, gobFact{
			Analyzer: k.analyzer,
			PkgPath:  k.obj.Pkg().Path(),
			Path:     path,
			Fact:     f,
		})
	}
	for analyzer, byPkg := range s.packages {
		for pkgPath, f := range byPkg {
			facts = append(facts, gobFact{Analyzer: analyzer, PkgPath: pkgPath, Fact: f})
		}
	}
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		return a.Analyzer < b.Analyzer
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(facts); err != nil {
		return nil, fmt.Errorf("encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode merges serialized facts into the set, resolving object paths
// against the packages in lookup (import path -> package). Facts about
// packages absent from lookup are skipped: their objects are not
// reachable from the package under analysis, so no analyzer could ask
// about them.
func (s *FactSet) Decode(data []byte, lookup map[string]*types.Package) error {
	if len(data) == 0 {
		return nil
	}
	var facts []gobFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&facts); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	for _, gf := range facts {
		if gf.Path == "" {
			s.putPackage(gf.Analyzer, gf.PkgPath, gf.Fact)
			continue
		}
		pkg := lookup[gf.PkgPath]
		if pkg == nil {
			continue
		}
		obj, ok := resolvePath(pkg, gf.Path)
		if !ok {
			continue
		}
		s.putObject(gf.Analyzer, obj, gf.Fact)
	}
	return nil
}

// PackageClosure collects the transitive import closure of pkg keyed by
// import path — the lookup table Decode resolves fact paths against.
func PackageClosure(pkg *types.Package) map[string]*types.Package {
	closure := make(map[string]*types.Package)
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if p == nil || closure[p.Path()] != nil {
			return
		}
		closure[p.Path()] = p
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	for _, imp := range pkg.Imports() {
		walk(imp)
	}
	return closure
}

// objectPath names obj relative to its package:
//
//	F:Name            package-level func, var, const, or type
//	M:Type.Method     method of the named type
//	D:Type.Field      field of the named struct type
//
// It returns ok=false for objects outside that subset (locals, fields
// of anonymous structs, interface methods, ...).
func objectPath(obj types.Object) (string, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	if pkg.Scope().Lookup(obj.Name()) == obj {
		return "F:" + obj.Name(), true
	}
	switch obj := obj.(type) {
	case *types.Func:
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return "", false
		}
		named := namedOf(sig.Recv().Type())
		if named == nil || named.Obj().Pkg() != pkg {
			return "", false
		}
		return "M:" + named.Obj().Name() + "." + obj.Name(), true
	case *types.Var:
		if !obj.IsField() {
			return "", false
		}
		// Find the named struct type in the package that declares this
		// field object.
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == obj {
					return "D:" + name + "." + obj.Name(), true
				}
			}
		}
	}
	return "", false
}

// resolvePath is the inverse of objectPath within pkg.
func resolvePath(pkg *types.Package, path string) (types.Object, bool) {
	kind, rest, ok := strings.Cut(path, ":")
	if !ok {
		return nil, false
	}
	scope := pkg.Scope()
	switch kind {
	case "F":
		if obj := scope.Lookup(rest); obj != nil {
			return obj, true
		}
	case "M":
		typeName, methodName, ok := strings.Cut(rest, ".")
		if !ok {
			return nil, false
		}
		tn, ok := scope.Lookup(typeName).(*types.TypeName)
		if !ok {
			return nil, false
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			return nil, false
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == methodName {
				return m, true
			}
		}
	case "D":
		typeName, fieldName, ok := strings.Cut(rest, ".")
		if !ok {
			return nil, false
		}
		tn, ok := scope.Lookup(typeName).(*types.TypeName)
		if !ok {
			return nil, false
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			return nil, false
		}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Name() == fieldName {
				return f, true
			}
		}
	}
	return nil, false
}

// namedOf unwraps pointers to reach a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
