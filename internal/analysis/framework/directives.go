package framework

// gclint directive comments (`//gclint:name arg...`) are the repo's
// annotation and suppression language. The index lives in the framework
// (rather than lintutil) so one instance is shared by every analyzer of
// a run: that sharing is what lets the framework audit suppressions
// afterwards — a suppression comment that no analyzer consulted-and-
// matched during the run suppresses nothing and is reported as stale.

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one //gclint:name comment occurrence.
type directive struct {
	name string
	arg  string
	pos  token.Pos
	used bool
}

// Directives indexes `//gclint:name` comments by file and line so
// analyzers can honor same-line suppressions like //gclint:orderok and
// read annotation arguments like //gclint:guardedby mu.
type Directives struct {
	fset   *token.FileSet
	byLine map[string]map[int][]*directive
}

// NewDirectives scans all comments in files for gclint directives.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, byLine: make(map[string]map[int][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, arg, ok := ParseDirectiveArg(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], &directive{name: name, arg: arg, pos: c.Pos()})
			}
		}
	}
	return d
}

// ParseDirective extracts the directive name from a `//gclint:name ...`
// comment (trailing explanation after whitespace is allowed).
func ParseDirective(comment string) (string, bool) {
	name, _, ok := ParseDirectiveArg(comment)
	return name, ok
}

// ParseDirectiveArg extracts the directive name and its first argument
// (the word after the name, e.g. the mutex in `//gclint:guardedby mu —
// reason`) from a `//gclint:name ...` comment.
func ParseDirectiveArg(comment string) (name, arg string, ok bool) {
	rest, ok := strings.CutPrefix(comment, "//gclint:")
	if !ok {
		return "", "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, rest = rest[:i], strings.TrimSpace(rest[i:])
	} else {
		name, rest = rest, ""
	}
	if name == "" {
		return "", "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return name, rest, true
}

// At reports whether the named directive appears on the same line as
// pos, and marks it used for the stale-suppression audit.
func (d *Directives) At(pos token.Pos, name string) bool {
	p := d.fset.Position(pos)
	found := false
	for _, dir := range d.byLine[p.Filename][p.Line] {
		if dir.name == name {
			dir.used = true
			found = true
		}
	}
	return found
}

// ArgAt returns the argument of the named directive on pos's line
// (marking it used), or ok=false when the directive is absent.
func (d *Directives) ArgAt(pos token.Pos, name string) (string, bool) {
	p := d.fset.Position(pos)
	for _, dir := range d.byLine[p.Filename][p.Line] {
		if dir.name == name {
			dir.used = true
			return dir.arg, true
		}
	}
	return "", false
}

// MarkUsed marks every occurrence of the named directive on pos's line
// as consulted without querying it — for analyzers that discover an
// annotation by other means (e.g. reading a field's doc comment) but
// still want the audit to know it is alive.
func (d *Directives) MarkUsed(pos token.Pos, name string) {
	d.At(pos, name)
}

// stale returns the positions and names of directives with one of the
// given names that were never matched by an At/ArgAt query, in file
// order. Directives in _test.go files are skipped — analyzers skip test
// files wholesale, so their suppressions are never queried.
func (d *Directives) stale(names map[string]bool) []*directive {
	var out []*directive
	for file, lines := range d.byLine {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		for _, dirs := range lines {
			for _, dir := range dirs {
				if !dir.used && names[dir.name] {
					out = append(out, dir)
				}
			}
		}
	}
	return out
}
