package atomicfield_test

import (
	"testing"

	"gccache/internal/analysis/atomicfield"
	"gccache/internal/analysis/framework/analysistest"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer,
		"atomicfixture", "atomicdep", "atomicuse")
}
