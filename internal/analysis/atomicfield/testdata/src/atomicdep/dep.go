// Package atomicdep declares a gauge whose field is maintained with
// sync/atomic; the atomicfield analyzer exports that as a fact for
// dependent packages.
package atomicdep

import "sync/atomic"

type Gauge struct {
	Val int64
}

func (g *Gauge) Add(d int64) {
	atomic.AddInt64(&g.Val, d)
}

func (g *Gauge) Load() int64 {
	return atomic.LoadInt64(&g.Val)
}
