// Package atomicuse accesses atomicdep.Gauge's field plainly; the
// atomic discipline arrives via an imported fact, not local evidence.
package atomicuse

import "atomicdep"

func Peek(g *atomicdep.Gauge) int64 {
	return g.Val // want `plain access to g\.Val, which is accessed with sync/atomic \(dep\.go:\d+\)`
}

func Fresh() *atomicdep.Gauge {
	g := &atomicdep.Gauge{}
	g.Val = 7 // under construction: exempt
	return g
}
