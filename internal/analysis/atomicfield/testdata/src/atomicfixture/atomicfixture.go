// Package atomicfixture exercises the atomicfield analyzer: mixed
// atomic/plain field access and //gclint:padded layout checks.
package atomicfixture

import "sync/atomic"

type counter struct {
	n     int64
	other int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) bad() int64 {
	return c.n // want `plain access to c\.n, which is accessed with sync/atomic`
}

func (c *counter) badWrite() {
	c.n = 0 // want `plain access to c\.n`
}

func (c *counter) fine() int64 {
	return c.other // never touched atomically; plain access is plain
}

func newCounter() *counter {
	c := &counter{}
	c.n = 0 // under construction: not shared, no report
	return c
}

func (c *counter) reset() {
	c.n = 0 //gclint:atomicok quiescent point: all workers joined before reset
}

// badRing is the SPSC ring layout with its padding dropped: producer
// and consumer indices land on shared cache lines and false-share.
//
//gclint:padded
type badRing struct {
	slots [][]byte
	mask  uint64
	head  atomic.Uint64 // want `atomic field head \(bytes 32-39\) shares a cache line with slots`
	tail  atomic.Uint64 // want `atomic field tail \(bytes 40-47\) shares a cache line with slots`
}

// goodRing keeps each hot index on a 64-byte line of its own.
//
//gclint:padded
type goodRing struct {
	slots [][]byte
	mask  uint64
	_     [32]byte
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64
	_     [56]byte
}

//gclint:padded
type mixed struct {
	stats uint64
	seq   atomic.Uint64 // want `atomic field seq \(bytes 8-15\) shares a cache line with stats`
	_     [48]byte
}
