// Package atomicfield implements the gclint analyzer that keeps the
// lock-free hot path honest about its atomics. It enforces two
// invariants:
//
//  1. Mixed atomic/plain access. A struct field that is accessed through
//     sync/atomic anywhere in the module (atomic.AddInt64(&s.n, 1), ...)
//     must be accessed through sync/atomic everywhere: one plain read or
//     write silently races with every atomic access and the race
//     detector only catches it when both sides actually collide. The
//     "this field is atomic" knowledge is exported as a modular fact, so
//     a plain access in a downstream package is flagged even though the
//     atomic access lives in a dependency.
//
//  2. `//gclint:padded` layout. A struct annotated //gclint:padded
//     declares that its atomic hot indices (fields of sync/atomic types,
//     or fields with atomic accesses) sit on cache lines of their own —
//     the false-sharing contract of the SPSC batchRing. The analyzer
//     recomputes field offsets with the type-checker's sizes and flags
//     any atomic field sharing a 64-byte line with another non-padding
//     field, so a teammate inserting "one harmless field" re-introduces
//     false sharing at lint time, not at benchmark time.
//
// Constructor bodies are exempt from the mixed-access check: writes
// through a function-local root (the value under construction, not yet
// shared) cannot race. A `//gclint:atomicok` comment on the offending
// line suppresses a report for accesses that are provably
// single-goroutine (e.g. a sequential reset between runs).
package atomicfield

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"gccache/internal/analysis/framework"
	"gccache/internal/analysis/lintutil"
)

// AtomicFact marks a struct field as accessed via sync/atomic somewhere
// in the package that exported the fact. At records one such site
// (file:line) for diagnostics in downstream packages.
type AtomicFact struct {
	At string
}

// AFact marks AtomicFact as a framework fact type.
func (*AtomicFact) AFact() {}

// Analyzer is the atomicfield analyzer.
var Analyzer = &framework.Analyzer{
	Name:         "atomicfield",
	Doc:          "flags plain accesses to struct fields that are accessed with sync/atomic elsewhere, and checks //gclint:padded cache-line layouts",
	Run:          run,
	FactTypes:    []framework.Fact{new(AtomicFact)},
	Suppressions: []string{"atomicok"},
}

const cacheLine = 64

func run(pass *framework.Pass) error {
	dirs := pass.Directives()

	// Pass 1: find sync/atomic calls whose address argument names a
	// struct field. Those fields are "atomic"; the selector nodes inside
	// the calls are sanctioned and skipped by pass 2.
	atomicAt := make(map[*types.Var]string)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := lintutil.Callee(pass.TypesInfo, call).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods on atomic.Int64 etc.: the type system already
				// forces every access through them; nothing to track.
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := lintutil.FieldObject(pass.TypesInfo, sel)
			if f == nil {
				return true
			}
			sanctioned[sel] = true
			if _, seen := atomicAt[f]; !seen {
				p := pass.Fset.Position(call.Pos())
				atomicAt[f] = fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
			}
			return true
		})
	}

	// Export facts for fields this package declares, so downstream
	// packages see the atomic discipline even when all atomic accesses
	// live here.
	for f, at := range atomicAt {
		if f.Pkg() == pass.Pkg {
			pass.ExportObjectFact(f, &AtomicFact{At: at})
		}
	}

	isAtomic := func(f *types.Var) (string, bool) {
		if at, ok := atomicAt[f]; ok {
			return at, true
		}
		var fact AtomicFact
		if pass.ImportObjectFact(f, &fact) {
			return fact.At, true
		}
		return "", false
	}

	// Pass 2: flag plain accesses to atomic fields, and check annotated
	// layouts.
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Body != nil {
					checkBody(pass, dirs, decl, sanctioned, isAtomic)
				}
			case *ast.GenDecl:
				if decl.Tok == token.TYPE {
					checkPadded(pass, dirs, decl, atomicAt)
				}
			}
		}
	}
	return nil
}

// checkBody flags selector accesses to atomic fields outside sanctioned
// atomic call arguments.
func checkBody(pass *framework.Pass, dirs *lintutil.Directives, fd *ast.FuncDecl, sanctioned map[*ast.SelectorExpr]bool, isAtomic func(*types.Var) (string, bool)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		f := lintutil.FieldObject(pass.TypesInfo, sel)
		if f == nil {
			return true
		}
		at, ok := isAtomic(f)
		if !ok {
			return true
		}
		if root := lintutil.RootObject(pass.TypesInfo, sel); root != nil &&
			lintutil.LocalTo(root, fd.Body.Pos(), fd.Body.End()) {
			return true // value under construction; not shared yet
		}
		if dirs.At(sel.Pos(), "atomicok") {
			return true
		}
		pass.Reportf(sel.Pos(), "plain access to %s, which is accessed with sync/atomic (%s); use the atomic API everywhere or the accesses race",
			exprName(sel), at)
		return true
	})
}

// checkPadded verifies //gclint:padded struct layouts: every atomic
// field must own its cache line(s), not shared with any other non-blank
// field.
func checkPadded(pass *framework.Pass, dirs *lintutil.Directives, gd *ast.GenDecl, atomicAt map[*types.Var]string) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		if lintutil.GenDeclDirective(gd, "padded") == nil &&
			lintutil.CommentDirective(ts.Doc, "padded") == nil {
			continue
		}
		tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(ts.Pos(), "//gclint:padded applies to struct types; %s is not a struct", ts.Name.Name)
			continue
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		if len(fields) == 0 {
			continue
		}
		offsets := pass.Sizes.Offsetsof(fields)
		// lines[i] is the half-open cache-line range [first, last] field i
		// occupies.
		type span struct{ first, last int64 }
		lines := make([]span, len(fields))
		for i, f := range fields {
			size := pass.Sizes.Sizeof(f.Type())
			end := offsets[i]
			if size > 0 {
				end = offsets[i] + size - 1
			}
			lines[i] = span{offsets[i] / cacheLine, end / cacheLine}
		}
		for i, f := range fields {
			if f.Name() == "_" || !isAtomicField(f, atomicAt) {
				continue
			}
			for j, g := range fields {
				if j == i || g.Name() == "_" {
					continue
				}
				// Atomic/atomic pairs report once, from the earlier field.
				if isAtomicField(g, atomicAt) && j < i {
					continue
				}
				if lines[i].first <= lines[j].last && lines[j].first <= lines[i].last {
					pos := fieldPos(pass, ts, f)
					if dirs.At(pos, "atomicok") {
						break
					}
					pass.Reportf(pos, "//gclint:padded struct %s: atomic field %s (bytes %d-%d) shares a cache line with %s (bytes %d-%d); insert padding so hot indices stay on distinct %d-byte lines",
						ts.Name.Name, f.Name(), offsets[i], offsets[i]+pass.Sizes.Sizeof(f.Type())-1,
						g.Name(), offsets[j], offsets[j]+pass.Sizes.Sizeof(g.Type())-1, cacheLine)
					break // one conflict per atomic field is enough signal
				}
			}
		}
	}
}

// isAtomicField reports whether f is a hot atomic index: declared with a
// sync/atomic type, or known to be accessed atomically.
func isAtomicField(f *types.Var, atomicAt map[*types.Var]string) bool {
	if _, ok := atomicAt[f]; ok {
		return true
	}
	t := f.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return true
		}
	}
	return false
}

// fieldPos locates the AST position of field f inside ts's struct type,
// falling back to the type spec itself.
func fieldPos(pass *framework.Pass, ts *ast.TypeSpec, f *types.Var) token.Pos {
	stAst, ok := ts.Type.(*ast.StructType)
	if !ok {
		return ts.Pos()
	}
	for _, fld := range stAst.Fields.List {
		for _, name := range fld.Names {
			if pass.TypesInfo.Defs[name] == f {
				return name.Pos()
			}
		}
	}
	return ts.Pos()
}

// exprName renders a compact source form of a selector chain.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprName(e.X)
	case *ast.CallExpr:
		return exprName(e.Fun) + "(...)"
	default:
		return "field"
	}
}
