// Package guardfixture exercises the guardedby analyzer.
package guardfixture

import "sync"

type store struct {
	mu    sync.Mutex
	items map[string]int //gclint:guardedby mu
	hits  int            //gclint:guardedby mu
}

func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	return s.items[k]
}

func (s *store) bad(k string) int {
	return s.items[k] // want `access to s\.items outside s\.mu\.Lock\(\)`
}

func (s *store) badAfterUnlock(k string) int {
	s.mu.Lock()
	v := s.items[k]
	s.mu.Unlock()
	s.hits++ // want `access to s\.hits outside s\.mu\.Lock\(\)`
	return v
}

func newStore() *store {
	s := &store{}
	s.items = make(map[string]int) // under construction: exempt
	return s
}

func (s *store) drainLocked() int {
	return s.hits //gclint:guardok callers hold mu; documented on the method
}

type table struct {
	rw   sync.RWMutex
	data []int //gclint:guardedby rw
}

func (t *table) read(i int) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.data[i]
}

func (t *table) badLen() int {
	return len(t.data) // want `access to t\.data outside t\.rw\.Lock\(\)`
}

type badAnn struct {
	mu sync.Mutex
	x  int //gclint:guardedby lock // want `no sibling sync\.Mutex or sync\.RWMutex field named lock`
}
