// Package guarduse accesses guarddep.Box's guarded field; the guard
// obligation arrives via an imported fact.
package guarduse

import "guarddep"

func Steal(b *guarddep.Box) int {
	return b.Val // want `access to b\.Val outside b\.Mu\.Lock\(\)`
}

func Polite(b *guarddep.Box) int {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.Val
}
