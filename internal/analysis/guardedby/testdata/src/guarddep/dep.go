// Package guarddep declares a mutex-guarded box; the annotation crosses
// to dependents as a fact.
package guarddep

import "sync"

type Box struct {
	Mu  sync.Mutex
	Val int //gclint:guardedby Mu
}

func (b *Box) Get() int {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.Val
}
