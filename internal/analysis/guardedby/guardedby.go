// Package guardedby implements the gclint analyzer for mutex-guarded
// struct fields. A field annotated with a `//gclint:guardedby mu`
// comment (in its doc comment or on its line) declares that every
// access must happen while the sibling mutex field mu is held. The
// analyzer checks each access lexically: within the enclosing function
// it counts Lock/RLock and Unlock/RUnlock calls on the same container's
// mutex that precede the access (deferred unlocks are ignored — they
// run at function exit, so the lock lexically covers the rest of the
// body), and flags accesses at lock depth zero.
//
// The annotation is exported as a modular fact, so a package accessing
// a guarded field of a dependency's struct is held to the same
// discipline.
//
// Exemptions and limits:
//
//   - Constructor bodies: accesses through a function-local root (the
//     value under construction) are skipped — no other goroutine can
//     hold a reference yet.
//   - The analysis is lexical, not path-sensitive: locking in one branch
//     and accessing in another fools it in both directions. It is a
//     tripwire for the common shapes (forgot to lock, added a field to
//     a locked struct, early return before Lock), not a race prover.
//   - Aliasing hides accesses: `sh := &s.shards[i]; sh.c.Len()` roots at
//     the local sh and is exempted. Keep guarded accesses spelled
//     through the shared value.
//
// A `//gclint:guardok` comment on the access line vouches for accesses
// synchronized by other means (e.g. a helper documented as
// "caller holds mu", or a quiescent point where no readers exist).
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"gccache/internal/analysis/framework"
	"gccache/internal/analysis/lintutil"
)

// GuardedFact records that a struct field is guarded by the sibling
// mutex field named Mutex.
type GuardedFact struct {
	Mutex string
}

// AFact marks GuardedFact as a framework fact type.
func (*GuardedFact) AFact() {}

// Analyzer is the guardedby analyzer.
var Analyzer = &framework.Analyzer{
	Name:         "guardedby",
	Doc:          "checks that fields annotated //gclint:guardedby mu are accessed only while mu is held",
	Run:          run,
	FactTypes:    []framework.Fact{new(GuardedFact)},
	Suppressions: []string{"guardok"},
}

func run(pass *framework.Pass) error {
	dirs := pass.Directives()

	// Collect annotations and export them as facts.
	guarded := make(map[*types.Var]string)
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				stAst, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				collectAnnotations(pass, stAst, guarded)
			}
		}
	}
	for f, mu := range guarded {
		if f.Pkg() == pass.Pkg {
			pass.ExportObjectFact(f, &GuardedFact{Mutex: mu})
		}
	}

	guardOf := func(f *types.Var) (string, bool) {
		if mu, ok := guarded[f]; ok {
			return mu, true
		}
		var fact GuardedFact
		if pass.ImportObjectFact(f, &fact) {
			return fact.Mutex, true
		}
		return "", false
	}

	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, dirs, fd, guardOf)
			}
		}
	}
	return nil
}

// collectAnnotations records //gclint:guardedby fields of one struct,
// validating that the named mutex is a sibling sync.Mutex/RWMutex.
func collectAnnotations(pass *framework.Pass, stAst *ast.StructType, guarded map[*types.Var]string) {
	for _, fld := range stAst.Fields.List {
		mu, ok := lintutil.FieldDirectiveArg(fld, "guardedby")
		if !ok {
			continue
		}
		if mu == "" {
			pass.Reportf(fld.Pos(), "//gclint:guardedby needs the sibling mutex field name as argument")
			continue
		}
		if !hasMutexSibling(pass, stAst, mu) {
			pass.Reportf(fld.Pos(), "//gclint:guardedby %s: no sibling sync.Mutex or sync.RWMutex field named %s in this struct", mu, mu)
			continue
		}
		for _, name := range fld.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				guarded[v] = mu
			}
		}
	}
}

// hasMutexSibling reports whether the struct literally declares a field
// named mu whose type is sync.Mutex or sync.RWMutex (possibly a
// pointer).
func hasMutexSibling(pass *framework.Pass, stAst *ast.StructType, mu string) bool {
	for _, fld := range stAst.Fields.List {
		for _, name := range fld.Names {
			if name.Name != mu {
				continue
			}
			t := pass.TypesInfo.TypeOf(fld.Type)
			return isMutexType(t)
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockKey identifies one mutex instance lexically: the root object of
// the container expression plus the mutex field name. s.mu.Lock() and an
// access to s.c (guarded by mu) share the key {s, "mu"}; so do
// s.shards[i].mu and s.shards[i].c — index expressions collapse onto the
// root, trading per-element precision for zero false positives on the
// shard pattern.
type lockKey struct {
	root  types.Object
	mutex string
}

type lockEvent struct {
	pos   token.Pos
	key   lockKey
	delta int
}

// checkFunc performs the lexical lock-region analysis for one function.
func checkFunc(pass *framework.Pass, dirs *lintutil.Directives, fd *ast.FuncDecl, guardOf func(*types.Var) (string, bool)) {
	info := pass.TypesInfo

	// Deferred calls release at function exit; their unlocks must not
	// close the lexical region.
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || deferred[call] {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var delta int
		switch sel.Sel.Name {
		case "Lock", "RLock":
			delta = +1
		case "Unlock", "RUnlock":
			delta = -1
		default:
			return true
		}
		fn, ok := lintutil.Callee(info, call).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		key, ok := mutexKey(info, sel.X)
		if !ok {
			return true
		}
		events = append(events, lockEvent{pos: call.Pos(), key: key, delta: delta})
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := func(key lockKey, pos token.Pos) bool {
		depth := 0
		for _, e := range events {
			if e.pos < pos && e.key == key {
				depth += e.delta
			}
		}
		return depth > 0
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f := lintutil.FieldObject(info, sel)
		if f == nil {
			return true
		}
		mu, ok := guardOf(f)
		if !ok {
			return true
		}
		root := lintutil.RootObject(info, sel.X)
		if root == nil {
			return true // cannot name the container; stay quiet
		}
		if lintutil.LocalTo(root, fd.Body.Pos(), fd.Body.End()) {
			return true // under construction or locally aliased
		}
		if held(lockKey{root: root, mutex: mu}, sel.Pos()) {
			return true
		}
		if dirs.At(sel.Pos(), "guardok") {
			return true
		}
		pass.Reportf(sel.Pos(), "access to %s outside %s.%s.Lock(); the field is annotated //gclint:guardedby %s",
			exprName(sel), root.Name(), mu, mu)
		return true
	})
}

// mutexKey derives the lock key from the receiver expression of a
// Lock/Unlock call: `s.mu` -> {root(s), "mu"}, bare `mu` -> {mu, "mu"}.
func mutexKey(info *types.Info, recv ast.Expr) (lockKey, bool) {
	switch e := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		root := lintutil.RootObject(info, e.X)
		if root == nil {
			return lockKey{}, false
		}
		return lockKey{root: root, mutex: e.Sel.Name}, true
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return lockKey{}, false
		}
		return lockKey{root: obj, mutex: e.Name}, true
	}
	return lockKey{}, false
}

// exprName renders a compact source form of a selector chain.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprName(e.X)
	case *ast.CallExpr:
		return exprName(e.Fun) + "(...)"
	default:
		return "field"
	}
}
