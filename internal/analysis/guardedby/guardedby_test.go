package guardedby_test

import (
	"testing"

	"gccache/internal/analysis/framework/analysistest"
	"gccache/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer,
		"guardfixture", "guarddep", "guarduse")
}
