package reseedfixture

import "math/rand"

// Reconstructs assigns a fresh generator — the canonical Reseed.
type Reconstructs struct {
	rng *rand.Rand
}

func (c *Reconstructs) Access(it uint64) bool { return c.rng.Intn(2) == 0 }

func (c *Reconstructs) Reseed(seed int64) {
	c.rng = rand.New(rand.NewSource(seed))
}

// SeedsInPlace re-seeds the existing generator via its Seed method,
// which restarts the stream just as well.
type SeedsInPlace struct {
	rng *rand.Rand
}

func (c *SeedsInPlace) Access(it uint64) bool { return c.rng.Intn(2) == 0 }

func (c *SeedsInPlace) Reseed(seed int64) {
	c.rng.Seed(seed)
}

// NotACache holds a generator but has no Access method — workload
// generators and adversaries are not pooled by sweep engines, so no
// Reseed is demanded.
type NotACache struct {
	rng *rand.Rand
}

func (g *NotACache) Next() uint64 { return uint64(g.rng.Int63()) }

// Deterministic has an Access method but no rng field: nothing to
// reseed.
type Deterministic struct {
	items []uint64
}

func (c *Deterministic) Access(it uint64) bool { return len(c.items) > 0 }
