// Package reseedfixture exercises the reseed analyzer: cache-shaped
// structs (ones with an Access method) holding a *rand.Rand must
// implement Reseed(int64) that reconstructs the generator.
package reseedfixture

import "math/rand"

// NoReseed is a randomized cache with no Reseed method at all: a pooled
// sweep worker could never restart its coin flips.
type NoReseed struct { // want `NoReseed holds \*rand.Rand field rng but has no Reseed\(int64\) method`
	rng   *rand.Rand
	items []uint64
}

func (c *NoReseed) Access(it uint64) bool { return c.rng.Intn(2) == 0 }

// WrongSignature declares Reseed with the wrong parameter type.
type WrongSignature struct {
	rng *rand.Rand
}

func (c *WrongSignature) Access(it uint64) bool { return false }

func (c *WrongSignature) Reseed(seed int) { // want `WrongSignature.Reseed has signature`
	c.rng = rand.New(rand.NewSource(int64(seed)))
}

// StaleReseed has the right signature but never touches the rng, so
// reuse after Reseed still continues the old random stream.
type StaleReseed struct {
	rng   *rand.Rand
	seed  int64
	items []uint64
}

func (c *StaleReseed) Access(it uint64) bool { return c.rng.Intn(2) == 0 }

func (c *StaleReseed) Reseed(seed int64) { // want `StaleReseed.Reseed does not reconstruct the rng`
	c.seed = seed
	c.items = c.items[:0]
}
