// Package reseed implements the gclint analyzer that keeps randomized
// policies safe to pool. The Sweep engine reuses one cache instance per
// worker across many grid points; a policy holding a *rand.Rand that
// cannot be re-seeded silently makes results depend on which worker
// served which point. The runtime half of this contract is the
// conformance sweep (Reseed+Reset must equal fresh construction); this
// analyzer enforces the static half:
//
//   - every cache-shaped struct (one with an Access method) holding a
//     *math/rand.Rand field must declare a Reseed(int64) method, and
//   - the Reseed body must actually reconstruct the generator: assign
//     the rng field from rand.New(...)/rand.NewSource(...), or call its
//     Seed method.
package reseed

import (
	"go/ast"
	"go/types"
	"strings"

	"gccache/internal/analysis/framework"
	"gccache/internal/analysis/lintutil"
)

// Analyzer is the reseed analyzer.
var Analyzer = &framework.Analyzer{
	Name: "reseed",
	Doc:  "requires Reseed(int64) reconstructing the rng on cache structs holding *rand.Rand",
	Run:  run,
}

func run(pass *framework.Pass) error {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if strings.HasSuffix(pass.Fset.Position(tn.Pos()).Filename, "_test.go") {
			continue // test helpers are not pooled by sweep engines
		}
		randFields := randRandFields(st)
		if len(randFields) == 0 || !hasMethod(named, "Access") {
			continue
		}
		checkType(pass, tn, named, randFields)
	}
	return nil
}

// randRandFields returns the names of direct struct fields typed
// *math/rand.Rand or *math/rand/v2.Rand.
func randRandFields(st *types.Struct) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		ptr, ok := f.Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Rand" && obj.Pkg() != nil &&
			(obj.Pkg().Path() == "math/rand" || obj.Pkg().Path() == "math/rand/v2") {
			out = append(out, f.Name())
		}
	}
	return out
}

// hasMethod reports whether *T (hence also T) has a method of that name,
// including promoted methods.
func hasMethod(named *types.Named, name string) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

func checkType(pass *framework.Pass, tn *types.TypeName, named *types.Named, randFields []string) {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, pass.Pkg, "Reseed")
	fn, ok := obj.(*types.Func)
	if !ok {
		pass.Reportf(tn.Pos(), "%s holds *rand.Rand field %s but has no Reseed(int64) method; pooled sweep workers cannot restart its coin flips",
			tn.Name(), strings.Join(randFields, ", "))
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 0 ||
		!types.Identical(sig.Params().At(0).Type(), types.Typ[types.Int64]) {
		pass.Reportf(fn.Pos(), "%s.Reseed has signature %s; the Reseeder contract requires Reseed(int64)",
			tn.Name(), types.TypeString(sig, types.RelativeTo(pass.Pkg)))
		return
	}
	if fn.Pkg() != pass.Pkg {
		return // promoted from another package; its home package is checked there
	}
	decl := findMethodDecl(pass, named.Obj().Name(), "Reseed")
	if decl == nil || decl.Body == nil {
		return
	}
	if !reconstructsRNG(pass.TypesInfo, decl, randFields) {
		pass.Reportf(decl.Pos(), "%s.Reseed does not reconstruct the rng: assign %s from rand.New(rand.NewSource(seed)) (or call its Seed method)",
			tn.Name(), strings.Join(randFields, ", "))
	}
}

// findMethodDecl locates the FuncDecl for typeName's method in the
// pass's files.
func findMethodDecl(pass *framework.Pass, typeName, method string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != method || len(fd.Recv.List) == 0 {
				continue
			}
			if recvTypeName(fd.Recv.List[0].Type) == typeName {
				return fd
			}
		}
	}
	return nil
}

// recvTypeName extracts the base type name from a receiver type
// expression (T, *T, T[P], *T[P]).
func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	}
	return ""
}

// reconstructsRNG reports whether the Reseed body either assigns one of
// the rand fields from a math/rand constructor call, or calls Seed on
// one of them.
func reconstructsRNG(info *types.Info, decl *ast.FuncDecl, randFields []string) bool {
	isRandField := func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		for _, f := range randFields {
			if sel.Sel.Name == f {
				return true
			}
		}
		return false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if !isRandField(lhs) || i >= len(n.Rhs) {
					continue
				}
				// RHS must involve a math/rand constructor somewhere
				// (rand.New(rand.NewSource(seed)), rand.New(src), ...).
				ast.Inspect(n.Rhs[i], func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if isRandConstructor(info, call) {
							found = true
						}
					}
					return !found
				})
			}
		case *ast.CallExpr:
			// c.rng.Seed(seed): method Seed on the rand field.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Seed" && isRandField(sel.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isRandConstructor reports whether call invokes a package-level
// math/rand constructor (New, NewSource, NewPCG, NewChaCha8, ...).
func isRandConstructor(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := lintutil.Callee(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	return strings.HasPrefix(fn.Name(), "New")
}
