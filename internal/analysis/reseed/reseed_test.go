package reseed_test

import (
	"testing"

	"gccache/internal/analysis/framework/analysistest"
	"gccache/internal/analysis/reseed"
)

func TestReseed(t *testing.T) {
	analysistest.Run(t, "testdata", reseed.Analyzer, "reseedfixture")
}
