package hotfixture

import "fmt"

// The probe-emission fixtures mirror internal/obs: event is a plain
// value struct, probe's Observe takes the concrete event type (never
// interface{}), and every emission site is nil-guarded. This is the
// sanctioned zero-cost-when-nil observability shape.

type event struct {
	kind uint8
	item uint64
	n    int32
}

type probe interface{ observe(e event) }

type probedCache struct {
	cache
	probe probe
}

// probeEmit is the sanctioned pattern: one nil check, a value-struct
// event, a concrete-typed method parameter — no boxing, no allocation,
// no diagnostics.
//
//gclint:hotpath
func (c *probedCache) probeEmit(it uint64) bool {
	if c.probe != nil {
		c.probe.observe(event{kind: 1, item: it})
	}
	return true
}

// probeEmitLoop fans per-item events from a reused field buffer —
// ranging over the field and emitting value structs stays clean.
//
//gclint:hotpath
func (c *probedCache) probeEmitLoop(it uint64) {
	if c.probe == nil {
		return
	}
	c.probe.observe(event{kind: 2, item: it, n: int32(len(c.loaded))})
	for _, x := range c.loaded {
		c.probe.observe(event{kind: 3, item: x})
	}
}

// probeFormats builds a human-readable message per event — rendering
// belongs in the probe (the paid path), never at the emission site.
//
//gclint:hotpath
func (c *probedCache) probeFormats(it uint64) {
	if c.probe != nil {
		_ = fmt.Sprintf("hit item %d", it) // want `hot path calls fmt.Sprintf`
		c.probe.observe(event{kind: 1, item: it})
	}
}

// probeDeferredEmit queues a capturing closure instead of emitting the
// event inline — the closure and its captures are heap-allocated per
// access.
//
//gclint:hotpath
func (c *probedCache) probeDeferredEmit(it uint64, queue *[]func()) {
	if c.probe != nil {
		*queue = append(*queue, func() { // want `hot path closure captures c`
			c.probe.observe(event{kind: 1, item: it})
		})
	}
}
