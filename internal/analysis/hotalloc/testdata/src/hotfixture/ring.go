package hotfixture

import "sync/atomic"

// ring mirrors the serving engine's SPSC batch ring: fixed slot array,
// monotonic atomic head/tail, mask indexing. Its push/pop only store
// and load through pre-sized arrays, so the analyzer must accept them
// clean — this fixture pins that the real ring's //gclint:hotpath
// annotations stay warning-free.
type ring struct {
	slots [][]uint64
	mask  uint64
	head  atomic.Uint64
	tail  atomic.Uint64
}

// ringPush is the sanctioned shape: slot store + atomic index bump,
// zero allocation.
//
//gclint:hotpath
func (r *ring) ringPush(b []uint64) bool {
	t := r.tail.Load()
	if t-r.head.Load() > r.mask {
		return false
	}
	r.slots[t&r.mask] = b
	r.tail.Store(t + 1)
	return true
}

// ringPop is the consumer side of the same hand-off.
//
//gclint:hotpath
func (r *ring) ringPop() ([]uint64, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil, false
	}
	b := r.slots[h&r.mask]
	r.head.Store(h + 1)
	return b, true
}

// ringPushCopy is the anti-pattern: cloning the batch into a fresh
// slice on every push defeats the engine's buffer recycling.
//
//gclint:hotpath
func (r *ring) ringPushCopy(b []uint64) bool {
	t := r.tail.Load()
	if t-r.head.Load() > r.mask {
		return false
	}
	c := make([]uint64, len(b)) // want `hot path allocates with make`
	copy(c, b)
	r.slots[t&r.mask] = c
	r.tail.Store(t + 1)
	return true
}

// ringDrain accumulates popped batches into a function-local slice —
// the per-pop growth allocation the free-ring recycling exists to
// avoid.
//
//gclint:hotpath
func (r *ring) ringDrain() int {
	var drained [][]uint64
	for {
		b, ok := r.ringPop()
		if !ok {
			break
		}
		drained = append(drained, b) // want `hot path appends to function-local slice drained`
	}
	return len(drained)
}
