package hotfixture

import "fmt"

type access struct {
	hit    bool
	loaded []uint64
}

// unannotated contains every allocating construct but carries no
// hotpath directive, so nothing is reported.
func unannotated(it uint64) string {
	_ = make([]uint64, 4)
	_ = &cache{}
	_ = []uint64{it}
	return fmt.Sprintf("%d", it)
}

// fieldAppend reuses caller-owned buffers held in struct fields — the
// repo's sanctioned hot-path shape (reset via [:0], amortized zero
// allocation).
//
//gclint:hotpath
func (c *cache) fieldAppend(it uint64) access {
	c.loaded = c.loaded[:0]
	c.loaded = append(c.loaded, it)
	return access{loaded: c.loaded}
}

// valueLiteral returns a plain value struct literal: stack-allocated,
// not flagged (only &T{...} and map/slice literals are).
//
//gclint:hotpath
func valueLiteral(hit bool) access {
	return access{hit: hit}
}

// panicPath may format its panic message: panic arguments are cold by
// construction and exempt.
//
//gclint:hotpath
func panicPath(it uint64, universe int) uint64 {
	if it >= uint64(universe) {
		panic(fmt.Sprintf("item %d outside universe %d", it, universe))
	}
	return it
}

// aliasedScratch appends through a local that aliases a reused field
// buffer — no growth allocation in steady state.
//
//gclint:hotpath
func (c *cache) aliasedScratch(items []uint64) int {
	buf := c.scratch[:0]
	for _, it := range items {
		buf = append(buf, it)
	}
	c.scratch = buf
	return len(buf)
}

// paramAppend appends to a caller-owned parameter slice, the
// AppendItemsOf idiom.
//
//gclint:hotpath
func paramAppend(dst []uint64, it uint64) []uint64 {
	dst = append(dst, it)
	return dst
}

// suppressed demonstrates //gclint:allowalloc for a provably cold
// branch.
//
//gclint:hotpath
func suppressed(n int) []uint64 {
	if n > 1<<20 {
		return make([]uint64, 0) //gclint:allowalloc cold fallback for oversized universes
	}
	return nil
}
