package hotfixture

// The shadow-cache shape (internal/autotune): a dense candidate replica
// whose Access runs on every request of the live stream, so the whole
// struct is preallocated in the constructor and the access path reuses
// epoch-stamped arrays and field-owned scratch. This fixture pins the
// idioms hotalloc must accept — and the per-window tempting shortcuts
// it must reject.

type shadowShape struct {
	// membership bitset + dense LRU links, sized once at construction.
	bits []uint64
	next []int32
	prev []int32
	// epoch-stamped working-set presence: "clearing" is epoch++ rather
	// than reallocating or zeroing per window.
	seenEpoch []uint32
	epoch     uint32
	// victim scratch, reset via [:0]; a third slice exists in the real
	// code because admission still aliases the second during eviction.
	want    []uint64
	evict   []uint64
	scratch []uint64
	misses  uint64
}

// shadowAccess is the sanctioned steady-state shape: bit tests, dense
// link surgery through field slices, epoch-stamp working-set updates,
// and scratch reuse — zero allocating constructs.
//
//gclint:hotpath
func (s *shadowShape) shadowAccess(it uint64, block uint64) bool {
	if s.seenEpoch[it] != s.epoch {
		s.seenEpoch[it] = s.epoch
	}
	w := block >> 6
	if s.bits[w]&(1<<(block&63)) != 0 {
		return true
	}
	s.misses++
	s.scratch = s.scratch[:0]
	s.scratch = append(s.scratch, it)
	s.next[it] = s.prev[it]
	return false
}

// shadowWindow rolls the window clock: epoch-stamped reset, no per
// window reallocation.
//
//gclint:hotpath
func (s *shadowShape) shadowWindow() uint64 {
	s.epoch++
	m := s.misses
	s.misses = 0
	return m
}

// shadowWindowRealloc is the tempting per-window shortcut: rebuilding
// the presence set with make. One window is 4096 requests; this turns
// the "zero-alloc alongside the live policy" guarantee into an
// allocation per window per candidate.
//
//gclint:hotpath
func (s *shadowShape) shadowWindowRealloc(universe int) {
	s.seenEpoch = make([]uint32, universe) // want `hot path allocates with make`
	s.epoch = 0
}

// shadowEvictLocal grows a fresh victim list per access instead of
// reusing the field-owned scratch.
//
//gclint:hotpath
func (s *shadowShape) shadowEvictLocal(block uint64) int {
	var victims []uint64
	for it := block * 4; it < block*4+4; it++ {
		victims = append(victims, it) // want `hot path appends to function-local slice victims`
	}
	return len(victims)
}
