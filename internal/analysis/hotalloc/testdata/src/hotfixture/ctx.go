package hotfixture

import "context"

// replayCtx stands in for the cancellation-aware replay entry points
// (cachesim.RunCtx and friends): a hot loop that takes its context as
// an interface parameter.
func replayCtx(ctx context.Context) error { return ctx.Err() }

// stampedCtx is a concrete context wrapper, the shape that tempts
// callers into per-access boxing.
type stampedCtx struct{ context.Context }

// ctxArgBoxing passes a concrete context wrapper to an interface
// parameter: the compiler boxes it at every call, which is exactly the
// allocation the cancellation layer must keep off the replay path.
//
//gclint:hotpath
func ctxArgBoxing(c stampedCtx) error {
	return replayCtx(c) // want `hot path boxes argument into interface parameter context.Context`
}

// ctxValueBoxing boxes the lookup key into Value's any parameter.
//
//gclint:hotpath
func ctxValueBoxing(ctx context.Context, epoch int) any {
	return ctx.Value(epoch) // want `hot path boxes argument into interface parameter`
}

// ctxPolling is the sanctioned cancellation shape: the context arrives
// already as an interface and the loop only polls Err on a stride —
// no boxing, nothing to report.
//
//gclint:hotpath
func ctxPolling(ctx context.Context, accesses int) error {
	for i := 0; i < accesses; i++ {
		if i&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}
