// Package hotfixture exercises the hotalloc analyzer: allocating
// constructs inside functions annotated //gclint:hotpath.
package hotfixture

import "fmt"

type cache struct {
	loaded  []uint64
	scratch []uint64
}

// fmtInHotPath formats on every call.
//
//gclint:hotpath
func fmtInHotPath(it uint64) string {
	return fmt.Sprintf("item-%d", it) // want `hot path calls fmt.Sprintf`
}

// makeInHotPath allocates fresh scratch per call.
//
//gclint:hotpath
func makeInHotPath(n int) int {
	seen := make(map[uint64]bool, n) // want `hot path allocates with make`
	return len(seen)
}

// localAppend grows a fresh slice on every call.
//
//gclint:hotpath
func localAppend(items []uint64) int {
	var evicted []uint64
	for _, it := range items {
		evicted = append(evicted, it) // want `hot path appends to function-local slice evicted`
	}
	return len(evicted)
}

// literals allocates map and slice literals and a pointer struct.
//
//gclint:hotpath
func literals(it uint64) int {
	weights := map[uint64]int{it: 1} // want `hot path allocates a map literal`
	ids := []uint64{it}              // want `hot path allocates a slice literal`
	c := &cache{}                    // want `hot path allocates &cache\{...\}`
	return len(weights) + len(ids) + len(c.loaded)
}

// capturingClosure heap-allocates the closure and its captures.
//
//gclint:hotpath
func capturingClosure(items []uint64) func() int {
	total := 0
	return func() int { // want `hot path closure captures total`
		total += len(items)
		return total
	}
}

type observer interface{ observe(uint64) }

func sink(o observer) { o.observe(0) }

type concrete struct{ n uint64 }

func (c concrete) observe(u uint64) { c.n = u }

// boxing passes a concrete value to an interface parameter.
//
//gclint:hotpath
func boxing(c concrete) {
	sink(c) // want `hot path boxes argument into interface parameter observer`
}
