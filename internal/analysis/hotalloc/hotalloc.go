// Package hotalloc implements the gclint analyzer that statically
// enforces the zero-allocation contract on functions annotated with a
// `//gclint:hotpath` doc comment — the static twin of the repo's
// testing.AllocsPerRun checks on the dense replay path.
//
// Inside an annotated function it flags the constructs that allocate (or
// defeat escape analysis) on every call:
//
//   - calls into package fmt (formatting always allocates);
//   - map and slice composite literals, &struct{...} literals, and
//     make/new calls;
//   - append whose destination is a slice variable local to the
//     function — growth allocates per call, unlike the caller-owned
//     reused buffers held in struct fields or parameters;
//   - closures that capture variables (the closure and its captures are
//     heap-allocated);
//   - interface boxing at call sites: a concrete-typed argument passed
//     to an interface-typed parameter.
//
// Arguments of panic(...) are exempt — panic paths are cold by
// construction, which is why hot-path bounds checks may format their
// panic messages. A `//gclint:allowalloc` comment on the offending line
// suppresses the report (use for provably cold branches).
//
// This analyzer checks only the annotated function's own body; its
// sibling hotalloctrans closes the one-call-deep hole with "allocates"
// facts over the call graph, reusing ForEachAlloc below.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"gccache/internal/analysis/framework"
	"gccache/internal/analysis/lintutil"
)

// Analyzer is the hotalloc analyzer.
var Analyzer = &framework.Analyzer{
	Name:         "hotalloc",
	Doc:          "forbids allocating constructs in functions annotated //gclint:hotpath",
	Run:          run,
	Suppressions: []string{"allowalloc"},
}

// Alloc describes one allocating construct found in a function body.
type Alloc struct {
	Pos token.Pos
	// Message is the full hot-path diagnostic.
	Message string
	// Short is a compact reason ("make", "map literal", "fmt.Sprintf
	// call") used in transitive fact chains.
	Short string
}

func run(pass *framework.Pass) error {
	dirs := pass.Directives()
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !lintutil.HasFuncDirective(fd, "hotpath") {
				continue
			}
			ForEachAlloc(pass, dirs, fd, true, func(a Alloc) {
				pass.Reportf(a.Pos, "%s", a.Message)
			})
		}
	}
	return nil
}

// ForEachAlloc walks fd's body and calls emit for every allocating
// construct that is not suppressed by a same-line //gclint:allowalloc
// directive. Interface-boxing call sites — the most escape-analysis-
// dependent construct — are included only when boxing is true: the
// direct hotpath check wants them, while the transitive "allocates"
// facts exclude them to keep module-wide facts low-noise.
func ForEachAlloc(pass *framework.Pass, dirs *lintutil.Directives, fd *ast.FuncDecl, boxing bool, emit func(Alloc)) {
	report := func(pos token.Pos, short, format string, args ...any) {
		if dirs.At(pos, "allowalloc") {
			return
		}
		emit(Alloc{Pos: pos, Short: short, Message: fmt.Sprintf(format, args...)})
	}
	info := pass.TypesInfo
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if lintutil.IsBuiltin(info, n, "panic") {
					// Panic arguments are cold; don't descend.
					return false
				}
				checkCall(pass, fd, n, boxing, report)
			case *ast.CompositeLit:
				checkCompositeLit(pass, n, false, report)
				return true
			case *ast.UnaryExpr:
				if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
					checkCompositeLit(pass, cl, true, report)
					// The literal itself was handled; walk its elements.
					for _, e := range cl.Elts {
						walk(e)
					}
					return false
				}
			case *ast.FuncLit:
				checkClosure(pass, fd, n, report)
				return true
			}
			return true
		})
	}
	walk(fd.Body)
}

// reportFunc receives candidate diagnostics; suppression is applied
// before it is called.
type reportFunc func(pos token.Pos, short, format string, args ...any)

func checkCall(pass *framework.Pass, fd *ast.FuncDecl, call *ast.CallExpr, boxing bool, report reportFunc) {
	info := pass.TypesInfo

	if fn, ok := lintutil.Callee(info, call).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt."+fn.Name()+" call", "hot path calls fmt.%s, which allocates on every call", fn.Name())
		return
	}
	if lintutil.IsBuiltin(info, call, "make") || lintutil.IsBuiltin(info, call, "new") {
		name := ast.Unparen(call.Fun).(*ast.Ident).Name
		report(call.Pos(), name, "hot path allocates with %s; hoist the allocation into the constructor or a reused buffer", name)
		return
	}
	if lintutil.IsBuiltin(info, call, "append") {
		checkAppend(pass, fd, call, report)
		return
	}
	if boxing {
		checkBoxing(pass, call, report)
	}
}

// checkAppend flags append whose destination slice is local to the hot
// function: a fresh slice grows (allocates) on every call, whereas
// fields and parameters are caller-owned buffers reused across calls.
func checkAppend(pass *framework.Pass, fd *ast.FuncDecl, call *ast.CallExpr, report reportFunc) {
	if len(call.Args) == 0 {
		return
	}
	dest, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return // selector (c.buf) or index destination: caller-owned reuse
	}
	obj := pass.TypesInfo.Uses[dest]
	if obj == nil {
		return
	}
	if isParam(fd, pass.TypesInfo, obj) {
		return
	}
	if !lintutil.DeclaredOutside(obj, fd.Body.Pos(), fd.Body.End()) {
		// Local variable — unless it aliases a reused buffer (e.g.
		// `buf := c.scratch[:0]`), growth allocates per call.
		if aliasesReusedBuffer(fd, obj) {
			return
		}
		report(call.Pos(), "append to local "+obj.Name(),
			"hot path appends to function-local slice %s, which allocates as it grows; use a struct-field scratch buffer", obj.Name())
	}
}

// isParam reports whether obj is one of fd's parameters, results, or its
// receiver.
func isParam(fd *ast.FuncDecl, info *types.Info, obj types.Object) bool {
	fields := []*ast.FieldList{fd.Type.Params, fd.Type.Results, fd.Recv}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if info.Defs[name] == obj {
					return true
				}
			}
		}
	}
	return false
}

// aliasesReusedBuffer reports whether the local slice obj is initialized
// from a slice expression over non-local storage (`buf := c.scratch[:0]`)
// — the idiomatic reuse pattern, which does not allocate.
func aliasesReusedBuffer(fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Pos() != obj.Pos() || i >= len(as.Rhs) {
				continue
			}
			if sl, ok := ast.Unparen(as.Rhs[i]).(*ast.SliceExpr); ok {
				if _, isLocal := ast.Unparen(sl.X).(*ast.Ident); !isLocal {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// checkBoxing flags concrete-typed arguments passed to interface-typed
// parameters: the compiler boxes the value, allocating unless escape
// analysis can prove otherwise.
func checkBoxing(pass *framework.Pass, call *ast.CallExpr, report reportFunc) {
	info := pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: T(x). Flag interface conversions of concretes.
		if len(call.Args) == 1 && isInterface(tv.Type) && !argIsInterfaceOrNil(info, call.Args[0]) {
			report(call.Pos(), "interface conversion", "hot path boxes a value into interface %s",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		}
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing an existing slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !isInterface(pt) || argIsInterfaceOrNil(info, arg) {
			continue
		}
		report(arg.Pos(), "interface boxing", "hot path boxes argument into interface parameter %s of %s; use a concrete-typed callee",
			types.TypeString(pt, types.RelativeTo(pass.Pkg)), exprName(call.Fun))
	}
}

// isInterface reports whether t is a non-type-parameter interface type.
func isInterface(t types.Type) bool {
	if _, isTP := t.(*types.TypeParam); isTP {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func argIsInterfaceOrNil(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return true
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	if _, isTP := tv.Type.(*types.TypeParam); isTP {
		return true // can't tell statically; instantiation decides
	}
	_, ok = tv.Type.Underlying().(*types.Interface)
	return ok
}

// checkCompositeLit flags map/slice literals and &struct{...}.
func checkCompositeLit(pass *framework.Pass, cl *ast.CompositeLit, addressed bool, report reportFunc) {
	t := pass.TypesInfo.TypeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		report(cl.Pos(), "map literal", "hot path allocates a map literal")
	case *types.Slice:
		report(cl.Pos(), "slice literal", "hot path allocates a slice literal")
	case *types.Struct:
		if addressed {
			report(cl.Pos(), "&"+exprName(cl.Type)+"{...}", "hot path allocates &%s{...}; reuse a preallocated value", exprName(cl.Type))
		}
	}
}

// checkClosure flags func literals that capture variables from the
// enclosing hot function: both the closure object and its captured
// variables are heap-allocated.
func checkClosure(pass *framework.Pass, fd *ast.FuncDecl, fl *ast.FuncLit, report reportFunc) {
	var captured []string
	seen := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		// Captured: declared inside the enclosing function (including
		// receiver/params) but outside this literal.
		inFunc := obj.Pos() >= fd.Pos() && obj.Pos() < fd.End()
		inLit := obj.Pos() >= fl.Pos() && obj.Pos() < fl.End()
		if _, isVar := obj.(*types.Var); isVar && inFunc && !inLit {
			seen[obj] = true
			captured = append(captured, obj.Name())
		}
		return true
	})
	if len(captured) > 0 {
		report(fl.Pos(), "capturing closure", "hot path closure captures %s, forcing heap allocation", joinNames(captured))
	}
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// exprName renders a compact name for a callee or type expression.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X)
	case *ast.IndexListExpr:
		return exprName(e.X)
	default:
		return "call"
	}
}
