package hotalloc_test

import (
	"testing"

	"gccache/internal/analysis/framework/analysistest"
	"gccache/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hotfixture")
}
