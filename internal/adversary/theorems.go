package adversary

import (
	"fmt"

	"gccache/internal/bounds"
	"gccache/internal/cachesim"
	"gccache/internal/model"
)

// Config parameterizes the GC lower-bound constructions of §4.
type Config struct {
	// OptSize is h, the offline comparison size.
	OptSize int
	// Phases is the number of construction phases to run after warmup.
	Phases int
	// Record keeps the generated trace in the result.
	Record bool
}

func (cfg Config) validate(k int) error {
	if cfg.OptSize < 1 || cfg.OptSize > k {
		return fmt.Errorf("adversary: h=%d outside [1, k=%d]", cfg.OptSize, k)
	}
	if cfg.Phases < 1 {
		return fmt.Errorf("adversary: phases=%d < 1", cfg.Phases)
	}
	return nil
}

// ItemCache runs the Theorem 2 construction against c (an Item Cache —
// any policy that loads only requested items; running it against other
// policies measures how much they escape the bound). geo must be the
// cache's geometry; B = geo.BlockSize(). Requires h ≥ B and k ≥ h.
//
// Per phase the adversary touches ⌈(k−h+1)/B⌉ fresh blocks item by item
// (step 2), then requests h−B absent members of a k+1-item candidate set
// (step 4). The offline strategy pays one load per fresh block and hits
// everything else, so OptMisses = phases·⌈(k−h+1)/B⌉.
func ItemCache(c cachesim.Cache, geo model.Geometry, cfg Config) (Result, error) {
	k := c.Capacity()
	B := geo.BlockSize()
	if err := cfg.validate(k); err != nil {
		return Result{}, err
	}
	h := cfg.OptSize
	if h < B {
		return Result{}, fmt.Errorf("adversary: Theorem 2 needs h ≥ B (h=%d B=%d)", h, B)
	}
	d := newDriver(c, geo, cfg.Record)
	c.Reset()

	// Warmup: fill the online cache with fresh items and seed the
	// simulated OPT contents with h of them.
	var warm []model.Item
	for len(warm) < k {
		for _, it := range d.freshBlock() {
			if len(warm) >= k {
				break
			}
			d.request(it)
			warm = append(warm, it)
		}
	}
	optSet := append([]model.Item(nil), warm[len(warm)-h:]...)
	d.resetCounters()

	blocksPerPhase := ceilDiv(k-h+1, B)
	optMisses := int64(0)
	for p := 0; p < cfg.Phases; p++ {
		// Step 2: fresh blocks, every item accessed.
		step2 := make([]model.Item, 0, blocksPerPhase*B)
		var lastBlock []model.Item
		for bi := 0; bi < blocksPerPhase; bi++ {
			blk := d.freshBlock()
			for _, it := range blk {
				d.request(it)
			}
			step2 = append(step2, blk...)
			lastBlock = blk
			optMisses++ // OPT loads the whole block on its first access
		}
		// Step 3: candidate set of ≥ k+1 items.
		candidates := append(append([]model.Item(nil), optSet...), step2...)
		// Step 4: h−B requests to absent candidates; OPT hits all.
		step4 := make([]model.Item, 0, h-B)
		for n := 0; n < h-B; n++ {
			it, ok := pickAbsent(c, candidates)
			if !ok {
				break // cache covers all candidates; nothing hurts
			}
			d.request(it)
			step4 = append(step4, it)
		}
		// OPT's end-of-phase contents: the step-4 items plus the last
		// fresh block (h−B + B = h).
		optSet = optSet[:0]
		optSet = append(optSet, step4...)
		optSet = append(optSet, lastBlock...)
		if len(optSet) > h {
			optSet = optSet[:h]
		}
	}
	return Result{
		Policy:       c.Name(),
		OnlineMisses: d.misses,
		OptMisses:    optMisses,
		Accesses:     d.access,
		Phases:       cfg.Phases,
		BoundClaim:   bounds.ItemCacheLB(float64(k), float64(h), float64(B)),
		Trace:        d.trace,
	}, nil
}

// BlockCache runs the Theorem 3 construction against c (a Block Cache).
// Requires ⌈k/B⌉ ≥ h (otherwise the bound is infinite: the pollution
// effect leaves the block cache no usable space).
//
// Per phase the adversary touches one item in each of ⌈k/B⌉−h+1 fresh
// blocks (step 2), then requests h−1 absent members of a ⌈k/B⌉+1-item
// single-item-per-block candidate set (step 4). The offline strategy pays
// only the fresh-block loads.
func BlockCache(c cachesim.Cache, geo model.Geometry, cfg Config) (Result, error) {
	k := c.Capacity()
	B := geo.BlockSize()
	if err := cfg.validate(k); err != nil {
		return Result{}, err
	}
	h := cfg.OptSize
	frames := k / B
	if frames < h {
		return Result{}, fmt.Errorf("adversary: Theorem 3 needs ⌊k/B⌋ ≥ h (k=%d B=%d h=%d)", k, B, h)
	}
	d := newDriver(c, geo, cfg.Record)
	c.Reset()

	// Warmup: one item from each of `frames` fresh blocks fills a block
	// cache; OPT holds the last h of them (one per block, as the proof
	// assumes).
	warm := make([]model.Item, 0, frames)
	for len(warm) < frames {
		blk := d.freshBlock()
		d.request(blk[0])
		warm = append(warm, blk[0])
	}
	optSet := append([]model.Item(nil), warm[len(warm)-h:]...)
	d.resetCounters()

	blocksPerPhase := frames - h + 1
	optMisses := int64(0)
	for p := 0; p < cfg.Phases; p++ {
		step2 := make([]model.Item, 0, blocksPerPhase)
		for bi := 0; bi < blocksPerPhase; bi++ {
			blk := d.freshBlock()
			d.request(blk[0])
			step2 = append(step2, blk[0])
			optMisses++
		}
		candidates := append(append([]model.Item(nil), optSet...), step2...)
		step4 := make([]model.Item, 0, h-1)
		for n := 0; n < h-1; n++ {
			it, ok := pickAbsent(c, candidates)
			if !ok {
				break
			}
			d.request(it)
			step4 = append(step4, it)
		}
		optSet = optSet[:0]
		optSet = append(optSet, step4...)
		optSet = append(optSet, step2[len(step2)-1])
	}
	return Result{
		Policy:       c.Name(),
		OnlineMisses: d.misses,
		OptMisses:    optMisses,
		Accesses:     d.access,
		Phases:       cfg.Phases,
		BoundClaim:   bounds.BlockCacheLB(float64(k), float64(h), float64(B)),
		Trace:        d.trace,
	}, nil
}

// General runs the Theorem 4 construction against an arbitrary
// deterministic policy. Per phase, for each of ⌈(k−h+1)/B⌉ fresh blocks
// it keeps requesting items of the block that the cache does not hold
// until none remain (the policy's effective a); then requests h−aMax
// absent candidates. The offline strategy pays one load per fresh block.
// The result's BoundClaim uses the *measured* maximum a of the run.
func General(c cachesim.Cache, geo model.Geometry, cfg Config) (Result, error) {
	k := c.Capacity()
	B := geo.BlockSize()
	if err := cfg.validate(k); err != nil {
		return Result{}, err
	}
	h := cfg.OptSize
	d := newDriver(c, geo, cfg.Record)
	c.Reset()

	var warm []model.Item
	for len(warm) < k {
		for _, it := range d.freshBlock() {
			if len(warm) >= k {
				break
			}
			d.request(it)
			warm = append(warm, it)
		}
	}
	optSet := append([]model.Item(nil), warm[len(warm)-h:]...)
	d.resetCounters()

	blocksPerPhase := ceilDiv(k-h+1, B)
	optMisses := int64(0)
	aMaxRun := 1
	for p := 0; p < cfg.Phases; p++ {
		step2 := make([]model.Item, 0, blocksPerPhase*B)
		aMax := 1
		var lastAccessed []model.Item
		for bi := 0; bi < blocksPerPhase; bi++ {
			blk := d.freshBlock()
			accessed := make([]model.Item, 0, len(blk))
			// While some item of the block is absent, request it.
			for {
				it, ok := pickAbsent(c, blk)
				if !ok {
					break
				}
				d.request(it)
				accessed = append(accessed, it)
				if len(accessed) >= len(blk) {
					break
				}
			}
			if len(accessed) == 0 {
				// Degenerate: the policy prefetched the whole fresh block
				// without any request (impossible for demand policies).
				accessed = append(accessed, blk[0])
				d.request(blk[0])
			}
			if len(accessed) > aMax {
				aMax = len(accessed)
			}
			step2 = append(step2, blk...)
			lastAccessed = accessed
			optMisses++ // OPT loads the accessed items in one unit-cost load
		}
		if aMax > aMaxRun {
			aMaxRun = aMax
		}
		candidates := append(append([]model.Item(nil), optSet...), step2...)
		step4 := make([]model.Item, 0, maxInt(0, h-aMax))
		for n := 0; n < h-aMax; n++ {
			it, ok := pickAbsent(c, candidates)
			if !ok {
				break
			}
			d.request(it)
			step4 = append(step4, it)
		}
		optSet = optSet[:0]
		optSet = append(optSet, step4...)
		optSet = append(optSet, lastAccessed...)
		for _, it := range step2 {
			if len(optSet) >= h {
				break
			}
			optSet = append(optSet, it)
		}
		if len(optSet) > h {
			optSet = optSet[:h]
		}
	}
	return Result{
		Policy:       c.Name(),
		OnlineMisses: d.misses,
		OptMisses:    optMisses,
		Accesses:     d.access,
		Phases:       cfg.Phases,
		BoundClaim:   bounds.GeneralLB(float64(k), float64(h), float64(B), float64(aMaxRun)),
		Trace:        d.trace,
	}, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
