package adversary

import (
	"fmt"
	"math"

	"gccache/internal/cachesim"
	"gccache/internal/locality"
	"gccache/internal/model"
	"gccache/internal/trace"
)

// LocalityConfig parameterizes the Theorem 8 construction in the extended
// locality-of-reference model.
type LocalityConfig struct {
	// P shapes the item working-set function f(n) = n^(1/P) that the
	// generated phases are consistent with (P ≥ 1; the paper's Table 2
	// uses polynomial families).
	P float64
	// Phases is the number of phases to generate.
	Phases int
	// Record keeps the generated trace.
	Record bool
}

// LocalityResult reports a Theorem 8 run: the measured fault rate of the
// online policy on the generated family trace, and the Theorem 8 lower
// bound evaluated on the *measured* working-set functions of that exact
// trace (so the comparison makes no modeling assumptions).
type LocalityResult struct {
	Policy string
	// FaultRate is misses/accesses over the generated trace.
	FaultRate float64
	// Bound is g(f⁻¹(k+1)−2)/(f⁻¹(k+1)−2) with measured f, g.
	Bound float64
	// PhaseLength is f⁻¹(k+1)−2, the construction's phase length.
	PhaseLength int
	Accesses    int64
	Trace       trace.Trace
}

// Locality runs the Theorem 8 family against c. The universe is k+1 items
// packed into ⌈(k+1)/B⌉ blocks; each phase is k−1 repetitions whose
// lengths grow with f⁻¹, and each repetition hammers one item chosen to
// be absent from the online cache (preferring blocks already touched in
// the phase, which keeps g(n) — and hence the bound — low while still
// forcing one miss per repetition).
func Locality(c cachesim.Cache, geo model.Geometry, cfg LocalityConfig) (LocalityResult, error) {
	k := c.Capacity()
	if cfg.P < 1 {
		return LocalityResult{}, fmt.Errorf("adversary: locality exponent P=%v < 1", cfg.P)
	}
	if cfg.Phases < 1 {
		return LocalityResult{}, fmt.Errorf("adversary: phases=%d < 1", cfg.Phases)
	}
	if k < 3 {
		return LocalityResult{}, fmt.Errorf("adversary: cache size %d too small for the construction", k)
	}
	f := locality.Poly{C: 1, P: cfg.P}
	phaseLen := int(math.Round(f.Inverse(float64(k+1)))) - 2
	if phaseLen < k+1 {
		phaseLen = k + 1
	}

	// Universe: k+1 items in consecutive blocks.
	universe := make([]model.Item, k+1)
	for i := range universe {
		universe[i] = model.Item(i)
	}
	c.Reset()

	var gen trace.Trace
	misses := int64(0)
	request := func(it model.Item) {
		if a := c.Access(it); !a.Hit {
			misses++
		}
		gen = append(gen, it)
	}

	for p := 0; p < cfg.Phases; p++ {
		touchedItems := make(map[model.Item]bool, k+1)
		touchedBlocks := make(map[model.Block]bool)
		// Repetition start positions (1-indexed accesses within phase):
		// repetition j begins at f⁻¹(j+1)−1, per Albers et al.
		pos := 0
		var current model.Item
		pick := func() model.Item {
			// Preference 1: absent item from an already-touched block.
			for _, it := range universe {
				if !touchedItems[it] && touchedBlocks[geo.BlockOf(it)] && !c.Contains(it) {
					return it
				}
			}
			// Preference 2: any absent untouched item.
			for _, it := range universe {
				if !touchedItems[it] && !c.Contains(it) {
					return it
				}
			}
			// Fallback: any untouched item.
			for _, it := range universe {
				if !touchedItems[it] {
					return it
				}
			}
			return universe[0]
		}
		current = pick()
		touchedItems[current] = true
		touchedBlocks[geo.BlockOf(current)] = true
		reps := 1
		for pos < phaseLen {
			boundary := int(math.Round(f.Inverse(float64(reps+1)))) - 1
			if pos >= boundary && reps < k-1 {
				reps++
				current = pick()
				touchedItems[current] = true
				touchedBlocks[geo.BlockOf(current)] = true
			}
			request(current)
			pos++
		}
	}

	lengths := locality.GeometricLengths(phaseLen)
	lengths = append(lengths, phaseLen)
	fm := locality.MeasureItems(gen, lengths)
	gm := locality.MeasureBlocks(gen, geo, lengths)
	n := fm.Inverse(float64(k+1)) - 2
	bound := math.NaN()
	if n > 0 {
		bound = gm.Eval(n) / n
	}
	res := LocalityResult{
		Policy:      c.Name(),
		FaultRate:   float64(misses) / float64(len(gen)),
		Bound:       bound,
		PhaseLength: phaseLen,
		Accesses:    int64(len(gen)),
	}
	if cfg.Record {
		res.Trace = gen
	}
	return res, nil
}
