package adversary

import (
	"math"
	"testing"

	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/policy"
)

func TestSleatorTarjanAgainstLRU(t *testing.T) {
	// LRU with k=32 vs h=16: measured ratio must approach k/(k−h+1) ≈ 1.88
	// and never (statistically) exceed it by much.
	k, h := 32, 16
	c := policy.NewItemLRU(k)
	res, err := SleatorTarjan(c, SleatorTarjanConfig{OptSize: h, Accesses: 20000, Spacing: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(k) / float64(k-h+1)
	if res.OnlineMisses != res.Accesses {
		t.Errorf("LRU should miss every adversarial access: %d/%d", res.OnlineMisses, res.Accesses)
	}
	if math.Abs(res.Ratio()-want) > 0.12*want {
		t.Errorf("ratio = %.3f, want ≈ %.3f", res.Ratio(), want)
	}
}

func TestSleatorTarjanAgainstFIFO(t *testing.T) {
	k, h := 24, 12
	res, err := SleatorTarjan(policy.NewFIFO(k), SleatorTarjanConfig{OptSize: h, Accesses: 10000, Spacing: 1})
	if err != nil {
		t.Fatal(err)
	}
	// FIFO also misses everything against the adaptive adversary.
	if res.OnlineMisses != res.Accesses {
		t.Errorf("FIFO misses %d of %d", res.OnlineMisses, res.Accesses)
	}
	if res.Ratio() < 1.5 {
		t.Errorf("ratio = %.3f, too small", res.Ratio())
	}
}

func TestSleatorTarjanRecordsTrace(t *testing.T) {
	res, err := SleatorTarjan(policy.NewItemLRU(8),
		SleatorTarjanConfig{OptSize: 4, Accesses: 100, Spacing: 4, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 100 {
		t.Errorf("trace length %d", len(res.Trace))
	}
	if _, err := SleatorTarjan(policy.NewItemLRU(8), SleatorTarjanConfig{OptSize: 0, Accesses: 1}); err == nil {
		t.Error("h=0 accepted")
	}
}

func TestItemCacheAdversaryMatchesTheorem2(t *testing.T) {
	// Pick B | (k−h+1) so the bound is exact: k=128, h=33, B=8 →
	// k−h+1 = 96 = 12 blocks. Bound: B(k−B+1)/(k−h+1) = 8·121/96 ≈ 10.08.
	k, h, B := 128, 33, 8
	geo := model.NewFixed(B)
	res, err := ItemCache(policy.NewItemLRU(k), geo, Config{OptSize: h, Phases: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlineMisses != res.Accesses {
		t.Fatalf("item cache should miss every access: %d/%d", res.OnlineMisses, res.Accesses)
	}
	// Measured ratio per phase: (96 + h−B)/12 = (96+25)/12 ≈ 10.08 = claim.
	if math.Abs(res.Ratio()-res.BoundClaim) > 0.05*res.BoundClaim {
		t.Errorf("ratio %.3f vs claim %.3f", res.Ratio(), res.BoundClaim)
	}
}

func TestItemCacheAdversaryOnFIFO(t *testing.T) {
	k, h, B := 64, 17, 4
	geo := model.NewFixed(B)
	res, err := ItemCache(policy.NewFIFO(k), geo, Config{OptSize: h, Phases: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio() < 0.9*res.BoundClaim {
		t.Errorf("FIFO ratio %.3f below claim %.3f", res.Ratio(), res.BoundClaim)
	}
}

func TestItemCacheAdversaryValidation(t *testing.T) {
	geo := model.NewFixed(8)
	if _, err := ItemCache(policy.NewItemLRU(64), geo, Config{OptSize: 4, Phases: 1}); err == nil {
		t.Error("h < B accepted")
	}
	if _, err := ItemCache(policy.NewItemLRU(64), geo, Config{OptSize: 16, Phases: 0}); err == nil {
		t.Error("phases=0 accepted")
	}
}

func TestBlockCacheAdversaryMatchesTheorem3(t *testing.T) {
	// k=256, B=8 → 32 frames; h=16. Bound: k/(k−B(h−1)) = 256/136 ≈ 1.88.
	k, h, B := 256, 16, 8
	geo := model.NewFixed(B)
	res, err := BlockCache(policy.NewBlockLRU(k, geo), geo, Config{OptSize: h, Phases: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlineMisses != res.Accesses {
		t.Fatalf("block cache should miss every access: %d/%d", res.OnlineMisses, res.Accesses)
	}
	if math.Abs(res.Ratio()-res.BoundClaim) > 0.05*res.BoundClaim {
		t.Errorf("ratio %.3f vs claim %.3f", res.Ratio(), res.BoundClaim)
	}
}

func TestBlockCacheAdversaryRequiresFrames(t *testing.T) {
	geo := model.NewFixed(8)
	// k/B = 4 frames < h = 8.
	if _, err := BlockCache(policy.NewBlockLRU(32, geo), geo, Config{OptSize: 8, Phases: 1}); err == nil {
		t.Error("insufficient frames accepted")
	}
}

func TestGeneralAdversaryOnAThreshold(t *testing.T) {
	// Theorem 4 with measured a: an a-threshold policy reveals a = its
	// parameter (the adversary keeps requesting absent block items; after
	// a distinct misses the whole block is loaded).
	k, h, B := 128, 32, 8
	geo := model.NewFixed(B)
	for _, a := range []int{1, 4, 8} {
		c := policy.NewAThreshold(k, a, geo)
		res, err := General(c, geo, Config{OptSize: h, Phases: 40})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ratio() < 0.85*res.BoundClaim {
			t.Errorf("a=%d: ratio %.3f below claim %.3f", a, res.Ratio(), res.BoundClaim)
		}
		// The claim itself must reflect the policy's a (measured aMax = a).
		wantClaim := (float64(a)*(float64(k-h+1)) + float64(B)*float64(h-a)) / float64(k-h+1)
		if math.Abs(res.BoundClaim-wantClaim) > 1e-9 {
			t.Errorf("a=%d: claim %.3f, want %.3f (measured a mismatch)", a, res.BoundClaim, wantClaim)
		}
	}
}

func TestGeneralAdversaryOnItemLRUMeasuresAEqualsB(t *testing.T) {
	k, h, B := 96, 24, 8
	geo := model.NewFixed(B)
	res, err := General(policy.NewItemLRU(k), geo, Config{OptSize: h, Phases: 20})
	if err != nil {
		t.Fatal(err)
	}
	// ItemLRU never loads siblings, so every block in step 2 takes B
	// accesses: the claim must equal the Theorem 2 bound.
	wantClaim := (float64(B)*float64(k-h+1) + float64(B)*float64(h-B)) / float64(k-h+1)
	if math.Abs(res.BoundClaim-wantClaim) > 1e-9 {
		t.Errorf("claim %.3f, want %.3f", res.BoundClaim, wantClaim)
	}
	if res.Ratio() < 0.85*res.BoundClaim {
		t.Errorf("ratio %.3f below claim %.3f", res.Ratio(), res.BoundClaim)
	}
}

func TestIBLPEscapesSingleGranularityAdversaries(t *testing.T) {
	// Running the Theorem 2 (item-cache) adversary against IBLP must give
	// a ratio far below the item-cache bound: the block layer hits most
	// of each fresh block. This is the paper's whole point.
	k, h, B := 128, 33, 8
	geo := model.NewFixed(B)
	iblp := core.NewIBLP(k/2, k/2, geo)
	res, err := ItemCache(iblp, geo, Config{OptSize: h, Phases: 50})
	if err != nil {
		t.Fatal(err)
	}
	itemBound := res.BoundClaim
	if res.Ratio() > 0.6*itemBound {
		t.Errorf("IBLP ratio %.3f should sit well below the item bound %.3f", res.Ratio(), itemBound)
	}
}

func TestLocalityAdversaryBoundHolds(t *testing.T) {
	// Theorem 8: every deterministic policy's fault rate on the family
	// trace is at least the bound computed from the measured f and g.
	B := 4
	geo := model.NewFixed(B)
	k := 24
	for _, mk := range []func() (name string, res LocalityResult, err error){
		func() (string, LocalityResult, error) {
			c := policy.NewItemLRU(k)
			r, err := Locality(c, geo, LocalityConfig{P: 2, Phases: 4})
			return "item-lru", r, err
		},
		func() (string, LocalityResult, error) {
			c := policy.NewFIFO(k)
			r, err := Locality(c, geo, LocalityConfig{P: 2, Phases: 4})
			return "fifo", r, err
		},
		func() (string, LocalityResult, error) {
			c := core.NewIBLPEvenSplit(k, geo)
			r, err := Locality(c, geo, LocalityConfig{P: 2, Phases: 4})
			return "iblp", r, err
		},
	} {
		name, res, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.IsNaN(res.Bound) || res.Bound <= 0 {
			t.Fatalf("%s: degenerate bound %v", name, res.Bound)
		}
		if res.FaultRate < res.Bound*(1-1e-9) {
			t.Errorf("%s: fault rate %.5f below Theorem 8 bound %.5f", name, res.FaultRate, res.Bound)
		}
	}
}

func TestLocalityAdversaryValidation(t *testing.T) {
	geo := model.NewFixed(4)
	if _, err := Locality(policy.NewItemLRU(16), geo, LocalityConfig{P: 0.5, Phases: 1}); err == nil {
		t.Error("P<1 accepted")
	}
	if _, err := Locality(policy.NewItemLRU(16), geo, LocalityConfig{P: 2, Phases: 0}); err == nil {
		t.Error("phases=0 accepted")
	}
	if _, err := Locality(policy.NewItemLRU(1), geo, LocalityConfig{P: 2, Phases: 1}); err == nil {
		t.Error("k too small accepted")
	}
}

func TestResultStringAndRatioEdges(t *testing.T) {
	r := Result{Policy: "x", OnlineMisses: 10, OptMisses: 0}
	if !math.IsInf(r.Ratio(), 1) {
		t.Error("opt=0, online>0 should be Inf")
	}
	r = Result{OnlineMisses: 0, OptMisses: 0}
	if r.Ratio() != 1 {
		t.Error("0/0 should be 1")
	}
	r = Result{Policy: "x", OnlineMisses: 4, OptMisses: 2, Phases: 1}
	if r.String() == "" {
		t.Error("String empty")
	}
}
