// Package adversary implements the paper's lower-bound constructions as
// *adaptive request generators*: each drives a live online cache, probing
// its contents (cachesim.Cache.Contains) to always request what hurts
// most, exactly as the proofs of Theorems 2, 3, 4, and the Sleator–Tarjan
// bound prescribe. Alongside the online policy's measured miss count,
// each adversary accounts the cost of the explicit offline strategy from
// the corresponding proof — a valid execution, hence an upper bound on
// OPT — so OnlineMisses/OptMisses is a certified empirical lower bound on
// the policy's competitive ratio.
package adversary

import (
	"fmt"
	"math"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/opt"
	"gccache/internal/trace"
)

// Result reports one adversarial run.
type Result struct {
	Policy string
	// OnlineMisses is the measured miss count of the online policy over
	// the phase portion of the trace (warmup excluded).
	OnlineMisses int64
	// OptMisses is the cost of the proof's explicit offline strategy on
	// the same portion — an upper bound on the true OPT cost.
	OptMisses int64
	// Accesses counts phase requests issued.
	Accesses int64
	// Phases is the number of completed construction phases.
	Phases int
	// BoundClaim is the analytic lower bound the construction targets.
	BoundClaim float64
	// Trace is the generated request sequence including warmup when the
	// adversary was asked to record it (nil otherwise).
	Trace trace.Trace
}

// Ratio returns the measured competitive-ratio lower bound.
func (r Result) Ratio() float64 {
	if r.OptMisses == 0 {
		if r.OnlineMisses == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(r.OnlineMisses) / float64(r.OptMisses)
}

func (r Result) String() string {
	return fmt.Sprintf("%s: online=%d opt=%d ratio=%.3f (claim ≥ %.3f over %d phases)",
		r.Policy, r.OnlineMisses, r.OptMisses, r.Ratio(), r.BoundClaim, r.Phases)
}

// driver wraps a cache with miss counting and optional trace recording.
type driver struct {
	cache   cachesim.Cache
	geo     model.Geometry
	misses  int64
	access  int64
	record  bool
	trace   trace.Trace
	nextBlk uint64
}

func newDriver(c cachesim.Cache, geo model.Geometry, record bool) *driver {
	return &driver{cache: c, geo: geo, record: record}
}

// request issues one access and returns whether it hit.
func (d *driver) request(it model.Item) bool {
	a := d.cache.Access(it)
	d.access++
	if !a.Hit {
		d.misses++
	}
	if d.record {
		d.trace = append(d.trace, it)
	}
	return a.Hit
}

// freshBlock returns the items of a never-before-used block in a fresh
// slice. Callers retain the result across further cache accesses, so it
// must not alias the geometry's reusable ItemsOf scratch.
func (d *driver) freshBlock() []model.Item {
	b := d.nextBlk
	d.nextBlk++
	return model.AppendItemsOf(d.geo, nil, model.Block(b))
}

// resetCounters zeroes the miss/access counters (after warmup).
func (d *driver) resetCounters() { d.misses, d.access = 0, 0 }

// pickAbsent returns an item from candidates that the cache does not
// currently hold, and whether one exists.
func pickAbsent(c cachesim.Cache, candidates []model.Item) (model.Item, bool) {
	for _, it := range candidates {
		if !c.Contains(it) {
			return it, true
		}
	}
	return 0, false
}

// SleatorTarjanConfig parameterizes the classic traditional-caching
// adversary (k+1-item universe, always request the absent item).
type SleatorTarjanConfig struct {
	// OptSize is h, the offline cache size to compare against.
	OptSize int
	// Accesses is the trace length after warmup.
	Accesses int
	// Spacing places universe items this many addresses apart so no two
	// share a block (set ≥ the geometry's block size).
	Spacing int
	// Record keeps the generated trace in the result.
	Record bool
}

// SleatorTarjan runs the classic lower-bound construction against c and
// computes the offline cost *exactly* with Belady on the generated trace
// (traditional caching is polynomial offline). The measured ratio
// approaches k/(k−h+1) for LRU-like item caches.
func SleatorTarjan(c cachesim.Cache, cfg SleatorTarjanConfig) (Result, error) {
	k := c.Capacity()
	if cfg.OptSize < 1 || cfg.OptSize > k {
		return Result{}, fmt.Errorf("adversary: h=%d outside [1, k=%d]", cfg.OptSize, k)
	}
	if cfg.Spacing < 1 {
		cfg.Spacing = 1
	}
	universe := make([]model.Item, k+1)
	for i := range universe {
		universe[i] = model.Item(uint64(i) * uint64(cfg.Spacing))
	}
	c.Reset()
	// Warmup: touch the whole universe so the cache is full.
	for _, it := range universe {
		c.Access(it)
	}
	keys := make([]uint64, 0, cfg.Accesses)
	misses := int64(0)
	for n := 0; n < cfg.Accesses; n++ {
		it, ok := pickAbsent(c, universe)
		if !ok {
			// The cache somehow holds all k+1 items (capacity violation);
			// treat as a hit on the first item to avoid looping.
			it = universe[0]
		}
		if a := c.Access(it); !a.Hit {
			misses++
		}
		keys = append(keys, uint64(it))
	}
	res := Result{
		Policy:       c.Name(),
		OnlineMisses: misses,
		OptMisses:    opt.BeladyKeys(keys, cfg.OptSize),
		Accesses:     int64(len(keys)),
		Phases:       1,
	}
	if cfg.Record {
		res.Trace = make(trace.Trace, len(keys))
		for i, key := range keys {
			res.Trace[i] = model.Item(key)
		}
	}
	return res, nil
}
