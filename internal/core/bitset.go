package core

// bitset is a packed membership set over a bounded ID universe — the
// cache-friendly replacement for a []bool on the dense hot path. At one
// bit per ID, a 256Ki-item universe costs 32KB, so the per-sibling
// membership probes in admit/drop loops stay in L1/L2 where a byte- or
// word-per-item table would stride through megabytes.
type bitset []uint64

// newBitset returns an empty bitset covering IDs [0, n).
func newBitset(n int) bitset { return make(bitset, (n+63)>>6) }

// test reports whether id is in the set.
//
//gclint:hotpath
func (b bitset) test(id uint64) bool { return b[id>>6]>>(id&63)&1 != 0 }

// set inserts id.
//
//gclint:hotpath
func (b bitset) set(id uint64) { b[id>>6] |= 1 << (id & 63) }

// unset removes id.
//
//gclint:hotpath
func (b bitset) unset(id uint64) { b[id>>6] &^= 1 << (id & 63) }

// reset empties the set.
func (b bitset) reset() { clear(b) }
