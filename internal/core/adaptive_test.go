package core

import (
	"math/rand"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/workload"
)

func TestAdaptiveGrowsItemLayerOnTemporalWorkload(t *testing.T) {
	// One item per block, working set slightly above half the cache: an
	// even split thrashes, a full item layer holds everything. The ghost
	// hits must push the target up.
	B := 8
	geo := model.NewFixed(B)
	k := 128
	c := NewAdaptiveIBLP(k, geo)
	tr := workload.Stride(100, B, 60000) // 100 single-block items
	st := cachesim.RunCold(c, tr)
	if c.ItemLayerTarget() <= k/2 {
		t.Errorf("target %d did not grow above even split %d", c.ItemLayerTarget(), k/2)
	}
	// Steady state: everything fits in the grown item layer.
	if st.MissRatio() > 0.2 {
		t.Errorf("adaptive miss ratio %.3f on temporal workload", st.MissRatio())
	}
	// An even-split fixed IBLP cannot hold the 100-item working set in a
	// 64-item item layer, and its 8-frame block layer is polluted.
	fixed := cachesim.RunCold(NewIBLPEvenSplit(k, geo), tr)
	if st.Misses*2 > fixed.Misses {
		t.Errorf("adaptive %d misses vs fixed even split %d — expected a clear win",
			st.Misses, fixed.Misses)
	}
}

func TestAdaptiveHandlesMixedHotSetPlusScans(t *testing.T) {
	// Hot set of 100 single-block items (needs ≈100 item slots — more
	// than the even split's 64) interleaved with one-pass cold scans
	// (needs ≥1 block frame for spatial hits). The adaptive cache grows
	// its item layer to fit the hot set while the capped growth keeps a
	// block frame for the scans; the fixed even split thrashes on the
	// hot set.
	B := 8
	geo := model.NewFixed(B)
	k := 160
	const hotItems = 100
	var tr []model.Item
	coldBase := uint64((hotItems + 1) * B)
	coldPos := 0
	hotPos := 0
	for len(tr) < 120000 {
		// 4 hot accesses per cold access: hot reuse distance ≈ 124
		// distinct items — above the even split's 80, below the grown
		// item layer's ceiling of k−B = 152.
		for j := 0; j < 4; j++ {
			tr = append(tr, model.Item(uint64(hotPos%hotItems)*uint64(B)))
			hotPos++
		}
		tr = append(tr, model.Item(coldBase+uint64(coldPos)))
		coldPos++
	}
	c := NewAdaptiveIBLP(k, geo)
	st := cachesim.RunCold(c, tr)
	if c.ItemLayerTarget() <= k/2 {
		t.Errorf("target %d did not grow to fit the hot set", c.ItemLayerTarget())
	}
	if c.ItemLayerTarget() > k-B {
		t.Errorf("target %d ate the last block frame", c.ItemLayerTarget())
	}
	fixed := cachesim.RunCold(NewIBLPEvenSplit(k, geo), tr)
	if st.Misses >= fixed.Misses {
		t.Errorf("adaptive %d misses vs fixed even split %d", st.Misses, fixed.Misses)
	}
}

func TestAdaptiveStaysWithinBudget(t *testing.T) {
	geo := model.NewFixed(8)
	c := NewAdaptiveIBLP(64, geo)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		c.Access(model.Item(rng.Intn(400)))
		if c.Len() > c.Capacity() {
			t.Fatalf("step %d: Len %d > capacity", i, c.Len())
		}
		if tgt := c.ItemLayerTarget(); tgt < 0 || tgt > c.Capacity() {
			t.Fatalf("step %d: target %d out of range", i, tgt)
		}
	}
}

func TestAdaptiveConformsToModel(t *testing.T) {
	geo := model.NewFixed(8)
	v := cachesim.NewValidator(NewAdaptiveIBLP(32, geo), geo)
	tr, err := workload.BlockRuns(workload.BlockRunsConfig{
		NumBlocks: 64, BlockSize: 8, MeanRunLength: 4, Length: 20000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cachesim.Run(v, tr)
	if err := v.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveCompetitiveAcrossSpectrum(t *testing.T) {
	// Robustness: within a modest factor of the better of the two fixed
	// extremes on mixed workloads.
	B := 16
	geo := model.NewFixed(B)
	k := 512
	runs, err := workload.BlockRuns(workload.BlockRunsConfig{
		NumBlocks: 256, BlockSize: B, MeanRunLength: 8, ZipfS: 1.2,
		Length: 120000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	adaptive := cachesim.RunCold(NewAdaptiveIBLP(k, geo), runs)
	item := cachesim.RunCold(policy.NewItemLRU(k), runs)
	block := cachesim.RunCold(policy.NewBlockLRU(k, geo), runs)
	best := item.Misses
	if block.Misses < best {
		best = block.Misses
	}
	if float64(adaptive.Misses) > 2.5*float64(best) {
		t.Errorf("adaptive %d misses vs best fixed %d", adaptive.Misses, best)
	}
}

func TestAdaptiveResetRestoresEvenSplit(t *testing.T) {
	geo := model.NewFixed(8)
	c := NewAdaptiveIBLP(64, geo)
	cachesim.Run(c, workload.Stride(60, 8, 20000))
	if c.ItemLayerTarget() == 32 {
		t.Skip("target did not move; nothing to verify")
	}
	c.Reset()
	if c.ItemLayerTarget() != 32 || c.Len() != 0 {
		t.Error("Reset did not restore the even split")
	}
}

func TestAdaptivePanics(t *testing.T) {
	geo := model.NewFixed(4)
	for _, fn := range []func(){
		func() { NewAdaptiveIBLP(1, geo) },
		func() { NewAdaptiveIBLP(8, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	if NewAdaptiveIBLP(8, geo).Name() == "" {
		t.Error("Name")
	}
}

func TestAdaptiveReAdaptsAcrossEpochs(t *testing.T) {
	// Alternating temporal/spatial epochs: the adaptive target must move
	// up in temporal epochs and recover spatial competence afterwards.
	B := 8
	geo := model.NewFixed(B)
	k := 128
	d := workload.Drifting{BlockSize: B, HotItems: 100, SweepBlocks: k / B,
		EpochLength: 30000, Epochs: 4}
	tr, err := d.Generate()
	if err != nil {
		t.Fatal(err)
	}
	c := NewAdaptiveIBLP(k, geo)
	rec := cachesim.NewRecorder(c.Name())
	var epochMisses []int64
	prev := int64(0)
	for i, it := range tr {
		rec.Observe(it, c.Access(it))
		if (i+1)%30000 == 0 {
			m := rec.Stats().Misses
			epochMisses = append(epochMisses, m-prev)
			prev = m
		}
	}
	// Second occurrence of each regime should not be worse than 1.5× the
	// first (the ghosts re-learn quickly).
	if float64(epochMisses[2]) > 1.5*float64(epochMisses[0])+1000 {
		t.Errorf("temporal epochs regressed: %v", epochMisses)
	}
	if float64(epochMisses[3]) > 1.5*float64(epochMisses[1])+1000 {
		t.Errorf("spatial epochs regressed: %v", epochMisses)
	}
}
