// Package core implements the paper's contributions: the Item-Block
// Layered Partitioning (IBLP) deterministic policy of §5, the
// Granularity-Change Marking (GCM) randomized policy of §6, and the §5.3
// partition-sizing rules that split a cache of size k into an item layer
// of size i and a block layer of size b = k − i.
package core

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/lrulist"
	"gccache/internal/model"
	"gccache/internal/obs"
)

// IBLP is Item-Block Layered Partitioning (§5.1): an Item Cache running
// LRU (the *item layer*, size i) in front of a Block Cache running LRU
// (the *block layer*, size b). Every access is served by the item layer
// first; only accesses that miss there reach the block layer, so bursts
// of temporal locality cannot reorder the block layer's LRU list. On a
// full miss the requested item enters the item layer and its entire block
// enters the block layer. The layers are neither inclusive nor exclusive:
// each holds its own copy.
//
// Two interchangeable representations back the policy: the generic path
// (maps keyed by item/block IDs, any IDs accepted) and the bounded dense
// path (NewIBLPBounded — flat bitsets plus lrulist.Dense orders over a
// declared universe; steady-state accesses neither hash nor allocate).
// Eviction decisions are identical on both paths.
type IBLP struct {
	itemSize  int // i
	blockSize int // b
	geo       model.Geometry

	items lrulist.Order[model.Item] // item layer, MRU..LRU

	blocks    lrulist.Order[model.Block] // block layer order, MRU..LRU
	blockUsed int                        // items currently in block layer

	// Generic path (nil on the dense path):
	resident map[model.Block][]model.Item // items held per block-layer block
	inBlock  map[model.Item]struct{}      // membership in block layer

	// Dense path (nil on the generic path): inBlockBits holds block-layer
	// membership; a block's resident set is re-derived from the geometry
	// filtered by inBlockBits (blocks are disjoint, so the set bits of a
	// resident block belong to it alone). inItemBits mirrors the item
	// layer's membership so presentDense is two packed-bitset probes
	// instead of a random load into the recency list's link array.
	inBlockBits bitset
	inItemBits  bitset
	// itemsDense/blocksDense are the concrete types behind items/blocks
	// on the dense path. The hot path calls them directly so the
	// flat-array Contains/MoveToFront/PopBack bodies inline into the
	// access loop instead of dispatching through the Order interface —
	// devirtualization is worth ~20% of batched serving throughput.
	itemsDense  *lrulist.Dense[model.Item]
	blocksDense *lrulist.Dense[model.Block]

	// promoteOnItemHit is an ablation switch (see NewIBLPPromoteAll): when
	// set, item-layer hits also refresh the block layer's LRU order,
	// violating the §5.1 design rule. Off for the real policy.
	promoteOnItemHit bool

	rec     cachesim.Reconciler
	loaded  []model.Item
	evicted []model.Item
	want    []model.Item // scratch: the item set being admitted
	trunc   []model.Item // scratch: truncated admission set (oversized blocks)
	scratch []model.Item // scratch: victim-block enumeration (dense)
	probe   obs.Probe
}

var (
	_ cachesim.Cache          = (*IBLP)(nil)
	_ cachesim.Instrumented   = (*IBLP)(nil)
	_ cachesim.LayerResizable = (*IBLP)(nil)
)

// NewIBLP returns an IBLP cache with item layer i and block layer b under
// geometry g. Either layer may be zero (i=0 degenerates to a Block Cache,
// b=0 — or any b smaller than the largest block — to an Item Cache). It
// panics if i < 0, b < 0, i+b < 1, or g is nil.
func NewIBLP(i, b int, g model.Geometry) *IBLP {
	if i < 0 || b < 0 || i+b < 1 {
		panic(fmt.Sprintf("core: IBLP layer sizes i=%d b=%d invalid", i, b))
	}
	if g == nil {
		panic("core: IBLP nil geometry")
	}
	return &IBLP{
		itemSize:  i,
		blockSize: b,
		geo:       g,
		items:     lrulist.New[model.Item](i),
		blocks:    lrulist.New[model.Block](b/maxInt(1, g.BlockSize()) + 1),
		resident:  make(map[model.Block][]model.Item),
		inBlock:   make(map[model.Item]struct{}),
	}
}

// NewIBLPBounded returns an IBLP cache on the dense path for item IDs
// [0, universe): bitset block-layer membership, Dense recency orders for
// both layers, and an array-backed net-change reconciler — no map
// operations and no steady-state allocation. The bound is expanded to
// cover whole blocks (see model.ItemUniverse); accessing an item beyond
// the expanded bound panics. It falls back to the generic representation
// when universe is out of the bounded range or no block-ID bound is
// derivable from g.
func NewIBLPBounded(i, b int, g model.Geometry, universe int) *IBLP {
	c := NewIBLP(i, b, g)
	universe = model.ItemUniverse(g, universe)
	blockUniverse := model.BlockUniverse(g, universe)
	if universe <= 0 || universe > cachesim.MaxBoundedUniverse ||
		blockUniverse <= 0 || blockUniverse > cachesim.MaxBoundedUniverse {
		return c
	}
	c.resident = nil
	c.inBlock = nil
	c.inBlockBits = newBitset(universe)
	c.inItemBits = newBitset(universe)
	c.itemsDense = lrulist.NewDense[model.Item](universe)
	c.blocksDense = lrulist.NewDense[model.Block](blockUniverse)
	c.items = c.itemsDense
	c.blocks = c.blocksDense
	c.rec = *cachesim.NewReconciler(universe)
	return c
}

// NewIBLPEvenSplit returns an IBLP cache with i = ⌈k/2⌉, b = ⌊k/2⌋, the
// split analyzed in §7.3.
func NewIBLPEvenSplit(k int, g model.Geometry) *IBLP {
	return NewIBLP((k+1)/2, k/2, g)
}

// NewIBLPEvenSplitBounded is NewIBLPEvenSplit on the dense path (see
// NewIBLPBounded).
func NewIBLPEvenSplitBounded(k int, g model.Geometry, universe int) *IBLP {
	return NewIBLPBounded((k+1)/2, k/2, g, universe)
}

// NewIBLPPromoteAll returns the ablation variant in which item-layer hits
// *do* reorder the block layer. §5.1 explains why this is harmful: blocks
// with a few hot items pollute the block layer. Exposed so the effect can
// be measured (experiment E8).
func NewIBLPPromoteAll(i, b int, g model.Geometry) *IBLP {
	c := NewIBLP(i, b, g)
	c.promoteOnItemHit = true
	return c
}

// ItemLayerSize returns i.
func (c *IBLP) ItemLayerSize() int { return c.itemSize }

// BlockLayerSize returns b.
func (c *IBLP) BlockLayerSize() int { return c.blockSize }

// ItemLayerTarget implements cachesim.LayerResizable; for a fixed-split
// IBLP the target is the item-layer size itself.
func (c *IBLP) ItemLayerTarget() int { return c.itemSize }

// SetItemLayerTarget implements cachesim.LayerResizable: repartition to
// an item layer of i (clamped to [0, i+b]) and a block layer of the
// remainder, enforcing the new bounds immediately so the occupancy
// invariants hold before the next access. The move is reported as
// EvLayerResize followed by one EvEvict per item the shrink pushed out.
// Not safe for concurrent use with Access.
func (c *IBLP) SetItemLayerTarget(i int) {
	k := c.itemSize + c.blockSize
	if i < 0 {
		i = 0
	}
	if i > k {
		i = k
	}
	if i == c.itemSize {
		return
	}
	c.itemSize, c.blockSize = i, k-i
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	c.enforceTargets()
	if c.probe != nil {
		c.probe.Observe(obs.Event{Kind: obs.EvLayerResize, N: int32(i)})
		for _, x := range c.evicted {
			c.probe.Observe(obs.Event{Kind: obs.EvEvict, Item: x, Block: c.geo.BlockOf(x)})
		}
	}
}

// enforceTargets shrinks whichever layer exceeds its configured size —
// the resize path's analogue of the admit loops, which only enforce the
// bounds while admitting.
func (c *IBLP) enforceTargets() {
	if c.itemsDense != nil {
		for c.itemsDense.Len() > c.itemSize {
			victim, _ := c.itemsDense.PopBack()
			c.inItemBits.unset(uint64(victim))
			if !c.presentDense(victim) {
				c.evicted = append(c.evicted, victim)
			}
		}
		for c.blockUsed > c.blockSize {
			victim, ok := c.blocksDense.Back()
			if !ok {
				break
			}
			c.dropBlockLayerDense(victim)
		}
		return
	}
	for c.items.Len() > c.itemSize {
		victim, _ := c.items.PopBack()
		if !c.present(victim) {
			c.evicted = append(c.evicted, victim)
		}
	}
	for c.blockUsed > c.blockSize {
		victim, ok := c.blocks.Back()
		if !ok {
			break
		}
		c.dropBlockLayer(victim)
	}
}

// Name implements cachesim.Cache.
func (c *IBLP) Name() string {
	if c.promoteOnItemHit {
		return fmt.Sprintf("iblp-promote-all(i=%d,b=%d)", c.itemSize, c.blockSize)
	}
	return fmt.Sprintf("iblp(i=%d,b=%d)", c.itemSize, c.blockSize)
}

// Access implements cachesim.Cache.
//
//gclint:hotpath
func (c *IBLP) Access(it model.Item) cachesim.Access {
	if c.itemsDense != nil {
		return c.accessDense(it)
	}
	if c.items.MoveToFront(it) {
		if c.promoteOnItemHit {
			blk := c.geo.BlockOf(it)
			if c.blocks.Contains(blk) {
				c.blocks.MoveToFront(blk)
			}
		}
		if c.probe != nil {
			c.probe.Observe(obs.Event{Kind: obs.EvHitItemLayer, Item: it})
		}
		return cachesim.Access{Hit: true}
	}

	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	blk := c.geo.BlockOf(it)
	if c.inBlockLayer(it) {
		// Block-layer hit: serve it, refresh the block's recency, and
		// copy the item into the item layer (an internal move — free).
		c.blocks.MoveToFront(blk)
		c.admitItemLayer(it)
		if c.probe != nil {
			c.probe.Observe(obs.Event{Kind: obs.EvHitBlockLayer, Item: it, Block: blk})
			for _, x := range c.evicted {
				c.probe.Observe(obs.Event{Kind: obs.EvEvict, Item: x})
			}
		}
		return cachesim.Access{Hit: true, Evicted: c.evicted}
	}

	// Full miss: one unit-cost load brings the requested item into the
	// item layer and the whole block into the block layer. The requested
	// item always ends up resident: either the item layer holds it, or
	// (i = 0) the block layer admits a copy truncated around it.
	c.admitItemLayer(it)
	c.admitBlockLayer(blk, it)
	// Replacing a stale truncated block copy can evict and reload the
	// same items within one step; report net changes only.
	c.loaded, c.evicted = c.rec.NetChanges(c.loaded, c.evicted)
	c.emitMiss(it, blk)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

// accessDense is Access on the bounded path, with every layer
// operation on the concrete flat-array types so the whole request —
// recency promotion, bitset membership, victim scans — compiles to
// inlined array arithmetic. It mirrors the generic path below exactly;
// TestIBLPDenseMatchesGeneric pins the equivalence.
//
//gclint:hotpath
func (c *IBLP) accessDense(it model.Item) cachesim.Access {
	if c.itemsDense.MoveToFront(it) {
		if c.promoteOnItemHit {
			// MoveToFront on an absent block is a no-op, matching the
			// generic path's Contains-then-promote.
			c.blocksDense.MoveToFront(c.geo.BlockOf(it))
		}
		if c.probe != nil {
			c.probe.Observe(obs.Event{Kind: obs.EvHitItemLayer, Item: it})
		}
		return cachesim.Access{Hit: true}
	}

	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	blk := c.geo.BlockOf(it)
	if c.inBlockBits.test(uint64(it)) {
		c.blocksDense.MoveToFront(blk)
		c.admitItemLayerDense(it)
		if c.probe != nil {
			c.probe.Observe(obs.Event{Kind: obs.EvHitBlockLayer, Item: it, Block: blk})
			for _, x := range c.evicted {
				c.probe.Observe(obs.Event{Kind: obs.EvEvict, Item: x})
			}
		}
		return cachesim.Access{Hit: true, Evicted: c.evicted}
	}

	c.admitItemLayerDense(it)
	c.admitBlockLayerDense(blk, it)
	c.loaded, c.evicted = c.rec.NetChanges(c.loaded, c.evicted)
	c.emitMiss(it, blk)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

// presentDense is present with both membership tests inlined.
//
//gclint:hotpath
func (c *IBLP) presentDense(it model.Item) bool {
	return c.inItemBits.test(uint64(it)) || c.inBlockBits.test(uint64(it))
}

// admitItemLayerDense mirrors admitItemLayer on concrete types.
//
//gclint:hotpath
func (c *IBLP) admitItemLayerDense(it model.Item) {
	if c.itemSize == 0 {
		return
	}
	was := c.presentDense(it)
	c.itemsDense.PushFront(it)
	c.inItemBits.set(uint64(it))
	if !was {
		c.loaded = append(c.loaded, it)
	}
	for c.itemsDense.Len() > c.itemSize {
		victim, _ := c.itemsDense.PopBack()
		c.inItemBits.unset(uint64(victim))
		if !c.presentDense(victim) {
			c.evicted = append(c.evicted, victim)
		}
	}
}

// admitBlockLayerDense mirrors admitBlockLayer on concrete types.
//
//gclint:hotpath
func (c *IBLP) admitBlockLayerDense(blk model.Block, requested model.Item) {
	if c.blockSize == 0 {
		return
	}
	if c.blocksDense.Contains(blk) {
		// Only possible for a previously truncated copy; replace it.
		c.dropBlockLayerDense(blk)
	}
	c.want = model.AppendItemsOf(c.geo, c.want[:0], blk)
	want := c.want
	if len(want) > c.blockSize {
		c.trunc = truncateAround(c.trunc, want, requested, c.blockSize)
		want = c.trunc
	}
	for c.blockUsed+len(want) > c.blockSize {
		victim, ok := c.blocksDense.Back()
		if !ok {
			break
		}
		c.dropBlockLayerDense(victim)
	}
	if c.blockUsed+len(want) > c.blockSize {
		return // layer cannot hold this block at all
	}
	c.blocksDense.PushFront(blk)
	c.blockUsed += len(want)
	for _, x := range want {
		was := c.presentDense(x)
		c.inBlockBits.set(uint64(x))
		if !was {
			c.loaded = append(c.loaded, x)
		}
	}
}

// dropBlockLayerDense mirrors dropBlockLayer on concrete types.
//
//gclint:hotpath
func (c *IBLP) dropBlockLayerDense(blk model.Block) {
	c.scratch = model.AppendItemsOf(c.geo, c.scratch[:0], blk)
	for _, x := range c.scratch {
		if c.inBlockBits.test(uint64(x)) {
			c.inBlockBits.unset(uint64(x))
			c.blockUsed--
			// The block-layer bit is clear now, so presence reduces to
			// item-layer membership.
			if !c.inItemBits.test(uint64(x)) {
				c.evicted = append(c.evicted, x)
			}
		}
	}
	c.blocksDense.Remove(blk)
}

// emitMiss reports a full miss's net changes to the probe: the
// unit-cost block load plus per-item load/evict events.
//
//gclint:hotpath
func (c *IBLP) emitMiss(it model.Item, blk model.Block) {
	if c.probe == nil {
		return
	}
	c.probe.Observe(obs.Event{Kind: obs.EvBlockLoad, Item: it, Block: blk, N: int32(len(c.loaded))})
	for _, x := range c.loaded {
		c.probe.Observe(obs.Event{Kind: obs.EvLoad, Item: x, Block: c.geo.BlockOf(x)})
	}
	for _, x := range c.evicted {
		c.probe.Observe(obs.Event{Kind: obs.EvEvict, Item: x, Block: c.geo.BlockOf(x)})
	}
}

// SetProbe implements cachesim.Instrumented. A nil probe restores the
// unobserved fast path.
func (c *IBLP) SetProbe(p obs.Probe) { c.probe = p }

// admitItemLayer inserts it at the item layer's MRU position, evicting
// its LRU as needed, and maintains overall loaded/evicted accounting.
//
//gclint:hotpath
func (c *IBLP) admitItemLayer(it model.Item) {
	if c.itemSize == 0 {
		return
	}
	was := c.present(it)
	c.items.PushFront(it)
	if !was {
		c.loaded = append(c.loaded, it)
	}
	for c.items.Len() > c.itemSize {
		victim, _ := c.items.PopBack()
		if !c.present(victim) {
			c.evicted = append(c.evicted, victim)
		}
	}
}

// admitBlockLayer loads blk's full item set into the block layer,
// evicting LRU blocks until it fits. Blocks larger than the layer are
// truncated around the requested item. Generic (map) path only —
// bounded caches route through admitBlockLayerDense.
//
//gclint:hotpath
func (c *IBLP) admitBlockLayer(blk model.Block, requested model.Item) {
	if c.blockSize == 0 {
		return
	}
	if c.blocks.Contains(blk) {
		// Only possible for a previously truncated copy; replace it.
		c.dropBlockLayer(blk)
	}
	c.want = model.AppendItemsOf(c.geo, c.want[:0], blk)
	want := c.want
	if len(want) > c.blockSize {
		c.trunc = truncateAround(c.trunc, want, requested, c.blockSize)
		want = c.trunc
	}
	for c.blockUsed+len(want) > c.blockSize {
		victim, ok := c.blocks.Back()
		if !ok {
			break
		}
		c.dropBlockLayer(victim)
	}
	if c.blockUsed+len(want) > c.blockSize {
		return // layer cannot hold this block at all
	}
	hold := make([]model.Item, len(want)) //gclint:allowalloc generic (map) path only; dense path uses admitBlockLayerDense
	copy(hold, want)
	c.resident[blk] = hold
	c.blocks.PushFront(blk)
	c.blockUsed += len(hold)
	for _, x := range hold {
		was := c.present(x)
		c.inBlock[x] = struct{}{}
		if !was {
			c.loaded = append(c.loaded, x)
		}
	}
}

// dropBlockLayer evicts blk from the block layer. Generic (map) path
// only — bounded caches route through dropBlockLayerDense.
//
//gclint:hotpath
func (c *IBLP) dropBlockLayer(blk model.Block) {
	items := c.resident[blk]
	for _, x := range items {
		delete(c.inBlock, x)
		if !c.present(x) {
			c.evicted = append(c.evicted, x)
		}
	}
	c.blockUsed -= len(items)
	delete(c.resident, blk)
	c.blocks.Remove(blk)
}

// inBlockLayer reports block-layer membership of it.
//
//gclint:hotpath
func (c *IBLP) inBlockLayer(it model.Item) bool {
	if c.inBlockBits != nil {
		return c.inBlockBits.test(uint64(it))
	}
	_, ok := c.inBlock[it]
	return ok
}

// present reports overall membership (either layer).
//
//gclint:hotpath
func (c *IBLP) present(it model.Item) bool {
	if c.itemsDense != nil {
		return c.presentDense(it)
	}
	return c.items.Contains(it) || c.inBlockLayer(it)
}

// truncateAround fills dst with up to n items of all, guaranteed to
// include must, and returns the filled slice. dst is a reusable
// scratch: it grows to n once, after which truncation is
// allocation-free (blocks wider than the layer truncate on every
// admission, so this runs in the replay steady state).
func truncateAround(dst, all []model.Item, must model.Item, n int) []model.Item {
	dst = append(dst[:0], must)
	for _, x := range all {
		if len(dst) >= n {
			break
		}
		if x != must {
			dst = append(dst, x)
		}
	}
	return dst
}

// Contains implements cachesim.Cache.
func (c *IBLP) Contains(it model.Item) bool { return c.present(it) }

// Len returns the number of distinct items present across both layers.
func (c *IBLP) Len() int {
	n := c.blockUsed
	c.items.Each(func(it model.Item) bool {
		if !c.inBlockLayer(it) {
			n++
		}
		return true
	})
	return n
}

// Capacity implements cachesim.Cache; it is i + b, the total space the
// two layers may occupy (duplicated items consume space in both layers,
// exactly as in the paper's non-inclusive, non-exclusive design).
func (c *IBLP) Capacity() int { return c.itemSize + c.blockSize }

// Reset implements cachesim.Cache.
func (c *IBLP) Reset() {
	c.items.Clear()
	c.blocks.Clear()
	if c.inBlockBits != nil {
		c.inBlockBits.reset()
		c.inItemBits.reset()
	} else {
		clear(c.resident)
		clear(c.inBlock)
	}
	c.blockUsed = 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
