package core

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/lrulist"
	"gccache/internal/model"
	"gccache/internal/policy"
)

// IBLPInclusive is the §5.1 ablation in which the block layer is
// *inclusive* of the item layer. As the paper observes, "the item layer
// would not contribute to the overall hit rate": every item-layer
// resident is also a block-layer resident, so the reachable contents are
// exactly those of a Block Cache of size b — with i items of budget spent
// on duplicates. It is implemented as such, a Block Cache that charges
// itself for the wasted item layer.
type IBLPInclusive struct {
	inner     *policy.BlockLRU
	itemSize  int
	blockSize int
}

var _ cachesim.Cache = (*IBLPInclusive)(nil)

// NewIBLPInclusive returns the inclusive ablation variant with nominal
// layer sizes i and b (total budget i+b, useful contents ≤ b).
func NewIBLPInclusive(i, b int, g model.Geometry) *IBLPInclusive {
	if i < 0 || b < 1 {
		panic(fmt.Sprintf("core: IBLPInclusive layer sizes i=%d b=%d invalid", i, b))
	}
	return &IBLPInclusive{inner: policy.NewBlockLRU(b, g), itemSize: i, blockSize: b}
}

// Name implements cachesim.Cache.
func (c *IBLPInclusive) Name() string {
	return fmt.Sprintf("iblp-inclusive(i=%d,b=%d)", c.itemSize, c.blockSize)
}

// Access implements cachesim.Cache.
func (c *IBLPInclusive) Access(it model.Item) cachesim.Access { return c.inner.Access(it) }

// Contains implements cachesim.Cache.
func (c *IBLPInclusive) Contains(it model.Item) bool { return c.inner.Contains(it) }

// Len implements cachesim.Cache.
func (c *IBLPInclusive) Len() int { return c.inner.Len() }

// Capacity implements cachesim.Cache: the full i+b budget, of which only
// b is ever useful — the point of the ablation.
func (c *IBLPInclusive) Capacity() int { return c.itemSize + c.blockSize }

// Reset implements cachesim.Cache.
func (c *IBLPInclusive) Reset() { c.inner.Reset() }

// IBLPExclusive is the §5.1 ablation in which the layers are *exclusive*:
// no item is ever held twice. On a block-layer hit the item migrates out
// of the block copy into the item layer. The paper notes this "would
// avoid duplicating items, but would require a more complicated method of
// tracking items to ensure none are evicted before their lifetimes expire
// in both partitions" — the hazard being that migrated-out items leave
// holes, so a block evicted from the block layer takes its remaining
// (unaccessed) siblings with it even though their spatial lifetime may
// not be over.
type IBLPExclusive struct {
	itemSize  int
	blockSize int
	geo       model.Geometry

	items *lrulist.List[model.Item]

	blocks    *lrulist.List[model.Block]
	resident  map[model.Block]map[model.Item]struct{} // holes appear as items migrate
	inBlock   map[model.Item]model.Block
	blockUsed int

	rec     cachesim.Reconciler
	loaded  []model.Item
	evicted []model.Item
	sibBuf  []model.Item // scratch: block enumeration
}

var _ cachesim.Cache = (*IBLPExclusive)(nil)

// NewIBLPExclusive returns the exclusive ablation variant with item layer
// i and block layer b under g.
func NewIBLPExclusive(i, b int, g model.Geometry) *IBLPExclusive {
	if i < 1 || b < 0 {
		panic(fmt.Sprintf("core: IBLPExclusive layer sizes i=%d b=%d invalid", i, b))
	}
	if g == nil {
		panic("core: IBLPExclusive nil geometry")
	}
	return &IBLPExclusive{
		itemSize:  i,
		blockSize: b,
		geo:       g,
		items:     lrulist.New[model.Item](i),
		blocks:    lrulist.New[model.Block](b/maxInt(1, g.BlockSize()) + 1),
		resident:  make(map[model.Block]map[model.Item]struct{}),
		inBlock:   make(map[model.Item]model.Block),
	}
}

// Name implements cachesim.Cache.
func (c *IBLPExclusive) Name() string {
	return fmt.Sprintf("iblp-exclusive(i=%d,b=%d)", c.itemSize, c.blockSize)
}

// Access implements cachesim.Cache.
func (c *IBLPExclusive) Access(it model.Item) cachesim.Access {
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]

	if c.items.MoveToFront(it) {
		return cachesim.Access{Hit: true}
	}
	if blk, ok := c.inBlock[it]; ok {
		// Block-layer hit: migrate the item into the item layer,
		// leaving a hole in the block copy.
		c.removeFromBlock(it, blk)
		c.blocks.MoveToFront(blk)
		c.admitItem(it)
		return cachesim.Access{Hit: true, Evicted: c.evicted}
	}

	// Miss: requested item to the item layer, remaining siblings (those
	// not already cached anywhere) to the block layer.
	c.admitItem(it)
	c.loaded = append(c.loaded, it)
	c.admitSiblings(it)
	c.loaded, c.evicted = c.rec.NetChanges(c.loaded, c.evicted)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

func (c *IBLPExclusive) admitItem(it model.Item) {
	c.items.PushFront(it)
	for c.items.Len() > c.itemSize {
		victim, _ := c.items.PopBack()
		// Exclusive: the evicted item exists nowhere else.
		c.evicted = append(c.evicted, victim)
	}
}

func (c *IBLPExclusive) admitSiblings(it model.Item) {
	if c.blockSize == 0 {
		return
	}
	blk := c.geo.BlockOf(it)
	if set, ok := c.resident[blk]; ok {
		// Refresh: drop the stale partial copy first.
		c.dropBlock(blk, set)
	}
	c.sibBuf = model.AppendItemsOf(c.geo, c.sibBuf[:0], blk)
	var want []model.Item
	for _, sib := range c.sibBuf {
		if sib == it || c.items.Contains(sib) {
			continue
		}
		want = append(want, sib)
		if len(want) >= c.blockSize {
			break
		}
	}
	if len(want) == 0 {
		return
	}
	for c.blockUsed+len(want) > c.blockSize {
		victim, ok := c.blocks.Back()
		if !ok {
			return // nothing evictable and no room
		}
		c.dropBlock(victim, c.resident[victim])
	}
	set := make(map[model.Item]struct{}, len(want))
	for _, x := range want {
		set[x] = struct{}{}
		c.inBlock[x] = blk
		c.loaded = append(c.loaded, x)
	}
	c.resident[blk] = set
	c.blocks.PushFront(blk)
	c.blockUsed += len(set)
}

func (c *IBLPExclusive) removeFromBlock(it model.Item, blk model.Block) {
	set := c.resident[blk]
	delete(set, it)
	delete(c.inBlock, it)
	c.blockUsed--
	if len(set) == 0 {
		delete(c.resident, blk)
		c.blocks.Remove(blk)
	}
}

func (c *IBLPExclusive) dropBlock(blk model.Block, set map[model.Item]struct{}) {
	for x := range set {
		delete(c.inBlock, x)
		// Exclusive: dropping the block copy is a true eviction — the
		// lifetime hazard §5.1 warns about.
		c.evicted = append(c.evicted, x)
	}
	c.blockUsed -= len(set)
	delete(c.resident, blk)
	c.blocks.Remove(blk)
}

// Contains implements cachesim.Cache.
func (c *IBLPExclusive) Contains(it model.Item) bool {
	if c.items.Contains(it) {
		return true
	}
	_, ok := c.inBlock[it]
	return ok
}

// Len implements cachesim.Cache: exclusive, so no double counting.
func (c *IBLPExclusive) Len() int { return c.items.Len() + c.blockUsed }

// Capacity implements cachesim.Cache.
func (c *IBLPExclusive) Capacity() int { return c.itemSize + c.blockSize }

// Reset implements cachesim.Cache.
func (c *IBLPExclusive) Reset() {
	c.items.Clear()
	c.blocks.Clear()
	clear(c.resident)
	clear(c.inBlock)
	c.blockUsed = 0
}

// GCMMarkAll is the §6.1 ablation of GCM that marks *every* loaded item,
// not just the requested one. The paper: "a policy that loads and marks
// every item in the block also has issues ... when the trace does not
// provide spatial locality, the effective size of the cache is reduced by
// the excess items" — marked never-used siblings crowd out live items
// until the phase ends.
type GCMMarkAll struct {
	inner *GCM
}

var _ cachesim.Cache = (*GCMMarkAll)(nil)

// NewGCMMarkAll returns the mark-everything ablation of GCM.
func NewGCMMarkAll(k int, g model.Geometry, seed int64) *GCMMarkAll {
	return &GCMMarkAll{inner: NewGCM(k, g, seed)}
}

// Name implements cachesim.Cache.
func (c *GCMMarkAll) Name() string { return "gcm-mark-all" }

// Access implements cachesim.Cache.
func (c *GCMMarkAll) Access(it model.Item) cachesim.Access {
	a := c.inner.Access(it)
	for _, l := range a.Loaded {
		c.inner.mark(l)
	}
	return a
}

// Reseed implements cachesim.Reseeder.
func (c *GCMMarkAll) Reseed(seed int64) { c.inner.Reseed(seed) }

// Contains implements cachesim.Cache.
func (c *GCMMarkAll) Contains(it model.Item) bool { return c.inner.Contains(it) }

// Len implements cachesim.Cache.
func (c *GCMMarkAll) Len() int { return c.inner.Len() }

// Capacity implements cachesim.Cache.
func (c *GCMMarkAll) Capacity() int { return c.inner.Capacity() }

// Reset implements cachesim.Cache.
func (c *GCMMarkAll) Reset() { c.inner.Reset() }
