package core

import (
	"fmt"
	"math/rand"

	"gccache/internal/cachesim"
	"gccache/internal/model"
)

// GCM is Granularity-Change Marking (§6.1), the paper's randomized
// policy. It extends classic marking to the GC model: requested items are
// marked; on a miss the whole accessed block is loaded but only the
// requested item is marked, so spatial-locality items enter the cache
// without displacing marked (temporal-locality) items. Evictions choose a
// uniformly random *unmarked* item; when every resident item is marked,
// all marks are cleared (a new phase) before evicting.
//
// In the common case where 0 < unmarked < B, loading a block therefore
// replaces exactly the unmarked items with (randomly selected) items of
// the accessed block, as the paper describes.
type GCM struct {
	capacity int
	geo      model.Geometry
	rng      *rand.Rand

	items  []model.Item       // indexable resident set
	index  map[model.Item]int // item -> position in items
	marked map[model.Item]struct{}

	loaded  []model.Item
	evicted []model.Item
}

var _ cachesim.Cache = (*GCM)(nil)

// NewGCM returns a GCM cache of capacity k under g with the given seed.
// It panics if k < 1 or g is nil.
func NewGCM(k int, g model.Geometry, seed int64) *GCM {
	if k < 1 {
		panic(fmt.Sprintf("core: GCM capacity %d < 1", k))
	}
	if g == nil {
		panic("core: GCM nil geometry")
	}
	return &GCM{
		capacity: k,
		geo:      g,
		rng:      rand.New(rand.NewSource(seed)),
		index:    make(map[model.Item]int, k),
		marked:   make(map[model.Item]struct{}, k),
	}
}

// Name implements cachesim.Cache.
func (c *GCM) Name() string { return "gcm" }

// Access implements cachesim.Cache.
func (c *GCM) Access(it model.Item) cachesim.Access {
	if _, ok := c.index[it]; ok {
		c.marked[it] = struct{}{}
		return cachesim.Access{Hit: true}
	}
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]

	// Ensure room for the requested item itself.
	if len(c.items) >= c.capacity {
		c.evictOne()
	}
	c.insert(it)
	c.marked[it] = struct{}{}
	c.loaded = append(c.loaded, it)

	// Load the rest of the block, unmarked, into whatever free space and
	// unmarked slots exist. Siblings are taken in random order so that
	// when slots run short the retained subset is a random selection, as
	// §6.1 specifies.
	siblings := c.shuffledSiblings(it)
	for _, sib := range siblings {
		if _, resident := c.index[sib]; resident {
			continue
		}
		if len(c.items) >= c.capacity {
			if len(c.marked) >= len(c.items) {
				break // no unmarked victims: stop loading, do NOT reset phase
			}
			c.evictOne()
		}
		c.insert(sib)
		c.loaded = append(c.loaded, sib)
	}
	// A random eviction may hit a sibling loaded earlier in this same
	// access; report net changes only.
	c.loaded, c.evicted = cachesim.NetChanges(c.loaded, c.evicted)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

// shuffledSiblings returns the non-requested items of it's block in a
// random order.
func (c *GCM) shuffledSiblings(it model.Item) []model.Item {
	all := c.geo.ItemsOf(c.geo.BlockOf(it))
	out := make([]model.Item, 0, len(all))
	for _, x := range all {
		if x != it {
			out = append(out, x)
		}
	}
	c.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// evictOne removes one random unmarked item, starting a new phase first
// if everything is marked.
func (c *GCM) evictOne() {
	if len(c.marked) >= len(c.items) {
		clear(c.marked) // phase boundary
	}
	for {
		victim := c.items[c.rng.Intn(len(c.items))]
		if _, m := c.marked[victim]; m {
			continue
		}
		c.remove(victim)
		c.evicted = append(c.evicted, victim)
		return
	}
}

func (c *GCM) insert(it model.Item) {
	c.index[it] = len(c.items)
	c.items = append(c.items, it)
}

func (c *GCM) remove(it model.Item) {
	pos := c.index[it]
	last := len(c.items) - 1
	c.items[pos] = c.items[last]
	c.index[c.items[pos]] = pos
	c.items = c.items[:last]
	delete(c.index, it)
	delete(c.marked, it)
}

// Contains implements cachesim.Cache.
func (c *GCM) Contains(it model.Item) bool {
	_, ok := c.index[it]
	return ok
}

// Len implements cachesim.Cache.
func (c *GCM) Len() int { return len(c.items) }

// Capacity implements cachesim.Cache.
func (c *GCM) Capacity() int { return c.capacity }

// Reset implements cachesim.Cache.
func (c *GCM) Reset() {
	c.items = c.items[:0]
	clear(c.index)
	clear(c.marked)
}

// MarkedCount reports the number of currently marked items (for tests).
func (c *GCM) MarkedCount() int { return len(c.marked) }
