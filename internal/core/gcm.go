package core

import (
	"fmt"
	"math/rand"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/obs"
)

// GCM is Granularity-Change Marking (§6.1), the paper's randomized
// policy. It extends classic marking to the GC model: requested items are
// marked; on a miss the whole accessed block is loaded but only the
// requested item is marked, so spatial-locality items enter the cache
// without displacing marked (temporal-locality) items. Evictions choose a
// uniformly random *unmarked* item; when every resident item is marked,
// all marks are cleared (a new phase) before evicting.
//
// In the common case where 0 < unmarked < B, loading a block therefore
// replaces exactly the unmarked items with (randomly selected) items of
// the accessed block, as the paper describes.
//
// Two interchangeable representations back the policy: the generic path
// (position and mark maps, any item IDs) and the bounded dense path
// (NewGCMBounded — flat position/mark arrays over a declared universe;
// steady-state accesses neither hash nor allocate). Both paths make
// identical random decisions and consume the seeded rng identically, so
// simulation results are bit-for-bit equal.
type GCM struct {
	capacity int
	geo      model.Geometry
	rng      *rand.Rand

	items []model.Item // indexable resident set

	// Generic path (nil on the dense path):
	index  map[model.Item]int // item -> position in items
	marked map[model.Item]struct{}

	// Dense path (nil on the generic path): pos[it] is position+1 in
	// items (0 = absent); markedCount tracks set bits of markedBits.
	pos         []int32
	markedBits  []bool
	markedCount int

	rec     cachesim.Reconciler
	loaded  []model.Item
	evicted []model.Item
	sibs    []model.Item // scratch: shuffled sibling order
	probe   obs.Probe
}

var _ cachesim.Cache = (*GCM)(nil)
var _ cachesim.Reseeder = (*GCM)(nil)
var _ cachesim.Instrumented = (*GCM)(nil)

// NewGCM returns a GCM cache of capacity k under g with the given seed.
// It panics if k < 1 or g is nil.
func NewGCM(k int, g model.Geometry, seed int64) *GCM {
	if k < 1 {
		panic(fmt.Sprintf("core: GCM capacity %d < 1", k))
	}
	if g == nil {
		panic("core: GCM nil geometry")
	}
	return &GCM{
		capacity: k,
		geo:      g,
		rng:      rand.New(rand.NewSource(seed)),
		index:    make(map[model.Item]int, k),
		marked:   make(map[model.Item]struct{}, k),
	}
}

// NewGCMBounded returns a GCM cache on the dense path for item IDs
// [0, universe): flat position and mark arrays and an array-backed
// net-change reconciler — no map operations and no steady-state
// allocation. The bound is expanded to cover whole blocks (see
// model.ItemUniverse, since sibling loads index the arrays too);
// accessing an item beyond the expanded bound panics. It falls back to
// the generic representation when universe is out of the bounded range.
func NewGCMBounded(k int, g model.Geometry, seed int64, universe int) *GCM {
	c := NewGCM(k, g, seed)
	universe = model.ItemUniverse(g, universe)
	if universe <= 0 || universe > cachesim.MaxBoundedUniverse {
		return c
	}
	c.index = nil
	c.marked = nil
	c.pos = make([]int32, universe)
	c.markedBits = make([]bool, universe)
	c.rec = *cachesim.NewReconciler(universe)
	return c
}

// Name implements cachesim.Cache.
func (c *GCM) Name() string { return "gcm" }

// Access implements cachesim.Cache.
//
//gclint:hotpath
func (c *GCM) Access(it model.Item) cachesim.Access {
	if c.contains(it) {
		c.mark(it)
		if c.probe != nil {
			c.probe.Observe(obs.Event{Kind: obs.EvHit, Item: it})
		}
		return cachesim.Access{Hit: true}
	}
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]

	// Ensure room for the requested item itself.
	if len(c.items) >= c.capacity {
		c.evictOne()
	}
	c.insert(it)
	c.mark(it)
	c.loaded = append(c.loaded, it)

	// Load the rest of the block, unmarked, into whatever free space and
	// unmarked slots exist. Siblings are taken in random order so that
	// when slots run short the retained subset is a random selection, as
	// §6.1 specifies.
	for _, sib := range c.shuffledSiblings(it) {
		if c.contains(sib) {
			continue
		}
		if len(c.items) >= c.capacity {
			if c.markedLen() >= len(c.items) {
				break // no unmarked victims: stop loading, do NOT reset phase
			}
			c.evictOne()
		}
		c.insert(sib)
		c.loaded = append(c.loaded, sib)
	}
	// A random eviction may hit a sibling loaded earlier in this same
	// access; report net changes only.
	c.loaded, c.evicted = c.rec.NetChanges(c.loaded, c.evicted)
	c.emitMiss(it)
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

// emitMiss reports a miss's net changes to the probe: the unit-cost
// block load plus per-item load/evict events.
//
//gclint:hotpath
func (c *GCM) emitMiss(it model.Item) {
	if c.probe == nil {
		return
	}
	blk := c.geo.BlockOf(it)
	c.probe.Observe(obs.Event{Kind: obs.EvBlockLoad, Item: it, Block: blk, N: int32(len(c.loaded))})
	for _, x := range c.loaded {
		c.probe.Observe(obs.Event{Kind: obs.EvLoad, Item: x, Block: c.geo.BlockOf(x)})
	}
	for _, x := range c.evicted {
		c.probe.Observe(obs.Event{Kind: obs.EvEvict, Item: x, Block: c.geo.BlockOf(x)})
	}
}

// SetProbe implements cachesim.Instrumented. A nil probe restores the
// unobserved fast path.
func (c *GCM) SetProbe(p obs.Probe) { c.probe = p }

// shuffledSiblings returns the non-requested items of it's block in a
// random order, in a scratch slice valid until the next call.
//
//gclint:hotpath
func (c *GCM) shuffledSiblings(it model.Item) []model.Item {
	c.sibs = model.AppendItemsOf(c.geo, c.sibs[:0], c.geo.BlockOf(it))
	for i, x := range c.sibs {
		if x == it {
			c.sibs = append(c.sibs[:i], c.sibs[i+1:]...)
			break
		}
	}
	c.rng.Shuffle(len(c.sibs), func(i, j int) { c.sibs[i], c.sibs[j] = c.sibs[j], c.sibs[i] }) //gclint:allowalloc swap closure does not escape (0 allocs/op, see BenchmarkAccessGCM)
	return c.sibs
}

// evictOne removes one random unmarked item, starting a new phase first
// if everything is marked.
//
//gclint:hotpath
func (c *GCM) evictOne() {
	if c.markedLen() >= len(c.items) {
		c.clearMarks() // phase boundary
	}
	for {
		victim := c.items[c.rng.Intn(len(c.items))]
		if c.isMarked(victim) {
			continue
		}
		c.remove(victim)
		c.evicted = append(c.evicted, victim)
		return
	}
}

//gclint:hotpath
func (c *GCM) insert(it model.Item) {
	if c.pos != nil {
		c.pos[it] = int32(len(c.items)) + 1
	} else {
		c.index[it] = len(c.items)
	}
	c.items = append(c.items, it)
}

//gclint:hotpath
func (c *GCM) remove(it model.Item) {
	last := len(c.items) - 1
	if c.pos != nil {
		p := c.pos[it] - 1
		c.items[p] = c.items[last]
		c.pos[c.items[p]] = p + 1
		c.items = c.items[:last]
		c.pos[it] = 0
		if c.markedBits[it] {
			c.markedBits[it] = false
			c.markedCount--
		}
		return
	}
	p := c.index[it]
	c.items[p] = c.items[last]
	c.index[c.items[p]] = p
	c.items = c.items[:last]
	delete(c.index, it)
	delete(c.marked, it)
}

//gclint:hotpath
func (c *GCM) contains(it model.Item) bool {
	if c.pos != nil {
		return c.pos[it] != 0
	}
	_, ok := c.index[it]
	return ok
}

// mark marks a resident item (idempotent); the probe sees EvMark only
// when the mark state actually flips.
//
//gclint:hotpath
func (c *GCM) mark(it model.Item) {
	if c.markedBits != nil {
		if !c.markedBits[it] {
			c.markedBits[it] = true
			c.markedCount++
			if c.probe != nil {
				c.probe.Observe(obs.Event{Kind: obs.EvMark, Item: it})
			}
		}
		return
	}
	if _, ok := c.marked[it]; ok {
		return
	}
	c.marked[it] = struct{}{}
	if c.probe != nil {
		c.probe.Observe(obs.Event{Kind: obs.EvMark, Item: it})
	}
}

//gclint:hotpath
func (c *GCM) isMarked(it model.Item) bool {
	if c.markedBits != nil {
		return c.markedBits[it]
	}
	_, m := c.marked[it]
	return m
}

//gclint:hotpath
func (c *GCM) markedLen() int {
	if c.markedBits != nil {
		return c.markedCount
	}
	return len(c.marked)
}

// clearMarks unmarks every resident item (O(residents), not O(universe)).
// The probe sees this as EvPhaseReset with N = marks dropped.
//
//gclint:hotpath
func (c *GCM) clearMarks() {
	if c.probe != nil {
		c.probe.Observe(obs.Event{Kind: obs.EvPhaseReset, N: int32(c.markedLen())})
	}
	if c.markedBits != nil {
		for _, x := range c.items {
			c.markedBits[x] = false
		}
		c.markedCount = 0
		return
	}
	clear(c.marked)
}

// Contains implements cachesim.Cache.
func (c *GCM) Contains(it model.Item) bool { return c.contains(it) }

// Len implements cachesim.Cache.
func (c *GCM) Len() int { return len(c.items) }

// Capacity implements cachesim.Cache.
func (c *GCM) Capacity() int { return c.capacity }

// Reset implements cachesim.Cache.
func (c *GCM) Reset() {
	if c.pos != nil {
		for _, x := range c.items {
			c.pos[x] = 0
			c.markedBits[x] = false
		}
		c.markedCount = 0
	} else {
		clear(c.index)
		clear(c.marked)
	}
	c.items = c.items[:0]
}

// Reseed implements cachesim.Reseeder: it restores the rng to the state
// of a fresh NewGCM with the given seed, so Reseed+Reset on a pooled
// instance reproduces a newly constructed cache exactly.
func (c *GCM) Reseed(seed int64) { c.rng = rand.New(rand.NewSource(seed)) }

// MarkedCount reports the number of currently marked items (for tests).
func (c *GCM) MarkedCount() int { return c.markedLen() }
