package core

import (
	"math/rand"
	"sort"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
)

// genTrace builds a trace with mixed spatial/temporal locality over item
// IDs [0, universe): runs within a block, revisits, and random jumps.
func genTrace(rng *rand.Rand, universe, length, blockSize int) []model.Item {
	tr := make([]model.Item, 0, length)
	cur := model.Item(rng.Intn(universe))
	for len(tr) < length {
		switch rng.Intn(4) {
		case 0:
			cur = model.Item(rng.Intn(universe))
			tr = append(tr, cur)
		case 1:
			if len(tr) > 0 {
				back := len(tr)
				if back > 32 {
					back = 32
				}
				cur = tr[len(tr)-1-rng.Intn(back)]
			}
			tr = append(tr, cur)
		default:
			base := uint64(cur) / uint64(blockSize) * uint64(blockSize)
			for n := rng.Intn(blockSize) + 1; n > 0 && len(tr) < length; n-- {
				cur = model.Item(base + uint64(rng.Intn(blockSize)))
				if int(cur) >= universe {
					cur = model.Item(universe - 1)
				}
				tr = append(tr, cur)
			}
		}
	}
	return tr
}

func sortedCopy(items []model.Item) []model.Item {
	out := append([]model.Item(nil), items...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalItems(a, b []model.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffCaches feeds tr to both caches and requires identical per-access
// outcomes: Hit flags and loaded/evicted *sets* (order may legitimately
// differ between representations; no consumer is order-sensitive).
func diffCaches(t *testing.T, generic, dense cachesim.Cache, tr []model.Item) {
	t.Helper()
	for i, it := range tr {
		ag := generic.Access(it)
		ad := dense.Access(it)
		if ag.Hit != ad.Hit {
			t.Fatalf("access %d (item %d): generic hit=%v dense hit=%v", i, it, ag.Hit, ad.Hit)
		}
		if !equalItems(sortedCopy(ag.Loaded), sortedCopy(ad.Loaded)) {
			t.Fatalf("access %d (item %d): loaded sets diverge\n generic %v\n dense   %v",
				i, it, sortedCopy(ag.Loaded), sortedCopy(ad.Loaded))
		}
		if !equalItems(sortedCopy(ag.Evicted), sortedCopy(ad.Evicted)) {
			t.Fatalf("access %d (item %d): evicted sets diverge\n generic %v\n dense   %v",
				i, it, sortedCopy(ag.Evicted), sortedCopy(ad.Evicted))
		}
		if generic.Len() != dense.Len() {
			t.Fatalf("access %d: Len diverged generic=%d dense=%d", i, generic.Len(), dense.Len())
		}
	}
	for probe := 0; probe < 256; probe++ {
		it := tr[probe*len(tr)/256]
		if generic.Contains(it) != dense.Contains(it) {
			t.Fatalf("Contains(%d) diverged", it)
		}
	}
}

func TestIBLPDenseMatchesGeneric(t *testing.T) {
	const universe = 4096
	for _, blockSize := range []int{1, 8, 64} {
		g := model.NewFixed(blockSize)
		rng := rand.New(rand.NewSource(int64(blockSize)))
		tr := genTrace(rng, universe, 50000, blockSize)
		diffCaches(t, NewIBLPEvenSplit(256, g), NewIBLPEvenSplitBounded(256, g, universe), tr)
	}
}

// TestIBLPDenseExtremeSplits covers i=0 (pure block layer) and b=0 (pure
// item layer) plus a block layer smaller than one block (truncation).
func TestIBLPDenseExtremeSplits(t *testing.T) {
	const universe = 1024
	g := model.NewFixed(16)
	rng := rand.New(rand.NewSource(5))
	tr := genTrace(rng, universe, 30000, 16)
	for _, split := range [][2]int{{0, 128}, {128, 0}, {120, 8}} {
		i, b := split[0], split[1]
		diffCaches(t, NewIBLP(i, b, g), NewIBLPBounded(i, b, g, universe), tr)
	}
}

func TestIBLPDenseReset(t *testing.T) {
	const universe = 2048
	g := model.NewFixed(8)
	rng := rand.New(rand.NewSource(6))
	tr := genTrace(rng, universe, 30000, 8)
	pooled := NewIBLPEvenSplitBounded(128, g, universe)
	for _, it := range tr[:7000] {
		pooled.Access(it)
	}
	pooled.Reset()
	diffCaches(t, NewIBLPEvenSplit(128, g), pooled, tr)
}

// TestGCMDenseMatchesGeneric requires bit-for-bit equality: both
// representations must consume the shared seed's random stream
// identically, so every random eviction picks the same victim.
func TestGCMDenseMatchesGeneric(t *testing.T) {
	const universe = 2048
	for _, blockSize := range []int{1, 8, 32} {
		g := model.NewFixed(blockSize)
		rng := rand.New(rand.NewSource(int64(100 + blockSize)))
		tr := genTrace(rng, universe, 40000, blockSize)
		generic := NewGCM(192, g, 77)
		dense := NewGCMBounded(192, g, 77, universe)
		if dense.pos == nil {
			t.Fatalf("B=%d: bounded constructor fell back unexpectedly", blockSize)
		}
		diffCaches(t, generic, dense, tr)
		if generic.MarkedCount() != dense.MarkedCount() {
			t.Fatalf("B=%d: marked counts diverged %d vs %d",
				blockSize, generic.MarkedCount(), dense.MarkedCount())
		}
	}
}

// TestGCMReseedEqualsFresh proves the Reseeder contract: Reseed+Reset on
// a used instance must reproduce a freshly constructed cache exactly.
func TestGCMReseedEqualsFresh(t *testing.T) {
	const universe = 1024
	g := model.NewFixed(8)
	rng := rand.New(rand.NewSource(8))
	tr := genTrace(rng, universe, 20000, 8)

	pooled := NewGCMBounded(128, g, 1, universe)
	for _, it := range tr[:5000] {
		pooled.Access(it)
	}
	pooled.Reseed(99)
	pooled.Reset()
	fresh := NewGCMBounded(128, g, 99, universe)
	diffCaches(t, fresh, pooled, tr)
}

func TestGCMMarkAllDenseMatchesGeneric(t *testing.T) {
	const universe = 1024
	g := model.NewFixed(8)
	rng := rand.New(rand.NewSource(12))
	tr := genTrace(rng, universe, 30000, 8)
	generic := NewGCMMarkAll(128, g, 5)
	dense := &GCMMarkAll{inner: NewGCMBounded(128, g, 5, universe)}
	diffCaches(t, generic, dense, tr)
}

func TestIBLPDenseZeroAllocSteadyState(t *testing.T) {
	const universe = 1 << 12
	g := model.NewFixed(16)
	c := NewIBLPEvenSplitBounded(512, g, universe)
	for i := 0; i < universe*2; i++ {
		c.Access(model.Item(i % universe))
	}
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		c.Access(model.Item(i % universe))
		i += 37
	}); avg != 0 {
		t.Errorf("IBLP dense path allocates %.2f allocs/access, want 0", avg)
	}
}
