package core

import (
	"math/rand"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/trace"
)

func mustHit(t *testing.T, c cachesim.Cache, it model.Item) cachesim.Access {
	t.Helper()
	a := c.Access(it)
	if !a.Hit {
		t.Fatalf("%s: access %d: want hit", c.Name(), it)
	}
	return a
}

func mustMiss(t *testing.T, c cachesim.Cache, it model.Item) cachesim.Access {
	t.Helper()
	a := c.Access(it)
	if a.Hit {
		t.Fatalf("%s: access %d: want miss", c.Name(), it)
	}
	return a
}

func TestIBLPMissLoadsBothLayers(t *testing.T) {
	g := model.NewFixed(4)
	c := NewIBLP(2, 8, g)
	a := mustMiss(t, c, 1)
	// Overall: item 1 (item layer + block copy) plus siblings 0,2,3.
	if len(a.Loaded) != 4 {
		t.Fatalf("Loaded = %v, want 4 distinct items", a.Loaded)
	}
	for it := model.Item(0); it < 4; it++ {
		if !c.Contains(it) {
			t.Errorf("missing %d", it)
		}
	}
	// Siblings give spatial hits.
	mustHit(t, c, 2)
	mustHit(t, c, 3)
}

func TestIBLPItemLayerHitDoesNotReorderBlockLayer(t *testing.T) {
	g := model.NewFixed(2)
	c := NewIBLP(2, 4, g) // block layer: 2 block frames
	mustMiss(t, c, 0)     // block 0 in block layer; 0 in item layer
	mustMiss(t, c, 2)     // block 1; item layer {2,0}; block LRU: [1, 0]
	// Hammer item 0 via item-layer hits: block 0 must NOT be promoted.
	for j := 0; j < 5; j++ {
		mustHit(t, c, 0)
	}
	// New block 2 evicts the block-layer LRU, which must be block 0
	// (unpromoted despite the hits on item 0).
	mustMiss(t, c, 4)
	if c.Contains(1) {
		t.Error("block 0 survived in block layer: item hits reordered it")
	}
	// Item 0 itself survives in the item layer.
	if !c.Contains(0) {
		t.Error("item 0 lost from item layer")
	}
}

func TestIBLPPromoteAllAblationDiffers(t *testing.T) {
	g := model.NewFixed(2)
	c := NewIBLPPromoteAll(2, 4, g)
	mustMiss(t, c, 0)
	mustMiss(t, c, 2)
	for j := 0; j < 5; j++ {
		mustHit(t, c, 0) // promotes block 0 in the ablation variant
	}
	mustMiss(t, c, 4) // evicts block 1 (LRU after promotion of block 0)
	if c.Contains(3) {
		t.Error("block 1 should have been evicted in promote-all variant")
	}
	if !c.Contains(1) {
		t.Error("block 0 should have survived in promote-all variant")
	}
}

func TestIBLPBlockLayerHitPromotesAndFillsItemLayer(t *testing.T) {
	g := model.NewFixed(2)
	c := NewIBLP(1, 4, g)
	mustMiss(t, c, 0) // item layer {0}, block layer {block0}
	mustMiss(t, c, 2) // item layer {2}, block layer {block1, block0}
	// 1 is only in the block layer: hit there, promote block 0.
	mustHit(t, c, 1)
	// Now block layer LRU is block 1; miss on block 2 evicts it.
	mustMiss(t, c, 4)
	if c.Contains(3) {
		t.Error("block 1 not evicted")
	}
	if !c.Contains(0) {
		t.Error("block 0 lost despite promotion")
	}
	// 1 was copied into the item layer (size 1), so it's present even
	// if... verify it is present at all.
	if !c.Contains(1) {
		t.Error("1 lost")
	}
}

func TestIBLPNeitherInclusiveNorExclusive(t *testing.T) {
	g := model.NewFixed(2)
	c := NewIBLP(1, 2, g)
	mustMiss(t, c, 0) // 0 in both layers; 1 only in block layer
	// Evict block 0 from block layer by loading block 1.
	mustMiss(t, c, 2) // item layer (size 1) now holds 2; block layer holds block 1
	// 0 was in the item layer, but item layer size 1 means it was
	// displaced by 2. 1 was only in block layer → gone with block 0.
	if c.Contains(0) || c.Contains(1) {
		t.Error("block 0 contents should be fully gone")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Error("block 1 contents missing")
	}
}

func TestIBLPItemLayerSurvivesBlockEviction(t *testing.T) {
	g := model.NewFixed(2)
	c := NewIBLP(4, 2, g) // item layer 4, block layer 1 frame
	mustMiss(t, c, 0)     // 0 in item layer + block 0 in block layer
	mustMiss(t, c, 2)     // block 1 replaces block 0; 0 still in item layer
	if !c.Contains(0) {
		t.Error("0 lost: item layer must retain it")
	}
	if c.Contains(1) {
		t.Error("1 should be gone (was only in block layer)")
	}
}

func TestIBLPZeroBlockLayerIsItemCache(t *testing.T) {
	g := model.NewFixed(4)
	rng := rand.New(rand.NewSource(4))
	tr := make(trace.Trace, 4000)
	for i := range tr {
		tr[i] = model.Item(rng.Intn(64))
	}
	a := cachesim.RunCold(NewIBLP(10, 0, g), tr)
	b := cachesim.RunCold(policy.NewItemLRU(10), tr)
	if a.Misses != b.Misses {
		t.Errorf("IBLP(i=k,b=0) misses %d != ItemLRU %d", a.Misses, b.Misses)
	}
}

func TestIBLPZeroItemLayerIsBlockCache(t *testing.T) {
	g := model.NewFixed(4)
	rng := rand.New(rand.NewSource(5))
	tr := make(trace.Trace, 4000)
	for i := range tr {
		tr[i] = model.Item(rng.Intn(64))
	}
	a := cachesim.RunCold(NewIBLP(0, 12, g), tr)
	b := cachesim.RunCold(policy.NewBlockLRU(12, g), tr)
	if a.Misses != b.Misses {
		t.Errorf("IBLP(i=0) misses %d != BlockLRU %d", a.Misses, b.Misses)
	}
}

func TestIBLPLenCountsDistinctItems(t *testing.T) {
	g := model.NewFixed(2)
	c := NewIBLP(2, 2, g)
	mustMiss(t, c, 0)
	// Item layer: {0}; block layer: {0,1}. Distinct = 2.
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if c.Capacity() != 4 {
		t.Errorf("Capacity = %d, want 4", c.Capacity())
	}
}

func TestIBLPResetAndAccessors(t *testing.T) {
	g := model.NewFixed(2)
	c := NewIBLP(3, 4, g)
	if c.ItemLayerSize() != 3 || c.BlockLayerSize() != 4 {
		t.Error("layer accessors")
	}
	c.Access(0)
	c.Reset()
	if c.Len() != 0 || c.Contains(0) {
		t.Error("Reset")
	}
	if c.Name() == "" {
		t.Error("Name empty")
	}
}

func TestIBLPEvenSplit(t *testing.T) {
	g := model.NewFixed(2)
	c := NewIBLPEvenSplit(7, g)
	if c.ItemLayerSize() != 4 || c.BlockLayerSize() != 3 {
		t.Errorf("split = %d/%d", c.ItemLayerSize(), c.BlockLayerSize())
	}
}

func TestIBLPPanics(t *testing.T) {
	g := model.NewFixed(2)
	for _, fn := range []func(){
		func() { NewIBLP(-1, 4, g) },
		func() { NewIBLP(0, 0, g) },
		func() { NewIBLP(1, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestIBLPSpatialWorkloadBeatsItemLRU(t *testing.T) {
	// A workload with heavy spatial locality: sequential sweeps over a
	// region larger than the cache. IBLP's block layer turns most
	// accesses into spatial hits; ItemLRU misses every time.
	g := model.NewFixed(8)
	var tr trace.Trace
	for rep := 0; rep < 4; rep++ {
		for it := model.Item(0); it < 512; it++ {
			tr = append(tr, it)
		}
	}
	iblp := cachesim.RunCold(NewIBLP(32, 32, g), tr)
	lru := cachesim.RunCold(policy.NewItemLRU(64), tr)
	if iblp.Misses >= lru.Misses {
		t.Errorf("IBLP %d misses, ItemLRU %d: expected IBLP to win on scans",
			iblp.Misses, lru.Misses)
	}
	if iblp.SpatialHits == 0 {
		t.Error("no spatial hits on a scan workload?")
	}
}

func TestIBLPTemporalWorkloadBeatsBlockLRU(t *testing.T) {
	// One hot item per block, more hot blocks than BlockLRU frames but
	// fewer items than IBLP's item layer: pollution kills BlockLRU.
	g := model.NewFixed(8)
	var tr trace.Trace
	hot := []model.Item{0, 8, 16, 24, 32, 40, 48, 56}
	for rep := 0; rep < 200; rep++ {
		tr = append(tr, hot...)
	}
	iblp := cachesim.RunCold(NewIBLP(16, 16, g), tr)
	blk := cachesim.RunCold(policy.NewBlockLRU(32, g), tr)
	if iblp.Misses >= blk.Misses {
		t.Errorf("IBLP %d misses, BlockLRU %d: expected IBLP to win on hot items",
			iblp.Misses, blk.Misses)
	}
}

func TestIBLPCapacityInvariant(t *testing.T) {
	g := model.NewFixed(4)
	c := NewIBLP(5, 9, g)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 8000; i++ {
		c.Access(model.Item(rng.Intn(100)))
		if c.Len() > c.Capacity() {
			t.Fatalf("Len %d > Capacity %d", c.Len(), c.Capacity())
		}
	}
}
