package core

import (
	"math/bits"
	"math/rand"
	"testing"

	"gccache/internal/model"
)

// popcount counts the set bits of a core bitset.
func popcount(b bitset) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// checkIBLPInvariants asserts the occupancy identities a resize must
// preserve: each layer within its configured size, and the membership
// structures (bits or maps) agreeing with the recency orders.
func checkIBLPInvariants(t *testing.T, c *IBLP, step int) {
	t.Helper()
	if c.items.Len() > c.itemSize {
		t.Fatalf("step %d: item layer holds %d > size %d", step, c.items.Len(), c.itemSize)
	}
	if c.blockUsed > c.blockSize {
		t.Fatalf("step %d: block layer holds %d > size %d", step, c.blockUsed, c.blockSize)
	}
	if c.blockUsed < 0 {
		t.Fatalf("step %d: blockUsed drifted negative: %d", step, c.blockUsed)
	}
	if c.itemsDense != nil {
		if got := popcount(c.inItemBits); got != c.itemsDense.Len() {
			t.Fatalf("step %d: inItemBits has %d set, item order holds %d", step, got, c.itemsDense.Len())
		}
		if got := popcount(c.inBlockBits); got != c.blockUsed {
			t.Fatalf("step %d: inBlockBits has %d set, blockUsed=%d", step, got, c.blockUsed)
		}
		return
	}
	sum := 0
	for _, items := range c.resident {
		sum += len(items)
	}
	if sum != c.blockUsed {
		t.Fatalf("step %d: resident holds %d items, blockUsed=%d", step, sum, c.blockUsed)
	}
	if len(c.resident) != c.blocks.Len() {
		t.Fatalf("step %d: resident has %d blocks, order holds %d", step, len(c.resident), c.blocks.Len())
	}
	if len(c.inBlock) != c.blockUsed {
		t.Fatalf("step %d: inBlock has %d items, blockUsed=%d", step, len(c.inBlock), c.blockUsed)
	}
}

// checkAdaptiveInvariants asserts the corresponding identities for the
// adaptive policy, including the ghost-list bounds.
func checkAdaptiveInvariants(t *testing.T, c *AdaptiveIBLP, step int) {
	t.Helper()
	if c.items.Len() > c.targetItem {
		t.Fatalf("step %d: item layer holds %d > target %d", step, c.items.Len(), c.targetItem)
	}
	if tb := c.capacity - c.targetItem; c.blockUsed > tb {
		t.Fatalf("step %d: block layer holds %d > target %d", step, c.blockUsed, tb)
	}
	if c.blockUsed < 0 {
		t.Fatalf("step %d: blockUsed drifted negative: %d", step, c.blockUsed)
	}
	sum := 0
	for _, items := range c.resident {
		sum += len(items)
	}
	if sum != c.blockUsed {
		t.Fatalf("step %d: resident holds %d items, blockUsed=%d", step, sum, c.blockUsed)
	}
	if len(c.resident) != c.blocks.Len() {
		t.Fatalf("step %d: resident has %d blocks, order holds %d", step, len(c.resident), c.blocks.Len())
	}
	if len(c.inBlock) != c.blockUsed {
		t.Fatalf("step %d: inBlock has %d items, blockUsed=%d", step, len(c.inBlock), c.blockUsed)
	}
	if c.Len() > c.capacity {
		t.Fatalf("step %d: Len()=%d exceeds capacity %d", step, c.Len(), c.capacity)
	}
	if c.ghostItems.Len() > 2*c.capacity {
		t.Fatalf("step %d: ghostItems grew to %d > %d", step, c.ghostItems.Len(), 2*c.capacity)
	}
}

// TestIBLPResizeStormDenseMatchesGeneric interleaves random accesses
// with random repartitions and requires the dense and generic
// representations to stay decision-identical throughout — the resize
// path's version of TestIBLPDenseMatchesGeneric.
func TestIBLPResizeStormDenseMatchesGeneric(t *testing.T) {
	const universe = 4096
	const k = 256
	for _, blockSize := range []int{1, 8, 64} {
		g := model.NewFixed(blockSize)
		rng := rand.New(rand.NewSource(int64(900 + blockSize)))
		generic := NewIBLPEvenSplit(k, g)
		dense := NewIBLPEvenSplitBounded(k, g, universe)
		tr := genTrace(rng, universe, 40000, blockSize)
		for step, it := range tr {
			if step%101 == 100 {
				target := rng.Intn(k + 1)
				generic.SetItemLayerTarget(target)
				dense.SetItemLayerTarget(target)
				if generic.Len() != dense.Len() {
					t.Fatalf("B=%d step %d: Len diverged after resize to %d: generic=%d dense=%d",
						blockSize, step, target, generic.Len(), dense.Len())
				}
			}
			ag := generic.Access(it)
			ad := dense.Access(it)
			if ag.Hit != ad.Hit {
				t.Fatalf("B=%d step %d (item %d): generic hit=%v dense hit=%v",
					blockSize, step, it, ag.Hit, ad.Hit)
			}
			if !equalItems(sortedCopy(ag.Loaded), sortedCopy(ad.Loaded)) ||
				!equalItems(sortedCopy(ag.Evicted), sortedCopy(ad.Evicted)) {
				t.Fatalf("B=%d step %d (item %d): load/evict sets diverge", blockSize, step, it)
			}
			if step%173 == 0 {
				checkIBLPInvariants(t, generic, step)
				checkIBLPInvariants(t, dense, step)
			}
		}
	}
}

// TestIBLPResizeStormInvariants hammers both representations with
// interleaved accesses and grow/shrink moves (including the extremes
// i=0 and i=k) and asserts the occupancy identities after every move.
func TestIBLPResizeStormInvariants(t *testing.T) {
	const universe = 2048
	const k = 128
	g := model.NewFixed(16)
	for _, bounded := range []bool{false, true} {
		var c *IBLP
		if bounded {
			c = NewIBLPEvenSplitBounded(k, g, universe)
		} else {
			c = NewIBLPEvenSplit(k, g)
		}
		rng := rand.New(rand.NewSource(42))
		for step := 0; step < 20000; step++ {
			if step%17 == 16 {
				var target int
				switch rng.Intn(4) {
				case 0:
					target = 0
				case 1:
					target = k
				default:
					target = rng.Intn(k + 1)
				}
				c.SetItemLayerTarget(target)
				if got := c.ItemLayerTarget(); got != target {
					t.Fatalf("bounded=%v step %d: target=%d after SetItemLayerTarget(%d)", bounded, step, got, target)
				}
			} else {
				c.Access(model.Item(rng.Intn(universe)))
			}
			checkIBLPInvariants(t, c, step)
		}
	}
}

// TestAdaptiveResizeStormInvariants is the same storm against the
// adaptive policy, whose internal ±1 votes interleave with the external
// moves — the autotuner's exact access pattern.
func TestAdaptiveResizeStormInvariants(t *testing.T) {
	const universe = 1024
	const k = 128
	g := model.NewFixed(8)
	c := NewAdaptiveIBLP(k, g)
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 30000; step++ {
		if step%29 == 28 {
			c.SetItemLayerTarget(rng.Intn(k + 1))
		} else {
			c.Access(model.Item(rng.Intn(universe)))
		}
		checkAdaptiveInvariants(t, c, step)
	}
}

// TestAdaptiveResizeStormDifferentialFinalSplit pins repeated-resize
// accounting end to end: after a randomized storm of accesses and
// external moves, the stormed cache and a from-scratch cache set to the
// same final split must become decision-identical once a warmup pass
// over fresh items flushes every history-dependent structure (both
// layers and both bounded ghost lists). Any storm-era drift in
// blockUsed or the membership maps would survive the warmup and split
// the decisions.
func TestAdaptiveResizeStormDifferentialFinalSplit(t *testing.T) {
	const (
		k          = 256
		B          = 16
		stormItems = 4096 // storm range: items [0, stormItems)
		warmItems  = 4096 // warmup/probe range: [stormItems, stormItems+warmItems)
	)
	g := model.NewFixed(B)
	rng := rand.New(rand.NewSource(99))

	stormed := NewAdaptiveIBLP(k, g)
	for step := 0; step < 25000; step++ {
		if step%23 == 22 {
			stormed.SetItemLayerTarget(rng.Intn(k + 1))
		} else {
			stormed.Access(model.Item(rng.Intn(stormItems)))
		}
	}
	final := stormed.ItemLayerTarget()

	fresh := NewAdaptiveIBLP(k, g)
	fresh.SetItemLayerTarget(final)

	// Warmup: one sequential pass over fresh, storm-disjoint items. It
	// drives > 2k item-layer evictions and > 2k/B block evictions in
	// both caches, so layers and ghosts end as a function of the pass
	// alone. Storm items never reappear, so no storm-era ghost can vote.
	for it := stormItems; it < stormItems+warmItems; it++ {
		stormed.Access(model.Item(it))
		fresh.Access(model.Item(it))
	}
	if got, want := stormed.ItemLayerTarget(), fresh.ItemLayerTarget(); got != want {
		t.Fatalf("after warmup: targets diverged stormed=%d fresh=%d", got, want)
	}

	// Probe: random traffic over the warmup range, with more external
	// moves applied to both. Every decision must match exactly.
	for step := 0; step < 30000; step++ {
		if step%41 == 40 {
			target := rng.Intn(k + 1)
			stormed.SetItemLayerTarget(target)
			fresh.SetItemLayerTarget(target)
		}
		it := model.Item(stormItems + rng.Intn(warmItems))
		as := stormed.Access(it)
		af := fresh.Access(it)
		if as.Hit != af.Hit {
			t.Fatalf("probe step %d (item %d): stormed hit=%v fresh hit=%v", step, it, as.Hit, af.Hit)
		}
		if !equalItems(sortedCopy(as.Loaded), sortedCopy(af.Loaded)) ||
			!equalItems(sortedCopy(as.Evicted), sortedCopy(af.Evicted)) {
			t.Fatalf("probe step %d (item %d): load/evict sets diverge", step, it)
		}
		if stormed.ItemLayerTarget() != fresh.ItemLayerTarget() {
			t.Fatalf("probe step %d: targets diverged %d vs %d",
				step, stormed.ItemLayerTarget(), fresh.ItemLayerTarget())
		}
		if stormed.Len() != fresh.Len() {
			t.Fatalf("probe step %d: Len diverged %d vs %d", step, stormed.Len(), fresh.Len())
		}
		if step%199 == 0 {
			checkAdaptiveInvariants(t, stormed, step)
			checkAdaptiveInvariants(t, fresh, step)
		}
	}
}
