package core

import (
	"math/rand"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

func TestInclusiveBehavesLikeSmallerBlockCache(t *testing.T) {
	g := model.NewFixed(4)
	rng := rand.New(rand.NewSource(2))
	tr := make(trace.Trace, 5000)
	for i := range tr {
		tr[i] = model.Item(rng.Intn(100))
	}
	incl := cachesim.RunCold(NewIBLPInclusive(16, 16, g), tr)
	blk := cachesim.RunCold(policy.NewBlockLRU(16, g), tr)
	if incl.Misses != blk.Misses {
		t.Errorf("inclusive(16,16) %d misses != BlockLRU(16) %d — the item layer should contribute nothing",
			incl.Misses, blk.Misses)
	}
	// The real IBLP with the same budget does strictly better here.
	real := cachesim.RunCold(NewIBLP(16, 16, g), tr)
	if real.Misses >= incl.Misses {
		t.Errorf("iblp %d misses should beat inclusive %d", real.Misses, incl.Misses)
	}
}

func TestInclusiveCapacityAndName(t *testing.T) {
	g := model.NewFixed(4)
	c := NewIBLPInclusive(8, 16, g)
	if c.Capacity() != 24 {
		t.Errorf("Capacity = %d, want 24", c.Capacity())
	}
	if c.Name() == "" {
		t.Error("Name")
	}
	c.Access(3)
	if !c.Contains(3) || c.Len() == 0 {
		t.Error("basic access")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset")
	}
}

func TestExclusiveNeverDuplicates(t *testing.T) {
	g := model.NewFixed(4)
	c := NewIBLPExclusive(4, 8, g)
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 4000; step++ {
		c.Access(model.Item(rng.Intn(64)))
		if c.Len() > c.Capacity() {
			t.Fatalf("step %d: Len %d > Capacity %d", step, c.Len(), c.Capacity())
		}
	}
}

func TestExclusiveMigratesOnBlockHit(t *testing.T) {
	g := model.NewFixed(4)
	c := NewIBLPExclusive(2, 4, g)
	mustMiss(t, c, 0) // 0 in item layer; 1,2,3 in block layer
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (no duplicates)", c.Len())
	}
	mustHit(t, c, 1) // migrates 1 out of the block copy
	if c.Len() != 4 {
		t.Errorf("Len after migration = %d, want 4", c.Len())
	}
	// The hole: the next block load needs the space, and dropping the
	// block-0 copy evicts only the unmigrated 2 and 3.
	mustMiss(t, c, 100) // block 25 loads 100 (item) + 101..103 → evicts block 0 copy
	if c.Contains(2) || c.Contains(3) {
		t.Error("remaining block-0 siblings should be gone")
	}
	if !c.Contains(1) || !c.Contains(100) {
		t.Error("migrated and requested items should survive")
	}
}

func TestExclusiveSpatialHitsStillWork(t *testing.T) {
	g := model.NewFixed(8)
	c := NewIBLPExclusive(16, 32, g)
	st := cachesim.RunCold(c, workload.Sequential(0, 512))
	if st.SpatialHits == 0 {
		t.Error("exclusive variant should still serve spatial hits")
	}
	if st.Misses > 100 {
		t.Errorf("misses = %d, want ≈ 64 (one per block)", st.Misses)
	}
}

func TestExclusivePanicsAndReset(t *testing.T) {
	g := model.NewFixed(4)
	for _, fn := range []func(){
		func() { NewIBLPExclusive(0, 4, g) },
		func() { NewIBLPExclusive(4, -1, g) },
		func() { NewIBLPExclusive(4, 4, nil) },
		func() { NewIBLPInclusive(-1, 4, g) },
		func() { NewIBLPInclusive(4, 0, g) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	c := NewIBLPExclusive(4, 8, g)
	c.Access(0)
	c.Reset()
	if c.Len() != 0 || c.Contains(0) {
		t.Error("Reset")
	}
	if c.Name() == "" {
		t.Error("Name")
	}
}

func TestGCMMarkAllPollutes(t *testing.T) {
	// Stride workload (one live item per block): mark-all pins dead
	// siblings for whole phases, cutting the effective size by ≈B (§6.1).
	g := model.NewFixed(8)
	tr := workload.Stride(12, 8, 8000) // 12 live items, fits k=16 easily
	gcm := cachesim.RunCold(NewGCM(16, g, 4), tr)
	markAll := cachesim.RunCold(NewGCMMarkAll(16, g, 4), tr)
	if gcm.MissRatio() > 0.2 {
		t.Errorf("gcm miss ratio %.3f, want small (live set fits)", gcm.MissRatio())
	}
	if markAll.Misses < 2*gcm.Misses {
		t.Errorf("mark-all %d misses vs gcm %d — expected pollution penalty",
			markAll.Misses, gcm.Misses)
	}
}

func TestGCMMarkAllMatchesGCMOnSpatialScan(t *testing.T) {
	// On a pure one-pass scan both variants pay ≈1 miss per block.
	g := model.NewFixed(8)
	tr := workload.Sequential(0, 4096)
	gcm := cachesim.RunCold(NewGCM(64, g, 4), tr)
	markAll := cachesim.RunCold(NewGCMMarkAll(64, g, 4), tr)
	if markAll.Misses > 2*gcm.Misses {
		t.Errorf("scan: mark-all %d vs gcm %d — should be comparable", markAll.Misses, gcm.Misses)
	}
	if c := NewGCMMarkAll(8, g, 1); c.Name() == "" || c.Capacity() != 8 {
		t.Error("accessors")
	}
	c := NewGCMMarkAll(8, g, 1)
	c.Access(0)
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset")
	}
}
