package core

import (
	"fmt"

	"gccache/internal/cachesim"
	"gccache/internal/lrulist"
	"gccache/internal/model"
	"gccache/internal/obs"
)

// AdaptiveIBLP extends IBLP with online partition adaptation — the
// repository's answer to the §5.3 dilemma that the optimal i/b split
// depends on the unknown offline comparison size (Figure 6). In the
// style of ARC's ghost lists, it remembers recently evicted item-layer
// items and block-layer blocks; a miss that would have been an
// item-layer hit votes to grow the item layer, and one that would have
// been a block-layer hit votes to grow the block layer. Layer *targets*
// shift by one item (or one block frame) per vote and are enacted lazily
// on subsequent evictions, so the cache never exceeds its total budget.
type AdaptiveIBLP struct {
	capacity int
	geo      model.Geometry

	targetItem int // current item-layer target; block target = capacity − targetItem

	items *lrulist.List[model.Item]

	blocks    *lrulist.List[model.Block]
	resident  map[model.Block][]model.Item
	inBlock   map[model.Item]struct{}
	blockUsed int

	ghostItems  *lrulist.List[model.Item]  // recently evicted from the item layer
	ghostBlocks *lrulist.List[model.Block] // recently evicted from the block layer

	rec     cachesim.Reconciler
	loaded  []model.Item
	evicted []model.Item
	wantBuf []model.Item // scratch: block enumeration
	trunc   []model.Item // scratch: truncated admission set (oversized blocks)
	probe   obs.Probe
}

var (
	_ cachesim.Cache          = (*AdaptiveIBLP)(nil)
	_ cachesim.Instrumented   = (*AdaptiveIBLP)(nil)
	_ cachesim.LayerResizable = (*AdaptiveIBLP)(nil)
)

// NewAdaptiveIBLP returns an adaptive-partition IBLP of total capacity k
// under g, starting from an even split. It panics if k < 2 or g is nil.
func NewAdaptiveIBLP(k int, g model.Geometry) *AdaptiveIBLP {
	if k < 2 {
		panic(fmt.Sprintf("core: AdaptiveIBLP capacity %d < 2", k))
	}
	if g == nil {
		panic("core: AdaptiveIBLP nil geometry")
	}
	return &AdaptiveIBLP{
		capacity:    k,
		geo:         g,
		targetItem:  k / 2,
		items:       lrulist.New[model.Item](k),
		blocks:      lrulist.New[model.Block](k/maxInt(1, g.BlockSize()) + 1),
		resident:    make(map[model.Block][]model.Item),
		inBlock:     make(map[model.Item]struct{}),
		ghostItems:  lrulist.New[model.Item](k),
		ghostBlocks: lrulist.New[model.Block](k/maxInt(1, g.BlockSize()) + 1),
	}
}

// Name implements cachesim.Cache.
func (c *AdaptiveIBLP) Name() string { return fmt.Sprintf("adaptive-iblp(k=%d)", c.capacity) }

// ItemLayerTarget returns the current adaptive item-layer target.
func (c *AdaptiveIBLP) ItemLayerTarget() int { return c.targetItem }

// SetItemLayerTarget implements cachesim.LayerResizable: move the
// adaptive target to i (clamped to [0, capacity]) and rebalance
// immediately, so an external controller's move is enacted before the
// next access instead of lazily on future evictions. The internal ghost
// votes keep fine-tuning ±1 around the new setpoint afterwards. The
// move is reported as EvLayerResize (via setTargetItem) followed by one
// EvEvict per item the rebalance pushed out. Not safe for concurrent
// use with Access.
func (c *AdaptiveIBLP) SetItemLayerTarget(i int) {
	i = minInt(c.capacity, maxInt(0, i))
	if i == c.targetItem {
		return
	}
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	c.setTargetItem(i)
	c.rebalance()
	if c.probe != nil {
		for _, x := range c.evicted {
			c.probe.Observe(obs.Event{Kind: obs.EvEvict, Item: x, Block: c.geo.BlockOf(x)})
		}
	}
}

// Access implements cachesim.Cache.
func (c *AdaptiveIBLP) Access(it model.Item) cachesim.Access {
	c.loaded = c.loaded[:0]
	c.evicted = c.evicted[:0]
	blk := c.geo.BlockOf(it)

	if c.items.Contains(it) {
		c.items.MoveToFront(it)
		if c.probe != nil {
			c.probe.Observe(obs.Event{Kind: obs.EvHitItemLayer, Item: it})
		}
		return cachesim.Access{Hit: true}
	}
	if _, ok := c.inBlock[it]; ok {
		c.blocks.MoveToFront(blk)
		c.admitItemLayer(it)
		c.rebalance()
		if c.probe != nil {
			c.probe.Observe(obs.Event{Kind: obs.EvHitBlockLayer, Item: it, Block: blk})
			for _, x := range c.evicted {
				c.probe.Observe(obs.Event{Kind: obs.EvEvict, Item: x})
			}
		}
		return cachesim.Access{Hit: true, Evicted: c.evicted}
	}

	// Miss: consult the ghosts before loading. The item layer may grow
	// until only one block frame remains (spatial protection: full-block
	// accesses can always be matched by a large item layer on *capacity*,
	// but only a block frame delivers cold-miss spatial hits).
	B := maxInt(1, c.geo.BlockSize())
	maxItemTarget := c.capacity - B
	if maxItemTarget < c.capacity/2 {
		maxItemTarget = c.capacity
	}
	// Votes are symmetric (±1 item): a ±B block-sized step lets streaming
	// phantom-hit votes overpower temporal ones and pin the partition
	// just below a working-set cliff.
	if c.ghostItems.Contains(it) {
		c.ghostItems.Remove(it)
		c.setTargetItem(minInt(maxItemTarget, c.targetItem+1))
	} else if c.ghostBlocks.Contains(blk) {
		c.ghostBlocks.Remove(blk)
		c.setTargetItem(maxInt(0, c.targetItem-1))
	}

	c.admitItemLayer(it)
	c.admitBlockLayer(blk, it)
	c.rebalance()
	c.loaded, c.evicted = c.rec.NetChanges(c.loaded, c.evicted)
	if c.probe != nil {
		c.probe.Observe(obs.Event{Kind: obs.EvBlockLoad, Item: it, Block: blk, N: int32(len(c.loaded))})
		for _, x := range c.loaded {
			c.probe.Observe(obs.Event{Kind: obs.EvLoad, Item: x, Block: c.geo.BlockOf(x)})
		}
		for _, x := range c.evicted {
			c.probe.Observe(obs.Event{Kind: obs.EvEvict, Item: x, Block: c.geo.BlockOf(x)})
		}
	}
	return cachesim.Access{Loaded: c.loaded, Evicted: c.evicted}
}

// setTargetItem moves the adaptive item-layer target, reporting the
// vote to the probe as EvLayerResize with N = the new target.
func (c *AdaptiveIBLP) setTargetItem(target int) {
	if target == c.targetItem {
		return
	}
	c.targetItem = target
	if c.probe != nil {
		c.probe.Observe(obs.Event{Kind: obs.EvLayerResize, N: int32(target)})
	}
}

// SetProbe implements cachesim.Instrumented. A nil probe restores the
// unobserved fast path.
func (c *AdaptiveIBLP) SetProbe(p obs.Probe) { c.probe = p }

func (c *AdaptiveIBLP) admitItemLayer(it model.Item) {
	was := c.present(it)
	c.items.PushFront(it)
	c.ghostItems.Remove(it)
	if !was {
		c.loaded = append(c.loaded, it)
	}
}

func (c *AdaptiveIBLP) admitBlockLayer(blk model.Block, requested model.Item) {
	targetBlock := c.capacity - c.targetItem
	if targetBlock <= 0 {
		return
	}
	if old, ok := c.resident[blk]; ok {
		c.dropBlock(blk, old, false)
	}
	c.wantBuf = model.AppendItemsOf(c.geo, c.wantBuf[:0], blk)
	want := c.wantBuf
	if len(want) > targetBlock {
		c.trunc = truncateAround(c.trunc, want, requested, targetBlock)
		want = c.trunc
	}
	for c.blockUsed+len(want) > targetBlock {
		victim, ok := c.blocks.Back()
		if !ok {
			break
		}
		c.dropBlock(victim, c.resident[victim], true)
	}
	if c.blockUsed+len(want) > targetBlock {
		return
	}
	hold := make([]model.Item, len(want))
	copy(hold, want)
	c.resident[blk] = hold
	c.blocks.PushFront(blk)
	c.ghostBlocks.Remove(blk)
	c.blockUsed += len(hold)
	for _, x := range hold {
		was := c.present(x)
		c.inBlock[x] = struct{}{}
		if !was {
			c.loaded = append(c.loaded, x)
		}
	}
}

// rebalance enacts the current targets: shrink whichever layer exceeds
// its target, and trim ghosts to bounded sizes.
func (c *AdaptiveIBLP) rebalance() {
	for c.items.Len() > c.targetItem {
		victim, ok := c.items.PopBack()
		if !ok {
			break
		}
		c.ghostItems.PushFront(victim)
		if !c.present(victim) {
			c.evicted = append(c.evicted, victim)
		}
	}
	targetBlock := c.capacity - c.targetItem
	for c.blockUsed > targetBlock {
		victim, ok := c.blocks.Back()
		if !ok {
			break
		}
		c.dropBlock(victim, c.resident[victim], true)
	}
	// Ghosts remember up to twice the capacity: one-pass traffic churns
	// the real layers fast, and a ghost that forgets before the first
	// re-reference never votes.
	for c.ghostItems.Len() > 2*c.capacity {
		c.ghostItems.PopBack()
	}
	maxGhostBlocks := 2*c.capacity/maxInt(1, c.geo.BlockSize()) + 1
	for c.ghostBlocks.Len() > maxGhostBlocks {
		c.ghostBlocks.PopBack()
	}
}

func (c *AdaptiveIBLP) dropBlock(blk model.Block, items []model.Item, remember bool) {
	for _, x := range items {
		delete(c.inBlock, x)
		if !c.present(x) {
			c.evicted = append(c.evicted, x)
		}
	}
	c.blockUsed -= len(items)
	delete(c.resident, blk)
	c.blocks.Remove(blk)
	if remember {
		c.ghostBlocks.PushFront(blk)
	}
}

func (c *AdaptiveIBLP) present(it model.Item) bool {
	if c.items.Contains(it) {
		return true
	}
	_, ok := c.inBlock[it]
	return ok
}

// Contains implements cachesim.Cache.
func (c *AdaptiveIBLP) Contains(it model.Item) bool { return c.present(it) }

// Len implements cachesim.Cache.
func (c *AdaptiveIBLP) Len() int {
	n := c.blockUsed
	c.items.Each(func(it model.Item) bool {
		if _, dup := c.inBlock[it]; !dup {
			n++
		}
		return true
	})
	return n
}

// Capacity implements cachesim.Cache.
func (c *AdaptiveIBLP) Capacity() int { return c.capacity }

// Reset implements cachesim.Cache.
func (c *AdaptiveIBLP) Reset() {
	c.items.Clear()
	c.blocks.Clear()
	clear(c.resident)
	clear(c.inBlock)
	c.blockUsed = 0
	c.ghostItems.Clear()
	c.ghostBlocks.Clear()
	c.targetItem = c.capacity / 2
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
