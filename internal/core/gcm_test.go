package core

import (
	"math/rand"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/model"
	"gccache/internal/policy"
	"gccache/internal/trace"
)

func TestGCMLoadsBlockUnmarked(t *testing.T) {
	g := model.NewFixed(4)
	c := NewGCM(8, g, 1)
	mustMiss(t, c, 1)
	// Whole block loaded, only 1 marked.
	for it := model.Item(0); it < 4; it++ {
		if !c.Contains(it) {
			t.Errorf("missing %d", it)
		}
	}
	if c.MarkedCount() != 1 {
		t.Errorf("MarkedCount = %d, want 1", c.MarkedCount())
	}
	mustHit(t, c, 2) // spatial hit marks 2
	if c.MarkedCount() != 2 {
		t.Errorf("MarkedCount = %d, want 2", c.MarkedCount())
	}
}

func TestGCMSiblingsDoNotEvictMarked(t *testing.T) {
	g := model.NewFixed(4)
	c := NewGCM(4, g, 2)
	// Fill with 4 marked items from distinct blocks.
	for _, it := range []model.Item{0, 4, 8, 12} {
		mustMiss(t, c, it)
	}
	if c.MarkedCount() != 4 {
		t.Fatalf("MarkedCount = %d", c.MarkedCount())
	}
	// Miss on 16: all marked → phase reset, evict one for 16 itself.
	// Siblings 17..19 may then replace only unmarked items.
	mustMiss(t, c, 16)
	if !c.Contains(16) {
		t.Fatal("requested item absent")
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
	// 16 is marked; everything else unmarked or replaced by siblings.
	if c.MarkedCount() != 1 {
		t.Errorf("MarkedCount = %d, want 1 after phase reset", c.MarkedCount())
	}
}

func TestGCMStopsLoadingWhenAllMarked(t *testing.T) {
	g := model.NewFixed(4)
	c := NewGCM(2, g, 3)
	mustMiss(t, c, 0) // loads 0 (marked) + one random sibling (unmarked)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	sibling := model.Item(0)
	for it := model.Item(1); it < 4; it++ {
		if c.Contains(it) {
			sibling = it
		}
	}
	mustHit(t, c, sibling) // mark the sibling
	if c.MarkedCount() != 2 {
		t.Fatalf("MarkedCount = %d", c.MarkedCount())
	}
	// Miss on 4: phase reset happens for the requested item's slot, but
	// after loading 4 (marked), siblings can only replace unmarked items.
	mustMiss(t, c, 4)
	if !c.Contains(4) {
		t.Fatal("4 absent")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestGCMNoSpatialLocalityStillCorrect(t *testing.T) {
	// Geometry with B=1: GCM degenerates to classic marking.
	g := model.NewFixed(1)
	c := NewGCM(4, g, 4)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 3000; i++ {
		c.Access(model.Item(rng.Intn(20)))
		if c.Len() > c.Capacity() {
			t.Fatalf("Len %d > cap", c.Len())
		}
	}
}

func TestGCMDeterministicWithSeed(t *testing.T) {
	g := model.NewFixed(4)
	rng := rand.New(rand.NewSource(10))
	tr := make(trace.Trace, 3000)
	for i := range tr {
		tr[i] = model.Item(rng.Intn(64))
	}
	a := cachesim.RunCold(NewGCM(16, g, 99), tr)
	b := cachesim.RunCold(NewGCM(16, g, 99), tr)
	if a.Misses != b.Misses {
		t.Errorf("same seed, different misses: %d vs %d", a.Misses, b.Misses)
	}
}

func TestGCMBeatsPlainMarkingOnSpatialScan(t *testing.T) {
	// §6.1: plain marking pays ≥ B misses per fresh block scanned; GCM
	// pays 1. Sequential scan over fresh blocks shows the gap.
	g := model.NewFixed(8)
	var tr trace.Trace
	for it := model.Item(0); it < 2048; it++ {
		tr = append(tr, it)
	}
	gcm := cachesim.RunCold(NewGCM(64, g, 5), tr)
	mark := cachesim.RunCold(policy.NewMarking(64, 5), tr)
	if gcm.Misses*4 > mark.Misses {
		t.Errorf("GCM %d misses vs marking %d: expected ≈B× gap", gcm.Misses, mark.Misses)
	}
}

func TestGCMCapacityInvariant(t *testing.T) {
	g := model.NewFixed(4)
	c := NewGCM(10, g, 12)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 8000; i++ {
		c.Access(model.Item(rng.Intn(120)))
		if c.Len() > c.Capacity() {
			t.Fatalf("Len %d > cap %d", c.Len(), c.Capacity())
		}
	}
	c.Reset()
	if c.Len() != 0 || c.MarkedCount() != 0 {
		t.Error("Reset")
	}
}

func TestGCMPanics(t *testing.T) {
	g := model.NewFixed(2)
	for _, fn := range []func(){
		func() { NewGCM(0, g, 1) },
		func() { NewGCM(4, nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	if NewGCM(4, g, 1).Name() != "gcm" {
		t.Error("Name")
	}
}
