package vsc

import (
	"math/rand"
	"testing"

	"gccache/internal/opt"
)

func TestValidate(t *testing.T) {
	good := Instance{Sizes: []int{1, 2}, CacheSize: 3, Trace: []int{0, 1, 0}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := []Instance{
		{Sizes: []int{1}, CacheSize: 0, Trace: nil},
		{Sizes: nil, CacheSize: 2, Trace: nil},
		{Sizes: []int{0}, CacheSize: 2, Trace: nil},
		{Sizes: []int{5}, CacheSize: 2, Trace: nil},
		{Sizes: []int{1}, CacheSize: 2, Trace: []int{1}},
		{Sizes: []int{1}, CacheSize: 2, Trace: []int{-1}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestScalePreservesOptimal(t *testing.T) {
	in := Instance{Sizes: []int{1, 2, 2}, CacheSize: 3,
		Trace: []int{0, 1, 2, 0, 1, 2, 0, 1}}
	base, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{2, 3, 5} {
		scaled, err := in.Scale(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Exact(scaled)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Errorf("scale %d: OPT %d != %d", f, got, base)
		}
	}
	if _, err := in.Scale(0); err == nil {
		t.Error("scale 0 accepted")
	}
}

func TestExactKnownInstances(t *testing.T) {
	cases := []struct {
		name string
		in   Instance
		want int64
	}{
		{
			"unit sizes = classic caching",
			Instance{Sizes: []int{1, 1, 1}, CacheSize: 2,
				Trace: []int{0, 1, 2, 0, 1, 2}},
			4, // same as Belady on 1 2 3 1 2 3 with k=2
		},
		{
			"everything fits",
			Instance{Sizes: []int{2, 1}, CacheSize: 3, Trace: []int{0, 1, 0, 1}},
			2,
		},
		{
			"big item displaces small ones",
			// Item 2 has size 2 = cache; caching it evicts everything.
			Instance{Sizes: []int{1, 1, 2}, CacheSize: 2,
				Trace: []int{0, 1, 2, 0, 1}},
			// OPT: miss 0, miss 1, miss 2 (must evict both), miss 0, hit?
			// After 2's load cache={2}. 0 miss (evict 2), 1 miss → 5?
			// Better: keep 0 through: impossible, 2 fills the cache.
			// So 0,1,2 miss; then 0 miss; 1: can 1 be kept? At access 0
			// (pos 3) cache could be {0,1}? Load 0 evicting 2 leaves room
			// for... 1 wasn't resident (evicted by 2). So 1 misses: 5.
			5,
		},
		{
			"empty trace",
			Instance{Sizes: []int{1}, CacheSize: 1, Trace: nil},
			0,
		},
	}
	for _, c := range cases {
		got, err := Exact(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: Exact = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestExactUnitSizesMatchesBelady(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 25; round++ {
		n := 3 + rng.Intn(5)
		k := 1 + rng.Intn(3)
		length := 8 + rng.Intn(12)
		in := Instance{Sizes: make([]int, n), CacheSize: k, Trace: make([]int, length)}
		for j := range in.Sizes {
			in.Sizes[j] = 1
		}
		keys := make([]uint64, length)
		for i := range in.Trace {
			in.Trace[i] = rng.Intn(n)
			keys[i] = uint64(in.Trace[i])
		}
		got, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		if want := opt.BeladyKeys(keys, k); got != want {
			t.Fatalf("round %d: VSC unit OPT %d != Belady %d (%v k=%d)",
				round, got, want, in.Trace, k)
		}
	}
}

func TestReduceShapes(t *testing.T) {
	in := Instance{Sizes: []int{2, 1, 3}, CacheSize: 4, Trace: []int{0, 2, 1}}
	red, err := Reduce(in)
	if err != nil {
		t.Fatal(err)
	}
	if red.Geometry.NumBlocks() != 3 {
		t.Errorf("NumBlocks = %d", red.Geometry.NumBlocks())
	}
	if red.Geometry.BlockSize() != 3 {
		t.Errorf("BlockSize = %d, want max size 3", red.Geometry.BlockSize())
	}
	// Trace length: Σ z_j² over accesses = 4 + 9 + 1.
	if len(red.Trace) != 14 {
		t.Errorf("trace length = %d, want 14", len(red.Trace))
	}
	if red.CacheSize != 4 {
		t.Errorf("CacheSize = %d", red.CacheSize)
	}
	// Active sets are disjoint and sized per item.
	seen := map[uint64]bool{}
	for j, set := range red.ActiveSets {
		if len(set) != in.Sizes[j] {
			t.Errorf("active set %d has %d items, want %d", j, len(set), in.Sizes[j])
		}
		for _, it := range set {
			if seen[uint64(it)] {
				t.Errorf("item %d reused across active sets", it)
			}
			seen[uint64(it)] = true
		}
	}
	if _, err := Reduce(Instance{Sizes: []int{1}, CacheSize: 0}); err == nil {
		t.Error("invalid instance accepted")
	}
}

// TestReductionPreservesOptimalCost is experiment E1: the heart of the
// Theorem 1 reproduction. For random small instances, the exact VSC
// optimum must equal the exact GC optimum of the reduced instance.
func TestReductionPreservesOptimalCost(t *testing.T) {
	rng := rand.New(rand.NewSource(2022))
	rounds := 0
	for rounds < 20 {
		n := 2 + rng.Intn(3)       // 2..4 items
		maxSize := 1 + rng.Intn(3) // sizes 1..3
		in := Instance{
			Sizes:     make([]int, n),
			CacheSize: 0,
			Trace:     make([]int, 4+rng.Intn(5)),
		}
		totalSize := 0
		for j := range in.Sizes {
			in.Sizes[j] = 1 + rng.Intn(maxSize)
			totalSize += in.Sizes[j]
		}
		biggest := 0
		for _, s := range in.Sizes {
			if s > biggest {
				biggest = s
			}
		}
		in.CacheSize = biggest + rng.Intn(totalSize-biggest+1)
		for i := range in.Trace {
			in.Trace[i] = rng.Intn(n)
		}
		if totalSize > 16 {
			continue // keep the GC universe inside the exact solver limit
		}
		rounds++

		vscOPT, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		red, err := Reduce(in)
		if err != nil {
			t.Fatal(err)
		}
		gcOPT, err := opt.Exact(red.Trace, red.Geometry, red.CacheSize)
		if err != nil {
			t.Fatal(err)
		}
		if gcOPT != vscOPT {
			t.Fatalf("reduction broke: VSC OPT %d, GC OPT %d (instance %+v)",
				vscOPT, gcOPT, in)
		}
	}
}
