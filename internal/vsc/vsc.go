// Package vsc implements the variable-size caching problem in the fault
// model (unit miss cost, arbitrary integral item sizes) and the Theorem 1
// reduction from it to Granularity-Change caching. Variable-size caching
// is NP-complete (Chrobak, Woeginger, Makino, Xu: "Caching is hard — even
// in the fault model"), and the reduction transfers that hardness to
// offline GC caching.
package vsc

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"gccache/internal/model"
	"gccache/internal/trace"
)

// Instance is a variable-size caching instance: items 0..len(Sizes)-1
// with the given sizes, a cache of capacity CacheSize, and a request
// trace of item indices. A miss costs 1 regardless of size (the fault
// model); the requested item must be cached at the end of its access.
type Instance struct {
	Sizes     []int
	CacheSize int
	Trace     []int
}

// Validate reports whether the instance is well formed: positive sizes,
// every trace entry in range, and every item individually cacheable.
func (in Instance) Validate() error {
	if in.CacheSize < 1 {
		return fmt.Errorf("vsc: cache size %d < 1", in.CacheSize)
	}
	if len(in.Sizes) == 0 {
		return fmt.Errorf("vsc: no items")
	}
	for j, s := range in.Sizes {
		if s < 1 {
			return fmt.Errorf("vsc: item %d has size %d < 1", j, s)
		}
		if s > in.CacheSize {
			return fmt.Errorf("vsc: item %d (size %d) exceeds cache size %d", j, s, in.CacheSize)
		}
	}
	for pos, j := range in.Trace {
		if j < 0 || j >= len(in.Sizes) {
			return fmt.Errorf("vsc: trace[%d] = %d out of range", pos, j)
		}
	}
	return nil
}

// Scale multiplies every size and the cache capacity by factor — the
// first step of the Theorem 1 reduction, which normalizes rational sizes
// to integers. Relative cache occupancy, and hence the optimal cost, is
// unchanged.
func (in Instance) Scale(factor int) (Instance, error) {
	if factor < 1 {
		return Instance{}, fmt.Errorf("vsc: scale factor %d < 1", factor)
	}
	out := Instance{
		Sizes:     make([]int, len(in.Sizes)),
		CacheSize: in.CacheSize * factor,
		Trace:     in.Trace,
	}
	for j, s := range in.Sizes {
		out.Sizes[j] = s * factor
	}
	return out, nil
}

// MaxExactItems bounds the exact solver's universe.
const MaxExactItems = 20

// Exact returns the exact optimal miss count via a frontier dynamic
// program over cached-set bitmasks with dominance pruning (offline VSC is
// NP-complete; this is exponential and meant for small instances).
func Exact(in Instance) (int64, error) {
	return ExactCtx(context.Background(), in)
}

// ExactCtx is Exact with cooperative cancellation: the solver checks ctx
// once per trace step (each step enumerates submasks, so a step is the
// natural polling granularity) and returns ctx's error when cut short.
// The exponential frontier makes runaway instances easy to hit; ctx is
// the caller's bound on them.
func ExactCtx(ctx context.Context, in Instance) (int64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	n := len(in.Sizes)
	if n > MaxExactItems {
		return 0, fmt.Errorf("vsc: %d items exceeds exact-solver limit %d", n, MaxExactItems)
	}
	sizeOf := func(mask uint32) int {
		total := 0
		for m := mask; m != 0; m &= m - 1 {
			total += in.Sizes[bits.TrailingZeros32(m)]
		}
		return total
	}
	frontier := map[uint32]int64{0: 0}
	for _, x := range in.Trace {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		xbit := uint32(1) << uint(x)
		next := make(map[uint32]int64, len(frontier))
		relax := func(mask uint32, cost int64) {
			if old, ok := next[mask]; !ok || cost < old {
				next[mask] = cost
			}
		}
		for mask, cost := range frontier {
			if mask&xbit != 0 {
				relax(mask, cost)
				continue
			}
			avail := mask | xbit
			// Enumerate submasks of avail containing x that fit.
			others := avail &^ xbit
			for sub := others; ; sub = (sub - 1) & others {
				cand := sub | xbit
				if sizeOf(cand) <= in.CacheSize {
					relax(cand, cost+1)
				}
				if sub == 0 {
					break
				}
			}
		}
		frontier = pruneDominated(next)
	}
	best := int64(math.MaxInt64)
	for _, c := range frontier {
		if c < best {
			best = c
		}
	}
	if best == math.MaxInt64 {
		best = 0
	}
	return best, nil
}

func pruneDominated(states map[uint32]int64) map[uint32]int64 {
	type st struct {
		mask uint32
		cost int64
	}
	list := make([]st, 0, len(states))
	for m, c := range states {
		list = append(list, st{m, c})
	}
	out := make(map[uint32]int64, len(list))
	for i, a := range list {
		dominated := false
		for j, b := range list {
			if i == j {
				continue
			}
			if b.mask&a.mask == a.mask && b.cost <= a.cost {
				if b.mask != a.mask || j < i {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			out[a.mask] = a.cost
		}
	}
	return out
}

// Reduction is the Theorem 1 transformation of a VSC instance into a GC
// caching instance with the same optimal cost.
type Reduction struct {
	// Geometry holds one block per VSC item; block j's items are the
	// "active set" of size Sizes[j].
	Geometry *model.Table
	// Trace is the generated GC trace: each VSC access to item j becomes
	// Sizes[j] round-robin passes over block j's active set.
	Trace trace.Trace
	// CacheSize is the (scaled) cache size, unchanged from the input.
	CacheSize int
	// ActiveSets[j] lists the GC items standing in for VSC item j.
	ActiveSets [][]model.Item
}

// Reduce builds the Theorem 1 reduction. The input must be integral and
// valid. Each VSC access to item j expands into Sizes[j]² GC requests
// (Sizes[j] round-robin passes over the active set), forcing any optimal
// GC policy to load and evict whole active sets, which makes the GC
// optimum equal the VSC optimum.
func Reduce(in Instance) (*Reduction, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	blocks := make([][]model.Item, len(in.Sizes))
	next := model.Item(0)
	for j, z := range in.Sizes {
		set := make([]model.Item, z)
		for i := range set {
			set[i] = next
			next++
		}
		blocks[j] = set
	}
	geo, err := model.NewTable(blocks)
	if err != nil {
		return nil, fmt.Errorf("vsc: building geometry: %w", err)
	}
	var tr trace.Trace
	for _, j := range in.Trace {
		set := blocks[j]
		for rep := 0; rep < len(set); rep++ {
			tr = append(tr, set...)
		}
	}
	return &Reduction{
		Geometry:   geo,
		Trace:      tr,
		CacheSize:  in.CacheSize,
		ActiveSets: blocks,
	}, nil
}
