package concurrent

import (
	"sync"
	"testing"

	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/obs"
	"gccache/internal/policy"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

func newIBLPSharded(t *testing.T, shards, total, B int) *Sharded {
	t.Helper()
	geo := model.NewFixed(B)
	s, err := NewSharded(shards, total, geo, func(per int) cachesim.Cache {
		return core.NewIBLPEvenSplit(per, geo)
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewShardedValidation(t *testing.T) {
	geo := model.NewFixed(4)
	build := func(per int) cachesim.Cache { return policy.NewItemLRU(per) }
	if _, err := NewSharded(3, 64, geo, build); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewSharded(0, 64, geo, build); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewSharded(8, 4, geo, build); err == nil {
		t.Error("capacity below shard count accepted")
	}
	if _, err := NewSharded(2, 64, nil, build); err == nil {
		t.Error("nil geometry accepted")
	}
	if _, err := NewSharded(2, 64, geo, func(int) cachesim.Cache { return nil }); err == nil {
		t.Error("nil shard cache accepted")
	}
}

func TestBlockSiblingsShareShard(t *testing.T) {
	s := newIBLPSharded(t, 8, 512, 16)
	for blk := 0; blk < 200; blk++ {
		base := model.Item(blk * 16)
		want := s.shardOf(base)
		for off := 1; off < 16; off++ {
			if got := s.shardOf(base + model.Item(off)); got != want {
				t.Fatalf("block %d split across shards", blk)
			}
		}
	}
}

func TestSingleShardMatchesFlatPolicy(t *testing.T) {
	geo := model.NewFixed(8)
	s, err := NewSharded(1, 64, geo, func(per int) cachesim.Cache {
		return core.NewIBLPEvenSplit(per, geo)
	})
	if err != nil {
		t.Fatal(err)
	}
	flat := core.NewIBLPEvenSplit(64, geo)
	tr, err := workload.FromSpec("blockruns:blocks=32,B=8,run=4,len=20000", 9)
	if err != nil {
		t.Fatal(err)
	}
	got := cachesim.RunCold(s, tr)
	want := cachesim.RunCold(flat, tr)
	if got.Misses != want.Misses || got.SpatialHits != want.SpatialHits {
		t.Errorf("sharded(1) %+v != flat %+v", got, want)
	}
	// Internal recorder agrees with the external one.
	if st := s.Stats(); st.Misses != got.Misses {
		t.Errorf("internal stats misses %d != %d", st.Misses, got.Misses)
	}
}

func TestConcurrentReplayAccounting(t *testing.T) {
	s := newIBLPSharded(t, 8, 1024, 16)
	tr, err := workload.FromSpec("blockruns:blocks=256,B=16,run=8,len=80000", 5)
	if err != nil {
		t.Fatal(err)
	}
	streams := SplitStreams(tr, 8)
	st := Replay(s, streams)
	if st.Accesses != int64(len(tr)) {
		t.Fatalf("accesses %d != %d", st.Accesses, len(tr))
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits %d + misses %d != accesses %d", st.Hits, st.Misses, st.Accesses)
	}
	if st.SpatialHits+st.TemporalHits != st.Hits {
		t.Fatalf("hit split inconsistent: %+v", st)
	}
	if s.Len() > s.Capacity() {
		t.Fatalf("Len %d > Capacity %d", s.Len(), s.Capacity())
	}
	if st.SpatialHits == 0 {
		t.Error("spatial workload produced no spatial hits")
	}
}

func TestConcurrentHammerSameBlocks(t *testing.T) {
	// Many goroutines hammering a tiny universe: exercises shard mutex
	// paths under contention (run with -race in CI).
	s := newIBLPSharded(t, 4, 256, 8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				s.Access(model.Item((i*7 + seed) % 64))
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Accesses != 16*5000 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	s.Reset()
	if s.Stats().Accesses != 0 || s.Len() != 0 {
		t.Error("Reset")
	}
}

func TestShardedConformsToModel(t *testing.T) {
	// Single-threaded, the sharded composite is itself a legal GC cache.
	geo := model.NewFixed(8)
	s, err := NewSharded(4, 128, geo, func(per int) cachesim.Cache {
		return core.NewIBLPEvenSplit(per, geo)
	})
	if err != nil {
		t.Fatal(err)
	}
	v := cachesim.NewValidator(s, geo)
	tr, err := workload.FromSpec("blockruns:blocks=64,B=8,run=4,len=10000", 2)
	if err != nil {
		t.Fatal(err)
	}
	cachesim.Run(v, tr)
	if err := v.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitStreams(t *testing.T) {
	tr := trace.Trace{1, 2, 3, 4, 5}
	streams := SplitStreams(tr, 2)
	if len(streams) != 2 || len(streams[0]) != 3 || len(streams[1]) != 2 {
		t.Fatalf("streams = %v", streams)
	}
	if streams[0][0] != 1 || streams[1][0] != 2 {
		t.Errorf("round robin broken: %v", streams)
	}
	if got := SplitStreams(tr, 0); len(got) != 1 {
		t.Error("n=0 not clamped")
	}
}

func TestNameAndNumShards(t *testing.T) {
	s := newIBLPSharded(t, 4, 128, 8)
	if s.NumShards() != 4 {
		t.Error("NumShards")
	}
	if s.Name() == "" {
		t.Error("Name")
	}
}

func BenchmarkShardedParallelAccess(b *testing.B) {
	geo := model.NewFixed(64)
	s, err := NewSharded(16, 1<<14, geo, func(per int) cachesim.Cache {
		return core.NewIBLPEvenSplit(per, geo)
	})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.FromSpec("blockruns:blocks=1024,B=64,run=8,len=65536", 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Access(tr[i&65535])
			i++
		}
	})
}

func BenchmarkFlatMutexAccess(b *testing.B) {
	// Baseline for the sharding win: one global lock around one policy.
	geo := model.NewFixed(64)
	flat := core.NewIBLPEvenSplit(1<<14, geo)
	var mu sync.Mutex
	tr, err := workload.FromSpec("blockruns:blocks=1024,B=64,run=8,len=65536", 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			mu.Lock()
			flat.Access(tr[i&65535])
			mu.Unlock()
			i++
		}
	})
}

// TestProbeShardedContention drives a probed Sharded with concurrent
// streams and checks the lock-traffic counters and the fan-out probe
// agree with the merged statistics.
func TestProbeShardedContention(t *testing.T) {
	geo := model.NewFixed(8)
	s, err := NewSharded(4, 512, geo, func(per int) cachesim.Cache {
		return core.NewIBLPEvenSplit(per, geo)
	})
	if err != nil {
		t.Fatal(err)
	}
	suite, err := obs.NewSuite("counters", 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetProbe(suite)

	tr, err := workload.FromSpec("blockruns:blocks=512,B=8,run=4,len=20000", 7)
	if err != nil {
		t.Fatal(err)
	}
	stats := Replay(s, SplitStreams(tr, 4))

	loads := s.ShardLoads()
	if len(loads) != 4 {
		t.Fatalf("got %d shard loads, want 4", len(loads))
	}
	var acquired int64
	for i, l := range loads {
		acquired += l.Acquired
		if l.Contended > l.Acquired {
			t.Errorf("shard %d: contended %d > acquired %d", i, l.Contended, l.Acquired)
		}
	}
	if acquired != stats.Accesses {
		t.Errorf("lock acquisitions %d != accesses %d", acquired, stats.Accesses)
	}
	// Policy and recorder views each saw every access exactly once.
	if got := suite.Counters.PolicyAccesses(); got != stats.Accesses {
		t.Errorf("policy view counted %d, want %d", got, stats.Accesses)
	}
	if got := suite.Counters.RecorderAccesses(); got != stats.Accesses {
		t.Errorf("recorder view counted %d, want %d", got, stats.Accesses)
	}

	// Reset keeps the probe attached and zeroes the counters.
	s.Reset()
	for _, l := range s.ShardLoads() {
		if l.Acquired != 0 || l.Contended != 0 {
			t.Error("Reset did not clear contention counters")
		}
	}
	before := suite.Counters.PolicyAccesses()
	s.Access(1)
	if got := suite.Counters.PolicyAccesses(); got != before+1 {
		t.Error("probe detached by Reset")
	}
}
