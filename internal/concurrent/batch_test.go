package concurrent

import (
	"bytes"
	"context"
	"testing"
	"time"

	"gccache/internal/cachesim"
	"gccache/internal/core"
	"gccache/internal/model"
	"gccache/internal/trace"
	"gccache/internal/workload"
)

func batchFixture(t testing.TB, spec string, seed int64) trace.Trace {
	t.Helper()
	tr, err := workload.FromSpec(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestReplayCtxAccounting drives the batched engine with concurrent
// producers and checks the merged statistics add up.
func TestReplayCtxAccounting(t *testing.T) {
	s := newIBLPSharded(t, 8, 1024, 16)
	tr := batchFixture(t, "blockruns:blocks=256,B=16,run=8,len=80000", 5)
	st, err := ReplayCtx(context.Background(), s, SplitStreams(tr, 8), BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != int64(len(tr)) {
		t.Fatalf("accesses %d != %d", st.Accesses, len(tr))
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits %d + misses %d != accesses %d", st.Hits, st.Misses, st.Accesses)
	}
	if st.SpatialHits+st.TemporalHits != st.Hits {
		t.Fatalf("hit split inconsistent: %+v", st)
	}
	if s.Len() > s.Capacity() {
		t.Fatalf("Len %d > Capacity %d", s.Len(), s.Capacity())
	}
	// Batching amortizes the shard lock: far fewer acquisitions than
	// accesses (each acquisition serves up to BatchSize requests).
	var acquired int64
	for _, l := range s.ShardLoads() {
		acquired += l.Acquired
	}
	if acquired >= st.Accesses/2 {
		t.Errorf("lock acquisitions %d not amortized over %d accesses", acquired, st.Accesses)
	}
}

// TestReplayCtxDeterministicDifferential is the engine's correctness
// anchor: deterministic mode over SplitStreams(tr, n) merges the
// streams back into tr's original order, so the batched replay must
// produce statistics byte-identical to driving Sharded.Access
// sequentially — and do so on every run.
func TestReplayCtxDeterministicDifferential(t *testing.T) {
	tr := batchFixture(t, "blockruns:blocks=128,B=8,run=4,len=40000", 9)

	seq := newIBLPSharded(t, 4, 512, 8)
	for _, it := range tr {
		seq.Access(it)
	}
	want := seq.Stats()

	for _, nStreams := range []int{1, 3, 8} {
		batched := newIBLPSharded(t, 4, 512, 8)
		got, err := ReplayCtx(context.Background(), batched, SplitStreams(tr, nStreams),
			BatchConfig{Deterministic: true, BatchSize: 64, QueueDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("deterministic batched replay (%d streams) differs from sequential:\n  batched:    %+v\n  sequential: %+v",
				nStreams, got, want)
		}
	}
}

// TestReplayStreamCtxOrderPreservation checks the single-source batched
// path: one producer enqueues each shard's requests in trace order and
// one worker per shard preserves it, so even the fully concurrent
// replay is deterministic — byte-identical to a sequential replay of
// the same trace through an identical Sharded.
func TestReplayStreamCtxOrderPreservation(t *testing.T) {
	tr := batchFixture(t, "blockruns:blocks=256,B=16,run=8,len=60000", 13)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}

	seq := newIBLPSharded(t, 8, 1024, 16)
	for _, it := range tr {
		seq.Access(it)
	}
	want := seq.Stats()

	sc, err := trace.NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	batched := newIBLPSharded(t, 8, 1024, 16)
	got, err := ReplayStreamCtx(context.Background(), batched, sc, BatchConfig{BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("streamed batched replay differs from sequential:\n  batched:    %+v\n  sequential: %+v", got, want)
	}
}

// TestReplayCtxCancel kills a batched replay mid-flight and checks the
// claimed-batch contract: ctx's error comes back, the statistics stay
// internally consistent, and the engine's goroutines all exit (the
// -race run would flag leaked workers touching freed shards).
func TestReplayCtxCancel(t *testing.T) {
	s := newIBLPSharded(t, 4, 512, 8)
	tr := batchFixture(t, "blockruns:blocks=256,B=8,run=4,len=400000", 3)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var st cachesim.Stats
	var err error
	go func() {
		defer close(done)
		st, err = ReplayCtx(ctx, s, SplitStreams(tr, 4), BatchConfig{BatchSize: 64, QueueDepth: 1})
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled replay did not return within 10s")
	}
	if err == nil {
		// The replay may legitimately finish before cancel lands on a
		// fast machine; only a completed replay may return nil.
		if st.Accesses != int64(len(tr)) {
			t.Fatalf("nil error but only %d/%d accesses replayed", st.Accesses, len(tr))
		}
		t.Skip("replay finished before cancellation landed")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Errorf("partial stats inconsistent: %+v", st)
	}
	if st.Accesses >= int64(len(tr)) {
		t.Errorf("cancelled replay claims all %d accesses", st.Accesses)
	}
}

// TestReplayCtxPreCancelled checks a context that is dead on arrival is
// reported as an error, not as a silently empty replay.
func TestReplayCtxPreCancelled(t *testing.T) {
	s := newIBLPSharded(t, 4, 512, 8)
	tr := batchFixture(t, "blockruns:blocks=64,B=8,run=4,len=20000", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReplayCtx(ctx, s, SplitStreams(tr, 4), BatchConfig{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	sc := trace.NewSliceSource(tr)
	if _, err := ReplayStreamCtx(ctx, s, sc, BatchConfig{}); err != context.Canceled {
		t.Fatalf("stream err = %v, want context.Canceled", err)
	}
}

// TestReplayCtxBackpressureTinyQueues runs the engine at its most
// constrained — one-item batches through depth-1 queues, more producers
// than shards — where any flow-control bug deadlocks or drops requests.
func TestReplayCtxBackpressureTinyQueues(t *testing.T) {
	s := newIBLPSharded(t, 2, 256, 8)
	tr := batchFixture(t, "blockruns:blocks=64,B=8,run=4,len=30000", 7)
	st, err := ReplayCtx(context.Background(), s, SplitStreams(tr, 16),
		BatchConfig{BatchSize: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != int64(len(tr)) {
		t.Fatalf("accesses %d != %d", st.Accesses, len(tr))
	}
}

// TestReplayStreamCtxSourceError checks a mid-stream decode failure
// surfaces after the requests before it were replayed.
func TestReplayStreamCtxSourceError(t *testing.T) {
	tr := batchFixture(t, "blockruns:blocks=64,B=8,run=4,len=10000", 2)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := trace.NewScanner(bytes.NewReader(buf.Bytes()[:buf.Len()-2]))
	if err != nil {
		t.Fatal(err)
	}
	s := newIBLPSharded(t, 4, 512, 8)
	st, err := ReplayStreamCtx(context.Background(), s, sc, BatchConfig{})
	if err == nil {
		t.Fatal("truncated source replayed cleanly")
	}
	if st.Accesses == 0 {
		t.Error("no requests replayed before the decode error")
	}
}

// TestReplayEmptyStreams pins the SplitStreams guard and the Replay
// skip: more streams than requests must not fabricate empty streams or
// idle goroutines.
func TestReplayEmptyStreams(t *testing.T) {
	tr := trace.Trace{1, 2, 3}
	streams := SplitStreams(tr, 8)
	if len(streams) != 3 {
		t.Fatalf("SplitStreams(len 3, n=8) returned %d streams, want 3", len(streams))
	}
	for i, st := range streams {
		if len(st) == 0 {
			t.Fatalf("stream %d is empty", i)
		}
	}
	if got := SplitStreams(trace.Trace{}, 4); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("SplitStreams(empty, 4) = %v, want one empty stream", got)
	}

	// Replay with explicitly empty streams (bypassing the SplitStreams
	// guard) skips them instead of spawning no-op goroutines.
	s := newIBLPSharded(t, 2, 256, 8)
	st := Replay(s, []trace.Trace{{}, tr, {}, {}})
	if st.Accesses != int64(len(tr)) {
		t.Fatalf("accesses %d != %d", st.Accesses, len(tr))
	}
	if _, err := ReplayCtx(context.Background(), s, []trace.Trace{{}, {}}, BatchConfig{}); err != nil {
		t.Fatalf("all-empty batched replay errored: %v", err)
	}
}

// BenchmarkReplayBatched measures the batched engine end to end —
// the ns/op ÷ trace length is the per-access serving cost.
func BenchmarkReplayBatched(b *testing.B) {
	geo := model.NewFixed(64)
	s, err := NewSharded(16, 1<<14, geo, func(per int) cachesim.Cache {
		return core.NewIBLPEvenSplit(per, geo)
	})
	if err != nil {
		b.Fatal(err)
	}
	tr := batchFixture(b, "blockruns:blocks=1024,B=64,run=8,len=262144", 3)
	streams := SplitStreams(tr, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayCtx(context.Background(), s, streams, BatchConfig{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr))*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkReplayUnbatched is the per-access-lock baseline the batched
// engine is measured against.
func BenchmarkReplayUnbatched(b *testing.B) {
	geo := model.NewFixed(64)
	s, err := NewSharded(16, 1<<14, geo, func(per int) cachesim.Cache {
		return core.NewIBLPEvenSplit(per, geo)
	})
	if err != nil {
		b.Fatal(err)
	}
	tr := batchFixture(b, "blockruns:blocks=1024,B=64,run=8,len=262144", 3)
	streams := SplitStreams(tr, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replay(s, streams)
	}
	b.ReportMetric(float64(len(tr))*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}
